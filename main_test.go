package modelnet_test

import (
	"os"
	"testing"

	"modelnet/internal/fednet"
)

// TestMain lets this test binary double as its own federation worker
// fleet: BenchmarkFednetScaling spawns it with the fednet join variable
// set, and MaybeRunWorker diverts those processes into worker mode before
// any test or benchmark runs.
func TestMain(m *testing.M) {
	fednet.MaybeRunWorker()
	os.Exit(m.Run())
}
