// Package modelnet is a Go reproduction of ModelNet (Vahdat et al.,
// "Scalability and Accuracy in a Large-Scale Network Emulator", OSDI 2002):
// a large-scale network emulation environment in which unmodified
// application logic, running on virtual edge nodes (VNs), is subjected to
// the bandwidth, latency, loss, queueing, and congestion of an arbitrary
// target topology emulated link-by-link by a cluster of core routers.
//
// The system runs the paper's five phases:
//
//	CREATE   — build or load a target topology   (internal/topology)
//	DISTILL  — transform it into a pipe topology (internal/distill)
//	ASSIGN   — partition pipes across cores      (internal/assign)
//	BIND     — place VNs, compute routes, POD    (internal/bind)
//	RUN      — emulate packets in virtual time   (internal/emucore)
//
// This root package wires the phases together behind one call:
//
//	g := modelnet.Ring(20, 20, ringAttrs, accessAttrs)
//	em, err := modelnet.Run(g, modelnet.Options{Cores: 4})
//	h := em.NewHost(0)            // netstack on VN 0
//	...start applications on hosts...
//	em.RunFor(modelnet.Seconds(30))
//
// Everything executes in virtual time: the clock advances only as events
// fire, so results are deterministic and GC pauses cannot corrupt delay
// accuracy (the key substitution this reproduction makes for the paper's
// in-kernel real-time core; see DESIGN.md).
package modelnet

import (
	"fmt"

	"modelnet/internal/assign"
	"modelnet/internal/bind"
	"modelnet/internal/distill"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// Re-exported aliases so common use needs only this package.
type (
	// Graph is a target or distilled topology.
	Graph = topology.Graph
	// LinkAttrs are per-link emulation parameters.
	LinkAttrs = topology.LinkAttrs
	// VN identifies a virtual edge node.
	VN = pipes.VN
	// Host is a VN's transport stack (TCP/UDP/RPC).
	Host = netstack.Host
	// Endpoint is a (VN, port) pair.
	Endpoint = netstack.Endpoint
	// Time is virtual time; Duration a virtual span.
	Time = vtime.Time
	// Duration is a span of virtual time.
	Duration = vtime.Duration
	// Profile models core-cluster hardware capacity.
	Profile = emucore.Profile
	// DistillSpec selects the accuracy/scalability tradeoff of §4.1.
	DistillSpec = distill.Spec
)

// Distillation modes (§4.1).
const (
	HopByHop = distill.HopByHop
	EndToEnd = distill.EndToEnd
	WalkIn   = distill.WalkIn
	WalkOut  = distill.WalkOut
)

// Topology constructors re-exported from internal/topology.
var (
	NewGraph    = topology.New
	Ring        = topology.Ring
	Star        = topology.Star
	Line        = topology.Line
	Pairs       = topology.Pairs
	FullMesh    = topology.FullMesh
	TransitStub = topology.TransitStub
	ReadGML     = topology.ReadGML
	WriteGML    = topology.WriteGML
	Mbps        = topology.Mbps
	Ms          = topology.Ms
)

// Seconds converts seconds to a virtual Duration.
func Seconds(s float64) Duration { return vtime.DurationOf(s) }

// DefaultProfile models the paper's testbed hardware (see DESIGN.md for
// the calibration); IdealProfile is the event-exact, infinitely
// provisioned reference (the "ns-2 role").
var (
	DefaultProfile = emucore.DefaultProfile
	IdealProfile   = emucore.IdealProfile
)

// Options configure an emulation.
type Options struct {
	// Distill selects the distillation mode; zero value = hop-by-hop.
	Distill DistillSpec
	// Cores is the number of emulated core routers (default 1). Pipes are
	// partitioned with greedy k-clusters when Cores > 1.
	Cores int
	// EdgeNodes is the number of physical edge machines VNs multiplex
	// onto (default: one per VN).
	EdgeNodes int
	// RouteCache, when positive, replaces the O(n²) routing matrix with
	// an LRU route cache of that capacity (§2.2 alternative).
	RouteCache int
	// HierarchicalRoutes replaces the matrix with per-stub-cluster tables
	// (the other §2.2 alternative; exact on stub-clustered topologies).
	HierarchicalRoutes bool
	// Profile models the core hardware; zero value = DefaultProfile().
	// Use IdealProfile() for an exact reference emulation.
	Profile *Profile
	// Seed determinizes loss, assignment, and other randomness.
	Seed int64
}

// Emulation is a fully bound, running-ready emulation.
type Emulation struct {
	Sched      *vtime.Scheduler
	Target     *Graph
	Distilled  *distill.Result
	Binding    *bind.Binding
	Assignment *assign.Assignment
	Emu        *emucore.Emulator

	hosts map[VN]*Host
}

// Run executes the Create→Distill→Assign→Bind phases over the target
// topology and returns an emulation ready for the Run phase (start
// applications on hosts, then drive the scheduler).
func Run(target *Graph, opts Options) (*Emulation, error) {
	if err := target.Validate(); err != nil {
		return nil, fmt.Errorf("modelnet: create: %w", err)
	}
	dist, err := distill.Distill(target, opts.Distill)
	if err != nil {
		return nil, fmt.Errorf("modelnet: distill: %w", err)
	}
	cores := opts.Cores
	if cores < 1 {
		cores = 1
	}
	asn, err := assign.KClusters(dist.Graph, cores, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("modelnet: assign: %w", err)
	}
	b, err := bind.Bind(dist.Graph, bind.Options{
		EdgeNodes:    opts.EdgeNodes,
		Cores:        cores,
		RouteCache:   opts.RouteCache,
		Hierarchical: opts.HierarchicalRoutes,
	})
	if err != nil {
		return nil, fmt.Errorf("modelnet: bind: %w", err)
	}
	prof := emucore.DefaultProfile()
	if opts.Profile != nil {
		prof = *opts.Profile
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, dist.Graph, b, asn.POD(), prof, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("modelnet: run: %w", err)
	}
	return &Emulation{
		Sched:      sched,
		Target:     target,
		Distilled:  dist,
		Binding:    b,
		Assignment: asn,
		Emu:        emu,
		hosts:      make(map[VN]*Host),
	}, nil
}

// NumVNs reports how many VNs the emulation binds.
func (e *Emulation) NumVNs() int { return e.Binding.NumVNs() }

// registrar adapts the emulator to netstack's Registrar.
type registrar struct{ e *emucore.Emulator }

func (r registrar) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	r.e.RegisterVN(vn, emucore.DeliverFunc(fn))
}

// NewHost creates (or returns) the transport stack for a VN.
func (e *Emulation) NewHost(vn VN) *Host {
	if h, ok := e.hosts[vn]; ok {
		return h
	}
	h := netstack.NewHost(vn, e.Sched, e.Emu, registrar{e.Emu})
	e.hosts[vn] = h
	return h
}

// NewHosts creates hosts for every VN, indexed by VN number.
func (e *Emulation) NewHosts() []*Host {
	out := make([]*Host, e.NumVNs())
	for v := range out {
		out[v] = e.NewHost(VN(v))
	}
	return out
}

// NewHostVia creates the stack for a VN whose packets pass through the
// given injection wrapper (e.g. an edge-machine model).
func (e *Emulation) NewHostVia(vn VN, inj netstack.Injector) *Host {
	h := netstack.NewHost(vn, e.Sched, inj, registrar{e.Emu})
	e.hosts[vn] = h
	return h
}

// Now returns the current virtual time.
func (e *Emulation) Now() Time { return e.Sched.Now() }

// RunFor advances virtual time by d, firing all due events.
func (e *Emulation) RunFor(d Duration) { e.Sched.RunFor(d) }

// RunUntil advances virtual time to the deadline.
func (e *Emulation) RunUntil(t Time) { e.Sched.RunUntil(t) }

// RunToCompletion fires events until none remain.
func (e *Emulation) RunToCompletion() { e.Sched.Run() }
