// Package modelnet is a Go reproduction of ModelNet (Vahdat et al.,
// "Scalability and Accuracy in a Large-Scale Network Emulator", OSDI 2002):
// a large-scale network emulation environment in which unmodified
// application logic, running on virtual edge nodes (VNs), is subjected to
// the bandwidth, latency, loss, queueing, and congestion of an arbitrary
// target topology emulated link-by-link by a cluster of core routers.
//
// The system runs the paper's five phases:
//
//	CREATE   — build or load a target topology   (internal/topology)
//	DISTILL  — transform it into a pipe topology (internal/distill)
//	ASSIGN   — partition pipes across cores      (internal/assign)
//	BIND     — place VNs, compute routes, POD    (internal/bind)
//	RUN      — emulate packets in virtual time   (internal/emucore)
//
// This root package wires the phases together behind one call:
//
//	g := modelnet.Ring(20, 20, ringAttrs, accessAttrs)
//	em, err := modelnet.Run(g, modelnet.Options{Cores: 4})
//	h := em.NewHost(0)            // netstack on VN 0
//	...start applications on hosts...
//	em.RunFor(modelnet.Seconds(30))
//
// Everything executes in virtual time: the clock advances only as events
// fire, so results are deterministic and GC pauses cannot corrupt delay
// accuracy (the key substitution this reproduction makes for the paper's
// in-kernel real-time core; see DESIGN.md).
package modelnet

import (
	"fmt"

	"modelnet/internal/assign"
	"modelnet/internal/bind"
	"modelnet/internal/distill"
	"modelnet/internal/dynamics"
	"modelnet/internal/edge"
	"modelnet/internal/emucore"
	"modelnet/internal/fednet"
	"modelnet/internal/netstack"
	"modelnet/internal/obs"
	"modelnet/internal/parcore"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// Re-exported aliases so common use needs only this package.
type (
	// Graph is a target or distilled topology.
	Graph = topology.Graph
	// LinkAttrs are per-link emulation parameters.
	LinkAttrs = topology.LinkAttrs
	// VN identifies a virtual edge node.
	VN = pipes.VN
	// Host is a VN's transport stack (TCP/UDP/RPC).
	Host = netstack.Host
	// Endpoint is a (VN, port) pair.
	Endpoint = netstack.Endpoint
	// Time is virtual time; Duration a virtual span.
	Time = vtime.Time
	// Duration is a span of virtual time.
	Duration = vtime.Duration
	// Profile models core-cluster hardware capacity.
	Profile = emucore.Profile
	// Totals are the cluster-wide conservation counters.
	Totals = emucore.Totals
	// DistillSpec selects the accuracy/scalability tradeoff of §4.1.
	DistillSpec = distill.Spec
	// DynamicsSpec describes virtual-time link dynamics (§4.3): trace
	// replay, scripted failure/recovery, route reconvergence.
	DynamicsSpec = dynamics.Spec
	// DynamicsProfile is one link's timeline of parameter steps.
	DynamicsProfile = dynamics.Profile
	// DynamicsStep is a single scheduled parameter change; use
	// dynamics.Unchanged semantics via the Parse helpers below.
	DynamicsStep = dynamics.Step
	// SyncMode selects the parallel/federated synchronization algebra.
	SyncMode = parcore.SyncMode
)

// Synchronization algebras (Options.Sync): adaptive per-shard window grants
// (the default) or fixed uniform-lookahead windows (the baseline).
const (
	SyncAdaptive = parcore.SyncAdaptive
	SyncFixed    = parcore.SyncFixed
)

// ParseSyncMode maps the CLI spelling ("adaptive", "fixed", "") to a mode.
var ParseSyncMode = parcore.ParseSyncMode

// Distillation modes (§4.1).
const (
	HopByHop = distill.HopByHop
	EndToEnd = distill.EndToEnd
	WalkIn   = distill.WalkIn
	WalkOut  = distill.WalkOut
)

// Topology constructors re-exported from internal/topology.
var (
	NewGraph    = topology.New
	Ring        = topology.Ring
	Star        = topology.Star
	Line        = topology.Line
	Pairs       = topology.Pairs
	FullMesh    = topology.FullMesh
	TransitStub = topology.TransitStub
	ReadGML     = topology.ReadGML
	WriteGML    = topology.WriteGML
	Mbps        = topology.Mbps
	Ms          = topology.Ms
)

// Seconds converts seconds to a virtual Duration.
func Seconds(s float64) Duration { return vtime.DurationOf(s) }

// DefaultProfile models the paper's testbed hardware (see DESIGN.md for
// the calibration); IdealProfile is the event-exact, infinitely
// provisioned reference (the "ns-2 role").
var (
	DefaultProfile = emucore.DefaultProfile
	IdealProfile   = emucore.IdealProfile
)

// Link-dynamics constructors re-exported from internal/dynamics: a
// scripted fault timeline ("3@2s loss=0.05; 3@5s down; 3@8s up;
// reroute=100ms"), a capacity trace for one link ("time_s bw_mbps
// [lat_ms]" lines), and the bundled lte/satellite/wifi sample traces.
var (
	ParseScript  = dynamics.ParseScript
	TraceProfile = dynamics.TraceProfile
	BundledTrace = dynamics.BundledTrace
)

// Options configure an emulation.
type Options struct {
	// Distill selects the distillation mode; zero value = hop-by-hop.
	Distill DistillSpec
	// Cores is the number of emulated core routers (default 1). Pipes are
	// partitioned with greedy k-clusters when Cores > 1.
	Cores int
	// EdgeNodes is the number of physical edge machines VNs multiplex
	// onto (default: one per VN).
	EdgeNodes int
	// RouteCache, when positive, replaces the O(n²) routing matrix with
	// an LRU route cache of that capacity (§2.2 alternative).
	RouteCache int
	// HierarchicalRoutes replaces the matrix with per-stub-cluster tables
	// (the other §2.2 alternative; exact on stub-clustered topologies).
	HierarchicalRoutes bool
	// Profile models the core hardware; zero value = DefaultProfile().
	// Use IdealProfile() for an exact reference emulation.
	Profile *Profile
	// Seed determinizes loss, assignment, and other randomness.
	Seed int64
	// Parallel, with Cores > 1, runs each emulated core router on its own
	// goroutine with its own scheduler, synchronized conservatively
	// (internal/parcore). Same seed ⇒ same results run-to-run, and — under
	// an event-exact profile such as IdealProfile — the same counters and
	// delivery times as the sequential mode. In parallel mode Sched and
	// Emu are nil: drive the run through the Emulation methods (RunFor,
	// Totals, OnDeliver, SchedulerOf) and keep application callbacks on
	// their own host's scheduler.
	Parallel bool
	// Sync selects how parallel and federated runs synchronize their
	// shards: SyncAdaptive (the zero value) grants each shard a window
	// bounded by its own queue horizon and coalesces jointly-idle regions;
	// SyncFixed is the uniform-lookahead baseline. Counters, delivery
	// times, and canonical traces are identical either way — only window
	// placement differs.
	Sync SyncMode
	// Dynamics, when non-nil, schedules link-parameter changes — trace
	// replay, scripted failures, recovery with route reconvergence — as
	// virtual-time events (internal/dynamics). The same spec applies
	// bit-exactly in sequential, parallel, and federated runs.
	Dynamics *dynamics.Spec
	// Trace records a virtual-time packet trace (internal/obs): every pipe
	// enqueue/dequeue/drop/delivery, dynamics step, and cross-core handoff,
	// stamped in virtual ns. Retrieve it with Emulation.TraceData (or
	// FederationReport.Trace in federated runs). Under an event-exact
	// profile the trace's canonical form is byte-identical across the
	// sequential, parallel, and federated modes.
	Trace bool
	// Federate configures multi-process federation (internal/fednet):
	// each core router runs in its own OS process — on its own machine,
	// with remote workers — and the determinism contract above extends
	// across them. Federated runs are driven by registered scenario, not
	// by an Emulation handle: use modelnet.Federate, not Run.
	Federate *FederateOptions
}

// FederateOptions are the federation knobs of Options.
type FederateOptions struct {
	// Listen is the coordinator's control-plane address (default
	// "127.0.0.1:0"; use ":port" to admit workers from other machines).
	Listen string
	// DataPlane carries cross-core tunnel messages: "udp" (default, the
	// paper's IP-in-UDP tunnels) or "tcp" (lossless fallback).
	DataPlane string
	// Spawn re-executes the current binary as the worker fleet; leave
	// false when `modelnet core -join` workers connect on their own.
	Spawn bool
	// CollectDeliveries records every delivery's virtual time in the
	// report (the cross-mode determinism probe).
	CollectDeliveries bool
	// NoBatch reverts the data plane to one frame (and one syscall) per
	// cross-core tunnel message. By default each window's messages per
	// peer coalesce into MTU-bounded batch frames (CLI: -batch=0).
	NoBatch bool
	// MaxDatagram bounds one UDP data-plane frame in bytes; batches are
	// chunked to fit. 0 means fednet.DefaultMaxDatagram.
	MaxDatagram int
	// Edge is the live edge gateway lease (internal/edge): real UDP
	// sockets on the workers, mapped onto ingress VNs, so unmodified
	// external processes can exchange packets with the emulated core.
	// Live runs usually also want RealTime. See DESIGN.md §4.
	Edge *edge.GatewayConfig
	// RealTime slaves window release to the wall clock (virtual ns = wall
	// ns, the paper's 10 kHz-timer role); requires a finite run duration.
	RealTime bool
	// Pace is the real-time pacing quantum (0 = parcore.DefaultPaceQuantum).
	Pace Duration
	// OnLive, when set, runs once all workers are up — before the clock
	// starts — with each shard's gateway address ("" for shards without
	// one).
	OnLive func(gatewayAddrs []string)
	// MetricsListen, when non-empty, serves live run metrics over HTTP
	// (Prometheus text at /metrics, JSON at /metrics.json) on the
	// coordinator at this address; each worker additionally binds a
	// loopback endpoint and reports it in FederationReport.
	MetricsListen string
	// Recover enables checkpoint/restart fault tolerance (requires
	// Spawn): the coordinator takes per-shard state digests at
	// checkpoint barriers, and when a worker process dies mid-run it is
	// respawned and caught up by deterministic round replay. The
	// recovered run's counters, deliveries, and canonical trace are
	// byte-identical to a never-crashed run. See DESIGN.md §8.
	Recover bool
	// CkptEvery is the checkpoint period in step rounds (0 =
	// fednet.DefaultCkptEvery).
	CkptEvery int
	// CkptDir, when non-empty, persists each checkpoint's per-shard
	// digests under this directory (shard-N.ckpt, canonical wire bytes).
	CkptDir string
	// Fail plants one fault for the crash-sweep harness: the chosen
	// worker dies at the chosen step round (by clean exit or SIGKILL),
	// exercising the Recover path on demand. CLI: -fail SHARD@ROUND[:MODE].
	Fail *FailSpec
}

// FailSpec is a planted worker fault (see FederateOptions.Fail).
type FailSpec = fednet.FailSpec

// FederationReport is a federated run's aggregated outcome.
type FederationReport = fednet.Report

// Federate runs a registered federation scenario (internal/fednet;
// internal/experiments registers "ring-cbr" and "gnutella-ring") for
// runFor virtual time across Options.Cores worker processes. The usual
// Options fields — Cores, Seed, Profile, Distill, EdgeNodes, RouteCache,
// HierarchicalRoutes — mean what they mean for Run; Options.Federate
// supplies the socket-layer knobs.
func Federate(scenario string, params any, runFor Duration, opts Options) (*FederationReport, error) {
	fo := FederateOptions{}
	if opts.Federate != nil {
		fo = *opts.Federate
	}
	return fednet.Run(fednet.Options{
		Scenario: scenario,
		Params:   params,
		Cores:    opts.Cores,
		Seed:     opts.Seed,
		Profile:  opts.Profile,
		Distill:  opts.Distill,

		EdgeNodes:    opts.EdgeNodes,
		RouteCache:   opts.RouteCache,
		Hierarchical: opts.HierarchicalRoutes,

		RunFor:            runFor,
		Sync:              opts.Sync,
		Dynamics:          opts.Dynamics,
		Trace:             opts.Trace,
		MetricsListen:     fo.MetricsListen,
		Listen:            fo.Listen,
		DataPlane:         fo.DataPlane,
		Spawn:             fo.Spawn,
		CollectDeliveries: fo.CollectDeliveries,
		NoBatch:           fo.NoBatch,
		MaxDatagram:       fo.MaxDatagram,
		Edge:              fo.Edge,
		RealTime:          fo.RealTime,
		Pace:              fo.Pace,
		OnLive:            fo.OnLive,
		Recover:           fo.Recover,
		CkptEvery:         fo.CkptEvery,
		CkptDir:           fo.CkptDir,
		FailSpec:          fo.Fail,
	})
}

// Emulation is a fully bound, running-ready emulation.
//
// In sequential mode (the default) Sched drives everything and Emu is the
// single emulator. In parallel mode (Options.Parallel) Par replaces both:
// Sched and Emu are nil, each VN's host lives on its home core's scheduler
// (SchedulerOf), and cluster-wide counters come from Totals and Accuracy.
type Emulation struct {
	Sched      *vtime.Scheduler
	Target     *Graph
	Distilled  *distill.Result
	Binding    *bind.Binding
	Assignment *assign.Assignment
	Emu        *emucore.Emulator
	Par        *parcore.Runtime

	hosts  map[VN]*Host
	tracer *obs.Tracer // sequential-mode trace recorder (Options.Trace)
}

// Run executes the Create→Distill→Assign→Bind phases over the target
// topology and returns an emulation ready for the Run phase (start
// applications on hosts, then drive the scheduler).
func Run(target *Graph, opts Options) (*Emulation, error) {
	if opts.Federate != nil {
		return nil, fmt.Errorf("modelnet: Options.Federate set: federated runs are scenario-driven, use modelnet.Federate")
	}
	if err := target.Validate(); err != nil {
		return nil, fmt.Errorf("modelnet: create: %w", err)
	}
	dist, err := distill.Distill(target, opts.Distill)
	if err != nil {
		return nil, fmt.Errorf("modelnet: distill: %w", err)
	}
	cores := opts.Cores
	if cores < 1 {
		cores = 1
	}
	asn, err := assign.KClusters(dist.Graph, cores, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("modelnet: assign: %w", err)
	}
	b, err := bind.Bind(dist.Graph, bind.Options{
		EdgeNodes:    opts.EdgeNodes,
		Cores:        cores,
		RouteCache:   opts.RouteCache,
		Hierarchical: opts.HierarchicalRoutes,
	})
	if err != nil {
		return nil, fmt.Errorf("modelnet: bind: %w", err)
	}
	prof := emucore.DefaultProfile()
	if opts.Profile != nil {
		prof = *opts.Profile
	}
	em := &Emulation{
		Target:     target,
		Distilled:  dist,
		Binding:    b,
		Assignment: asn,
		hosts:      make(map[VN]*Host),
	}
	if opts.Parallel && cores > 1 {
		var newTable func() bind.Table
		if opts.RouteCache > 0 {
			// The LRU cache mutates on lookup; give each shard its own.
			g, clients, cap := dist.Graph, dist.Graph.Clients(), opts.RouteCache
			newTable = func() bind.Table { return bind.NewCache(g, clients, cap) }
		}
		par, err := parcore.New(parcore.Config{
			Graph:      dist.Graph,
			Binding:    b,
			Assignment: asn,
			Profile:    prof,
			Seed:       opts.Seed,
			NewTable:   newTable,
			Sync:       opts.Sync,
			Dynamics:   opts.Dynamics,
			Trace:      opts.Trace,
		})
		if err != nil {
			return nil, fmt.Errorf("modelnet: run: %w", err)
		}
		em.Par = par
		return em, nil
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, dist.Graph, b, asn.POD(), prof, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("modelnet: run: %w", err)
	}
	if opts.Trace {
		em.tracer = obs.NewTracer(-1)
		emu.Trace = em.tracer
	}
	if _, err := dynamics.Attach(sched, emu, opts.Dynamics); err != nil {
		return nil, fmt.Errorf("modelnet: dynamics: %w", err)
	}
	em.Sched = sched
	em.Emu = emu
	return em, nil
}

// NumVNs reports how many VNs the emulation binds.
func (e *Emulation) NumVNs() int { return e.Binding.NumVNs() }

// registrar adapts the emulator to netstack's Registrar.
type registrar struct{ e *emucore.Emulator }

func (r registrar) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	r.e.RegisterVN(vn, emucore.DeliverFunc(fn))
}

// SchedulerOf returns the scheduler that drives vn's host: the global
// scheduler in sequential mode, the VN's home-core scheduler in parallel
// mode. Application timers for a VN must use its own scheduler.
func (e *Emulation) SchedulerOf(vn VN) *vtime.Scheduler {
	if e.Par != nil {
		return e.Par.SchedOf(vn)
	}
	return e.Sched
}

// injectorOf returns the emulator vn's packets enter.
func (e *Emulation) injectorOf(vn VN) *emucore.Emulator {
	if e.Par != nil {
		return e.Par.EmuOf(vn)
	}
	return e.Emu
}

// NewHost returns the transport stack for a VN, creating it on first use.
// If the VN's stack was already created — by NewHost or by NewHostVia —
// that same stack is returned, including its injection wrapper; a VN has
// exactly one stack.
func (e *Emulation) NewHost(vn VN) *Host {
	if h, ok := e.hosts[vn]; ok {
		return h
	}
	emu := e.injectorOf(vn)
	h := netstack.NewHost(vn, e.SchedulerOf(vn), emu, registrar{emu})
	e.hosts[vn] = h
	return h
}

// NewHosts creates hosts for every VN, indexed by VN number.
func (e *Emulation) NewHosts() []*Host {
	out := make([]*Host, e.NumVNs())
	for v := range out {
		out[v] = e.NewHost(VN(v))
	}
	return out
}

// NewHostVia creates the stack for a VN whose packets pass through the
// given injection wrapper (e.g. an edge-machine model). It panics if the
// VN already has a stack: a host created by NewHost would bypass inj, so
// the wrapping must be established before first use, not after.
func (e *Emulation) NewHostVia(vn VN, inj netstack.Injector) *Host {
	if _, ok := e.hosts[vn]; ok {
		panic(fmt.Sprintf("modelnet: NewHostVia(%d): VN already has a host; create wrapped hosts before NewHost", vn))
	}
	h := netstack.NewHost(vn, e.SchedulerOf(vn), inj, registrar{e.injectorOf(vn)})
	e.hosts[vn] = h
	return h
}

// Totals aggregates the conservation counters, transparently across
// sequential and parallel modes.
func (e *Emulation) Totals() emucore.Totals {
	if e.Par != nil {
		return e.Par.Totals()
	}
	return e.Emu.Totals()
}

// PipeDrops returns the per-pipe drop count vector, indexed by pipe ID
// (summed elementwise across shards in parallel mode). It is comparable
// across execution modes and against FederationReport.PipeDrops.
func (e *Emulation) PipeDrops() []uint64 {
	drops := make([]uint64, e.Distilled.Graph.NumLinks())
	sum := func(emu *emucore.Emulator) {
		for i := range drops {
			drops[i] += emu.Pipe(pipes.ID(i)).TotalDrops()
		}
	}
	if e.Par != nil {
		for i := 0; i < e.Par.Cores(); i++ {
			sum(e.Par.ShardEmu(i))
		}
	} else {
		sum(e.Emu)
	}
	return drops
}

// DropsByReason returns the unified drop taxonomy vector, indexed by
// pipes.DropReason (summed across shards in parallel mode). It is
// comparable across execution modes and against
// FederationReport.DropsByReason.
func (e *Emulation) DropsByReason() []uint64 {
	if e.Par == nil {
		return e.Emu.DropsByReason()
	}
	drops := make([]uint64, pipes.NumDropReasons)
	for i := 0; i < e.Par.Cores(); i++ {
		for r, n := range e.Par.ShardEmu(i).DropsByReason() {
			drops[r] += n
		}
	}
	return drops
}

// TraceData returns the recorded packet trace (Options.Trace), merged
// across shards in parallel mode; nil when tracing was off.
func (e *Emulation) TraceData() *obs.Trace {
	if e.Par != nil {
		return e.Par.Trace()
	}
	if e.tracer == nil {
		return nil
	}
	return obs.Merge(e.tracer)
}

// RunProfile returns the run's wall-clock breakdown. In sequential mode
// only the mode and core count are meaningful; in parallel mode it carries
// the drive loop's barrier/compute/flush split and per-shard
// lookahead-utilization counters.
func (e *Emulation) RunProfile() obs.RunProfile {
	if e.Par == nil {
		return obs.RunProfile{Mode: "sequential", Cores: 1}
	}
	st := e.Par.Stats()
	return obs.RunProfile{
		Mode: "parallel", Cores: e.Par.Cores(),
		Windows: st.Windows, SerialRounds: st.SerialRounds, Messages: st.Messages,
		SyncMode:    e.Par.Mode().String(),
		GrantMinMS:  st.GrantMin().Seconds() * 1000,
		GrantMeanMS: st.GrantMean().Seconds() * 1000,
		GrantMaxMS:  st.GrantMax().Seconds() * 1000,
		Drive:       st.Profile,
		Shards:      e.Par.ShardProfiles(),
	}
}

// AccuracyStats returns the delay-accuracy tracker (merged across cores in
// parallel mode).
func (e *Emulation) AccuracyStats() emucore.Accuracy {
	if e.Par != nil {
		return e.Par.Accuracy()
	}
	return e.Emu.Accuracy
}

// OnDeliver installs a hook observing every completed delivery with its
// delivery time. In parallel mode the hook runs concurrently across cores
// and must be safe for that.
func (e *Emulation) OnDeliver(fn func(pkt *pipes.Packet, at Time)) {
	if e.Par != nil {
		e.Par.SetDeliverHook(fn)
		return
	}
	e.Emu.OnDeliver = fn
}

// Now returns the current virtual time.
func (e *Emulation) Now() Time {
	if e.Par != nil {
		return e.Par.Now()
	}
	return e.Sched.Now()
}

// RunFor advances virtual time by d, firing all due events.
func (e *Emulation) RunFor(d Duration) {
	if e.Par != nil {
		e.Par.RunFor(d)
		return
	}
	e.Sched.RunFor(d)
}

// RunUntil advances virtual time to the deadline.
func (e *Emulation) RunUntil(t Time) {
	if e.Par != nil {
		e.Par.RunUntil(t)
		return
	}
	e.Sched.RunUntil(t)
}

// RunToCompletion fires events until none remain.
func (e *Emulation) RunToCompletion() {
	if e.Par != nil {
		e.Par.Run()
		return
	}
	e.Sched.Run()
}
