package main

import (
	"testing"

	"modelnet/internal/edge"
	"modelnet/internal/pipes"
)

// The federation report prints its gateway and drop lines every run; these
// pin the rendering so the report format does not silently regress.

func TestDropSummary(t *testing.T) {
	if got := dropSummary(nil); got != "none" {
		t.Fatalf("empty vector: %q", got)
	}
	drops := make([]uint64, pipes.NumDropReasons)
	if got := dropSummary(drops); got != "none" {
		t.Fatalf("all-zero vector: %q", got)
	}
	drops[pipes.DropBacklog] = 12
	drops[pipes.DropLinkDown] = 3
	drops[pipes.DropGatewayReject] = 1
	want := "backlog=12, link-down=3, gateway-reject=1"
	if got := dropSummary(drops); got != want {
		t.Fatalf("dropSummary = %q, want %q", got, want)
	}
}

func TestEdgeSummary(t *testing.T) {
	// Zero stats must still render — the line is printed every run so a
	// dead live edge is visible, not hidden behind the lease being unset.
	if got := edgeSummary(edge.GatewayStats{}); got != "0 in / 0 out real datagrams (0 oversize, 0 unmapped, 0 queue drops, 0 evictions)" {
		t.Fatalf("zero stats: %q", got)
	}
	got := edgeSummary(edge.GatewayStats{
		IngressPkts: 10, EgressPkts: 8,
		Oversize: 1, Unmapped: 2, QueueDrops: 3, Evictions: 4,
	})
	want := "10 in / 8 out real datagrams (1 oversize, 2 unmapped, 3 queue drops, 4 evictions)"
	if got != want {
		t.Fatalf("edgeSummary = %q, want %q", got, want)
	}
}
