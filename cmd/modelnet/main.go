// Command modelnet runs the five-phase pipeline over a GML target topology
// and drives a synthetic workload through the emulation — the equivalent of
// the paper's deploy scripts, in one binary.
//
//	modelnet [-gml topo.gml] [-distill hop|e2e|walkin|walkout] [-walkin N]
//	         [-cores K] [-parallel] [-flows F] [-duration 10] [-ideal]
//	         [-dynamics script] [-trace LINK=NAME,...] [-out distilled.gml]
//
// Without -gml it synthesizes the paper's §4.1 ring (20 routers × 20 VNs).
// The workload is F random-pair bulk TCP flows; the tool reports phase
// statistics, per-flow goodput, core utilization, and emulation accuracy.
// With -parallel each emulated core router runs on its own goroutine
// (internal/parcore).
//
// Link dynamics (internal/dynamics) schedule parameter changes as
// virtual-time events. -dynamics takes a scripted timeline
// ("3@2s loss=0.05; 3@5s down; 3@8s up; reroute=100ms"); -trace replays a
// capacity trace on chosen pipes ("0=wifi,1=trace.txt" — bundled names lte,
// satellite, wifi, or a file of "time_s bandwidth_mbps [latency_ms]"
// lines). Both also apply to federated runs, shipped bit-exactly to every
// worker in the setup frame.
//
// Federation (internal/fednet) spreads the core routers across OS
// processes:
//
//	modelnet core -join host:port            # one worker (per machine)
//	modelnet -federate :9000 -cores 4        # coordinator, waits for workers
//	modelnet -federate 127.0.0.1:0 -cores 4 -fedspawn   # self-contained demo
//
// Live edge ingress/egress (internal/edge) lets real processes exchange
// datagrams with a federated run through a worker-hosted gateway, paced in
// real time:
//
//	modelnet -federate 127.0.0.1:0 -fedspawn -cores 2 -ideal \
//	    -fedscenario live-ring -duration 10 -edge-listen 127.0.0.1:9123 -edge-map 0>6:7
//	modelnet edge -listen 127.0.0.1:5000 -gateway 127.0.0.1:9123   # local-app forwarder
//	# then, from any terminal: nc -u 127.0.0.1 5000
//
// A federated run drives a registered scenario (-fedscenario ring-cbr,
// gnutella-ring, cfs-ring, webrepl-ring, flaky-edge, or live-ring) instead of the local TCP-flow
// workload, because the workload itself must be distributed across the
// worker processes. cfs-ring federates the §5.1 CFS/DHash store (Chord +
// block-fetch RPC, nested payload codecs); webrepl-ring federates the §5.2
// replicated web service, whose netstack TCP segments — retransmissions
// included — cross the worker processes:
//
//	modelnet -federate 127.0.0.1:0 -fedspawn -cores 2 -ideal -fedscenario cfs-ring -feddata tcp
//
// flaky-edge is the link-dynamics scenario: the webrepl workload over ring
// links replaying the wifi trace, with one ring link failing and recovering
// mid-run (routes reconverge); it derives its own dynamics spec:
//
//	modelnet -federate 127.0.0.1:0 -fedspawn -cores 2 -ideal -fedscenario flaky-edge
//
// Checkpoint/restart (-recover, DESIGN.md §8) makes a spawned federation
// survive worker-process death: the coordinator respawns the dead shard and
// replays its rounds, and the run finishes byte-identical to a crash-free
// one. -fail plants a crash on purpose (the fault-injection harness):
//
//	modelnet -federate 127.0.0.1:0 -fedspawn -cores 2 -ideal -recover -fail 1@3:sigkill
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"modelnet"
	"modelnet/internal/dynamics"
	"modelnet/internal/edge"
	"modelnet/internal/experiments"
	"modelnet/internal/fednet"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/traffic"
)

func main() {
	fednet.MaybeRunWorker() // -fedspawn re-execs this binary as its workers
	if len(os.Args) > 1 && os.Args[1] == "core" {
		coreMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "edge" {
		edgeMain(os.Args[2:])
		return
	}
	gmlPath := flag.String("gml", "", "target topology in GML (default: the paper's ring)")
	distillMode := flag.String("distill", "hop", "distillation: hop, e2e, walkin, walkout")
	walkIn := flag.Int("walkin", 1, "walk-in frontier sets")
	walkOut := flag.Int("walkout", 1, "walk-out frontier sets")
	cores := flag.Int("cores", 1, "emulated core routers")
	parallel := flag.Bool("parallel", false, "run each core router on its own goroutine (internal/parcore)")
	syncMode := flag.String("sync", "adaptive", "parallel/federated synchronization algebra: adaptive (horizon-driven per-shard grants) or fixed (uniform static-lookahead windows)")
	flows := flag.Int("flows", 50, "random-pair bulk TCP flows")
	duration := flag.Float64("duration", 10, "virtual seconds to run")
	ideal := flag.Bool("ideal", false, "ideal (event-exact, infinite-capacity) core")
	dynScript := flag.String("dynamics", "", "link-dynamics script: 'LINK@TIME action...' clauses, ';'-separated (actions bw=MBPS lat=DUR loss=FRAC down up; globals reroute=DUR, noreroute)")
	traceFlag := flag.String("trace", "", "replay capacity traces on pipes: LINK=SOURCE entries, comma-separated (SOURCE: bundled lte/satellite/wifi, or a trace file)")
	seed := flag.Int64("seed", 1, "random seed")
	outPath := flag.String("out", "", "write the distilled topology as GML")
	federate := flag.String("federate", "", "coordinate a multi-process federation listening on this address")
	fedSpawn := flag.Bool("fedspawn", false, "with -federate: spawn the worker processes from this binary")
	fedData := flag.String("feddata", fednet.DataUDP, "with -federate: data plane, udp or tcp")
	fedScenario := flag.String("fedscenario", experiments.ScenarioRingCBR, "with -federate: registered scenario to run")
	fedBatch := flag.Bool("batch", true, "with -federate: coalesce each window's tunnel messages per peer into batch frames (-batch=0 = one frame per message)")
	fedMaxDgram := flag.Int("fedmaxdgram", 0, "with -federate: UDP data-plane datagram bound in bytes (0 = default)")
	fedRecover := flag.Bool("recover", false, "with -federate -fedspawn: checkpoint/restart — respawn and replay any worker process that dies mid-run")
	ckptEvery := flag.Int("ckpt-every", 0, "with -recover: checkpoint period in step rounds (0 = default)")
	ckptDir := flag.String("ckpt-dir", "", "with -recover: persist per-shard checkpoint digests under this directory")
	fedFail := flag.String("fail", "", "with -federate: plant a worker fault 'SHARD@ROUND[:exit|sigkill]' (the crash-sweep harness; pair with -recover to watch the restart)")
	edgeListen := flag.String("edge-listen", "", "with -federate: live edge gateway UDP address (implies -realtime)")
	edgeMap := flag.String("edge-map", "", "with -edge-listen: mappings 'vn>dstvn:dstport' or 'vn@peerip:port>dstvn:dstport', comma-separated")
	realTime := flag.Bool("realtime", false, "with -federate: pace window release against the wall clock (virtual ns = wall ns)")
	pace := flag.Duration("pace", 0, "with -realtime: pacing quantum (0 = 1ms; the paper's 10 kHz timer is 100µs)")
	traceOut := flag.String("trace-out", "", "record a virtual-time packet trace and write it here (.json = Chrome trace-event, .jsonl = JSON lines, other = canonical binary)")
	profileOut := flag.String("profile-out", "", "write the run's wall-clock/barrier profile as JSON")
	metricsListen := flag.String("metrics-listen", "", "with -federate: serve live run metrics over HTTP on this address (Prometheus text at /metrics, JSON at /metrics.json)")
	flag.Parse()

	spec := modelnet.DistillSpec{}
	switch *distillMode {
	case "hop":
		spec.Mode = modelnet.HopByHop
	case "e2e":
		spec.Mode = modelnet.EndToEnd
	case "walkin":
		spec.Mode = modelnet.WalkIn
		spec.WalkIn = *walkIn
	case "walkout":
		spec.Mode = modelnet.WalkOut
		spec.WalkIn = *walkIn
		spec.WalkOut = *walkOut
	default:
		fatal(fmt.Errorf("unknown -distill %q", *distillMode))
	}
	opts := modelnet.Options{Distill: spec, Cores: *cores, Seed: *seed, Parallel: *parallel}
	sm, err := modelnet.ParseSyncMode(*syncMode)
	if err != nil {
		fatal(err)
	}
	opts.Sync = sm
	if *ideal {
		p := modelnet.IdealProfile()
		opts.Profile = &p
	}
	dyn, err := dynamicsFromFlags(*dynScript, *traceFlag)
	if err != nil {
		fatal(err)
	}
	opts.Dynamics = dyn
	opts.Trace = *traceOut != ""
	obsOut := obsOptions{TraceOut: *traceOut, ProfileOut: *profileOut, MetricsListen: *metricsListen}

	if *federate != "" {
		live := liveOptions{
			EdgeListen: *edgeListen, EdgeMap: *edgeMap,
			RealTime: *realTime || *edgeListen != "", Pace: *pace,
		}
		fail, err := parseFailSpec(*fedFail)
		if err != nil {
			fatal(err)
		}
		rec := recoverOptions{Recover: *fedRecover, CkptEvery: *ckptEvery, CkptDir: *ckptDir, Fail: fail}
		federateMain(*federate, *fedSpawn, *fedData, *fedScenario, *duration, !*fedBatch, *fedMaxDgram, live, rec, obsOut, opts)
		return
	}

	g, err := loadTopology(*gmlPath)
	if err != nil {
		fatal(err)
	}
	em, err := modelnet.Run(g, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("create : %d nodes, %d links, %d VNs\n", g.NumNodes(), g.NumLinks(), em.NumVNs())
	fmt.Printf("distill: %s -> %d pipes (%d preserved, %d mesh)\n",
		spec.Mode, em.Distilled.Graph.NumLinks(), em.Distilled.PreservedLinks, em.Distilled.MeshLinks)
	lm := em.Assignment.LoadMetrics()
	fmt.Printf("assign : %d cores, pipes/core %v (imbalance %.2f)\n", *cores, lm.LinksPerCore, lm.Imbalance)
	if *cores > 1 {
		cut := em.Assignment.CutStats(em.Distilled.Graph)
		fmt.Printf("         cut: %d pipes, lookahead %v, mean cut latency %v\n",
			cut.CutPipes, cut.Lookahead, cut.MeanCutLatency)
	}
	mode := "sequential"
	if em.Par != nil {
		mode = fmt.Sprintf("parallel ×%d", em.Par.Cores())
	}
	fmt.Printf("bind   : routing over %d VNs (%s run phase)\n", em.Binding.NumVNs(), mode)
	if opts.Dynamics != nil {
		steps := 0
		for _, p := range opts.Dynamics.Profiles {
			steps += len(p.Steps)
		}
		fmt.Printf("dynamics: %d link profiles, %d steps (reroute=%v)\n",
			len(opts.Dynamics.Profiles), steps, opts.Dynamics.Reroute)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if err := modelnet.WriteGML(f, em.Distilled.Graph); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote distilled topology to %s\n", *outPath)
	}

	// Run phase: random-pair bulk flows, each scheduled on its source
	// VN's scheduler so the same code drives both run modes.
	rng := rand.New(rand.NewSource(*seed))
	n := em.NumVNs()
	if *flows > n/2 {
		*flows = n / 2
	}
	perm := rng.Perm(n)
	var sinks []*traffic.Sink
	for i := 0; i < *flows; i++ {
		srcVN := modelnet.VN(perm[2*i])
		src := em.NewHost(srcVN)
		dst := em.NewHost(modelnet.VN(perm[2*i+1]))
		sink, err := traffic.NewSink(dst, 80)
		if err != nil {
			fatal(err)
		}
		sinks = append(sinks, sink)
		start := modelnet.Time(int64(i) * int64(modelnet.Seconds(0.5)) / int64(*flows))
		em.SchedulerOf(srcVN).At(start, func() {
			traffic.StartBulk(src, netstack.Endpoint{VN: dst.VN(), Port: 80}, traffic.Unbounded)
		})
	}
	begin := time.Now()
	em.RunFor(modelnet.Seconds(*duration))
	wallMS := float64(time.Since(begin).Nanoseconds()) / 1e6

	var rates []float64
	for _, s := range sinks {
		for _, f := range s.Flows {
			rates = append(rates, f.Throughput()/1e6)
		}
	}
	sort.Float64s(rates)
	if len(rates) > 0 {
		sum := 0.0
		for _, r := range rates {
			sum += r
		}
		fmt.Printf("run    : %d flows for %gs: aggregate %.1f Mb/s, per-flow min/median/max %.2f/%.2f/%.2f Mb/s\n",
			len(rates), *duration, sum, rates[0], rates[len(rates)/2], rates[len(rates)-1])
	}
	tot := em.Totals()
	fmt.Printf("core   : %d pkts delivered, %d physical drops, %d virtual drops\n",
		tot.Delivered, tot.PhysDrops, tot.VirtualDrops)
	fmt.Printf("drops  : %s\n", dropSummary(em.DropsByReason()))
	if em.Par != nil {
		rp := em.RunProfile()
		rp.WallMS = wallMS
		fmt.Printf("sync   : %s\n", rp.SyncLine())
		for c := 0; c < em.Par.Cores(); c++ {
			cs := em.Par.ShardEmu(c).CoreStats(c)
			fmt.Printf("core %d : %d pkts in, %d tunnels out\n", c, cs.PktsIn, cs.TunnelsOut)
		}
	} else {
		for c := 0; c < em.Emu.Cores(); c++ {
			fmt.Printf("core %d : cpu %.0f%%, %d tunnels out\n",
				c, em.Emu.CPUUtilization(c, 0)*100, em.Emu.CoreStats(c).TunnelsOut)
		}
	}
	acc := em.AccuracyStats()
	fmt.Printf("accuracy: %v\n", &acc)
	if obsOut.TraceOut != "" {
		tr := em.TraceData()
		if err := tr.WriteFile(obsOut.TraceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("trace  : %d events -> %s\n", len(tr.Events), obsOut.TraceOut)
	}
	if obsOut.ProfileOut != "" {
		rp := em.RunProfile()
		rp.WallMS = wallMS
		if err := rp.WriteFile(obsOut.ProfileOut); err != nil {
			fatal(err)
		}
		fmt.Printf("profile: %s mode breakdown -> %s\n", rp.Mode, obsOut.ProfileOut)
	}
}

// dropSummary renders the unified drop-taxonomy vector (indexed by
// pipes.DropReason), skipping empty slots.
func dropSummary(drops []uint64) string {
	var b strings.Builder
	for r, n := range drops {
		if n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%d", pipes.DropReason(r), n)
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// edgeSummary is the gateway-stats line of the federation report. It prints
// every run — zeros included — so a silently dead live edge is visible, not
// hidden behind the lease being unset.
func edgeSummary(e edge.GatewayStats) string {
	return fmt.Sprintf("%d in / %d out real datagrams (%d oversize, %d unmapped, %d queue drops, %d evictions)",
		e.IngressPkts, e.EgressPkts, e.Oversize, e.Unmapped, e.QueueDrops, e.Evictions)
}

// coreMain is the worker subcommand: one process, one federated shard.
func coreMain(args []string) {
	fs := flag.NewFlagSet("modelnet core", flag.ExitOnError)
	join := fs.String("join", "", "coordinator control-plane address (host:port)")
	timeout := fs.Duration("timeout", fednet.DefaultTimeout, "liveness bound for every protocol step")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: modelnet core -join host:port [-timeout 2m]")
		fmt.Fprintln(os.Stderr, "runs one federated core-router worker; start one per machine, then the coordinator with -federate")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if *join == "" {
		fs.Usage()
		os.Exit(2)
	}
	err := fednet.Worker(*join, fednet.WorkerOptions{
		Timeout: *timeout,
		Log: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		fatal(err)
	}
}

// liveOptions carry the CLI's live edge knobs into federateMain.
type liveOptions struct {
	EdgeListen string
	EdgeMap    string
	RealTime   bool
	Pace       time.Duration
}

// recoverOptions carry the CLI's fault-tolerance knobs into federateMain.
type recoverOptions struct {
	Recover   bool
	CkptEvery int
	CkptDir   string
	Fail      *modelnet.FailSpec
}

// parseFailSpec parses -fail's 'SHARD@ROUND[:exit|sigkill]' syntax.
func parseFailSpec(s string) (*modelnet.FailSpec, error) {
	if s == "" {
		return nil, nil
	}
	spec, mode, _ := strings.Cut(s, ":")
	shardStr, roundStr, ok := strings.Cut(spec, "@")
	if !ok {
		return nil, fmt.Errorf("-fail %q: want SHARD@ROUND[:exit|sigkill]", s)
	}
	shard, err := strconv.Atoi(shardStr)
	if err != nil {
		return nil, fmt.Errorf("-fail %q: bad shard: %v", s, err)
	}
	round, err := strconv.Atoi(roundStr)
	if err != nil {
		return nil, fmt.Errorf("-fail %q: bad round: %v", s, err)
	}
	return &modelnet.FailSpec{Shard: shard, Round: round, Mode: mode}, nil
}

// obsOptions carry the CLI's observability knobs (internal/obs).
type obsOptions struct {
	TraceOut      string
	ProfileOut    string
	MetricsListen string
}

// parseEdgeMaps parses the -edge-map syntax: comma-separated
// "vn>dstvn:dstport" (dynamic: first unknown real source claims the VN) or
// "vn@peerip:port>dstvn:dstport" (static external endpoint).
func parseEdgeMaps(s string) ([]edge.GatewayMap, error) {
	var maps []edge.GatewayMap
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lhs, rhs, ok := strings.Cut(part, ">")
		if !ok {
			return nil, fmt.Errorf("-edge-map %q: want vn[@peer]>dstvn:dstport", part)
		}
		var m edge.GatewayMap
		vnStr, peer, hasPeer := strings.Cut(lhs, "@")
		if hasPeer {
			m.Peer = peer
		}
		// Strict parsing: a typo'd entry must fail loudly, not be
		// partially accepted (Sscanf would ignore trailing garbage).
		vn, err := strconv.Atoi(vnStr)
		if err != nil {
			return nil, fmt.Errorf("-edge-map %q: bad ingress VN %q", part, vnStr)
		}
		m.VN = vn
		dstVN, dstPort, ok := strings.Cut(rhs, ":")
		if !ok {
			return nil, fmt.Errorf("-edge-map %q: bad destination %q (want dstvn:dstport)", part, rhs)
		}
		if m.DstVN, err = strconv.Atoi(dstVN); err != nil {
			return nil, fmt.Errorf("-edge-map %q: bad destination VN %q", part, dstVN)
		}
		port, err := strconv.ParseUint(dstPort, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("-edge-map %q: bad destination port %q", part, dstPort)
		}
		m.DstPort = uint16(port)
		maps = append(maps, m)
	}
	if len(maps) == 0 {
		return nil, fmt.Errorf("-edge-listen needs at least one -edge-map entry")
	}
	return maps, nil
}

// edgeMain is the local-app forwarder: it binds a plain local UDP port and
// relays datagrams between whatever unmodified application sends there
// (netcat, a game client, a measurement probe) and a federated run's edge
// gateway — so the app needs no knowledge of ModelNet at all, just a
// localhost address to talk to. The first local sender becomes the relay's
// peer; replies from the gateway go back to it.
func edgeMain(args []string) {
	fs := flag.NewFlagSet("modelnet edge", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "local UDP address the application talks to")
	gateway := fs.String("gateway", "", "the federated run's edge gateway address (printed by -edge-listen)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: modelnet edge -listen 127.0.0.1:5000 -gateway host:port")
		fmt.Fprintln(os.Stderr, "forwards a local application's UDP socket into a live federated run's edge gateway")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if *gateway == "" {
		fs.Usage()
		os.Exit(2)
	}
	local, err := net.ListenUDP("udp", mustUDPAddr(*listen))
	if err != nil {
		fatal(err)
	}
	up, err := net.DialUDP("udp", nil, mustUDPAddr(*gateway))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("modelnet edge: forwarding %s <-> gateway %s\n", local.LocalAddr(), *gateway)

	// The relay must outlive gateway hiccups: a connected UDP socket
	// surfaces ICMP port-unreachable (gateway not yet up, or the run
	// ended) as ECONNREFUSED on the next read/write, which is transient —
	// log and carry on rather than cutting off the local application.
	transient := func(op string, err error) {
		fmt.Fprintf(os.Stderr, "modelnet edge: %s: %v (gateway down? continuing)\n", op, err)
	}
	var mu sync.Mutex
	var app *net.UDPAddr
	go func() { // gateway -> app
		buf := make([]byte, 64<<10)
		for {
			n, err := up.Read(buf)
			if err != nil {
				transient("gateway read", err)
				time.Sleep(100 * time.Millisecond)
				continue
			}
			mu.Lock()
			dst := app
			mu.Unlock()
			if dst != nil {
				_, _ = local.WriteToUDP(buf[:n], dst)
			}
		}
	}()
	buf := make([]byte, 64<<10) // app -> gateway
	for {
		n, raddr, err := local.ReadFromUDP(buf)
		if err != nil {
			fatal(err) // our own listening socket failing is not transient
		}
		mu.Lock()
		app = raddr
		mu.Unlock()
		if _, err := up.Write(buf[:n]); err != nil {
			transient("gateway write", err)
		}
	}
}

// dynamicsFromFlags builds the link-dynamics spec the -dynamics script and
// -trace replay flags describe (either may be empty; nil when both are).
func dynamicsFromFlags(script, traces string) (*modelnet.DynamicsSpec, error) {
	var spec *modelnet.DynamicsSpec
	if script != "" {
		s, err := dynamics.ParseScript(script)
		if err != nil {
			return nil, err
		}
		spec = s
	}
	if traces == "" {
		return spec, nil
	}
	if spec == nil {
		spec = &modelnet.DynamicsSpec{}
	}
	for _, part := range strings.Split(traces, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		linkStr, src, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-trace %q: want LINK=SOURCE", part)
		}
		link, err := strconv.Atoi(linkStr)
		if err != nil || link < 0 {
			return nil, fmt.Errorf("-trace %q: bad link %q", part, linkStr)
		}
		text, ok := dynamics.BundledTrace(src)
		if !ok {
			data, err := os.ReadFile(src)
			if err != nil {
				return nil, fmt.Errorf("-trace %q: not a bundled trace and %v", part, err)
			}
			text = string(data)
		}
		p, err := dynamics.TraceProfile(link, text)
		if err != nil {
			return nil, fmt.Errorf("-trace %q: %w", part, err)
		}
		spec.Profiles = append(spec.Profiles, p)
	}
	return spec, nil
}

func mustUDPAddr(s string) *net.UDPAddr {
	a, err := net.ResolveUDPAddr("udp", s)
	if err != nil {
		fatal(err)
	}
	return a
}

// federateMain coordinates a multi-process run of a registered scenario.
func federateMain(listen string, spawn bool, dataPlane, scenario string, duration float64, noBatch bool, maxDgram int, live liveOptions, rec recoverOptions, obsOut obsOptions, opts Options) {
	opts.Federate = &modelnet.FederateOptions{
		Listen:        listen,
		DataPlane:     dataPlane,
		Spawn:         spawn,
		NoBatch:       noBatch,
		MaxDatagram:   maxDgram,
		RealTime:      live.RealTime,
		Pace:          modelnet.Duration(live.Pace),
		MetricsListen: obsOut.MetricsListen,
		Recover:       rec.Recover,
		CkptEvery:     rec.CkptEvery,
		CkptDir:       rec.CkptDir,
		Fail:          rec.Fail,
	}
	if live.EdgeListen != "" {
		maps, err := parseEdgeMaps(live.EdgeMap)
		if err != nil {
			fatal(err)
		}
		opts.Federate.Edge = &edge.GatewayConfig{Listen: live.EdgeListen, Maps: maps}
		opts.Federate.OnLive = func(addrs []string) {
			for shard, a := range addrs {
				if a != "" {
					fmt.Printf("live   : shard %d gateway on %s (run window %gs)\n", shard, a, duration)
				}
			}
		}
	}
	if opts.Cores < 2 {
		opts.Cores = 2
	}
	var params any
	switch scenario {
	case experiments.ScenarioRingCBR:
		params = experiments.RingCBRSpec{
			Routers: 20, VNsPerRouter: 20,
			PacketsPerSec: 200, PacketBytes: 1000,
			DurationSec: duration, Seed: opts.Seed,
		}
	case experiments.ScenarioGnutella:
		params = experiments.GnutellaRingSpec{
			Routers: 20, VNsPerRouter: 10,
			Degree: 4, TTL: 7,
			WindowSec: duration, Seed: opts.Seed,
		}
	case experiments.ScenarioCFSRing:
		params = experiments.CFSRingSpec{
			Routers: 6, VNsPerRouter: 2,
			FileKB: 256, WindowKB: 24,
			Downloaders: []int{0, 7},
			DurationSec: duration, Seed: opts.Seed,
		}
	case experiments.ScenarioWebReplRing:
		params = experiments.WebReplRingSpec{
			Routers: 6, VNsPerRouter: 3,
			LossPct:  1.0,
			TraceSec: duration * 0.5, DrainSec: duration * 0.5,
			MinRate: 30, MaxRate: 60, MedianSize: 8 << 10,
			Seed: opts.Seed,
		}
	case experiments.ScenarioFlakyEdge:
		c := experiments.FlakyEdgeSpec{
			Web: experiments.WebReplRingSpec{
				Routers: 6, VNsPerRouter: 3,
				LossPct:  0.5,
				TraceSec: duration * 0.4, DrainSec: duration * 0.6,
				MinRate: 30, MaxRate: 60, MedianSize: 8 << 10,
				Seed: opts.Seed,
			},
			Trace:    "wifi",
			FailLink: 2,
			FailSec:  duration * 0.2, RecoverSec: duration * 0.5,
			RerouteDelaySec: 0.25,
		}
		// The scenario derives its own dynamics (trace replay plus the
		// scripted failure); they ship to the workers in the setup frame.
		dyn, err := c.Dynamics()
		if err != nil {
			fatal(err)
		}
		opts.Dynamics = dyn
		params = c
	case experiments.ScenarioTStubCBR:
		params = experiments.TStubCBRSpec{
			TransitDomains: 2, TransitPerDomain: 4,
			StubsPerTransit: 4, RoutersPerStub: 3, ClientsPerStub: 16,
			Servers: 16, Flows: 64,
			PacketsPerSec: 100, PacketBytes: 512,
			DurationSec: duration, Seed: opts.Seed,
		}
	case experiments.ScenarioLiveRing:
		params = experiments.LiveRingSpec{
			Routers: 6, VNsPerRouter: 2,
			EchoVN: 6, EchoPort: 7,
			DurationSec: duration, Seed: opts.Seed,
		}
	default:
		fatal(fmt.Errorf("-fedscenario %q: known scenarios are %v", scenario, fednet.Scenarios()))
	}
	begin := time.Now()
	// Synthetic scenarios get settle time after the injection window; a
	// real-time run's deadline IS its wall-clock duration, so padding it
	// would keep live users waiting for five silent seconds.
	runFor := modelnet.Seconds(duration + 5)
	if opts.Federate.RealTime {
		runFor = modelnet.Seconds(duration)
	}
	rep, err := modelnet.Federate(scenario, params, runFor, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("federation: %d worker processes over %s, scenario %s\n", rep.Cores, rep.DataPlane, scenario)
	fmt.Printf("run    : %d injected, %d delivered, %d phys drops, %d virtual drops (%.0f ms wall, %.0f ms total)\n",
		rep.Totals.Injected, rep.Totals.Delivered, rep.Totals.PhysDrops, rep.Totals.VirtualDrops,
		rep.WallMS, float64(time.Since(begin).Milliseconds()))
	srp := rep.RunProfile()
	fmt.Printf("sync   : %s (cut: %d pipes, floor %v)\n",
		srp.SyncLine(), rep.Cut.CutPipes, rep.Lookahead)
	if rep.Recoveries > 0 {
		fmt.Printf("recover: %d worker crash(es) recovered in %.1f ms, round replay included\n",
			rep.Recoveries, float64(rep.RecoveryWallNs)/1e6)
	}
	fmt.Printf("wire   : %d data-plane frames, %.1f MB on the wire (%.1f messages/frame)\n",
		rep.Frames, float64(rep.BytesOnWire)/1e6, float64(rep.Sync.Messages)/float64(max(rep.Frames, 1)))
	for _, w := range rep.Workers {
		fmt.Printf("shard %d: %d injected, %d delivered, %d tunnels in, %d tunnels out\n",
			w.Shard, w.Totals.Injected, w.Totals.Delivered, w.TunnelsIn, w.TunnelsOut)
	}
	switch scenario {
	case experiments.ScenarioGnutella:
		if g, err := experiments.GnutellaFederatedReport(rep); err != nil {
			fmt.Fprintln(os.Stderr, "modelnet: scenario report:", err)
		} else {
			fmt.Printf("overlay: %d reachable from servent 0, %d forwarded, %d duplicates\n",
				g.Reachable, g.Forwarded, g.Duplicates)
		}
	case experiments.ScenarioCFSRing:
		if c, err := experiments.CFSFederatedReport(rep); err != nil {
			fmt.Fprintln(os.Stderr, "modelnet: scenario report:", err)
		} else {
			fmt.Printf("cfs    : %d blocks served\n", c.BlocksServed)
			for _, d := range c.Downloads {
				fmt.Printf("  node %2d: %d bytes in %d blocks (%d failed, %d hops) %.1f KB/s done=%v\n",
					d.Node, d.Bytes, d.Blocks, d.Failed, d.Hops, d.SpeedKBps, d.Done)
			}
		}
	case experiments.ScenarioWebReplRing:
		if wr, err := experiments.WebReplFederatedReport(rep); err != nil {
			fmt.Fprintln(os.Stderr, "modelnet: scenario report:", err)
		} else {
			fmt.Printf("web    : %d requests (%d ok, %d failed), %d bytes served, %d retransmits (%d across core boundaries)\n",
				wr.Requests, wr.OK, wr.Failed, wr.ServerBytes, wr.Retransmits, wr.CrossRetransmits)
		}
	case experiments.ScenarioFlakyEdge:
		if wr, err := experiments.FlakyEdgeFederatedReport(rep); err != nil {
			fmt.Fprintln(os.Stderr, "modelnet: scenario report:", err)
		} else {
			fmt.Printf("flaky  : %d requests (%d ok, %d failed), %d bytes served, %d retransmits (%d across core boundaries)\n",
				wr.Requests, wr.OK, wr.Failed, wr.ServerBytes, wr.Retransmits, wr.CrossRetransmits)
		}
	case experiments.ScenarioLiveRing:
		if lr, err := experiments.LiveRingFederatedReport(rep); err != nil {
			fmt.Fprintln(os.Stderr, "modelnet: scenario report:", err)
		} else {
			fmt.Printf("live   : %d pings echoed in-emulation\n", lr.Echoed)
		}
	}
	fmt.Printf("drops  : %s\n", dropSummary(rep.DropsByReason))
	fmt.Printf("edge   : %s\n", edgeSummary(rep.Edge))
	p := rep.Sync.Profile
	fmt.Printf("profile: compute %.0f ms, barrier %.0f ms (flush %.0f ms), serial %.0f ms, idle %.0f ms\n",
		float64(p.ComputeWallNs)/1e6, float64(p.BarrierWallNs)/1e6, float64(p.FlushWallNs)/1e6,
		float64(p.SerialWallNs)/1e6, float64(p.IdleWallNs)/1e6)
	acc := rep.Accuracy
	fmt.Printf("accuracy: %v\n", &acc)
	if obsOut.TraceOut != "" && rep.Trace != nil {
		if err := rep.Trace.WriteFile(obsOut.TraceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("trace  : %d events -> %s\n", len(rep.Trace.Events), obsOut.TraceOut)
	}
	if obsOut.ProfileOut != "" {
		rp := rep.RunProfile()
		if err := rp.WriteFile(obsOut.ProfileOut); err != nil {
			fatal(err)
		}
		fmt.Printf("profile: fednet mode breakdown -> %s\n", obsOut.ProfileOut)
	}
}

// Options is shortened locally for federateMain's signature.
type Options = modelnet.Options

func loadTopology(path string) (*modelnet.Graph, error) {
	if path == "" {
		ring := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(20), LatencySec: modelnet.Ms(5), QueuePkts: 30}
		access := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(2), LatencySec: modelnet.Ms(1), QueuePkts: 20}
		return modelnet.Ring(20, 20, ring, access), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return modelnet.ReadGML(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "modelnet:", err)
	os.Exit(1)
}
