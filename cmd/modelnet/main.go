// Command modelnet runs the five-phase pipeline over a GML target topology
// and drives a synthetic workload through the emulation — the equivalent of
// the paper's deploy scripts, in one binary.
//
//	modelnet -gml topo.gml [-distill hop|e2e|walkin|walkout] [-walkin N]
//	         [-cores K] [-flows F] [-duration 10] [-ideal]
//	         [-out distilled.gml]
//
// Without -gml it synthesizes the paper's §4.1 ring (20 routers × 20 VNs).
// The workload is F random-pair bulk TCP flows; the tool reports phase
// statistics, per-flow goodput, core utilization, and emulation accuracy.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"modelnet"
	"modelnet/internal/netstack"
	"modelnet/internal/traffic"
)

func main() {
	gmlPath := flag.String("gml", "", "target topology in GML (default: the paper's ring)")
	distillMode := flag.String("distill", "hop", "distillation: hop, e2e, walkin, walkout")
	walkIn := flag.Int("walkin", 1, "walk-in frontier sets")
	walkOut := flag.Int("walkout", 1, "walk-out frontier sets")
	cores := flag.Int("cores", 1, "emulated core routers")
	flows := flag.Int("flows", 50, "random-pair bulk TCP flows")
	duration := flag.Float64("duration", 10, "virtual seconds to run")
	ideal := flag.Bool("ideal", false, "ideal (event-exact, infinite-capacity) core")
	seed := flag.Int64("seed", 1, "random seed")
	outPath := flag.String("out", "", "write the distilled topology as GML")
	flag.Parse()

	g, err := loadTopology(*gmlPath)
	if err != nil {
		fatal(err)
	}
	spec := modelnet.DistillSpec{}
	switch *distillMode {
	case "hop":
		spec.Mode = modelnet.HopByHop
	case "e2e":
		spec.Mode = modelnet.EndToEnd
	case "walkin":
		spec.Mode = modelnet.WalkIn
		spec.WalkIn = *walkIn
	case "walkout":
		spec.Mode = modelnet.WalkOut
		spec.WalkIn = *walkIn
		spec.WalkOut = *walkOut
	default:
		fatal(fmt.Errorf("unknown -distill %q", *distillMode))
	}
	opts := modelnet.Options{Distill: spec, Cores: *cores, Seed: *seed}
	if *ideal {
		p := modelnet.IdealProfile()
		opts.Profile = &p
	}
	em, err := modelnet.Run(g, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("create : %d nodes, %d links, %d VNs\n", g.NumNodes(), g.NumLinks(), em.NumVNs())
	fmt.Printf("distill: %s -> %d pipes (%d preserved, %d mesh)\n",
		spec.Mode, em.Distilled.Graph.NumLinks(), em.Distilled.PreservedLinks, em.Distilled.MeshLinks)
	lm := em.Assignment.LoadMetrics()
	fmt.Printf("assign : %d cores, pipes/core %v (imbalance %.2f)\n", *cores, lm.LinksPerCore, lm.Imbalance)
	fmt.Printf("bind   : routing over %d VNs\n", em.Binding.NumVNs())

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if err := modelnet.WriteGML(f, em.Distilled.Graph); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote distilled topology to %s\n", *outPath)
	}

	// Run phase: random-pair bulk flows.
	rng := rand.New(rand.NewSource(*seed))
	n := em.NumVNs()
	if *flows > n/2 {
		*flows = n / 2
	}
	perm := rng.Perm(n)
	var sinks []*traffic.Sink
	for i := 0; i < *flows; i++ {
		src := em.NewHost(modelnet.VN(perm[2*i]))
		dst := em.NewHost(modelnet.VN(perm[2*i+1]))
		sink, err := traffic.NewSink(dst, 80)
		if err != nil {
			fatal(err)
		}
		sinks = append(sinks, sink)
		start := modelnet.Time(int64(i) * int64(modelnet.Seconds(0.5)) / int64(*flows))
		em.Sched.At(start, func() {
			traffic.StartBulk(src, netstack.Endpoint{VN: dst.VN(), Port: 80}, traffic.Unbounded)
		})
	}
	em.RunFor(modelnet.Seconds(*duration))

	var rates []float64
	for _, s := range sinks {
		for _, f := range s.Flows {
			rates = append(rates, f.Throughput()/1e6)
		}
	}
	sort.Float64s(rates)
	if len(rates) > 0 {
		sum := 0.0
		for _, r := range rates {
			sum += r
		}
		fmt.Printf("run    : %d flows for %gs: aggregate %.1f Mb/s, per-flow min/median/max %.2f/%.2f/%.2f Mb/s\n",
			len(rates), *duration, sum, rates[0], rates[len(rates)/2], rates[len(rates)-1])
	}
	tot := em.Emu.Totals()
	fmt.Printf("core   : %d pkts delivered, %d physical drops, %d virtual drops\n",
		tot.Delivered, tot.PhysDrops, tot.VirtualDrops)
	for c := 0; c < em.Emu.Cores(); c++ {
		fmt.Printf("core %d : cpu %.0f%%, %d tunnels out\n",
			c, em.Emu.CPUUtilization(c, 0)*100, em.Emu.CoreStats(c).TunnelsOut)
	}
	fmt.Printf("accuracy: %v\n", &em.Emu.Accuracy)
}

func loadTopology(path string) (*modelnet.Graph, error) {
	if path == "" {
		ring := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(20), LatencySec: modelnet.Ms(5), QueuePkts: 30}
		access := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(2), LatencySec: modelnet.Ms(1), QueuePkts: 20}
		return modelnet.Ring(20, 20, ring, access), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return modelnet.ReadGML(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "modelnet:", err)
	os.Exit(1)
}
