// Command mnbench regenerates every table and figure in the paper's
// evaluation at full (or chosen) scale and prints the rows/series.
//
// Usage:
//
//	mnbench [-scale 1.0] [-run all|fig4|table1|fig5|fig6|fig7|fig8|fig9|fig11|fig12|accuracy|parcore|fednet]
//
// The parcore step additionally records its rows in BENCH_parcore.json
// (override the path with -parcorejson); the fednet step — which spawns
// real worker processes from this binary and covers the ring-cbr,
// cfs-ring, webrepl-ring, and flaky-edge (link dynamics) scenarios —
// records BENCH_fednet.json (-fednetjson).
//
// At -scale 1 (default) the workloads match the paper's parameters: full
// runs take minutes of wall-clock time because they emulate hundreds of
// seconds of virtual time over thousands of flows.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"modelnet/internal/experiments"
	"modelnet/internal/fednet"
)

func main() {
	fednet.MaybeRunWorker() // the fednet step re-execs this binary as its workers
	scale := flag.Float64("scale", 1.0, "experiment scale (1 = the paper's parameters)")
	run := flag.String("run", "all", "comma-separated experiments to run, or 'all'")
	parcoreJSON := flag.String("parcorejson", "BENCH_parcore.json", "where the parcore step records its results ('' = don't)")
	fednetJSON := flag.String("fednetjson", "BENCH_fednet.json", "where the fednet step records its results ('' = don't)")
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }
	s := *scale

	type step struct {
		name string
		fn   func() error
	}
	steps := []step{
		{"fig4", func() error {
			rows, err := experiments.RunFig4(experiments.ScaledFig4(s))
			if err != nil {
				return err
			}
			experiments.PrintFig4(os.Stdout, rows)
			return nil
		}},
		{"table1", func() error {
			rows, err := experiments.RunTable1(experiments.ScaledTable1(s))
			if err != nil {
				return err
			}
			experiments.PrintTable1(os.Stdout, rows)
			return nil
		}},
		{"fig5", func() error {
			series, err := experiments.RunFig5(experiments.ScaledFig5(s))
			if err != nil {
				return err
			}
			experiments.PrintFig5(os.Stdout, series)
			return nil
		}},
		{"fig6", func() error {
			rows, err := experiments.RunFig6(experiments.ScaledFig6(s))
			if err != nil {
				return err
			}
			experiments.PrintFig6(os.Stdout, rows)
			return nil
		}},
		{"fig7", func() error {
			rows, err := experiments.RunFig7(experiments.ScaledCFS(s))
			if err != nil {
				return err
			}
			experiments.PrintFig7(os.Stdout, rows)
			return nil
		}},
		{"fig8", func() error {
			series, err := experiments.RunFig8(experiments.ScaledCFS(s))
			if err != nil {
				return err
			}
			experiments.PrintFig8(os.Stdout, series)
			return nil
		}},
		{"fig9", func() error {
			series, err := experiments.RunFig9(experiments.ScaledFig9(s))
			if err != nil {
				return err
			}
			experiments.PrintFig9(os.Stdout, series)
			return nil
		}},
		{"fig11", func() error {
			series, err := experiments.RunFig11(experiments.ScaledFig11(s))
			if err != nil {
				return err
			}
			experiments.PrintFig11(os.Stdout, series)
			return nil
		}},
		{"fig12", func() error {
			res, err := experiments.RunFig12(experiments.ScaledFig12(s))
			if err != nil {
				return err
			}
			experiments.PrintFig12(os.Stdout, res)
			return nil
		}},
		{"scale", func() error {
			res, err := experiments.RunScale(experiments.ScaledScale(s))
			if err != nil {
				return err
			}
			experiments.PrintScale(os.Stdout, res)
			return nil
		}},
		{"ablations", func() error {
			rt, err := experiments.RunRouteTableAblation()
			if err != nil {
				return err
			}
			experiments.PrintRouteTableAblation(os.Stdout, rt)
			pc, err := experiments.RunPayloadCachingAblation(s)
			if err != nil {
				return err
			}
			experiments.PrintPayloadCachingAblation(os.Stdout, pc)
			fo, err := experiments.RunFailoverAblation()
			if err != nil {
				return err
			}
			experiments.PrintFailoverAblation(os.Stdout, fo)
			return nil
		}},
		{"parcore", func() error {
			res, err := experiments.RunParcoreScaling(experiments.ScaledParcore(s))
			if err != nil {
				return err
			}
			experiments.PrintParcore(os.Stdout, res)
			if *parcoreJSON != "" {
				if err := experiments.WriteParcoreJSON(*parcoreJSON, res); err != nil {
					return err
				}
				fmt.Printf("  [recorded %s]\n", *parcoreJSON)
			}
			return nil
		}},
		{"fednet", func() error {
			res, err := experiments.RunFednetScaling(experiments.ScaledFednet(s))
			if err != nil {
				return err
			}
			experiments.PrintFednet(os.Stdout, res)
			if *fednetJSON != "" {
				if err := experiments.WriteFednetJSON(*fednetJSON, res); err != nil {
					return err
				}
				fmt.Printf("  [recorded %s]\n", *fednetJSON)
			}
			return nil
		}},
		{"accuracy", func() error {
			rows, err := experiments.RunAccuracy(experiments.ScaledAccuracy(s))
			if err != nil {
				return err
			}
			experiments.PrintAccuracy(os.Stdout, rows)
			return nil
		}},
	}
	ranAny := false
	for _, st := range steps {
		if !sel(st.name) {
			continue
		}
		ranAny = true
		start := time.Now()
		if err := st.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "mnbench: %s: %v\n", st.name, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s completed in %v]\n\n", st.name, time.Since(start).Round(time.Millisecond))
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "mnbench: no experiment matches -run %q\n", *run)
		os.Exit(2)
	}
}
