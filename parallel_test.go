package modelnet_test

// Tests for the parallel core-cluster runtime (internal/parcore) through
// the facade: the determinism contract (same seed ⇒ identical counters and
// delivery times in sequential and parallel modes under an event-exact
// profile), run-to-run reproducibility, and closed-loop TCP over the
// parallel cluster.

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"modelnet"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// ringRun drives a jittered CBR UDP workload over a 8×4 ring — every VN
// streams to the diametrically opposite VN — and returns the conservation
// counters, the sorted multiset of delivery times, and the merged accuracy
// tracker.
func ringRun(t *testing.T, parallel bool, cores int, seed int64) (emucore.Totals, []int64, emucore.Accuracy) {
	t.Helper()
	g := modelnet.Ring(8, 4, attrs(20, 5), attrs(5, 1))
	ideal := modelnet.IdealProfile()
	em, err := modelnet.Run(g, modelnet.Options{
		Cores:    cores,
		Parallel: parallel,
		Profile:  &ideal,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var times []int64
	em.OnDeliver(func(pkt *pipes.Packet, at modelnet.Time) {
		mu.Lock()
		times = append(times, int64(at))
		mu.Unlock()
	})
	hosts := em.NewHosts()
	n := len(hosts)
	rng := rand.New(rand.NewSource(seed))
	for v, h := range hosts {
		h.OpenUDP(9, func(netstack.Endpoint, *netstack.Datagram) {})
		s, err := h.OpenUDP(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		dst := modelnet.Endpoint{VN: modelnet.VN((v + n/2) % n), Port: 9}
		// Jittered per-flow phase and period: nanosecond-distinct event
		// times keep cross-core interleavings unambiguous. Senders stop
		// before the run ends so every packet drains (counters don't
		// depend on where the cutoff slices in-flight traffic).
		start := vtime.Duration(rng.Int63n(int64(5 * vtime.Millisecond)))
		period := 8*vtime.Millisecond + vtime.Duration(rng.Int63n(int64(2*vtime.Millisecond)))
		size := 200 + rng.Intn(1000)
		sched := em.SchedulerOf(modelnet.VN(v))
		sendEnd := vtime.Time(0).Add(modelnet.Seconds(2.5))
		var send func()
		send = func() {
			s.SendTo(dst, size, nil)
			if sched.Now().Add(period) < sendEnd {
				sched.After(period, send)
			}
		}
		sched.After(start, send)
	}
	em.RunFor(modelnet.Seconds(3))
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return em.Totals(), times, em.AccuracyStats()
}

func TestParallelMatchesSequential(t *testing.T) {
	const seed = 42
	seqT, seqTimes, seqAcc := ringRun(t, false, 4, seed)
	parT, parTimes, parAcc := ringRun(t, true, 4, seed)

	if seqT != parT {
		t.Errorf("counters diverge:\n sequential %+v\n parallel   %+v", seqT, parT)
	}
	if seqT.Injected == 0 || seqT.Delivered == 0 {
		t.Fatalf("workload idle: %+v", seqT)
	}
	if len(seqTimes) != len(parTimes) {
		t.Fatalf("delivery count: sequential %d, parallel %d", len(seqTimes), len(parTimes))
	}
	for i := range seqTimes {
		if seqTimes[i] != parTimes[i] {
			t.Fatalf("delivery-time multiset diverges at %d: %d vs %d", i, seqTimes[i], parTimes[i])
		}
	}
	if seqAcc != parAcc {
		t.Errorf("accuracy diverges: %+v vs %+v", seqAcc, parAcc)
	}
}

func TestParallelDeterministicAcrossRuns(t *testing.T) {
	a, at, _ := ringRun(t, true, 4, 7)
	b, bt, _ := ringRun(t, true, 4, 7)
	if a != b {
		t.Errorf("parallel run not reproducible: %+v vs %+v", a, b)
	}
	if len(at) != len(bt) {
		t.Fatalf("delivery counts differ: %d vs %d", len(at), len(bt))
	}
	for i := range at {
		if at[i] != bt[i] {
			t.Fatalf("delivery times differ at %d", i)
		}
	}
}

func TestParallelConservesUnderDefaultProfile(t *testing.T) {
	// With a resource model the parallel mode is lazy (handoffs emitted at
	// exit time). It must still conserve packets and stay reproducible.
	run := func() emucore.Totals {
		g := modelnet.Ring(6, 3, attrs(10, 5), attrs(2, 1))
		em, err := modelnet.Run(g, modelnet.Options{Cores: 3, Parallel: true, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		hosts := em.NewHosts()
		for v, h := range hosts {
			h.OpenUDP(9, func(netstack.Endpoint, *netstack.Datagram) {})
			s, _ := h.OpenUDP(0, nil)
			dst := modelnet.Endpoint{VN: modelnet.VN((v + 7) % len(hosts)), Port: 9}
			sched := em.SchedulerOf(modelnet.VN(v))
			off := vtime.Duration(v) * vtime.Millisecond
			sched.After(off, func() { s.SendTo(dst, 600, nil) })
		}
		em.RunFor(modelnet.Seconds(2))
		return em.Totals()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("lazy parallel run not reproducible: %+v vs %+v", a, b)
	}
	if a.Injected != a.Delivered+a.PhysDrops+a.VirtualDrops+uint64(a.InFlight) {
		t.Errorf("conservation violated: %+v", a)
	}
	if a.Delivered == 0 {
		t.Errorf("nothing delivered: %+v", a)
	}
}

func TestParallelTCPTransfer(t *testing.T) {
	// Closed-loop TCP across the parallel cluster: a transfer between
	// opposite sides of the ring completes and delivers every byte.
	g := modelnet.Ring(6, 2, attrs(20, 5), attrs(10, 1))
	ideal := modelnet.IdealProfile()
	em, err := modelnet.Run(g, modelnet.Options{Cores: 3, Parallel: true, Profile: &ideal, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := em.NewHost(0), em.NewHost(6)
	got := 0
	dst.Listen(80, func(c *netstack.Conn) netstack.Handlers {
		return netstack.Handlers{OnData: func(c *netstack.Conn, n int, data []byte) { got += n }}
	})
	c := src.Dial(modelnet.Endpoint{VN: 6, Port: 80}, netstack.Handlers{})
	c.WriteCount(200_000)
	c.Close()
	em.RunFor(modelnet.Seconds(30))
	if got != 200_000 {
		t.Fatalf("transferred %d of 200000 bytes", got)
	}
}
