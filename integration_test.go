package modelnet_test

// Whole-system integration tests: every subsystem at once, the way a real
// experiment composes them.

import (
	"testing"

	"modelnet"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/traffic"
	"modelnet/internal/vtime"
)

// TestKitchenSink runs a transit-stub topology through last-mile
// distillation onto two cores with hierarchical routing, TCP and UDP
// workloads, mid-run cross traffic and latency perturbation — and checks
// global invariants at the end.
func TestKitchenSink(t *testing.T) {
	cfg := topology.TransitStubConfig{
		TransitDomains: 1, TransitPerDomain: 4,
		StubsPerTransit: 2, RoutersPerStub: 3, ClientsPerStub: 4,
		TransitTransit: topology.LinkAttrs{BandwidthBps: topology.Mbps(100), LatencySec: topology.Ms(20), QueuePkts: 60},
		TransitStub:    topology.LinkAttrs{BandwidthBps: topology.Mbps(20), LatencySec: topology.Ms(5), QueuePkts: 50},
		StubStub:       topology.LinkAttrs{BandwidthBps: topology.Mbps(10), LatencySec: topology.Ms(2), QueuePkts: 50},
		ClientStub:     topology.LinkAttrs{BandwidthBps: topology.Mbps(2), LatencySec: topology.Ms(1), QueuePkts: 20},
		Seed:           77,
	}
	g := topology.TransitStub(cfg)
	em, err := modelnet.Run(g, modelnet.Options{
		Distill: modelnet.DistillSpec{Mode: modelnet.WalkIn, WalkIn: 1},
		Cores:   2,
		Seed:    77,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := em.NumVNs()
	hosts := em.NewHosts()

	// TCP transfers between random-ish pairs.
	const transfer = 200_000
	received := make([]int, n)
	for i := 0; i < n/2; i++ {
		dst := n/2 + i
		di := dst
		hosts[dst].Listen(80, func(c *netstack.Conn) netstack.Handlers {
			return netstack.Handlers{OnData: func(c *netstack.Conn, k int, data []byte) { received[di] += k }}
		})
		src := hosts[i]
		em.Sched.At(modelnet.Time(int64(i)*int64(100*vtime.Millisecond)), func() {
			b := traffic.StartBulk(src, netstack.Endpoint{VN: modelnet.VN(di), Port: 80}, transfer)
			_ = b
		})
	}
	// UDP chatter over the same fabric.
	udpGot := 0
	hosts[0].OpenUDP(9, func(netstack.Endpoint, *netstack.Datagram) { udpGot++ })
	var tickers []*vtime.Ticker
	for i := 1; i < n; i++ {
		sock, _ := hosts[i].OpenUDP(0, nil)
		to := netstack.Endpoint{VN: 0, Port: 9}
		tk := vtime.NewTicker(em.Sched, 500*vtime.Millisecond, func() {
			sock.SendTo(to, 100, nil)
		})
		tk.Start()
		tickers = append(tickers, tk)
	}
	// Cross traffic arrives mid-run and clears later.
	ct := traffic.NewCrossTraffic(em.Emu)
	em.Sched.At(modelnet.Time(modelnet.Seconds(5)), func() {
		loads := map[pipes.ID]float64{}
		for p := 0; p < em.Emu.NumPipes(); p++ {
			loads[pipes.ID(p)] = em.Emu.Pipe(pipes.ID(p)).Params().BandwidthBps * 0.4
		}
		ct.Apply(loads)
	})
	em.Sched.At(modelnet.Time(modelnet.Seconds(15)), ct.Clear)
	// Latency perturbation, ACDC-style.
	pert := traffic.NewPerturber(em.Emu, 77)
	em.Sched.At(modelnet.Time(modelnet.Seconds(10)), func() { pert.JitterLatency(0.25, 0.25) })
	em.Sched.At(modelnet.Time(modelnet.Seconds(20)), pert.Restore)

	em.RunFor(modelnet.Seconds(85))
	for _, tk := range tickers {
		tk.Stop()
	}
	em.RunFor(modelnet.Seconds(5)) // drain

	for i := n / 2; i < n; i++ {
		if received[i] != transfer {
			t.Errorf("flow to VN %d delivered %d of %d", i, received[i], transfer)
		}
	}
	if udpGot == 0 {
		t.Error("no UDP delivered")
	}
	tot := em.Emu.Totals()
	if tot.InFlight != 0 {
		t.Errorf("packets still in flight at quiescence: %d", tot.InFlight)
	}
	if tot.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Accuracy holds under the full mix: last-mile paths are ≤3 pipes.
	if !em.Emu.Accuracy.WithinBound(4 * modelnet.DefaultProfile().Tick) {
		t.Errorf("accuracy violated: max lag %v", em.Emu.Accuracy.MaxLag)
	}
}

// TestHierarchicalRoutesThroughFacade drives traffic with the §2.2
// hierarchical tables end to end.
func TestHierarchicalRoutesThroughFacade(t *testing.T) {
	g := modelnet.Ring(6, 4,
		modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(20), LatencySec: modelnet.Ms(5), QueuePkts: 30},
		modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(2), LatencySec: modelnet.Ms(1), QueuePkts: 20})
	em, err := modelnet.Run(g, modelnet.Options{HierarchicalRoutes: true})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	h0 := em.NewHost(0)
	h17 := em.NewHost(17)
	h17.Listen(80, func(c *netstack.Conn) netstack.Handlers {
		return netstack.Handlers{OnData: func(c *netstack.Conn, n int, data []byte) { got += n }}
	})
	c := h0.Dial(modelnet.Endpoint{VN: 17, Port: 80}, netstack.Handlers{})
	c.WriteCount(50_000)
	c.Close()
	em.RunFor(modelnet.Seconds(30))
	if got != 50_000 {
		t.Fatalf("hierarchical routing delivered %d", got)
	}
}

// TestTickBoundaryInvariant: under any non-ideal profile, every delivery
// lands exactly on a scheduler tick — the quantization the paper's 10 kHz
// timer imposes.
func TestTickBoundaryInvariant(t *testing.T) {
	g := modelnet.Star(6, modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(10), LatencySec: modelnet.Ms(3), QueuePkts: 30})
	prof := modelnet.DefaultProfile()
	em, err := modelnet.Run(g, modelnet.Options{Profile: &prof, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	hosts := em.NewHosts()
	violations := 0
	for i := range hosts {
		i := i
		hosts[i].OpenUDP(9, func(netstack.Endpoint, *netstack.Datagram) {
			if em.Now()%modelnet.Time(prof.Tick) != 0 {
				violations++
			}
			_ = i
		})
	}
	for i := range hosts {
		sock, _ := hosts[i].OpenUDP(0, nil)
		for j := 0; j < 50; j++ {
			dst := (i + j + 1) % len(hosts)
			if dst == i {
				continue // loopback bypasses the core (kernel-local), so no tick applies
			}
			to := netstack.Endpoint{VN: modelnet.VN(dst), Port: 9}
			sz := 100 + j*17
			em.Sched.At(modelnet.Time(int64(j)*int64(777*vtime.Microsecond)), func() {
				sock.SendTo(to, sz, nil)
			})
		}
	}
	em.RunFor(modelnet.Seconds(5))
	if violations > 0 {
		t.Errorf("%d deliveries off tick boundaries", violations)
	}
	if em.Emu.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}
