module modelnet

go 1.21
