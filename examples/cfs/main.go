// CFS example (§5.1): a 12-node Chord/DHash deployment on a RON-like
// full-mesh topology. Stripes a 1 MB file across the ring, then downloads
// it with increasing prefetch windows, reproducing the shape of the CFS
// paper's Figure 6 as re-measured on ModelNet.
//
//	go run ./examples/cfs
package main

import (
	"fmt"
	"log"

	"modelnet"
	"modelnet/internal/apps/cfs"
	"modelnet/internal/apps/chord"
)

func main() {
	g := cfs.RONTopology(cfs.RONSites, 42)
	em, err := modelnet.Run(g, modelnet.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// One CFS peer per RON site; bootstrap the Chord ring offline.
	var peers []*cfs.Peer
	var cnodes []*chord.Node
	for i := 0; i < em.NumVNs(); i++ {
		p, err := cfs.NewPeer(em.NewHost(modelnet.VN(i)), chord.HashString(fmt.Sprintf("site%d", i)), chord.Config{})
		if err != nil {
			log.Fatal(err)
		}
		peers = append(peers, p)
		cnodes = append(cnodes, p.Chord)
	}
	chord.BootstrapAll(cnodes)

	const fileSize = 1 << 20
	counts := cfs.Stripe(peers, "demo.dat", fileSize)
	fmt.Printf("striped %d blocks of %d KB across %d peers\n",
		fileSize/cfs.BlockSize, cfs.BlockSize>>10, len(counts))

	blocks := cfs.FileBlocks("demo.dat", fileSize)
	for _, windowKB := range []int{0, 8, 24, 40, 96} {
		var res cfs.FetchResult
		peers[0].Fetch(blocks, windowKB<<10, func(r cfs.FetchResult) { res = r })
		em.RunUntil(em.Now().Add(modelnet.Seconds(600)))
		fmt.Printf("prefetch %3d KB: %6.1f KB/s (%.1fs, %d chord hops, %d failed)\n",
			windowKB, res.SpeedKBps, res.Elapsed.Seconds(), res.LookupHops, res.Failed)
	}
}
