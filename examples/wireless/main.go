// Ad hoc wireless example (the §5 extension): stations on a shared
// broadcast medium with random-waypoint mobility. A TCP transfer between
// two moving stations experiences connectivity loss and shared-channel
// contention as neighbors transmit.
//
//	go run ./examples/wireless
package main

import (
	"fmt"

	"modelnet"
	"modelnet/internal/netstack"
	"modelnet/internal/vtime"
	"modelnet/internal/wireless"
)

func main() {
	sched := vtime.NewScheduler()
	m := wireless.NewMedium(sched, wireless.Config{
		BitRate: 11e6, // 802.11b
		Range:   250,
		Width:   600, Height: 600,
		LossRate: 0.01,
		SpeedMin: 1, SpeedMax: 8, // pedestrian to vehicle
		Seed: 21,
	})
	const n = 8
	for i := 0; i < n; i++ {
		m.AddNodeRandom(modelnet.VN(i))
	}
	hosts := make([]*netstack.Host, n)
	for i := range hosts {
		hosts[i] = netstack.NewHost(modelnet.VN(i), sched, m, m)
	}

	// Background chatter: every station beacons 256 B per 100 ms,
	// consuming shared airtime within its range.
	for i := 0; i < n; i++ {
		i := i
		vtime.NewTicker(sched, 100*vtime.Millisecond, func() {
			m.Broadcast(modelnet.VN(i), 256, nil)
		}).Start()
	}

	// A TCP transfer between stations 0 and 1 while both wander.
	got := 0
	hosts[1].Listen(80, func(c *netstack.Conn) netstack.Handlers {
		return netstack.Handlers{OnData: func(c *netstack.Conn, nn int, data []byte) { got += nn }}
	})
	conn := hosts[0].Dial(netstack.Endpoint{VN: 1, Port: 80}, netstack.Handlers{})
	conn.WriteCount(24 << 20) // long enough that mobility matters
	conn.Close()

	for t := 5; t <= 30; t += 5 {
		sched.RunUntil(vtime.Time(t) * vtime.Time(vtime.Second))
		x0, y0 := m.Position(0)
		x1, y1 := m.Position(1)
		fmt.Printf("t=%2ds: received %4d KB  pos0=(%.0f,%.0f) pos1=(%.0f,%.0f) inRange=%v neighbors0=%d\n",
			t, got>>10, x0, y0, x1, y1, m.InRange(0, 1), len(m.Neighbors(0)))
	}
	fmt.Printf("\ntransfer: %d KB of %d KB, %d retransmits, %d timeouts\n",
		got>>10, 24<<10, conn.Retransmits, conn.Timeouts)
	fmt.Printf("medium  : %d unicasts, %d broadcasts, %d out-of-range drops\n",
		m.Unicasts, m.Broadcasts, m.DropsRange)
}
