// Replicated web service example (§5.2): trace-driven clients on a
// transit-stub topology fetch from one, then two, then three replicas;
// added replicas relieve contention on the shared interior links and
// collapse the latency tail.
//
//	go run ./examples/webreplica
package main

import (
	"fmt"
	"log"

	"modelnet"
	"modelnet/internal/apps/webrepl"
	"modelnet/internal/netstack"
	"modelnet/internal/topology"
	"modelnet/internal/traffic"
)

func main() {
	for replicas := 1; replicas <= 3; replicas++ {
		run(replicas)
	}
}

func run(nReplicas int) {
	// A compact transit-stub world: clients behind thin access links,
	// candidate replica sites spread across the core.
	cfg := topology.TransitStubConfig{
		TransitDomains: 1, TransitPerDomain: 4,
		StubsPerTransit: 2, RoutersPerStub: 3, ClientsPerStub: 8,
		TransitTransit: topology.LinkAttrs{BandwidthBps: topology.Mbps(50), LatencySec: topology.Ms(20), QueuePkts: 60},
		TransitStub:    topology.LinkAttrs{BandwidthBps: topology.Mbps(10), LatencySec: topology.Ms(5), QueuePkts: 50},
		StubStub:       topology.LinkAttrs{BandwidthBps: topology.Mbps(10), LatencySec: topology.Ms(2), QueuePkts: 50},
		ClientStub:     topology.LinkAttrs{BandwidthBps: topology.Mbps(1), LatencySec: topology.Ms(1), QueuePkts: 20},
		Seed:           9,
	}
	g := topology.TransitStub(cfg)
	em, err := modelnet.Run(g, modelnet.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	n := em.NumVNs()
	// Last nReplicas VNs serve; the rest request.
	var replicaVNs []int
	for i := 0; i < nReplicas; i++ {
		vn := n - 1 - i*3 // spread across stub domains
		replicaVNs = append(replicaVNs, vn)
		if _, err := webrepl.NewServer(em.NewHost(modelnet.VN(vn)), 80); err != nil {
			log.Fatal(err)
		}
	}
	nClients := n - nReplicas*3
	hosts := make([]*netstack.Host, nClients)
	for i := range hosts {
		hosts[i] = em.NewHost(modelnet.VN(i))
	}
	pb := webrepl.NewPlayback(hosts, func(client int) netstack.Endpoint {
		vn := replicaVNs[client%len(replicaVNs)]
		return netstack.Endpoint{VN: modelnet.VN(vn), Port: 80}
	})
	reqs := traffic.Synthesize(traffic.TraceConfig{
		Duration: modelnet.Seconds(30), Clients: nClients,
		MinRate: 8, MaxRate: 16, MedianSize: 8 << 10, Seed: 11,
	})
	pb.Run(reqs)
	em.RunFor(modelnet.Seconds(60))
	lat, failed := pb.LatencySample()
	fmt.Printf("%d replica(s): %5d requests  p50 %6.0f ms  p90 %6.0f ms  p99 %7.0f ms  failed %d\n",
		nReplicas, lat.N(), lat.Median()*1e3, lat.Percentile(90)*1e3, lat.Percentile(99)*1e3, failed)
}
