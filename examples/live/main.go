// Live edge demo: real packets through an emulated core.
//
// This program runs THREE kinds of process:
//
//   - a coordinator (this main), which drives a 2-worker federated run of
//     the live-ring scenario under real-time pacing, with an edge gateway
//     leased on the worker homing VN 0;
//   - two federation workers (this binary re-executed by fedspawn), each
//     emulating half the ring's pipes in its own process;
//   - one measurement client (this binary re-executed with
//     MODELNET_LIVE_CLIENT set), which is deliberately not linked into any
//     emulator state at runtime: it opens a plain UDP socket, pings the
//     gateway address it was handed, and measures what comes back — the
//     paper's unmodified-application story, end to end.
//
// The client's datagrams enter the virtual ring at VN 0, traverse it to the
// echo responder at VN 6 (three 5 ms ring hops and two 1 ms access links
// each way), and return through the gateway. Because window release is
// slaved to the wall clock, the measured round trip must be at least the
// modeled 34 ms — the demo asserts exactly that, and exits non-zero if the
// emulation ever beats its own model (or drops the loss-free pings).
//
//	go run ./examples/live            # ~4s, self-contained over loopback
//	go run ./examples/live -loss 20   # watch the client measure ring loss
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"time"

	"modelnet"
	"modelnet/internal/edge"
	"modelnet/internal/experiments"
	"modelnet/internal/fednet"
)

const clientEnv = "MODELNET_LIVE_CLIENT"

// clientReport is what the external client prints on stdout as JSON.
type clientReport struct {
	Sent     int     `json:"sent"`
	Received int     `json:"received"`
	MinRTTMS float64 `json:"min_rtt_ms"`
	AvgRTTMS float64 `json:"avg_rtt_ms"`
	LossPct  float64 `json:"loss_pct"`
}

func main() {
	fednet.MaybeRunWorker() // federation workers divert here
	if addr := os.Getenv(clientEnv); addr != "" {
		clientMain(addr)
		return
	}

	duration := flag.Float64("duration", 3, "run window in (wall = virtual) seconds")
	loss := flag.Float64("loss", 0, "ring-link loss percentage the client should observe")
	pings := flag.Int("pings", 12, "datagrams the external client sends (max 255: one-byte sequence)")
	metricsListen := flag.String("metrics-listen", "", "serve live coordinator metrics on host:port while the run is paced")
	flag.Parse()
	if *pings < 1 || *pings > 255 {
		log.Fatalf("-pings %d: the demo's sequence number is one byte, use 1..255", *pings)
	}

	spec := experiments.LiveRingSpec{
		Routers: 6, VNsPerRouter: 2,
		EchoVN: 6, EchoPort: 7,
		RingLossPct: *loss,
		DurationSec: *duration, Seed: 1,
	}
	ideal := modelnet.IdealProfile()

	var client *exec.Cmd
	var clientOut []byte
	clientErr := make(chan error, 1)

	rep, err := fednet.Run(fednet.Options{
		Scenario: experiments.ScenarioLiveRing, Params: spec,
		Cores: 2, Seed: 1, Profile: &ideal,
		RunFor: spec.RunFor(), Spawn: true,
		RealTime:      true,
		MetricsListen: *metricsListen,
		Edge: &edge.GatewayConfig{
			Listen: "127.0.0.1:0",
			Maps:   []edge.GatewayMap{{VN: 0, DstVN: spec.EchoVN, DstPort: spec.EchoPort}},
		},
		OnLive: func(addrs []string) {
			gw := ""
			for shard, a := range addrs {
				if a != "" {
					gw = a
					fmt.Printf("gateway: shard %d listening on %s\n", shard, a)
				}
			}
			// The measurement client is a separate OS process linked only
			// to the standard library at runtime: re-exec ourselves in
			// client mode with plain sockets.
			self, err := os.Executable()
			if err != nil {
				log.Fatal(err)
			}
			client = exec.Command(self)
			client.Env = append(os.Environ(),
				clientEnv+"="+gw,
				"MODELNET_LIVE_PINGS="+fmt.Sprint(*pings),
				"MODELNET_LIVE_WINDOW_MS="+fmt.Sprint(int(*duration*1000)-500),
			)
			client.Stderr = os.Stderr
			go func() {
				out, err := client.Output()
				clientOut = out
				clientErr <- err
			}()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := <-clientErr; err != nil {
		log.Fatalf("live client: %v", err)
	}
	var cr clientReport
	if err := json.Unmarshal(clientOut, &cr); err != nil {
		log.Fatalf("live client output %q: %v", clientOut, err)
	}

	oneWay := time.Duration(spec.OneWay())
	fmt.Printf("client : %d/%d pings returned (%.1f%% loss), RTT min %.1f ms avg %.1f ms (model floor %.0f ms)\n",
		cr.Received, cr.Sent, cr.LossPct, cr.MinRTTMS, cr.AvgRTTMS, (2*oneWay).Seconds()*1000)
	lr, err := experiments.LiveRingFederatedReport(rep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core   : gateway %d in / %d out, echo responder answered %d, %d windows (%d serial)\n",
		rep.Edge.IngressPkts, rep.Edge.EgressPkts, lr.Echoed, rep.Sync.Windows, rep.Sync.SerialRounds)

	// The demo's contract: with loss-free links every ping comes home, and
	// no reply may beat the model's round trip — the emulated latency is
	// real latency to the unlinked client.
	if cr.Received == 0 {
		log.Fatal("FAIL: no ping survived the round trip")
	}
	if *loss == 0 && cr.Received < cr.Sent {
		log.Fatalf("FAIL: lost %d of %d pings on loss-free links", cr.Sent-cr.Received, cr.Sent)
	}
	if min := time.Duration(cr.MinRTTMS * float64(time.Millisecond)); min < 2*oneWay {
		log.Fatalf("FAIL: min RTT %v beats the modeled %v round trip", min, 2*oneWay)
	}
	fmt.Println("OK: the external client observed the emulated ring's latency through real sockets")
}

// clientMain is the external measurement process: standard library only,
// no emulator state — as far as it can tell, it is pinging a real server.
func clientMain(addr string) {
	pings := 10
	fmt.Sscan(os.Getenv("MODELNET_LIVE_PINGS"), &pings)
	windowMS := 2000
	fmt.Sscan(os.Getenv("MODELNET_LIVE_WINDOW_MS"), &windowMS)

	conn, err := net.Dial("udp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	sentAt := make([]time.Time, pings)
	var rep clientReport
	var rttSum time.Duration
	minRTT := time.Hour
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 2048)
		_ = conn.SetReadDeadline(time.Now().Add(time.Duration(windowMS) * time.Millisecond))
		for rep.Received < pings {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			if n < 1 || int(buf[0]) >= pings {
				continue
			}
			rtt := time.Since(sentAt[buf[0]])
			rttSum += rtt
			if rtt < minRTT {
				minRTT = rtt
			}
			rep.Received++
		}
	}()
	payload := make([]byte, 64)
	for i := 0; i < pings; i++ {
		payload[0] = byte(i)
		sentAt[i] = time.Now()
		if _, err := conn.Write(payload); err != nil {
			log.Fatal(err)
		}
		rep.Sent++
		time.Sleep(80 * time.Millisecond)
	}
	<-done

	if rep.Received > 0 {
		rep.MinRTTMS = float64(minRTT) / float64(time.Millisecond)
		rep.AvgRTTMS = float64(rttSum) / float64(rep.Received) / float64(time.Millisecond)
	}
	rep.LossPct = 100 * float64(rep.Sent-rep.Received) / float64(rep.Sent)
	out, _ := json.Marshal(rep)
	fmt.Println(string(out))
}
