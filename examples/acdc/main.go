// ACDC example (§5.3): an adaptive two-metric overlay on an emulated
// transit-stub network. The overlay converges to a cheap distribution tree,
// then ModelNet perturbs link delays mid-run; the overlay sacrifices cost
// to restore its delay target, then re-optimizes when conditions subside.
//
//	go run ./examples/acdc
package main

import (
	"fmt"
	"log"

	"modelnet"
	"modelnet/internal/experiments"
)

func main() {
	cfg := experiments.DefaultFig12()
	// Keep the demo brisk: a quarter of the paper's timeline.
	cfg.Members = 60
	cfg.Duration = modelnet.Seconds(800)
	cfg.PerturbFrom = modelnet.Seconds(250)
	cfg.PerturbTo = modelnet.Seconds(500)
	cfg.SampleEvery = modelnet.Seconds(50)
	cfg.TransitDomains, cfg.TransitPerDomain = 2, 3
	cfg.StubsPerTransit, cfg.RoutersPerStub = 3, 6

	res, err := experiments.RunFig12(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline references: MST cost %.1f, SPT max delay %.3fs (target %.1fs)\n\n",
		res.MSTCost, res.SPTDelay, cfg.TargetDelay)
	fmt.Printf("%8s %10s %10s   %s\n", "t (s)", "cost/MST", "delay (s)", "phase")
	for _, r := range res.Rows {
		phase := "optimize cost"
		if r.T > cfg.PerturbFrom.Seconds() && r.T <= cfg.PerturbTo.Seconds() {
			phase = "perturbation: +0-25% delay on 25% of links every 25s"
		} else if r.T > cfg.PerturbTo.Seconds() {
			phase = "conditions subsided"
		}
		fmt.Printf("%8.0f %10.2f %10.3f   %s\n", r.T, r.CostRatio, r.MaxDelay, phase)
	}
}
