// Gnutella example: the paper's largest experiment ran 10,000 unmodified
// gnutella clients and measured connectivity. This example builds a
// 2,000-servent network (tune -n up to 10000), floods pings and keyword
// queries, and reports reachability and flood cost.
//
//	go run ./examples/gnutella [-n 2000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"modelnet"
	"modelnet/internal/apps/gnutella"
	"modelnet/internal/netstack"
)

func main() {
	n := flag.Int("n", 2000, "number of servents")
	degree := flag.Int("degree", 4, "target overlay degree")
	flag.Parse()

	// Edge infrastructure: a star of 10 Mb/s access links (the overlay,
	// not the physical topology, is the subject here).
	attr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(10), LatencySec: modelnet.Ms(5), QueuePkts: 200}
	g := modelnet.Star(*n, attr)
	ideal := modelnet.IdealProfile()
	em, err := modelnet.Run(g, modelnet.Options{Profile: &ideal, Seed: 13, RouteCache: 1 << 16})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(13))
	peers := make([]*gnutella.Peer, *n)
	for i := range peers {
		p, err := gnutella.NewPeer(em.NewHost(modelnet.VN(i)), i, gnutella.Config{})
		if err != nil {
			log.Fatal(err)
		}
		peers[i] = p
	}
	connect := func(a, b int) {
		peers[a].Connect(peers[b].Addr())
		peers[b].Connect(peers[a].Addr())
	}
	for i := 1; i < *n; i++ {
		connect(i, rng.Intn(i))
	}
	for i := 0; i < *n*(*degree-2)/2; i++ {
		a, b := rng.Intn(*n), rng.Intn(*n)
		if a != b {
			connect(a, b)
		}
	}
	// A few sharers of a popular keyword.
	for i := 0; i < 20; i++ {
		peers[rng.Intn(*n)].Share("freebird.mp3")
	}

	reach := 0
	peers[0].Reachability(modelnet.Seconds(30), func(c int) { reach = c })
	hits := map[netstack.Endpoint]bool{}
	peers[0].Query("freebird.mp3", func(from netstack.Endpoint) { hits[from] = true })
	em.RunFor(modelnet.Seconds(40))

	var fwd, dup uint64
	for _, p := range peers {
		fwd += p.Forwarded
		dup += p.Duplicates
	}
	fmt.Printf("network : %d servents, degree %d, TTL 7\n", *n, *degree)
	fmt.Printf("ping    : %d/%d servents reachable from peer 0\n", reach, *n-1)
	fmt.Printf("query   : %d sharers found\n", len(hits))
	fmt.Printf("flooding: %d messages forwarded, %d duplicates suppressed\n", fwd, dup)
	fmt.Printf("core    : %d packets emulated\n", em.Emu.Delivered)
}
