// Quickstart: build a small target topology, run the five ModelNet phases,
// and push one TCP flow through the emulated network.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"modelnet"
	"modelnet/internal/netstack"
)

func main() {
	// CREATE: two clients behind a shared 1.5 Mb/s / 40 ms "DSL" hub —
	// a tiny Internet in miniature.
	attr := modelnet.LinkAttrs{
		BandwidthBps: modelnet.Mbps(1.5),
		LatencySec:   modelnet.Ms(40),
		QueuePkts:    20,
	}
	g := modelnet.Star(2, attr)

	// DISTILL + ASSIGN + BIND: defaults (hop-by-hop, one core).
	em, err := modelnet.Run(g, modelnet.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// RUN: VN 1 serves, VN 0 downloads 1 MB.
	server := em.NewHost(1)
	client := em.NewHost(0)

	const total = 1 << 20
	received := 0
	var doneAt modelnet.Time
	server.Listen(80, func(c *netstack.Conn) netstack.Handlers {
		return netstack.Handlers{
			OnData: func(c *netstack.Conn, n int, data []byte) {
				received += n
				if received >= total {
					doneAt = em.Now()
				}
			},
		}
	})

	conn := client.Dial(netstack.Endpoint{VN: 1, Port: 80}, netstack.Handlers{
		OnConnect: func(c *netstack.Conn) {
			fmt.Printf("connected at %v (SYN handshake over two 40 ms hops)\n", em.Now())
		},
	})
	conn.WriteCount(total)
	conn.Close()

	em.RunFor(modelnet.Seconds(60))

	elapsed := doneAt.Seconds()
	if elapsed == 0 {
		elapsed = em.Now().Seconds()
	}
	fmt.Printf("transferred %d KB in %.2f virtual seconds\n", received>>10, elapsed)
	fmt.Printf("goodput %.2f Mb/s over a 1.5 Mb/s bottleneck (TCP+IP overhead explains the gap)\n",
		float64(received*8)/elapsed/1e6)
	fmt.Printf("sender: cwnd %d bytes, srtt %v, %d retransmits\n",
		conn.Cwnd(), conn.SRTT(), conn.Retransmits)
	fmt.Printf("core:   %v\n", &em.Emu.Accuracy)
}
