package modelnet_test

import (
	"testing"

	"modelnet"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
)

func attrs(mbps, ms float64) modelnet.LinkAttrs {
	return modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(mbps), LatencySec: modelnet.Ms(ms), QueuePkts: 30}
}

func TestPipelinePhases(t *testing.T) {
	g := modelnet.Ring(6, 3, attrs(20, 5), attrs(2, 1))
	em, err := modelnet.Run(g, modelnet.Options{
		Distill: modelnet.DistillSpec{Mode: modelnet.WalkIn, WalkIn: 1},
		Cores:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if em.NumVNs() != 18 {
		t.Errorf("VNs = %d, want 18", em.NumVNs())
	}
	// Last-mile distillation: 18 duplex access links preserved + mesh.
	if em.Distilled.PreservedLinks != 36 {
		t.Errorf("preserved = %d, want 36", em.Distilled.PreservedLinks)
	}
	if em.Distilled.MeshLinks != 6*5 {
		t.Errorf("mesh = %d, want 30", em.Distilled.MeshLinks)
	}
	if em.Emu.Cores() != 2 {
		t.Errorf("cores = %d", em.Emu.Cores())
	}
	lm := em.Assignment.LoadMetrics()
	if lm.LinksPerCore[0]+lm.LinksPerCore[1] != em.Distilled.Graph.NumLinks() {
		t.Errorf("assignment does not cover all pipes: %v", lm.LinksPerCore)
	}
}

func TestPipelineRejectsBadTopology(t *testing.T) {
	g := modelnet.NewGraph()
	g.AddNode(topology.Client, "lonely")
	if _, err := modelnet.Run(g, modelnet.Options{}); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestEndToEndTransferThroughFacade(t *testing.T) {
	g := modelnet.Star(4, attrs(10, 5))
	em, err := modelnet.Run(g, modelnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hosts := em.NewHosts()
	if len(hosts) != 4 {
		t.Fatalf("hosts = %d", len(hosts))
	}
	got := 0
	hosts[1].Listen(80, func(c *netstack.Conn) netstack.Handlers {
		return netstack.Handlers{OnData: func(c *netstack.Conn, n int, data []byte) { got += n }}
	})
	c := hosts[0].Dial(modelnet.Endpoint{VN: 1, Port: 80}, netstack.Handlers{})
	c.WriteCount(100_000)
	c.Close()
	em.RunFor(modelnet.Seconds(10))
	if got != 100_000 {
		t.Fatalf("transferred %d", got)
	}
	if em.Emu.Delivered == 0 || em.Emu.Accuracy.Count == 0 {
		t.Error("emulator stats empty")
	}
	// Accuracy bound: 2 hops, default tick.
	if !em.Emu.Accuracy.WithinBound(3 * modelnet.DefaultProfile().Tick) {
		t.Errorf("lag %v over bound", em.Emu.Accuracy.MaxLag)
	}
}

func TestNewHostIdempotent(t *testing.T) {
	g := modelnet.Star(2, attrs(10, 1))
	em, err := modelnet.Run(g, modelnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if em.NewHost(0) != em.NewHost(0) {
		t.Error("NewHost returned two stacks for one VN")
	}
}

// countingInjector wraps the emulator, counting injections.
type countingInjector struct {
	inner interface {
		Inject(src, dst pipes.VN, size int, payload any) bool
	}
	n int
}

func (c *countingInjector) Inject(src, dst pipes.VN, size int, payload any) bool {
	c.n++
	return c.inner.Inject(src, dst, size, payload)
}

func TestNewHostViaAgreesWithNewHost(t *testing.T) {
	g := modelnet.Star(3, attrs(10, 1))
	em, err := modelnet.Run(g, modelnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inj := &countingInjector{inner: em.Emu}
	h := em.NewHostVia(0, inj)
	// NewHost after NewHostVia returns the same (wrapped) stack: one VN,
	// one stack, and the wrapper stays on the injection path.
	if em.NewHost(0) != h {
		t.Error("NewHost did not return the stack created by NewHostVia")
	}
	s, _ := h.OpenUDP(0, nil)
	em.NewHost(1).OpenUDP(9, func(netstack.Endpoint, *netstack.Datagram) {})
	s.SendTo(modelnet.Endpoint{VN: 1, Port: 9}, 100, nil)
	em.RunFor(modelnet.Seconds(1))
	if inj.n != 1 {
		t.Errorf("wrapper saw %d injections, want 1", inj.n)
	}
	// The reverse order is a programming error: a wrapper installed after
	// the plain stack exists would silently never see traffic.
	defer func() {
		if recover() == nil {
			t.Error("NewHostVia after NewHost did not panic")
		}
	}()
	em.NewHostVia(1, inj)
}

func TestDistillationModesThroughFacade(t *testing.T) {
	g := modelnet.Ring(8, 2, attrs(20, 5), attrs(2, 1))
	for _, spec := range []modelnet.DistillSpec{
		{Mode: modelnet.HopByHop},
		{Mode: modelnet.EndToEnd},
		{Mode: modelnet.WalkIn, WalkIn: 1},
		{Mode: modelnet.WalkOut, WalkIn: 1, WalkOut: 1},
	} {
		em, err := modelnet.Run(g, modelnet.Options{Distill: spec})
		if err != nil {
			t.Fatalf("%v: %v", spec.Mode, err)
		}
		// Traffic flows under every mode.
		delivered := false
		h0, h1 := em.NewHost(0), em.NewHost(1)
		h1.OpenUDP(9, func(netstack.Endpoint, *netstack.Datagram) { delivered = true })
		s, _ := h0.OpenUDP(0, nil)
		s.SendTo(modelnet.Endpoint{VN: 1, Port: 9}, 100, nil)
		em.RunFor(modelnet.Seconds(1))
		if !delivered {
			t.Errorf("%v: packet not delivered", spec.Mode)
		}
	}
}

func TestSeedsAreDeterministic(t *testing.T) {
	run := func() (uint64, pipes.VN) {
		g := modelnet.Ring(6, 3, attrs(20, 5), attrs(2, 1))
		em, err := modelnet.Run(g, modelnet.Options{Seed: 99, Cores: 3})
		if err != nil {
			t.Fatal(err)
		}
		var last pipes.VN
		for v := 0; v < em.NumVNs(); v++ {
			v := v
			h := em.NewHost(modelnet.VN(v))
			h.OpenUDP(9, func(from netstack.Endpoint, dg *netstack.Datagram) { last = modelnet.VN(v) })
		}
		for v := 0; v < em.NumVNs(); v++ {
			h := em.NewHost(modelnet.VN(v))
			s, _ := h.OpenUDP(0, nil)
			s.SendTo(modelnet.Endpoint{VN: modelnet.VN((v + 7) % em.NumVNs()), Port: 9}, 500, nil)
		}
		em.RunFor(modelnet.Seconds(2))
		return em.Emu.Delivered, last
	}
	d1, l1 := run()
	d2, l2 := run()
	if d1 != d2 || l1 != l2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", d1, l1, d2, l2)
	}
}
