package bind_test

// Property test for sharded route resolution: on randomized topologies and
// k-clusters assignments, the stitched shard-local segments (homed walk +
// frontier-summary seeds + receive-time extension) must be next-hop-identical
// to the global matrix — including across reroute epochs that degrade down
// links, the same way scripted dynamics reroutes do.

import (
	"fmt"
	"math/rand"
	"testing"

	"modelnet/internal/assign"
	"modelnet/internal/bind"
	"modelnet/internal/pipes"
	"modelnet/internal/routing"
	"modelnet/internal/topology"
)

// randomWorld builds a connected router mesh with clients hanging off random
// routers. Latencies come from a tiny discrete set so equal-cost paths — and
// therefore tie-breaks — are common.
func randomWorld(rng *rand.Rand) *topology.Graph {
	g := topology.New()
	nr := 10 + rng.Intn(15)
	lats := []float64{0.001, 0.002, 0.002, 0.005}
	attr := func() topology.LinkAttrs {
		return topology.LinkAttrs{BandwidthBps: topology.Mbps(10), LatencySec: lats[rng.Intn(len(lats))]}
	}
	routers := make([]topology.NodeID, nr)
	for i := range routers {
		routers[i] = g.AddNode(topology.Stub, fmt.Sprintf("r%d", i))
	}
	perm := rng.Perm(nr)
	for i := 1; i < nr; i++ {
		g.AddDuplex(routers[perm[i]], routers[perm[rng.Intn(i)]], attr())
	}
	for e := 0; e < nr; e++ {
		a, b := rng.Intn(nr), rng.Intn(nr)
		if a != b {
			g.AddDuplex(routers[a], routers[b], attr())
		}
	}
	for i := range routers {
		for c := 0; c < rng.Intn(3); c++ {
			cl := g.AddNode(topology.Client, fmt.Sprintf("c%d-%d", i, c))
			g.AddDuplex(cl, routers[i], topology.LinkAttrs{BandwidthBps: topology.Mbps(10), LatencySec: 0.001})
		}
	}
	return g
}

// downedClone degrades the epoch's down links to Infinity latency, exactly as
// dynamics' reroute does before rebuilding the global table.
func downedClone(g *topology.Graph, down []topology.LinkID) *topology.Graph {
	if len(down) == 0 {
		return g
	}
	gg := g.Clone()
	for _, lid := range down {
		gg.Links[lid].Attr.LatencySec = routing.Infinity
	}
	return gg
}

// stitch resolves src→dst the way the federation does: Lookup on the source
// VN's home shard, then Extend on each shard the route hands off to.
func stitch(t *testing.T, tables []*bind.ShardTable, owner []int, g *topology.Graph,
	vnHome []topology.NodeID, src, dst pipes.VN, epoch int32) (bind.Route, bool) {
	t.Helper()
	home := owner[g.Out(vnHome[src])[0]]
	r, ok := tables[home].Lookup(src, dst)
	if !ok {
		return nil, false
	}
	for hops := 0; ; hops++ {
		if hops > 200 {
			t.Fatalf("stitch %d->%d: no convergence after %d extensions", src, dst, hops)
		}
		if len(r) == 0 || g.Links[r[len(r)-1]].Dst == vnHome[dst] {
			return r, true
		}
		o := owner[r[len(r)-1]]
		r2, err := tables[o].Extend(r, epoch, dst)
		if err != nil {
			t.Fatalf("stitch %d->%d on shard %d: %v", src, dst, o, err)
		}
		if len(r2) <= len(r) {
			t.Fatalf("stitch %d->%d: shard %d made no progress at %v", src, dst, o, r)
		}
		r = r2
	}
}

func routesEqual(a, b bind.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestInfinityLatencyAgrees pins bind's degraded-link latency to routing's:
// the two packages cannot import each other, but dynamics relies on them
// producing bit-identical degraded weights.
func TestInfinityLatencyAgrees(t *testing.T) {
	if bind.InfinityLatencySec != routing.Infinity {
		t.Fatalf("bind.InfinityLatencySec %v != routing.Infinity %v", bind.InfinityLatencySec, routing.Infinity)
	}
}

func TestShardRoutesMatchGlobalMatrix(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7000 + trial)))
			g := randomWorld(rng)
			clients := g.Clients()
			if len(clients) < 2 || !g.Connected() {
				t.Skip("degenerate world")
			}
			k := 2 + rng.Intn(3)
			asn, err := assign.KClusters(g, k, int64(trial))
			if err != nil {
				t.Fatal(err)
			}
			views, err := bind.BuildShardViews(g, asn.Owner, asn.NodeOwner, k)
			if err != nil {
				t.Fatal(err)
			}

			// Reroute epochs: 0 is the pristine world, then two scripted
			// down-sets, as a dynamics failure script would produce.
			downs := [][]topology.LinkID{nil}
			for e := 1; e <= 2; e++ {
				var d []topology.LinkID
				for n := rng.Intn(3); len(d) < n; {
					d = append(d, topology.LinkID(rng.Intn(g.NumLinks())))
				}
				downs = append(downs, d)
			}
			oracle := bind.NewSummaryOracle(g, func(epoch int32) ([]topology.LinkID, error) {
				return downs[epoch], nil
			}, 0, 0)

			tables := make([]*bind.ShardTable, k)
			for o := 0; o < k; o++ {
				skel, err := views[o].Skeleton()
				if err != nil {
					t.Fatal(err)
				}
				tables[o], err = bind.NewShardTable(skel, views[o], clients, oracle.SeedFuncFor(views[o].Summary), 0)
				if err != nil {
					t.Fatal(err)
				}
			}

			for epoch := int32(0); epoch < int32(len(downs)); epoch++ {
				if epoch > 0 {
					for _, tb := range tables {
						tb.AdvanceEpoch(downs[epoch])
					}
				}
				m, err := bind.BuildMatrix(downedClone(g, downs[epoch]), clients)
				if err != nil {
					t.Fatal(err)
				}
				for si := 0; si < len(clients); si++ {
					for di := 0; di < len(clients); di++ {
						src, dst := pipes.VN(si), pipes.VN(di)
						want, wok := m.Lookup(src, dst)
						got, gok := stitch(t, tables, asn.Owner, g, clients, src, dst, epoch)
						if wok != gok {
							t.Fatalf("epoch %d %d->%d: matrix ok=%v shard ok=%v", epoch, src, dst, wok, gok)
						}
						if wok && !routesEqual(want, got) {
							t.Fatalf("epoch %d %d->%d:\n matrix %v\n shard  %v", epoch, src, dst, want, got)
						}
					}
				}
			}

			// Pinned-epoch extension: a packet injected at epoch 0 but tunneled
			// after later reroutes must still follow epoch 0's route. Rebuild the
			// first cross-shard route from its truncated first segment using
			// Extend(epoch=0) while the tables sit at the latest epoch.
			m0, err := bind.BuildMatrix(g, clients)
			if err != nil {
				t.Fatal(err)
			}
			checked := 0
			for si := 0; si < len(clients) && checked < 5; si++ {
				for di := 0; di < len(clients) && checked < 5; di++ {
					full, ok := m0.Lookup(pipes.VN(si), pipes.VN(di))
					if !ok || len(full) == 0 {
						continue
					}
					home := asn.Owner[full[0]]
					cut := -1
					for i, pid := range full {
						if asn.Owner[pid] != home {
							cut = i
							break
						}
					}
					if cut < 0 {
						continue // never leaves the home shard
					}
					r := append(bind.Route(nil), full[:cut+1]...)
					for hops := 0; g.Links[r[len(r)-1]].Dst != clients[di]; hops++ {
						if hops > 200 {
							t.Fatalf("pinned extension diverged for %d->%d", si, di)
						}
						o := asn.Owner[r[len(r)-1]]
						r, err = tables[o].Extend(r, 0, pipes.VN(di))
						if err != nil {
							t.Fatal(err)
						}
					}
					if !routesEqual(full, r) {
						t.Fatalf("pinned epoch 0 %d->%d:\n matrix %v\n shard  %v", si, di, full, r)
					}
					checked++
				}
			}
		})
	}
}

// TestBuildShardViewsRejectsNonSourceOwnership guards the decomposition's
// precondition loudly.
func TestBuildShardViewsRejectsNonSourceOwnership(t *testing.T) {
	g := topology.Ring(4, 1, topology.LinkAttrs{BandwidthBps: 1e6, LatencySec: 0.001},
		topology.LinkAttrs{BandwidthBps: 1e6, LatencySec: 0.001})
	asn, err := assign.Even(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	nodeOwner := make([]int, g.NumNodes())
	if _, err := bind.BuildShardViews(g, asn.Owner, nodeOwner, 2); err == nil {
		t.Fatal("expected source-ownership violation to be rejected")
	}
}
