package bind

import (
	"testing"

	"modelnet/internal/pipes"
	"modelnet/internal/topology"
)

func ringTopo() *topology.Graph {
	return topology.Ring(8, 5,
		topology.LinkAttrs{BandwidthBps: 20e6, LatencySec: 0.005, QueuePkts: 30},
		topology.LinkAttrs{BandwidthBps: 2e6, LatencySec: 0.001, QueuePkts: 20})
}

func TestHierClusters(t *testing.T) {
	g := ringTopo()
	h, err := BuildHier(g, g.Clients())
	if err != nil {
		t.Fatal(err)
	}
	if h.Clusters() != 8 {
		t.Errorf("clusters = %d, want 8 (one per ring router)", h.Clusters())
	}
	if h.NumVNs() != 40 {
		t.Errorf("VNs = %d", h.NumVNs())
	}
}

func TestHierRoutesValid(t *testing.T) {
	g := ringTopo()
	homes := g.Clients()
	h, err := BuildHier(g, homes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(homes); i++ {
		for j := 0; j < len(homes); j++ {
			r, ok := h.Lookup(pipes.VN(i), pipes.VN(j))
			if i == j {
				if !ok || len(r) != 0 {
					t.Fatalf("self route (%d): %v %v", i, r, ok)
				}
				continue
			}
			if !ok {
				t.Fatalf("no route %d->%d", i, j)
			}
			// Continuity from home(i) to home(j).
			cur := homes[i]
			for hop, pid := range r {
				l := g.Links[pid]
				if l.Src != cur {
					t.Fatalf("route %d->%d discontinuous at hop %d", i, j, hop)
				}
				cur = l.Dst
			}
			if cur != homes[j] {
				t.Fatalf("route %d->%d ends at node %d", i, j, cur)
			}
		}
	}
}

func TestHierNearOptimalOnStubTopology(t *testing.T) {
	// On stub-clustered topologies the spliced routes should match the
	// exact matrix (every cluster exits through its gateway).
	g := ringTopo()
	homes := g.Clients()
	h, _ := BuildHier(g, homes)
	m, err := BuildMatrix(g, homes)
	if err != nil {
		t.Fatal(err)
	}
	lat := func(r Route) float64 {
		total := 0.0
		for _, pid := range r {
			total += g.Links[pid].Attr.LatencySec
		}
		return total
	}
	worst := 1.0
	for i := 0; i < len(homes); i++ {
		for j := 0; j < len(homes); j++ {
			if i == j {
				continue
			}
			rh, _ := h.Lookup(pipes.VN(i), pipes.VN(j))
			rm, _ := m.Lookup(pipes.VN(i), pipes.VN(j))
			ratio := lat(rh) / lat(rm)
			if ratio > worst {
				worst = ratio
			}
		}
	}
	if worst > 1.0001 {
		t.Errorf("hierarchical routes up to %.3fx optimal on a stub topology, want exact", worst)
	}
}

func TestHierStorageSavings(t *testing.T) {
	// The point of the scheme: far fewer stored routes than n².
	g := topology.Ring(20, 20,
		topology.LinkAttrs{BandwidthBps: 20e6, LatencySec: 0.005, QueuePkts: 30},
		topology.LinkAttrs{BandwidthBps: 2e6, LatencySec: 0.001, QueuePkts: 20})
	homes := g.Clients()
	h, err := BuildHier(g, homes)
	if err != nil {
		t.Fatal(err)
	}
	n := len(homes)
	matrixEntries := n * (n - 1)
	if h.Entries*4 > matrixEntries {
		t.Errorf("hier stores %d entries vs matrix %d — savings too small", h.Entries, matrixEntries)
	}
	t.Logf("storage: hier %d entries vs matrix %d (%.1fx smaller)",
		h.Entries, matrixEntries, float64(matrixEntries)/float64(h.Entries))
}

func TestHierOutOfRange(t *testing.T) {
	g := ringTopo()
	h, _ := BuildHier(g, g.Clients())
	if _, ok := h.Lookup(0, 9999); ok {
		t.Error("bogus VN accepted")
	}
	if _, ok := h.Lookup(-1, 0); ok {
		t.Error("negative VN accepted")
	}
}
