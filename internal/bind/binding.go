package bind

import (
	"fmt"

	"modelnet/internal/pipes"
	"modelnet/internal/topology"
)

// Binding is the output of the Binding phase: which topology node hosts each
// VN, which physical edge node each VN runs on, which core each edge node
// forwards through, and the routing table.
type Binding struct {
	// VNHome[v] is the topology (client) node where VN v attaches.
	VNHome []topology.NodeID
	// VNOfNode inverts VNHome for client nodes; -1 for non-VN nodes.
	VNOfNode []pipes.VN
	// EdgeOf[v] is the physical edge node hosting VN v.
	EdgeOf []int
	// CoreOf[e] is the core node that edge node e forwards through.
	CoreOf []int
	// Table resolves VN-pair routes.
	Table Table
}

// Options configure the binding phase.
type Options struct {
	// EdgeNodes is the number of physical edge machines; VNs are assigned
	// round-robin (multiplexing several VNs per machine, §4.2). Zero means
	// one edge node per VN.
	EdgeNodes int
	// Cores is the number of core routers; edge nodes bind to cores
	// round-robin. Zero means one core.
	Cores int
	// RouteCache, when positive, uses the O(n lg n) route cache of that
	// capacity instead of the precomputed O(n²) matrix.
	RouteCache int
	// Hierarchical uses per-stub-cluster tables (§2.2's storage
	// alternative) instead of the matrix. Ignored when RouteCache is set.
	Hierarchical bool
	// LazyRoutes uses a demand-paged table (NewLazy): no route computation
	// at bind time, bounded distance-field cache afterwards. This is the
	// coordinator's choice under sharded distribution, where binding exists
	// for VN numbering and sync plans and routes are rarely consulted.
	// Takes precedence over the other table selectors.
	LazyRoutes bool
}

// Bind performs the Binding phase over a distilled topology: every client
// node becomes a VN (in node-ID order), routes are computed among all VN
// pairs, and VNs are multiplexed onto edge nodes bound to cores.
func Bind(g *topology.Graph, opts Options) (*Binding, error) {
	clients := g.Clients()
	if len(clients) == 0 {
		return nil, fmt.Errorf("bind: topology has no client nodes to host VNs")
	}
	b := &Binding{
		VNHome:   clients,
		VNOfNode: make([]pipes.VN, g.NumNodes()),
	}
	for i := range b.VNOfNode {
		b.VNOfNode[i] = -1
	}
	for v, nid := range clients {
		b.VNOfNode[nid] = pipes.VN(v)
	}

	edges := opts.EdgeNodes
	if edges <= 0 {
		edges = len(clients)
	}
	b.EdgeOf = make([]int, len(clients))
	for v := range b.EdgeOf {
		b.EdgeOf[v] = v % edges
	}
	cores := opts.Cores
	if cores <= 0 {
		cores = 1
	}
	b.CoreOf = make([]int, edges)
	for e := range b.CoreOf {
		b.CoreOf[e] = e % cores
	}

	switch {
	case opts.LazyRoutes:
		b.Table = NewLazy(g, clients, 0)
	case opts.RouteCache > 0:
		b.Table = NewCache(g, clients, opts.RouteCache)
	case opts.Hierarchical:
		h, err := BuildHier(g, clients)
		if err != nil {
			return nil, err
		}
		b.Table = h
	default:
		m, err := BuildMatrix(g, clients)
		if err != nil {
			return nil, err
		}
		b.Table = m
	}
	return b, nil
}

// NumVNs reports the number of VNs bound.
func (b *Binding) NumVNs() int { return len(b.VNHome) }

// POD is the pipe ownership directory (§2.2): which core owns each pipe.
// When a packet's next pipe is owned by a different core, the descriptor is
// tunneled to the owning node.
type POD struct {
	owner []int // pipe ID -> core index
	cores int
}

// NewPOD builds a POD from an assignment of pipe (link) IDs to cores.
// owner[i] is the core owning pipe i.
func NewPOD(owner []int, cores int) *POD {
	return &POD{owner: owner, cores: cores}
}

// Owner returns the core owning pipe p.
func (d *POD) Owner(p pipes.ID) int {
	if int(p) >= len(d.owner) || p < 0 {
		return 0
	}
	return d.owner[p]
}

// Cores reports the number of cores in the directory.
func (d *POD) Cores() int { return d.cores }

// NumPipes reports the number of pipes tracked.
func (d *POD) NumPipes() int { return len(d.owner) }

// Crossings counts how many core-to-core transitions a route incurs,
// including the implicit transition from the ingress core (the core the
// source VN's edge node binds to) to the first pipe's owner.
func (d *POD) Crossings(ingressCore int, r Route) int {
	n := 0
	cur := ingressCore
	for _, p := range r {
		o := d.Owner(p)
		if o != cur {
			n++
			cur = o
		}
	}
	return n
}
