package bind

// Route computation: all-pairs shortest paths into a routing matrix, plus
// the bounded route cache (the paper's O(n lg n) storage alternative).

import (
	"container/heap"
	"fmt"
	"math"

	"modelnet/internal/pipes"
	"modelnet/internal/topology"
)

// Route is an ordered list of pipes a packet traverses from source VN to
// destination VN. Pipe IDs are the distilled topology's link IDs.
type Route []pipes.ID

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node topology.NodeID
	dist float64
	seq  int // insertion tie-break for determinism
}

type pq []pqItem

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].dist != p[j].dist {
		return p[i].dist < p[j].dist
	}
	return p[i].seq < p[j].seq
}
func (p pq) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)   { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any     { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// linkWeight is the routing metric: propagation latency plus a small per-hop
// epsilon so equal-latency paths prefer fewer hops ("shortest path" in the
// paper). Deterministic across runs.
func linkWeight(l topology.Link) float64 {
	return l.Attr.LatencySec + 1e-6
}

// ShortestPaths runs Dijkstra from src over the directed graph and returns,
// for every node, the link taken to reach it on the shortest path tree
// (-1 for src/unreachable) and the distance.
func ShortestPaths(g *topology.Graph, src topology.NodeID) (prevLink []topology.LinkID, dist []float64) {
	n := g.NumNodes()
	dist = make([]float64, n)
	prevLink = make([]topology.LinkID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevLink[i] = -1
	}
	dist[src] = 0
	var q pq
	seq := 0
	heap.Push(&q, pqItem{src, 0, seq})
	done := make([]bool, n)
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, lid := range g.Out(it.node) {
			l := g.Links[lid]
			nd := it.dist + linkWeight(l)
			if nd < dist[l.Dst] {
				dist[l.Dst] = nd
				prevLink[l.Dst] = lid
				seq++
				heap.Push(&q, pqItem{l.Dst, nd, seq})
			}
		}
	}
	return prevLink, dist
}

// routeFromTree walks the shortest path tree backwards from dst to src,
// producing the forward pipe list. Returns nil when dst is unreachable.
func routeFromTree(g *topology.Graph, prevLink []topology.LinkID, src, dst topology.NodeID) Route {
	if src == dst {
		return Route{}
	}
	var rev []pipes.ID
	cur := dst
	for cur != src {
		lid := prevLink[cur]
		if lid < 0 {
			return nil
		}
		rev = append(rev, pipes.ID(lid))
		cur = g.Links[lid].Src
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Table resolves the pipe route between two VNs. The two implementations
// are the paper's §2.2 design points: a precomputed O(n²) matrix with fast
// indexing, and a hash cache of active-flow routes with on-demand Dijkstra.
type Table interface {
	// Lookup returns the route from src to dst VN; ok is false when no path
	// exists or the VNs are unknown.
	Lookup(src, dst pipes.VN) (Route, bool)
	// NumVNs reports how many VNs the table serves.
	NumVNs() int
}

// Matrix is the straightforward precomputed routing matrix: all-pairs
// canonical routes among VNs, O(n²) space, O(1) lookup. Scales to ~10,000
// VNs (§2.2). Routes follow the destination-rooted integer-weight policy
// (dest.go), so shard-local tables reproduce them exactly.
type Matrix struct {
	routes [][]Route // [src][dst]
}

// BuildMatrix computes the routing matrix for the given VN home nodes in g.
// vnHomes[v] is the topology node hosting VN v. One reverse Dijkstra per
// distinct destination home, one greedy walk per distinct home pair; VNs
// sharing a home pair share the route slice.
func BuildMatrix(g *topology.Graph, vnHomes []topology.NodeID) (*Matrix, error) {
	n := len(vnHomes)
	m := &Matrix{routes: make([][]Route, n)}
	rev := ReverseIndex(g)
	distByHome := map[topology.NodeID][]Dist{}
	for _, h := range vnHomes {
		if _, ok := distByHome[h]; !ok {
			distByHome[h] = DistToNode(g, rev, h)
		}
	}
	routeByPair := map[[2]topology.NodeID]Route{}
	for i := 0; i < n; i++ {
		m.routes[i] = make([]Route, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pair := [2]topology.NodeID{vnHomes[i], vnHomes[j]}
			r, ok := routeByPair[pair]
			if !ok {
				r = WalkRoute(g, vnHomes[i], vnHomes[j], distByHome[vnHomes[j]])
				routeByPair[pair] = r
			}
			if r == nil && vnHomes[i] != vnHomes[j] {
				return nil, fmt.Errorf("bind: VN %d cannot reach VN %d", i, j)
			}
			m.routes[i][j] = r
		}
	}
	return m, nil
}

// Lookup implements Table.
func (m *Matrix) Lookup(src, dst pipes.VN) (Route, bool) {
	if int(src) >= len(m.routes) || int(dst) >= len(m.routes) || src < 0 || dst < 0 {
		return nil, false
	}
	if src == dst {
		return Route{}, true
	}
	r := m.routes[src][dst]
	if r == nil {
		return nil, false
	}
	return r, true
}

// NumVNs implements Table.
func (m *Matrix) NumVNs() int { return len(m.routes) }

// Routes exposes the raw matrix for offline analysis (cross-traffic
// propagation, assignment metrics).
func (m *Matrix) Routes() [][]Route { return m.routes }

// Cache is the O(n lg n)-space alternative: a bounded hash cache of routes
// for active flows; misses compute the canonical route on demand (§2.2)
// from a bounded per-destination distance-field cache.
type Cache struct {
	g        *topology.Graph
	vnHomes  []topology.NodeID
	eng      *destEngine
	capacity int
	entries  map[[2]pipes.VN]*cacheEntry
	lruHead  *cacheEntry
	lruTail  *cacheEntry

	Hits   uint64
	Misses uint64
}

type cacheEntry struct {
	key        [2]pipes.VN
	route      Route
	prev, next *cacheEntry
}

// NewCache builds a route cache over g with the given capacity (in routes).
func NewCache(g *topology.Graph, vnHomes []topology.NodeID, capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	fieldCap := capacity / 16
	if fieldCap < 4 {
		fieldCap = 4
	}
	return &Cache{
		g:        g,
		vnHomes:  vnHomes,
		eng:      newDestEngine(g, fieldCap),
		capacity: capacity,
		entries:  make(map[[2]pipes.VN]*cacheEntry),
	}
}

// Lookup implements Table. On a miss it computes the route with Dijkstra and
// caches it, evicting the least recently used route when full.
func (c *Cache) Lookup(src, dst pipes.VN) (Route, bool) {
	if int(src) >= len(c.vnHomes) || int(dst) >= len(c.vnHomes) || src < 0 || dst < 0 {
		return nil, false
	}
	if src == dst {
		return Route{}, true
	}
	key := [2]pipes.VN{src, dst}
	if e, ok := c.entries[key]; ok {
		c.Hits++
		c.touch(e)
		return e.route, e.route != nil
	}
	c.Misses++
	r := WalkRoute(c.g, c.vnHomes[src], c.vnHomes[dst], c.eng.distTo(c.vnHomes[dst]))
	e := &cacheEntry{key: key, route: r}
	c.entries[key] = e
	c.pushFront(e)
	if len(c.entries) > c.capacity {
		c.evict()
	}
	return r, r != nil
}

// NumVNs implements Table.
func (c *Cache) NumVNs() int { return len(c.vnHomes) }

// Len reports the number of cached routes.
func (c *Cache) Len() int { return len(c.entries) }

func (c *Cache) touch(e *cacheEntry) {
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = e
	}
	c.lruHead = e
	if c.lruTail == nil {
		c.lruTail = e
	}
}

func (c *Cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.lruHead == e {
		c.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.lruTail == e {
		c.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) evict() {
	e := c.lruTail
	if e == nil {
		return
	}
	c.unlink(e)
	delete(c.entries, e.key)
}

// Invalidate drops all cached routes and distance fields. Call after the
// topology's routing changes (link failure, recomputed shortest paths).
func (c *Cache) Invalidate() {
	c.entries = make(map[[2]pipes.VN]*cacheEntry)
	c.lruHead, c.lruTail = nil, nil
	c.eng.invalidate()
}

// Lazy is a demand-paged routing table: no routes are computed until the
// first Lookup, and per-destination distance fields are kept in a bounded
// LRU. It is the coordinator-side table for sharded distribution — a
// federation coordinator needs a Binding (VN numbering, sync plans) but
// rarely a route, and a full Matrix at 10⁵ VNs is neither affordable nor
// needed. Lookups produce exactly the canonical routes Matrix would.
type Lazy struct {
	g       *topology.Graph
	vnHomes []topology.NodeID
	eng     *destEngine
}

// NewLazy builds a demand-paged table over g. fieldCap bounds the number of
// cached per-destination distance fields (≤ 0 picks a small default).
func NewLazy(g *topology.Graph, vnHomes []topology.NodeID, fieldCap int) *Lazy {
	if fieldCap <= 0 {
		fieldCap = 32
	}
	return &Lazy{g: g, vnHomes: vnHomes, eng: newDestEngine(g, fieldCap)}
}

// Lookup implements Table.
func (t *Lazy) Lookup(src, dst pipes.VN) (Route, bool) {
	if int(src) >= len(t.vnHomes) || int(dst) >= len(t.vnHomes) || src < 0 || dst < 0 {
		return nil, false
	}
	if src == dst {
		return Route{}, true
	}
	r := WalkRoute(t.g, t.vnHomes[src], t.vnHomes[dst], t.eng.distTo(t.vnHomes[dst]))
	return r, r != nil
}

// NumVNs implements Table.
func (t *Lazy) NumVNs() int { return len(t.vnHomes) }

// Invalidate drops the cached distance fields (after a reroute).
func (t *Lazy) Invalidate() { t.eng.invalidate() }
