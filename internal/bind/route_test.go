package bind

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"modelnet/internal/pipes"
	"modelnet/internal/topology"
)

func attrs(lat float64) topology.LinkAttrs {
	return topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: lat, QueuePkts: 10}
}

// diamond builds a 4-node graph where the top path is faster.
func diamond() (*topology.Graph, []topology.NodeID) {
	g := topology.New()
	a := g.AddNode(topology.Client, "a")
	top := g.AddNode(topology.Stub, "top")
	bot := g.AddNode(topology.Stub, "bot")
	b := g.AddNode(topology.Client, "b")
	g.AddDuplex(a, top, attrs(0.001))
	g.AddDuplex(top, b, attrs(0.001))
	g.AddDuplex(a, bot, attrs(0.010))
	g.AddDuplex(bot, b, attrs(0.010))
	return g, []topology.NodeID{a, b}
}

func TestShortestPathsPicksFastRoute(t *testing.T) {
	g, homes := diamond()
	prev, dist := ShortestPaths(g, homes[0])
	if math.Abs(dist[homes[1]]-0.002002) > 1e-9 {
		t.Errorf("dist = %v, want ~0.002", dist[homes[1]])
	}
	r := routeFromTree(g, prev, homes[0], homes[1])
	if len(r) != 2 {
		t.Fatalf("route len %d, want 2", len(r))
	}
	// Both hops must ride the fast (top) path: links a->top and top->b.
	for _, pid := range r {
		if g.Links[pid].Attr.LatencySec != 0.001 {
			t.Errorf("route used slow link %d", pid)
		}
	}
}

func TestMatrixLookup(t *testing.T) {
	g, homes := diamond()
	m, err := BuildMatrix(g, homes)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVNs() != 2 {
		t.Fatalf("NumVNs = %d", m.NumVNs())
	}
	r, ok := m.Lookup(0, 1)
	if !ok || len(r) != 2 {
		t.Fatalf("Lookup(0,1) = %v, %v", r, ok)
	}
	// Route continuity: consecutive pipes share a node.
	for i := 1; i < len(r); i++ {
		if g.Links[r[i-1]].Dst != g.Links[r[i]].Src {
			t.Errorf("route not continuous at hop %d", i)
		}
	}
	// Self route is empty but ok.
	if r, ok := m.Lookup(1, 1); !ok || len(r) != 0 {
		t.Errorf("self lookup = %v,%v", r, ok)
	}
	// Out of range.
	if _, ok := m.Lookup(0, 99); ok {
		t.Error("bogus VN lookup succeeded")
	}
}

func TestMatrixUnreachable(t *testing.T) {
	g := topology.New()
	a := g.AddNode(topology.Client, "a")
	b := g.AddNode(topology.Client, "b")
	s1 := g.AddNode(topology.Stub, "s1")
	s2 := g.AddNode(topology.Stub, "s2")
	g.AddDuplex(a, s1, attrs(0.001))
	g.AddDuplex(b, s2, attrs(0.001))
	if _, err := BuildMatrix(g, []topology.NodeID{a, b}); err == nil {
		t.Error("disconnected matrix built without error")
	}
}

// floydReference computes all-pairs shortest distances for cross-checking.
func floydReference(g *topology.Graph) [][]float64 {
	n := g.NumNodes()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for _, l := range g.Links {
		w := linkWeight(l)
		if w < d[l.Src][l.Dst] {
			d[l.Src][l.Dst] = w
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

// Property: Dijkstra distances match Floyd–Warshall on random graphs, and
// every produced route is continuous with total weight equal to the
// distance.
func TestRoutingOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.Random(topology.RandomConfig{
			Nodes: 12, Degree: 2.5,
			Attr: attrs(0.001), Seed: seed,
		})
		// Random per-link latencies.
		for i := range g.Links {
			g.Links[i].Attr.LatencySec = float64(rng.Intn(20)+1) * 1e-3
		}
		ref := floydReference(g)
		src := topology.NodeID(rng.Intn(g.NumNodes()))
		prev, dist := ShortestPaths(g, src)
		for dst := 0; dst < g.NumNodes(); dst++ {
			if math.Abs(dist[dst]-ref[src][dst]) > 1e-9 &&
				!(math.IsInf(dist[dst], 1) && math.IsInf(ref[src][dst], 1)) {
				return false
			}
			if topology.NodeID(dst) == src {
				continue
			}
			r := routeFromTree(g, prev, src, topology.NodeID(dst))
			if r == nil {
				if !math.IsInf(ref[src][dst], 1) {
					return false
				}
				continue
			}
			total := 0.0
			cur := src
			for _, pid := range r {
				l := g.Links[pid]
				if l.Src != cur {
					return false // discontinuous
				}
				total += linkWeight(l)
				cur = l.Dst
			}
			if cur != topology.NodeID(dst) || math.Abs(total-dist[dst]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCacheMatchesMatrix(t *testing.T) {
	g := topology.Ring(6, 3, attrs(0.005), attrs(0.001))
	homes := g.Clients()
	m, err := BuildMatrix(g, homes)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(g, homes, 64)
	for i := 0; i < len(homes); i++ {
		for j := 0; j < len(homes); j++ {
			rm, okm := m.Lookup(pipes.VN(i), pipes.VN(j))
			rc, okc := c.Lookup(pipes.VN(i), pipes.VN(j))
			if okm != okc || len(rm) != len(rc) {
				t.Fatalf("cache/matrix disagree for (%d,%d): %v/%v", i, j, rm, rc)
			}
			for k := range rm {
				if rm[k] != rc[k] {
					t.Fatalf("route mismatch at (%d,%d)[%d]", i, j, k)
				}
			}
		}
	}
}

func TestCacheEviction(t *testing.T) {
	g := topology.Ring(4, 4, attrs(0.005), attrs(0.001))
	homes := g.Clients()
	c := NewCache(g, homes, 8)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if i != j {
				c.Lookup(pipes.VN(i), pipes.VN(j))
			}
		}
	}
	if c.Len() > 8 {
		t.Errorf("cache grew to %d, cap 8", c.Len())
	}
	if c.Misses == 0 || c.Hits != 0 {
		t.Errorf("hits=%d misses=%d; scan workload should all miss", c.Hits, c.Misses)
	}
	// Repeated lookups of a working set smaller than capacity should hit.
	c.Invalidate()
	c.Hits, c.Misses = 0, 0
	for rep := 0; rep < 10; rep++ {
		for j := 1; j < 5; j++ {
			c.Lookup(0, pipes.VN(j))
		}
	}
	if c.Hits != 36 || c.Misses != 4 {
		t.Errorf("hits=%d misses=%d, want 36/4", c.Hits, c.Misses)
	}
}

func TestBindDefaults(t *testing.T) {
	g := topology.Star(10, attrs(0.001))
	b, err := Bind(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumVNs() != 10 {
		t.Fatalf("VNs = %d", b.NumVNs())
	}
	// One edge per VN, all on core 0.
	for v := 0; v < 10; v++ {
		if b.EdgeOf[v] != v {
			t.Errorf("EdgeOf[%d] = %d", v, b.EdgeOf[v])
		}
	}
	for _, c := range b.CoreOf {
		if c != 0 {
			t.Errorf("core = %d, want 0", c)
		}
	}
	if _, ok := b.Table.Lookup(0, 9); !ok {
		t.Error("route lookup failed")
	}
}

func TestBindMultiplexing(t *testing.T) {
	g := topology.Star(12, attrs(0.001))
	b, err := Bind(g, Options{EdgeNodes: 3, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, e := range b.EdgeOf {
		counts[e]++
	}
	for e := 0; e < 3; e++ {
		if counts[e] != 4 {
			t.Errorf("edge %d hosts %d VNs, want 4", e, counts[e])
		}
	}
	if b.CoreOf[0] != 0 || b.CoreOf[1] != 1 || b.CoreOf[2] != 0 {
		t.Errorf("CoreOf = %v", b.CoreOf)
	}
}

func TestBindNoClients(t *testing.T) {
	g := topology.New()
	g.AddNode(topology.Stub, "s")
	if _, err := Bind(g, Options{}); err == nil {
		t.Error("bind with no clients should fail")
	}
}

func TestVNOfNodeInverse(t *testing.T) {
	g := topology.Ring(3, 2, attrs(0.005), attrs(0.001))
	b, err := Bind(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, home := range b.VNHome {
		if b.VNOfNode[home] != pipes.VN(v) {
			t.Errorf("VNOfNode[%d] = %d, want %d", home, b.VNOfNode[home], v)
		}
	}
	for nid, vn := range b.VNOfNode {
		if vn == -1 && g.Nodes[nid].Kind == topology.Client {
			t.Errorf("client node %d has no VN", nid)
		}
	}
}

func TestPODCrossings(t *testing.T) {
	owner := []int{0, 0, 1, 1, 0}
	d := NewPOD(owner, 2)
	if d.Owner(2) != 1 || d.Owner(0) != 0 {
		t.Fatal("owner lookup wrong")
	}
	// Route through pipes 0,1 (core 0), 2,3 (core 1), 4 (core 0):
	// ingress at core 0 -> crossings at pipe 2 and pipe 4.
	r := Route{0, 1, 2, 3, 4}
	if got := d.Crossings(0, r); got != 2 {
		t.Errorf("crossings = %d, want 2", got)
	}
	// Ingress at core 1: cross to 0 at pipe 0, to 1 at pipe 2, to 0 at pipe 4.
	if got := d.Crossings(1, r); got != 3 {
		t.Errorf("crossings = %d, want 3", got)
	}
}
