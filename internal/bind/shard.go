package bind

// Sharded world distribution: each federated worker holds only its shard's
// view of the world — owned links, the cut frontier, and the fringe links
// needed to route across it — yet reproduces exactly the next-hops the
// global routing matrix would have picked.
//
// The decomposition argument: under source-node ownership (assign.KClusters,
// owner(l) = NodeOwner[src(l)]), a path leaving shard o's region crosses an
// owned link into a foreign "frontier" node m and continues over links o does
// not own. The canonical distance from any o-local node n to target t is
// therefore min(shortest path within owned links, min over frontier m of
// (owned-path n→m + global dist m→t)). Because the policy distance (dest.go)
// is an integer lexicographic pair with associative addition, a reverse
// Dijkstra over owned links seeded with the frontier's *global* distances
// computes bit-exactly the global distance at every local node — and the
// NextHop argmin, evaluated over the identical candidate link set with the
// identical tie-break, picks the identical link. Routes are produced as
// segments: each shard appends its owned pipes plus the first foreign pipe,
// and the receiving shard extends the route on arrival, so the concatenation
// traversed by a packet is byte-identical to the monolithic route.

import (
	"container/heap"
	"fmt"

	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// InfinityLatencySec is the latency a failed link degrades to: routes still
// traverse it (traffic blackholes at the down pipe) but any live path is
// preferred. It must equal routing.Infinity — routing sits above bind in the
// import graph, so the constant lives here and routing's tests pin the two
// together.
const InfinityLatencySec = 1e6

// ShardView is the slice of the world one shard materializes: its owned
// links, incoming cut links (foreign links delivering into its region — the
// sync plan needs their owners), and the fringe (every out-link of every
// frontier node, so NextHop at a frontier node sees the full global candidate
// set). Node and link IDs are global; the worker rebuilds a skeleton graph
// (topology.NewSkeleton) over the full ID spaces with only these links real.
type ShardView struct {
	Shard int
	Cores int
	// NumNodes and NumLinks are the global ID-space sizes.
	NumNodes int
	NumLinks int
	// Links holds the view's real links in ascending ID order; LinkOwner is
	// parallel to it (owning core of each link).
	Links     []topology.Link
	LinkOwner []int32
	// Frontier is the sorted set of foreign nodes reachable over one owned
	// link — where this shard's packets leave its region.
	Frontier []topology.NodeID
	// Summary is the sorted set of foreign nodes whose global distances seed
	// the shard-local route computation: the frontier plus every foreign head
	// of a fringe link.
	Summary []topology.NodeID
}

// BuildShardViews slices the world into per-shard views. owner is the link
// assignment (assign.Assignment.Owner), nodeOwner the node-level partition
// behind it (assign.Assignment.NodeOwner); source-node ownership
// (owner[l] == nodeOwner[src(l)]) is required — it is what confines a
// node's out-links to one shard and makes the frontier decomposition exact.
func BuildShardViews(g *topology.Graph, owner []int, nodeOwner []int, cores int) ([]*ShardView, error) {
	if len(owner) != g.NumLinks() {
		return nil, fmt.Errorf("bind: owner covers %d links, graph has %d", len(owner), g.NumLinks())
	}
	if len(nodeOwner) != g.NumNodes() {
		return nil, fmt.Errorf("bind: nodeOwner covers %d nodes, graph has %d", len(nodeOwner), g.NumNodes())
	}
	for i, l := range g.Links {
		if owner[i] != nodeOwner[l.Src] {
			return nil, fmt.Errorf("bind: link %d owned by %d but its source node %d by %d; sharded distribution requires source-node ownership",
				i, owner[i], l.Src, nodeOwner[l.Src])
		}
		if owner[i] < 0 || owner[i] >= cores {
			return nil, fmt.Errorf("bind: link %d owner %d outside %d cores", i, owner[i], cores)
		}
	}
	views := make([]*ShardView, cores)
	inView := make([]bool, g.NumLinks())
	frontier := make([]bool, g.NumNodes())
	summary := make([]bool, g.NumNodes())
	for o := 0; o < cores; o++ {
		for i := range inView {
			inView[i] = false
		}
		for i := range frontier {
			frontier[i], summary[i] = false, false
		}
		for i, l := range g.Links {
			switch {
			case owner[i] == o:
				inView[i] = true
				if nodeOwner[l.Dst] != o {
					frontier[l.Dst] = true
				}
			case nodeOwner[l.Dst] == o:
				inView[i] = true // incoming cut link
			}
		}
		v := &ShardView{Shard: o, Cores: cores, NumNodes: g.NumNodes(), NumLinks: g.NumLinks()}
		for n := range frontier {
			if !frontier[n] {
				continue
			}
			v.Frontier = append(v.Frontier, topology.NodeID(n))
			summary[n] = true
			for _, lid := range g.Out(topology.NodeID(n)) {
				inView[lid] = true
				if h := g.Links[lid].Dst; nodeOwner[h] != o {
					summary[h] = true
				}
			}
		}
		for n := range summary {
			if summary[n] {
				v.Summary = append(v.Summary, topology.NodeID(n))
			}
		}
		for i := range inView {
			if inView[i] {
				v.Links = append(v.Links, g.Links[i])
				v.LinkOwner = append(v.LinkOwner, int32(owner[i]))
			}
		}
		views[o] = v
	}
	return views, nil
}

// Skeleton materializes the view as a sparse graph over the global ID spaces.
func (v *ShardView) Skeleton() (*topology.Graph, error) {
	return topology.NewSkeleton(v.NumNodes, v.NumLinks, v.Links)
}

// SeedFunc supplies the global distances from a shard's Summary nodes to a
// target node under a given reroute epoch, in the view's Summary order. On a
// worker this is a control-plane RPC to the coordinator; in-process it wraps
// a SummaryOracle.
type SeedFunc func(epoch int32, target topology.NodeID) ([]Dist, error)

// fieldKey identifies one cached shard-local distance field.
type fieldKey struct {
	epoch  int32
	target topology.NodeID
}

type shardField struct {
	key        fieldKey
	dist       []Dist // compact, indexed by ShardTable.nodeIdx
	prev, next *shardField
}

// ShardTable is the shard-local routing table: it resolves routes over the
// shard view, seeding distance fields with frontier summaries fetched on
// demand (SeedFunc) and caching them per (reroute epoch, target home) in a
// bounded LRU. Lookup produces the route segment up to and including the
// first foreign pipe; Extend grows a tunneled packet's route the same way on
// the receiving shard. Reroute epochs advance with AdvanceEpoch; packets
// keep the epoch they were injected under, so in-flight routes stay exactly
// what the monolithic injection-time matrix would have produced.
type ShardTable struct {
	g      *topology.Graph // skeleton (or full graph in tests)
	shard  int
	vnHome []topology.NodeID
	owner  []int32 // dense link ID -> owning core, -1 = outside the view
	summ   []topology.NodeID
	seeds  SeedFunc

	nodeIdx []int32 // dense node ID -> compact index, -1 = uncovered
	covered []topology.NodeID
	revIn   [][]topology.LinkID // compact dst index -> owned in-links

	epoch int32
	downs []map[topology.LinkID]bool // per-epoch down link sets

	cap      int
	fields   map[fieldKey]*shardField
	lruHead  *shardField
	lruTail  *shardField
	Misses   uint64
	SeedRPCs uint64
}

// downLat is the canonical weight of a failed link: the same Infinity-latency
// degradation dynamics applies to the global graph before rerouting.
var downLat = vtime.DurationOf(InfinityLatencySec)

// NewShardTable builds the table for one shard. g must contain the view's
// links under their global IDs (a ShardView.Skeleton, or the full graph);
// vnHome is the global VN→home mapping; fieldCap bounds the cached distance
// fields (≤ 0 picks a default sized for a bounded-target workload).
func NewShardTable(g *topology.Graph, view *ShardView, vnHome []topology.NodeID, seeds SeedFunc, fieldCap int) (*ShardTable, error) {
	if fieldCap <= 0 {
		// Fields materialize lazily, one per route target actually used, so
		// the cap only bounds worst-case many-target memory. It must exceed
		// the workload's distinct-target count: below that the LRU thrashes
		// and every lookup becomes a coordinator round trip.
		fieldCap = 4096
	}
	t := &ShardTable{
		g: g, shard: view.Shard, vnHome: vnHome, summ: view.Summary, seeds: seeds,
		owner:   make([]int32, view.NumLinks),
		nodeIdx: make([]int32, view.NumNodes),
		downs:   []map[topology.LinkID]bool{nil},
		cap:     fieldCap,
		fields:  make(map[fieldKey]*shardField),
	}
	for i := range t.owner {
		t.owner[i] = -1
	}
	for i, l := range view.Links {
		if l.ID < 0 || int(l.ID) >= view.NumLinks {
			return nil, fmt.Errorf("bind: shard view link ID %d outside %d slots", l.ID, view.NumLinks)
		}
		t.owner[l.ID] = view.LinkOwner[i]
	}
	for i := range t.nodeIdx {
		t.nodeIdx[i] = -1
	}
	mark := make([]bool, view.NumNodes)
	for _, l := range view.Links {
		mark[l.Src], mark[l.Dst] = true, true
	}
	for n, m := range mark {
		if m {
			t.nodeIdx[n] = int32(len(t.covered))
			t.covered = append(t.covered, topology.NodeID(n))
		}
	}
	t.revIn = make([][]topology.LinkID, len(t.covered))
	for i, l := range view.Links {
		if view.LinkOwner[i] == int32(view.Shard) {
			ci := t.nodeIdx[l.Dst]
			t.revIn[ci] = append(t.revIn[ci], l.ID)
		}
	}
	return t, nil
}

// Epoch reports the current reroute epoch (0 before any reroute).
func (t *ShardTable) Epoch() int32 { return t.epoch }

// AdvanceEpoch starts a new reroute epoch with the given set of currently
// down links. Earlier epochs' fields stay valid for in-flight packets.
func (t *ShardTable) AdvanceEpoch(down []topology.LinkID) {
	var m map[topology.LinkID]bool
	if len(down) > 0 {
		m = make(map[topology.LinkID]bool, len(down))
		for _, lid := range down {
			m[lid] = true
		}
	}
	t.downs = append(t.downs, m)
	t.epoch++
}

// SetEpochs installs the full reroute schedule up front: sets[e] is the
// down-set in force at epoch e (sets[0] nil or empty, the pristine world;
// dynamics.EnumerateReroutes produces exactly this shape). The current epoch
// is unchanged — Lookup keeps resolving under the epochs this shard's own
// replay has reached — but the table can serve distance fields for *any*
// scheduled epoch, which Extend needs: a faster peer may tunnel a packet
// injected under a reroute this shard has not fired yet.
func (t *ShardTable) SetEpochs(sets [][]topology.LinkID) {
	downs := make([]map[topology.LinkID]bool, len(sets))
	for e, set := range sets {
		if len(set) == 0 {
			continue
		}
		m := make(map[topology.LinkID]bool, len(set))
		for _, lid := range set {
			m[lid] = true
		}
		downs[e] = m
	}
	if len(downs) == 0 {
		downs = []map[topology.LinkID]bool{nil}
	}
	t.downs = downs
}

// Advance moves to the next preloaded epoch — the reroute hook under a
// SetEpochs schedule. It panics if the schedule is exhausted: the live
// replay fired more reroutes than the enumeration that built the schedule,
// and continuing would silently route packets against the wrong graph.
func (t *ShardTable) Advance() {
	if int(t.epoch)+1 >= len(t.downs) {
		panic(fmt.Sprintf("bind: shard %d reroute #%d exceeds the preloaded epoch schedule (%d epochs)",
			t.shard, t.epoch+1, len(t.downs)))
	}
	t.epoch++
}

// weight is the epoch-aware canonical link weight.
func (t *ShardTable) weight(lid topology.LinkID, epoch int32) vtime.Duration {
	if m := t.downs[epoch]; m != nil && m[lid] {
		return downLat
	}
	return LinkLat(t.g.Links[lid])
}

// field returns the shard-local distance field toward target at epoch,
// computing and caching it on a miss.
func (t *ShardTable) field(epoch int32, target topology.NodeID) ([]Dist, error) {
	if epoch < 0 || int(epoch) >= len(t.downs) {
		return nil, fmt.Errorf("bind: shard %d asked for unknown reroute epoch %d (current %d)", t.shard, epoch, t.epoch)
	}
	key := fieldKey{epoch, target}
	if f, ok := t.fields[key]; ok {
		t.touch(f)
		return f.dist, nil
	}
	t.Misses++
	dist, err := t.compute(epoch, target)
	if err != nil {
		return nil, err
	}
	f := &shardField{key: key, dist: dist}
	t.fields[key] = f
	t.pushFront(f)
	if len(t.fields) > t.cap {
		t.evict()
	}
	return dist, nil
}

// compute runs the seeded reverse Dijkstra over owned links. Seeds are the
// summary nodes' exact global distances, so every covered local node ends at
// its exact global distance (see the decomposition argument above).
func (t *ShardTable) compute(epoch int32, target topology.NodeID) ([]Dist, error) {
	dist := make([]Dist, len(t.covered))
	for i := range dist {
		dist[i] = Unreachable
	}
	var q destPQ
	seed := func(n topology.NodeID, d Dist) {
		ci := t.nodeIdx[n]
		if ci < 0 || !d.Less(dist[ci]) {
			return
		}
		dist[ci] = d
		heap.Push(&q, destItem{n, d})
	}
	if len(t.summ) > 0 {
		t.SeedRPCs++
		sd, err := t.seeds(epoch, target)
		if err != nil {
			return nil, fmt.Errorf("bind: shard %d summary seeds for node %d epoch %d: %w", t.shard, target, epoch, err)
		}
		if len(sd) != len(t.summ) {
			return nil, fmt.Errorf("bind: shard %d got %d summary seeds, want %d", t.shard, len(sd), len(t.summ))
		}
		for i, s := range t.summ {
			if sd[i].Reachable() {
				seed(s, sd[i])
			}
		}
	}
	seed(target, Dist{})
	done := make([]bool, len(t.covered))
	for q.Len() > 0 {
		it := heap.Pop(&q).(destItem)
		ci := t.nodeIdx[it.node]
		if done[ci] {
			continue
		}
		done[ci] = true
		for _, lid := range t.revIn[ci] {
			l := t.g.Links[lid]
			nd := it.d.Add(t.weight(lid, epoch))
			si := t.nodeIdx[l.Src]
			if nd.Less(dist[si]) {
				dist[si] = nd
				heap.Push(&q, destItem{l.Src, nd})
			}
		}
	}
	return dist, nil
}

// routeFrom appends the canonical walk from cur toward target to r, stopping
// after the first pipe owned by another shard (its owner extends the route on
// arrival). The argmin and tie-break are exactly NextHop's; at a local node
// the candidate set is all of the node's out-links (source-node ownership),
// at a frontier node it is the shipped fringe — the full global set either
// way, so the picked link is the global pick.
func (t *ShardTable) routeFrom(r Route, cur, target topology.NodeID, dist []Dist, epoch int32) (Route, bool) {
	for steps := 0; cur != target; steps++ {
		if steps > t.g.NumLinks() {
			return nil, false
		}
		best := topology.LinkID(-1)
		var bd Dist
		for _, lid := range t.g.Out(cur) {
			hi := t.nodeIdx[t.g.Links[lid].Dst]
			if hi < 0 {
				continue
			}
			hd := dist[hi]
			if !hd.Reachable() {
				continue
			}
			cd := hd.Add(t.weight(lid, epoch))
			if best < 0 || cd.Less(bd) || (cd == bd && lid < best) {
				best, bd = lid, cd
			}
		}
		if best < 0 {
			return nil, false
		}
		r = append(r, pipes.ID(best))
		if t.owner[best] != int32(t.shard) {
			return r, true
		}
		cur = t.g.Links[best].Dst
	}
	return r, true
}

// Lookup implements Table: the route segment from src's home up to and
// including the first foreign pipe (or the full route when it never leaves
// the shard), under the current epoch. A seed fetch failure is a control
// plane failure, not a routing miss, and panics loudly rather than silently
// dropping traffic as unreachable.
func (t *ShardTable) Lookup(src, dst pipes.VN) (Route, bool) {
	if int(src) >= len(t.vnHome) || int(dst) >= len(t.vnHome) || src < 0 || dst < 0 {
		return nil, false
	}
	if src == dst {
		return Route{}, true
	}
	target := t.vnHome[dst]
	dist, err := t.field(t.epoch, target)
	if err != nil {
		panic(fmt.Sprintf("bind: shard table lookup %d->%d: %v", src, dst, err))
	}
	start := t.vnHome[src]
	if start == target {
		return Route{}, true
	}
	ci := t.nodeIdx[start]
	if ci < 0 || !dist[ci].Reachable() {
		return nil, false
	}
	return t.routeFrom(nil, start, target, dist, t.epoch)
}

// Extend grows a tunneled packet's route under its pinned epoch: while the
// route's last pipe is owned by this shard and does not yet reach dst's home,
// append this shard's next segment. Called on the receiving shard before the
// packet is applied, so synchronization pricing sees the extended route.
func (t *ShardTable) Extend(r Route, epoch int32, dst pipes.VN) (Route, error) {
	if len(r) == 0 || int(dst) >= len(t.vnHome) || dst < 0 {
		return r, nil
	}
	last := r[len(r)-1]
	if t.owner[last] != int32(t.shard) {
		return r, nil // a later shard's segment; not ours to extend
	}
	cur := t.g.Links[last].Dst
	target := t.vnHome[dst]
	if cur == target {
		return r, nil
	}
	dist, err := t.field(epoch, target)
	if err != nil {
		return nil, err
	}
	ext, ok := t.routeFrom(r, cur, target, dist, epoch)
	if !ok {
		return nil, fmt.Errorf("bind: shard %d cannot extend route toward VN %d (node %d) at epoch %d", t.shard, dst, target, epoch)
	}
	return ext, nil
}

// NumVNs implements Table.
func (t *ShardTable) NumVNs() int { return len(t.vnHome) }

func (t *ShardTable) touch(f *shardField) {
	t.unlink(f)
	t.pushFront(f)
}

func (t *ShardTable) pushFront(f *shardField) {
	f.prev = nil
	f.next = t.lruHead
	if t.lruHead != nil {
		t.lruHead.prev = f
	}
	t.lruHead = f
	if t.lruTail == nil {
		t.lruTail = f
	}
}

func (t *ShardTable) unlink(f *shardField) {
	if f.prev != nil {
		f.prev.next = f.next
	} else if t.lruHead == f {
		t.lruHead = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else if t.lruTail == f {
		t.lruTail = f.prev
	}
	f.prev, f.next = nil, nil
}

func (t *ShardTable) evict() {
	f := t.lruTail
	if f == nil {
		return
	}
	t.unlink(f)
	delete(t.fields, f.key)
}

// SummaryOracle is the coordinator-side source of frontier summaries: exact
// global distance fields per (reroute epoch, target), over graphs with each
// epoch's down links degraded to Infinity latency — the same degradation the
// monolithic reroute applies. Epoch graphs and their per-target fields are
// both kept in bounded LRUs. It serves every shard's TRouteReq; the caller
// (the coordinator drive loop) is single-threaded, so the oracle does not
// lock.
type SummaryOracle struct {
	g *topology.Graph
	// DownSet returns the links down at the given epoch (nil for epoch 0).
	downSet  func(epoch int32) ([]topology.LinkID, error)
	fieldCap int
	epochCap int
	engines  map[int32]*destEngine
	order    []int32 // most-recently-used first
}

// NewSummaryOracle builds an oracle over the full graph. downSet may be nil
// when the run has no reroutes; epochCap bounds cached epoch graphs and
// fieldCap the per-epoch distance fields (≤ 0 picks defaults).
func NewSummaryOracle(g *topology.Graph, downSet func(epoch int32) ([]topology.LinkID, error), epochCap, fieldCap int) *SummaryOracle {
	if epochCap <= 0 {
		epochCap = 4
	}
	if fieldCap <= 0 {
		// Same lazy-materialization argument as NewShardTable: the cap must
		// exceed the workload's distinct paged targets or every TRouteReq
		// rebuilds a field.
		fieldCap = 4096
	}
	return &SummaryOracle{g: g, downSet: downSet, fieldCap: fieldCap, epochCap: epochCap, engines: map[int32]*destEngine{}}
}

// engine returns the per-epoch distance engine, building the epoch's
// degraded graph on first use.
func (o *SummaryOracle) engine(epoch int32) (*destEngine, error) {
	if e, ok := o.engines[epoch]; ok {
		for i, ep := range o.order {
			if ep == epoch {
				o.order = append(o.order[:i], o.order[i+1:]...)
				break
			}
		}
		o.order = append([]int32{epoch}, o.order...)
		return e, nil
	}
	g := o.g
	if epoch > 0 {
		if o.downSet == nil {
			return nil, fmt.Errorf("bind: summary oracle has no down-set source for epoch %d", epoch)
		}
		down, err := o.downSet(epoch)
		if err != nil {
			return nil, err
		}
		if len(down) > 0 {
			g = g.Clone()
			for _, lid := range down {
				if lid < 0 || int(lid) >= len(g.Links) {
					return nil, fmt.Errorf("bind: epoch %d down link %d out of range", epoch, lid)
				}
				g.Links[lid].Attr.LatencySec = InfinityLatencySec
			}
		}
	} else if epoch < 0 {
		return nil, fmt.Errorf("bind: negative reroute epoch %d", epoch)
	}
	e := newDestEngine(g, o.fieldCap)
	o.engines[epoch] = e
	o.order = append([]int32{epoch}, o.order...)
	if len(o.order) > o.epochCap {
		victim := o.order[len(o.order)-1]
		o.order = o.order[:len(o.order)-1]
		delete(o.engines, victim)
	}
	return e, nil
}

// Seeds returns the global distances from the given nodes to target at the
// given epoch, in the given order.
func (o *SummaryOracle) Seeds(epoch int32, target topology.NodeID, nodes []topology.NodeID) ([]Dist, error) {
	if target < 0 || int(target) >= o.g.NumNodes() {
		return nil, fmt.Errorf("bind: summary target node %d out of range", target)
	}
	e, err := o.engine(epoch)
	if err != nil {
		return nil, err
	}
	dist := e.distTo(target)
	out := make([]Dist, len(nodes))
	for i, n := range nodes {
		if n < 0 || int(n) >= len(dist) {
			return nil, fmt.Errorf("bind: summary node %d out of range", n)
		}
		out[i] = dist[n]
	}
	return out, nil
}

// SeedFuncFor adapts the oracle to one shard's Summary node list — the
// in-process SeedFunc used by tests and same-process federations.
func (o *SummaryOracle) SeedFuncFor(nodes []topology.NodeID) SeedFunc {
	fixed := append([]topology.NodeID(nil), nodes...)
	return func(epoch int32, target topology.NodeID) ([]Dist, error) {
		return o.Seeds(epoch, target, fixed)
	}
}
