// Package bind implements ModelNet's Binding phase (§2.1–2.2): deciding
// what runs where, and how packets find their way.
//
//   - Bind assigns VNs to edge nodes and cores and builds the routing
//     table: the precomputed all-pairs matrix (BuildMatrix), the bounded
//     LRU route cache (NewCache), or the per-stub-cluster hierarchical
//     tables (BuildHier) — the paper's three storage alternatives.
//   - POD is the pipe ownership directory: which core owns each pipe, and
//     therefore when a multi-core emulation must tunnel a packet's
//     descriptor to a peer core.
//   - GatewayTable is the live-edge analog of the VN binding: it maps the
//     real five-tuples arriving at an edge gateway (internal/edge) onto
//     ingress VNs, statically pinned or dynamically claimed with LRU
//     eviction, so unmodified external processes can impersonate virtual
//     nodes at one narrow, explicitly brokered boundary.
package bind
