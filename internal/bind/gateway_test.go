package bind

import (
	"testing"

	"modelnet/internal/pipes"
)

func key(src string) FiveTuple {
	return FiveTuple{Proto: "udp", Src: src, Dst: "127.0.0.1:9000"}
}

func TestGatewayTableClaimIsStable(t *testing.T) {
	tb := NewGatewayTable([]pipes.VN{3, 5})
	vn, ok := tb.Claim(key("10.0.0.1:4444"), 1)
	if !ok || vn != 3 {
		t.Fatalf("first claim = (%d, %v), want (3, true)", vn, ok)
	}
	// The same flow resolves to the same VN, not a new claim.
	again, ok := tb.Claim(key("10.0.0.1:4444"), 2)
	if !ok || again != vn {
		t.Fatalf("re-claim = (%d, %v), want (%d, true)", again, ok, vn)
	}
	if tb.Len() != 1 || tb.Free() != 1 {
		t.Fatalf("after one flow: len %d free %d, want 1/1", tb.Len(), tb.Free())
	}
	// A different source port is a different flow: new claim.
	other, ok := tb.Claim(key("10.0.0.1:4445"), 3)
	if !ok || other != 5 {
		t.Fatalf("second flow = (%d, %v), want (5, true)", other, ok)
	}
}

func TestGatewayTableEvictsLRU(t *testing.T) {
	tb := NewGatewayTable([]pipes.VN{1, 2})
	a, _ := tb.Claim(key("10.0.0.1:1"), 10)
	b, _ := tb.Claim(key("10.0.0.2:1"), 20)
	// Touch a so b becomes the LRU binding.
	tb.Claim(key("10.0.0.1:1"), 30)

	c, ok := tb.Claim(key("10.0.0.3:1"), 40)
	if !ok {
		t.Fatal("claim with full pool should evict, not fail")
	}
	if c != b {
		t.Fatalf("evicted VN %d, want LRU victim %d", c, b)
	}
	if tb.Collisions != 1 || tb.Evictions != 1 {
		t.Fatalf("collisions/evictions = %d/%d, want 1/1", tb.Collisions, tb.Evictions)
	}
	// The evicted flow lost its binding; the survivor kept its VN.
	if _, ok := tb.Peer(b); !ok {
		t.Fatal("recycled VN should carry the new flow")
	}
	if k, _ := tb.Peer(b); k != key("10.0.0.3:1") {
		t.Fatalf("VN %d now bound to %v, want the new flow", b, k)
	}
	if vn, _ := tb.Claim(key("10.0.0.1:1"), 50); vn != a {
		t.Fatalf("survivor rebound to %d, want %d", vn, a)
	}
	// The evicted flow, returning, claims again — evicting the now-LRU
	// newcomer (stamp 40) rather than the recently touched survivor.
	if vn, ok := tb.Claim(key("10.0.0.2:1"), 60); !ok || vn != b {
		t.Fatalf("returning evictee = (%d, %v), want (%d, true)", vn, ok, b)
	}
}

func TestGatewayTableEvictionTieBreaksOnVN(t *testing.T) {
	tb := NewGatewayTable([]pipes.VN{7, 4})
	tb.Claim(key("10.0.0.1:1"), 5) // VN 7
	tb.Claim(key("10.0.0.2:1"), 5) // VN 4, same stamp
	vn, ok := tb.Claim(key("10.0.0.3:1"), 6)
	if !ok || vn != 4 {
		t.Fatalf("tie eviction granted VN %d (ok=%v), want lowest VN 4", vn, ok)
	}
}

func TestGatewayTableStaticBindings(t *testing.T) {
	tb := NewGatewayTable(nil)
	if err := tb.Bind(key("10.0.0.9:9"), 8); err != nil {
		t.Fatal(err)
	}
	if err := tb.Bind(key("10.0.0.9:9"), 9); err == nil {
		t.Fatal("duplicate key bind should error")
	}
	if err := tb.Bind(key("10.0.0.8:8"), 8); err == nil {
		t.Fatal("duplicate VN bind should error")
	}
	// Static bindings resolve through Claim like any other.
	if vn, ok := tb.Claim(key("10.0.0.9:9"), 1); !ok || vn != 8 {
		t.Fatalf("static claim = (%d, %v), want (8, true)", vn, ok)
	}
	// With no dynamic pool and only static bindings, strangers are refused
	// rather than evicting a pinned mapping.
	if _, ok := tb.Claim(key("10.0.0.1:1"), 2); ok {
		t.Fatal("stranger must not displace a static binding")
	}
	if tb.Collisions != 1 || tb.Evictions != 0 {
		t.Fatalf("collisions/evictions = %d/%d, want 1/0", tb.Collisions, tb.Evictions)
	}
}
