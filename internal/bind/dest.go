package bind

// Destination-rooted route computation with integer weights — the canonical
// routing policy shared by every execution mode.
//
// The policy: the distance of a path is the lexicographic pair
// (total latency in integer nanoseconds, hop count); the next hop out of
// node n toward target t is the out-link minimizing weight(l) + dist(head(l), t),
// ties broken by smallest link ID. Integer arithmetic makes path sums
// associative, so a distance computed by a reverse Dijkstra on the full
// graph and one computed from a shard-local subgraph seeded with frontier
// summaries agree bit-for-bit — which is what lets a federated worker
// reproduce exactly the next-hops the global matrix would have picked
// (internal/bind/shard.go builds on this).

import (
	"container/heap"
	"math"

	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// Dist is a path distance under the canonical policy: total latency in
// integer nanoseconds, then hop count, compared lexicographically.
type Dist struct {
	Lat  vtime.Duration
	Hops int32
}

// Unreachable is the distance of a node with no path to the target.
var Unreachable = Dist{Lat: vtime.Duration(math.MaxInt64), Hops: math.MaxInt32}

// Reachable reports whether d is a finite distance.
func (d Dist) Reachable() bool { return d.Lat != Unreachable.Lat || d.Hops != Unreachable.Hops }

// Less orders distances lexicographically: latency first, then hops.
func (d Dist) Less(o Dist) bool {
	if d.Lat != o.Lat {
		return d.Lat < o.Lat
	}
	return d.Hops < o.Hops
}

// Add extends d by one link of the given latency, saturating so Infinity-
// weighted links (dynamics' down-link degradation) cannot overflow.
func (d Dist) Add(lat vtime.Duration) Dist {
	if !d.Reachable() {
		return Unreachable
	}
	s := d.Lat + lat
	if s < d.Lat { // overflow
		s = vtime.Duration(math.MaxInt64 - 1)
	}
	h := d.Hops
	if h < math.MaxInt32-1 {
		h++
	}
	return Dist{Lat: s, Hops: h}
}

// LinkLat is the canonical integer weight of a link: its propagation
// latency converted to nanoseconds exactly as the emulation's pipes convert
// it. Every route computation — global or shard-local — must use this and
// only this conversion, or tie-breaks diverge across modes.
func LinkLat(l topology.Link) vtime.Duration {
	return vtime.DurationOf(l.Attr.LatencySec)
}

// ReverseIndex returns, per node, the IDs of links entering it. Build it
// once per graph and share it across DistToNode calls.
func ReverseIndex(g *topology.Graph) [][]topology.LinkID {
	in := make([][]topology.LinkID, g.NumNodes())
	for _, l := range g.Links {
		in[l.Dst] = append(in[l.Dst], l.ID)
	}
	return in
}

// destItem is a frontier entry of the reverse Dijkstra.
type destItem struct {
	node topology.NodeID
	d    Dist
}

type destPQ []destItem

func (p destPQ) Len() int { return len(p) }
func (p destPQ) Less(i, j int) bool {
	if p[i].d != p[j].d {
		return p[i].d.Less(p[j].d)
	}
	return p[i].node < p[j].node
}
func (p destPQ) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p *destPQ) Push(x any)   { *p = append(*p, x.(destItem)) }
func (p *destPQ) Pop() any     { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// DistToNode computes, for every node, the canonical distance to target:
// one reverse Dijkstra over the incoming-link index. The result is the
// unique policy distance — independent of heap pop order — so any two
// computations of it agree exactly.
func DistToNode(g *topology.Graph, rev [][]topology.LinkID, target topology.NodeID) []Dist {
	dist := make([]Dist, g.NumNodes())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[target] = Dist{}
	var q destPQ
	heap.Push(&q, destItem{target, Dist{}})
	done := make([]bool, g.NumNodes())
	for q.Len() > 0 {
		it := heap.Pop(&q).(destItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, lid := range rev[it.node] {
			l := g.Links[lid]
			nd := it.d.Add(LinkLat(l))
			if nd.Less(dist[l.Src]) {
				dist[l.Src] = nd
				heap.Push(&q, destItem{l.Src, nd})
			}
		}
	}
	return dist
}

// NextHop picks the canonical next link out of n toward the target whose
// distance field is dist: the out-link minimizing weight + downstream
// distance, smallest link ID on ties. It returns -1 when n has no path.
func NextHop(g *topology.Graph, n topology.NodeID, dist []Dist) topology.LinkID {
	best := topology.LinkID(-1)
	var bd Dist
	for _, lid := range g.Out(n) {
		l := g.Links[lid]
		hd := dist[l.Dst]
		if !hd.Reachable() {
			continue
		}
		cd := hd.Add(LinkLat(l))
		if best < 0 || cd.Less(bd) || (cd == bd && lid < best) {
			best, bd = lid, cd
		}
	}
	return best
}

// WalkRoute extracts the canonical route from src to target by greedy
// NextHop steps. Returns nil when target is unreachable from src; an empty
// route when src == target.
func WalkRoute(g *topology.Graph, src, target topology.NodeID, dist []Dist) Route {
	if src == target {
		return Route{}
	}
	if !dist[src].Reachable() {
		return nil
	}
	var r Route
	cur := src
	// The walk strictly decreases (lat, hops) — hops alone when a link has
	// zero latency — so it terminates; the cap is pure defense.
	for steps := 0; cur != target; steps++ {
		if steps > g.NumLinks() {
			return nil
		}
		lid := NextHop(g, cur, dist)
		if lid < 0 {
			return nil
		}
		r = append(r, pipes.ID(lid))
		cur = g.Links[lid].Dst
	}
	return r
}

// destEngine caches per-target distance fields over one graph, the shared
// machinery behind Matrix, Cache, and Lazy. Entries are evicted LRU; results
// are deterministic regardless of eviction order.
type destEngine struct {
	g   *topology.Graph
	rev [][]topology.LinkID

	cap     int
	fields  map[topology.NodeID]*destField
	lruHead *destField
	lruTail *destField
}

type destField struct {
	target     topology.NodeID
	dist       []Dist
	prev, next *destField
}

func newDestEngine(g *topology.Graph, capacity int) *destEngine {
	if capacity < 1 {
		capacity = 1
	}
	return &destEngine{
		g: g, rev: ReverseIndex(g),
		cap:    capacity,
		fields: make(map[topology.NodeID]*destField),
	}
}

// distTo returns the distance field toward target, computing and caching it
// on a miss.
func (e *destEngine) distTo(target topology.NodeID) []Dist {
	if f, ok := e.fields[target]; ok {
		e.touch(f)
		return f.dist
	}
	f := &destField{target: target, dist: DistToNode(e.g, e.rev, target)}
	e.fields[target] = f
	e.pushFront(f)
	if len(e.fields) > e.cap {
		e.evict()
	}
	return f.dist
}

func (e *destEngine) touch(f *destField) {
	e.unlink(f)
	e.pushFront(f)
}

func (e *destEngine) pushFront(f *destField) {
	f.prev = nil
	f.next = e.lruHead
	if e.lruHead != nil {
		e.lruHead.prev = f
	}
	e.lruHead = f
	if e.lruTail == nil {
		e.lruTail = f
	}
}

func (e *destEngine) unlink(f *destField) {
	if f.prev != nil {
		f.prev.next = f.next
	} else if e.lruHead == f {
		e.lruHead = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else if e.lruTail == f {
		e.lruTail = f.prev
	}
	f.prev, f.next = nil, nil
}

func (e *destEngine) evict() {
	f := e.lruTail
	if f == nil {
		return
	}
	e.unlink(f)
	delete(e.fields, f.target)
}

func (e *destEngine) invalidate() {
	e.fields = make(map[topology.NodeID]*destField)
	e.lruHead, e.lruTail = nil, nil
}
