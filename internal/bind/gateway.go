package bind

// The gateway bind table: the live-edge analog of the VN binding. A
// federated worker's edge gateway (internal/edge) receives datagrams from
// real, unmodified processes on real sockets; this table decides which
// virtual node each real transport flow impersonates. Static bindings pin
// a known external endpoint to a VN; dynamic bindings let unknown sources
// claim a VN from a bounded pool, with LRU eviction when the pool is
// exhausted — the paper's "unmodified applications on edge hosts" story
// needs exactly this one narrow, explicitly brokered mapping at the
// real/emulated boundary.

import (
	"fmt"

	"modelnet/internal/pipes"
)

// FiveTuple identifies one real transport flow at a gateway socket. Src is
// the remote (external) endpoint, Dst the gateway's bound endpoint; both
// are canonical "ip:port" strings. With one gateway socket per worker the
// protocol and Dst are constant, but the full tuple keeps the key honest
// if a gateway ever binds several sockets.
type FiveTuple struct {
	Proto string // "udp" (TCP gateways would extend this)
	Src   string // external endpoint, "ip:port"
	Dst   string // gateway endpoint, "ip:port"
}

func (k FiveTuple) String() string { return k.Proto + " " + k.Src + "->" + k.Dst }

// gwEntry is one live binding.
type gwEntry struct {
	key      FiveTuple
	vn       pipes.VN
	static   bool
	lastSeen int64 // caller-supplied activity stamp (wall ns at the gateway)
}

// GatewayTable maps real five-tuples onto ingress VNs. It is not safe for
// concurrent use; the gateway serializes access under its own lock.
type GatewayTable struct {
	free  []pipes.VN // unclaimed dynamic pool, claimed in declaration order
	byKey map[FiveTuple]*gwEntry
	byVN  map[pipes.VN]*gwEntry

	// Collisions counts dynamic claims that found the pool exhausted;
	// Evictions counts the bindings recycled to serve them. They differ
	// only when every binding is static (the claim then fails instead).
	Collisions uint64
	Evictions  uint64
}

// NewGatewayTable returns a table whose dynamic pool is the given VNs, in
// claim order.
func NewGatewayTable(pool []pipes.VN) *GatewayTable {
	return &GatewayTable{
		free:  append([]pipes.VN(nil), pool...),
		byKey: make(map[FiveTuple]*gwEntry),
		byVN:  make(map[pipes.VN]*gwEntry),
	}
}

// Bind pins a static binding: datagrams from key impersonate vn, and the
// binding is never evicted. It is an error to bind a key or VN twice.
func (t *GatewayTable) Bind(key FiveTuple, vn pipes.VN) error {
	if _, dup := t.byKey[key]; dup {
		return fmt.Errorf("bind: gateway key %v already bound", key)
	}
	if _, dup := t.byVN[vn]; dup {
		return fmt.Errorf("bind: gateway VN %d already bound", vn)
	}
	e := &gwEntry{key: key, vn: vn, static: true}
	t.byKey[key] = e
	t.byVN[vn] = e
	return nil
}

// Claim resolves key to its VN, creating a dynamic binding on first
// contact: a free pool VN if one remains, else the least-recently-seen
// dynamic binding is evicted and its VN reused (ties broken toward the
// lowest VN, so eviction is deterministic given the activity stamps).
// at is the activity stamp recorded for the binding. The second result is
// false when no VN can be granted (no pool and nothing evictable).
func (t *GatewayTable) Claim(key FiveTuple, at int64) (pipes.VN, bool) {
	if e, ok := t.byKey[key]; ok {
		e.lastSeen = at
		return e.vn, true
	}
	var vn pipes.VN
	if len(t.free) > 0 {
		vn = t.free[0]
		t.free = t.free[1:]
	} else {
		t.Collisions++
		victim := t.lruVictim()
		if victim == nil {
			return 0, false
		}
		t.Evictions++
		delete(t.byKey, victim.key)
		delete(t.byVN, victim.vn)
		vn = victim.vn
	}
	e := &gwEntry{key: key, vn: vn, lastSeen: at}
	t.byKey[key] = e
	t.byVN[vn] = e
	return vn, true
}

// lruVictim picks the least-recently-seen dynamic binding, lowest VN on a
// tie; nil when every binding is static.
func (t *GatewayTable) lruVictim() *gwEntry {
	var victim *gwEntry
	for _, e := range t.byVN {
		if e.static {
			continue
		}
		if victim == nil || e.lastSeen < victim.lastSeen ||
			(e.lastSeen == victim.lastSeen && e.vn < victim.vn) {
			victim = e
		}
	}
	return victim
}

// Peer reports the real flow currently bound to vn, if any — the egress
// path's reverse lookup.
func (t *GatewayTable) Peer(vn pipes.VN) (FiveTuple, bool) {
	if e, ok := t.byVN[vn]; ok {
		return e.key, true
	}
	return FiveTuple{}, false
}

// Len reports the number of live bindings; Free the remaining dynamic pool.
func (t *GatewayTable) Len() int  { return len(t.byVN) }
func (t *GatewayTable) Free() int { return len(t.free) }
