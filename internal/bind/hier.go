package bind

import (
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
)

// Hier is the paper's §2.2 storage alternative to the O(n²) routing matrix:
// "for common Internet-like topologies that cluster VNs on stub domains, we
// could spread lookups among hierarchical but smaller tables, trading less
// storage for a slight increase in lookup cost."
//
// VNs are clustered by their attachment router (the client node's first
// neighbor — its stub gateway). Storage is one small matrix per cluster
// (member-pair routes), one k×k matrix of gateway-to-gateway routes, and
// per-member spurs to/from the gateway: O(Σ cᵢ² + k² + n) instead of
// O(n²). A cross-cluster lookup splices spur + core + spur at O(path)
// cost.
//
// On topologies where every cluster reaches the world through its gateway
// (the stub pattern the paper names), spliced routes are exactly the
// shortest paths; elsewhere they may be slightly longer — the accuracy/
// storage tradeoff made explicit.
type Hier struct {
	vnHomes []topology.NodeID
	cluster []int             // vn -> cluster index
	gateway []topology.NodeID // cluster -> gateway node

	// toGw[v] is the route home(v)→gateway(cluster(v)); fromGw[v] the
	// reverse. Intra-cluster pair routes are exact.
	toGw   []Route
	fromGw []Route
	intra  []map[[2]pipes.VN]Route // per cluster, exact member-pair routes
	core   [][]Route               // gateway-pair routes

	// Entries reports stored route count, for storage accounting.
	Entries int
}

// BuildHier constructs the hierarchical table. Each VN's cluster is its
// home node's first neighbor (its access router); VNs with the same access
// router share a cluster.
func BuildHier(g *topology.Graph, vnHomes []topology.NodeID) (*Hier, error) {
	n := len(vnHomes)
	h := &Hier{vnHomes: vnHomes, cluster: make([]int, n)}

	gwIndex := map[topology.NodeID]int{}
	for v, home := range vnHomes {
		nbs := g.Neighbors(home)
		gw := home
		if len(nbs) > 0 {
			gw = nbs[0]
		}
		ci, ok := gwIndex[gw]
		if !ok {
			ci = len(h.gateway)
			gwIndex[gw] = ci
			h.gateway = append(h.gateway, gw)
		}
		h.cluster[v] = ci
	}
	k := len(h.gateway)

	// Spur routes and intra-cluster matrices from each member's tree.
	h.toGw = make([]Route, n)
	h.fromGw = make([]Route, n)
	h.intra = make([]map[[2]pipes.VN]Route, k)
	for i := range h.intra {
		h.intra[i] = make(map[[2]pipes.VN]Route)
	}
	members := make([][]pipes.VN, k)
	for v := 0; v < n; v++ {
		members[h.cluster[v]] = append(members[h.cluster[v]], pipes.VN(v))
	}
	for v := 0; v < n; v++ {
		prev, _ := ShortestPaths(g, vnHomes[v])
		ci := h.cluster[v]
		h.toGw[v] = routeFromTree(g, prev, vnHomes[v], h.gateway[ci])
		h.Entries++
		for _, w := range members[ci] {
			if int(w) == v {
				continue
			}
			r := routeFromTree(g, prev, vnHomes[v], vnHomes[w])
			h.intra[ci][[2]pipes.VN{pipes.VN(v), w}] = r
			h.Entries++
		}
	}
	// Gateway trees give the core matrix and the from-gateway spurs.
	h.core = make([][]Route, k)
	for a := 0; a < k; a++ {
		prev, _ := ShortestPaths(g, h.gateway[a])
		h.core[a] = make([]Route, k)
		for b := 0; b < k; b++ {
			if a == b {
				h.core[a][b] = Route{}
				continue
			}
			h.core[a][b] = routeFromTree(g, prev, h.gateway[a], h.gateway[b])
			h.Entries++
		}
		for _, w := range members[a] {
			h.fromGw[w] = routeFromTree(g, prev, h.gateway[a], h.vnHomes[w])
			h.Entries++
		}
	}
	return h, nil
}

// Lookup implements Table by splicing spur + core + spur.
func (h *Hier) Lookup(src, dst pipes.VN) (Route, bool) {
	if int(src) >= len(h.cluster) || int(dst) >= len(h.cluster) || src < 0 || dst < 0 {
		return nil, false
	}
	if src == dst {
		return Route{}, true
	}
	cs, cd := h.cluster[src], h.cluster[dst]
	if cs == cd {
		r, ok := h.intra[cs][[2]pipes.VN{src, dst}]
		return r, ok && r != nil
	}
	up := h.toGw[src]
	core := h.core[cs][cd]
	down := h.fromGw[dst]
	if up == nil || core == nil || down == nil {
		return nil, false
	}
	out := make(Route, 0, len(up)+len(core)+len(down))
	out = append(out, up...)
	out = append(out, core...)
	out = append(out, down...)
	return out, true
}

// NumVNs implements Table.
func (h *Hier) NumVNs() int { return len(h.cluster) }

// Clusters reports the number of clusters (gateways).
func (h *Hier) Clusters() int { return len(h.gateway) }
