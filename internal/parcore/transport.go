package parcore

// The conservative synchronization loop, factored out of Runtime so that it
// can drive shards it cannot touch directly. The scheduler algebra is
// transport-oblivious (the LinkEmulator/transport separation): the loop
// below only ever asks the cluster to exchange messages, report bounds, and
// run windows. Two transports exist: the in-process one built into Runtime
// (shards are goroutines, messages move between slices at the barrier) and
// the socket transport in internal/fednet (shards are OS processes,
// messages move over real UDP/TCP and the barrier is a TCP round).
//
// Two synchronization algebras share the loop. The fixed algebra releases
// one uniform window per barrier: every shard runs to min over shards of
// (earliest emission time) - 1, where the emission bound is the shard's
// next activity plus the minimum latency over its border pipes. The
// adaptive algebra (the default) grants each shard its own bound from the
// cluster's queue horizon: each shard reports, per peer, the earliest
// virtual time a message from its current state could surface there —
// occupied pipes contribute their deadline plus the shortest remaining
// path to that peer's territory, scheduled events contribute their time
// plus the shard's minimum event-to-crossing distance — and the
// coordinator closes the bounds under chained reactions (a message landing
// on shard i can provoke a message onward to shard j no earlier than its
// fire time plus i's event-to-crossing distance). Jointly idle regions
// collapse to a single window, and a shard far from the action runs far
// ahead of one adjacent to it.

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// Msg is one cross-shard event in flight between barriers: either a tunnel
// entry (Pid >= 0: enqueue Pkt into pipe Pid at time At) or a delivery
// completion (Pid < 0: complete Pkt's delivery at At with accumulated lag
// Lag). Fire is the virtual time the event takes effect on the receiving
// shard; (Fire, Sender, Seq) is the canonical barrier order that makes runs
// independent of arrival order.
type Msg struct {
	Pkt    *pipes.Packet
	Pid    pipes.ID
	At     vtime.Time
	Lag    vtime.Duration
	Fire   vtime.Time
	Sender int
	Seq    uint64
}

// Bounds is one shard's contribution to the horizon computation: Next is
// its next local event time, Safe the earliest virtual time at which it
// could emit a cross-shard message from its current state. SafeTo, present
// under the adaptive algebra, refines Safe per target shard (entry j is the
// earliest a message from this shard's current state could fire on shard j;
// the self entry is Forever). Safe is always min over SafeTo when SafeTo is
// present, so uniform-window consumers need not care which algebra produced
// the bounds.
type Bounds struct {
	Next, Safe vtime.Time
	SafeTo     []vtime.Time
}

// SyncMode selects the synchronization algebra.
type SyncMode int

const (
	// SyncAdaptive derives per-shard window grants from the cluster's
	// queue horizon at every barrier. The default.
	SyncAdaptive SyncMode = iota
	// SyncFixed releases uniform windows bounded by the static border-pipe
	// lookahead, the original algebra; kept as an escape hatch and as the
	// baseline the adaptive mode is measured against.
	SyncFixed
)

// ParseSyncMode maps the CLI spelling to a mode ("" and "adaptive" are
// adaptive, "fixed" is fixed).
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "", "adaptive":
		return SyncAdaptive, nil
	case "fixed":
		return SyncFixed, nil
	}
	return SyncAdaptive, fmt.Errorf("parcore: unknown sync mode %q (want adaptive or fixed)", s)
}

func (m SyncMode) String() string {
	if m == SyncFixed {
		return "fixed"
	}
	return "adaptive"
}

// Transport connects the synchronization loop to the cluster's shards,
// hiding whether they are goroutines or processes.
type Transport interface {
	// Cores reports the number of shards.
	Cores() int
	// Exchange moves every pending cross-shard message to its target
	// shard, has each shard apply its inbox in canonical order, and
	// returns every shard's bounds. This is the barrier.
	Exchange() ([]Bounds, error)
	// Window runs every shard concurrently, shard i through grants[i]
	// (inclusive). The fixed algebra passes a uniform slice.
	Window(grants []vtime.Time) error
	// DrainPass gives every shard one serial turn at time t — apply
	// pending messages, then run local events with timestamps ≤ t — and
	// moves the messages those turns produced. Turns within a pass are
	// independent (messages only travel between passes), so shards may
	// take them concurrently. Reports whether any shard ran events.
	DrainPass(t vtime.Time) (bool, error)
}

// DriveOpts selects how the synchronization loop runs.
type DriveOpts struct {
	// Pace, when non-nil, slaves window release to the wall clock. A paced
	// drive always uses uniform windows: the wall clock caps every shard
	// at the same quantum, so per-shard grants cannot pay for their extra
	// bookkeeping there.
	Pace *Pacing
	// Mode selects the algebra. SyncAdaptive needs Chain; without it the
	// loop falls back to fixed.
	Mode SyncMode
	// Chain is the k×k matrix of minimum reaction distances: Chain[i][j]
	// lower-bounds how long after a message lands on shard i a consequence
	// of it can surface on shard j. ChainMatrix derives it from the
	// shards' SyncPlans.
	Chain [][]vtime.Duration
}

// Drive runs the conservative synchronization loop over the transport until
// every event at or before deadline has fired: barrier, agree on window
// grants, run shards in parallel below them, exchange tunnel messages,
// repeat. With deadline == vtime.Forever it returns at global quiescence
// without the final clock-advancing window. st accumulates synchronization
// counters. Drive uses the fixed algebra; DriveWith selects.
func Drive(tr Transport, st *SyncStats, deadline vtime.Time) error {
	return drive(tr, st, deadline, DriveOpts{Mode: SyncFixed})
}

// DriveWith is Drive with explicit options.
func DriveWith(tr Transport, st *SyncStats, deadline vtime.Time, o DriveOpts) error {
	if o.Pace != nil && deadline == vtime.Forever {
		return fmt.Errorf("parcore: a paced drive needs a finite deadline")
	}
	return drive(tr, st, deadline, o)
}

// DefaultPaceQuantum is the default real-time pacing window. The paper's
// core wakes on a 10 kHz hardware timer (a 100 µs quantum); the default
// here is coarser because each window costs a full barrier round over the
// control plane — tighten it on fast links if ingress timestamp error
// matters more than barrier overhead.
const DefaultPaceQuantum = vtime.Millisecond

// Pacing slaves window release to the wall clock: virtual nanoseconds map
// one-to-one onto wall nanoseconds since the drive started, and a window
// ending at virtual time B is released only once the wall clock has
// reached B. This is the role the paper's 10 kHz timer plays in the
// in-kernel core — it is what lets real, unmodified processes at the edge
// (internal/edge gateways) exchange live traffic with the emulation, since
// their packets experience emulated delays in actual wall time.
//
// A paced drive does not stop at quiescence: an externally driven run has
// no way to know that more traffic is coming, so it idles forward in
// quantum-sized windows until the (finite) deadline.
type Pacing struct {
	// Quantum bounds how far one window may run ahead of the wall clock;
	// it is also the idle cadence and the ingress timestamp granularity.
	// 0 means DefaultPaceQuantum.
	Quantum vtime.Duration
}

// DrivePaced is Drive under real-time pacing (nil pace = plain Drive).
// The deadline must be finite: a paced run's only exit is its deadline.
func DrivePaced(tr Transport, st *SyncStats, deadline vtime.Time, pace *Pacing) error {
	return DriveWith(tr, st, deadline, DriveOpts{Mode: SyncFixed, Pace: pace})
}

func drive(tr Transport, st *SyncStats, deadline vtime.Time, o DriveOpts) error {
	pace := o.Pace
	adaptive := o.Mode == SyncAdaptive && o.Chain != nil && pace == nil
	var start time.Time
	quantum := vtime.Duration(0)
	if pace != nil {
		quantum = pace.Quantum
		if quantum <= 0 {
			quantum = DefaultPaceQuantum
		}
		start = time.Now()
	}
	// The wall-time profile: every loop activity is attributed to one
	// DriveProfile bucket (the flush share of the barrier is reported by
	// the transport itself, see flushProfiler).
	prof := &st.Profile
	defer func() {
		if fp, ok := tr.(flushProfiler); ok {
			prof.FlushWallNs = fp.FlushWallNs()
		}
	}()
	// wallNow is the wall clock in virtual units; sleepUntil releases a
	// window bound no earlier than its wall time.
	wallNow := func() vtime.Time { return vtime.Time(time.Since(start)) }
	sleepUntil := func(t vtime.Time) {
		if d := t.Sub(wallNow()); d > 0 {
			t0 := time.Now()
			time.Sleep(time.Duration(d))
			prof.IdleWallNs += uint64(time.Since(t0))
		}
	}
	k := tr.Cores()
	grants := make([]vtime.Time, k)
	// prev[j] is the last bound shard j was granted (or drained to); -1
	// until known. Grants never regress below it, and the span from it to
	// the next grant is the shard's effective per-window lookahead, the
	// number reported as lookahead min/mean/max.
	prev := make([]vtime.Time, k)
	for j := range prev {
		prev[j] = -1
	}
	setAll := func(b vtime.Time) {
		for j := range grants {
			grants[j] = b
		}
	}
	release := func() error {
		t0 := time.Now()
		err := tr.Window(grants)
		prof.ComputeWallNs += uint64(time.Since(t0))
		if err != nil {
			return err
		}
		st.Windows++
		for j := range grants {
			if prev[j] >= 0 && grants[j] > prev[j] && grants[j] != vtime.Forever {
				st.noteGrant(grants[j].Sub(prev[j]))
			}
			if grants[j] > prev[j] {
				prev[j] = grants[j]
			}
		}
		return nil
	}
	drain := func(t vtime.Time) error {
		if pace != nil {
			sleepUntil(t)
		}
		for {
			t0 := time.Now()
			progressed, err := tr.DrainPass(t)
			prof.SerialWallNs += uint64(time.Since(t0))
			if err != nil {
				return err
			}
			if !progressed {
				break
			}
			st.SerialRounds++
		}
		for j := range prev {
			if t > prev[j] {
				prev[j] = t
			}
		}
		return nil
	}
	prevBound := vtime.Time(-1)
	for {
		t0 := time.Now()
		bs, err := tr.Exchange()
		prof.BarrierWallNs += uint64(time.Since(t0))
		if err != nil {
			return err
		}
		minNext, horizon := vtime.Forever, vtime.Forever
		for _, b := range bs {
			if b.Next < minNext {
				minNext = b.Next
			}
			if b.Safe < horizon {
				horizon = b.Safe
			}
		}
		if minNext > deadline || minNext == vtime.Forever {
			if pace == nil {
				break
			}
			// Paced and locally quiescent: live ingress may still arrive
			// at any wall instant, so idle forward one quantum at a time
			// (each loop's Exchange gives the workers a barrier to admit
			// newly arrived traffic at) until the wall clock covers the
			// deadline.
			if wallNow() >= deadline {
				break
			}
			bound := wallNow().Add(quantum)
			if bound > deadline {
				bound = deadline
			}
			if bound < prevBound {
				bound = prevBound
			}
			sleepUntil(bound)
			setAll(bound)
			if err := release(); err != nil {
				return err
			}
			prevBound = bound
			continue
		}
		if adaptive {
			A := grantFixpoint(bs, o.Chain)
			canFire := false
			for j := range grants {
				g := deadline
				if A[j] != vtime.Forever && A[j]-1 < g {
					g = A[j] - 1
				}
				if g < prev[j] {
					g = prev[j]
				}
				grants[j] = g
				if bs[j].Next <= g {
					canFire = true
				}
			}
			if !canFire {
				// No shard may reach even its next event: every grant is
				// consumed. Drain time minNext serially, deterministically.
				if err := drain(minNext); err != nil {
					return err
				}
				continue
			}
			if err := release(); err != nil {
				return err
			}
			continue
		}
		// An unconstrained horizon (no shard can ever emit a cross-shard
		// message from its current state) must not clamp clocks to the
		// end of time: run straight to the caller's deadline.
		bound := deadline
		if horizon != vtime.Forever && horizon-1 < bound {
			bound = horizon - 1
		}
		if bound < minNext || bound < prevBound {
			// The horizon excludes the very next event: lookahead is zero
			// or consumed. Drain time minNext serially, deterministically
			// (paced runs first let the wall clock catch up to it).
			if err := drain(minNext); err != nil {
				return err
			}
			if minNext > prevBound {
				prevBound = minNext
			}
			continue
		}
		if pace != nil {
			// Slave window release to the wall clock: never run more than
			// one quantum ahead, and never release a bound before its wall
			// time. When the emulation lags the wall clock (slow barriers,
			// heavy windows) the cap is already behind and the run simply
			// proceeds flat out.
			if target := wallNow().Add(quantum); target < bound {
				bound = target
			}
			if bound < prevBound {
				bound = prevBound
			}
			sleepUntil(bound)
		}
		setAll(bound)
		if err := release(); err != nil {
			return err
		}
		prevBound = bound
	}
	if deadline == vtime.Forever {
		return nil
	}
	setAll(deadline) // advance all clocks to the deadline
	return release()
}

// grantFixpoint closes the reported per-pair bounds under chained
// reactions. Seed: A[j] = min over peers i of the earliest time a message
// from i's current state can fire on j. Relaxation: a message landing on i
// at A[i] can provoke a message onward to j no earlier than A[i] +
// Chain[i][j], so A[j] = min(A[j], A[i] + Chain[i][j]); k-1 rounds reach
// the min-plus fixpoint. Shard j may then run through A[j]-1: every
// message it will ever hear about — whether emitted from a peer's present
// state or from a state that future cross-shard traffic provokes — fires
// at or after A[j]. The bounds are monotone across barriers (a shard's
// post-apply state only contains consequences the fixpoint already
// accounted for), so grants never regress.
func grantFixpoint(bs []Bounds, chain [][]vtime.Duration) []vtime.Time {
	k := len(bs)
	A := make([]vtime.Time, k)
	for j := range A {
		a := vtime.Forever
		for i := range bs {
			if i == j {
				continue
			}
			s := bs[i].Safe
			if bs[i].SafeTo != nil {
				s = bs[i].SafeTo[j]
			}
			if s < a {
				a = s
			}
		}
		A[j] = a
	}
	for round := 1; round < k; round++ {
		changed := false
		for i := range A {
			if A[i] == vtime.Forever {
				continue
			}
			for j := range A {
				if i == j {
					continue
				}
				if v := satAdd(A[i], chain[i][j]); v < A[j] {
					A[j] = v
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return A
}

// flushProfiler is implemented by transports that can split the flush
// (outbox distribution) share out of their barrier time. FlushWallNs is
// cumulative over the transport's lifetime; drive copies it into the
// profile when the loop exits.
type flushProfiler interface{ FlushWallNs() uint64 }

// noCross marks "no path": a crossing distance larger than any reachable
// virtual time. Saturating adds keep it absorbing.
const noCross = vtime.Duration(math.MaxInt64)

// SyncPlan is one shard's static crossing-distance tables for the adaptive
// algebra, computed by ComputeSyncPlan from the distilled topology with
// dynamics-floored latencies. All distances are lower bounds that hold
// whatever routes packets take (structural adjacency over-approximates
// the route table, so mid-run reroutes cannot invalidate them).
type SyncPlan struct {
	Shard int
	Cores int
	// EventCross[j] lower-bounds the delay from any event taking effect on
	// this shard — a scheduled local event firing, a tunneled packet
	// entering a frontier pipe, a delivery completing and the application
	// responding — to a message from its consequences firing on shard j.
	// This is row [Shard] of the reaction-chain matrix.
	EventCross []vtime.Duration
	// ExitCross[j][pid] lower-bounds the delay from the head-of-line
	// packet leaving owned pipe pid to a message from its local
	// continuations firing on shard j. Continuations that cross
	// immediately are excluded: under the eager profile their handoffs
	// were already emitted when the packet entered the pipe, so only the
	// packet's possible futures inside this shard still owe messages.
	ExitCross [][]vtime.Duration
	// VNCross[j][vn] lower-bounds the delay from homed VN vn injecting a
	// packet to a message from its consequences firing on shard j — the
	// Dijkstra value of the VN state itself. Pending scheduler events that
	// carry a VN owner claim (vtime.Scheduler.AtTagged) are priced with
	// this instead of the shard-wide EventCross minimum: a retransmit
	// timer deep in the shard's interior then bounds the horizon by its
	// own multi-hop distance to the cut, not by whichever frontier pipe
	// happens to sit closest. noCross where the VN cannot reach j.
	VNCross [][]vtime.Duration
	// Owner, Lat, and HomeOf support per-packet route walks: Owner[pid] is
	// the shard owning pipe pid (mod Cores), Lat[pid] its dynamics-floored
	// latency, HomeOf[vn] the shard homing VN vn. Packets are source-routed
	// — the route is pinned at injection and survives mid-run reroutes — so
	// an in-flight packet's earliest crossing is its actual remaining route
	// walked at floored latencies, not the structural worst case over every
	// route the topology admits. Shared across shards; read-only.
	Owner  []int
	Lat    []vtime.Duration
	HomeOf []int
}

// crossFrom walks a packet's remaining source route, starting as it enters
// pipe route[i0] at time t, and reports the packet's first unannounced
// cross-shard consequence: entering a peer-owned pipe or handing a delivery
// to a peer homes the crossing there (cross(peer, at)); delivering to a VN
// homed on this shard prices the application's possible response from that
// VN (deliver(vn, at)). Intermediate owned pipes contribute their floored
// latency and nothing else — queueing and transmission only push the
// crossing later. The walk stops early once t reaches lim (no bound it
// could produce would lower anything the caller still tracks).
func (p *SyncPlan) crossFrom(route []pipes.ID, i0 int, t vtime.Time, dst pipes.VN,
	lim vtime.Time, cross func(peer int, at vtime.Time), deliver func(vn pipes.VN, at vtime.Time)) {
	for i := i0; ; i++ {
		if t >= lim {
			return
		}
		if i >= len(route) {
			if h := p.HomeOf[dst]; h != p.Shard {
				cross(h, t)
			} else {
				deliver(dst, t)
			}
			return
		}
		pid := route[i]
		if p.Owner[pid] != p.Shard {
			cross(p.Owner[pid], t)
			return
		}
		t = satAdd(t, p.Lat[pid])
	}
}

// ShardSync holds one shard's static synchronization inputs, derived from
// the assignment by ComputeSync.
type ShardSync struct {
	// BorderPipes are the shard's owned pipes whose exit can produce a
	// cross-shard event.
	BorderPipes []pipes.ID
	// Lookahead is the minimum latency over BorderPipes: a packet must
	// spend at least that long inside a cut pipe before it can surface on
	// a peer shard.
	Lookahead vtime.Duration
	// IngressCross flags shards whose homed VNs can inject directly into
	// a peer's pipe (possible under collapsing distillation modes), which
	// pins the shard's safe bound to its next event time.
	IngressCross bool
	// Plan carries the adaptive crossing-distance tables; nil under the
	// fixed algebra.
	Plan *SyncPlan
}

// Homes maps every VN to the shard owning its access pipes, so that
// injection — and, because k-clusters keeps duplex pairs together,
// delivery — is core-local.
func Homes(g *topology.Graph, b *bind.Binding, pod *bind.POD, k int) []int {
	homes := make([]int, b.NumVNs())
	for v, node := range b.VNHome {
		if outs := g.Out(node); len(outs) > 0 {
			homes[v] = pod.Owner(pipes.ID(outs[0])) % k
		}
	}
	return homes
}

// ComputeSync derives every shard's synchronization inputs: the set of
// owned pipes whose exit can cross shards — either the packet's next hop is
// a pipe owned elsewhere (structural adjacency over-approximates the
// routes) or the pipe terminates at a VN homed elsewhere — the resulting
// lookahead, and the ingress-crossing flag.
func ComputeSync(g *topology.Graph, b *bind.Binding, pod *bind.POD, homes []int, k int) []ShardSync {
	return ComputeSyncFloor(g, b, pod, homes, k, nil)
}

// ComputeSyncFloor is ComputeSync with a latency floor: when floor is
// non-nil, each border pipe contributes floor(link, initialLatency) to its
// shard's lookahead instead of the initial latency. Runs with link dynamics
// must pass dynamics.Spec.LatencyFloorFunc here — a trace can drop a cut
// pipe's latency below its bind-time value mid-run, and a lookahead derived
// from the initial latency would then release windows a cross-shard message
// can still land inside.
func ComputeSyncFloor(g *topology.Graph, b *bind.Binding, pod *bind.POD, homes []int, k int, floor func(topology.LinkID, vtime.Duration) vtime.Duration) []ShardSync {
	sync := make([]ShardSync, k)
	for _, l := range g.Links {
		ow := pod.Owner(pipes.ID(l.ID))
		if ow < 0 {
			continue // sparse worlds: placeholder slot outside this shard's view
		}
		o := ow % k
		border := false
		for _, nid := range g.Out(l.Dst) {
			if pod.Owner(pipes.ID(nid))%k != o {
				border = true
				break
			}
		}
		if !border {
			if vn := b.VNOfNode[l.Dst]; vn >= 0 && homes[vn] != o {
				border = true
			}
		}
		if !border {
			continue
		}
		s := &sync[o]
		lat := vtime.DurationOf(l.Attr.LatencySec)
		if floor != nil {
			lat = floor(l.ID, lat)
		}
		if len(s.BorderPipes) == 0 || lat < s.Lookahead {
			s.Lookahead = lat
		}
		s.BorderPipes = append(s.BorderPipes, pipes.ID(l.ID))
	}
	for v, node := range b.VNHome {
		for _, lid := range g.Out(node) {
			if pod.Owner(pipes.ID(lid))%k != homes[v] {
				sync[homes[v]].IngressCross = true
			}
		}
	}
	return sync
}

// ComputeSyncPlan is ComputeSyncFloor plus the adaptive crossing-distance
// tables: for every (shard, peer) pair it runs a reverse Dijkstra from the
// peer's territory over the shard's owned pipes and homed VNs, producing
// the per-pipe and per-event distance tables in SyncPlan. Latencies are
// dynamics-floored like the lookahead.
func ComputeSyncPlan(g *topology.Graph, b *bind.Binding, pod *bind.POD, homes []int, k int, floor func(topology.LinkID, vtime.Duration) vtime.Duration) []ShardSync {
	sync := ComputeSyncFloor(g, b, pod, homes, k, floor)
	nPipes := 0
	for _, l := range g.Links {
		if int(l.ID) >= nPipes {
			nPipes = int(l.ID) + 1
		}
	}
	owner := make([]int, nPipes)
	lat := make([]vtime.Duration, nPipes)
	dstOf := make([]topology.NodeID, nPipes)
	for i := range owner {
		owner[i] = -1
	}
	for _, l := range g.Links {
		id := int(l.ID)
		ow := pod.Owner(pipes.ID(l.ID))
		if ow < 0 {
			continue // sparse worlds: placeholder slot, owner stays -1
		}
		owner[id] = ow % k
		la := vtime.DurationOf(l.Attr.LatencySec)
		if floor != nil {
			la = floor(l.ID, la)
		}
		lat[id] = la
		dstOf[id] = l.Dst
	}
	for o := 0; o < k; o++ {
		p := buildShardPlan(g, b, homes, owner, lat, dstOf, k, o, nPipes)
		p.Owner, p.Lat, p.HomeOf = owner, lat, homes
		sync[o].Plan = p
	}
	return sync
}

// ChainMatrix assembles the reaction-chain matrix for DriveOpts.Chain from
// the shards' plans (row i is shard i's EventCross). Nil when any shard
// lacks a plan (fixed mode).
func ChainMatrix(syncs []ShardSync) [][]vtime.Duration {
	chain := make([][]vtime.Duration, len(syncs))
	for i, s := range syncs {
		if s.Plan == nil {
			return nil
		}
		chain[i] = s.Plan.EventCross
	}
	return chain
}

// buildShardPlan computes shard o's SyncPlan. The shard's state space is
// its owned pipes plus its homed VNs; a pipe's successors are the owned
// out-pipes of its destination node and the destination's VN when homed
// here, a VN's successors are the owned pipes it can inject into. Steps
// that leave the shard (a peer-owned out-pipe, a peer-homed terminal VN,
// a peer-owned injection target) terminate a path. For each peer j a
// reverse Dijkstra yields val(x) = the minimum virtual time a packet
// entering state x spends inside this shard before a message can fire on
// j; pipes cost their floored latency, VN hand-offs are instantaneous.
func buildShardPlan(g *topology.Graph, b *bind.Binding, homes []int, owner []int, lat []vtime.Duration, dstOf []topology.NodeID, k, o, nPipes int) *SyncPlan {
	pipeAt := make([]int, nPipes)
	for i := range pipeAt {
		pipeAt[i] = -1
	}
	var ownedPipes []int
	for pid := 0; pid < nPipes; pid++ {
		if owner[pid] == o {
			pipeAt[pid] = len(ownedPipes)
			ownedPipes = append(ownedPipes, pid)
		}
	}
	var homedVNs []int
	for v, h := range homes {
		if h == o {
			homedVNs = append(homedVNs, v)
		}
	}
	vnAt := make(map[int]int, len(homedVNs))
	for vi, v := range homedVNs {
		vnAt[v] = len(ownedPipes) + vi
	}
	n := len(ownedPipes) + len(homedVNs)
	cost := make([]vtime.Duration, n)
	succ := make([][]int32, n)
	crossTo := make([][]int, n)
	for li, pid := range ownedPipes {
		cost[li] = lat[pid]
		dn := dstOf[pid]
		for _, nid := range g.Out(dn) {
			q := int(nid)
			if owner[q] == o {
				succ[li] = append(succ[li], int32(pipeAt[q]))
			} else if owner[q] >= 0 {
				crossTo[li] = append(crossTo[li], owner[q])
			}
		}
		if vn := b.VNOfNode[dn]; vn >= 0 {
			if homes[vn] == o {
				succ[li] = append(succ[li], int32(vnAt[int(vn)]))
			} else {
				crossTo[li] = append(crossTo[li], homes[vn])
			}
		}
	}
	for vi, v := range homedVNs {
		x := len(ownedPipes) + vi
		for _, nid := range g.Out(b.VNHome[v]) {
			q := int(nid)
			if owner[q] == o {
				succ[x] = append(succ[x], int32(pipeAt[q]))
			} else if owner[q] >= 0 {
				crossTo[x] = append(crossTo[x], owner[q])
			}
		}
	}
	pred := make([][]int32, n)
	for x := range succ {
		for _, y := range succ[x] {
			pred[y] = append(pred[y], int32(x))
		}
	}
	// Frontier pipes: the owned pipes a cross-shard message can enter
	// directly — the step after a peer-owned pipe, or the injection target
	// of a peer-homed VN. Tunneled packets surface here, so the
	// event-to-crossing bound must cover their onward distances.
	frontier := make([]bool, n)
	for pid := 0; pid < nPipes; pid++ {
		if owner[pid] < 0 || owner[pid] == o {
			continue
		}
		for _, nid := range g.Out(dstOf[pid]) {
			if q := int(nid); owner[q] == o {
				frontier[pipeAt[q]] = true
			}
		}
	}
	for v, h := range homes {
		if h == o || v >= len(b.VNHome) {
			continue
		}
		for _, nid := range g.Out(b.VNHome[v]) {
			if q := int(nid); owner[q] == o {
				frontier[pipeAt[q]] = true
			}
		}
	}
	plan := &SyncPlan{
		Shard:      o,
		Cores:      k,
		EventCross: make([]vtime.Duration, k),
		ExitCross:  make([][]vtime.Duration, k),
		VNCross:    make([][]vtime.Duration, k),
	}
	val := make([]vtime.Duration, n)
	var pq distPQ
	for j := 0; j < k; j++ {
		plan.EventCross[j] = noCross
		if j == o {
			continue
		}
		for x := range val {
			val[x] = noCross
		}
		pq = pq[:0]
		for x := 0; x < n; x++ {
			for _, t := range crossTo[x] {
				if t == j {
					val[x] = cost[x]
					heap.Push(&pq, pqItem{x, cost[x]})
					break
				}
			}
		}
		for len(pq) > 0 {
			it := heap.Pop(&pq).(pqItem)
			if it.d > val[it.x] {
				continue
			}
			for _, pi := range pred[it.x] {
				p := int(pi)
				if nv := satDurAdd(cost[p], it.d); nv < val[p] {
					val[p] = nv
					heap.Push(&pq, pqItem{p, nv})
				}
			}
		}
		ec := make([]vtime.Duration, nPipes)
		for pid := range ec {
			ec[pid] = noCross
		}
		for li, pid := range ownedPipes {
			best := noCross
			for _, s := range succ[li] {
				if v := val[s]; v < best {
					best = v
				}
			}
			ec[pid] = best
		}
		plan.ExitCross[j] = ec
		vnc := make([]vtime.Duration, len(homes))
		for v := range vnc {
			vnc[v] = noCross
		}
		evc := noCross
		for li := range ownedPipes {
			if frontier[li] && val[li] < evc {
				evc = val[li]
			}
		}
		for vi, v := range homedVNs {
			d := val[len(ownedPipes)+vi]
			vnc[v] = d
			if d < evc {
				evc = d
			}
		}
		plan.EventCross[j] = evc
		plan.VNCross[j] = vnc
	}
	return plan
}

// pqItem / distPQ: the reverse-Dijkstra frontier (lazy deletion).
type pqItem struct {
	x int
	d vtime.Duration
}

type distPQ []pqItem

func (q distPQ) Len() int           { return len(q) }
func (q distPQ) Less(i, j int) bool { return q[i].d < q[j].d }
func (q distPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *distPQ) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *distPQ) Pop() any          { old := *q; it := old[len(old)-1]; *q = old[:len(old)-1]; return it }

// ShardBounds computes one shard's Bounds from its live state: Next is its
// next event time; Safe bounds the earliest future cross-shard message it
// can emit — min(next event, earliest pipe deadline) plus its lookahead,
// lowered to the earliest occupied border-pipe deadline in lazy mode
// (handoffs are emitted at exit-processing time, so one can fire as soon as
// the earliest occupied border pipe drains), and pinned to the next event
// time under an ingress crossing.
//
// With a SyncPlan and an eager emulator the bounds additionally carry the
// per-peer SafeTo vector, assembled from three scans. Each pending
// scheduler event contributes its time plus a crossing distance — the
// owning VN's own (VNCross) when the event carries an owner claim, the
// shard-wide minimum (EventCross) otherwise. Each in-flight packet is
// priced by walking its actual remaining source route at floored
// latencies: its first still-unannounced crossing (the hop after next — the
// next hop's handoff was pre-emitted at enqueue under the eager profile),
// or, when it terminates here, its delivery plus the destination VN's
// response distance. Each message waiting in the applier (heard at a
// barrier, not yet fired) is priced the same way from its entry pipe; the
// applier's bucket events carry a reserved tag so the generic event scan
// skips them. The shard's own core activation is excluded from the event
// term — everything that activation can do traces back to an occupied pipe
// the packet walk already covered, and seeing past it is what lets an
// interior shard report bounds far beyond its next wakeup. app may be nil,
// in which case applier events fall back to the EventCross pricing.
func ShardBounds(sched *vtime.Scheduler, emu *emucore.Emulator, sync ShardSync, app *Applier) Bounds {
	next := sched.NextEventTime()
	t := next
	if hm := emu.NextPipeDeadline(); hm < t {
		t = hm
	}
	e := satAdd(t, sync.Lookahead)
	if sync.IngressCross {
		e = t
	} else if !emu.Eager() {
		for _, pid := range sync.BorderPipes {
			if d := emu.Pipe(pid).NextDeadline(); d < e {
				e = d
			}
		}
	}
	if len(sync.BorderPipes) == 0 && !sync.IngressCross {
		e = vtime.Forever
	}
	b := Bounds{Next: next, Safe: e}
	p := sync.Plan
	if p == nil || !emu.Eager() {
		return b
	}
	safeTo := make([]vtime.Time, p.Cores)
	for j := range safeTo {
		safeTo[j] = vtime.Forever
	}
	// lim bounds the route walks: once a walk's clock reaches the largest
	// bound still standing it cannot lower anything.
	lim := func() vtime.Time {
		m := vtime.Time(0)
		for j, v := range safeTo {
			if j != p.Shard && v > m {
				m = v
			}
		}
		return m
	}
	cross := func(peer int, at vtime.Time) {
		if at < safeTo[peer] {
			safeTo[peer] = at
		}
	}
	deliver := func(vn pipes.VN, at vtime.Time) {
		for j := range safeTo {
			if j == p.Shard {
				continue
			}
			if vns := p.VNCross[j]; int(vn) < len(vns) {
				if v := satAdd(at, vns[vn]); v < safeTo[j] {
					safeTo[j] = v
				}
			}
		}
	}
	emu.ScanAppEvents(func(at vtime.Time, vn int32) {
		if app != nil && vn == applierTag {
			return // priced per message by the applier scan below
		}
		for j := range safeTo {
			if j == p.Shard {
				continue
			}
			d := p.EventCross[j]
			// noCross also marks VNs not homed here: an owner claim this
			// shard cannot vouch for falls back to the shard-wide minimum.
			if vn >= 0 {
				if vns := p.VNCross[j]; int(vn) < len(vns) && vns[vn] != noCross {
					d = vns[vn]
				}
			}
			if v := satAdd(at, d); v < safeTo[j] {
				safeTo[j] = v
			}
		}
	})
	emu.ScanOccupied(func(pid pipes.ID, d vtime.Time) {
		emu.Pipe(pid).ScanEntries(func(pkt *pipes.Packet, exit vtime.Time) {
			// The hop after this pipe was pre-emitted at enqueue (eager
			// profile): a crossing or peer delivery there is already
			// announced and owes nothing; only futures deeper inside this
			// shard still do.
			next := pkt.Hop + 1
			if next >= len(pkt.Route) {
				if p.HomeOf[pkt.Dst] != p.Shard {
					return
				}
			} else if p.Owner[pkt.Route[next]] != p.Shard {
				return
			}
			p.crossFrom(pkt.Route, next, exit, pkt.Dst, lim(), cross, deliver)
		})
	})
	if app != nil {
		app.ScanPending(func(m Msg) {
			if m.Pid < 0 {
				deliver(m.Pkt.Dst, m.Fire)
				return
			}
			// The message enters pipe m.Pid at m.At; nothing about it is
			// announced beyond that entry.
			p.crossFrom(m.Pkt.Route, m.Pkt.Hop, m.At, m.Pkt.Dst, lim(), cross, deliver)
		})
	}
	b.SafeTo = safeTo
	s := vtime.Forever
	for _, v := range safeTo {
		if v < s {
			s = v
		}
	}
	b.Safe = s
	return b
}

// satAdd offsets t by d, saturating at Forever.
func satAdd(t vtime.Time, d vtime.Duration) vtime.Time {
	if t == vtime.Forever || d == 0 {
		return t
	}
	s := t.Add(d)
	if s < t {
		return vtime.Forever
	}
	return s
}

// satDurAdd adds two crossing distances, saturating at noCross.
func satDurAdd(a, b vtime.Duration) vtime.Duration {
	if a == noCross || b == noCross {
		return noCross
	}
	s := a + b
	if s < a {
		return noCross
	}
	return s
}

// Outbox collects the cross-shard messages a shard's emulator emits during
// a window, stamped with the canonical (Fire, Sender, Seq) key. Transports
// move its per-target batches at barriers.
type Outbox struct {
	shard, cores int
	sched        *vtime.Scheduler
	seq          uint64
	pending      [][]Msg
}

// NewOutbox returns an empty outbox for the given shard.
func NewOutbox(shard, cores int, sched *vtime.Scheduler) *Outbox {
	return &Outbox{shard: shard, cores: cores, sched: sched, pending: make([][]Msg, cores)}
}

// Handoff is the emucore.HandoffFunc that records cross-shard events. The
// fire time is the event time clamped to the shard's clock (an event handed
// off mid-window may target a time the sender has already passed; the
// receiver hears about it at the barrier, before its own clock gets there).
func (o *Outbox) Handoff(target int, pkt *pipes.Packet, pid pipes.ID, at vtime.Time, lag vtime.Duration) {
	fire := at
	if now := o.sched.Now(); fire < now {
		fire = now
	}
	o.seq++
	t := target % o.cores
	o.pending[t] = append(o.pending[t], Msg{
		Pkt: pkt, Pid: pid, At: at, Lag: lag, Fire: fire, Sender: o.shard, Seq: o.seq,
	})
}

// Seq reports the last canonical sequence number this outbox stamped; it
// and the scheduler clock are the outbox's whole serializable state once
// the pending batches are flushed (checkpoints are cut at barriers, after
// the flush, so pending is empty by construction).
func (o *Outbox) Seq() uint64 { return o.seq }

// Sender moves one peer's whole pending batch at a barrier. The data path
// is batch-first: transports carry the slice as a unit — a slice append
// in-process, one (or a few MTU-bounded) wire frames over sockets — so the
// per-message cost of a window is paid once per (window, peer), not once
// per packet.
type Sender interface {
	Send(target int, msgs []Msg) error
}

// Flush hands every non-empty per-peer batch to the sender, one Send call
// per peer, in target order. The outbox is empty afterwards.
func (o *Outbox) Flush(s Sender) error {
	for t, msgs := range o.pending {
		if len(msgs) == 0 {
			continue
		}
		o.pending[t] = nil
		if err := s.Send(t, msgs); err != nil {
			return err
		}
	}
	return nil
}

// SortMsgs orders msgs by the canonical barrier key (Fire, Sender, Seq), so
// that applying a batch is independent of arrival order.
func SortMsgs(msgs []Msg) {
	sort.Slice(msgs, func(i, j int) bool {
		a, b := msgs[i], msgs[j]
		if a.Fire != b.Fire {
			return a.Fire < b.Fire
		}
		if a.Sender != b.Sender {
			return a.Sender < b.Sender
		}
		return a.Seq < b.Seq
	})
}

// Applier schedules inbound cross-shard messages onto a shard's scheduler,
// one event per distinct fire time: messages sharing a fire time apply
// back-to-back inside a single activation (with the emulator's core re-arm
// deferred to the end of the cluster, see emucore.BatchApply), so the
// scheduler fires once per deadline cluster instead of once per message.
//
// The fire-time buckets persist across barriers: per-shard window grants
// mean two messages with the same fire time can arrive at different
// barriers, and they must still apply in the canonical (Fire, Sender, Seq)
// order — the bucket accumulates them and sorts when it fires, which makes
// the apply order independent of where the synchronization algebra placed
// its window boundaries. A message firing before the shard's clock is an
// earliest-output-time violation — the grant algebra in Drive is why it
// cannot happen — reported as an error so remote transports can surface it
// instead of corrupting virtual time.
type Applier struct {
	sched   *vtime.Scheduler
	emu     *emucore.Emulator
	buckets map[vtime.Time][]Msg
}

// applierTag marks the applier's bucket-activation events on the scheduler.
// It is not a VN owner claim: ShardBounds skips these events in its generic
// scan and prices each waiting message individually by its route instead.
const applierTag = int32(-2)

// NewApplier returns an Applier for one shard.
func NewApplier(sched *vtime.Scheduler, emu *emucore.Emulator) *Applier {
	return &Applier{sched: sched, emu: emu, buckets: make(map[vtime.Time][]Msg)}
}

// ScanPending visits every message heard at a barrier but not yet fired, in
// unspecified order (callers fold the visits into order-insensitive minima).
func (a *Applier) ScanPending(visit func(m Msg)) {
	for _, bucket := range a.buckets {
		for _, m := range bucket {
			visit(m)
		}
	}
}

// ScanBuckets visits the applier's pending fire-time buckets in ascending
// fire order with each bucket's message count — the canonical shape probe
// checkpoint fingerprints use (bucket contents are visited by ScanPending).
func (a *Applier) ScanBuckets(visit func(fire vtime.Time, count int)) {
	fires := make([]vtime.Time, 0, len(a.buckets))
	for fire := range a.buckets {
		fires = append(fires, fire)
	}
	sort.Slice(fires, func(i, j int) bool { return fires[i] < fires[j] })
	for _, fire := range fires {
		visit(fire, len(a.buckets[fire]))
	}
}

// Apply buckets a batch by fire time, scheduling each new bucket's
// activation. The msgs slice may be reused by the caller afterwards.
func (a *Applier) Apply(msgs []Msg) error {
	now := a.sched.Now()
	for _, m := range msgs {
		if m.Fire < now {
			return fmt.Errorf("parcore: EOT violation: fire %v < now %v (pid %d)", m.Fire, now, m.Pid)
		}
		if _, ok := a.buckets[m.Fire]; !ok {
			fire := m.Fire
			a.sched.AtTagged(fire, applierTag, func() {
				cluster := a.buckets[fire]
				delete(a.buckets, fire)
				SortMsgs(cluster)
				a.emu.BatchApply(func() {
					for _, m := range cluster {
						if m.Pid >= 0 {
							a.emu.TunnelIn(m.Pkt, m.Pid, m.At)
						} else {
							a.emu.CompleteDelivery(m.Pkt, m.Lag, m.At)
						}
					}
				})
			})
		}
		a.buckets[m.Fire] = append(a.buckets[m.Fire], m)
	}
	return nil
}

// ApplyMsgs is the one-shot form of Applier for callers without cross-
// barrier state (tests, single batches): sort and schedule one batch.
func ApplyMsgs(sched *vtime.Scheduler, emu *emucore.Emulator, msgs []Msg) error {
	return NewApplier(sched, emu).Apply(msgs)
}
