package parcore

// The conservative synchronization loop, factored out of Runtime so that it
// can drive shards it cannot touch directly. The scheduler algebra is
// transport-oblivious (the LinkEmulator/transport separation): the loop
// below only ever asks the cluster to exchange messages, report bounds, and
// run windows. Two transports exist: the in-process one built into Runtime
// (shards are goroutines, messages move between slices at the barrier) and
// the socket transport in internal/fednet (shards are OS processes,
// messages move over real UDP/TCP and the barrier is a TCP round).

import (
	"fmt"
	"sort"
	"time"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// Msg is one cross-shard event in flight between barriers: either a tunnel
// entry (Pid >= 0: enqueue Pkt into pipe Pid at time At) or a delivery
// completion (Pid < 0: complete Pkt's delivery at At with accumulated lag
// Lag). Fire is the virtual time the event takes effect on the receiving
// shard; (Fire, Sender, Seq) is the canonical barrier order that makes runs
// independent of arrival order.
type Msg struct {
	Pkt    *pipes.Packet
	Pid    pipes.ID
	At     vtime.Time
	Lag    vtime.Duration
	Fire   vtime.Time
	Sender int
	Seq    uint64
}

// Bounds is one shard's contribution to the horizon computation: Next is
// its next local event time, Safe the earliest virtual time at which it
// could emit a cross-shard message from its current state.
type Bounds struct {
	Next, Safe vtime.Time
}

// Transport connects the synchronization loop to the cluster's shards,
// hiding whether they are goroutines or processes.
type Transport interface {
	// Cores reports the number of shards.
	Cores() int
	// Exchange moves every pending cross-shard message to its target
	// shard, has each shard apply its inbox in canonical order, and
	// returns every shard's bounds. This is the barrier.
	Exchange() ([]Bounds, error)
	// Window runs every shard concurrently through bound (inclusive).
	Window(bound vtime.Time) error
	// DrainPass gives every shard one serial turn at time t — apply
	// pending messages, then run local events with timestamps ≤ t — and
	// moves the messages those turns produced. Turns within a pass are
	// independent (messages only travel between passes), so shards may
	// take them concurrently. Reports whether any shard ran events.
	DrainPass(t vtime.Time) (bool, error)
}

// Drive runs the conservative synchronization loop over the transport until
// every event at or before deadline has fired: barrier, agree on a horizon,
// run shards in parallel below it, exchange tunnel messages, repeat. With
// deadline == vtime.Forever it returns at global quiescence without the
// final clock-advancing window. st accumulates synchronization counters.
func Drive(tr Transport, st *SyncStats, deadline vtime.Time) error {
	return drive(tr, st, deadline, nil)
}

// DefaultPaceQuantum is the default real-time pacing window. The paper's
// core wakes on a 10 kHz hardware timer (a 100 µs quantum); the default
// here is coarser because each window costs a full barrier round over the
// control plane — tighten it on fast links if ingress timestamp error
// matters more than barrier overhead.
const DefaultPaceQuantum = vtime.Millisecond

// Pacing slaves window release to the wall clock: virtual nanoseconds map
// one-to-one onto wall nanoseconds since the drive started, and a window
// ending at virtual time B is released only once the wall clock has
// reached B. This is the role the paper's 10 kHz timer plays in the
// in-kernel core — it is what lets real, unmodified processes at the edge
// (internal/edge gateways) exchange live traffic with the emulation, since
// their packets experience emulated delays in actual wall time.
//
// A paced drive does not stop at quiescence: an externally driven run has
// no way to know that more traffic is coming, so it idles forward in
// quantum-sized windows until the (finite) deadline.
type Pacing struct {
	// Quantum bounds how far one window may run ahead of the wall clock;
	// it is also the idle cadence and the ingress timestamp granularity.
	// 0 means DefaultPaceQuantum.
	Quantum vtime.Duration
}

// DrivePaced is Drive under real-time pacing (nil pace = plain Drive).
// The deadline must be finite: a paced run's only exit is its deadline.
func DrivePaced(tr Transport, st *SyncStats, deadline vtime.Time, pace *Pacing) error {
	if pace != nil && deadline == vtime.Forever {
		return fmt.Errorf("parcore: a paced drive needs a finite deadline")
	}
	return drive(tr, st, deadline, pace)
}

func drive(tr Transport, st *SyncStats, deadline vtime.Time, pace *Pacing) error {
	var start time.Time
	quantum := vtime.Duration(0)
	if pace != nil {
		quantum = pace.Quantum
		if quantum <= 0 {
			quantum = DefaultPaceQuantum
		}
		start = time.Now()
	}
	// The wall-time profile: every loop activity is attributed to one
	// DriveProfile bucket (the flush share of the barrier is reported by
	// the transport itself, see flushProfiler).
	prof := &st.Profile
	defer func() {
		if fp, ok := tr.(flushProfiler); ok {
			prof.FlushWallNs = fp.FlushWallNs()
		}
	}()
	// wallNow is the wall clock in virtual units; sleepUntil releases a
	// window bound no earlier than its wall time.
	wallNow := func() vtime.Time { return vtime.Time(time.Since(start)) }
	sleepUntil := func(t vtime.Time) {
		if d := t.Sub(wallNow()); d > 0 {
			t0 := time.Now()
			time.Sleep(time.Duration(d))
			prof.IdleWallNs += uint64(time.Since(t0))
		}
	}
	prevBound := vtime.Time(-1)
	for {
		t0 := time.Now()
		bs, err := tr.Exchange()
		prof.BarrierWallNs += uint64(time.Since(t0))
		if err != nil {
			return err
		}
		minNext, horizon := vtime.Forever, vtime.Forever
		for _, b := range bs {
			if b.Next < minNext {
				minNext = b.Next
			}
			if b.Safe < horizon {
				horizon = b.Safe
			}
		}
		if minNext > deadline || minNext == vtime.Forever {
			if pace == nil {
				break
			}
			// Paced and locally quiescent: live ingress may still arrive
			// at any wall instant, so idle forward one quantum at a time
			// (each loop's Exchange gives the workers a barrier to admit
			// newly arrived traffic at) until the wall clock covers the
			// deadline.
			if wallNow() >= deadline {
				break
			}
			bound := wallNow().Add(quantum)
			if bound > deadline {
				bound = deadline
			}
			if bound < prevBound {
				bound = prevBound
			}
			sleepUntil(bound)
			t0 = time.Now()
			err := tr.Window(bound)
			prof.ComputeWallNs += uint64(time.Since(t0))
			if err != nil {
				return err
			}
			st.Windows++
			prevBound = bound
			continue
		}
		// An unconstrained horizon (no shard can ever emit a cross-shard
		// message from its current state) must not clamp clocks to the
		// end of time: run straight to the caller's deadline.
		bound := deadline
		if horizon != vtime.Forever && horizon-1 < bound {
			bound = horizon - 1
		}
		if bound < minNext || bound < prevBound {
			// The horizon excludes the very next event: lookahead is zero
			// or consumed. Drain time minNext serially, deterministically
			// (paced runs first let the wall clock catch up to it).
			if pace != nil {
				sleepUntil(minNext)
			}
			for {
				t0 = time.Now()
				progressed, err := tr.DrainPass(minNext)
				prof.SerialWallNs += uint64(time.Since(t0))
				if err != nil {
					return err
				}
				if !progressed {
					break
				}
				st.SerialRounds++
			}
			if minNext > prevBound {
				prevBound = minNext
			}
			continue
		}
		if pace != nil {
			// Slave window release to the wall clock: never run more than
			// one quantum ahead, and never release a bound before its wall
			// time. When the emulation lags the wall clock (slow barriers,
			// heavy windows) the cap is already behind and the run simply
			// proceeds flat out.
			if target := wallNow().Add(quantum); target < bound {
				bound = target
			}
			if bound < prevBound {
				bound = prevBound
			}
			sleepUntil(bound)
		}
		t0 = time.Now()
		err = tr.Window(bound)
		prof.ComputeWallNs += uint64(time.Since(t0))
		if err != nil {
			return err
		}
		st.Windows++
		prevBound = bound
	}
	if deadline == vtime.Forever {
		return nil
	}
	t0 := time.Now()
	err := tr.Window(deadline) // advance all clocks to the deadline
	prof.ComputeWallNs += uint64(time.Since(t0))
	if err != nil {
		return err
	}
	st.Windows++
	return nil
}

// flushProfiler is implemented by transports that can split the flush
// (outbox distribution) share out of their barrier time. FlushWallNs is
// cumulative over the transport's lifetime; drive copies it into the
// profile when the loop exits.
type flushProfiler interface{ FlushWallNs() uint64 }

// ShardSync holds one shard's static synchronization inputs, derived from
// the assignment by ComputeSync.
type ShardSync struct {
	// BorderPipes are the shard's owned pipes whose exit can produce a
	// cross-shard event.
	BorderPipes []pipes.ID
	// Lookahead is the minimum latency over BorderPipes: a packet must
	// spend at least that long inside a cut pipe before it can surface on
	// a peer shard.
	Lookahead vtime.Duration
	// IngressCross flags shards whose homed VNs can inject directly into
	// a peer's pipe (possible under collapsing distillation modes), which
	// pins the shard's safe bound to its next event time.
	IngressCross bool
}

// Homes maps every VN to the shard owning its access pipes, so that
// injection — and, because k-clusters keeps duplex pairs together,
// delivery — is core-local.
func Homes(g *topology.Graph, b *bind.Binding, pod *bind.POD, k int) []int {
	homes := make([]int, b.NumVNs())
	for v, node := range b.VNHome {
		if outs := g.Out(node); len(outs) > 0 {
			homes[v] = pod.Owner(pipes.ID(outs[0])) % k
		}
	}
	return homes
}

// ComputeSync derives every shard's synchronization inputs: the set of
// owned pipes whose exit can cross shards — either the packet's next hop is
// a pipe owned elsewhere (structural adjacency over-approximates the
// routes) or the pipe terminates at a VN homed elsewhere — the resulting
// lookahead, and the ingress-crossing flag.
func ComputeSync(g *topology.Graph, b *bind.Binding, pod *bind.POD, homes []int, k int) []ShardSync {
	return ComputeSyncFloor(g, b, pod, homes, k, nil)
}

// ComputeSyncFloor is ComputeSync with a latency floor: when floor is
// non-nil, each border pipe contributes floor(link, initialLatency) to its
// shard's lookahead instead of the initial latency. Runs with link dynamics
// must pass dynamics.Spec.LatencyFloorFunc here — a trace can drop a cut
// pipe's latency below its bind-time value mid-run, and a lookahead derived
// from the initial latency would then release windows a cross-shard message
// can still land inside.
func ComputeSyncFloor(g *topology.Graph, b *bind.Binding, pod *bind.POD, homes []int, k int, floor func(topology.LinkID, vtime.Duration) vtime.Duration) []ShardSync {
	sync := make([]ShardSync, k)
	for _, l := range g.Links {
		o := pod.Owner(pipes.ID(l.ID)) % k
		border := false
		for _, nid := range g.Out(l.Dst) {
			if pod.Owner(pipes.ID(nid))%k != o {
				border = true
				break
			}
		}
		if !border {
			if vn := b.VNOfNode[l.Dst]; vn >= 0 && homes[vn] != o {
				border = true
			}
		}
		if !border {
			continue
		}
		s := &sync[o]
		lat := vtime.DurationOf(l.Attr.LatencySec)
		if floor != nil {
			lat = floor(l.ID, lat)
		}
		if len(s.BorderPipes) == 0 || lat < s.Lookahead {
			s.Lookahead = lat
		}
		s.BorderPipes = append(s.BorderPipes, pipes.ID(l.ID))
	}
	for v, node := range b.VNHome {
		for _, lid := range g.Out(node) {
			if pod.Owner(pipes.ID(lid))%k != homes[v] {
				sync[homes[v]].IngressCross = true
			}
		}
	}
	return sync
}

// ShardBounds computes one shard's Bounds from its live state: Next is its
// next event time; Safe bounds the earliest future cross-shard message it
// can emit — min(next event, earliest pipe deadline) plus its lookahead,
// lowered to the earliest occupied border-pipe deadline in lazy mode
// (handoffs are emitted at exit-processing time, so one can fire as soon as
// the earliest occupied border pipe drains), and pinned to the next event
// time under an ingress crossing.
func ShardBounds(sched *vtime.Scheduler, emu *emucore.Emulator, sync ShardSync) Bounds {
	next := sched.NextEventTime()
	t := next
	if hm := emu.NextPipeDeadline(); hm < t {
		t = hm
	}
	e := satAdd(t, sync.Lookahead)
	if sync.IngressCross {
		e = t
	} else if !emu.Eager() {
		for _, pid := range sync.BorderPipes {
			if d := emu.Pipe(pid).NextDeadline(); d < e {
				e = d
			}
		}
	}
	if len(sync.BorderPipes) == 0 && !sync.IngressCross {
		e = vtime.Forever
	}
	return Bounds{Next: next, Safe: e}
}

// satAdd offsets t by d, saturating at Forever.
func satAdd(t vtime.Time, d vtime.Duration) vtime.Time {
	if t == vtime.Forever || d == 0 {
		return t
	}
	s := t.Add(d)
	if s < t {
		return vtime.Forever
	}
	return s
}

// Outbox collects the cross-shard messages a shard's emulator emits during
// a window, stamped with the canonical (Fire, Sender, Seq) key. Transports
// move its per-target batches at barriers.
type Outbox struct {
	shard, cores int
	sched        *vtime.Scheduler
	seq          uint64
	pending      [][]Msg
}

// NewOutbox returns an empty outbox for the given shard.
func NewOutbox(shard, cores int, sched *vtime.Scheduler) *Outbox {
	return &Outbox{shard: shard, cores: cores, sched: sched, pending: make([][]Msg, cores)}
}

// Handoff is the emucore.HandoffFunc that records cross-shard events. The
// fire time is the event time clamped to the shard's clock (an event handed
// off mid-window may target a time the sender has already passed; the
// receiver hears about it at the barrier, before its own clock gets there).
func (o *Outbox) Handoff(target int, pkt *pipes.Packet, pid pipes.ID, at vtime.Time, lag vtime.Duration) {
	fire := at
	if now := o.sched.Now(); fire < now {
		fire = now
	}
	o.seq++
	t := target % o.cores
	o.pending[t] = append(o.pending[t], Msg{
		Pkt: pkt, Pid: pid, At: at, Lag: lag, Fire: fire, Sender: o.shard, Seq: o.seq,
	})
}

// Sender moves one peer's whole pending batch at a barrier. The data path
// is batch-first: transports carry the slice as a unit — a slice append
// in-process, one (or a few MTU-bounded) wire frames over sockets — so the
// per-message cost of a window is paid once per (window, peer), not once
// per packet.
type Sender interface {
	Send(target int, msgs []Msg) error
}

// Flush hands every non-empty per-peer batch to the sender, one Send call
// per peer, in target order. The outbox is empty afterwards.
func (o *Outbox) Flush(s Sender) error {
	for t, msgs := range o.pending {
		if len(msgs) == 0 {
			continue
		}
		o.pending[t] = nil
		if err := s.Send(t, msgs); err != nil {
			return err
		}
	}
	return nil
}

// SortMsgs orders msgs by the canonical barrier key (Fire, Sender, Seq), so
// that applying a batch is independent of arrival order.
func SortMsgs(msgs []Msg) {
	sort.Slice(msgs, func(i, j int) bool {
		a, b := msgs[i], msgs[j]
		if a.Fire != b.Fire {
			return a.Fire < b.Fire
		}
		if a.Sender != b.Sender {
			return a.Sender < b.Sender
		}
		return a.Seq < b.Seq
	})
}

// ApplyMsgs sorts a batch canonically and schedules it onto the shard's
// scheduler, one event per distinct fire time: messages sharing a deadline
// apply back-to-back inside a single activation (with the emulator's core
// re-arm deferred to the end of the cluster, see emucore.BatchApply), so
// the scheduler fires once per deadline cluster instead of once per
// message. A message firing before the shard's clock is an
// earliest-output-time violation — the window algebra in Drive is why it
// cannot happen — reported as an error so remote transports can surface it
// instead of corrupting virtual time.
func ApplyMsgs(sched *vtime.Scheduler, emu *emucore.Emulator, msgs []Msg) error {
	SortMsgs(msgs)
	now := sched.Now()
	for i := 0; i < len(msgs); {
		fire := msgs[i].Fire
		if fire < now {
			return fmt.Errorf("parcore: EOT violation: fire %v < now %v (pid %d)", fire, now, msgs[i].Pid)
		}
		j := i + 1
		for j < len(msgs) && msgs[j].Fire == fire {
			j++
		}
		// Callers reuse the msgs backing array between barriers; the
		// cluster needs a private copy to survive until its event fires.
		cluster := append([]Msg(nil), msgs[i:j]...)
		sched.At(fire, func() {
			emu.BatchApply(func() {
				for _, m := range cluster {
					if m.Pid >= 0 {
						emu.TunnelIn(m.Pkt, m.Pid, m.At)
					} else {
						emu.CompleteDelivery(m.Pkt, m.Lag, m.At)
					}
				}
			})
		})
		i = j
	}
	return nil
}
