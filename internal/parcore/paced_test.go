package parcore

import (
	"testing"
	"time"

	"modelnet/internal/vtime"
)

// fakeShard is a single-shard Transport with a scripted event list, enough
// to observe DrivePaced's wall-clock behavior without an emulator.
type fakeShard struct {
	clock   vtime.Time
	events  []vtime.Time // pending, ascending
	ranAt   []time.Time  // wall instants events fired
	windows int
}

func (f *fakeShard) Cores() int { return 1 }

func (f *fakeShard) Exchange() ([]Bounds, error) {
	next := vtime.Forever
	if len(f.events) > 0 {
		next = f.events[0]
	}
	// No cross-shard traffic ever: Safe is unconstrained.
	return []Bounds{{Next: next, Safe: vtime.Forever}}, nil
}

func (f *fakeShard) Window(grants []vtime.Time) error {
	bound := grants[0]
	f.windows++
	for len(f.events) > 0 && f.events[0] <= bound {
		f.events = f.events[1:]
		f.ranAt = append(f.ranAt, time.Now())
	}
	if bound > f.clock {
		f.clock = bound
	}
	return nil
}

func (f *fakeShard) DrainPass(t vtime.Time) (bool, error) {
	progressed := false
	for len(f.events) > 0 && f.events[0] <= t {
		f.events = f.events[1:]
		f.ranAt = append(f.ranAt, time.Now())
		progressed = true
	}
	return progressed, nil
}

func TestDrivePacedSlavesToWallClock(t *testing.T) {
	f := &fakeShard{events: []vtime.Time{vtime.Time(30 * vtime.Millisecond)}}
	var st SyncStats
	begin := time.Now()
	err := DrivePaced(f, &st, vtime.Time(60*vtime.Millisecond), &Pacing{Quantum: 5 * vtime.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(begin)
	// The drive may not finish before the wall clock reaches the deadline,
	// and the event may not fire before its own virtual time has elapsed
	// on the wall clock.
	if elapsed < 60*time.Millisecond {
		t.Fatalf("paced drive returned after %v, deadline is 60ms of wall time", elapsed)
	}
	if len(f.ranAt) != 1 {
		t.Fatalf("fired %d events, want 1", len(f.ranAt))
	}
	if at := f.ranAt[0].Sub(begin); at < 30*time.Millisecond {
		t.Fatalf("event at virtual 30ms fired after only %v of wall time", at)
	}
	if f.clock != vtime.Time(60*vtime.Millisecond) {
		t.Fatalf("final clock %v, want the deadline", f.clock)
	}
	// Idle stretches are paced in quantum-sized windows, not one jump.
	if f.windows < 5 {
		t.Fatalf("only %d windows over 60ms at a 5ms quantum", f.windows)
	}
}

func TestDrivePacedIdlesToDeadline(t *testing.T) {
	// No events at all: an unpaced drive would return immediately; a paced
	// one must idle to the deadline (live ingress could arrive any time).
	f := &fakeShard{}
	var st SyncStats
	begin := time.Now()
	if err := DrivePaced(f, &st, vtime.Time(40*vtime.Millisecond), &Pacing{Quantum: 10 * vtime.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed < 40*time.Millisecond {
		t.Fatalf("quiescent paced drive returned after %v, want ≥ 40ms", elapsed)
	}
	if f.windows == 0 {
		t.Fatal("idling must still run windows (they are the ingress admission points)")
	}
}

func TestDrivePacedRejectsForever(t *testing.T) {
	var st SyncStats
	if err := DrivePaced(&fakeShard{}, &st, vtime.Forever, &Pacing{}); err == nil {
		t.Fatal("paced drive with an infinite deadline must error")
	}
}

func TestDrivePacedNilPacingIsDrive(t *testing.T) {
	f := &fakeShard{events: []vtime.Time{vtime.Time(5 * vtime.Millisecond)}}
	var st SyncStats
	begin := time.Now()
	if err := DrivePaced(f, &st, vtime.Time(1000*vtime.Millisecond), nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed > 500*time.Millisecond {
		t.Fatalf("unpaced drive took %v of wall time for 1s of virtual time", elapsed)
	}
	if len(f.ranAt) != 1 {
		t.Fatalf("fired %d events, want 1", len(f.ranAt))
	}
}
