package parcore

import (
	"testing"

	"modelnet/internal/assign"
	"modelnet/internal/bind"
	"modelnet/internal/dynamics"
	"modelnet/internal/emucore"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// syncFixture builds the sync inputs for a ring split over k shards and
// returns the first border pipe of the first shard that has one — a pipe
// whose exit crosses shards, i.e. one that contributes to lookahead.
func syncFixture(t *testing.T, k int) (*topology.Graph, *bind.Binding, *bind.POD, []int, []ShardSync, pipes.ID) {
	t.Helper()
	ring := topology.LinkAttrs{BandwidthBps: 20e6, LatencySec: topology.Ms(5), QueuePkts: 64}
	access := topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: topology.Ms(1), QueuePkts: 64}
	g := topology.Ring(8, 2, ring, access)
	asn, err := assign.KClusters(g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bind.Bind(g, bind.Options{Cores: k})
	if err != nil {
		t.Fatal(err)
	}
	pod := asn.POD()
	homes := Homes(g, b, pod, k)
	base := ComputeSync(g, b, pod, homes, k)
	for _, s := range base {
		if len(s.BorderPipes) > 0 {
			return g, b, pod, homes, base, s.BorderPipes[0]
		}
	}
	t.Fatal("no shard has a border pipe")
	return nil, nil, nil, nil, nil, 0
}

// TestLookaheadUsesProfileFloor is the conservative-sync safety check for
// link dynamics: when a cut pipe's trace dips its latency below the
// bind-time value, the owning shard's Lookahead must shrink to the
// profile's floor — windows sized off the initial latency could otherwise
// admit a cross-shard message into an already-released window.
func TestLookaheadUsesProfileFloor(t *testing.T) {
	g, b, pod, homes, base, cut := syncFixture(t, 2)
	owner := pod.Owner(cut) % 2

	dip := dynamics.At(200 * vtime.Millisecond)
	dip.Latency = 100 * vtime.Microsecond // well below every link latency
	spec := &dynamics.Spec{Profiles: []dynamics.Profile{
		{Link: int(cut), Steps: []dynamics.Step{dip}},
	}}

	floored := ComputeSyncFloor(g, b, pod, homes, 2, spec.LatencyFloorFunc())
	if got := floored[owner].Lookahead; got != 100*vtime.Microsecond {
		t.Fatalf("floored lookahead = %v, want the profile floor 100µs", got)
	}
	if floored[owner].Lookahead >= base[owner].Lookahead {
		t.Fatalf("floor did not shrink lookahead: %v -> %v",
			base[owner].Lookahead, floored[owner].Lookahead)
	}

	// A profile that only raises latency must leave lookahead alone.
	raise := dynamics.At(200 * vtime.Millisecond)
	raise.Latency = vtime.Second
	up := &dynamics.Spec{Profiles: []dynamics.Profile{
		{Link: int(cut), Steps: []dynamics.Step{raise}},
	}}
	for i, s := range ComputeSyncFloor(g, b, pod, homes, 2, up.LatencyFloorFunc()) {
		if s.Lookahead != base[i].Lookahead {
			t.Fatalf("shard %d lookahead moved on a raise-only profile: %v -> %v",
				i, base[i].Lookahead, s.Lookahead)
		}
	}
}

// TestDynamicsParallelMatchesSequential drives traffic across a cut pipe
// while its trace dips latency below the bind-time value and checks the
// parallel run agrees with the sequential one packet for packet. If the
// runtime sized windows off the initial latency instead of the floor, the
// dipped messages would violate EOT and ApplyMsgs would panic the run.
func TestDynamicsParallelMatchesSequential(t *testing.T) {
	g, b, pod, homes, _, cut := syncFixture(t, 2)
	_ = homes

	low := dynamics.At(20 * vtime.Millisecond)
	low.Latency = 500 * vtime.Microsecond
	high := dynamics.At(60 * vtime.Millisecond)
	high.Latency = 5 * vtime.Millisecond
	spec := &dynamics.Spec{Profiles: []dynamics.Profile{
		{Link: int(cut), Steps: []dynamics.Step{low, high}, Loop: 80 * vtime.Millisecond},
	}}
	horizon := vtime.Time(600 * vtime.Millisecond)

	type result struct {
		totals emucore.Totals
		got    []int
	}

	seq := func() result {
		sched := vtime.NewScheduler()
		emu, err := emucore.New(sched, g, b, pod, emucore.IdealProfile(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dynamics.Attach(sched, emu, spec); err != nil {
			t.Fatal(err)
		}
		got := make([]int, b.NumVNs())
		for v := 0; v < b.NumVNs(); v++ {
			v := pipes.VN(v)
			emu.RegisterVN(v, func(*pipes.Packet) { got[v]++ })
		}
		n := b.NumVNs()
		for i := 0; i < 200; i++ {
			src := pipes.VN(i % n)
			dst := pipes.VN((i + n/2) % n)
			at := vtime.Time(i) * vtime.Time(2*vtime.Millisecond)
			sched.At(at, func() { emu.Inject(src, dst, 400, nil) })
		}
		// The looping profile reschedules itself forever; drive to a fixed
		// horizon past the last injection instead of running to completion.
		sched.RunUntil(horizon)
		return result{emu.Totals(), got}
	}()

	par := func() result {
		asn, err := assign.KClusters(g, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(Config{
			Graph: g, Binding: b, Assignment: asn,
			Profile: emucore.IdealProfile(), Seed: 1, Dynamics: spec,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int, b.NumVNs())
		for v := 0; v < b.NumVNs(); v++ {
			v := pipes.VN(v)
			r.RegisterVN(v, func(*pipes.Packet) { got[v]++ })
		}
		n := b.NumVNs()
		for i := 0; i < 200; i++ {
			src := pipes.VN(i % n)
			dst := pipes.VN((i + n/2) % n)
			at := vtime.Time(i) * vtime.Time(2*vtime.Millisecond)
			emu := r.EmuOf(src)
			r.SchedOf(src).At(at, func() { emu.Inject(src, dst, 400, nil) })
		}
		if la := r.Lookahead(); la > 500*vtime.Microsecond {
			t.Fatalf("runtime lookahead %v ignores the 500µs profile floor", la)
		}
		r.RunUntil(horizon)
		return result{r.Totals(), got}
	}()

	if seq.totals != par.totals {
		t.Fatalf("totals diverge:\nseq %+v\npar %+v", seq.totals, par.totals)
	}
	for v := range seq.got {
		if seq.got[v] != par.got[v] {
			t.Fatalf("VN %d deliveries: seq %d, par %d", v, seq.got[v], par.got[v])
		}
	}
	if seq.totals.Delivered == 0 {
		t.Fatal("no traffic delivered; test exercises nothing")
	}
}
