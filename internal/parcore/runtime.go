// Package parcore is the parallel core-cluster runtime: it runs each
// emulated core router on its own goroutine with its own virtual-time
// scheduler, synchronized conservatively so that results are deterministic
// and — under an event-exact profile — identical to the sequential
// single-scheduler emulation.
//
// The paper's scalability argument (§3.3) is that emulation capacity grows
// with the number of core routers as long as cross-core transitions stay
// cheap. The sequential reproduction partitions pipes across cores but
// still drives everything from one scheduler, so extra cores buy nothing.
// Here the partition becomes real concurrency:
//
//   - Each shard is an emucore.NewShard emulator owning the pipes its core
//     was assigned (the POD), plus the netstack hosts of the VNs homed on
//     it. A VN's home is the core owning its access pipes, so injection and
//     delivery never cross cores.
//   - Cross-core packet transitions are explicit tunnel messages (§2.2
//     core-to-core tunnels) exchanged at synchronization barriers.
//   - Synchronization is conservative, in the null-message/time-window
//     style: all shards repeatedly agree on a horizon H no earlier than any
//     future tunnel message, then process their own events with timestamps
//     below H in parallel. The horizon is derived from each shard's next
//     event time plus its lookahead — the minimum latency of its cut pipes
//     (see assign.CutStats) — because a packet must spend that latency
//     inside a cut pipe before it can surface on a peer core.
//
// Under an ideal profile shards run eagerly (emucore.Eager): a handoff is
// emitted the moment its packet enters a cut pipe, timestamped with the
// pipe's exact future exit, so the horizon genuinely advances by the full
// lookahead each round instead of stalling on the next actual crossing.
//
// Determinism: barriers exchange messages in a canonical order (fire time,
// sender shard, sender sequence number), and each shard's window is a
// single-threaded deterministic event loop, so a run's outcome depends only
// on the seed — never on goroutine timing. Under an event-exact profile the
// outcome also matches the sequential mode packet-for-packet, except where
// two packets from different shards interact at the same pipe in the same
// nanosecond (the modes may then order them differently; counters of such
// ties are unaffected, per-packet attribution can differ). See DESIGN.md.
package parcore

import (
	"fmt"
	"sort"

	"modelnet/internal/assign"
	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// message is one cross-shard event in flight between barriers.
type message struct {
	pkt    *pipes.Packet
	pid    pipes.ID       // target pipe, or -1 for a delivery completion
	at     vtime.Time     // pipe entry time (may trail fire under debt handling)
	lag    vtime.Duration // accumulated quantization error (deliveries)
	fire   vtime.Time     // virtual time the event takes effect at the target
	sender int
	seq    uint64
}

// worker is one shard: an emulator on a private scheduler plus its mailbox.
type worker struct {
	idx   int
	sched *vtime.Scheduler
	emu   *emucore.Emulator

	// Mailboxes. outbox is appended by this worker's handoffs during a
	// window; the coordinator moves it into peers' inboxes at the barrier.
	outbox [][]message
	inbox  []message
	msgSeq uint64

	// Static synchronization inputs (computed at construction).
	borderPipes  []pipes.ID     // owned pipes whose exit can cross shards
	lookahead    vtime.Duration // min latency over borderPipes
	ingressCross bool           // a homed VN can inject directly into a peer's pipe

	cmd  chan vtime.Time
	done chan struct{}
}

// SyncStats describe how a run synchronized.
type SyncStats struct {
	Windows      uint64 // parallel windows executed
	SerialRounds uint64 // serial drain rounds (zero/exhausted lookahead)
	Messages     uint64 // cross-shard messages exchanged
}

// Runtime is a parallel core cluster ready to run.
type Runtime struct {
	graph   *topology.Graph
	binding *bind.Binding
	pod     *bind.POD
	workers []*worker
	homes   []int // VN -> shard
	now     vtime.Time
	stats   SyncStats
}

// Config assembles a Runtime.
type Config struct {
	Graph      *topology.Graph    // distilled topology
	Binding    *bind.Binding      // shared binding (route table, VN homes)
	Assignment *assign.Assignment // pipe -> core ownership
	Profile    emucore.Profile
	Seed       int64
	// NewTable, when non-nil, builds a private route table per shard.
	// Required when the shared table mutates on lookup (the LRU route
	// cache); leave nil for read-only tables (matrix, hierarchical).
	NewTable func() bind.Table
}

// New builds the parallel runtime: one shard emulator per assignment core,
// each on a fresh scheduler.
func New(cfg Config) (*Runtime, error) {
	k := cfg.Assignment.Cores
	if k < 2 {
		return nil, fmt.Errorf("parcore: need at least 2 cores, got %d", k)
	}
	g, b := cfg.Graph, cfg.Binding
	pod := cfg.Assignment.POD()
	r := &Runtime{graph: g, binding: b, pod: pod}

	// Home each VN on the core owning its access pipe so that injection,
	// and (because k-clusters keeps duplex pairs together) delivery, are
	// core-local. VNs with access links split across cores still work but
	// force zero-lookahead synchronization for their shard.
	r.homes = make([]int, b.NumVNs())
	for v, node := range b.VNHome {
		if outs := g.Out(node); len(outs) > 0 {
			r.homes[v] = pod.Owner(pipes.ID(outs[0])) % k
		}
	}

	r.workers = make([]*worker, k)
	for i := range r.workers {
		w := &worker{
			idx:    i,
			sched:  vtime.NewScheduler(),
			outbox: make([][]message, k),
			cmd:    make(chan vtime.Time),
			done:   make(chan struct{}),
		}
		bi := b
		if cfg.NewTable != nil {
			cp := *b
			cp.Table = cfg.NewTable()
			bi = &cp
		}
		i := i
		handoff := func(target int, pkt *pipes.Packet, pid pipes.ID, at vtime.Time, lag vtime.Duration) {
			fire := at
			if now := w.sched.Now(); fire < now {
				fire = now
			}
			w.msgSeq++
			w.outbox[target%k] = append(w.outbox[target%k], message{
				pkt: pkt, pid: pid, at: at, lag: lag, fire: fire, sender: i, seq: w.msgSeq,
			})
		}
		emu, err := emucore.NewShard(w.sched, g, bi, pod, cfg.Profile, cfg.Seed, i, r.homes, handoff)
		if err != nil {
			return nil, fmt.Errorf("parcore: shard %d: %w", i, err)
		}
		w.emu = emu
		r.workers[i] = w
	}
	r.computeBorders()
	return r, nil
}

// computeBorders derives, per shard, the set of owned pipes whose exit can
// produce a cross-shard event — either the packet's next hop is a pipe
// owned elsewhere (structural adjacency over-approximates the routes) or
// the pipe terminates at a VN homed elsewhere — and the resulting
// lookahead. It also flags shards whose VNs can inject straight into a
// peer's pipe (possible under collapsing distillation modes), which pins
// that shard's safe bound to its next event time.
func (r *Runtime) computeBorders() {
	g, pod, k := r.graph, r.pod, len(r.workers)
	for _, l := range g.Links {
		o := pod.Owner(pipes.ID(l.ID)) % k
		border := false
		for _, nid := range g.Out(l.Dst) {
			if pod.Owner(pipes.ID(nid))%k != o {
				border = true
				break
			}
		}
		if !border {
			if vn := r.binding.VNOfNode[l.Dst]; vn >= 0 && r.homes[vn] != o {
				border = true
			}
		}
		if !border {
			continue
		}
		w := r.workers[o]
		lat := vtime.DurationOf(l.Attr.LatencySec)
		if len(w.borderPipes) == 0 || lat < w.lookahead {
			w.lookahead = lat
		}
		w.borderPipes = append(w.borderPipes, pipes.ID(l.ID))
	}
	for v, node := range r.binding.VNHome {
		for _, lid := range g.Out(node) {
			if pod.Owner(pipes.ID(lid))%k != r.homes[v] {
				r.workers[r.homes[v]].ingressCross = true
			}
		}
	}
}

// Cores reports the number of shards.
func (r *Runtime) Cores() int { return len(r.workers) }

// HomeOf reports the shard a VN's netstack lives on.
func (r *Runtime) HomeOf(vn pipes.VN) int { return r.homes[vn] }

// SchedOf returns the scheduler driving a VN's home shard; hosts and
// application timers for that VN must be built on it.
func (r *Runtime) SchedOf(vn pipes.VN) *vtime.Scheduler { return r.workers[r.homes[vn]].sched }

// EmuOf returns the shard emulator a VN injects into.
func (r *Runtime) EmuOf(vn pipes.VN) *emucore.Emulator { return r.workers[r.homes[vn]].emu }

// ShardEmu returns shard i's emulator (counters, per-core stats).
func (r *Runtime) ShardEmu(i int) *emucore.Emulator { return r.workers[i].emu }

// RegisterVN installs a delivery callback on the VN's home shard.
func (r *Runtime) RegisterVN(vn pipes.VN, fn emucore.DeliverFunc) {
	r.workers[r.homes[vn]].emu.RegisterVN(vn, fn)
}

// SetDeliverHook installs fn as every shard's OnDeliver hook. Shards run
// concurrently, so fn must be safe for concurrent use.
func (r *Runtime) SetDeliverHook(fn func(pkt *pipes.Packet, at vtime.Time)) {
	for _, w := range r.workers {
		w.emu.OnDeliver = fn
	}
}

// Lookahead reports the cluster-wide synchronization lookahead: the
// smallest per-shard border-pipe latency (0 with an ingress crossing).
func (r *Runtime) Lookahead() vtime.Duration {
	la := vtime.Duration(-1)
	for _, w := range r.workers {
		if w.ingressCross {
			return 0
		}
		if len(w.borderPipes) == 0 {
			continue
		}
		if la < 0 || w.lookahead < la {
			la = w.lookahead
		}
	}
	if la < 0 {
		return 0
	}
	return la
}

// Stats reports synchronization counters for the run so far.
func (r *Runtime) Stats() SyncStats { return r.stats }

// Now reports the cluster's virtual time: the deadline of the last run, or
// the latest shard clock after RunToCompletion.
func (r *Runtime) Now() vtime.Time { return r.now }

// Totals sums the conservation counters over all shards.
func (r *Runtime) Totals() emucore.Totals {
	var t emucore.Totals
	for _, w := range r.workers {
		wt := w.emu.Totals()
		t.Injected += wt.Injected
		t.Delivered += wt.Delivered
		t.NoRoute += wt.NoRoute
		t.PhysDrops += wt.PhysDrops
		t.VirtualDrops += wt.VirtualDrops
		t.InFlight += wt.InFlight
	}
	return t
}

// Accuracy merges the per-shard delay-accuracy trackers.
func (r *Runtime) Accuracy() emucore.Accuracy {
	var a emucore.Accuracy
	for _, w := range r.workers {
		a.Merge(w.emu.Accuracy)
	}
	return a
}

// RunFor advances the cluster by d, firing all due events.
func (r *Runtime) RunFor(d vtime.Duration) { r.RunUntil(r.now.Add(d)) }

// Run fires events until none remain anywhere in the cluster.
func (r *Runtime) Run() { r.RunUntil(vtime.Forever) }

// RunUntil advances every shard to the deadline, firing all events with
// timestamps at or before it. This is the conservative synchronization
// loop: barrier, agree on a horizon, run shards in parallel below it,
// exchange tunnel messages, repeat.
func (r *Runtime) RunUntil(deadline vtime.Time) {
	for _, w := range r.workers {
		w := w
		go func() {
			for bound := range w.cmd {
				w.sched.RunUntil(bound)
				w.done <- struct{}{}
			}
		}()
	}
	defer func() {
		for _, w := range r.workers {
			close(w.cmd)
			w.cmd = make(chan vtime.Time)
		}
	}()

	prevBound := vtime.Time(-1)
	for {
		r.distribute()
		minNext, horizon := r.bounds()
		if minNext > deadline || minNext == vtime.Forever {
			break
		}
		// An unconstrained horizon (no shard can ever emit a cross-shard
		// message from its current state) must not clamp clocks to the
		// end of time: run straight to the caller's deadline.
		bound := deadline
		if horizon != vtime.Forever && horizon-1 < bound {
			bound = horizon - 1
		}
		if bound < minNext || bound < prevBound {
			// The horizon excludes the very next event: lookahead is zero
			// or consumed. Drain time minNext serially, deterministically.
			r.serialDrain(minNext)
			if minNext > prevBound {
				prevBound = minNext
			}
			continue
		}
		r.window(bound)
		prevBound = bound
	}
	if deadline == vtime.Forever {
		for _, w := range r.workers {
			if w.sched.Now() > r.now {
				r.now = w.sched.Now()
			}
		}
		return
	}
	r.window(deadline) // advance all clocks to the deadline
	r.now = deadline
}

// distribute moves every outbox into the target inboxes, then schedules
// each inbox in the canonical (fire, sender, seq) order. Runs on the
// coordinator between windows.
func (r *Runtime) distribute() {
	r.distributeOnly()
	for _, w := range r.workers {
		r.applyInbox(w)
	}
}

// applyInbox schedules w's pending messages onto its scheduler.
func (r *Runtime) applyInbox(w *worker) {
	if len(w.inbox) == 0 {
		return
	}
	sort.Slice(w.inbox, func(i, j int) bool {
		a, b := w.inbox[i], w.inbox[j]
		if a.fire != b.fire {
			return a.fire < b.fire
		}
		if a.sender != b.sender {
			return a.sender < b.sender
		}
		return a.seq < b.seq
	})
	for _, m := range w.inbox {
		m := m
		at := m.fire
		if now := w.sched.Now(); at < now {
			panic(fmt.Sprintf("parcore: EOT violation: fire %v < now %v (pid %d)", m.fire, now, m.pid))
		}
		w.sched.At(at, func() {
			if m.pid >= 0 {
				w.emu.TunnelIn(m.pkt, m.pid, m.at)
			} else {
				w.emu.CompleteDelivery(m.pkt, m.lag, m.at)
			}
		})
	}
	w.inbox = w.inbox[:0]
}

// bounds computes the global next-event time and the safe horizon H: no
// shard will emit a cross-shard message firing before H, so every shard may
// process events strictly below H without hearing from its peers.
func (r *Runtime) bounds() (minNext, horizon vtime.Time) {
	minNext, horizon = vtime.Forever, vtime.Forever
	for _, w := range r.workers {
		next := w.sched.NextEventTime()
		if next < minNext {
			minNext = next
		}
		t := next
		if hm := w.emu.NextPipeDeadline(); hm < t {
			t = hm
		}
		e := satAdd(t, w.lookahead)
		if w.ingressCross {
			e = t
		} else if !w.emu.Eager() {
			// Lazy shards emit at exit-processing time: a handoff can fire
			// as soon as the earliest occupied border pipe drains.
			for _, pid := range w.borderPipes {
				if d := w.emu.Pipe(pid).NextDeadline(); d < e {
					e = d
				}
			}
		}
		if len(w.borderPipes) == 0 && !w.ingressCross {
			e = vtime.Forever
		}
		if e < horizon {
			horizon = e
		}
	}
	return minNext, horizon
}

// satAdd offsets t by d, saturating at Forever.
func satAdd(t vtime.Time, d vtime.Duration) vtime.Time {
	if t == vtime.Forever || d == 0 {
		return t
	}
	s := t.Add(d)
	if s < t {
		return vtime.Forever
	}
	return s
}

// window runs every shard concurrently up to bound (inclusive).
func (r *Runtime) window(bound vtime.Time) {
	for _, w := range r.workers {
		w.cmd <- bound
	}
	for _, w := range r.workers {
		<-w.done
	}
	r.stats.Windows++
}

// serialDrain processes every event with timestamp ≤ t, one shard at a
// time in index order, exchanging messages between turns until quiescent.
// This is the correct-but-sequential fallback for zero-lookahead instants;
// with a latency-bearing cut it only runs when a window closes exactly on
// the next event.
func (r *Runtime) serialDrain(t vtime.Time) {
	for {
		progressed := false
		for _, w := range r.workers {
			r.applyInbox(w)
			if w.sched.NextEventTime() <= t {
				w.sched.RunUntil(t)
				progressed = true
			}
		}
		r.distributeOnly()
		if !progressed {
			return
		}
		r.stats.SerialRounds++
	}
}

// distributeOnly moves outboxes to inboxes without scheduling (the next
// drain round or distribute call applies them).
func (r *Runtime) distributeOnly() {
	for _, src := range r.workers {
		for tgt, msgs := range src.outbox {
			if len(msgs) == 0 {
				continue
			}
			r.workers[tgt].inbox = append(r.workers[tgt].inbox, msgs...)
			r.stats.Messages += uint64(len(msgs))
			src.outbox[tgt] = src.outbox[tgt][:0]
		}
	}
}
