package parcore

// The in-process deployment: Runtime hosts the shards as goroutines and
// implements Transport with slice moves at the barriers.

import (
	"fmt"
	"time"

	"modelnet/internal/assign"
	"modelnet/internal/bind"
	"modelnet/internal/dynamics"
	"modelnet/internal/emucore"
	"modelnet/internal/obs"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// worker is one shard: an emulator on a private scheduler plus its mailbox.
type worker struct {
	idx   int
	sched *vtime.Scheduler
	emu   *emucore.Emulator

	// Mailboxes. outbox is filled by this worker's handoffs during a
	// window; the coordinator moves it into peers' inboxes at the barrier.
	// applier schedules inbound messages, merging same-fire-time clusters
	// across barriers.
	outbox  *Outbox
	inbox   []Msg
	applier *Applier

	// Static synchronization inputs (computed at construction).
	sync ShardSync

	// prof is the shard's wall-clock / lookahead-utilization profile;
	// tracer its (optional) packet tracer.
	prof   obs.ShardProfile
	tracer *obs.Tracer

	cmd  chan vtime.Time
	done chan struct{}
}

// bounds reports this shard's contribution to the horizon computation.
func (w *worker) bounds() Bounds { return ShardBounds(w.sched, w.emu, w.sync, w.applier) }

// SyncStats describe how a run synchronized.
type SyncStats struct {
	Windows      uint64 // parallel windows executed
	SerialRounds uint64 // serial drain rounds (zero/exhausted lookahead)
	Messages     uint64 // cross-shard messages exchanged
	// Effective per-window grant spans: how far each shard's window bound
	// actually moved per release. Under the fixed algebra every shard
	// contributes the same span; under the adaptive algebra the spread is
	// the whole point. One sample per (window, shard) that advanced.
	GrantCount uint64
	GrantSumNs uint64
	GrantMinNs int64
	GrantMaxNs int64
	// Profile is the loop's wall-clock breakdown (compute vs barrier-wait
	// vs serial drain vs pacing idle vs flush).
	Profile obs.DriveProfile
}

// noteGrant records one shard's effective window grant span.
func (s *SyncStats) noteGrant(span vtime.Duration) {
	if span <= 0 {
		return
	}
	if s.GrantCount == 0 || int64(span) < s.GrantMinNs {
		s.GrantMinNs = int64(span)
	}
	if int64(span) > s.GrantMaxNs {
		s.GrantMaxNs = int64(span)
	}
	s.GrantCount++
	s.GrantSumNs += uint64(span)
}

// GrantMin reports the smallest effective window grant (0 when none).
func (s SyncStats) GrantMin() vtime.Duration {
	if s.GrantCount == 0 {
		return 0
	}
	return vtime.Duration(s.GrantMinNs)
}

// GrantMax reports the largest effective window grant (0 when none).
func (s SyncStats) GrantMax() vtime.Duration {
	if s.GrantCount == 0 {
		return 0
	}
	return vtime.Duration(s.GrantMaxNs)
}

// GrantMean reports the mean effective window grant (0 when none).
func (s SyncStats) GrantMean() vtime.Duration {
	if s.GrantCount == 0 {
		return 0
	}
	return vtime.Duration(s.GrantSumNs / s.GrantCount)
}

// Runtime is a parallel core cluster ready to run.
type Runtime struct {
	graph       *topology.Graph
	binding     *bind.Binding
	pod         *bind.POD
	workers     []*worker
	homes       []int // VN -> shard
	mode        SyncMode
	chain       [][]vtime.Duration // reaction-chain matrix (adaptive)
	now         vtime.Time
	stats       SyncStats
	flushWallNs uint64 // cumulative outbox-distribution time (flushProfiler)
}

// Config assembles a Runtime.
type Config struct {
	Graph      *topology.Graph    // distilled topology
	Binding    *bind.Binding      // shared binding (route table, VN homes)
	Assignment *assign.Assignment // pipe -> core ownership
	Profile    emucore.Profile
	Seed       int64
	// NewTable, when non-nil, builds a private route table per shard.
	// Required when the shared table mutates on lookup (the LRU route
	// cache); leave nil for read-only tables (matrix, hierarchical).
	NewTable func() bind.Table
	// Dynamics, when non-nil, is attached to every shard: each shard
	// replays the full spec against its own (complete) pipe set, exactly
	// as the sequential mode does, and shard lookahead is derived from the
	// spec's per-link latency floor.
	Dynamics *dynamics.Spec
	// Trace enables per-shard packet tracing (merge with Runtime.Trace).
	Trace bool
	// Sync selects the synchronization algebra; the zero value is
	// SyncAdaptive. SyncFixed retains the uniform static-lookahead windows.
	Sync SyncMode
}

// New builds the parallel runtime: one shard emulator per assignment core,
// each on a fresh scheduler.
func New(cfg Config) (*Runtime, error) {
	k := cfg.Assignment.Cores
	if k < 2 {
		return nil, fmt.Errorf("parcore: need at least 2 cores, got %d", k)
	}
	g, b := cfg.Graph, cfg.Binding
	pod := cfg.Assignment.POD()
	r := &Runtime{graph: g, binding: b, pod: pod}
	r.homes = Homes(g, b, pod, k)

	r.workers = make([]*worker, k)
	for i := range r.workers {
		w := &worker{
			idx:   i,
			sched: vtime.NewScheduler(),
			cmd:   make(chan vtime.Time),
			done:  make(chan struct{}),
		}
		w.outbox = NewOutbox(i, k, w.sched)
		bi := b
		// A shard needs a private binding when the table mutates: on
		// lookup (LRU cache) or via dynamics reroutes (SetTable swaps the
		// binding's table in place per shard).
		if cfg.NewTable != nil || (cfg.Dynamics != nil && cfg.Dynamics.Reroute) {
			cp := *b
			if cfg.NewTable != nil {
				cp.Table = cfg.NewTable()
			}
			bi = &cp
		}
		emu, err := emucore.NewShard(w.sched, g, bi, pod, cfg.Profile, cfg.Seed, i, r.homes, w.outbox.Handoff)
		if err != nil {
			return nil, fmt.Errorf("parcore: shard %d: %w", i, err)
		}
		w.prof.Shard = i
		if cfg.Trace {
			w.tracer = obs.NewTracer(i)
			emu.Trace = w.tracer
		}
		if _, err := dynamics.Attach(w.sched, emu, cfg.Dynamics); err != nil {
			return nil, fmt.Errorf("parcore: shard %d: %w", i, err)
		}
		w.emu = emu
		w.applier = NewApplier(w.sched, emu)
		r.workers[i] = w
	}
	r.mode = cfg.Sync
	syncs := ComputeSyncPlan(g, b, pod, r.homes, k, cfg.Dynamics.LatencyFloorFunc())
	if r.mode == SyncFixed {
		for i := range syncs {
			syncs[i].Plan = nil
		}
	} else {
		r.chain = ChainMatrix(syncs)
	}
	for i, s := range syncs {
		r.workers[i].sync = s
	}
	return r, nil
}

// Cores reports the number of shards.
func (r *Runtime) Cores() int { return len(r.workers) }

// HomeOf reports the shard a VN's netstack lives on.
func (r *Runtime) HomeOf(vn pipes.VN) int { return r.homes[vn] }

// SchedOf returns the scheduler driving a VN's home shard; hosts and
// application timers for that VN must be built on it.
func (r *Runtime) SchedOf(vn pipes.VN) *vtime.Scheduler { return r.workers[r.homes[vn]].sched }

// EmuOf returns the shard emulator a VN injects into.
func (r *Runtime) EmuOf(vn pipes.VN) *emucore.Emulator { return r.workers[r.homes[vn]].emu }

// ShardEmu returns shard i's emulator (counters, per-core stats).
func (r *Runtime) ShardEmu(i int) *emucore.Emulator { return r.workers[i].emu }

// RegisterVN installs a delivery callback on the VN's home shard.
func (r *Runtime) RegisterVN(vn pipes.VN, fn emucore.DeliverFunc) {
	r.workers[r.homes[vn]].emu.RegisterVN(vn, fn)
}

// SetDeliverHook installs fn as every shard's OnDeliver hook. Shards run
// concurrently, so fn must be safe for concurrent use.
func (r *Runtime) SetDeliverHook(fn func(pkt *pipes.Packet, at vtime.Time)) {
	for _, w := range r.workers {
		w.emu.OnDeliver = fn
	}
}

// Lookahead reports the cluster-wide synchronization lookahead: the
// smallest per-shard border-pipe latency (0 with an ingress crossing).
func (r *Runtime) Lookahead() vtime.Duration {
	la := vtime.Duration(-1)
	for _, w := range r.workers {
		if w.sync.IngressCross {
			return 0
		}
		if len(w.sync.BorderPipes) == 0 {
			continue
		}
		if la < 0 || w.sync.Lookahead < la {
			la = w.sync.Lookahead
		}
	}
	if la < 0 {
		return 0
	}
	return la
}

// Stats reports synchronization counters for the run so far.
func (r *Runtime) Stats() SyncStats { return r.stats }

// Mode reports the synchronization algebra the runtime drives with.
func (r *Runtime) Mode() SyncMode { return r.mode }

// ShardProfiles snapshots every shard's wall-clock/lookahead profile.
func (r *Runtime) ShardProfiles() []obs.ShardProfile {
	out := make([]obs.ShardProfile, len(r.workers))
	for i, w := range r.workers {
		out[i] = w.prof
	}
	return out
}

// Trace merges the per-shard packet tracers into one deterministic trace,
// or returns nil when the runtime was built without Config.Trace.
func (r *Runtime) Trace() *obs.Trace {
	tracers := make([]*obs.Tracer, 0, len(r.workers))
	for _, w := range r.workers {
		if w.tracer != nil {
			tracers = append(tracers, w.tracer)
		}
	}
	if len(tracers) == 0 {
		return nil
	}
	return obs.Merge(tracers...)
}

// Now reports the cluster's virtual time: the deadline of the last run, or
// the latest shard clock after RunToCompletion.
func (r *Runtime) Now() vtime.Time { return r.now }

// Totals sums the conservation counters over all shards.
func (r *Runtime) Totals() emucore.Totals {
	var t emucore.Totals
	for _, w := range r.workers {
		wt := w.emu.Totals()
		t.Injected += wt.Injected
		t.Delivered += wt.Delivered
		t.NoRoute += wt.NoRoute
		t.PhysDrops += wt.PhysDrops
		t.VirtualDrops += wt.VirtualDrops
		t.InFlight += wt.InFlight
	}
	return t
}

// Accuracy merges the per-shard delay-accuracy trackers.
func (r *Runtime) Accuracy() emucore.Accuracy {
	var a emucore.Accuracy
	for _, w := range r.workers {
		a.Merge(w.emu.Accuracy)
	}
	return a
}

// RunFor advances the cluster by d, firing all due events.
func (r *Runtime) RunFor(d vtime.Duration) { r.RunUntil(r.now.Add(d)) }

// Run fires events until none remain anywhere in the cluster.
func (r *Runtime) Run() { r.RunUntil(vtime.Forever) }

// RunUntil advances every shard to the deadline, firing all events with
// timestamps at or before it, by handing the in-process transport to the
// conservative synchronization loop (Drive).
func (r *Runtime) RunUntil(deadline vtime.Time) {
	for _, w := range r.workers {
		w := w
		go func() {
			for bound := range w.cmd {
				t0 := time.Now()
				f0 := w.sched.Fired()
				w.sched.RunUntil(bound)
				w.prof.RunWallNs += uint64(time.Since(t0))
				w.prof.Windows++
				if df := w.sched.Fired() - f0; df > 0 {
					w.prof.ActiveWindows++
					w.prof.EventsFired += df
				}
				w.done <- struct{}{}
			}
		}()
	}
	defer func() {
		for _, w := range r.workers {
			close(w.cmd)
			w.cmd = make(chan vtime.Time)
		}
	}()

	if err := DriveWith(inproc{r}, &r.stats, deadline, DriveOpts{Mode: r.mode, Chain: r.chain}); err != nil {
		// The in-process transport only errors on an EOT violation, which
		// is a runtime invariant breach, not an I/O condition.
		panic(err)
	}
	if deadline == vtime.Forever {
		for _, w := range r.workers {
			if w.sched.Now() > r.now {
				r.now = w.sched.Now()
			}
		}
		return
	}
	r.now = deadline
}

// inproc is the in-process Transport: shards are this Runtime's worker
// goroutines and the barrier moves messages between slices.
type inproc struct{ r *Runtime }

// Cores implements Transport.
func (t inproc) Cores() int { return len(t.r.workers) }

// Exchange implements Transport: move outboxes, apply inboxes in canonical
// order, report bounds.
func (t inproc) Exchange() ([]Bounds, error) {
	r := t.r
	r.distributeOnly()
	bs := make([]Bounds, len(r.workers))
	for i, w := range r.workers {
		t0 := time.Now()
		r.applyInbox(w)
		w.prof.ApplyWallNs += uint64(time.Since(t0))
		bs[i] = w.bounds()
	}
	return bs, nil
}

// FlushWallNs implements flushProfiler: cumulative outbox-move time.
func (t inproc) FlushWallNs() uint64 { return t.r.flushWallNs }

// Window implements Transport: run shard i concurrently up to grants[i]
// (inclusive).
func (t inproc) Window(grants []vtime.Time) error {
	for i, w := range t.r.workers {
		w.cmd <- grants[i]
	}
	for _, w := range t.r.workers {
		<-w.done
	}
	return nil
}

// DrainPass implements Transport: one serial turn per shard at time tt,
// messages moved only at the end of the pass.
func (t inproc) DrainPass(tt vtime.Time) (bool, error) {
	r := t.r
	progressed := false
	for _, w := range r.workers {
		t0 := time.Now()
		r.applyInbox(w)
		w.prof.ApplyWallNs += uint64(time.Since(t0))
		if w.sched.NextEventTime() <= tt {
			t0 = time.Now()
			f0 := w.sched.Fired()
			w.sched.RunUntil(tt)
			w.prof.DrainWallNs += uint64(time.Since(t0))
			w.prof.EventsFired += w.sched.Fired() - f0
			progressed = true
		}
	}
	r.distributeOnly()
	return progressed, nil
}

// applyInbox schedules w's pending messages onto its scheduler.
func (r *Runtime) applyInbox(w *worker) {
	if len(w.inbox) == 0 {
		return
	}
	if err := w.applier.Apply(w.inbox); err != nil {
		panic(err)
	}
	w.inbox = w.inbox[:0]
}

// inprocSender is the in-process Sender: a per-peer batch moves as one
// slice append into the target's inbox.
type inprocSender struct{ r *Runtime }

// Send implements Sender.
func (s inprocSender) Send(target int, msgs []Msg) error {
	s.r.workers[target].inbox = append(s.r.workers[target].inbox, msgs...)
	s.r.stats.Messages += uint64(len(msgs))
	return nil
}

// distributeOnly moves outboxes to inboxes without scheduling (the next
// Exchange or DrainPass applies them).
func (r *Runtime) distributeOnly() {
	t0 := time.Now()
	for _, src := range r.workers {
		if err := src.outbox.Flush(inprocSender{r}); err != nil {
			panic(err) // the in-process sender never fails
		}
	}
	r.flushWallNs += uint64(time.Since(t0))
}
