// Package parcore is the parallel core-cluster runtime: it runs each
// emulated core router on its own goroutine with its own virtual-time
// scheduler, synchronized conservatively so that results are deterministic
// and — under an event-exact profile — identical to the sequential
// single-scheduler emulation.
//
// The paper's scalability argument (§3.3) is that emulation capacity grows
// with the number of core routers as long as cross-core transitions stay
// cheap. The sequential reproduction partitions pipes across cores but
// still drives everything from one scheduler, so extra cores buy nothing.
// Here the partition becomes real concurrency:
//
//   - Each shard is an emucore.NewShard emulator owning the pipes its core
//     was assigned (the POD), plus the netstack hosts of the VNs homed on
//     it. A VN's home is the core owning its access pipes, so injection and
//     delivery never cross cores.
//   - Cross-core packet transitions are explicit tunnel messages (§2.2
//     core-to-core tunnels) exchanged at synchronization barriers.
//   - Synchronization is conservative, in the null-message/time-window
//     style: all shards repeatedly agree on a horizon H no earlier than any
//     future tunnel message, then process their own events with timestamps
//     below H in parallel. The horizon is derived from each shard's next
//     event time plus its lookahead — the minimum latency of its cut pipes
//     (see assign.CutStats) — because a packet must spend that latency
//     inside a cut pipe before it can surface on a peer core.
//
// Under an ideal profile shards run eagerly (emucore.Eager): a handoff is
// emitted the moment its packet enters a cut pipe, timestamped with the
// pipe's exact future exit, so the horizon genuinely advances by the full
// lookahead each round instead of stalling on the next actual crossing.
//
// Determinism: barriers exchange messages in a canonical order (fire time,
// sender shard, sender sequence number), and each shard's window is a
// single-threaded deterministic event loop, so a run's outcome depends only
// on the seed — never on goroutine timing. Under an event-exact profile the
// outcome also matches the sequential mode packet-for-packet, except where
// two packets from different shards interact at the same pipe in the same
// nanosecond (the modes may then order them differently; counters of such
// ties are unaffected, per-packet attribution can differ). See DESIGN.md.
//
// The synchronization algebra itself lives in Drive, behind the Transport
// interface: Runtime is the in-process transport (shards as goroutines,
// barriers as slice moves) and internal/fednet implements the same contract
// over real sockets, one OS process per shard. DrivePaced is the same loop
// slaved to the wall clock (Pacing — the paper's 10 kHz-timer role), which
// is what lets live edge gateways (internal/edge) feed real traffic into a
// run whose emulated delays elapse in real time.
package parcore
