package parcore

import (
	"testing"

	"modelnet/internal/dynamics"
	"modelnet/internal/vtime"
)

// scriptedTransport feeds Drive a fixed sequence of Exchange bounds and
// records every Window grant vector and DrainPass target it receives. Once
// the script is exhausted it reports quiescence, which ends the drive.
type scriptedTransport struct {
	k      int
	rounds [][]Bounds
	next   int
	grants [][]vtime.Time
	drains []vtime.Time
}

func (s *scriptedTransport) Cores() int { return s.k }

func (s *scriptedTransport) Exchange() ([]Bounds, error) {
	if s.next >= len(s.rounds) {
		bs := make([]Bounds, s.k)
		for j := range bs {
			bs[j] = Bounds{Next: vtime.Forever, Safe: vtime.Forever}
		}
		return bs, nil
	}
	bs := s.rounds[s.next]
	s.next++
	return bs, nil
}

func (s *scriptedTransport) Window(grants []vtime.Time) error {
	s.grants = append(s.grants, append([]vtime.Time(nil), grants...))
	return nil
}

func (s *scriptedTransport) DrainPass(t vtime.Time) (bool, error) {
	s.drains = append(s.drains, t)
	return false, nil
}

// bounds2 builds one shard's Bounds for a 2-shard script: next local event
// and the earliest time its current state could fire on the peer.
func bounds2(shard int, next, safeToPeer vtime.Time) Bounds {
	st := []vtime.Time{vtime.Forever, vtime.Forever}
	st[1-shard] = safeToPeer
	return Bounds{Next: next, Safe: safeToPeer, SafeTo: st}
}

// TestAdaptiveGrantsHonorFlooredChain pins the adaptive grant rule against
// a hand-computed min-plus closure, on a chain matrix whose crossing
// distances come from a dynamics trace that cuts a border pipe's latency.
// Two invariants: a shard's grant always stops short of the earliest
// cross-shard message the closure admits (grant ≤ horizon − 1), and when
// the latency cut shrinks a crossing distance the grant shrinks with it —
// a drive that kept using the bind-time chain would release windows a
// dipped message could land inside.
func TestAdaptiveGrantsHonorFlooredChain(t *testing.T) {
	g, b, pod, homes, _, cut := syncFixture(t, 2)

	dip := dynamics.At(200 * vtime.Millisecond)
	dip.Latency = 100 * vtime.Microsecond
	spec := &dynamics.Spec{Profiles: []dynamics.Profile{
		{Link: int(cut), Steps: []dynamics.Step{dip}},
	}}

	base := ChainMatrix(ComputeSyncPlan(g, b, pod, homes, 2, nil))
	floored := ChainMatrix(ComputeSyncPlan(g, b, pod, homes, 2, spec.LatencyFloorFunc()))
	if base == nil || floored == nil {
		t.Fatal("ComputeSyncPlan produced no plans")
	}
	shrunk := false
	for i := range base {
		for j := range base[i] {
			if floored[i][j] > base[i][j] {
				t.Fatalf("floor raised chain[%d][%d]: %v -> %v", i, j, base[i][j], floored[i][j])
			}
			if floored[i][j] < base[i][j] {
				shrunk = true
			}
		}
	}
	if !shrunk {
		t.Fatal("latency cut left the chain matrix untouched — the fixture exercises nothing")
	}

	const deadline = vtime.Time(vtime.Second)
	// Shard 1's horizon seeds shard 0 tightly (10 ms); shard 0's own seed
	// toward shard 1 is loose (50 ms), so shard 1's grant is decided by the
	// chained term A[0] + chain[0][1] — the crossing distance the dip cuts.
	seed0to1 := vtime.Time(50 * vtime.Millisecond)
	seed1to0 := vtime.Time(10 * vtime.Millisecond)
	round1 := []Bounds{
		bounds2(0, vtime.Time(5*vtime.Millisecond), seed0to1),
		bounds2(1, vtime.Time(6*vtime.Millisecond), seed1to0),
	}
	// Round 2: every horizon sits below every next event, so no shard can
	// fire — the drive must fall back to a serial drain at minNext.
	round2 := []Bounds{
		bounds2(0, vtime.Time(200*vtime.Millisecond), vtime.Time(150*vtime.Millisecond)),
		bounds2(1, vtime.Time(180*vtime.Millisecond), vtime.Time(140*vtime.Millisecond)),
	}

	// The min-plus closure for k = 2, written out by hand: relaxation
	// updates in place, so A[1] settles first and then feeds A[0].
	expect := func(chain [][]vtime.Duration) (vtime.Time, vtime.Time) {
		a1 := seed0to1
		if v := satAdd(seed1to0, chain[0][1]); v < a1 {
			a1 = v
		}
		a0 := seed1to0
		if v := satAdd(a1, chain[1][0]); v < a0 {
			a0 = v
		}
		return a0 - 1, a1 - 1
	}

	run := func(chain [][]vtime.Duration) (*scriptedTransport, SyncStats) {
		tr := &scriptedTransport{k: 2, rounds: [][]Bounds{round1, round2}}
		var st SyncStats
		if err := DriveWith(tr, &st, deadline, DriveOpts{Mode: SyncAdaptive, Chain: chain}); err != nil {
			t.Fatal(err)
		}
		return tr, st
	}

	check := func(name string, chain [][]vtime.Duration) []vtime.Time {
		tr, st := run(chain)
		// Window 1 from round 1, window 2 the final advance to the deadline;
		// round 2 must have drained, not released.
		if len(tr.grants) != 2 {
			t.Fatalf("%s: %d windows released, want 2: %v", name, len(tr.grants), tr.grants)
		}
		if len(tr.drains) != 1 || tr.drains[0] != vtime.Time(180*vtime.Millisecond) {
			t.Fatalf("%s: drains = %v, want one drain at shard 1's next event (180ms)", name, tr.drains)
		}
		if int(st.Windows) != len(tr.grants) {
			t.Fatalf("%s: stats count %d windows, transport saw %d", name, st.Windows, len(tr.grants))
		}
		got := tr.grants[0]
		e0, e1 := expect(chain)
		if got[0] != e0 || got[1] != e1 {
			t.Fatalf("%s: grants = %v, want [%v %v]", name, got, e0, e1)
		}
		// Grant ≤ horizon − 1: no shard may run up to the earliest time a
		// cross-shard message could reach it.
		if got[0] >= seed1to0 || got[1] >= seed0to1 {
			t.Fatalf("%s: grants %v reach the peers' horizons (%v, %v)", name, got, seed1to0, seed0to1)
		}
		if fin := tr.grants[1]; fin[0] != deadline || fin[1] != deadline {
			t.Fatalf("%s: final window %v did not advance both clocks to the deadline", name, fin)
		}
		return got
	}

	gb := check("base chain", base)
	gf := check("floored chain", floored)
	for j := range gb {
		if gf[j] > gb[j] {
			t.Fatalf("shard %d: floored grant %v exceeds base grant %v — the dip loosened a window", j, gf[j], gb[j])
		}
	}
	// The dip cuts shard 0's crossing distance toward shard 1 (the cut pipe
	// is a border pipe of the shard that owns it), so with shard 1's grant
	// bound by the chained term the floored drive must tighten it.
	if floored[0][1] < base[0][1] {
		want := satAdd(seed1to0, floored[0][1])
		if want < seed0to1 && gf[1] >= gb[1] {
			t.Fatalf("shard 1: grant did not tighten under the floored chain: base %v, floored %v", gb[1], gf[1])
		}
	}
}
