package topology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ModelNet converts all topology sources (Internet traces, BGP dumps,
// synthetic generators) to GML, the graph modeling language (§2.1). This file
// implements a GML subset sufficient for annotated ModelNet topologies:
//
//	graph [
//	  directed 1
//	  node [ id 0 label "vn0" kind "client" ]
//	  edge [ source 0 target 1 bandwidth 10000000 latency 0.005 loss 0.0001 queue 10 cost 3.5 ]
//	]

// WriteGML serializes g to w in GML form. Links are written as directed
// edges; node IDs are the graph's dense IDs.
func WriteGML(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph [")
	fmt.Fprintln(bw, "  directed 1")
	for _, n := range g.Nodes {
		fmt.Fprintf(bw, "  node [ id %d label %q kind %q ]\n", n.ID, n.Name, n.Kind.String())
	}
	for _, l := range g.Links {
		fmt.Fprintf(bw, "  edge [ source %d target %d bandwidth %g latency %g loss %g queue %d cost %g ]\n",
			l.Src, l.Dst, l.Attr.BandwidthBps, l.Attr.LatencySec, l.Attr.LossRate, l.Attr.QueuePkts, l.Attr.Cost)
	}
	fmt.Fprintln(bw, "]")
	return bw.Flush()
}

type gmlToken struct {
	text string
}

func tokenizeGML(r io.Reader) ([]gmlToken, error) {
	var toks []gmlToken
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		rest := line
		for len(rest) > 0 {
			rest = strings.TrimLeft(rest, " \t\r")
			if len(rest) == 0 {
				break
			}
			switch rest[0] {
			case '[', ']':
				toks = append(toks, gmlToken{string(rest[0])})
				rest = rest[1:]
			case '"':
				end := strings.IndexByte(rest[1:], '"')
				if end < 0 {
					return nil, fmt.Errorf("gml: unterminated string in %q", line)
				}
				toks = append(toks, gmlToken{rest[:end+2]})
				rest = rest[end+2:]
			default:
				n := strings.IndexAny(rest, " \t\r[]")
				if n < 0 {
					n = len(rest)
				}
				toks = append(toks, gmlToken{rest[:n]})
				rest = rest[n:]
			}
		}
	}
	return toks, sc.Err()
}

// gmlValue is either a scalar string or a nested list of key/value pairs.
type gmlValue struct {
	scalar string
	list   []gmlKV
}

type gmlKV struct {
	key string
	val gmlValue
}

func parseGMLList(toks []gmlToken, pos int) ([]gmlKV, int, error) {
	var kvs []gmlKV
	for pos < len(toks) {
		if toks[pos].text == "]" {
			return kvs, pos + 1, nil
		}
		key := toks[pos].text
		pos++
		if pos >= len(toks) {
			return nil, pos, fmt.Errorf("gml: key %q at end of input", key)
		}
		if toks[pos].text == "[" {
			sub, np, err := parseGMLList(toks, pos+1)
			if err != nil {
				return nil, np, err
			}
			kvs = append(kvs, gmlKV{key, gmlValue{list: sub}})
			pos = np
		} else {
			kvs = append(kvs, gmlKV{key, gmlValue{scalar: toks[pos].text}})
			pos++
		}
	}
	return kvs, pos, nil
}

func (v gmlValue) str() string {
	s := v.scalar
	if len(s) >= 2 && s[0] == '"' {
		if u, err := strconv.Unquote(s); err == nil {
			return u
		}
		return strings.Trim(s, `"`)
	}
	return s
}

func (v gmlValue) float() (float64, error) { return strconv.ParseFloat(v.str(), 64) }

func (v gmlValue) int() (int, error) { return strconv.Atoi(v.str()) }

// ReadGML parses a GML document into a Graph. Unknown keys are ignored so
// graphs produced by external tools (GT-ITM, BRITE conversions) load as long
// as they carry node id and edge source/target. Node kinds default to Stub
// when unspecified; bandwidth defaults to defaultBw if the edge carries none.
func ReadGML(r io.Reader) (*Graph, error) {
	const defaultBw = 100e6
	toks, err := tokenizeGML(r)
	if err != nil {
		return nil, err
	}
	top, _, err := parseGMLList(toks, 0)
	if err != nil {
		return nil, err
	}
	var graphKVs []gmlKV
	for _, kv := range top {
		if kv.key == "graph" && kv.val.list != nil {
			graphKVs = kv.val.list
			break
		}
	}
	if graphKVs == nil {
		return nil, fmt.Errorf("gml: no graph [...] block found")
	}

	type rawNode struct {
		extID int
		name  string
		kind  NodeKind
	}
	type rawEdge struct {
		src, dst int
		attr     LinkAttrs
	}
	var nodes []rawNode
	var edges []rawEdge
	directed := false

	for _, kv := range graphKVs {
		switch kv.key {
		case "directed":
			if n, err := kv.val.int(); err == nil && n != 0 {
				directed = true
			}
		case "node":
			rn := rawNode{extID: -1, kind: Stub}
			for _, f := range kv.val.list {
				switch f.key {
				case "id":
					if n, err := f.val.int(); err == nil {
						rn.extID = n
					}
				case "label":
					rn.name = f.val.str()
				case "kind":
					switch strings.ToLower(f.val.str()) {
					case "client":
						rn.kind = Client
					case "transit":
						rn.kind = Transit
					case "stub":
						rn.kind = Stub
					}
				}
			}
			if rn.extID < 0 {
				return nil, fmt.Errorf("gml: node without id")
			}
			nodes = append(nodes, rn)
		case "edge":
			re := rawEdge{src: -1, dst: -1, attr: LinkAttrs{BandwidthBps: defaultBw}}
			for _, f := range kv.val.list {
				switch f.key {
				case "source":
					if n, err := f.val.int(); err == nil {
						re.src = n
					}
				case "target":
					if n, err := f.val.int(); err == nil {
						re.dst = n
					}
				case "bandwidth", "bw":
					if v, err := f.val.float(); err == nil {
						re.attr.BandwidthBps = v
					}
				case "latency", "delay":
					if v, err := f.val.float(); err == nil {
						re.attr.LatencySec = v
					}
				case "loss":
					if v, err := f.val.float(); err == nil {
						re.attr.LossRate = v
					}
				case "queue":
					if n, err := f.val.int(); err == nil {
						re.attr.QueuePkts = n
					}
				case "cost":
					if v, err := f.val.float(); err == nil {
						re.attr.Cost = v
					}
				}
			}
			if re.src < 0 || re.dst < 0 {
				return nil, fmt.Errorf("gml: edge without source/target")
			}
			edges = append(edges, re)
		}
	}

	// External IDs may be sparse; remap to dense IDs in ascending order.
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].extID < nodes[j].extID })
	remap := make(map[int]NodeID, len(nodes))
	g := New()
	for _, rn := range nodes {
		if _, dup := remap[rn.extID]; dup {
			return nil, fmt.Errorf("gml: duplicate node id %d", rn.extID)
		}
		remap[rn.extID] = g.AddNode(rn.kind, rn.name)
	}
	for _, re := range edges {
		s, ok1 := remap[re.src]
		d, ok2 := remap[re.dst]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("gml: edge references unknown node %d->%d", re.src, re.dst)
		}
		if directed {
			g.AddLink(s, d, re.attr)
		} else {
			g.AddDuplex(s, d, re.attr)
		}
	}
	return g, nil
}
