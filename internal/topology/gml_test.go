package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestGMLRoundTrip(t *testing.T) {
	g := Ring(4, 2, std(), LinkAttrs{BandwidthBps: Mbps(2), LatencySec: Ms(1), LossRate: 0.01, QueuePkts: 7, Cost: 3.25})
	var buf bytes.Buffer
	if err := WriteGML(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumLinks() != g.NumLinks() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d links",
			g2.NumNodes(), g.NumNodes(), g2.NumLinks(), g.NumLinks())
	}
	for i := range g.Nodes {
		if g.Nodes[i].Kind != g2.Nodes[i].Kind || g.Nodes[i].Name != g2.Nodes[i].Name {
			t.Fatalf("node %d mismatch: %+v vs %+v", i, g.Nodes[i], g2.Nodes[i])
		}
	}
	for i := range g.Links {
		a, b := g.Links[i], g2.Links[i]
		if a.Src != b.Src || a.Dst != b.Dst || a.Attr != b.Attr {
			t.Fatalf("link %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadGMLUndirected(t *testing.T) {
	src := `
# a comment
graph [
  node [ id 10 label "x" kind "client" ]
  node [ id 20 label "y" ]
  edge [ source 10 target 20 bandwidth 5e6 latency 0.01 ]
]`
	g, err := ReadGML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Undirected edge becomes a duplex pair.
	if g.NumLinks() != 2 {
		t.Fatalf("links = %d, want duplex 2", g.NumLinks())
	}
	if g.Nodes[0].Kind != Client || g.Nodes[1].Kind != Stub {
		t.Errorf("kinds: %v %v", g.Nodes[0].Kind, g.Nodes[1].Kind)
	}
	if g.Links[0].Attr.BandwidthBps != 5e6 {
		t.Errorf("bandwidth = %v", g.Links[0].Attr.BandwidthBps)
	}
}

func TestReadGMLSparseIDs(t *testing.T) {
	src := `graph [ directed 1
  node [ id 100 ]
  node [ id 5 ]
  edge [ source 100 target 5 bandwidth 1e6 ]
]`
	g, err := ReadGML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// id 5 sorts before 100, becomes dense 0.
	if g.NumNodes() != 2 || g.NumLinks() != 1 {
		t.Fatalf("%d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	if g.Links[0].Src != 1 || g.Links[0].Dst != 0 {
		t.Errorf("remap wrong: %+v", g.Links[0])
	}
}

func TestReadGMLErrors(t *testing.T) {
	cases := map[string]string{
		"no graph":      `foo [ ]`,
		"node no id":    `graph [ node [ label "x" ] ]`,
		"edge no nodes": `graph [ edge [ source 0 ] ]`,
		"bad edge ref":  `graph [ node [ id 0 ] edge [ source 0 target 9 ] ]`,
		"dup node id":   `graph [ node [ id 0 ] node [ id 0 ] ]`,
		"bad string":    "graph [ node [ id 0 label \"unterminated ] ]",
	}
	for name, src := range cases {
		if _, err := ReadGML(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadGMLIgnoresUnknownKeys(t *testing.T) {
	src := `graph [ directed 1
  creator "gt-itm"
  node [ id 0 x 1.5 y 2.5 ]
  node [ id 1 ]
  edge [ source 0 target 1 bandwidth 1e6 weight 12 ]
]`
	g, err := ReadGML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumLinks() != 1 {
		t.Fatalf("%d nodes %d links", g.NumNodes(), g.NumLinks())
	}
}
