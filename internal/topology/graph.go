// Package topology implements the Create phase of ModelNet: target network
// graphs whose nodes are clients, stubs, or transits (terminology borrowed
// from GT-ITM) and whose edges are links annotated with bandwidth, latency,
// loss rate, and queue capacity. It includes a GML reader/writer and
// synthetic generators (ring, star, line, mesh, random, transit-stub).
package topology

import (
	"fmt"
	"sort"
)

// NodeKind classifies a topology node.
type NodeKind int

const (
	// Client nodes host virtual edge nodes (VNs): application endpoints.
	Client NodeKind = iota
	// Stub nodes are stub-domain routers near the edge.
	Stub
	// Transit nodes are backbone routers.
	Transit
)

func (k NodeKind) String() string {
	switch k {
	case Client:
		return "client"
	case Stub:
		return "stub"
	case Transit:
		return "transit"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// NodeID names a node within a Graph. IDs are dense, starting at 0.
type NodeID int

// LinkID names a directed link within a Graph. IDs are dense, starting at 0.
type LinkID int

// Node is one vertex of the target topology.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string // optional label carried through GML
}

// LinkClass tags the structural role of a link so that annotation policies
// ("all transit-transit links get 155 Mb/s") can be applied en masse.
type LinkClass int

const (
	ClientStub     LinkClass = iota // client <-> stub access ("last mile")
	StubStub                        // within or between stub domains
	StubTransit                     // stub domain to backbone
	TransitTransit                  // backbone
)

func (c LinkClass) String() string {
	switch c {
	case ClientStub:
		return "client-stub"
	case StubStub:
		return "stub-stub"
	case StubTransit:
		return "stub-transit"
	case TransitTransit:
		return "transit-transit"
	}
	return fmt.Sprintf("LinkClass(%d)", int(c))
}

// LinkAttrs are the emulation parameters of one directed link. These become
// pipe parameters after distillation.
type LinkAttrs struct {
	BandwidthBps float64 // bits per second
	LatencySec   float64 // one-way propagation delay, seconds
	LossRate     float64 // [0,1) random drop probability
	QueuePkts    int     // queue capacity in packets (0 = default)
	Cost         float64 // abstract routing/overlay cost (ACDC §5.3)
}

// Reliability returns 1-LossRate, the per-link delivery probability.
func (a LinkAttrs) Reliability() float64 { return 1 - a.LossRate }

// Link is one directed edge of the target topology. Bidirectional physical
// links are represented as two directed links (the paper's pipes are
// unidirectional).
type Link struct {
	ID   LinkID
	Src  NodeID
	Dst  NodeID
	Attr LinkAttrs
}

// Class derives the structural class of the link from its endpoints.
func (g *Graph) Class(l Link) LinkClass {
	a, b := g.Nodes[l.Src].Kind, g.Nodes[l.Dst].Kind
	switch {
	case a == Client || b == Client:
		return ClientStub
	case a == Transit && b == Transit:
		return TransitTransit
	case a == Stub && b == Stub:
		return StubStub
	default:
		return StubTransit
	}
}

// Graph is a directed multigraph over dense node and link IDs.
type Graph struct {
	Nodes []Node
	Links []Link
	out   [][]LinkID // adjacency: outgoing links per node
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddNode appends a node of the given kind and returns its ID.
func (g *Graph) AddNode(kind NodeKind, name string) NodeID {
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: kind, Name: name})
	g.out = append(g.out, nil)
	return id
}

// AddLink appends a directed link and returns its ID.
func (g *Graph) AddLink(src, dst NodeID, attr LinkAttrs) LinkID {
	if !g.valid(src) || !g.valid(dst) {
		panic(fmt.Sprintf("topology: AddLink(%d,%d) with %d nodes", src, dst, len(g.Nodes)))
	}
	id := LinkID(len(g.Links))
	g.Links = append(g.Links, Link{ID: id, Src: src, Dst: dst, Attr: attr})
	g.out[src] = append(g.out[src], id)
	return id
}

// AddDuplex adds a pair of directed links (one each way) with identical
// attributes, returning their IDs.
func (g *Graph) AddDuplex(a, b NodeID, attr LinkAttrs) (LinkID, LinkID) {
	return g.AddLink(a, b, attr), g.AddLink(b, a, attr)
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < len(g.Nodes) }

// Out returns the IDs of links leaving n.
func (g *Graph) Out(n NodeID) []LinkID { return g.out[n] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumLinks returns the directed-link count.
func (g *Graph) NumLinks() int { return len(g.Links) }

// Clients returns the IDs of all client nodes, in ID order.
func (g *Graph) Clients() []NodeID {
	var out []NodeID
	for _, n := range g.Nodes {
		if n.Kind == Client {
			out = append(out, n.ID)
		}
	}
	return out
}

// NodesOfKind returns the IDs of all nodes of the given kind, in ID order.
func (g *Graph) NodesOfKind(kind NodeKind) []NodeID {
	var out []NodeID
	for _, n := range g.Nodes {
		if n.Kind == kind {
			out = append(out, n.ID)
		}
	}
	return out
}

// Neighbors returns the distinct nodes reachable over one outgoing link from
// n, in ascending order.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, lid := range g.out[n] {
		d := g.Links[lid].Dst
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindLink returns the first link from src to dst, if any.
func (g *Graph) FindLink(src, dst NodeID) (Link, bool) {
	for _, lid := range g.out[src] {
		if g.Links[lid].Dst == dst {
			return g.Links[lid], true
		}
	}
	return Link{}, false
}

// Validate checks structural invariants: endpoint IDs are in range, no
// self-loops, and every client node has at least one link (clients host VNs
// and must be reachable). It returns the first problem found.
func (g *Graph) Validate() error {
	for _, l := range g.Links {
		if !g.valid(l.Src) || !g.valid(l.Dst) {
			return fmt.Errorf("topology: link %d has endpoint out of range", l.ID)
		}
		if l.Src == l.Dst {
			return fmt.Errorf("topology: link %d is a self-loop on node %d", l.ID, l.Src)
		}
		if l.Attr.BandwidthBps <= 0 {
			return fmt.Errorf("topology: link %d has non-positive bandwidth", l.ID)
		}
		if l.Attr.LatencySec < 0 {
			return fmt.Errorf("topology: link %d has negative latency", l.ID)
		}
		if l.Attr.LossRate < 0 || l.Attr.LossRate >= 1 {
			return fmt.Errorf("topology: link %d loss rate %v outside [0,1)", l.ID, l.Attr.LossRate)
		}
	}
	for _, n := range g.Nodes {
		if n.Kind == Client && len(g.out[n.ID]) == 0 {
			return fmt.Errorf("topology: client node %d has no links", n.ID)
		}
	}
	return nil
}

// Connected reports whether every node is reachable from node 0 following
// directed links. The empty graph is connected.
func (g *Graph) Connected() bool {
	if len(g.Nodes) == 0 {
		return true
	}
	seen := make([]bool, len(g.Nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, lid := range g.out[n] {
			d := g.Links[lid].Dst
			if !seen[d] {
				seen[d] = true
				count++
				stack = append(stack, d)
			}
		}
	}
	return count == len(g.Nodes)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		Nodes: append([]Node(nil), g.Nodes...),
		Links: append([]Link(nil), g.Links...),
		out:   make([][]LinkID, len(g.out)),
	}
	for i, l := range g.out {
		ng.out[i] = append([]LinkID(nil), l...)
	}
	return ng
}

// NewSkeleton builds a sparse graph over the full ID spaces of a larger
// world: numNodes anonymous nodes and numLinks link slots, of which only the
// given links are real. Real links keep their global IDs (each must satisfy
// 0 ≤ ID < numLinks); the remaining slots hold zero-valued placeholders whose
// ID is set but whose endpoints must never be dereferenced. Adjacency is
// built over real links only, so Out() at any node enumerates exactly the
// view's links. This is the worker-side shape of a sharded world: global IDs
// stay valid as array indexes while only O(shard) links carry data.
func NewSkeleton(numNodes, numLinks int, links []Link) (*Graph, error) {
	g := &Graph{
		Nodes: make([]Node, numNodes),
		Links: make([]Link, numLinks),
		out:   make([][]LinkID, numNodes),
	}
	for i := range g.Nodes {
		g.Nodes[i] = Node{ID: NodeID(i), Kind: Stub}
	}
	for i := range g.Links {
		g.Links[i] = Link{ID: LinkID(i), Src: -1, Dst: -1}
	}
	for _, l := range links {
		if l.ID < 0 || int(l.ID) >= numLinks {
			return nil, fmt.Errorf("topology: skeleton link ID %d outside %d slots", l.ID, numLinks)
		}
		if !g.valid(l.Src) || !g.valid(l.Dst) {
			return nil, fmt.Errorf("topology: skeleton link %d has endpoint out of range", l.ID)
		}
		if g.Links[l.ID].Src >= 0 {
			return nil, fmt.Errorf("topology: skeleton link ID %d listed twice", l.ID)
		}
		g.Links[l.ID] = l
		g.out[l.Src] = append(g.out[l.Src], l.ID)
	}
	return g, nil
}

// AnnotateClass sets the attributes of every link in the given class.
// It returns the number of links updated. Users annotate GML graphs with
// attributes not provided by the source (§2.1).
func (g *Graph) AnnotateClass(class LinkClass, attr LinkAttrs) int {
	n := 0
	for i := range g.Links {
		if g.Class(g.Links[i]) == class {
			g.Links[i].Attr = attr
			n++
		}
	}
	return n
}
