package topology

import (
	"testing"
	"testing/quick"
)

func std() LinkAttrs {
	return LinkAttrs{BandwidthBps: Mbps(10), LatencySec: Ms(5), QueuePkts: 10}
}

func TestAddAndLookup(t *testing.T) {
	g := New()
	a := g.AddNode(Client, "a")
	b := g.AddNode(Stub, "b")
	l1, l2 := g.AddDuplex(a, b, std())
	if g.NumNodes() != 2 || g.NumLinks() != 2 {
		t.Fatalf("counts: %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	if g.Links[l1].Src != a || g.Links[l1].Dst != b {
		t.Errorf("l1 endpoints wrong")
	}
	if g.Links[l2].Src != b || g.Links[l2].Dst != a {
		t.Errorf("l2 endpoints wrong")
	}
	if got, ok := g.FindLink(a, b); !ok || got.ID != l1 {
		t.Errorf("FindLink(a,b) = %v,%v", got, ok)
	}
	if _, ok := g.FindLink(b, NodeID(99)); ok {
		t.Errorf("FindLink to bogus node succeeded")
	}
	if n := g.Neighbors(a); len(n) != 1 || n[0] != b {
		t.Errorf("Neighbors(a) = %v", n)
	}
}

func TestValidate(t *testing.T) {
	g := New()
	a := g.AddNode(Client, "a")
	b := g.AddNode(Stub, "b")
	g.AddDuplex(a, b, std())
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}

	bad := g.Clone()
	bad.Links[0].Attr.BandwidthBps = 0
	if bad.Validate() == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = g.Clone()
	bad.Links[0].Attr.LossRate = 1.0
	if bad.Validate() == nil {
		t.Error("loss rate 1.0 accepted")
	}
	bad = g.Clone()
	bad.Links[0].Dst = bad.Links[0].Src
	if bad.Validate() == nil {
		t.Error("self loop accepted")
	}
	lonely := New()
	lonely.AddNode(Client, "x")
	if lonely.Validate() == nil {
		t.Error("linkless client accepted")
	}
}

func TestLinkClass(t *testing.T) {
	g := New()
	c := g.AddNode(Client, "c")
	s1 := g.AddNode(Stub, "s1")
	s2 := g.AddNode(Stub, "s2")
	t1 := g.AddNode(Transit, "t1")
	t2 := g.AddNode(Transit, "t2")
	cases := []struct {
		a, b NodeID
		want LinkClass
	}{
		{c, s1, ClientStub},
		{s1, s2, StubStub},
		{s1, t1, StubTransit},
		{t1, t2, TransitTransit},
		{c, t1, ClientStub}, // client wins
	}
	for _, tc := range cases {
		id := g.AddLink(tc.a, tc.b, std())
		if got := g.Class(g.Links[id]); got != tc.want {
			t.Errorf("Class(%v->%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAnnotateClass(t *testing.T) {
	g := Ring(4, 2, std(), LinkAttrs{BandwidthBps: Mbps(2), LatencySec: Ms(1), QueuePkts: 5})
	fat := LinkAttrs{BandwidthBps: Mbps(80), LatencySec: Ms(5), QueuePkts: 20}
	n := g.AnnotateClass(StubStub, fat)
	if n != 8 { // 4 ring segments, duplex
		t.Fatalf("annotated %d links, want 8", n)
	}
	for _, l := range g.Links {
		if g.Class(l) == StubStub && l.Attr.BandwidthBps != Mbps(80) {
			t.Errorf("ring link %d not annotated", l.ID)
		}
		if g.Class(l) == ClientStub && l.Attr.BandwidthBps != Mbps(2) {
			t.Errorf("access link %d was clobbered", l.ID)
		}
	}
}

func TestRingShape(t *testing.T) {
	// Paper §4.1: 20 routers, 20 VNs each => 419 pipes shared among 400 VNs.
	// The paper counts bidirectional pipes... our directed count: ring has
	// 20 duplex transit links + 400 duplex access links = 840 directed.
	g := Ring(20, 20, std(), std())
	if got := g.NumNodes(); got != 420 {
		t.Errorf("nodes = %d, want 420", got)
	}
	if got := g.NumLinks(); got != 840 {
		t.Errorf("directed links = %d, want 840", got)
	}
	if got := len(g.Clients()); got != 400 {
		t.Errorf("clients = %d, want 400", got)
	}
	if !g.Connected() {
		t.Error("ring not connected")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestStarShape(t *testing.T) {
	g := Star(10, std())
	if g.NumNodes() != 11 || g.NumLinks() != 20 {
		t.Fatalf("star: %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	if !g.Connected() {
		t.Error("star not connected")
	}
}

func TestLineShape(t *testing.T) {
	for hops := 1; hops <= 12; hops++ {
		g := Line(hops, std())
		// hops router links means hops routers... path = access + (hops-1) inter-router + access = hops+1 links
		wantNodes := 2 + hops
		if g.NumNodes() != wantNodes {
			t.Errorf("Line(%d): %d nodes, want %d", hops, g.NumNodes(), wantNodes)
		}
		if !g.Connected() {
			t.Errorf("Line(%d) not connected", hops)
		}
	}
}

func TestPairsShape(t *testing.T) {
	g := Pairs(5, 3, std())
	if got := len(g.Clients()); got != 10 {
		t.Errorf("clients = %d, want 10", got)
	}
	// Each pair: src + 2 routers + dst, 3 duplex links.
	if g.NumLinks() != 5*3*2 {
		t.Errorf("links = %d, want 30", g.NumLinks())
	}
	if g.Connected() {
		t.Error("Pairs should be disconnected between pairs")
	}
}

func TestFullMesh(t *testing.T) {
	g := FullMesh(6, func(i, j int) LinkAttrs { return std() })
	if g.NumLinks() != 6*5 {
		t.Errorf("links = %d, want 30", g.NumLinks())
	}
	if !g.Connected() {
		t.Error("mesh not connected")
	}
}

func TestRandomConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := Random(RandomConfig{Nodes: 50, Degree: 3, Attr: std(), Seed: seed})
		if !g.Connected() {
			t.Errorf("seed %d: random graph disconnected", seed)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestTransitStub(t *testing.T) {
	cfg := TransitStubConfig{
		TransitDomains:   1,
		TransitPerDomain: 4,
		StubsPerTransit:  3,
		RoutersPerStub:   4,
		ClientsPerStub:   2,
		TransitTransit:   LinkAttrs{BandwidthBps: Mbps(155), LatencySec: Ms(20), QueuePkts: 50},
		TransitStub:      LinkAttrs{BandwidthBps: Mbps(45), LatencySec: Ms(10), QueuePkts: 50},
		StubStub:         LinkAttrs{BandwidthBps: Mbps(100), LatencySec: Ms(2), QueuePkts: 50},
		ClientStub:       LinkAttrs{BandwidthBps: Mbps(1), LatencySec: Ms(1), QueuePkts: 10},
		Seed:             7,
	}
	g := TransitStub(cfg)
	wantClients := 4 * 3 * 2
	if got := len(g.Clients()); got != wantClients {
		t.Errorf("clients = %d, want %d", got, wantClients)
	}
	if !g.Connected() {
		t.Error("transit-stub disconnected")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Every client-stub link must carry the client attrs.
	for _, l := range g.Links {
		if g.Class(l) == ClientStub && l.Attr.BandwidthBps != Mbps(1) {
			t.Errorf("client link %d has bandwidth %v", l.ID, l.Attr.BandwidthBps)
		}
	}
}

func TestJitterCosts(t *testing.T) {
	g := Ring(6, 1, std(), std())
	g.JitterCosts(StubStub, 20, 40, 1)
	for _, l := range g.Links {
		if g.Class(l) != StubStub {
			continue
		}
		if l.Attr.Cost < 20 || l.Attr.Cost > 40 {
			t.Errorf("cost %v outside [20,40]", l.Attr.Cost)
		}
		rev, ok := g.FindLink(l.Dst, l.Src)
		if !ok || rev.Attr.Cost != l.Attr.Cost {
			t.Errorf("asymmetric duplex cost: %v vs %v", l.Attr.Cost, rev.Attr.Cost)
		}
	}
}

// Property: Clone is deep — mutating the clone never affects the original.
func TestCloneIsolationProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := Random(RandomConfig{Nodes: 10, Degree: 2.5, Attr: std(), Seed: seed})
		c := g.Clone()
		for i := range c.Links {
			c.Links[i].Attr.BandwidthBps = 1
		}
		c.AddNode(Client, "extra")
		for _, l := range g.Links {
			if l.Attr.BandwidthBps == 1 {
				return false
			}
		}
		return g.NumNodes() == 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
