package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// Mbps converts megabits/second to bits/second for LinkAttrs.BandwidthBps.
func Mbps(m float64) float64 { return m * 1e6 }

// Ms converts milliseconds to seconds for LinkAttrs.LatencySec.
func Ms(m float64) float64 { return m * 1e-3 }

// Ring builds the paper's §4.1 distillation benchmark topology: nRouters
// stub routers in a ring connected by transit links, each router serving
// vnsPerRouter client nodes over individual access links.
func Ring(nRouters, vnsPerRouter int, ringAttr, accessAttr LinkAttrs) *Graph {
	g := New()
	routers := make([]NodeID, nRouters)
	for i := range routers {
		routers[i] = g.AddNode(Stub, fmt.Sprintf("ring%d", i))
	}
	for i := range routers {
		g.AddDuplex(routers[i], routers[(i+1)%nRouters], ringAttr)
	}
	for i, r := range routers {
		for j := 0; j < vnsPerRouter; j++ {
			c := g.AddNode(Client, fmt.Sprintf("vn%d-%d", i, j))
			g.AddDuplex(c, r, accessAttr)
		}
	}
	return g
}

// Star builds the §3.3 scaling topology: nClients client nodes all attached
// to a single hub, so every path is exactly two hops.
func Star(nClients int, attr LinkAttrs) *Graph {
	g := New()
	hub := g.AddNode(Transit, "hub")
	for i := 0; i < nClients; i++ {
		c := g.AddNode(Client, fmt.Sprintf("vn%d", i))
		g.AddDuplex(c, hub, attr)
	}
	return g
}

// Line builds a chain of hops+1 routers with a client at each end, so the
// client-to-client path traverses exactly hops router links plus two access
// links. Used by the Fig. 4 capacity experiment to vary per-packet work.
func Line(hops int, attr LinkAttrs) *Graph {
	if hops < 1 {
		hops = 1
	}
	g := New()
	prev := g.AddNode(Client, "src")
	first := g.AddNode(Stub, "r0")
	g.AddDuplex(prev, first, attr)
	cur := first
	for i := 1; i < hops; i++ {
		next := g.AddNode(Stub, fmt.Sprintf("r%d", i))
		g.AddDuplex(cur, next, attr)
		cur = next
	}
	dst := g.AddNode(Client, "dst")
	g.AddDuplex(cur, dst, attr)
	return g
}

// Pairs builds n independent source→sink client pairs, each connected by a
// private chain of hops identical pipes (the Fig. 4 workload: "directly
// connects each sender with a receiver over a configurable number of
// 10 Mb/s pipes").
func Pairs(n, hops int, attr LinkAttrs) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		src := g.AddNode(Client, fmt.Sprintf("send%d", i))
		prev := src
		for h := 0; h < hops-1; h++ {
			r := g.AddNode(Stub, fmt.Sprintf("p%d-r%d", i, h))
			g.AddDuplex(prev, r, attr)
			prev = r
		}
		dst := g.AddNode(Client, fmt.Sprintf("recv%d", i))
		g.AddDuplex(prev, dst, attr)
	}
	return g
}

// FullMesh builds n client nodes with a direct duplex link between every
// pair — the shape of an end-to-end distilled topology, and of the RON
// testbed used in §5.1. attrFn supplies per-pair attributes.
func FullMesh(n int, attrFn func(i, j int) LinkAttrs) *Graph {
	g := New()
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode(Client, fmt.Sprintf("site%d", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a := attrFn(i, j)
			g.AddDuplex(ids[i], ids[j], a)
		}
	}
	return g
}

// RandomConfig parameterizes Waxman-style random graph generation.
type RandomConfig struct {
	Nodes  int
	Degree float64 // target average degree
	Attr   LinkAttrs
	Seed   int64
}

// Random builds a connected random graph: a random spanning tree plus extra
// random edges until the target average degree is met.
func Random(cfg RandomConfig) *Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := New()
	n := cfg.Nodes
	for i := 0; i < n; i++ {
		g.AddNode(Stub, fmt.Sprintf("n%d", i))
	}
	// Random spanning tree guarantees connectivity.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := NodeID(perm[i])
		b := NodeID(perm[rng.Intn(i)])
		g.AddDuplex(a, b, cfg.Attr)
	}
	type pair struct{ a, b NodeID }
	have := map[pair]bool{}
	for _, l := range g.Links {
		have[pair{l.Src, l.Dst}] = true
	}
	wantLinks := int(cfg.Degree * float64(n) / 2)
	for tries := 0; len(g.Links)/2 < wantLinks && tries < 20*wantLinks; tries++ {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a == b || have[pair{a, b}] {
			continue
		}
		have[pair{a, b}] = true
		have[pair{b, a}] = true
		g.AddDuplex(a, b, cfg.Attr)
	}
	return g
}

// TransitStubConfig parameterizes the GT-ITM-style generator used by the
// §5.2 (320-node) and §5.3 (600-node) case studies.
type TransitStubConfig struct {
	TransitDomains    int // number of transit domains
	TransitPerDomain  int // routers per transit domain
	StubsPerTransit   int // stub domains hanging off each transit router
	RoutersPerStub    int // routers per stub domain
	ClientsPerStub    int // client nodes attached per stub domain
	TransitTransit    LinkAttrs
	TransitStub       LinkAttrs
	StubStub          LinkAttrs
	ClientStub        LinkAttrs
	ExtraStubEdgeProb float64 // probability of an extra intra-stub edge per router pair
	Seed              int64
}

// TransitStub builds a GT-ITM-style transit-stub topology: a clique-ish core
// of transit routers, stub domains (small connected router groups) attached
// to transit routers, and clients attached to stub routers round-robin.
func TransitStub(cfg TransitStubConfig) *Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := New()

	// Transit core: each domain is a ring + chords; domains interconnected.
	var transit []NodeID
	domains := make([][]NodeID, cfg.TransitDomains)
	for d := 0; d < cfg.TransitDomains; d++ {
		for i := 0; i < cfg.TransitPerDomain; i++ {
			id := g.AddNode(Transit, fmt.Sprintf("t%d-%d", d, i))
			domains[d] = append(domains[d], id)
			transit = append(transit, id)
		}
		dd := domains[d]
		for i := range dd {
			if len(dd) > 1 {
				g.AddDuplex(dd[i], dd[(i+1)%len(dd)], cfg.TransitTransit)
			}
		}
		// A chord for diameter reduction in larger domains.
		if len(dd) >= 4 {
			g.AddDuplex(dd[0], dd[len(dd)/2], cfg.TransitTransit)
		}
	}
	for d := 1; d < cfg.TransitDomains; d++ {
		a := domains[d-1][rng.Intn(len(domains[d-1]))]
		b := domains[d][rng.Intn(len(domains[d]))]
		g.AddDuplex(a, b, cfg.TransitTransit)
	}

	// Stub domains.
	clientTurn := 0
	for _, t := range transit {
		for s := 0; s < cfg.StubsPerTransit; s++ {
			var stub []NodeID
			for r := 0; r < cfg.RoutersPerStub; r++ {
				stub = append(stub, g.AddNode(Stub, fmt.Sprintf("s%d-%d-%d", t, s, r)))
			}
			for i := 1; i < len(stub); i++ {
				g.AddDuplex(stub[i-1], stub[i], cfg.StubStub)
			}
			for i := 0; i < len(stub); i++ {
				for j := i + 2; j < len(stub); j++ {
					if rng.Float64() < cfg.ExtraStubEdgeProb {
						g.AddDuplex(stub[i], stub[j], cfg.StubStub)
					}
				}
			}
			g.AddDuplex(t, stub[0], cfg.TransitStub)
			for c := 0; c < cfg.ClientsPerStub; c++ {
				cl := g.AddNode(Client, fmt.Sprintf("c%d", clientTurn))
				clientTurn++
				g.AddDuplex(cl, stub[c%len(stub)], cfg.ClientStub)
			}
		}
	}
	return g
}

// JitterCosts assigns each link of the given class a Cost drawn uniformly
// from [lo,hi], as in the ACDC experiment (§5.3: transit-transit cost 20-40,
// transit-stub 10-20, stub-stub 1-5).
func (g *Graph) JitterCosts(class LinkClass, lo, hi float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	// Assign the same cost to both directions of a duplex pair: iterate and
	// remember reverse assignments.
	type pair struct{ a, b NodeID }
	assigned := map[pair]float64{}
	for i := range g.Links {
		l := &g.Links[i]
		if g.Class(*l) != class {
			continue
		}
		if c, ok := assigned[pair{l.Dst, l.Src}]; ok {
			l.Attr.Cost = c
			continue
		}
		c := lo + rng.Float64()*(hi-lo)
		c = math.Round(c*100) / 100
		l.Attr.Cost = c
		assigned[pair{l.Src, l.Dst}] = c
	}
}
