package experiments

import (
	"io"

	"modelnet"
	"modelnet/internal/netstack"
	"modelnet/internal/traffic"
	"modelnet/internal/vtime"
)

// Accuracy reproduces §3.1's baseline accuracy claim: with the scheduler
// at the kernel's highest priority, every packet-hop is emulated to within
// the 100 µs timer granularity up to 100% CPU utilization — at most
// hops × 100 µs end-to-end (1 ms over a 10-hop path), and within a single
// tick once packet-debt correction (the paper's in-progress optimization)
// is enabled.

// AccuracyConfig parameterizes the experiment.
type AccuracyConfig struct {
	Hops     int
	Flows    int
	Duration modelnet.Duration
	Debt     bool
	Seed     int64
}

// DefaultAccuracy loads a 10-hop path heavily.
func DefaultAccuracy() AccuracyConfig {
	return AccuracyConfig{Hops: 10, Flows: 48, Duration: modelnet.Seconds(2), Seed: 8}
}

// ScaledAccuracy shrinks the load.
func ScaledAccuracy(scale float64) AccuracyConfig {
	cfg := DefaultAccuracy()
	if scale < 1 {
		cfg.Flows = 16
		cfg.Duration = modelnet.Seconds(1)
	}
	return cfg
}

// AccuracyResult summarizes per-packet delivery lag.
type AccuracyResult struct {
	Debt      bool
	Packets   uint64
	MeanLagUs float64
	MaxLagUs  float64
	BoundUs   float64 // the claimed bound: hops×tick (or one tick with debt)
	Within    bool
}

// RunAccuracy measures both modes.
func RunAccuracy(cfg AccuracyConfig) ([]AccuracyResult, error) {
	var out []AccuracyResult
	for _, debt := range []bool{false, true} {
		r, err := runAccuracyPoint(cfg, debt)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func runAccuracyPoint(cfg AccuracyConfig, debt bool) (AccuracyResult, error) {
	attr := modelnet.LinkAttrs{
		BandwidthBps: modelnet.Mbps(10),
		LatencySec:   modelnet.Ms(10) / float64(cfg.Hops),
		QueuePkts:    20,
	}
	g := modelnet.Pairs(cfg.Flows, cfg.Hops, attr)
	prof := modelnet.DefaultProfile()
	prof.DebtHandling = debt
	em, err := modelnet.Run(g, modelnet.Options{RouteCache: cfg.Flows * 8, Profile: &prof, Seed: cfg.Seed})
	if err != nil {
		return AccuracyResult{}, err
	}
	for i := 0; i < cfg.Flows; i++ {
		src := em.NewHost(modelnet.VN(2 * i))
		dst := em.NewHost(modelnet.VN(2*i + 1))
		if _, err := traffic.NewSink(dst, 80); err != nil {
			return AccuracyResult{}, err
		}
		start := modelnet.Time(int64(i) * int64(100*vtimeMillisecond) / int64(cfg.Flows))
		em.Sched.At(start, func() {
			traffic.StartBulk(src, netstack.Endpoint{VN: dst.VN(), Port: 80}, traffic.Unbounded)
		})
	}
	em.RunFor(cfg.Duration)
	acc := em.Emu.Accuracy
	bound := vtime.Duration(cfg.Hops+1) * prof.Tick
	if debt {
		bound = prof.Tick
	}
	return AccuracyResult{
		Debt:      debt,
		Packets:   acc.Count,
		MeanLagUs: acc.MeanLag().Micros(),
		MaxLagUs:  vtime.Duration(acc.MaxLag).Micros(),
		BoundUs:   bound.Micros(),
		Within:    acc.WithinBound(bound),
	}, nil
}

// PrintAccuracy renders the results.
func PrintAccuracy(w io.Writer, rows []AccuracyResult) {
	fprintf(w, "Baseline accuracy (§3.1): per-packet delivery lag under load\n")
	fprintf(w, "%6s %10s %12s %12s %10s %7s\n", "debt", "packets", "mean (µs)", "max (µs)", "bound", "within")
	for _, r := range rows {
		fprintf(w, "%6v %10d %12.1f %12.1f %10.0f %7v\n",
			r.Debt, r.Packets, r.MeanLagUs, r.MaxLagUs, r.BoundUs, r.Within)
	}
}
