package experiments

import (
	"fmt"
	"io"

	"modelnet"
	"modelnet/internal/apps/cfs"
	"modelnet/internal/apps/chord"
	"modelnet/internal/edge"
	"modelnet/internal/netstack"
	"modelnet/internal/stats"
	"modelnet/internal/traffic"
	"modelnet/internal/vtime"
)

// Figures 7-9 (§5.1) reproduce the published CFS results on a RON-like
// topology: download speed of a 1 MB file striped over Chord/DHash as a
// function of the prefetch window (Fig. 7, with 12 VNs on 12 machines vs
// all on one machine), the per-node CDF at windows 8/24/40 KB (Fig. 8),
// and plain TCP transfer-speed CDFs for 8/64/1126 KB files between node
// pairs (Fig. 9).

// CFSConfig parameterizes the §5.1 experiments.
type CFSConfig struct {
	Sites      []cfs.SiteClass
	FileBytes  int
	WindowsKB  []int // Fig. 7 sweep
	CDFWindows []int // Fig. 8 windows (KB)
	Seed       int64
	// Downloaders lists which nodes run a download per point (Fig. 7
	// averages over them; Fig. 8 uses all).
	Downloaders []int
	// Cores/Parallel/Profile select the core-cluster configuration (the
	// zero values preserve the paper runs: one core, default profile).
	Cores    int
	Parallel bool
	Profile  *modelnet.Profile
}

// DefaultCFS is the full configuration.
func DefaultCFS() CFSConfig {
	return CFSConfig{
		Sites:       cfs.RONSites,
		FileBytes:   1 << 20,
		WindowsKB:   []int{0, 8, 16, 24, 32, 40, 56, 72, 96, 128, 192, 256},
		CDFWindows:  []int{8, 24, 40},
		Seed:        5,
		Downloaders: []int{0, 3, 6, 9},
	}
}

// ScaledCFS trims the sweep.
func ScaledCFS(scale float64) CFSConfig {
	cfg := DefaultCFS()
	if scale < 1 {
		cfg.WindowsKB = []int{0, 24, 96}
		cfg.CDFWindows = []int{8, 40}
		cfg.Downloaders = []int{0, 6}
	}
	return cfg
}

// cfsCluster is a bootstrapped CFS deployment over the RON-like mesh.
type cfsCluster struct {
	em    *modelnet.Emulation
	peers []*cfs.Peer
}

// newCFSCluster builds the deployment; oneMachine multiplexes all 12 VNs
// onto a single modeled edge machine (the paper's "ModelNet 1 machine"
// curve).
func newCFSCluster(cfg CFSConfig, oneMachine bool) (*cfsCluster, error) {
	g := cfs.RONTopology(cfg.Sites, cfg.Seed)
	em, err := modelnet.Run(g, modelnet.Options{
		Seed:     cfg.Seed,
		Cores:    cfg.Cores,
		Parallel: cfg.Parallel,
		Profile:  cfg.Profile,
	})
	if err != nil {
		return nil, err
	}
	var machine *edge.Machine
	var inj netstack.Injector
	if oneMachine {
		// The one-machine model needs the single sequential scheduler; it
		// is a sequential-mode experiment by construction.
		if em.Par != nil {
			return nil, fmt.Errorf("cfs: the one-machine variant requires sequential mode (Parallel=false)")
		}
		mc := edge.DefaultMachineConfig()
		machine = edge.NewMachine(em.Sched, mc)
		inj = machine.WrapInjector(em.Emu)
	}
	cl := &cfsCluster{em: em}
	var cnodes []*chord.Node
	for i := 0; i < em.NumVNs(); i++ {
		var h *netstack.Host
		if oneMachine {
			machine.AddProcess()
			h = em.NewHostVia(modelnet.VN(i), inj)
		} else {
			h = em.NewHost(modelnet.VN(i))
		}
		// Generous RPC timeouts: RON paths reach ~300 ms RTT and block
		// transfers queue behind large prefetch windows.
		ccfg := chord.Config{RPCTimeout: 2 * vtime.Second, RPCRetries: 3}
		p, err := cfs.NewPeer(h, chord.HashString(fmt.Sprintf("ron-site-%d", i)), ccfg)
		if err != nil {
			return nil, err
		}
		cl.peers = append(cl.peers, p)
		cnodes = append(cnodes, p.Chord)
	}
	chord.BootstrapAll(cnodes)
	cfs.Stripe(cl.peers, "cfs-1mb", cfg.FileBytes)
	return cl, nil
}

// download runs one fetch and returns its speed in KB/s.
func (cl *cfsCluster) download(cfg CFSConfig, node, windowBytes int) (float64, error) {
	blocks := cfs.FileBlocks("cfs-1mb", cfg.FileBytes)
	var res cfs.FetchResult
	got := false
	cl.peers[node].Fetch(blocks, windowBytes, func(r cfs.FetchResult) { res = r; got = true })
	cl.em.RunUntil(cl.em.Now().Add(modelnet.Seconds(600)))
	if !got {
		return 0, fmt.Errorf("cfs: download from node %d never completed", node)
	}
	if res.Failed > 0 {
		return 0, fmt.Errorf("cfs: %d blocks failed", res.Failed)
	}
	return res.SpeedKBps, nil
}

// Fig7Row is one point of the prefetch sweep.
type Fig7Row struct {
	WindowKB int
	Speed12  float64 // KB/s, 12 physical edge machines
	Speed1   float64 // KB/s, 12 VNs multiplexed on one machine
}

// RunFig7 sweeps the prefetch window for both hosting variants.
func RunFig7(cfg CFSConfig) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, wkb := range cfg.WindowsKB {
		row := Fig7Row{WindowKB: wkb}
		for _, oneMachine := range []bool{false, true} {
			// Fresh cluster per point: downloads must not share TCP or
			// cache state.
			cl, err := newCFSCluster(cfg, oneMachine)
			if err != nil {
				return nil, err
			}
			sum := 0.0
			for _, node := range cfg.Downloaders {
				sp, err := cl.download(cfg, node, wkb<<10)
				if err != nil {
					return nil, err
				}
				sum += sp
			}
			mean := sum / float64(len(cfg.Downloaders))
			if oneMachine {
				row.Speed1 = mean
			} else {
				row.Speed12 = mean
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig7 renders the sweep.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	fprintf(w, "Figure 7: CFS download speed vs prefetch window (KB/s)\n")
	fprintf(w, "%10s %14s %14s\n", "window KB", "12 machines", "1 machine")
	for _, r := range rows {
		fprintf(w, "%10d %14.1f %14.1f\n", r.WindowKB, r.Speed12, r.Speed1)
	}
}

// Fig8Series is a per-window download-speed CDF across nodes.
type Fig8Series struct {
	WindowKB int
	CDF      []stats.CDFPoint
}

// RunFig8 downloads from every node at each window and returns speed CDFs.
func RunFig8(cfg CFSConfig) ([]Fig8Series, error) {
	var out []Fig8Series
	for _, wkb := range cfg.CDFWindows {
		sample := &stats.Sample{}
		for node := range cfg.Sites {
			cl, err := newCFSCluster(cfg, false)
			if err != nil {
				return nil, err
			}
			sp, err := cl.download(cfg, node, wkb<<10)
			if err != nil {
				return nil, err
			}
			sample.Add(sp)
		}
		out = append(out, Fig8Series{WindowKB: wkb, CDF: sample.CDFAt(12)})
	}
	return out, nil
}

// PrintFig8 renders the CDFs.
func PrintFig8(w io.Writer, series []Fig8Series) {
	fprintf(w, "Figure 8: CDF of CFS download speed by prefetch window (KB/s)\n")
	for _, s := range series {
		fprintf(w, "window %3d KB: p25=%7.1f p50=%7.1f p75=%7.1f max=%7.1f\n",
			s.WindowKB, cdfAtP(s.CDF, 0.25), cdfAtP(s.CDF, 0.50), cdfAtP(s.CDF, 0.75), cdfAtP(s.CDF, 1.0))
	}
}

// Fig9Config parameterizes the plain-TCP transfer CDFs.
type Fig9Config struct {
	Sites     []cfs.SiteClass
	SizesKB   []int
	PairLimit int // max ordered pairs per size (0 = all)
	Seed      int64
}

// DefaultFig9 uses the paper's three transfer sizes over all pairs.
func DefaultFig9() Fig9Config {
	return Fig9Config{Sites: cfs.RONSites, SizesKB: []int{8, 64, 1126}, Seed: 5}
}

// ScaledFig9 trims the pair count.
func ScaledFig9(scale float64) Fig9Config {
	cfg := DefaultFig9()
	if scale < 1 {
		cfg.PairLimit = 24
	}
	return cfg
}

// Fig9Series is one transfer-size CDF (speeds in KB/s).
type Fig9Series struct {
	SizeKB int
	CDF    []stats.CDFPoint
}

// RunFig9 measures TCP transfer speeds between RON pairs, one transfer at
// a time (chained) so transfers don't contend with each other, exactly as
// in sequential wide-area measurement.
func RunFig9(cfg Fig9Config) ([]Fig9Series, error) {
	var out []Fig9Series
	for _, sizeKB := range cfg.SizesKB {
		g := cfs.RONTopology(cfg.Sites, cfg.Seed)
		em, err := modelnet.Run(g, modelnet.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		n := em.NumVNs()
		hosts := em.NewHosts()
		sample := &stats.Sample{}

		type pair struct{ a, b int }
		var pairsList []pair
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					pairsList = append(pairsList, pair{i, j})
				}
			}
		}
		if cfg.PairLimit > 0 && len(pairsList) > cfg.PairLimit {
			pairsList = pairsList[:cfg.PairLimit]
		}
		for si, h := range hosts {
			port := uint16(8000 + si)
			if _, err := traffic.NewSink(h, port); err != nil {
				return nil, err
			}
		}
		size := sizeKB << 10
		idx := 0
		var runNext func()
		runNext = func() {
			if idx >= len(pairsList) {
				return
			}
			p := pairsList[idx]
			idx++
			start := em.Now()
			src := hosts[p.a]
			c := src.Dial(netstack.Endpoint{VN: modelnet.VN(p.b), Port: uint16(8000 + p.b)}, netstack.Handlers{})
			// Completion = all bytes acknowledged at the sender.
			var ticker *vtime.Ticker
			ticker = vtime.NewTicker(em.Sched, 10*vtime.Millisecond, func() {
				if int(c.BytesSent) < size {
					return
				}
				if el := em.Now().Sub(start).Seconds(); el > 0 {
					sample.Add(float64(size) / 1024 / el)
				}
				ticker.Stop()
				runNext()
			})
			ticker.Start()
			c.WriteCount(size)
			c.Close()
		}
		runNext()
		em.RunUntil(em.Now().Add(modelnet.Seconds(float64(len(pairsList)) * 120)))
		out = append(out, Fig9Series{SizeKB: sizeKB, CDF: sample.CDFAt(12)})
	}
	return out, nil
}

// PrintFig9 renders the CDFs.
func PrintFig9(w io.Writer, series []Fig9Series) {
	fprintf(w, "Figure 9: CDF of TCP transfer speed between RON pairs (KB/s)\n")
	for _, s := range series {
		fprintf(w, "size %5d KB: p25=%7.1f p50=%7.1f p75=%7.1f max=%7.1f\n",
			s.SizeKB, cdfAtP(s.CDF, 0.25), cdfAtP(s.CDF, 0.50), cdfAtP(s.CDF, 0.75), cdfAtP(s.CDF, 1.0))
	}
}
