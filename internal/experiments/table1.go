package experiments

import (
	"io"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/traffic"
	"modelnet/internal/vtime"
)

// Table1 reproduces Table 1 (§3.3): maximum 4-core system throughput as a
// function of the fraction of flows whose packets must cross between
// cores. The paper: 462.5 Kpkt/s at 0% cross-core traffic (4× the
// single-core 2-hop result), degrading to 155.8 Kpkt/s at 100%.

// Table1Config parameterizes the experiment.
type Table1Config struct {
	Cores     int
	Pairs     int // sender/receiver pairs (paper: 560)
	CrossPcts []int
	Duration  vtime.Duration
	Warmup    vtime.Duration
	Seed      int64
	// CapacityScale shrinks core NIC/CPU capacity together with a reduced
	// pair count so quick runs still saturate (1 = paper hardware).
	CapacityScale float64
}

// DefaultTable1 is the paper's configuration: 1120 VNs on a star of
// 10 Mb/s, 5 ms pipes (every path two hops), four cores.
func DefaultTable1() Table1Config {
	return Table1Config{
		Cores:     4,
		Pairs:     560,
		CrossPcts: []int{0, 25, 50, 75, 100},
		Duration:  vtime.Second,
		Warmup:    500 * vtime.Millisecond,
		Seed:      2,
	}
}

// ScaledTable1 shrinks pair count for quick runs (the saturation point
// shifts down with it, but the degradation-vs-crossing shape remains).
func ScaledTable1(scale float64) Table1Config {
	cfg := DefaultTable1()
	cfg.Pairs = scaleInt(cfg.Pairs, scale, 80)
	if scale < 1 {
		cfg.CrossPcts = []int{0, 50, 100}
		cfg.Duration = 750 * vtime.Millisecond
		cfg.Warmup = 400 * vtime.Millisecond
		cfg.CapacityScale = scale
	}
	return cfg
}

// Table1Row is one measured line.
type Table1Row struct {
	CrossPct int
	Kpps     float64
	Tunnels  uint64
}

// RunTable1 executes the sweep.
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	var rows []Table1Row
	for _, pct := range cfg.CrossPcts {
		row, err := runTable1Point(cfg, pct)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runTable1Point(cfg Table1Config, crossPct int) (Table1Row, error) {
	row, _, err := runTable1Custom(cfg, crossPct, false)
	return row, err
}

// runTable1Custom also returns the bytes carried by inter-core tunnels and
// allows enabling the §2.2 payload-caching optimization.
func runTable1Custom(cfg Table1Config, crossPct int, payloadCaching bool) (Table1Row, uint64, error) {
	nVNs := 2 * cfg.Pairs
	attr := topology.LinkAttrs{
		BandwidthBps: topology.Mbps(10),
		LatencySec:   topology.Ms(5),
		QueuePkts:    20,
	}
	g := topology.Star(nVNs, attr)
	b, err := bind.Bind(g, bind.Options{Cores: cfg.Cores})
	if err != nil {
		return Table1Row{}, 0, err
	}
	// Pipe ownership follows VN grouping: VN v's access pipes belong to
	// core v mod Cores, matching the paper's "one quarter of the VNs to
	// each core". Star pipes come in (client→hub, hub→client) pairs in
	// client order.
	owner := make([]int, g.NumLinks())
	for v := 0; v < nVNs; v++ {
		owner[2*v] = v % cfg.Cores
		owner[2*v+1] = v % cfg.Cores
	}
	pod := bind.NewPOD(owner, cfg.Cores)
	sched := vtime.NewScheduler()
	prof := emucore.DefaultProfile()
	prof.PayloadCaching = payloadCaching
	if cs := cfg.CapacityScale; cs > 0 && cs < 1 {
		prof.NICBps *= cs
		prof.CPU.PerPacket = vtime.Duration(float64(prof.CPU.PerPacket) / cs)
		prof.CPU.PerHop = vtime.Duration(float64(prof.CPU.PerHop) / cs)
		prof.CPU.TunnelTx = vtime.Duration(float64(prof.CPU.TunnelTx) / cs)
		prof.CPU.TunnelRx = vtime.Duration(float64(prof.CPU.TunnelRx) / cs)
	}
	emu, err := emucore.New(sched, g, b, pod, prof, cfg.Seed)
	if err != nil {
		return Table1Row{}, 0, err
	}

	// Senders are VNs 0..Pairs-1, receivers Pairs..2*Pairs-1. The first
	// crossPct% of flows pick a receiver in a different core group; the
	// rest stay within their group.
	crossFlows := cfg.Pairs * crossPct / 100
	for i := 0; i < cfg.Pairs; i++ {
		src := i
		var dst int
		if i < crossFlows {
			// Receiver in the next core group with the same pair offset.
			dst = cfg.Pairs + (i/cfg.Cores)*cfg.Cores + (src+1)%cfg.Cores
		} else {
			dst = cfg.Pairs + (i/cfg.Cores)*cfg.Cores + src%cfg.Cores
		}
		if dst >= nVNs {
			dst = cfg.Pairs + src%cfg.Cores
		}
		srcHost := netstack.NewHost(pipes.VN(src), sched, emu, emuRegistrar{emu})
		dstHost := netstack.NewHost(pipes.VN(dst), sched, emu, emuRegistrar{emu})
		if _, err := traffic.NewSink(dstHost, 80); err != nil {
			return Table1Row{}, 0, err
		}
		// Stagger starts across ~200 ms to avoid artificial lockstep.
		start := vtime.Time(int64(i) * int64(200*vtime.Millisecond) / int64(cfg.Pairs))
		dvn := pipes.VN(dst)
		sched.At(start, func() {
			traffic.StartBulk(srcHost, netstack.Endpoint{VN: dvn, Port: 80}, traffic.Unbounded)
		})
	}
	sched.RunFor(cfg.Warmup)
	start := emu.Delivered
	sched.RunFor(cfg.Duration)
	var tunnels, tunnelBytes uint64
	for c := 0; c < cfg.Cores; c++ {
		cs := emu.CoreStats(c)
		tunnels += cs.TunnelsOut
		tunnelBytes += cs.TunnelTxBytes
	}
	return Table1Row{
		CrossPct: crossPct,
		Kpps:     float64(emu.Delivered-start) / cfg.Duration.Seconds() / 1e3,
		Tunnels:  tunnels,
	}, tunnelBytes, nil
}

type emuRegistrar struct{ e *emucore.Emulator }

func (r emuRegistrar) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	r.e.RegisterVN(vn, emucore.DeliverFunc(fn))
}

// PrintTable1 renders the table.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fprintf(w, "Table 1: 4-core throughput vs cross-core traffic\n")
	fprintf(w, "%12s %18s\n", "cross-core", "Kpkt/sec")
	for _, r := range rows {
		fprintf(w, "%11d%% %18.1f\n", r.CrossPct, r.Kpps)
	}
}
