package experiments

// The parallel-runtime scaling study: the paper's scalability claim is that
// emulation capacity grows with the number of core routers (§3.3, Table 1
// measures how cross-core transitions erode it). The sequential
// reproduction cannot show this — one scheduler thread is one core's worth
// of compute no matter what Options.Cores says — so this experiment drives
// the same saturating workload over the paper's 20-router ring under the
// sequential runtime and under the parallel runtime at growing core
// counts, reporting wall-clock speedup and verifying that every
// configuration produces identical emulation results.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"modelnet"
	"modelnet/internal/pipes"
)

// ParcoreConfig parameterizes the scaling study.
type ParcoreConfig struct {
	Routers       int // ring routers (paper topology: 20)
	VNsPerRouter  int // clients per router (20 ⇒ 400 VNs)
	Cores         []int
	Duration      modelnet.Duration
	PacketsPerSec float64 // per-VN CBR rate
	PacketBytes   int
	Seed          int64
}

// DefaultParcore is the full-scale configuration: the 20×20 ring, 400 CBR
// flows crossing the ring diameter, 1/2/4/8 cores.
func DefaultParcore() ParcoreConfig {
	return ParcoreConfig{
		Routers:       20,
		VNsPerRouter:  20,
		Cores:         []int{1, 2, 4, 8},
		Duration:      modelnet.Seconds(10),
		PacketsPerSec: 200,
		PacketBytes:   1000,
		Seed:          11,
	}
}

// ScaledParcore shrinks the emulated duration for quick runs.
func ScaledParcore(scale float64) ParcoreConfig {
	cfg := DefaultParcore()
	if scale < 1 {
		cfg.Duration = modelnet.Seconds(10 * scale)
	}
	return cfg
}

// ParcoreRow is one configuration's outcome.
type ParcoreRow struct {
	Cores        int     `json:"cores"`
	Parallel     bool    `json:"parallel"`
	WallMS       float64 `json:"wall_ms"`
	Speedup      float64 `json:"speedup"` // vs the sequential row
	Delivered    uint64  `json:"delivered"`
	Injected     uint64  `json:"injected"`
	Drops        uint64  `json:"drops"`
	Windows      uint64  `json:"windows,omitempty"`
	SerialRounds uint64  `json:"serial_rounds,omitempty"`
	Messages     uint64  `json:"messages,omitempty"`
	LookaheadMS  float64 `json:"lookahead_ms,omitempty"`
}

// ParcoreResult is the full study.
type ParcoreResult struct {
	Routers      int     `json:"routers"`
	VNsPerRouter int     `json:"vns_per_router"`
	DurationSec  float64 `json:"duration_sec"`
	// HostCPUs is runtime.NumCPU() where the study ran: wall-clock
	// speedup is bounded by it (on a 1-CPU host the parallel rows measure
	// pure synchronization overhead instead).
	HostCPUs int          `json:"host_cpus"`
	Rows     []ParcoreRow `json:"rows"`
	// Deterministic reports whether every configuration produced
	// byte-identical conservation counters.
	Deterministic bool `json:"deterministic"`
}

// ringSpec converts the study config to the mode-independent workload spec
// shared with the federation scenarios (fednet.go).
func (cfg ParcoreConfig) ringSpec() RingCBRSpec {
	return RingCBRSpec{
		Routers:       cfg.Routers,
		VNsPerRouter:  cfg.VNsPerRouter,
		PacketsPerSec: cfg.PacketsPerSec,
		PacketBytes:   cfg.PacketBytes,
		DurationSec:   cfg.Duration.Seconds(),
		Seed:          cfg.Seed,
	}
}

// runParcoreOnce builds the ring, loads it with diameter-crossing CBR
// flows (the shared ring-cbr workload), runs it, and reports totals plus
// wall time.
func runParcoreOnce(cfg ParcoreConfig, cores int, parallel bool) (ParcoreRow, error) {
	// A gigabit ring keeps the aggregate offered load (~165 Mb/s per ring
	// pipe at the default rate) well under capacity: zero virtual drops,
	// so the determinism comparison is exact regardless of how same-
	// nanosecond arrivals interleave (no drop-victim selection).
	spec := cfg.ringSpec()
	ideal := modelnet.IdealProfile()
	em, err := modelnet.Run(spec.Topology(), modelnet.Options{
		Cores:    cores,
		Parallel: parallel,
		Profile:  &ideal,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return ParcoreRow{}, err
	}
	err = spec.Install(em.NumVNs(),
		func(pipes.VN) bool { return true },
		em.NewHost, em.SchedulerOf)
	if err != nil {
		return ParcoreRow{}, err
	}
	begin := time.Now()
	em.RunFor(spec.RunFor())
	wall := time.Since(begin)
	tot := em.Totals()
	row := ParcoreRow{
		Cores:     cores,
		Parallel:  parallel,
		WallMS:    float64(wall.Microseconds()) / 1000,
		Delivered: tot.Delivered,
		Injected:  tot.Injected,
		Drops:     tot.PhysDrops + tot.VirtualDrops,
	}
	if parallel {
		st := em.Par.Stats()
		row.Windows = st.Windows
		row.SerialRounds = st.SerialRounds
		row.Messages = st.Messages
		row.LookaheadMS = em.Par.Lookahead().Seconds() * 1000
	}
	return row, nil
}

// RunParcoreScaling runs the study: one sequential baseline, then the
// parallel runtime at each core count above 1.
func RunParcoreScaling(cfg ParcoreConfig) (*ParcoreResult, error) {
	res := &ParcoreResult{
		Routers:       cfg.Routers,
		VNsPerRouter:  cfg.VNsPerRouter,
		DurationSec:   cfg.Duration.Seconds(),
		HostCPUs:      runtime.NumCPU(),
		Deterministic: true,
	}
	base, err := runParcoreOnce(cfg, 1, false)
	if err != nil {
		return nil, err
	}
	base.Speedup = 1
	res.Rows = append(res.Rows, base)
	for _, k := range cfg.Cores {
		if k < 2 {
			continue
		}
		row, err := runParcoreOnce(cfg, k, true)
		if err != nil {
			return nil, err
		}
		if row.WallMS > 0 {
			row.Speedup = base.WallMS / row.WallMS
		}
		if row.Delivered != base.Delivered || row.Injected != base.Injected || row.Drops != base.Drops {
			res.Deterministic = false
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// PrintParcore renders the study.
func PrintParcore(w io.Writer, res *ParcoreResult) {
	fprintf(w, "Parallel core-cluster scaling: %d×%d ring, %.1fs emulated\n",
		res.Routers, res.VNsPerRouter, res.DurationSec)
	fprintf(w, "%6s %9s %9s %10s %9s %8s %9s %10s\n",
		"cores", "wall ms", "speedup", "delivered", "windows", "serial", "messages", "lookahead")
	for _, r := range res.Rows {
		mode := "seq"
		if r.Parallel {
			mode = fmt.Sprintf("%d", r.Cores)
		}
		fprintf(w, "%6s %9.0f %8.2fx %10d %9d %8d %9d %8.1fms\n",
			mode, r.WallMS, r.Speedup, r.Delivered, r.Windows, r.SerialRounds, r.Messages, r.LookaheadMS)
	}
	if !res.Deterministic {
		fprintf(w, "  WARNING: configurations disagreed on emulation counters\n")
	}
}

// WriteParcoreJSON records the study for the repository (BENCH_parcore.json).
func WriteParcoreJSON(path string, res *ParcoreResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
