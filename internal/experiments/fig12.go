package experiments

import (
	"io"
	"math/rand"

	"modelnet"
	"modelnet/internal/apps/acdc"
	"modelnet/internal/netstack"
	"modelnet/internal/topology"
	"modelnet/internal/traffic"
	"modelnet/internal/vtime"
)

// Fig12 reproduces Figure 12 (§5.3): ACDC running on a 600-node
// transit-stub topology with 120 overlay members. Nodes join at random
// points, self-organize to meet a 1500 ms delay target, then minimize
// cost. From t=500s to t=1500s, ModelNet increases the delay of 25% of
// randomly chosen links by 0–25% every 25 seconds; the overlay adapts,
// sometimes sacrificing cost, and re-optimizes after conditions subside.
// Reported: overlay cost relative to an offline MST (left axis) and
// worst-case overlay delay vs the offline shortest-path-tree delay.

// Fig12Config parameterizes the run.
type Fig12Config struct {
	Members      int
	TargetDelay  float64 // seconds
	Duration     modelnet.Duration
	PerturbFrom  modelnet.Duration
	PerturbTo    modelnet.Duration
	PerturbEvery modelnet.Duration
	SampleEvery  modelnet.Duration
	Seed         int64
	// Topology shape (defaults approximate the paper's 600-node GT-ITM).
	TransitDomains, TransitPerDomain, StubsPerTransit, RoutersPerStub int
}

// DefaultFig12 is the paper's timeline.
func DefaultFig12() Fig12Config {
	return Fig12Config{
		Members:        120,
		TargetDelay:    1.5,
		Duration:       modelnet.Seconds(3000),
		PerturbFrom:    modelnet.Seconds(500),
		PerturbTo:      modelnet.Seconds(1500),
		PerturbEvery:   modelnet.Seconds(25),
		SampleEvery:    modelnet.Seconds(50),
		Seed:           7,
		TransitDomains: 3, TransitPerDomain: 4, StubsPerTransit: 4, RoutersPerStub: 12,
	}
}

// ScaledFig12 shrinks the timeline and membership.
func ScaledFig12(scale float64) Fig12Config {
	cfg := DefaultFig12()
	if scale < 1 {
		cfg.Members = 40
		cfg.Duration = modelnet.Seconds(600)
		cfg.PerturbFrom = modelnet.Seconds(150)
		cfg.PerturbTo = modelnet.Seconds(350)
		cfg.SampleEvery = modelnet.Seconds(25)
		cfg.TransitDomains, cfg.TransitPerDomain = 2, 3
		cfg.StubsPerTransit, cfg.RoutersPerStub = 3, 6
	}
	return cfg
}

// Fig12Row is one timeline sample.
type Fig12Row struct {
	T         float64 // seconds
	CostRatio float64 // overlay cost / MST cost
	MaxDelay  float64 // worst root→member delay, seconds
	Switches  uint64  // cumulative parent switches at this sample
}

// Fig12Result carries the timeline plus the offline references.
type Fig12Result struct {
	Rows     []Fig12Row
	SPTDelay float64 // offline shortest-path-tree max delay
	MSTCost  float64
	// Adaptation counters and final per-node state, for diagnostics.
	Switches       uint64
	LoopRepairs    uint64
	ProbeFails     uint64
	ProbesTotal    uint64
	FinalClaims    []float64 // each node's believed tree delay at the end
	FinalCosts     []float64 // each node's parent-edge cost at the end
	FinalParents   []int
	FinalEdgeDelay []float64 // live delay of each node's parent edge
}

// RunFig12 executes the timeline.
func RunFig12(cfg Fig12Config) (*Fig12Result, error) {
	tsCfg := topology.TransitStubConfig{
		TransitDomains:   cfg.TransitDomains,
		TransitPerDomain: cfg.TransitPerDomain,
		StubsPerTransit:  cfg.StubsPerTransit,
		RoutersPerStub:   cfg.RoutersPerStub,
		ClientsPerStub:   (cfg.Members + cfg.TransitDomains*cfg.TransitPerDomain*cfg.StubsPerTransit - 1) / (cfg.TransitDomains * cfg.TransitPerDomain * cfg.StubsPerTransit),
		TransitTransit:   topology.LinkAttrs{BandwidthBps: topology.Mbps(155), LatencySec: topology.Ms(40), QueuePkts: 60},
		TransitStub:      topology.LinkAttrs{BandwidthBps: topology.Mbps(45), LatencySec: topology.Ms(15), QueuePkts: 60},
		StubStub:         topology.LinkAttrs{BandwidthBps: topology.Mbps(100), LatencySec: topology.Ms(10), QueuePkts: 60},
		ClientStub:       topology.LinkAttrs{BandwidthBps: topology.Mbps(10), LatencySec: topology.Ms(2), QueuePkts: 30},
		Seed:             cfg.Seed,
	}
	g := topology.TransitStub(tsCfg)
	// ACDC's §5.3 abstract costs per link class.
	g.JitterCosts(topology.TransitTransit, 20, 40, cfg.Seed)
	g.JitterCosts(topology.StubTransit, 10, 20, cfg.Seed+1)
	g.JitterCosts(topology.StubStub, 1, 5, cfg.Seed+2)
	g.JitterCosts(topology.ClientStub, 1, 2, cfg.Seed+3)

	em, err := modelnet.Run(g, modelnet.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if em.NumVNs() < cfg.Members {
		cfg.Members = em.NumVNs()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	memberVN := rng.Perm(em.NumVNs())[:cfg.Members]

	// Oracles over the distilled graph: static cost, live delay.
	table := em.Binding.Table
	costOf := func(a, b int) float64 {
		if a == b {
			return 0
		}
		r, ok := table.Lookup(modelnet.VN(memberVN[a]), modelnet.VN(memberVN[b]))
		if !ok {
			return 1e18
		}
		total := 0.0
		for _, pid := range r {
			total += em.Distilled.Graph.Links[pid].Attr.Cost
		}
		return total
	}
	delayOf := func(a, b int) float64 {
		if a == b {
			return 0
		}
		r, ok := table.Lookup(modelnet.VN(memberVN[a]), modelnet.VN(memberVN[b]))
		if !ok {
			return 1e18
		}
		total := 0.0
		for _, pid := range r {
			total += em.Emu.Pipe(pid).Params().Latency.Seconds()
		}
		return total
	}

	var members []netstack.Endpoint
	for _, vn := range memberVN {
		members = append(members, netstack.Endpoint{VN: modelnet.VN(vn), Port: 4500})
	}
	var nodes []*acdc.Node
	for i := range memberVN {
		h := em.NewHost(modelnet.VN(memberVN[i]))
		nd, err := acdc.NewNode(h, i, members, costOf, acdc.Config{
			TargetDelay: cfg.TargetDelay,
			Seed:        cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		if i > 0 {
			nd.SetParent(rng.Intn(i)) // join at a random existing point
		}
		nodes = append(nodes, nd)
		nd.Start()
	}

	res := &Fig12Result{
		SPTDelay: acdc.SPTMaxDelay(cfg.Members, delayOf),
		MSTCost:  acdc.MSTCost(cfg.Members, costOf),
	}

	// Perturbation schedule.
	pert := traffic.NewPerturber(em.Emu, cfg.Seed)
	for t := cfg.PerturbFrom; t < cfg.PerturbTo; t += cfg.PerturbEvery {
		em.Sched.At(modelnet.Time(t), func() { pert.JitterLatency(0.25, 0.25) })
	}
	em.Sched.At(modelnet.Time(cfg.PerturbTo), pert.Restore)

	// Timeline sampling.
	for t := cfg.SampleEvery; t <= cfg.Duration; t += cfg.SampleEvery {
		t := t
		em.Sched.At(modelnet.Time(t), func() {
			var sw uint64
			for _, nd := range nodes {
				sw += nd.Switches
			}
			res.Rows = append(res.Rows, Fig12Row{
				T:         vtime.Duration(t).Seconds(),
				CostRatio: acdc.TreeCost(nodes, costOf) / res.MSTCost,
				MaxDelay:  acdc.TreeMaxDelay(nodes, delayOf),
				Switches:  sw,
			})
		})
	}
	em.RunUntil(modelnet.Time(cfg.Duration))
	for _, nd := range nodes {
		nd.Stop()
		res.Switches += nd.Switches
		res.LoopRepairs += nd.LoopRepairs
		res.ProbeFails += nd.ProbeFails
		res.ProbesTotal += nd.Probes
		res.FinalClaims = append(res.FinalClaims, nd.TreeDelay())
		p := nd.Parent()
		if p < 0 {
			p = 0
		}
		res.FinalCosts = append(res.FinalCosts, costOf(p, nd.ID()))
		res.FinalParents = append(res.FinalParents, p)
		res.FinalEdgeDelay = append(res.FinalEdgeDelay, delayOf(p, nd.ID()))
	}
	return res, nil
}

// PrintFig12 renders the timeline.
func PrintFig12(w io.Writer, res *Fig12Result) {
	fprintf(w, "Figure 12: ACDC cost (vs MST %.1f) and max delay (SPT %.3fs) over time\n",
		res.MSTCost, res.SPTDelay)
	fprintf(w, "%8s %10s %10s\n", "t (s)", "cost/MST", "maxDelay")
	for _, r := range res.Rows {
		fprintf(w, "%8.0f %10.2f %10.3f\n", r.T, r.CostRatio, r.MaxDelay)
	}
}
