package experiments

// The observability layer's determinism contract (internal/obs): with
// Options.Trace set, the canonical encoding of the recorded packet trace —
// the mode-invariant events (pipe enqueue/dequeue/drop, delivery,
// unreachable injections, dynamics steps, reroutes), content-sorted and
// stripped of merge metadata — must be byte-identical across the
// sequential, in-process parallel, and multi-process federated execution
// modes. Handoffs and physical-capacity drops are deployment properties
// and are deliberately outside the canonical form; the contract holds
// under event-exact profiles, like the counter contract it extends.

import (
	"bytes"
	"testing"

	"modelnet"
	"modelnet/internal/fednet"
	"modelnet/internal/obs"
)

// canonOf returns a trace's canonical bytes, failing on an empty trace.
func canonOf(t *testing.T, name string, tr *obs.Trace) []byte {
	t.Helper()
	if tr == nil {
		t.Fatalf("%s: no trace recorded", name)
	}
	b := tr.CanonicalBytes()
	if len(tr.Canonical()) == 0 {
		t.Fatalf("%s: trace has no canonical events", name)
	}
	return b
}

func sameTrace(t *testing.T, name string, want, got []byte) {
	t.Helper()
	if !bytes.Equal(want, got) {
		wt, werr := obs.DecodeCanonical(want)
		gt, gerr := obs.DecodeCanonical(got)
		if werr != nil || gerr != nil {
			t.Fatalf("%s: canonical traces differ and decode failed (%v, %v)", name, werr, gerr)
		}
		if len(wt.Events) != len(gt.Events) {
			t.Fatalf("%s: canonical traces differ: %d vs %d events", name, len(wt.Events), len(gt.Events))
		}
		for i := range wt.Events {
			if wt.Events[i] != gt.Events[i] {
				t.Fatalf("%s: canonical traces diverge at event %d:\n want %+v\n got  %+v",
					name, i, wt.Events[i], gt.Events[i])
			}
		}
		t.Fatalf("%s: canonical traces differ (same events, different bytes?)", name)
	}
}

func TestRingCBRTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	spec := fednetRingSpec()
	seq, err := RunRingCBRLocal(spec, 1, false, true)
	if err != nil {
		t.Fatal(err)
	}
	want := canonOf(t, "ring seq", seq.Trace)
	par, err := RunRingCBRLocal(spec, 4, true, true)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, "ring seq vs inproc", want, canonOf(t, "ring inproc", par.Trace))
	ideal := modelnet.IdealProfile()
	for _, plane := range []string{fednet.DataUDP, fednet.DataTCP} {
		for _, sm := range []modelnet.SyncMode{modelnet.SyncAdaptive, modelnet.SyncFixed} {
			fed, err := fednet.Run(fednet.Options{
				Scenario: ScenarioRingCBR, Params: spec,
				Cores: 2, Seed: spec.Seed, Profile: &ideal,
				RunFor: spec.RunFor(), DataPlane: plane,
				Spawn: true, Trace: true, Sync: sm,
			})
			if err != nil {
				t.Fatalf("fednet over %s (%s): %v", plane, sm, err)
			}
			name := fmtPlane("ring trace", 2, plane, sm)
			sameTrace(t, name, want, canonOf(t, name, fed.Trace))
		}
	}
}

func TestFlakyEdgeTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	spec := FlakyEdgeSpec{
		Web: WebReplRingSpec{
			Routers:      6,
			VNsPerRouter: 3,
			LossPct:      0.5,
			TraceSec:     1.5,
			MinRate:      30,
			MaxRate:      60,
			MedianSize:   8 << 10,
			DrainSec:     4.5,
			Seed:         42,
		},
		Trace:           "wifi",
		FailSec:         0.6,
		RecoverSec:      2.4,
		RerouteDelaySec: 0.25,
	}
	fail, err := spec.CutFailLink(2)
	if err != nil {
		t.Fatal(err)
	}
	spec.FailLink = fail
	seq, err := RunFlakyEdgeLocal(spec, 1, false, true)
	if err != nil {
		t.Fatal(err)
	}
	want := canonOf(t, "flaky seq", seq.Trace)
	// The canonical stream must contain the dynamics and drop events this
	// scenario exists to produce — an empty taxonomy would make the
	// byte-comparison vacuous.
	kinds := map[obs.Kind]int{}
	for _, ev := range seq.Trace.Canonical() {
		kinds[ev.Kind]++
	}
	for _, k := range []obs.Kind{obs.KindEnqueue, obs.KindDequeue, obs.KindDeliver, obs.KindDrop, obs.KindDynStep, obs.KindReroute} {
		if kinds[k] == 0 {
			t.Errorf("flaky seq trace has no %v events", k)
		}
	}
	par, err := RunFlakyEdgeLocal(spec, 2, true, true)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, "flaky seq vs inproc", want, canonOf(t, "flaky inproc", par.Trace))
	dyn, err := spec.Dynamics()
	if err != nil {
		t.Fatal(err)
	}
	ideal := modelnet.IdealProfile()
	for _, plane := range []string{fednet.DataUDP, fednet.DataTCP} {
		for _, sm := range []modelnet.SyncMode{modelnet.SyncAdaptive, modelnet.SyncFixed} {
			fed, err := fednet.Run(fednet.Options{
				Scenario: ScenarioFlakyEdge, Params: spec,
				Cores: 2, Seed: spec.Web.Seed, Profile: &ideal,
				RunFor: spec.RunFor(), DataPlane: plane,
				Dynamics: dyn,
				Spawn:    true, Trace: true, Sync: sm,
			})
			if err != nil {
				t.Fatalf("fednet over %s (%s): %v", plane, sm, err)
			}
			name := fmtPlane("flaky trace", 2, plane, sm)
			sameTrace(t, name, want, canonOf(t, name, fed.Trace))
			// The federated run must also surface the unified drop taxonomy.
			if !equalU64(seq.Drops, fed.DropsByReason) {
				t.Errorf("%s: drops-by-reason diverge:\n sequential %v\n federated  %v", name, seq.Drops, fed.DropsByReason)
			}
		}
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
