package experiments

// tstub-cbr: the sharded-distribution scale workload. A GT-ITM-style
// transit-stub topology (topology.TransitStub) carries CBR flows from a
// deterministic subsample of client VNs to a small set of sink VNs spread
// across the stubs. Two properties make it the scaling yardstick:
//
//   - The population is a generator parameter: 10⁵–10⁶ VNs are a config
//     away, with link count linear in VNs — exactly the regime where the
//     monolithic O(world) setup and O(n²) route matrix stop fitting and the
//     sharded distribution (per-shard views + demand-paged routes) is the
//     only path.
//   - The distinct route targets are bounded by Servers regardless of
//     population, so each worker's demand-paged distance-field cache stays
//     small and the route-RPC count measures paging, not thrash.

import (
	"encoding/json"
	"math/rand"

	"modelnet"
	"modelnet/internal/fednet"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// ScenarioTStubCBR is the registered federation scenario name.
const ScenarioTStubCBR = "tstub-cbr"

// TStubCBRSpec parameterizes the transit-stub CBR workload,
// mode-independently. It doubles as the federation scenario's JSON params.
type TStubCBRSpec struct {
	TransitDomains   int `json:"transit_domains"`
	TransitPerDomain int `json:"transit_per_domain"`
	StubsPerTransit  int `json:"stubs_per_transit"`
	RoutersPerStub   int `json:"routers_per_stub"`
	ClientsPerStub   int `json:"clients_per_stub"`

	// Servers is the number of sink VNs (clients hash onto them); it bounds
	// the distinct route targets and so each shard's distance-field cache.
	Servers int `json:"servers"`
	// Flows is the number of sending VNs, spread evenly over the population —
	// traffic volume stays a workload knob while the world scales.
	Flows         int     `json:"flows"`
	PacketsPerSec float64 `json:"packets_per_sec"` // per-flow CBR rate
	PacketBytes   int     `json:"packet_bytes"`
	DurationSec   float64 `json:"duration_sec"` // injection window
	Seed          int64   `json:"seed"`
}

// VNs is the client population the generator produces.
func (c TStubCBRSpec) VNs() int {
	return c.TransitDomains * c.TransitPerDomain * c.StubsPerTransit * c.ClientsPerStub
}

// RunFor is the virtual time a run of this spec must cover (the ring-cbr
// drain rule: injection stops early enough for in-flight traffic to finish).
func (c TStubCBRSpec) RunFor() modelnet.Duration {
	return modelnet.Seconds(c.DurationSec + ringCBRDrainSec)
}

// Topology builds the transit-stub graph with era-typical attributes
// (§5.2/§5.3 scale studies: 155 Mb/s transit core, 45 Mb/s transit-stub
// uplinks, 10 Mb/s client access links).
func (c TStubCBRSpec) Topology() *modelnet.Graph {
	return topology.TransitStub(topology.TransitStubConfig{
		TransitDomains:   c.TransitDomains,
		TransitPerDomain: c.TransitPerDomain,
		StubsPerTransit:  c.StubsPerTransit,
		RoutersPerStub:   c.RoutersPerStub,
		ClientsPerStub:   c.ClientsPerStub,
		TransitTransit:   topology.LinkAttrs{BandwidthBps: topology.Mbps(155), LatencySec: topology.Ms(20), QueuePkts: 200},
		TransitStub:      topology.LinkAttrs{BandwidthBps: topology.Mbps(45), LatencySec: topology.Ms(10), QueuePkts: 100},
		StubStub:         topology.LinkAttrs{BandwidthBps: topology.Mbps(100), LatencySec: topology.Ms(2), QueuePkts: 100},
		ClientStub:       topology.LinkAttrs{BandwidthBps: topology.Mbps(10), LatencySec: topology.Ms(1), QueuePkts: 100},
		Seed:             c.Seed,
	})
}

// plan derives the sink and sender VN sets — identically on every process.
// Sinks sit at even strides through the population (so they land in many
// different stub domains and shards); senders at their own stride, skipping
// any collision with a sink.
func (c TStubCBRSpec) plan(n int) (servers []int, senders []int) {
	isServer := make(map[int]bool, c.Servers)
	sstride := n / c.Servers
	if sstride < 1 {
		sstride = 1
	}
	for i := 0; i < c.Servers && i*sstride < n; i++ {
		servers = append(servers, i*sstride)
		isServer[i*sstride] = true
	}
	fstride := n / c.Flows
	if fstride < 1 {
		fstride = 1
	}
	for k := 0; k < c.Flows && len(senders) < n-len(servers); k++ {
		v := (k * fstride) % n
		for isServer[v] {
			v = (v + 1) % n
		}
		senders = append(senders, v)
	}
	return servers, senders
}

// Install sets up the homed slice of the workload: a sink on port 9 at every
// homed server VN, and a jittered CBR flow from every homed sender to its
// hashed server. Jitter is drawn for the whole sender population in plan
// order, so any subset installs values identical to a full install.
func (c TStubCBRSpec) Install(n int, homed func(pipes.VN) bool,
	host func(pipes.VN) *netstack.Host, sched func(pipes.VN) *vtime.Scheduler) error {
	servers, senders := c.plan(n)
	for _, s := range servers {
		vn := pipes.VN(s)
		if !homed(vn) {
			continue
		}
		if _, err := host(vn).OpenUDP(9, nil); err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(c.Seed))
	period := vtime.DurationOf(1 / c.PacketsPerSec)
	starts := make([]vtime.Duration, len(senders))
	jitters := make([]vtime.Duration, len(senders))
	for k := range senders {
		starts[k] = vtime.Duration(rng.Int63n(int64(period)))
		jitters[k] = vtime.Duration(rng.Int63n(int64(period / 8)))
	}
	sendEnd := vtime.Time(0).Add(vtime.DurationOf(c.DurationSec))
	for k, v := range senders {
		vn := pipes.VN(v)
		if !homed(vn) {
			continue
		}
		s, err := host(vn).OpenUDP(0, nil)
		if err != nil {
			return err
		}
		dst := modelnet.Endpoint{VN: modelnet.VN(servers[k%len(servers)]), Port: 9}
		jitter := jitters[k]
		size := c.PacketBytes
		sc := sched(vn)
		var send func()
		send = func() {
			s.SendTo(dst, size, nil)
			if next := sc.Now().Add(period + jitter); next < sendEnd {
				sc.AtTagged(next, int32(vn), send)
			}
		}
		sc.AtTagged(sc.Now().Add(starts[k]), int32(vn), send)
	}
	return nil
}

func init() {
	fednet.Register(ScenarioTStubCBR, fednet.Scenario{
		Build: func(params json.RawMessage) (*modelnet.Graph, error) {
			var c TStubCBRSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			return c.Topology(), nil
		},
		Install: func(env *fednet.WorkerEnv, params json.RawMessage) (func() json.RawMessage, error) {
			var c TStubCBRSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			err := c.Install(env.NumVNs(), env.Homed, env.NewHost,
				func(pipes.VN) *vtime.Scheduler { return env.Sched })
			return nil, err
		},
	})
}

// RunTStubCBRLocal runs the tstub-cbr scenario without sockets. Large
// populations must pass WithRouteCache — the default precomputed matrix is
// O(n²) and exists only below the scale this scenario is for.
func RunTStubCBRLocal(c TStubCBRSpec, cores int, parallel, trace bool, opts ...RunOpt) (*localRun, error) {
	return runLocal(c.Topology(), c.Seed, cores, parallel, trace, nil,
		func(em *modelnet.Emulation) (func(*localRun), error) {
			err := c.Install(em.NumVNs(), allHomed, em.NewHost, em.SchedulerOf)
			return nil, err
		}, c.RunFor(), opts...)
}

// RunTStubCBRFederated runs the tstub-cbr scenario as a cores-process
// federation over loopback. This is the sharded-distribution path: each
// worker receives only its shard view and pages route summaries on demand.
func RunTStubCBRFederated(c TStubCBRSpec, cores int, dataPlane string, opts ...RunOpt) (*fednet.Report, error) {
	o := applyRunOpts(opts)
	ideal := modelnet.IdealProfile()
	return fednet.Run(fednet.Options{
		Scenario: ScenarioTStubCBR, Params: c,
		Cores: cores, Seed: c.Seed, Profile: &ideal, Sync: o.sync,
		RunFor: c.RunFor(), DataPlane: dataPlane,
		Spawn: true, CollectDeliveries: true,
	})
}
