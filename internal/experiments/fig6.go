package experiments

import (
	"io"

	"modelnet"
	"modelnet/internal/edge"
	"modelnet/internal/netstack"
)

// Fig6 reproduces Figure 6 (§4.2): the accuracy cost of VN multiplexing.
// nprog netperf/netserver pairs share one physical source machine; each
// sender computes a configurable number of instructions per byte after
// each 1500-byte UDP packet, and each pair's emulated pipe gets 1/nprog of
// the 100 Mb/s physical link. Aggregate delivered throughput stays at
// ~95 Mb/s until per-packet computation exceeds the machine's budget;
// the break-even point slides from 76 instructions/byte at nprog=1 to 65
// at nprog=100 as context-switch/cache overhead grows.

// Fig6Config parameterizes the sweep.
type Fig6Config struct {
	Nprogs    []int
	InstrPerB []float64
	Payload   int
	Duration  modelnet.Duration
	Machine   edge.MachineConfig
	Seed      int64
}

// DefaultFig6 is the paper's sweep.
func DefaultFig6() Fig6Config {
	return Fig6Config{
		Nprogs:    []int{1, 4, 8, 16, 32, 60, 80, 100},
		InstrPerB: []float64{50, 55, 60, 65, 70, 75, 80, 85, 90, 95, 100},
		Payload:   1500,
		Duration:  modelnet.Seconds(2),
		Machine:   edge.DefaultMachineConfig(),
		Seed:      4,
	}
}

// ScaledFig6 shrinks the sweep.
func ScaledFig6(scale float64) Fig6Config {
	cfg := DefaultFig6()
	if scale < 1 {
		cfg.Nprogs = []int{1, 8, 100}
		cfg.InstrPerB = []float64{50, 65, 80, 95}
		cfg.Duration = modelnet.Seconds(1)
	}
	return cfg
}

// Fig6Row is one measured point.
type Fig6Row struct {
	Nprog     int
	InstrPerB float64
	AggKbitps float64 // aggregate delivered payload throughput
}

// RunFig6 executes the sweep.
func RunFig6(cfg Fig6Config) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, nprog := range cfg.Nprogs {
		for _, ipb := range cfg.InstrPerB {
			row, err := runFig6Point(cfg, nprog, ipb)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runFig6Point(cfg Fig6Config, nprog int, instrPerByte float64) (Fig6Row, error) {
	// Each pair's pipe carries 1/nprog of the 100 Mb/s link.
	attr := modelnet.LinkAttrs{
		BandwidthBps: cfg.Machine.LinkBps / float64(nprog),
		LatencySec:   modelnet.Ms(1),
		QueuePkts:    10,
	}
	g := modelnet.Pairs(nprog, 1, attr)
	ideal := modelnet.IdealProfile()
	em, err := modelnet.Run(g, modelnet.Options{RouteCache: nprog * 8, Profile: &ideal, Seed: cfg.Seed})
	if err != nil {
		return Fig6Row{}, err
	}
	// All senders share one physical machine; receivers are unconstrained
	// (the sink machine mirrors the source symmetrically in the paper's
	// setup and is never the bottleneck).
	machine := edge.NewMachine(em.Sched, cfg.Machine)
	inj := machine.WrapInjector(em.Emu)

	received := 0
	for i := 0; i < nprog; i++ {
		machine.AddProcess()
		src := em.NewHostVia(modelnet.VN(2*i), inj)
		dst := em.NewHost(modelnet.VN(2*i + 1))
		if _, err := dst.OpenUDP(9, func(from netstack.Endpoint, dg *netstack.Datagram) {
			received += dg.Len
		}); err != nil {
			return Fig6Row{}, err
		}
		sock, err := src.OpenUDP(0, nil)
		if err != nil {
			return Fig6Row{}, err
		}
		to := netstack.Endpoint{VN: dst.VN(), Port: 9}
		// The netperf loop: compute instrPerByte×payload instructions,
		// send, repeat. Machine.Exec serializes all processes on the one
		// CPU; WrapInjector charges the kernel send path and the NIC.
		var loop func()
		loop = func() {
			machine.Exec(instrPerByte*float64(cfg.Payload), func() {
				sock.SendTo(to, cfg.Payload, nil)
				loop()
			})
		}
		loop()
	}
	em.RunFor(cfg.Duration)
	agg := float64(received*8) / cfg.Duration.Seconds() / 1e3 // kbit/s
	return Fig6Row{Nprog: nprog, InstrPerB: instrPerByte, AggKbitps: agg}, nil
}

// PrintFig6 renders the rows.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fprintf(w, "Figure 6: aggregate throughput vs per-byte computation under multiplexing\n")
	fprintf(w, "%6s %12s %14s\n", "nprog", "instr/byte", "kbit/s")
	for _, r := range rows {
		fprintf(w, "%6d %12.0f %14.0f\n", r.Nprog, r.InstrPerB, r.AggKbitps)
	}
}
