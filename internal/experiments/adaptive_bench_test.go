package experiments

// CI smoke for the adaptive synchronization algebra's two performance
// claims, sized to run inside the regular test budget:
//
//   - window reduction: on the BENCH cfs-ring configuration the adaptive
//     algebra must barrier substantially less often than the fixed
//     event-driven baseline, and an order of magnitude less often than a
//     strict fixed-quantum cadence (duration / static lookahead) would.
//   - federation beats sequential: on a multi-core host the parallel and
//     federated ring-cbr runs must finish in less wall time than the
//     sequential run. Hosts without enough CPUs skip (a 1-CPU host can
//     only measure synchronization overhead; see BENCH_fednet.json's
//     host_cpus note).

import (
	"runtime"
	"testing"

	"modelnet"
	"modelnet/internal/fednet"
)

func TestAdaptiveSyncWindowReduction(t *testing.T) {
	spec := DefaultFednet().CFS
	adaptive, err := RunCFSRingLocal(spec, 2, true, false, WithSync(modelnet.SyncAdaptive))
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := RunCFSRingLocal(spec, 2, true, false, WithSync(modelnet.SyncFixed))
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Totals != fixed.Totals {
		t.Fatalf("algebras disagree on outcomes:\n adaptive %+v\n fixed    %+v", adaptive.Totals, fixed.Totals)
	}
	if adaptive.Windows == 0 || fixed.Windows == 0 {
		t.Fatalf("degenerate run: %d adaptive / %d fixed windows", adaptive.Windows, fixed.Windows)
	}
	// The fixed baseline is already event-driven (it jumps idle gaps), so
	// the bar against it is 3/4; during continuous streaming the adaptive
	// horizon advances by the announcement lead per window, which bounds
	// the achievable ratio (DESIGN.md §2).
	if 4*adaptive.Windows > 3*fixed.Windows {
		t.Errorf("adaptive windows %d > 3/4 of fixed %d — the horizon algebra stopped paying",
			adaptive.Windows, fixed.Windows)
	}
	// Against a strict fixed-quantum cadence at the static lookahead (the
	// shape of the paper's real-time timer), the reduction must be ≥ 4×.
	quantum := uint64(spec.DurationSec * 1000 / 5) // 5 ms static lookahead on the ring
	if adaptive.Windows >= quantum/4 {
		t.Errorf("adaptive windows %d not under 1/4 of the %d a strict 5 ms quantum would cost",
			adaptive.Windows, quantum)
	}
	// Fewer windows over the same virtual span means longer grants.
	if adaptive.GrantMean < fixed.GrantMean {
		t.Errorf("adaptive mean grant %v below the fixed cadence %v", adaptive.GrantMean, fixed.GrantMean)
	}
	t.Logf("windows: adaptive %d, fixed %d, strict-quantum %d; mean grant: adaptive %v, fixed %v",
		adaptive.Windows, fixed.Windows, quantum, adaptive.GrantMean, fixed.GrantMean)
}

func TestAdaptiveSyncFederationSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs; parallel wall time would measure overhead, not speedup", runtime.NumCPU())
	}
	spec := DefaultFednet().Ring
	spec.DurationSec = 4
	seq, err := RunRingCBRLocal(spec, 1, false, false)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunRingCBRLocal(spec, 2, true, false, WithSync(modelnet.SyncAdaptive))
	if err != nil {
		t.Fatal(err)
	}
	fed, err := RunRingCBRFederated(spec, 2, fednet.DataUDP, WithSync(modelnet.SyncAdaptive))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Totals != par.Totals || seq.Totals != fed.Totals {
		t.Fatalf("modes disagree on outcomes:\n seq    %+v\n inproc %+v\n fednet %+v",
			seq.Totals, par.Totals, fed.Totals)
	}
	t.Logf("wall: seq %.0f ms, inproc@2 %.0f ms, fednet@2 %.0f ms (adaptive)",
		seq.WallMS, par.WallMS, fed.WallMS)
	if par.WallMS >= seq.WallMS {
		t.Errorf("inproc@2 (%.0f ms) did not beat sequential (%.0f ms)", par.WallMS, seq.WallMS)
	}
	if fed.WallMS >= seq.WallMS {
		t.Errorf("fednet@2 (%.0f ms) did not beat sequential (%.0f ms)", fed.WallMS, seq.WallMS)
	}
}
