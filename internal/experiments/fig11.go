package experiments

import (
	"io"

	"modelnet"
	"modelnet/internal/apps/webrepl"
	"modelnet/internal/netstack"
	"modelnet/internal/stats"
	"modelnet/internal/topology"
	"modelnet/internal/traffic"
)

// Fig11 reproduces Figure 11 (§5.2): the CDF of client-perceived request
// latency as replicas are added to a web service on a 320-node
// transit-stub topology (Figure 10's link classes). With one replica, the
// shared transit links congest and ~10% of requests take >5 s; a second
// replica removes most transit contention; a third is marginal.

// Fig11Config parameterizes the experiment.
type Fig11Config struct {
	ClientsPerSite int // VNs at each of C1..C4 (paper: 30)
	TraceDuration  modelnet.Duration
	MinRate        float64
	MaxRate        float64
	Replicas       []int // replica counts to evaluate (paper: 1,2,3)
	Seed           int64
}

// DefaultFig11 is the paper's setup: 120 clients, 2.5 minutes, 60–100 req/s.
func DefaultFig11() Fig11Config {
	return Fig11Config{
		ClientsPerSite: 30,
		TraceDuration:  modelnet.Seconds(150),
		MinRate:        60,
		MaxRate:        100,
		Replicas:       []int{1, 2, 3},
		Seed:           6,
	}
}

// ScaledFig11 shrinks the trace.
func ScaledFig11(scale float64) Fig11Config {
	cfg := DefaultFig11()
	if scale < 1 {
		cfg.ClientsPerSite = 15
		cfg.TraceDuration = modelnet.Seconds(40)
	}
	return cfg
}

// fig10Topology builds the topology of Figure 10: four transit routers in
// a diamond (50 Mb/s, 50 ms), four client stub domains C1..C4 and three
// replica sites R1..R3 hanging off them (transit-stub 25 Mb/s 10 ms;
// stub-stub 10 Mb/s 5 ms), clients on 1 Mb/s 1 ms links and replicas on
// 100 Mb/s 1 ms links. It returns the client VN index ranges per site and
// the replica VN indices.
func fig10Topology(clientsPerSite int) (g *topology.Graph, clientSites [][]int, replicaVNs []int) {
	g = topology.New()
	tt := topology.LinkAttrs{BandwidthBps: topology.Mbps(50), LatencySec: topology.Ms(50), QueuePkts: 60}
	ts := topology.LinkAttrs{BandwidthBps: topology.Mbps(25), LatencySec: topology.Ms(10), QueuePkts: 60}
	ss := topology.LinkAttrs{BandwidthBps: topology.Mbps(10), LatencySec: topology.Ms(5), QueuePkts: 50}
	cl := topology.LinkAttrs{BandwidthBps: topology.Mbps(1), LatencySec: topology.Ms(1), QueuePkts: 20}
	rl := topology.LinkAttrs{BandwidthBps: topology.Mbps(100), LatencySec: topology.Ms(1), QueuePkts: 60}

	// Transit diamond.
	var t [4]topology.NodeID
	for i := range t {
		t[i] = g.AddNode(topology.Transit, "")
	}
	g.AddDuplex(t[0], t[1], tt)
	g.AddDuplex(t[1], t[2], tt)
	g.AddDuplex(t[2], t[3], tt)
	g.AddDuplex(t[3], t[0], tt)

	// A stub domain: three routers in a line, head attached to a transit.
	stub := func(at topology.NodeID) []topology.NodeID {
		var rs []topology.NodeID
		for i := 0; i < 3; i++ {
			rs = append(rs, g.AddNode(topology.Stub, ""))
			if i > 0 {
				g.AddDuplex(rs[i-1], rs[i], ss)
			}
		}
		g.AddDuplex(at, rs[0], ts)
		return rs
	}

	// Client sites C1..C4 on the four transits. VN indices accumulate in
	// creation order of client nodes.
	nextVN := 0
	for site := 0; site < 4; site++ {
		rs := stub(t[site])
		var vns []int
		for c := 0; c < clientsPerSite; c++ {
			cn := g.AddNode(topology.Client, "")
			g.AddDuplex(cn, rs[c%len(rs)], cl)
			vns = append(vns, nextVN)
			nextVN++
		}
		clientSites = append(clientSites, vns)
	}
	// Replica sites R1..R3 on transits 0, 2, 3 (spread across the core).
	// Each replica sits at the deep end of its stub domain, so all of its
	// traffic crosses the 10 Mb/s stub-stub links — the contended
	// resource that an added replica relieves (§5.2).
	for _, at := range []topology.NodeID{t[0], t[2], t[3]} {
		rs := stub(at)
		rn := g.AddNode(topology.Client, "")
		g.AddDuplex(rn, rs[len(rs)-1], rl)
		replicaVNs = append(replicaVNs, nextVN)
		nextVN++
	}
	return g, clientSites, replicaVNs
}

// Fig11Series is one replica-count latency CDF (seconds).
type Fig11Series struct {
	Replicas int
	CDF      []stats.CDFPoint
	Failed   int
	Over5s   float64 // fraction of requests slower than 5 s
}

// RunFig11 evaluates each replica count.
func RunFig11(cfg Fig11Config) ([]Fig11Series, error) {
	var out []Fig11Series
	for _, nr := range cfg.Replicas {
		s, err := runFig11Point(cfg, nr)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func runFig11Point(cfg Fig11Config, numReplicas int) (Fig11Series, error) {
	g, clientSites, replicaVNs := fig10Topology(cfg.ClientsPerSite)
	em, err := modelnet.Run(g, modelnet.Options{Seed: cfg.Seed})
	if err != nil {
		return Fig11Series{}, err
	}
	// Replica servers.
	for i := 0; i < numReplicas; i++ {
		if _, err := webrepl.NewServer(em.NewHost(modelnet.VN(replicaVNs[i])), 80); err != nil {
			return Fig11Series{}, err
		}
	}
	// Request routing, per the paper's three experiments:
	//   1 replica: everyone -> R1
	//   2 replicas: C1, C2 -> R2; C3, C4 -> R1
	//   3 replicas: C1,C2 -> R2; C3 -> R1; C4 -> R3
	nClients := 4 * cfg.ClientsPerSite
	siteOf := make([]int, nClients)
	for s, vns := range clientSites {
		for _, vn := range vns {
			siteOf[vn] = s
		}
	}
	target := func(client int) netstack.Endpoint {
		site := siteOf[client%nClients]
		r := 0
		switch numReplicas {
		case 2:
			if site == 0 || site == 1 {
				r = 1
			}
		case 3:
			switch site {
			case 0, 1:
				r = 1
			case 3:
				r = 2
			}
		}
		return netstack.Endpoint{VN: modelnet.VN(replicaVNs[r]), Port: 80}
	}

	hosts := make([]*netstack.Host, nClients)
	for i := 0; i < nClients; i++ {
		hosts[i] = em.NewHost(modelnet.VN(i))
	}
	pb := webrepl.NewPlayback(hosts, target)
	reqs := traffic.Synthesize(traffic.TraceConfig{
		Duration: modelnet.Duration(cfg.TraceDuration),
		Clients:  nClients,
		MinRate:  cfg.MinRate, MaxRate: cfg.MaxRate,
		// Response sizes chosen so the peak (100 req/s) load approaches
		// the 10 Mb/s bottleneck capacity with one replica.
		MedianSize: 8 << 10,
		Seed:       cfg.Seed,
	})
	pb.Run(reqs)
	em.RunUntil(modelnet.Time(cfg.TraceDuration) + modelnet.Time(modelnet.Seconds(60)))
	lat, failed := pb.LatencySample()
	over5 := 1 - lat.FractionBelow(5.0)
	return Fig11Series{Replicas: numReplicas, CDF: lat.CDFAt(20), Failed: failed, Over5s: over5}, nil
}

// PrintFig11 renders the CDFs.
func PrintFig11(w io.Writer, series []Fig11Series) {
	fprintf(w, "Figure 11: client latency CDF vs replica count (seconds)\n")
	for _, s := range series {
		fprintf(w, "%d replica(s): p50=%6.3f p90=%6.3f p99=%6.3f  >5s: %4.1f%%  failed=%d\n",
			s.Replicas, cdfAtP(s.CDF, 0.50), cdfAtP(s.CDF, 0.90), cdfAtP(s.CDF, 0.99),
			s.Over5s*100, s.Failed)
	}
}
