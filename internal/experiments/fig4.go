package experiments

import (
	"io"

	"modelnet"
	"modelnet/internal/netstack"
	"modelnet/internal/traffic"
)

// Fig4 reproduces Figure 4: capacity of a single ModelNet core in
// packets/second as a function of simultaneous TCP flows (each limited to
// 10 Mb/s by its private pipe path) and of emulated hops per flow. The
// published result: 1-hop flows saturate the gigabit NIC at ≈120 Kpkt/s
// with the CPU only ~50% busy; at 8 hops the CPU saturates first at
// ≈90 Kpkt/s and physical NIC drops throttle the senders.

// Fig4Config parameterizes the sweep.
type Fig4Config struct {
	Hops     []int // pipes per flow path (paper: 1,2,4,8,12)
	Flows    []int // concurrent netperf pairs (paper: up to 120)
	Duration modelnet.Duration
	Warmup   modelnet.Duration
	Seed     int64
}

// DefaultFig4 is the paper's full sweep.
func DefaultFig4() Fig4Config {
	return Fig4Config{
		Hops:     []int{1, 2, 4, 8, 12},
		Flows:    []int{8, 24, 48, 72, 96, 120},
		Duration: modelnet.Seconds(1.5),
		Warmup:   modelnet.Seconds(1.0),
		Seed:     1,
	}
}

// ScaledFig4 shrinks the sweep for quick runs while keeping the saturated
// large-flow points that define the figure's shape.
func ScaledFig4(scale float64) Fig4Config {
	cfg := DefaultFig4()
	if scale < 1 {
		cfg.Hops = []int{1, 8}
		cfg.Flows = []int{24, 96}
		cfg.Duration = modelnet.Seconds(1.0)
		cfg.Warmup = modelnet.Seconds(1.0)
	}
	return cfg
}

// Fig4Row is one measured point.
type Fig4Row struct {
	Hops    int
	Flows   int
	Kpps    float64 // packets/second through the core, thousands
	CPUUtil float64 // core CPU busy fraction during measurement
	Drops   uint64  // physical drops during measurement
}

// RunFig4 executes the sweep.
func RunFig4(cfg Fig4Config) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, hops := range cfg.Hops {
		for _, flows := range cfg.Flows {
			row, err := runFig4Point(cfg, hops, flows)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runFig4Point(cfg Fig4Config, hops, flows int) (Fig4Row, error) {
	// Each flow gets a private chain of `hops` 10 Mb/s pipes with 10 ms
	// total one-way latency.
	attr := modelnet.LinkAttrs{
		BandwidthBps: modelnet.Mbps(10),
		LatencySec:   modelnet.Ms(10) / float64(hops),
		QueuePkts:    20,
	}
	g := modelnet.Pairs(flows, hops, attr)
	// The pairs topology is deliberately disconnected (each flow has a
	// private path), so use the route cache rather than the all-pairs
	// matrix.
	em, err := modelnet.Run(g, modelnet.Options{Seed: cfg.Seed, RouteCache: flows * 8})
	if err != nil {
		return Fig4Row{}, err
	}
	// Stagger flow starts over ~200 ms: simultaneous slow-start bursts
	// from perfectly synchronized senders are an artifact no real netperf
	// run exhibits.
	for i := 0; i < flows; i++ {
		src := em.NewHost(modelnet.VN(2 * i))
		dst := em.NewHost(modelnet.VN(2*i + 1))
		if _, err := traffic.NewSink(dst, 80); err != nil {
			return Fig4Row{}, err
		}
		start := modelnet.Time(int64(i) * int64(200*float64(vtimeMillisecond)) / int64(max(flows, 1)))
		em.Sched.At(start, func() {
			traffic.StartBulk(src, netstack.Endpoint{VN: dst.VN(), Port: 80}, traffic.Unbounded)
		})
	}
	em.RunFor(cfg.Warmup)
	startPkts := em.Emu.Delivered
	startCPU := em.Emu.CoreStats(0).CPUWork
	startDrops := physDrops(em)
	em.RunFor(cfg.Duration)
	dur := cfg.Duration.Seconds()
	row := Fig4Row{
		Hops:    hops,
		Flows:   flows,
		Kpps:    float64(em.Emu.Delivered-startPkts) / dur / 1e3,
		CPUUtil: (em.Emu.CoreStats(0).CPUWork - startCPU).Seconds() / dur,
		Drops:   physDrops(em) - startDrops,
	}
	return row, nil
}

func physDrops(em *modelnet.Emulation) uint64 {
	var n uint64
	for i := 0; i < em.Emu.Cores(); i++ {
		cs := em.Emu.CoreStats(i)
		n += cs.PhysDropsCPU + cs.PhysDropsNIC + cs.PhysDropsTx
	}
	return n
}

// PrintFig4 renders the rows as the figure's series.
func PrintFig4(w io.Writer, rows []Fig4Row) {
	fprintf(w, "Figure 4: single-core capacity (pkts/sec vs flows, per hop count)\n")
	fprintf(w, "%6s %6s %12s %8s %10s\n", "hops", "flows", "Kpkts/sec", "cpu", "drops")
	for _, r := range rows {
		fprintf(w, "%6d %6d %12.1f %7.0f%% %10d\n", r.Hops, r.Flows, r.Kpps, r.CPUUtil*100, r.Drops)
	}
}
