package experiments

// The parallel runtime's determinism contract, exercised on real
// application workloads: running the gnutella scale study and a CFS
// download with the same seed under sequential and parallel modes must
// produce byte-identical conservation counters and identical delivery-time
// CDFs (internal/stats). The federated tests extend the same contract to
// real multi-process runs over loopback sockets: 1-process sequential,
// N-goroutine parallel, and N-process federated executions must agree.
// See DESIGN.md for the contract's scope.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"modelnet"
	"modelnet/internal/fednet"
	"modelnet/internal/pipes"
	"modelnet/internal/stats"
)

func sameCDF(t *testing.T, name string, a, b *stats.Sample) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("%s: delivery count %d vs %d", name, a.N(), b.N())
	}
	ac, bc := a.CDFAt(64), b.CDFAt(64)
	if len(ac) != len(bc) {
		t.Fatalf("%s: CDF lengths %d vs %d", name, len(ac), len(bc))
	}
	for i := range ac {
		if ac[i] != bc[i] {
			t.Fatalf("%s: CDF diverges at point %d: %+v vs %+v", name, i, ac[i], bc[i])
		}
	}
}

func TestGnutellaSeqParDeterminism(t *testing.T) {
	cfg := ScaleConfig{
		Servents: 200,
		Degree:   4,
		TTL:      7,
		EdgeVNs:  25,
		Window:   modelnet.Seconds(10),
		Seed:     15,
		Cores:    4,
	}
	seqCfg, parCfg := cfg, cfg
	parCfg.Parallel = true
	seq, err := RunScale(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunScale(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Reachable != par.Reachable || seq.Forwarded != par.Forwarded ||
		seq.Duplicates != par.Duplicates || seq.CorePkts != par.CorePkts {
		t.Errorf("gnutella diverges:\n sequential %+v\n parallel   %+v", seq, par)
	}
	if seq.Reachable < cfg.Servents/2 {
		t.Errorf("flood barely spread: %d/%d reachable", seq.Reachable, cfg.Servents)
	}
	sameCDF(t, "gnutella", seq.Deliveries, par.Deliveries)
}

// cfsRun builds a CFS cluster, downloads the striped file from two nodes,
// and returns the counters plus the delivery-time sample.
func cfsRun(t *testing.T, parallel bool) (uint64, uint64, uint64, *stats.Sample, float64) {
	t.Helper()
	ideal := modelnet.IdealProfile()
	cfg := DefaultCFS()
	cfg.Cores = 3
	cfg.Parallel = parallel
	cfg.Profile = &ideal
	cl, err := newCFSCluster(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	sample := &stats.Sample{}
	var mu sync.Mutex
	cl.em.OnDeliver(func(pkt *pipes.Packet, at modelnet.Time) {
		mu.Lock()
		sample.Add(at.Seconds())
		mu.Unlock()
	})
	speed := 0.0
	for _, node := range []int{0, 6} {
		sp, err := cl.download(cfg, node, 24<<10)
		if err != nil {
			t.Fatal(err)
		}
		speed += sp
	}
	tot := cl.em.Totals()
	return tot.Injected, tot.Delivered, tot.NoRoute, sample, speed
}

// fednetRingSpec is the federated determinism workload: small enough to
// run three times per test, large enough that traffic genuinely crosses
// shards.
func fednetRingSpec() RingCBRSpec {
	return RingCBRSpec{
		Routers:       8,
		VNsPerRouter:  4,
		PacketsPerSec: 50,
		PacketBytes:   600,
		DurationSec:   2,
		Seed:          11,
	}
}

// sampleOf turns a federated run's merged delivery times into a Sample
// comparable with the local runners' (CDFAt sorts internally, so shard
// interleaving is irrelevant).
func sampleOf(rep *fednet.Report) *stats.Sample {
	s := &stats.Sample{}
	s.AddAll(rep.Deliveries)
	return s
}

func TestRingFednetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	spec := fednetRingSpec()
	seq, err := RunRingCBRLocal(spec, 1, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Totals.Delivered == 0 {
		t.Fatal("ring run delivered nothing")
	}
	for _, sm := range []modelnet.SyncMode{modelnet.SyncAdaptive, modelnet.SyncFixed} {
		par, err := RunRingCBRLocal(spec, 4, true, false, WithSync(sm))
		if err != nil {
			t.Fatal(err)
		}
		if seq.Totals != par.Totals {
			t.Errorf("ring counters diverge (%s):\n sequential %+v\n parallel   %+v", sm, seq.Totals, par.Totals)
		}
		sameCDF(t, "ring seq vs par "+sm.String(), seq.Deliveries, par.Deliveries)
	}
	for _, fp := range fedPlanes {
		fed, err := RunRingCBRFederated(spec, fp.cores, fp.plane, WithSync(fp.sync))
		if err != nil {
			t.Fatalf("%d workers over %s (%s): %v", fp.cores, fp.plane, fp.sync, err)
		}
		name := fmtPlane("ring", fp.cores, fp.plane, fp.sync)
		if seq.Totals != fed.Totals {
			t.Errorf("%s: counters diverge:\n sequential %+v\n federated  %+v", name, seq.Totals, fed.Totals)
		}
		sameCDF(t, name, seq.Deliveries, sampleOf(fed))
		if fed.Sync.Messages == 0 {
			t.Errorf("%s: no cross-core messages — the comparison is vacuous", name)
		}
	}
}

func TestGnutellaFednetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	spec := GnutellaRingSpec{
		Routers:      10,
		VNsPerRouter: 12,
		Degree:       4,
		TTL:          6,
		WindowSec:    8,
		Seed:         15,
	}
	seq, err := RunGnutellaRingLocal(spec, 1, false, false)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunGnutellaRingLocal(spec, 4, true, false)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := RunGnutellaRingFederated(spec, 2, fednet.DataTCP)
	if err != nil {
		t.Fatal(err)
	}
	fedRep, err := GnutellaFederatedReport(fed)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Gnutella.Reachable < spec.Servents()/2 {
		t.Errorf("flood barely spread: %d/%d reachable", seq.Gnutella.Reachable, spec.Servents())
	}
	if seq.Gnutella != par.Gnutella {
		t.Errorf("gnutella overlay results diverge:\n sequential %+v\n parallel   %+v", seq.Gnutella, par.Gnutella)
	}
	if seq.Gnutella != fedRep {
		t.Errorf("gnutella overlay results diverge:\n sequential %+v\n federated  %+v", seq.Gnutella, fedRep)
	}
	if seq.Totals != par.Totals {
		t.Errorf("gnutella counters diverge:\n sequential %+v\n parallel   %+v", seq.Totals, par.Totals)
	}
	if seq.Totals != fed.Totals {
		t.Errorf("gnutella counters diverge:\n sequential %+v\n federated  %+v", seq.Totals, fed.Totals)
	}
	sameCDF(t, "gnutella seq vs par", seq.Deliveries, par.Deliveries)
	sameCDF(t, "gnutella seq vs fednet", seq.Deliveries, sampleOf(fed))
	if fed.Sync.Messages == 0 {
		t.Error("federated gnutella exchanged no cross-core messages — the comparison is vacuous")
	}
}

// fedPlanes are the (workers, data plane, sync algebra) points the federated
// suite covers: both planes at 2, 3, and 4 worker processes, each under the
// adaptive grant algebra and the fixed-lookahead baseline. Window boundaries
// differ between the two algebras; counters, reports, and delivery CDFs must
// not.
var fedPlanes = []struct {
	cores int
	plane string
	sync  modelnet.SyncMode
}{
	{2, fednet.DataUDP, modelnet.SyncAdaptive},
	{2, fednet.DataUDP, modelnet.SyncFixed},
	{2, fednet.DataTCP, modelnet.SyncAdaptive},
	{2, fednet.DataTCP, modelnet.SyncFixed},
	{3, fednet.DataUDP, modelnet.SyncAdaptive},
	{3, fednet.DataUDP, modelnet.SyncFixed},
	{3, fednet.DataTCP, modelnet.SyncAdaptive},
	{3, fednet.DataTCP, modelnet.SyncFixed},
	{4, fednet.DataUDP, modelnet.SyncAdaptive},
	{4, fednet.DataUDP, modelnet.SyncFixed},
	{4, fednet.DataTCP, modelnet.SyncAdaptive},
	{4, fednet.DataTCP, modelnet.SyncFixed},
}

// TestCFSRingFednetDeterminism extends the cross-mode contract to the CFS
// workload: Chord lookups and block fetches ride RPC frames whose bodies
// are nested payloads, so every cross-core packet exercises the recursive
// codec layer.
func TestCFSRingFednetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	spec := CFSRingSpec{
		Routers:      4,
		VNsPerRouter: 3,
		FileKB:       64,
		WindowKB:     24,
		Downloaders:  []int{0, 7},
		DurationSec:  5,
		Seed:         21,
	}
	seq, err := RunCFSRingLocal(spec, 1, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.CFS.Downloads) != len(spec.Downloaders) {
		t.Fatalf("expected %d downloads, got %+v", len(spec.Downloaders), seq.CFS.Downloads)
	}
	for _, d := range seq.CFS.Downloads {
		if !d.Done || d.Failed > 0 || d.Bytes != spec.FileKB<<10 {
			t.Errorf("download from node %d incomplete: %+v", d.Node, d)
		}
	}
	for _, sm := range []modelnet.SyncMode{modelnet.SyncAdaptive, modelnet.SyncFixed} {
		par, err := RunCFSRingLocal(spec, 4, true, false, WithSync(sm))
		if err != nil {
			t.Fatal(err)
		}
		if seq.Totals != par.Totals {
			t.Errorf("cfs-ring counters diverge (%s):\n sequential %+v\n parallel   %+v", sm, seq.Totals, par.Totals)
		}
		if !reflect.DeepEqual(seq.CFS, par.CFS) {
			t.Errorf("cfs-ring reports diverge (%s):\n sequential %+v\n parallel   %+v", sm, seq.CFS, par.CFS)
		}
		sameCDF(t, "cfs-ring seq vs par "+sm.String(), seq.Deliveries, par.Deliveries)
	}
	for _, fp := range fedPlanes {
		fed, err := RunCFSRingFederated(spec, fp.cores, fp.plane, WithSync(fp.sync))
		if err != nil {
			t.Fatalf("%d workers over %s (%s): %v", fp.cores, fp.plane, fp.sync, err)
		}
		name := fmtPlane("cfs-ring", fp.cores, fp.plane, fp.sync)
		if seq.Totals != fed.Totals {
			t.Errorf("%s: counters diverge:\n sequential %+v\n federated  %+v", name, seq.Totals, fed.Totals)
		}
		fedRep, err := CFSFederatedReport(fed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.CFS, fedRep) {
			t.Errorf("%s: reports diverge:\n sequential %+v\n federated  %+v", name, seq.CFS, fedRep)
		}
		sameCDF(t, name, seq.Deliveries, sampleOf(fed))
		if fed.Sync.Messages == 0 {
			t.Errorf("%s: no cross-core messages — the comparison is vacuous", name)
		}
	}
}

// TestWebReplRingFednetDeterminism extends the contract to the web-replica
// workload: real netstack TCP connections — handshakes, message markers,
// retransmissions, RTO state — cross core-process boundaries as Segment
// payloads, under link loss that guarantees retransmitted segments span
// the cut.
func TestWebReplRingFednetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	spec := WebReplRingSpec{
		Routers:      6,
		VNsPerRouter: 3,
		LossPct:      1.0,
		TraceSec:     2,
		MinRate:      30,
		MaxRate:      60,
		MedianSize:   8 << 10,
		DrainSec:     6,
		Seed:         31,
	}
	seq, err := RunWebReplRingLocal(spec, 1, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Web.OK == 0 {
		t.Fatalf("no requests completed: %+v", seq.Web)
	}
	if seq.Web.Retransmits == 0 {
		t.Fatalf("lossy ring produced no TCP retransmissions — the workload is not exercising RTO state: %+v", seq.Web)
	}
	par, err := RunWebReplRingLocal(spec, 4, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Totals != par.Totals {
		t.Errorf("webrepl-ring counters diverge:\n sequential %+v\n parallel   %+v", seq.Totals, par.Totals)
	}
	if seq.Web.Comparable() != par.Web.Comparable() {
		t.Errorf("webrepl-ring reports diverge:\n sequential %+v\n parallel   %+v", seq.Web, par.Web)
	}
	sameCDF(t, "webrepl-ring seq vs par", seq.Deliveries, par.Deliveries)
	crossRetransRuns := 0
	for _, fp := range fedPlanes {
		fed, err := RunWebReplRingFederated(spec, fp.cores, fp.plane, WithSync(fp.sync))
		if err != nil {
			t.Fatalf("%d workers over %s (%s): %v", fp.cores, fp.plane, fp.sync, err)
		}
		name := fmtPlane("webrepl-ring", fp.cores, fp.plane, fp.sync)
		if seq.Totals != fed.Totals {
			t.Errorf("%s: counters diverge:\n sequential %+v\n federated  %+v", name, seq.Totals, fed.Totals)
		}
		fedRep, err := WebReplFederatedReport(fed)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Web.Comparable() != fedRep.Comparable() {
			t.Errorf("%s: reports diverge:\n sequential %+v\n federated  %+v", name, seq.Web, fedRep)
		}
		sameCDF(t, name, seq.Deliveries, sampleOf(fed))
		if fed.Sync.Messages == 0 {
			t.Errorf("%s: no cross-core messages — the comparison is vacuous", name)
		}
		if fedRep.CrossRetransmits > 0 {
			crossRetransRuns++
		}
	}
	// The acceptance probe: TCP retransmission state survived a core
	// boundary (a retransmitted segment was re-sent on a connection whose
	// peer lives in another worker process).
	if crossRetransRuns == 0 {
		t.Error("no federated run retransmitted across a core boundary — the TCP-over-the-cut path went unexercised")
	}
}

// TestFlakyEdgeFednetDeterminism extends the contract to link dynamics:
// every ring link replays the bundled wifi contention trace (so pipe
// parameters are functions of virtual time and shard lookahead must come
// from the profile's latency floor) while a cut ring link fails mid-run,
// blackholes traffic until routes reconverge, and later recovers. All
// three runtimes must agree on the conservation counters, the delivery
// CDF, the scenario report, and the per-pipe drop vector — including the
// drops charged to the failed pipe itself.
func TestFlakyEdgeFednetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	base := FlakyEdgeSpec{
		Web: WebReplRingSpec{
			Routers:      6,
			VNsPerRouter: 3,
			LossPct:      0.5,
			TraceSec:     1.5,
			MinRate:      30,
			MaxRate:      60,
			MedianSize:   8 << 10,
			DrainSec:     4.5,
			Seed:         42,
		},
		Trace:           "wifi",
		FailSec:         0.6,
		RecoverSec:      2.4,
		RerouteDelaySec: 0.25,
	}
	// The failed link crosses the k-core partition, so the spec differs per
	// worker count; sequential and in-process runs use the same spec as the
	// federation they are compared against.
	type localPair struct {
		spec FlakyEdgeSpec
		seq  *localRun
	}
	locals := map[int]localPair{}
	for _, fp := range fedPlanes {
		lp, ok := locals[fp.cores]
		if !ok {
			spec := base
			fail, err := spec.CutFailLink(fp.cores)
			if err != nil {
				t.Fatal(err)
			}
			spec.FailLink = fail
			seq, err := RunFlakyEdgeLocal(spec, 1, false, false)
			if err != nil {
				t.Fatal(err)
			}
			if seq.Web.OK == 0 {
				t.Fatalf("%d cores: no requests completed: %+v", fp.cores, seq.Web)
			}
			if seq.PipeDrops[spec.FailLink] == 0 {
				t.Errorf("%d cores: failed link %d dropped nothing — the blackhole went unexercised", fp.cores, spec.FailLink)
			}
			for _, sm := range []modelnet.SyncMode{modelnet.SyncAdaptive, modelnet.SyncFixed} {
				par, err := RunFlakyEdgeLocal(spec, fp.cores, true, false, WithSync(sm))
				if err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("flaky-edge seq vs inproc-%d/%s", fp.cores, sm)
				if seq.Totals != par.Totals {
					t.Errorf("%s: counters diverge:\n sequential %+v\n parallel   %+v", name, seq.Totals, par.Totals)
				}
				if seq.Web.Comparable() != par.Web.Comparable() {
					t.Errorf("%s: reports diverge:\n sequential %+v\n parallel   %+v", name, seq.Web, par.Web)
				}
				if !reflect.DeepEqual(seq.PipeDrops, par.PipeDrops) {
					t.Errorf("%s: per-pipe drops diverge:\n sequential %v\n parallel   %v", name, seq.PipeDrops, par.PipeDrops)
				}
				sameCDF(t, name, seq.Deliveries, par.Deliveries)
			}
			lp = localPair{spec: spec, seq: seq}
			locals[fp.cores] = lp
		}
		fed, err := RunFlakyEdgeFederated(lp.spec, fp.cores, fp.plane, WithSync(fp.sync))
		if err != nil {
			t.Fatalf("%d workers over %s (%s): %v", fp.cores, fp.plane, fp.sync, err)
		}
		name := fmtPlane("flaky-edge", fp.cores, fp.plane, fp.sync)
		if lp.seq.Totals != fed.Totals {
			t.Errorf("%s: counters diverge:\n sequential %+v\n federated  %+v", name, lp.seq.Totals, fed.Totals)
		}
		fedRep, err := FlakyEdgeFederatedReport(fed)
		if err != nil {
			t.Fatal(err)
		}
		if lp.seq.Web.Comparable() != fedRep.Comparable() {
			t.Errorf("%s: reports diverge:\n sequential %+v\n federated  %+v", name, lp.seq.Web, fedRep)
		}
		if !reflect.DeepEqual(lp.seq.PipeDrops, fed.PipeDrops) {
			t.Errorf("%s: per-pipe drops diverge:\n sequential %v\n federated  %v", name, lp.seq.PipeDrops, fed.PipeDrops)
		}
		sameCDF(t, name, lp.seq.Deliveries, sampleOf(fed))
		if fed.Sync.Messages == 0 {
			t.Errorf("%s: no cross-core messages — the comparison is vacuous", name)
		}
	}
}

func fmtPlane(scenario string, cores int, plane string, sm modelnet.SyncMode) string {
	return fmt.Sprintf("%s seq vs fednet-%s-%d/%s", scenario, plane, cores, sm)
}

func TestCFSSeqParDeterminism(t *testing.T) {
	si, sd, sn, ss, sspeed := cfsRun(t, false)
	pi, pd, pn, ps, pspeed := cfsRun(t, true)
	if si != pi || sd != pd || sn != pn {
		t.Errorf("CFS counters diverge: seq (inj %d, del %d, noroute %d) vs par (%d, %d, %d)",
			si, sd, sn, pi, pd, pn)
	}
	if sspeed != pspeed {
		t.Errorf("CFS download speeds diverge: %v vs %v KB/s", sspeed, pspeed)
	}
	if sd == 0 {
		t.Fatal("CFS run delivered nothing")
	}
	sameCDF(t, "cfs", ss, ps)
}
