package experiments

// The parallel runtime's determinism contract, exercised on real
// application workloads: running the gnutella scale study and a CFS
// download with the same seed under sequential and parallel modes must
// produce byte-identical conservation counters and identical delivery-time
// CDFs (internal/stats). See DESIGN.md for the contract's scope.

import (
	"sync"
	"testing"

	"modelnet"
	"modelnet/internal/pipes"
	"modelnet/internal/stats"
)

func sameCDF(t *testing.T, name string, a, b *stats.Sample) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("%s: delivery count %d vs %d", name, a.N(), b.N())
	}
	ac, bc := a.CDFAt(64), b.CDFAt(64)
	if len(ac) != len(bc) {
		t.Fatalf("%s: CDF lengths %d vs %d", name, len(ac), len(bc))
	}
	for i := range ac {
		if ac[i] != bc[i] {
			t.Fatalf("%s: CDF diverges at point %d: %+v vs %+v", name, i, ac[i], bc[i])
		}
	}
}

func TestGnutellaSeqParDeterminism(t *testing.T) {
	cfg := ScaleConfig{
		Servents: 200,
		Degree:   4,
		TTL:      7,
		EdgeVNs:  25,
		Window:   modelnet.Seconds(10),
		Seed:     15,
		Cores:    4,
	}
	seqCfg, parCfg := cfg, cfg
	parCfg.Parallel = true
	seq, err := RunScale(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunScale(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Reachable != par.Reachable || seq.Forwarded != par.Forwarded ||
		seq.Duplicates != par.Duplicates || seq.CorePkts != par.CorePkts {
		t.Errorf("gnutella diverges:\n sequential %+v\n parallel   %+v", seq, par)
	}
	if seq.Reachable < cfg.Servents/2 {
		t.Errorf("flood barely spread: %d/%d reachable", seq.Reachable, cfg.Servents)
	}
	sameCDF(t, "gnutella", seq.Deliveries, par.Deliveries)
}

// cfsRun builds a CFS cluster, downloads the striped file from two nodes,
// and returns the counters plus the delivery-time sample.
func cfsRun(t *testing.T, parallel bool) (uint64, uint64, uint64, *stats.Sample, float64) {
	t.Helper()
	ideal := modelnet.IdealProfile()
	cfg := DefaultCFS()
	cfg.Cores = 3
	cfg.Parallel = parallel
	cfg.Profile = &ideal
	cl, err := newCFSCluster(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	sample := &stats.Sample{}
	var mu sync.Mutex
	cl.em.OnDeliver(func(pkt *pipes.Packet, at modelnet.Time) {
		mu.Lock()
		sample.Add(at.Seconds())
		mu.Unlock()
	})
	speed := 0.0
	for _, node := range []int{0, 6} {
		sp, err := cl.download(cfg, node, 24<<10)
		if err != nil {
			t.Fatal(err)
		}
		speed += sp
	}
	tot := cl.em.Totals()
	return tot.Injected, tot.Delivered, tot.NoRoute, sample, speed
}

func TestCFSSeqParDeterminism(t *testing.T) {
	si, sd, sn, ss, sspeed := cfsRun(t, false)
	pi, pd, pn, ps, pspeed := cfsRun(t, true)
	if si != pi || sd != pd || sn != pn {
		t.Errorf("CFS counters diverge: seq (inj %d, del %d, noroute %d) vs par (%d, %d, %d)",
			si, sd, sn, pi, pd, pn)
	}
	if sspeed != pspeed {
		t.Errorf("CFS download speeds diverge: %v vs %v KB/s", sspeed, pspeed)
	}
	if sd == 0 {
		t.Fatal("CFS run delivered nothing")
	}
	sameCDF(t, "cfs", ss, ps)
}
