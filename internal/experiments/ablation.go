package experiments

import (
	"io"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/routing"
	"modelnet/internal/topology"
	"modelnet/internal/traffic"
	"modelnet/internal/vtime"
)

// Ablations for the design alternatives the paper names but does not
// evaluate: the three §2.2 route-table designs (precomputed matrix, LRU
// cache, hierarchical tables), payload caching for cross-core tunnels
// (§2.2), and perfect-vs-emulated routing failover (§2.3).

// RouteTableRow compares one table implementation.
type RouteTableRow struct {
	Name    string
	Entries int     // stored routes
	BuildMs float64 // wall-clock-free proxy: routes computed
	HitCost string  // qualitative lookup cost
}

// RunRouteTableAblation builds all three tables over the paper's ring and
// reports storage. (Lookup-time behaviour is asserted in the bind tests;
// here the interesting number is memory.)
func RunRouteTableAblation() ([]RouteTableRow, error) {
	g := topology.Ring(20, 20,
		topology.LinkAttrs{BandwidthBps: 20e6, LatencySec: 0.005, QueuePkts: 30},
		topology.LinkAttrs{BandwidthBps: 2e6, LatencySec: 0.001, QueuePkts: 20})
	homes := g.Clients()
	n := len(homes)

	var rows []RouteTableRow
	if _, err := bind.BuildMatrix(g, homes); err != nil {
		return nil, err
	}
	rows = append(rows, RouteTableRow{
		Name: "matrix (O(n²))", Entries: n * (n - 1), HitCost: "O(1) index",
	})
	h, err := bind.BuildHier(g, homes)
	if err != nil {
		return nil, err
	}
	rows = append(rows, RouteTableRow{
		Name: "hierarchical (§2.2)", Entries: h.Entries, HitCost: "O(path) splice",
	})
	c := bind.NewCache(g, homes, 4*n)
	// Touch a plausible working set so the cache row reflects steady state.
	for i := 0; i < n; i++ {
		c.Lookup(pipes.VN(i), pipes.VN((i+7)%n))
	}
	rows = append(rows, RouteTableRow{
		Name: "LRU cache (O(n lg n))", Entries: c.Len(), HitCost: "O(1) hit, Dijkstra miss",
	})
	return rows, nil
}

// PrintRouteTableAblation renders the comparison.
func PrintRouteTableAblation(w io.Writer, rows []RouteTableRow) {
	fprintf(w, "Ablation: §2.2 route table designs (20x20 ring, 400 VNs)\n")
	fprintf(w, "%-24s %12s  %s\n", "design", "routes", "lookup")
	for _, r := range rows {
		fprintf(w, "%-24s %12d  %s\n", r.Name, r.Entries, r.HitCost)
	}
}

// PayloadCachingRow is one tunneling variant's throughput.
type PayloadCachingRow struct {
	Caching  bool
	Kpps     float64
	TunnelMB float64 // bytes tunneled between cores
}

// RunPayloadCachingAblation measures Table 1's worst case (100% cross-core
// traffic) with and without the §2.2 payload-caching optimization
// ("leaving the packet contents buffered on the entry core node").
func RunPayloadCachingAblation(scale float64) ([]PayloadCachingRow, error) {
	var rows []PayloadCachingRow
	for _, caching := range []bool{false, true} {
		cfg := ScaledTable1(scale)
		cfg.CrossPcts = []int{100}
		got, err := runTable1PointWithCaching(cfg, 100, caching)
		if err != nil {
			return nil, err
		}
		rows = append(rows, got)
	}
	return rows, nil
}

func runTable1PointWithCaching(cfg Table1Config, pct int, caching bool) (PayloadCachingRow, error) {
	// Reuse the Table 1 machinery with the profile flag flipped.
	row, tunnelBytes, err := runTable1Custom(cfg, pct, caching)
	if err != nil {
		return PayloadCachingRow{}, err
	}
	return PayloadCachingRow{
		Caching:  caching,
		Kpps:     row.Kpps,
		TunnelMB: float64(tunnelBytes) / 1e6,
	}, nil
}

// PrintPayloadCachingAblation renders the comparison.
func PrintPayloadCachingAblation(w io.Writer, rows []PayloadCachingRow) {
	fprintf(w, "Ablation: payload caching for cross-core tunnels (100%% crossing)\n")
	fprintf(w, "%-16s %12s %14s\n", "tunneling", "Kpkt/s", "tunnel MB")
	for _, r := range rows {
		name := "full packet"
		if r.Caching {
			name = "descriptor only"
		}
		fprintf(w, "%-16s %12.1f %14.1f\n", name, r.Kpps, r.TunnelMB)
	}
}

// FailoverRow is one routing mode's observed outage.
type FailoverRow struct {
	Mode     string
	OutageMs float64
	Lost     int
}

// RunFailoverAblation compares the base system's "perfect routing"
// assumption (instant reconvergence, §2.3) against the emulated
// distance-vector module: a CBR stream crosses a diamond whose fast path
// is cut mid-run; the outage is the largest inter-arrival gap.
func RunFailoverAblation() ([]FailoverRow, error) {
	var rows []FailoverRow
	for _, mode := range []string{"perfect", "distance-vector"} {
		row, err := runFailover(mode)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runFailover(mode string) (FailoverRow, error) {
	g := topology.New()
	a := g.AddNode(topology.Client, "a")
	top := g.AddNode(topology.Stub, "top")
	bot := g.AddNode(topology.Stub, "bot")
	b := g.AddNode(topology.Client, "b")
	f1, f1r := g.AddDuplex(a, top, topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: 0.001, QueuePkts: 30})
	g.AddDuplex(top, b, topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: 0.001, QueuePkts: 30})
	g.AddDuplex(a, bot, topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: 0.010, QueuePkts: 30})
	g.AddDuplex(bot, b, topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: 0.010, QueuePkts: 30})

	bnd, err := bind.Bind(g, bind.Options{})
	if err != nil {
		return FailoverRow{}, err
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, g, bnd, nil, emucore.IdealProfile(), 3)
	if err != nil {
		return FailoverRow{}, err
	}
	var dv *routing.DV
	if mode == "distance-vector" {
		dv = routing.New(sched, g, bnd.VNHome, routing.Config{AdvertiseEvery: 2 * vtime.Second})
		emu.SetTable(dv.Table())
		dv.Start()
	}

	h0 := netstack.NewHost(0, sched, emu, emuRegistrar{emu})
	h1 := netstack.NewHost(1, sched, emu, emuRegistrar{emu})
	var arrivals []vtime.Time
	h1.OpenUDP(9, func(netstack.Endpoint, *netstack.Datagram) {
		arrivals = append(arrivals, sched.Now())
	})
	s, err := h0.OpenUDP(0, nil)
	if err != nil {
		return FailoverRow{}, err
	}
	const interval = 20 * vtime.Millisecond
	tick := vtime.NewTicker(sched, interval, func() {
		s.SendTo(netstack.Endpoint{VN: 1, Port: 9}, 200, nil)
	})
	sched.RunUntil(vtime.Time(10 * vtime.Second))
	tick.Start()
	failAt := vtime.Time(20*vtime.Second + 700*vtime.Millisecond)
	sched.At(failAt, func() {
		if dv != nil {
			dv.SetLinkDown(f1, true)
			dv.SetLinkDown(f1r, true)
			p := emu.Pipe(pipes.ID(f1)).Params()
			p.LossRate = 0.999999
			emu.SetPipeParams(pipes.ID(f1), p)
		} else {
			// Perfect routing: instantaneous shortest-path recomputation.
			if err := traffic.FailLinks(emu, g, map[topology.LinkID]bool{f1: true, f1r: true}); err != nil {
				panic(err)
			}
		}
	})
	sched.RunUntil(vtime.Time(50 * vtime.Second))
	tick.Stop()

	var outage vtime.Duration
	sent := int(vtime.Time(50*vtime.Second).Sub(vtime.Time(10*vtime.Second)) / vtime.Duration(interval))
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < failAt {
			continue
		}
		if gap := arrivals[i].Sub(arrivals[i-1]); gap > outage {
			outage = gap
		}
	}
	return FailoverRow{
		Mode:     mode,
		OutageMs: float64(outage) / float64(vtime.Millisecond),
		Lost:     sent - len(arrivals),
	}, nil
}

// PrintFailoverAblation renders the comparison.
func PrintFailoverAblation(w io.Writer, rows []FailoverRow) {
	fprintf(w, "Ablation: §2.3 routing — perfect vs emulated distance-vector failover\n")
	fprintf(w, "%-18s %12s %8s\n", "routing", "outage ms", "lost")
	for _, r := range rows {
		fprintf(w, "%-18s %12.1f %8d\n", r.Mode, r.OutageMs, r.Lost)
	}
}
