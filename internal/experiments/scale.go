package experiments

import (
	"io"
	"math/rand"
	"sync"

	"modelnet"
	"modelnet/internal/apps/gnutella"
	"modelnet/internal/pipes"
	"modelnet/internal/stats"
)

// The paper's largest single experiment evaluated "system evolution and
// connectivity of a 10,000 node network of unmodified gnutella clients by
// mapping 100 VNs to each of 100 edge nodes". This driver reproduces the
// connectivity measurement at the same scale.

// ScaleConfig parameterizes the gnutella scale run.
type ScaleConfig struct {
	Servents int
	Degree   int
	TTL      int
	EdgeVNs  int // VNs multiplexed per edge node (paper: 100)
	Window   modelnet.Duration
	Seed     int64
	// Cores and Parallel select the core-cluster configuration; Cores 0
	// means 1. With Parallel set the run uses the parallel runtime
	// (internal/parcore) and must produce the same result.
	Cores    int
	Parallel bool
}

// DefaultScale is the paper's 10,000-servent configuration.
func DefaultScale() ScaleConfig {
	return ScaleConfig{
		Servents: 10000,
		Degree:   4,
		TTL:      7,
		EdgeVNs:  100,
		Window:   modelnet.Seconds(60),
		Seed:     15,
	}
}

// ScaledScale shrinks the population for quick runs.
func ScaledScale(scale float64) ScaleConfig {
	cfg := DefaultScale()
	cfg.Servents = scaleInt(cfg.Servents, scale, 500)
	if scale < 1 {
		cfg.Window = modelnet.Seconds(30)
	}
	return cfg
}

// ScaleResult summarizes the connectivity measurement.
type ScaleResult struct {
	Servents   int
	Reachable  int // distinct peers answering a TTL-bounded ping flood
	Forwarded  uint64
	Duplicates uint64
	CorePkts   uint64
	// Deliveries samples every packet's delivery time (seconds); its CDF
	// is the determinism probe comparing sequential and parallel modes.
	Deliveries *stats.Sample
}

// RunScale builds the overlay and floods a ping from servent 0.
func RunScale(cfg ScaleConfig) (*ScaleResult, error) {
	n := cfg.Servents
	attr := modelnet.LinkAttrs{
		BandwidthBps: modelnet.Mbps(10),
		LatencySec:   modelnet.Ms(5),
		QueuePkts:    200,
	}
	g := modelnet.Star(n, attr)
	// Heterogeneous last miles: jitter each access latency up to ±20%.
	// Real populations are not metronomes, and distinct per-link delays
	// keep the flood's wavefronts from colliding in the same nanosecond —
	// which is also what lets the sequential and parallel runtimes agree
	// packet-for-packet.
	latRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5ca1e))
	for i := range g.Links {
		a := g.Links[i].Attr
		a.LatencySec *= 0.8 + 0.4*latRng.Float64()
		g.Links[i].Attr = a
	}
	ideal := modelnet.IdealProfile()
	em, err := modelnet.Run(g, modelnet.Options{
		Profile:    &ideal,
		Seed:       cfg.Seed,
		RouteCache: 1 << 17, // the O(n²) matrix would be 100M routes at 10k VNs
		EdgeNodes:  (n + cfg.EdgeVNs - 1) / cfg.EdgeVNs,
		Cores:      cfg.Cores,
		Parallel:   cfg.Parallel,
	})
	if err != nil {
		return nil, err
	}
	res := &ScaleResult{Servents: n, Deliveries: &stats.Sample{}}
	var mu sync.Mutex
	em.OnDeliver(func(pkt *pipes.Packet, at modelnet.Time) {
		mu.Lock()
		res.Deliveries.Add(at.Seconds())
		mu.Unlock()
	})
	rng := rand.New(rand.NewSource(cfg.Seed))
	peers := make([]*gnutella.Peer, n)
	for i := range peers {
		p, err := gnutella.NewPeer(em.NewHost(modelnet.VN(i)), i, gnutella.Config{DefaultTTL: cfg.TTL})
		if err != nil {
			return nil, err
		}
		peers[i] = p
	}
	connect := func(a, b int) {
		peers[a].Connect(peers[b].Addr())
		peers[b].Connect(peers[a].Addr())
	}
	for i := 1; i < n; i++ {
		connect(i, rng.Intn(i))
	}
	for i := 0; i < n*(cfg.Degree-2)/2; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			connect(a, b)
		}
	}
	peers[0].Reachability(cfg.Window, func(c int) { res.Reachable = c })
	em.RunFor(cfg.Window + modelnet.Seconds(5))
	for _, p := range peers {
		res.Forwarded += p.Forwarded
		res.Duplicates += p.Duplicates
	}
	res.CorePkts = em.Totals().Delivered
	return res, nil
}

// PrintScale renders the result.
func PrintScale(w io.Writer, res *ScaleResult) {
	fprintf(w, "Gnutella scale study: %d servents\n", res.Servents)
	fprintf(w, "  reachable from servent 0: %d (%.1f%%)\n",
		res.Reachable, 100*float64(res.Reachable)/float64(res.Servents-1))
	fprintf(w, "  flood: %d forwarded, %d duplicates suppressed, %d packets emulated\n",
		res.Forwarded, res.Duplicates, res.CorePkts)
}
