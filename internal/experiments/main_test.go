package experiments

import (
	"os"
	"testing"

	"modelnet/internal/fednet"
)

// TestMain lets this test binary serve as its own federation worker fleet:
// the federated determinism tests spawn it with the fednet join variable
// set, and MaybeRunWorker diverts those processes into worker mode before
// any test runs.
func TestMain(m *testing.M) {
	fednet.MaybeRunWorker()
	os.Exit(m.Run())
}
