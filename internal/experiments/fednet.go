package experiments

// Federated scenarios and the fednet scaling study. Four workloads register
// with the federation runtime (internal/fednet):
//
//   - "ring-cbr": the parcore study's saturating CBR ring (UDP, nil
//     payloads), the cross-mode determinism yardstick.
//   - "gnutella-ring": a gnutella ping flood over a ring of routers with
//     jittered link latencies, exercising application payload codecs and
//     bursty cross-core traffic.
//   - "cfs-ring": the §5.1 CFS/DHash store spread over a ring — Chord
//     lookups and block fetches ride the UDP RPC layer, whose frames nest
//     application bodies (the recursive payload registry at work).
//   - "webrepl-ring": the §5.2 web service under loss — real netstack TCP
//     connections (handshakes, RTO/retransmit state, message markers)
//     cross core-process boundaries as Segment payloads.
//
// Every scenario is a pure function of its parameters: the coordinator and
// all three execution modes (sequential, in-process parallel, N-process
// federated) derive the same topology, the same per-VN plan, and install it
// identically — which is what makes the byte-identical determinism tests in
// determinism_test.go possible.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"modelnet"
	"modelnet/internal/apps/cfs"
	"modelnet/internal/apps/chord"
	"modelnet/internal/apps/gnutella"
	"modelnet/internal/apps/webrepl"
	"modelnet/internal/dynamics"
	"modelnet/internal/fednet"
	"modelnet/internal/netstack"
	"modelnet/internal/obs"
	"modelnet/internal/pipes"
	"modelnet/internal/stats"
	"modelnet/internal/traffic"
	"modelnet/internal/vtime"
)

// Registered federation scenario names.
const (
	ScenarioRingCBR     = "ring-cbr"
	ScenarioGnutella    = "gnutella-ring"
	ScenarioCFSRing     = "cfs-ring"
	ScenarioWebReplRing = "webrepl-ring"
)

// ---------------------------------------------------------------------------
// ring-cbr

// RingCBRSpec parameterizes the saturating CBR ring workload,
// mode-independently. It doubles as the federation scenario's JSON params.
type RingCBRSpec struct {
	Routers       int     `json:"routers"`
	VNsPerRouter  int     `json:"vns_per_router"`
	PacketsPerSec float64 `json:"packets_per_sec"` // per-VN CBR rate
	PacketBytes   int     `json:"packet_bytes"`
	DurationSec   float64 `json:"duration_sec"` // injection window
	Seed          int64   `json:"seed"`
}

// drain is the extra virtual time after the injection window that lets
// in-flight traffic finish, making the counters insensitive to where the
// cutoff slices.
const ringCBRDrainSec = 0.5

// RunFor is the virtual time a run of this spec must cover.
func (c RingCBRSpec) RunFor() modelnet.Duration {
	return modelnet.Seconds(c.DurationSec + ringCBRDrainSec)
}

// Topology builds the gigabit ring: aggregate offered load stays well under
// capacity so there are zero virtual drops and the cross-mode comparison is
// exact regardless of how same-nanosecond arrivals interleave.
func (c RingCBRSpec) Topology() *modelnet.Graph {
	ringAttr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(1000), LatencySec: modelnet.Ms(5), QueuePkts: 400}
	accessAttr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(10), LatencySec: modelnet.Ms(1), QueuePkts: 100}
	return modelnet.Ring(c.Routers, c.VNsPerRouter, ringAttr, accessAttr)
}

// Install sets up the workload for every VN the caller owns: a sink on port
// 9 and a CBR flow to the same client slot on the diametrically opposite
// router, so every packet traverses half the ring. The per-VN phase and
// rate jitter is drawn for the whole population in VN order, so any subset
// installs values identical to a full install.
func (c RingCBRSpec) Install(n int, homed func(pipes.VN) bool,
	host func(pipes.VN) *netstack.Host, sched func(pipes.VN) *vtime.Scheduler) error {
	rng := rand.New(rand.NewSource(c.Seed))
	period := vtime.DurationOf(1 / c.PacketsPerSec)
	starts := make([]vtime.Duration, n)
	jitters := make([]vtime.Duration, n)
	for v := range starts {
		// Nanosecond-jittered phase and rate de-synchronize the flows.
		starts[v] = vtime.Duration(rng.Int63n(int64(period)))
		jitters[v] = vtime.Duration(rng.Int63n(int64(period / 8)))
	}
	sendEnd := vtime.Time(0).Add(vtime.DurationOf(c.DurationSec))
	for v := 0; v < n; v++ {
		vn := pipes.VN(v)
		if !homed(vn) {
			continue
		}
		h := host(vn)
		if _, err := h.OpenUDP(9, nil); err != nil {
			return err
		}
		s, err := h.OpenUDP(0, nil)
		if err != nil {
			return err
		}
		dst := modelnet.Endpoint{VN: modelnet.VN((v + n/2) % n), Port: 9}
		jitter := jitters[v]
		size := c.PacketBytes
		sc := sched(vn)
		// Injection stops before the deadline so the run drains: every
		// offered packet is delivered or dropped by the end. Each pacing
		// event sends only from its own VN, so it carries that owner claim.
		var send func()
		send = func() {
			s.SendTo(dst, size, nil)
			if next := sc.Now().Add(period + jitter); next < sendEnd {
				sc.AtTagged(next, int32(vn), send)
			}
		}
		sc.AtTagged(sc.Now().Add(starts[v]), int32(vn), send)
	}
	return nil
}

// ---------------------------------------------------------------------------
// gnutella-ring

// GnutellaRingSpec parameterizes a gnutella ping flood over a ring of
// routers (servents spread across them, so the flood genuinely crosses
// cores — unlike the §4.3 star, which one core owns whole).
type GnutellaRingSpec struct {
	Routers      int     `json:"routers"`
	VNsPerRouter int     `json:"vns_per_router"`
	Degree       int     `json:"degree"`
	TTL          int     `json:"ttl"`
	WindowSec    float64 `json:"window_sec"`
	Seed         int64   `json:"seed"`
}

// Servents is the overlay population.
func (c GnutellaRingSpec) Servents() int { return c.Routers * c.VNsPerRouter }

// RunFor covers the reachability window plus settling time (as in the §4.3
// scale study).
func (c GnutellaRingSpec) RunFor() modelnet.Duration {
	return modelnet.Seconds(c.WindowSec + 5)
}

// Topology builds the ring with per-link latency jitter: real populations
// are not metronomes, and distinct per-link delays keep the flood's
// wavefronts from colliding in the same nanosecond — which is what lets all
// three runtimes agree packet-for-packet.
func (c GnutellaRingSpec) Topology() *modelnet.Graph {
	ringAttr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(100), LatencySec: modelnet.Ms(5), QueuePkts: 400}
	accessAttr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(10), LatencySec: modelnet.Ms(1), QueuePkts: 200}
	g := modelnet.Ring(c.Routers, c.VNsPerRouter, ringAttr, accessAttr)
	latRng := rand.New(rand.NewSource(c.Seed ^ 0x5ca1e))
	for i := range g.Links {
		a := g.Links[i].Attr
		a.LatencySec *= 0.8 + 0.4*latRng.Float64()
		g.Links[i].Attr = a
	}
	return g
}

// NeighborPlan derives the overlay adjacency the way the §4.3 scale study
// wires it — a random spanning tree plus random extra edges — as ordered
// per-servent endpoint lists. The list order matters (it is the flood's
// fan-out order), so the plan replays the exact connect sequence.
func (c GnutellaRingSpec) NeighborPlan() [][]netstack.Endpoint {
	n := c.Servents()
	rng := rand.New(rand.NewSource(c.Seed))
	nbrs := make([][]netstack.Endpoint, n)
	add := func(a, b int) {
		ep := netstack.Endpoint{VN: pipes.VN(b), Port: 6346}
		for _, e := range nbrs[a] {
			if e == ep {
				return
			}
		}
		nbrs[a] = append(nbrs[a], ep)
	}
	connect := func(a, b int) { add(a, b); add(b, a) }
	for i := 1; i < n; i++ {
		connect(i, rng.Intn(i))
	}
	for i := 0; i < n*(c.Degree-2)/2; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			connect(a, b)
		}
	}
	return nbrs
}

// GnutellaRingReport is the scenario's measurement: connectivity from
// servent 0 plus flood load, summed over the installing process's peers.
type GnutellaRingReport struct {
	Reachable  int    `json:"reachable"`
	Forwarded  uint64 `json:"forwarded"`
	Duplicates uint64 `json:"duplicates"`
}

// Merge folds another process's report in.
func (r *GnutellaRingReport) Merge(o GnutellaRingReport) {
	if o.Reachable > r.Reachable {
		r.Reachable = o.Reachable
	}
	r.Forwarded += o.Forwarded
	r.Duplicates += o.Duplicates
}

// Install builds the homed slice of the overlay and, on the process homing
// servent 0, starts the reachability flood. The returned closure reports
// this slice's results after the run.
func (c GnutellaRingSpec) Install(n int, homed func(pipes.VN) bool,
	host func(pipes.VN) *netstack.Host) (func() GnutellaRingReport, error) {
	nbrs := c.NeighborPlan()
	rep := &GnutellaRingReport{}
	var peers []*gnutella.Peer
	for v := 0; v < n; v++ {
		vn := pipes.VN(v)
		if !homed(vn) {
			continue
		}
		p, err := gnutella.NewPeer(host(vn), v, gnutella.Config{DefaultTTL: c.TTL})
		if err != nil {
			return nil, err
		}
		for _, ep := range nbrs[v] {
			p.Connect(ep)
		}
		peers = append(peers, p)
		if v == 0 {
			p.Reachability(vtime.DurationOf(c.WindowSec), func(count int) { rep.Reachable = count })
		}
	}
	return func() GnutellaRingReport {
		for _, p := range peers {
			rep.Forwarded += p.Forwarded
			rep.Duplicates += p.Duplicates
		}
		return *rep
	}, nil
}

// ---------------------------------------------------------------------------
// cfs-ring

// CFSRingSpec parameterizes the federated CFS workload: one CFS/DHash peer
// per VN of a router ring, a file striped over the population by ring
// position, and a set of nodes downloading it with a prefetch window. All
// traffic is Chord + block-fetch RPC over the UDP stack; the RPC frames
// nest their application bodies, so every cross-core packet exercises the
// recursive payload codecs.
type CFSRingSpec struct {
	Routers      int     `json:"routers"`
	VNsPerRouter int     `json:"vns_per_router"`
	FileKB       int     `json:"file_kb"`
	WindowKB     int     `json:"window_kb"`    // prefetch window (the Fig. 7 knob)
	Downloaders  []int   `json:"downloaders"`  // VN indices that fetch the file
	DurationSec  float64 `json:"duration_sec"` // total emulated time
	Seed         int64   `json:"seed"`
}

const cfsRingFile = "cfs-ring-file"

// Peers is the CFS population (one peer per VN).
func (c CFSRingSpec) Peers() int { return c.Routers * c.VNsPerRouter }

// RunFor is the virtual time a run of this spec must cover (downloads
// finish well before; the remainder is steady-state Chord maintenance,
// identical in every mode).
func (c CFSRingSpec) RunFor() modelnet.Duration { return modelnet.Seconds(c.DurationSec) }

// Topology builds the ring: fast core links, 10 Mb/s access links — the
// block-transfer bottleneck, as in the §5.1 RON mesh.
func (c CFSRingSpec) Topology() *modelnet.Graph {
	ringAttr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(100), LatencySec: modelnet.Ms(5), QueuePkts: 200}
	accessAttr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(10), LatencySec: modelnet.Ms(1), QueuePkts: 100}
	return modelnet.Ring(c.Routers, c.VNsPerRouter, ringAttr, accessAttr)
}

// RingRefs derives the full Chord membership — IDs from the VN index,
// endpoints from the default Chord port — identically on every process.
func (c CFSRingSpec) RingRefs(n int) ([]chord.ID, []chord.Ref) {
	ids := make([]chord.ID, n)
	refs := make([]chord.Ref, n)
	for v := 0; v < n; v++ {
		ids[v] = chord.HashString(fmt.Sprintf("cfs-ring-%d", v))
		refs[v] = chord.Ref{ID: ids[v], Addr: netstack.Endpoint{VN: pipes.VN(v), Port: 4000}}
	}
	return ids, refs
}

// CFSRingDownload is one downloader's outcome.
type CFSRingDownload struct {
	Node      int     `json:"node"`
	Done      bool    `json:"done"`
	Bytes     int     `json:"bytes"`
	Blocks    int     `json:"blocks"`
	Failed    int     `json:"failed"`
	Hops      int     `json:"hops"` // total Chord lookup hops
	SpeedKBps float64 `json:"speed_kbps"`
}

// CFSRingReport is the scenario's measurement, summed over the installing
// process's peers.
type CFSRingReport struct {
	Downloads    []CFSRingDownload `json:"downloads"`
	BlocksServed uint64            `json:"blocks_served"`
}

// Merge folds another process's report in, keeping downloads sorted.
func (r *CFSRingReport) Merge(o CFSRingReport) {
	r.Downloads = append(r.Downloads, o.Downloads...)
	sort.Slice(r.Downloads, func(i, j int) bool { return r.Downloads[i].Node < r.Downloads[j].Node })
	r.BlocksServed += o.BlocksServed
}

// Install builds the homed slice of the CFS deployment: peers with
// offline-bootstrapped Chord state, the homed share of the striped file,
// and the homed downloaders' fetches. The returned closure reports this
// slice's results after the run.
func (c CFSRingSpec) Install(n int, homed func(pipes.VN) bool,
	host func(pipes.VN) *netstack.Host) (func() CFSRingReport, error) {
	ids, refs := c.RingRefs(n)
	blocks := cfs.FileBlocks(cfsRingFile, c.FileKB<<10)
	owners := cfs.BlockOwners(ids, blocks)
	peers := make(map[pipes.VN]*cfs.Peer)
	for v := 0; v < n; v++ {
		vn := pipes.VN(v)
		if !homed(vn) {
			continue
		}
		// Generous RPC budget: lookups queue behind block transfers. The
		// maintenance periods are era-typical (Chord deployments stabilized
		// on tens of seconds); with every peer bootstrapped at t=0 the
		// tickers fire in synchronized sparse bursts, which is what makes
		// the post-download tail of the run mostly idle.
		p, err := cfs.NewPeer(host(vn), ids[v], chord.Config{
			RPCTimeout: 2 * vtime.Second, RPCRetries: 3,
			StabilizeEvery: 15 * vtime.Second, FixFingerEvery: 15 * vtime.Second,
		})
		if err != nil {
			return nil, err
		}
		p.Chord.Bootstrap(refs)
		p.Chord.StartMaintenance()
		peers[vn] = p
	}
	for i, o := range owners {
		if p, ok := peers[pipes.VN(o)]; ok {
			p.StoreLocal(blocks[i], cfs.BlockBytes(c.FileKB<<10, i, len(blocks)))
		}
	}
	rep := &CFSRingReport{}
	for k, dv := range c.Downloaders {
		if dv < 0 || dv >= n {
			return nil, fmt.Errorf("cfs-ring: downloader VN %d outside population of %d", dv, n)
		}
		p, ok := peers[pipes.VN(dv)]
		if !ok {
			continue
		}
		idx := len(rep.Downloads)
		rep.Downloads = append(rep.Downloads, CFSRingDownload{Node: dv})
		// Staggered starts keep the downloads from opening in the same
		// nanosecond while still contending for the ring. The fetch issues
		// RPCs only from the downloader's own host, hence the owner claim.
		start := vtime.DurationOf(0.1) + vtime.Duration(k)*vtime.DurationOf(0.05)
		sc := p.Host().Scheduler()
		sc.AtTagged(sc.Now().Add(start), int32(dv), func() {
			p.Fetch(blocks, c.WindowKB<<10, func(r cfs.FetchResult) {
				d := &rep.Downloads[idx]
				d.Done = true
				d.Bytes = r.Bytes
				d.Blocks = r.Blocks
				d.Failed = r.Failed
				d.Hops = r.LookupHops
				d.SpeedKBps = r.SpeedKBps
			})
		})
	}
	return func() CFSRingReport {
		// Idempotent snapshot: rep itself is never mutated, and downloads
		// come out sorted by node so a merged federated report compares
		// byte-for-byte with a sequential one regardless of Downloaders
		// order or shard interleaving.
		out := CFSRingReport{Downloads: append([]CFSRingDownload(nil), rep.Downloads...)}
		sort.Slice(out.Downloads, func(i, j int) bool { return out.Downloads[i].Node < out.Downloads[j].Node })
		for v := 0; v < n; v++ {
			if p, ok := peers[pipes.VN(v)]; ok {
				out.BlocksServed += p.BlocksServed
			}
		}
		return out
	}, nil
}

// ---------------------------------------------------------------------------
// webrepl-ring

// WebReplRingSpec parameterizes the federated web-replica workload: VN
// slot 0 of every router serves (webrepl.Server), the remaining VNs play a
// synthesized request trace against the server diametrically across the
// ring — so every connection's segments cross the cut under a contiguous
// partition — over lossy ring links that force TCP retransmission and RTO
// state to span core processes.
type WebReplRingSpec struct {
	Routers      int     `json:"routers"`
	VNsPerRouter int     `json:"vns_per_router"` // slot 0 serves, the rest are clients
	LossPct      float64 `json:"loss_pct"`       // ring-link loss percentage
	TraceSec     float64 `json:"trace_sec"`
	MinRate      float64 `json:"min_rate"` // requests/second, whole population
	MaxRate      float64 `json:"max_rate"`
	MedianSize   int     `json:"median_size"` // response bytes
	DrainSec     float64 `json:"drain_sec"`   // settle time after the trace
	Seed         int64   `json:"seed"`
}

// Clients is the trace-playing population (every non-server VN).
func (c WebReplRingSpec) Clients() int { return c.Routers * (c.VNsPerRouter - 1) }

// RunFor covers the trace plus drain.
func (c WebReplRingSpec) RunFor() modelnet.Duration {
	return modelnet.Seconds(c.TraceSec + c.DrainSec)
}

// Topology builds the ring with lossy core links: the access links stay
// clean so drops land on the router-to-router pipes — exactly the
// segments that cross core processes in a federated run. Per-link latency
// jitter (as in gnutella-ring) keeps independent connections' packets from
// colliding at a pipe in the same nanosecond, whose tie order the three
// runtimes do not coordinate.
func (c WebReplRingSpec) Topology() *modelnet.Graph {
	ringAttr := modelnet.LinkAttrs{
		BandwidthBps: modelnet.Mbps(20), LatencySec: modelnet.Ms(5),
		QueuePkts: 50, LossRate: c.LossPct / 100,
	}
	accessAttr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(10), LatencySec: modelnet.Ms(1), QueuePkts: 50}
	g := modelnet.Ring(c.Routers, c.VNsPerRouter, ringAttr, accessAttr)
	latRng := rand.New(rand.NewSource(c.Seed ^ 0x3eb1a))
	for i := range g.Links {
		a := g.Links[i].Attr
		a.LatencySec *= 0.8 + 0.4*latRng.Float64()
		g.Links[i].Attr = a
	}
	return g
}

// serverVN is router r's serving VN; target maps a client VN to the
// replica diametrically across the ring.
func (c WebReplRingSpec) serverVN(r int) int { return r * c.VNsPerRouter }

func (c WebReplRingSpec) target(clientVN int) netstack.Endpoint {
	r := clientVN / c.VNsPerRouter
	s := c.serverVN((r + c.Routers/2) % c.Routers)
	return netstack.Endpoint{VN: pipes.VN(s), Port: 80}
}

// WebReplRingReport is the scenario's measurement. CrossRetransmits counts
// retransmissions on connections whose peer lives on another core process;
// it is necessarily zero outside federation, so cross-mode comparisons use
// Comparable.
type WebReplRingReport struct {
	Requests         uint64 `json:"requests"`
	OK               uint64 `json:"ok"`
	Failed           uint64 `json:"failed"`
	LatNsSum         uint64 `json:"lat_ns_sum"` // summed latency of OK requests
	ServerRequests   uint64 `json:"server_requests"`
	ServerBytes      uint64 `json:"server_bytes"`
	Retransmits      uint64 `json:"retransmits"` // closed client+server conns
	CrossRetransmits uint64 `json:"cross_retransmits,omitempty"`
}

// Merge folds another process's report in.
func (r *WebReplRingReport) Merge(o WebReplRingReport) {
	r.Requests += o.Requests
	r.OK += o.OK
	r.Failed += o.Failed
	r.LatNsSum += o.LatNsSum
	r.ServerRequests += o.ServerRequests
	r.ServerBytes += o.ServerBytes
	r.Retransmits += o.Retransmits
	r.CrossRetransmits += o.CrossRetransmits
}

// Comparable strips the deployment-dependent fields, leaving what every
// execution mode must agree on byte-for-byte.
func (r WebReplRingReport) Comparable() WebReplRingReport {
	r.CrossRetransmits = 0
	return r
}

// Install builds the homed slice of the web deployment. cross, when
// non-nil, reports whether a VN lives on a different core process — used
// to attribute retransmissions to connections that span the cut; pass nil
// outside federation. The returned closure reports this slice's results
// after the run.
func (c WebReplRingSpec) Install(n int, homed func(pipes.VN) bool,
	host func(pipes.VN) *netstack.Host, cross func(pipes.VN) bool) (func() WebReplRingReport, error) {
	if c.VNsPerRouter < 2 {
		return nil, fmt.Errorf("webrepl-ring: need at least 2 VNs per router (1 server + clients), got %d", c.VNsPerRouter)
	}
	// Per-endpoint accumulators: callbacks run on the owning VN's core, so
	// shared counters would race under the in-process parallel runtime.
	// Everything is summed single-threaded in the report closure.
	type connStats struct{ retrans, crossRetrans uint64 }
	observe := func(st *connStats) func(conn *netstack.Conn) {
		return func(conn *netstack.Conn) {
			st.retrans += conn.Retransmits
			if cross != nil && cross(conn.Remote.VN) {
				st.crossRetrans += conn.Retransmits
			}
		}
	}
	var servers []*webrepl.Server
	var serverStats []*connStats
	for r := 0; r < c.Routers; r++ {
		vn := pipes.VN(c.serverVN(r))
		if !homed(vn) {
			continue
		}
		srv, err := webrepl.NewServer(host(vn), 80)
		if err != nil {
			return nil, err
		}
		st := &connStats{}
		srv.OnConnClose = observe(st)
		servers = append(servers, srv)
		serverStats = append(serverStats, st)
	}
	// The global trace, derived identically everywhere; client VNs are the
	// non-server VNs in order.
	clientVNs := make([]int, 0, c.Clients())
	for v := 0; v < n; v++ {
		if v%c.VNsPerRouter != 0 {
			clientVNs = append(clientVNs, v)
		}
	}
	reqs := traffic.Synthesize(traffic.TraceConfig{
		Duration: vtime.DurationOf(c.TraceSec),
		Clients:  len(clientVNs),
		MinRate:  c.MinRate, MaxRate: c.MaxRate,
		MedianSize: float64(c.MedianSize),
		Seed:       c.Seed,
	})
	var playbacks []*webrepl.Playback
	var playStats []*connStats
	for ci, v := range clientVNs {
		vn := pipes.VN(v)
		if !homed(vn) {
			continue
		}
		dst := c.target(v)
		pb := webrepl.NewPlayback([]*netstack.Host{host(vn)},
			func(int) netstack.Endpoint { return dst })
		st := &connStats{}
		pb.OnConnClose = observe(st)
		var mine []traffic.TraceReq
		for _, r := range reqs {
			if r.Client == ci {
				mine = append(mine, r)
			}
		}
		pb.Run(mine)
		playbacks = append(playbacks, pb)
		playStats = append(playStats, st)
	}
	return func() WebReplRingReport {
		var rep WebReplRingReport
		for i, pb := range playbacks {
			rep.Requests += uint64(len(pb.Results))
			for _, r := range pb.Results {
				if r.OK {
					rep.OK++
					rep.LatNsSum += uint64(r.Latency)
				} else {
					rep.Failed++
				}
			}
			rep.Retransmits += playStats[i].retrans
			rep.CrossRetransmits += playStats[i].crossRetrans
		}
		for i, srv := range servers {
			rep.ServerRequests += srv.Requests
			rep.ServerBytes += srv.BytesOut
			rep.Retransmits += serverStats[i].retrans
			rep.CrossRetransmits += serverStats[i].crossRetrans
		}
		return rep
	}, nil
}

// ---------------------------------------------------------------------------
// scenario registration

func init() {
	fednet.Register(ScenarioRingCBR, fednet.Scenario{
		Build: func(params json.RawMessage) (*modelnet.Graph, error) {
			var c RingCBRSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			return c.Topology(), nil
		},
		Install: func(env *fednet.WorkerEnv, params json.RawMessage) (func() json.RawMessage, error) {
			var c RingCBRSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			err := c.Install(env.NumVNs(), env.Homed, env.NewHost,
				func(pipes.VN) *vtime.Scheduler { return env.Sched })
			return nil, err
		},
	})
	fednet.Register(ScenarioGnutella, fednet.Scenario{
		Build: func(params json.RawMessage) (*modelnet.Graph, error) {
			var c GnutellaRingSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			return c.Topology(), nil
		},
		Install: func(env *fednet.WorkerEnv, params json.RawMessage) (func() json.RawMessage, error) {
			var c GnutellaRingSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			report, err := c.Install(env.NumVNs(), env.Homed, env.NewHost)
			if err != nil {
				return nil, err
			}
			return func() json.RawMessage {
				b, _ := json.Marshal(report())
				return b
			}, nil
		},
	})
	fednet.Register(ScenarioCFSRing, fednet.Scenario{
		Build: func(params json.RawMessage) (*modelnet.Graph, error) {
			var c CFSRingSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			return c.Topology(), nil
		},
		Install: func(env *fednet.WorkerEnv, params json.RawMessage) (func() json.RawMessage, error) {
			var c CFSRingSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			report, err := c.Install(env.NumVNs(), env.Homed, env.NewHost)
			if err != nil {
				return nil, err
			}
			return func() json.RawMessage {
				b, _ := json.Marshal(report())
				return b
			}, nil
		},
	})
	fednet.Register(ScenarioWebReplRing, fednet.Scenario{
		Build: func(params json.RawMessage) (*modelnet.Graph, error) {
			var c WebReplRingSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			return c.Topology(), nil
		},
		Install: func(env *fednet.WorkerEnv, params json.RawMessage) (func() json.RawMessage, error) {
			var c WebReplRingSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			// Connections whose peer is homed on another shard span real
			// sockets; their retransmissions are the TCP-across-the-cut
			// probe.
			cross := func(vn pipes.VN) bool { return !env.Homed(vn) }
			report, err := c.Install(env.NumVNs(), env.Homed, env.NewHost, cross)
			if err != nil {
				return nil, err
			}
			return func() json.RawMessage {
				b, _ := json.Marshal(report())
				return b
			}, nil
		},
	})
}

// ---------------------------------------------------------------------------
// local (non-socket) runners, for cross-mode comparison

// localRun is a mode-generic outcome; the scenario-specific report lands
// in the matching field.
type localRun struct {
	Totals     modelnet.Totals
	Deliveries *stats.Sample
	PipeDrops  []uint64 // per-pipe drop vector, indexed by pipe ID
	Drops      []uint64 // unified drop-taxonomy vector (pipes.DropReason)
	WallMS     float64
	Windows    uint64
	Serial     uint64
	Messages   uint64
	Sync       modelnet.SyncMode
	// GrantMin/Mean/Max summarize the effective per-window grant spans the
	// algebra handed out (the adaptive analog of the static lookahead).
	GrantMin, GrantMean, GrantMax modelnet.Duration
	Drive                         obs.DriveProfile // wall-clock breakdown (zero in seq mode)
	Trace                         *obs.Trace       // packet trace, when requested
	Gnutella                      GnutellaRingReport
	CFS                           CFSRingReport
	Web                           WebReplRingReport
}

// RunOpt tweaks a local or federated scenario run beyond the positional
// knobs every runner takes.
type RunOpt func(*runOpts)

type runOpts struct {
	sync       modelnet.SyncMode
	routeCache int
	fedOpts    func(*fednet.Options)
}

// WithSync selects the synchronization algebra for parallel and federated
// runs: modelnet.SyncAdaptive (the default) or modelnet.SyncFixed.
func WithSync(m modelnet.SyncMode) RunOpt {
	return func(o *runOpts) { o.sync = m }
}

// WithRouteCache replaces the local runner's precomputed O(n²) routing
// matrix with an on-demand per-target cache of the given capacity. Large
// populations (the tstub-cbr scale configs) are unrunnable without it.
func WithRouteCache(targets int) RunOpt {
	return func(o *runOpts) { o.routeCache = targets }
}

// WithFedOptions lets a caller adjust the assembled fednet.Options of a
// federated run — the fault-injection and recovery knobs in particular.
// Ignored by the local runners.
func WithFedOptions(fn func(*fednet.Options)) RunOpt {
	return func(o *runOpts) { o.fedOpts = fn }
}

func applyRunOpts(opts []RunOpt) runOpts {
	var o runOpts
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// runLocal executes a registered-scenario-equivalent workload without
// sockets: sequentially (parallel=false) or on the in-process parallel
// runtime. dyn, when non-nil, is the link-dynamics spec the run replays —
// the same value a federated run would ship in its setup frame. install
// returns a finisher that records the scenario's report into the run after
// the clock stops.
func runLocal(topo *modelnet.Graph, seed int64, cores int, parallel, trace bool,
	dyn *dynamics.Spec,
	install func(em *modelnet.Emulation) (func(*localRun), error),
	runFor modelnet.Duration, opts ...RunOpt) (*localRun, error) {
	o := applyRunOpts(opts)
	ideal := modelnet.IdealProfile()
	em, err := modelnet.Run(topo, modelnet.Options{
		Cores: cores, Parallel: parallel, Profile: &ideal, Seed: seed,
		Sync: o.sync, Dynamics: dyn, Trace: trace, RouteCache: o.routeCache,
	})
	if err != nil {
		return nil, err
	}
	res := &localRun{Deliveries: &stats.Sample{}}
	var mu sync.Mutex
	em.OnDeliver(func(_ *pipes.Packet, at modelnet.Time) {
		mu.Lock()
		res.Deliveries.Add(at.Seconds())
		mu.Unlock()
	})
	finish, err := install(em)
	if err != nil {
		return nil, err
	}
	begin := time.Now()
	em.RunFor(runFor)
	res.WallMS = float64(time.Since(begin).Microseconds()) / 1000
	res.Totals = em.Totals()
	res.PipeDrops = em.PipeDrops()
	res.Drops = em.DropsByReason()
	if trace {
		res.Trace = em.TraceData()
	}
	if finish != nil {
		finish(res)
	}
	if em.Par != nil {
		st := em.Par.Stats()
		res.Windows, res.Serial, res.Messages = st.Windows, st.SerialRounds, st.Messages
		res.Sync = em.Par.Mode()
		res.GrantMin, res.GrantMean, res.GrantMax = st.GrantMin(), st.GrantMean(), st.GrantMax()
		res.Drive = st.Profile
	}
	return res, nil
}

func allHomed(pipes.VN) bool { return true }

// RunRingCBRLocal runs the ring-cbr scenario without sockets.
func RunRingCBRLocal(c RingCBRSpec, cores int, parallel, trace bool, opts ...RunOpt) (*localRun, error) {
	return runLocal(c.Topology(), c.Seed, cores, parallel, trace, nil,
		func(em *modelnet.Emulation) (func(*localRun), error) {
			err := c.Install(em.NumVNs(), allHomed, em.NewHost, em.SchedulerOf)
			return nil, err
		}, c.RunFor(), opts...)
}

// RunGnutellaRingLocal runs the gnutella-ring scenario without sockets.
func RunGnutellaRingLocal(c GnutellaRingSpec, cores int, parallel, trace bool, opts ...RunOpt) (*localRun, error) {
	return runLocal(c.Topology(), c.Seed, cores, parallel, trace, nil,
		func(em *modelnet.Emulation) (func(*localRun), error) {
			report, err := c.Install(em.NumVNs(), allHomed, em.NewHost)
			if err != nil {
				return nil, err
			}
			return func(res *localRun) { res.Gnutella = report() }, nil
		}, c.RunFor(), opts...)
}

// RunCFSRingLocal runs the cfs-ring scenario without sockets.
func RunCFSRingLocal(c CFSRingSpec, cores int, parallel, trace bool, opts ...RunOpt) (*localRun, error) {
	return runLocal(c.Topology(), c.Seed, cores, parallel, trace, nil,
		func(em *modelnet.Emulation) (func(*localRun), error) {
			report, err := c.Install(em.NumVNs(), allHomed, em.NewHost)
			if err != nil {
				return nil, err
			}
			return func(res *localRun) { res.CFS = report() }, nil
		}, c.RunFor(), opts...)
}

// RunWebReplRingLocal runs the webrepl-ring scenario without sockets.
func RunWebReplRingLocal(c WebReplRingSpec, cores int, parallel, trace bool, opts ...RunOpt) (*localRun, error) {
	return runLocal(c.Topology(), c.Seed, cores, parallel, trace, nil,
		func(em *modelnet.Emulation) (func(*localRun), error) {
			report, err := c.Install(em.NumVNs(), allHomed, em.NewHost, nil)
			if err != nil {
				return nil, err
			}
			return func(res *localRun) { res.Web = report() }, nil
		}, c.RunFor(), opts...)
}

// RunRingCBRFederated runs the ring-cbr scenario as a cores-process
// federation over loopback (workers spawned from this binary; the caller's
// main or TestMain must call fednet.MaybeRunWorker).
func RunRingCBRFederated(c RingCBRSpec, cores int, dataPlane string, opts ...RunOpt) (*fednet.Report, error) {
	o := applyRunOpts(opts)
	ideal := modelnet.IdealProfile()
	fo := fednet.Options{
		Scenario: ScenarioRingCBR, Params: c,
		Cores: cores, Seed: c.Seed, Profile: &ideal, Sync: o.sync,
		RunFor: c.RunFor(), DataPlane: dataPlane,
		Spawn: true, CollectDeliveries: true,
	}
	if o.fedOpts != nil {
		o.fedOpts(&fo)
	}
	return fednet.Run(fo)
}

// RunGnutellaRingFederated runs the gnutella-ring scenario as a
// cores-process federation over loopback.
func RunGnutellaRingFederated(c GnutellaRingSpec, cores int, dataPlane string, opts ...RunOpt) (*fednet.Report, error) {
	o := applyRunOpts(opts)
	ideal := modelnet.IdealProfile()
	fo := fednet.Options{
		Scenario: ScenarioGnutella, Params: c,
		Cores: cores, Seed: c.Seed, Profile: &ideal, Sync: o.sync,
		RunFor: c.RunFor(), DataPlane: dataPlane,
		Spawn: true, CollectDeliveries: true,
	}
	if o.fedOpts != nil {
		o.fedOpts(&fo)
	}
	return fednet.Run(fo)
}

// RunCFSRingFederated runs the cfs-ring scenario as a cores-process
// federation over loopback.
func RunCFSRingFederated(c CFSRingSpec, cores int, dataPlane string, opts ...RunOpt) (*fednet.Report, error) {
	o := applyRunOpts(opts)
	ideal := modelnet.IdealProfile()
	fo := fednet.Options{
		Scenario: ScenarioCFSRing, Params: c,
		Cores: cores, Seed: c.Seed, Profile: &ideal, Sync: o.sync,
		RunFor: c.RunFor(), DataPlane: dataPlane,
		Spawn: true, CollectDeliveries: true,
	}
	if o.fedOpts != nil {
		o.fedOpts(&fo)
	}
	return fednet.Run(fo)
}

// RunWebReplRingFederated runs the webrepl-ring scenario as a
// cores-process federation over loopback.
func RunWebReplRingFederated(c WebReplRingSpec, cores int, dataPlane string, opts ...RunOpt) (*fednet.Report, error) {
	o := applyRunOpts(opts)
	ideal := modelnet.IdealProfile()
	fo := fednet.Options{
		Scenario: ScenarioWebReplRing, Params: c,
		Cores: cores, Seed: c.Seed, Profile: &ideal, Sync: o.sync,
		RunFor: c.RunFor(), DataPlane: dataPlane,
		Spawn: true, CollectDeliveries: true,
	}
	if o.fedOpts != nil {
		o.fedOpts(&fo)
	}
	return fednet.Run(fo)
}

// mergeWorkerReports unmarshals and merges the per-worker scenario reports
// of a federated run into out (any type with a Merge method, via the
// merge callback).
func mergeWorkerReports[T any](rep *fednet.Report, merge func(T)) error {
	for _, w := range rep.Workers {
		if len(w.Scenario) == 0 {
			continue
		}
		var r T
		if err := json.Unmarshal(w.Scenario, &r); err != nil {
			return fmt.Errorf("shard %d scenario report: %w", w.Shard, err)
		}
		merge(r)
	}
	return nil
}

// GnutellaFederatedReport merges the per-worker scenario reports of a
// federated gnutella-ring run.
func GnutellaFederatedReport(rep *fednet.Report) (GnutellaRingReport, error) {
	var out GnutellaRingReport
	err := mergeWorkerReports(rep, out.Merge)
	return out, err
}

// CFSFederatedReport merges the per-worker scenario reports of a federated
// cfs-ring run.
func CFSFederatedReport(rep *fednet.Report) (CFSRingReport, error) {
	var out CFSRingReport
	err := mergeWorkerReports(rep, out.Merge)
	return out, err
}

// WebReplFederatedReport merges the per-worker scenario reports of a
// federated webrepl-ring run.
func WebReplFederatedReport(rep *fednet.Report) (WebReplRingReport, error) {
	var out WebReplRingReport
	err := mergeWorkerReports(rep, out.Merge)
	return out, err
}

// ---------------------------------------------------------------------------
// the fednet scaling study (mnbench -run fednet -> BENCH_fednet.json)

// FednetConfig parameterizes the scaling study: each scenario — the CBR
// ring, the CFS store (nested RPC payloads), and the web replicas (TCP
// segments) — under the in-process parallel runtime and under real
// multi-process federation at each core count.
type FednetConfig struct {
	Ring  RingCBRSpec
	CFS   CFSRingSpec
	Web   WebReplRingSpec
	Flaky FlakyEdgeSpec
	// TStub is the transit-stub CBR workload at a size every mode can run,
	// so its rows get the full seq/inproc/fednet determinism cross-check.
	TStub TStubCBRSpec
	// TStubScales are the large-population configurations (10⁵ and 10⁶ VNs
	// by default). Only the sharded federation can hold them, so their rows
	// are fednet-only — no sequential baseline, speedup unreported — and
	// exist to record per-worker setup bytes, startup wall-clock, and peak
	// RSS at scale. Empty disables them. ScaleCores are the core counts
	// each runs at; varying them shows the per-worker footprint shrinking
	// as the world is cut into more shards.
	TStubScales []TStubCBRSpec
	ScaleCores  []int
	Cores       []int
	DataPlane   string
}

// DefaultFednet is the full-scale study: the paper's 20×20 ring plus the
// two application workloads, at 2 and 4 cores, over the UDP data plane.
func DefaultFednet() FednetConfig {
	return FednetConfig{
		Ring: RingCBRSpec{
			Routers:       20,
			VNsPerRouter:  20,
			PacketsPerSec: 200,
			PacketBytes:   1000,
			DurationSec:   10,
			Seed:          11,
		},
		CFS: CFSRingSpec{
			Routers:      8,
			VNsPerRouter: 4,
			FileKB:       1024,
			WindowKB:     24,
			Downloaders:  []int{0, 9, 17, 25},
			DurationSec:  20,
			Seed:         21,
		},
		Web: WebReplRingSpec{
			Routers:      10,
			VNsPerRouter: 4,
			LossPct:      0.5,
			TraceSec:     10,
			MinRate:      40,
			MaxRate:      80,
			MedianSize:   8 << 10,
			DrainSec:     10,
			Seed:         31,
		},
		Flaky: FlakyEdgeSpec{
			Web: WebReplRingSpec{
				Routers:      10,
				VNsPerRouter: 4,
				LossPct:      0.5,
				TraceSec:     6,
				MinRate:      40,
				MaxRate:      80,
				MedianSize:   8 << 10,
				DrainSec:     8,
				Seed:         41,
			},
			Trace:           "wifi",
			FailLink:        3,
			FailSec:         2,
			RecoverSec:      7,
			RerouteDelaySec: 0.25,
		},
		TStub: TStubCBRSpec{
			TransitDomains:   2,
			TransitPerDomain: 4,
			StubsPerTransit:  4,
			RoutersPerStub:   3,
			ClientsPerStub:   16,
			Servers:          16,
			Flows:            64,
			PacketsPerSec:    100,
			PacketBytes:      512,
			DurationSec:      4,
			Seed:             51,
		},
		TStubScales: []TStubCBRSpec{
			{
				TransitDomains:   10,
				TransitPerDomain: 10,
				StubsPerTransit:  10,
				RoutersPerStub:   4,
				ClientsPerStub:   100, // 10·10·10·100 = 100 000 VNs
				Servers:          32,
				Flows:            128,
				PacketsPerSec:    20,
				PacketBytes:      512,
				DurationSec:      2,
				Seed:             61,
			},
			{
				TransitDomains:   10,
				TransitPerDomain: 10,
				StubsPerTransit:  10,
				RoutersPerStub:   4,
				ClientsPerStub:   1000, // 10·10·10·1000 = 1 000 000 VNs
				Servers:          32,
				Flows:            128,
				PacketsPerSec:    20,
				PacketBytes:      512,
				DurationSec:      2,
				Seed:             61,
			},
		},
		ScaleCores: []int{2, 4},
		Cores:      []int{2, 4},
		DataPlane:  fednet.DataUDP,
	}
}

// ScaledFednet shrinks the emulated durations for quick runs.
func ScaledFednet(scale float64) FednetConfig {
	cfg := DefaultFednet()
	if scale < 1 {
		cfg.Ring.DurationSec *= scale
		cfg.CFS.DurationSec = 5 + (cfg.CFS.DurationSec-5)*scale
		cfg.Web.TraceSec *= scale
		cfg.Flaky.Web.TraceSec *= scale
		cfg.Flaky.Web.DrainSec *= scale
		cfg.Flaky.FailSec *= scale
		cfg.Flaky.RecoverSec *= scale
		cfg.TStub.DurationSec *= scale
		// Quick runs keep only the smallest large-population point.
		if len(cfg.TStubScales) > 1 {
			cfg.TStubScales = cfg.TStubScales[:1]
		}
		for i := range cfg.TStubScales {
			cfg.TStubScales[i].DurationSec *= scale
		}
		cfg.ScaleCores = []int{2}
	}
	return cfg
}

// FednetRow is one configuration's outcome.
type FednetRow struct {
	Scenario     string  `json:"scenario"`
	Mode         string  `json:"mode"` // seq, inproc, fednet
	Cores        int     `json:"cores"`
	WallMS       float64 `json:"wall_ms"`
	Speedup      float64 `json:"speedup"` // vs the scenario's sequential row
	Delivered    uint64  `json:"delivered"`
	Injected     uint64  `json:"injected"`
	Drops        uint64  `json:"drops"`
	Windows      uint64  `json:"windows,omitempty"`
	SerialRounds uint64  `json:"serial_rounds,omitempty"`
	Messages     uint64  `json:"messages,omitempty"`
	// Frames and BytesOnWire price the data plane of a fednet row: frames
	// written to real sockets (= syscalls on the UDP plane) and bytes
	// including framing. With batching, Frames ≪ Messages.
	Frames      uint64 `json:"frames,omitempty"`
	BytesOnWire uint64 `json:"bytes_on_wire,omitempty"`
	// Sync names the synchronization algebra of a parallel/federated row
	// ("adaptive" or "fixed"); the grant columns are the effective
	// per-window grant spans it handed out — min/mean/max over every
	// (shard, window) pair. Under the fixed algebra the spans collapse to
	// the static lookahead cadence; under the adaptive one they report how
	// far past it the cluster's queue horizon let each shard run.
	Sync        string  `json:"sync,omitempty"`
	GrantMinMS  float64 `json:"grant_min_ms,omitempty"`
	GrantMeanMS float64 `json:"grant_mean_ms,omitempty"`
	GrantMaxMS  float64 `json:"grant_max_ms,omitempty"`
	// Barrier breakdown (internal/obs): where the drive loop's wall time
	// went. Not omitempty — a zero is a measurement (the seq rows have no
	// barrier), not a missing column.
	ComputeWallNs uint64 `json:"compute_wall_ns"`
	BarrierWallNs uint64 `json:"barrier_wall_ns"`
	FlushWallNs   uint64 `json:"flush_wall_ns"`
	// Distribution cost of a fednet row, reported per worker and aggregated
	// here as the max across workers (the scaling question is "how big must
	// one machine be", not the fleet sum): setup bytes received, wall clock
	// from first setup byte to setup-ack, peak resident set, and pipes
	// actually materialized (≈ owned + frontier under sharded distribution).
	// RouteRPCs is the fleet total of demand-paged summary fetches.
	SetupBytes        uint64 `json:"setup_bytes,omitempty"`
	StartupWallNs     int64  `json:"startup_wall_ns,omitempty"`
	PeakRSSBytes      uint64 `json:"peak_rss_bytes,omitempty"`
	MaterializedPipes int    `json:"materialized_pipes,omitempty"`
	RouteRPCs         uint64 `json:"route_rpcs,omitempty"`
	// Recoveries counts mid-run worker respawns on a crash row (the
	// checkpoint/restart machinery); RecoveryWallNs is their total
	// wall-clock cost, round replay included.
	Recoveries     int   `json:"recoveries,omitempty"`
	RecoveryWallNs int64 `json:"recovery_wall_ns,omitempty"`
}

// fillWorkerCosts folds a federation's per-worker distribution costs into
// the row: maxima for the per-machine figures, sum for the RPC count.
func fillWorkerCosts(row *FednetRow, fed *fednet.Report) {
	for _, w := range fed.Workers {
		if w.SetupBytes > row.SetupBytes {
			row.SetupBytes = w.SetupBytes
		}
		if w.StartupWallNs > row.StartupWallNs {
			row.StartupWallNs = w.StartupWallNs
		}
		if w.PeakRSSBytes > row.PeakRSSBytes {
			row.PeakRSSBytes = w.PeakRSSBytes
		}
		if w.MaterializedPipes > row.MaterializedPipes {
			row.MaterializedPipes = w.MaterializedPipes
		}
		row.RouteRPCs += w.RouteRPCs
	}
}

// FednetResult is the full study. The three spec fields record each
// scenario's exact parameters, so every row's dimensions are reproducible
// from the JSON alone.
type FednetResult struct {
	Ring        RingCBRSpec     `json:"ring"`
	CFS         CFSRingSpec     `json:"cfs"`
	Web         WebReplRingSpec `json:"web"`
	Flaky       FlakyEdgeSpec   `json:"flaky"`
	TStub       TStubCBRSpec    `json:"tstub"`
	TStubScales []TStubCBRSpec  `json:"tstub_scales,omitempty"`
	DataPlane   string          `json:"data_plane"`
	// HostCPUs bounds the achievable speedup; on a 1-CPU host the
	// parallel and federated rows measure synchronization and socket
	// overhead instead.
	HostCPUs int         `json:"host_cpus"`
	Rows     []FednetRow `json:"rows"`
	// Deterministic reports whether every configuration produced
	// identical conservation counters to its scenario's sequential run.
	Deterministic bool `json:"deterministic"`
}

func totalsRow(scenario, mode string, cores int, t modelnet.Totals, wallMS float64) FednetRow {
	return FednetRow{
		Scenario: scenario, Mode: mode, Cores: cores, WallMS: wallMS,
		Delivered: t.Delivered, Injected: t.Injected,
		Drops: t.PhysDrops + t.VirtualDrops,
	}
}

// runFednetScenario appends one scenario's rows: the sequential baseline,
// then at each core count an in-process and a federated run under each
// synchronization algebra (adaptive and the fixed baseline), every one
// checked against the sequential counters.
func runFednetScenario(res *FednetResult, scenario string, cores []int, dataPlane string,
	local func(cores int, parallel bool, opts ...RunOpt) (*localRun, error),
	federated func(cores int, dataPlane string, opts ...RunOpt) (*fednet.Report, error)) error {
	seq, err := local(1, false)
	if err != nil {
		return err
	}
	base := totalsRow(scenario, "seq", 1, seq.Totals, seq.WallMS)
	base.Speedup = 1
	res.Rows = append(res.Rows, base)
	check := func(r FednetRow) FednetRow {
		if r.WallMS > 0 {
			r.Speedup = base.WallMS / r.WallMS
		}
		if r.Delivered != base.Delivered || r.Injected != base.Injected || r.Drops != base.Drops {
			res.Deterministic = false
		}
		return r
	}
	for _, k := range cores {
		if k < 2 {
			continue
		}
		for _, sm := range []modelnet.SyncMode{modelnet.SyncAdaptive, modelnet.SyncFixed} {
			par, err := local(k, true, WithSync(sm))
			if err != nil {
				return err
			}
			row := totalsRow(scenario, "inproc", k, par.Totals, par.WallMS)
			row.Windows, row.SerialRounds, row.Messages = par.Windows, par.Serial, par.Messages
			row.Sync = par.Sync.String()
			row.GrantMinMS = par.GrantMin.Seconds() * 1000
			row.GrantMeanMS = par.GrantMean.Seconds() * 1000
			row.GrantMaxMS = par.GrantMax.Seconds() * 1000
			row.ComputeWallNs, row.BarrierWallNs, row.FlushWallNs =
				par.Drive.ComputeWallNs, par.Drive.BarrierWallNs, par.Drive.FlushWallNs
			res.Rows = append(res.Rows, check(row))

			fed, err := federated(k, dataPlane, WithSync(sm))
			if err != nil {
				return err
			}
			frow := totalsRow(scenario, "fednet", k, fed.Totals, fed.WallMS)
			frow.Windows, frow.SerialRounds, frow.Messages = fed.Sync.Windows, fed.Sync.SerialRounds, fed.Sync.Messages
			frow.Frames, frow.BytesOnWire = fed.Frames, fed.BytesOnWire
			frow.Sync = fed.SyncMode.String()
			frow.GrantMinMS = fed.Sync.GrantMin().Seconds() * 1000
			frow.GrantMeanMS = fed.Sync.GrantMean().Seconds() * 1000
			frow.GrantMaxMS = fed.Sync.GrantMax().Seconds() * 1000
			frow.ComputeWallNs, frow.BarrierWallNs, frow.FlushWallNs =
				fed.Sync.Profile.ComputeWallNs, fed.Sync.Profile.BarrierWallNs, fed.Sync.Profile.FlushWallNs
			fillWorkerCosts(&frow, fed)
			res.Rows = append(res.Rows, check(frow))
		}
	}
	return nil
}

// runFednetCrashRow appends the fault-injection row: the CBR ring at 2
// cores with recovery armed and one planted worker crash mid-run. The row
// records the recovery count and wall-clock cost, and its counters are
// checked against the ring's sequential row like any other configuration —
// a recovered run that diverges flips the study's Deterministic flag.
func runFednetCrashRow(res *FednetResult, cfg FednetConfig) error {
	fed, err := RunRingCBRFederated(cfg.Ring, 2, cfg.DataPlane, WithFedOptions(func(o *fednet.Options) {
		o.Recover = true
		o.FailSpec = &fednet.FailSpec{Shard: 1, Round: 3}
	}))
	if err != nil {
		return fmt.Errorf("ring-cbr crash row: %w", err)
	}
	if fed.Recoveries == 0 {
		return fmt.Errorf("ring-cbr crash row: planted fault never fired")
	}
	row := totalsRow(ScenarioRingCBR+"-crash", "fednet", 2, fed.Totals, fed.WallMS)
	row.Windows, row.SerialRounds, row.Messages = fed.Sync.Windows, fed.Sync.SerialRounds, fed.Sync.Messages
	row.Frames, row.BytesOnWire = fed.Frames, fed.BytesOnWire
	row.Sync = fed.SyncMode.String()
	row.Recoveries, row.RecoveryWallNs = fed.Recoveries, fed.RecoveryWallNs
	for _, r := range res.Rows {
		if r.Scenario == ScenarioRingCBR && r.Mode == "seq" {
			if row.Delivered != r.Delivered || row.Injected != r.Injected || row.Drops != r.Drops {
				res.Deterministic = false
			}
			if row.WallMS > 0 {
				row.Speedup = r.WallMS / row.WallMS
			}
			break
		}
	}
	res.Rows = append(res.Rows, row)
	return nil
}

// RunFednetScaling runs the study: per scenario, a sequential baseline,
// then at each core count the in-process parallel runtime and a real
// multi-process federation.
func RunFednetScaling(cfg FednetConfig) (*FednetResult, error) {
	res := &FednetResult{
		Ring:        cfg.Ring,
		CFS:         cfg.CFS,
		Web:         cfg.Web,
		Flaky:       cfg.Flaky,
		TStub:       cfg.TStub,
		TStubScales: cfg.TStubScales,
		DataPlane:   cfg.DataPlane,
		HostCPUs:    runtime.NumCPU(),

		Deterministic: true,
	}
	if err := runFednetScenario(res, ScenarioRingCBR, cfg.Cores, cfg.DataPlane,
		func(k int, p bool, opts ...RunOpt) (*localRun, error) {
			return RunRingCBRLocal(cfg.Ring, k, p, false, opts...)
		},
		func(k int, dp string, opts ...RunOpt) (*fednet.Report, error) {
			return RunRingCBRFederated(cfg.Ring, k, dp, opts...)
		},
	); err != nil {
		return nil, err
	}
	if err := runFednetCrashRow(res, cfg); err != nil {
		return nil, err
	}
	if err := runFednetScenario(res, ScenarioCFSRing, cfg.Cores, cfg.DataPlane,
		func(k int, p bool, opts ...RunOpt) (*localRun, error) {
			return RunCFSRingLocal(cfg.CFS, k, p, false, opts...)
		},
		func(k int, dp string, opts ...RunOpt) (*fednet.Report, error) {
			return RunCFSRingFederated(cfg.CFS, k, dp, opts...)
		},
	); err != nil {
		return nil, err
	}
	if err := runFednetScenario(res, ScenarioWebReplRing, cfg.Cores, cfg.DataPlane,
		func(k int, p bool, opts ...RunOpt) (*localRun, error) {
			return RunWebReplRingLocal(cfg.Web, k, p, false, opts...)
		},
		func(k int, dp string, opts ...RunOpt) (*fednet.Report, error) {
			return RunWebReplRingFederated(cfg.Web, k, dp, opts...)
		},
	); err != nil {
		return nil, err
	}
	if err := runFednetScenario(res, ScenarioFlakyEdge, cfg.Cores, cfg.DataPlane,
		func(k int, p bool, opts ...RunOpt) (*localRun, error) {
			return RunFlakyEdgeLocal(cfg.Flaky, k, p, false, opts...)
		},
		func(k int, dp string, opts ...RunOpt) (*fednet.Report, error) {
			return RunFlakyEdgeFederated(cfg.Flaky, k, dp, opts...)
		},
	); err != nil {
		return nil, err
	}
	if cfg.TStub.VNs() > 0 {
		// The local baseline cannot hold an O(n²) matrix even at the small
		// size; it routes through the demand-built per-target cache instead,
		// which the shard-local route property test proves path-identical.
		if err := runFednetScenario(res, ScenarioTStubCBR, cfg.Cores, cfg.DataPlane,
			func(k int, p bool, opts ...RunOpt) (*localRun, error) {
				opts = append(opts, WithRouteCache(cfg.TStub.Servers+8))
				return RunTStubCBRLocal(cfg.TStub, k, p, false, opts...)
			},
			func(k int, dp string, opts ...RunOpt) (*fednet.Report, error) {
				return RunTStubCBRFederated(cfg.TStub, k, dp, opts...)
			},
		); err != nil {
			return nil, err
		}
	}
	for _, scale := range cfg.TStubScales {
		if scale.VNs() == 0 {
			continue
		}
		// Scale rows are fednet-only: the point is the per-worker footprint
		// of the sharded distribution at a population no single sequential
		// run could even set up. No baseline, so Speedup stays unreported.
		name := fmt.Sprintf("%s-%dk", ScenarioTStubCBR, scale.VNs()/1000)
		for _, k := range cfg.ScaleCores {
			if k < 2 {
				continue
			}
			fed, err := RunTStubCBRFederated(scale, k, cfg.DataPlane)
			if err != nil {
				return nil, fmt.Errorf("%s at %d cores: %w", name, k, err)
			}
			frow := totalsRow(name, "fednet", k, fed.Totals, fed.WallMS)
			frow.Windows, frow.SerialRounds, frow.Messages = fed.Sync.Windows, fed.Sync.SerialRounds, fed.Sync.Messages
			frow.Frames, frow.BytesOnWire = fed.Frames, fed.BytesOnWire
			frow.Sync = fed.SyncMode.String()
			frow.ComputeWallNs, frow.BarrierWallNs, frow.FlushWallNs =
				fed.Sync.Profile.ComputeWallNs, fed.Sync.Profile.BarrierWallNs, fed.Sync.Profile.FlushWallNs
			fillWorkerCosts(&frow, fed)
			res.Rows = append(res.Rows, frow)
		}
	}
	return res, nil
}

// PrintFednet renders the study.
func PrintFednet(w io.Writer, res *FednetResult) {
	fprintf(w, "Core federation scaling: ring-cbr %d×%d %.1fs + cfs-ring %d×%d + webrepl-ring %d×%d + flaky-edge %d×%d/%s, %s data plane (host CPUs: %d)\n",
		res.Ring.Routers, res.Ring.VNsPerRouter, res.Ring.DurationSec,
		res.CFS.Routers, res.CFS.VNsPerRouter, res.Web.Routers, res.Web.VNsPerRouter,
		res.Flaky.Web.Routers, res.Flaky.Web.VNsPerRouter, res.Flaky.Trace,
		res.DataPlane, res.HostCPUs)
	fprintf(w, "%-13s %8s %6s %9s %9s %9s %10s %9s %8s %9s %9s %11s %22s\n",
		"scenario", "mode", "sync", "cores", "wall ms", "speedup", "delivered", "windows", "serial", "messages", "frames", "wire MB", "grant min/mean/max ms")
	for _, r := range res.Rows {
		fprintf(w, "%-13s %8s %6s %6d %9.0f %8.2fx %10d %9d %8d %9d %9d %11.1f %8.2f/%.2f/%.2f\n",
			r.Scenario, r.Mode, r.Sync, r.Cores, r.WallMS, r.Speedup, r.Delivered, r.Windows, r.SerialRounds, r.Messages,
			r.Frames, float64(r.BytesOnWire)/1e6, r.GrantMinMS, r.GrantMeanMS, r.GrantMaxMS)
	}
	for _, r := range res.Rows {
		if r.Recoveries > 0 {
			fprintf(w, "  %s (%d cores): %d worker crash(es) recovered in %.1f ms total, replay included\n",
				r.Scenario, r.Cores, r.Recoveries, float64(r.RecoveryWallNs)/1e6)
		}
	}
	hdr := false
	for _, r := range res.Rows {
		if r.SetupBytes == 0 {
			continue
		}
		if !hdr {
			fprintf(w, "Per-worker distribution cost (max across workers):\n")
			fprintf(w, "%-16s %6s %9s %11s %11s %12s %10s %10s\n",
				"scenario", "cores", "sync", "setup KB", "startup ms", "peak RSS MB", "pipes", "route RPC")
			hdr = true
		}
		fprintf(w, "%-16s %6d %9s %11.1f %11.1f %12.1f %10d %10d\n",
			r.Scenario, r.Cores, r.Sync, float64(r.SetupBytes)/1024,
			float64(r.StartupWallNs)/1e6, float64(r.PeakRSSBytes)/(1<<20),
			r.MaterializedPipes, r.RouteRPCs)
	}
	if !res.Deterministic {
		fprintf(w, "  WARNING: configurations disagreed on emulation counters\n")
	}
}

// WriteFednetJSON records the study for the repository (BENCH_fednet.json).
func WriteFednetJSON(path string, res *FednetResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
