package experiments

// Federated scenarios and the fednet scaling study. Two workloads register
// with the federation runtime (internal/fednet):
//
//   - "ring-cbr": the parcore study's saturating CBR ring (UDP, nil
//     payloads), the cross-mode determinism yardstick.
//   - "gnutella-ring": a gnutella ping flood over a ring of routers with
//     jittered link latencies, exercising application payload codecs and
//     bursty cross-core traffic.
//
// Every scenario is a pure function of its parameters: the coordinator and
// all three execution modes (sequential, in-process parallel, N-process
// federated) derive the same topology, the same per-VN plan, and install it
// identically — which is what makes the byte-identical determinism tests in
// determinism_test.go possible.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"modelnet"
	"modelnet/internal/apps/gnutella"
	"modelnet/internal/fednet"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/stats"
	"modelnet/internal/vtime"
)

// Registered federation scenario names.
const (
	ScenarioRingCBR  = "ring-cbr"
	ScenarioGnutella = "gnutella-ring"
)

// ---------------------------------------------------------------------------
// ring-cbr

// RingCBRSpec parameterizes the saturating CBR ring workload,
// mode-independently. It doubles as the federation scenario's JSON params.
type RingCBRSpec struct {
	Routers       int     `json:"routers"`
	VNsPerRouter  int     `json:"vns_per_router"`
	PacketsPerSec float64 `json:"packets_per_sec"` // per-VN CBR rate
	PacketBytes   int     `json:"packet_bytes"`
	DurationSec   float64 `json:"duration_sec"` // injection window
	Seed          int64   `json:"seed"`
}

// drain is the extra virtual time after the injection window that lets
// in-flight traffic finish, making the counters insensitive to where the
// cutoff slices.
const ringCBRDrainSec = 0.5

// RunFor is the virtual time a run of this spec must cover.
func (c RingCBRSpec) RunFor() modelnet.Duration {
	return modelnet.Seconds(c.DurationSec + ringCBRDrainSec)
}

// Topology builds the gigabit ring: aggregate offered load stays well under
// capacity so there are zero virtual drops and the cross-mode comparison is
// exact regardless of how same-nanosecond arrivals interleave.
func (c RingCBRSpec) Topology() *modelnet.Graph {
	ringAttr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(1000), LatencySec: modelnet.Ms(5), QueuePkts: 400}
	accessAttr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(10), LatencySec: modelnet.Ms(1), QueuePkts: 100}
	return modelnet.Ring(c.Routers, c.VNsPerRouter, ringAttr, accessAttr)
}

// Install sets up the workload for every VN the caller owns: a sink on port
// 9 and a CBR flow to the same client slot on the diametrically opposite
// router, so every packet traverses half the ring. The per-VN phase and
// rate jitter is drawn for the whole population in VN order, so any subset
// installs values identical to a full install.
func (c RingCBRSpec) Install(n int, homed func(pipes.VN) bool,
	host func(pipes.VN) *netstack.Host, sched func(pipes.VN) *vtime.Scheduler) error {
	rng := rand.New(rand.NewSource(c.Seed))
	period := vtime.DurationOf(1 / c.PacketsPerSec)
	starts := make([]vtime.Duration, n)
	jitters := make([]vtime.Duration, n)
	for v := range starts {
		// Nanosecond-jittered phase and rate de-synchronize the flows.
		starts[v] = vtime.Duration(rng.Int63n(int64(period)))
		jitters[v] = vtime.Duration(rng.Int63n(int64(period / 8)))
	}
	sendEnd := vtime.Time(0).Add(vtime.DurationOf(c.DurationSec))
	for v := 0; v < n; v++ {
		vn := pipes.VN(v)
		if !homed(vn) {
			continue
		}
		h := host(vn)
		if _, err := h.OpenUDP(9, nil); err != nil {
			return err
		}
		s, err := h.OpenUDP(0, nil)
		if err != nil {
			return err
		}
		dst := modelnet.Endpoint{VN: modelnet.VN((v + n/2) % n), Port: 9}
		jitter := jitters[v]
		size := c.PacketBytes
		sc := sched(vn)
		// Injection stops before the deadline so the run drains: every
		// offered packet is delivered or dropped by the end.
		var send func()
		send = func() {
			s.SendTo(dst, size, nil)
			if next := sc.Now().Add(period + jitter); next < sendEnd {
				sc.After(period+jitter, send)
			}
		}
		sc.After(starts[v], send)
	}
	return nil
}

// ---------------------------------------------------------------------------
// gnutella-ring

// GnutellaRingSpec parameterizes a gnutella ping flood over a ring of
// routers (servents spread across them, so the flood genuinely crosses
// cores — unlike the §4.3 star, which one core owns whole).
type GnutellaRingSpec struct {
	Routers      int     `json:"routers"`
	VNsPerRouter int     `json:"vns_per_router"`
	Degree       int     `json:"degree"`
	TTL          int     `json:"ttl"`
	WindowSec    float64 `json:"window_sec"`
	Seed         int64   `json:"seed"`
}

// Servents is the overlay population.
func (c GnutellaRingSpec) Servents() int { return c.Routers * c.VNsPerRouter }

// RunFor covers the reachability window plus settling time (as in the §4.3
// scale study).
func (c GnutellaRingSpec) RunFor() modelnet.Duration {
	return modelnet.Seconds(c.WindowSec + 5)
}

// Topology builds the ring with per-link latency jitter: real populations
// are not metronomes, and distinct per-link delays keep the flood's
// wavefronts from colliding in the same nanosecond — which is what lets all
// three runtimes agree packet-for-packet.
func (c GnutellaRingSpec) Topology() *modelnet.Graph {
	ringAttr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(100), LatencySec: modelnet.Ms(5), QueuePkts: 400}
	accessAttr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(10), LatencySec: modelnet.Ms(1), QueuePkts: 200}
	g := modelnet.Ring(c.Routers, c.VNsPerRouter, ringAttr, accessAttr)
	latRng := rand.New(rand.NewSource(c.Seed ^ 0x5ca1e))
	for i := range g.Links {
		a := g.Links[i].Attr
		a.LatencySec *= 0.8 + 0.4*latRng.Float64()
		g.Links[i].Attr = a
	}
	return g
}

// NeighborPlan derives the overlay adjacency the way the §4.3 scale study
// wires it — a random spanning tree plus random extra edges — as ordered
// per-servent endpoint lists. The list order matters (it is the flood's
// fan-out order), so the plan replays the exact connect sequence.
func (c GnutellaRingSpec) NeighborPlan() [][]netstack.Endpoint {
	n := c.Servents()
	rng := rand.New(rand.NewSource(c.Seed))
	nbrs := make([][]netstack.Endpoint, n)
	add := func(a, b int) {
		ep := netstack.Endpoint{VN: pipes.VN(b), Port: 6346}
		for _, e := range nbrs[a] {
			if e == ep {
				return
			}
		}
		nbrs[a] = append(nbrs[a], ep)
	}
	connect := func(a, b int) { add(a, b); add(b, a) }
	for i := 1; i < n; i++ {
		connect(i, rng.Intn(i))
	}
	for i := 0; i < n*(c.Degree-2)/2; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			connect(a, b)
		}
	}
	return nbrs
}

// GnutellaRingReport is the scenario's measurement: connectivity from
// servent 0 plus flood load, summed over the installing process's peers.
type GnutellaRingReport struct {
	Reachable  int    `json:"reachable"`
	Forwarded  uint64 `json:"forwarded"`
	Duplicates uint64 `json:"duplicates"`
}

// Merge folds another process's report in.
func (r *GnutellaRingReport) Merge(o GnutellaRingReport) {
	if o.Reachable > r.Reachable {
		r.Reachable = o.Reachable
	}
	r.Forwarded += o.Forwarded
	r.Duplicates += o.Duplicates
}

// Install builds the homed slice of the overlay and, on the process homing
// servent 0, starts the reachability flood. The returned closure reports
// this slice's results after the run.
func (c GnutellaRingSpec) Install(n int, homed func(pipes.VN) bool,
	host func(pipes.VN) *netstack.Host) (func() GnutellaRingReport, error) {
	nbrs := c.NeighborPlan()
	rep := &GnutellaRingReport{}
	var peers []*gnutella.Peer
	for v := 0; v < n; v++ {
		vn := pipes.VN(v)
		if !homed(vn) {
			continue
		}
		p, err := gnutella.NewPeer(host(vn), v, gnutella.Config{DefaultTTL: c.TTL})
		if err != nil {
			return nil, err
		}
		for _, ep := range nbrs[v] {
			p.Connect(ep)
		}
		peers = append(peers, p)
		if v == 0 {
			p.Reachability(vtime.DurationOf(c.WindowSec), func(count int) { rep.Reachable = count })
		}
	}
	return func() GnutellaRingReport {
		for _, p := range peers {
			rep.Forwarded += p.Forwarded
			rep.Duplicates += p.Duplicates
		}
		return *rep
	}, nil
}

// ---------------------------------------------------------------------------
// scenario registration

func init() {
	fednet.Register(ScenarioRingCBR, fednet.Scenario{
		Build: func(params json.RawMessage) (*modelnet.Graph, error) {
			var c RingCBRSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			return c.Topology(), nil
		},
		Install: func(env *fednet.WorkerEnv, params json.RawMessage) (func() json.RawMessage, error) {
			var c RingCBRSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			err := c.Install(env.NumVNs(), env.Homed, env.NewHost,
				func(pipes.VN) *vtime.Scheduler { return env.Sched })
			return nil, err
		},
	})
	fednet.Register(ScenarioGnutella, fednet.Scenario{
		Build: func(params json.RawMessage) (*modelnet.Graph, error) {
			var c GnutellaRingSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			return c.Topology(), nil
		},
		Install: func(env *fednet.WorkerEnv, params json.RawMessage) (func() json.RawMessage, error) {
			var c GnutellaRingSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			report, err := c.Install(env.NumVNs(), env.Homed, env.NewHost)
			if err != nil {
				return nil, err
			}
			return func() json.RawMessage {
				b, _ := json.Marshal(report())
				return b
			}, nil
		},
	})
}

// ---------------------------------------------------------------------------
// local (non-socket) runners, for cross-mode comparison

// localRun is a mode-generic outcome.
type localRun struct {
	Totals     modelnet.Totals
	Deliveries *stats.Sample
	WallMS     float64
	Windows    uint64
	Serial     uint64
	Messages   uint64
	Lookahead  modelnet.Duration
	Gnutella   GnutellaRingReport
}

// runLocal executes a registered-scenario-equivalent workload without
// sockets: sequentially (parallel=false) or on the in-process parallel
// runtime.
func runLocal(topo *modelnet.Graph, seed int64, cores int, parallel bool,
	install func(em *modelnet.Emulation) (func() GnutellaRingReport, error),
	runFor modelnet.Duration) (*localRun, error) {
	ideal := modelnet.IdealProfile()
	em, err := modelnet.Run(topo, modelnet.Options{
		Cores: cores, Parallel: parallel, Profile: &ideal, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	res := &localRun{Deliveries: &stats.Sample{}}
	var mu sync.Mutex
	em.OnDeliver(func(_ *pipes.Packet, at modelnet.Time) {
		mu.Lock()
		res.Deliveries.Add(at.Seconds())
		mu.Unlock()
	})
	report, err := install(em)
	if err != nil {
		return nil, err
	}
	begin := time.Now()
	em.RunFor(runFor)
	res.WallMS = float64(time.Since(begin).Microseconds()) / 1000
	res.Totals = em.Totals()
	if report != nil {
		res.Gnutella = report()
	}
	if em.Par != nil {
		st := em.Par.Stats()
		res.Windows, res.Serial, res.Messages = st.Windows, st.SerialRounds, st.Messages
		res.Lookahead = em.Par.Lookahead()
	}
	return res, nil
}

// RunRingCBRLocal runs the ring-cbr scenario without sockets.
func RunRingCBRLocal(c RingCBRSpec, cores int, parallel bool) (*localRun, error) {
	return runLocal(c.Topology(), c.Seed, cores, parallel,
		func(em *modelnet.Emulation) (func() GnutellaRingReport, error) {
			err := c.Install(em.NumVNs(),
				func(pipes.VN) bool { return true },
				em.NewHost, em.SchedulerOf)
			return nil, err
		}, c.RunFor())
}

// RunGnutellaRingLocal runs the gnutella-ring scenario without sockets.
func RunGnutellaRingLocal(c GnutellaRingSpec, cores int, parallel bool) (*localRun, error) {
	return runLocal(c.Topology(), c.Seed, cores, parallel,
		func(em *modelnet.Emulation) (func() GnutellaRingReport, error) {
			return c.Install(em.NumVNs(),
				func(pipes.VN) bool { return true },
				em.NewHost)
		}, c.RunFor())
}

// RunRingCBRFederated runs the ring-cbr scenario as a cores-process
// federation over loopback (workers spawned from this binary; the caller's
// main or TestMain must call fednet.MaybeRunWorker).
func RunRingCBRFederated(c RingCBRSpec, cores int, dataPlane string) (*fednet.Report, error) {
	ideal := modelnet.IdealProfile()
	return fednet.Run(fednet.Options{
		Scenario: ScenarioRingCBR, Params: c,
		Cores: cores, Seed: c.Seed, Profile: &ideal,
		RunFor: c.RunFor(), DataPlane: dataPlane,
		Spawn: true, CollectDeliveries: true,
	})
}

// RunGnutellaRingFederated runs the gnutella-ring scenario as a
// cores-process federation over loopback.
func RunGnutellaRingFederated(c GnutellaRingSpec, cores int, dataPlane string) (*fednet.Report, error) {
	ideal := modelnet.IdealProfile()
	return fednet.Run(fednet.Options{
		Scenario: ScenarioGnutella, Params: c,
		Cores: cores, Seed: c.Seed, Profile: &ideal,
		RunFor: c.RunFor(), DataPlane: dataPlane,
		Spawn: true, CollectDeliveries: true,
	})
}

// GnutellaFederatedReport merges the per-worker scenario reports of a
// federated gnutella-ring run.
func GnutellaFederatedReport(rep *fednet.Report) (GnutellaRingReport, error) {
	var out GnutellaRingReport
	for _, w := range rep.Workers {
		if len(w.Scenario) == 0 {
			continue
		}
		var r GnutellaRingReport
		if err := json.Unmarshal(w.Scenario, &r); err != nil {
			return out, fmt.Errorf("shard %d scenario report: %w", w.Shard, err)
		}
		out.Merge(r)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// the fednet scaling study (mnbench -run fednet -> BENCH_fednet.json)

// FednetConfig parameterizes the scaling study: the same ring workload
// under the in-process parallel runtime and under real multi-process
// federation at each core count.
type FednetConfig struct {
	Ring      RingCBRSpec
	Cores     []int
	DataPlane string
}

// DefaultFednet is the full-scale study: the paper's 20×20 ring at 2 and 4
// cores, over the UDP data plane.
func DefaultFednet() FednetConfig {
	return FednetConfig{
		Ring: RingCBRSpec{
			Routers:       20,
			VNsPerRouter:  20,
			PacketsPerSec: 200,
			PacketBytes:   1000,
			DurationSec:   10,
			Seed:          11,
		},
		Cores:     []int{2, 4},
		DataPlane: fednet.DataUDP,
	}
}

// ScaledFednet shrinks the emulated duration for quick runs.
func ScaledFednet(scale float64) FednetConfig {
	cfg := DefaultFednet()
	if scale < 1 {
		cfg.Ring.DurationSec *= scale
	}
	return cfg
}

// FednetRow is one configuration's outcome.
type FednetRow struct {
	Mode         string  `json:"mode"` // seq, inproc, fednet
	Cores        int     `json:"cores"`
	WallMS       float64 `json:"wall_ms"`
	Speedup      float64 `json:"speedup"` // vs the sequential row
	Delivered    uint64  `json:"delivered"`
	Injected     uint64  `json:"injected"`
	Drops        uint64  `json:"drops"`
	Windows      uint64  `json:"windows,omitempty"`
	SerialRounds uint64  `json:"serial_rounds,omitempty"`
	Messages     uint64  `json:"messages,omitempty"`
	// Frames and BytesOnWire price the data plane of a fednet row: frames
	// written to real sockets (= syscalls on the UDP plane) and bytes
	// including framing. With batching, Frames ≪ Messages.
	Frames      uint64  `json:"frames,omitempty"`
	BytesOnWire uint64  `json:"bytes_on_wire,omitempty"`
	LookaheadMS float64 `json:"lookahead_ms,omitempty"`
}

// FednetResult is the full study.
type FednetResult struct {
	Routers      int     `json:"routers"`
	VNsPerRouter int     `json:"vns_per_router"`
	DurationSec  float64 `json:"duration_sec"`
	DataPlane    string  `json:"data_plane"`
	// HostCPUs bounds the achievable speedup; on a 1-CPU host the
	// parallel and federated rows measure synchronization and socket
	// overhead instead.
	HostCPUs int         `json:"host_cpus"`
	Rows     []FednetRow `json:"rows"`
	// Deterministic reports whether every configuration produced
	// identical conservation counters.
	Deterministic bool `json:"deterministic"`
}

func totalsRow(mode string, cores int, t modelnet.Totals, wallMS float64) FednetRow {
	return FednetRow{
		Mode: mode, Cores: cores, WallMS: wallMS,
		Delivered: t.Delivered, Injected: t.Injected,
		Drops: t.PhysDrops + t.VirtualDrops,
	}
}

// RunFednetScaling runs the study: a sequential baseline, then at each core
// count the in-process parallel runtime and a real multi-process
// federation.
func RunFednetScaling(cfg FednetConfig) (*FednetResult, error) {
	res := &FednetResult{
		Routers:      cfg.Ring.Routers,
		VNsPerRouter: cfg.Ring.VNsPerRouter,
		DurationSec:  cfg.Ring.DurationSec,
		DataPlane:    cfg.DataPlane,
		HostCPUs:     runtime.NumCPU(),

		Deterministic: true,
	}
	seq, err := RunRingCBRLocal(cfg.Ring, 1, false)
	if err != nil {
		return nil, err
	}
	base := totalsRow("seq", 1, seq.Totals, seq.WallMS)
	base.Speedup = 1
	res.Rows = append(res.Rows, base)
	check := func(r FednetRow) FednetRow {
		if r.WallMS > 0 {
			r.Speedup = base.WallMS / r.WallMS
		}
		if r.Delivered != base.Delivered || r.Injected != base.Injected || r.Drops != base.Drops {
			res.Deterministic = false
		}
		return r
	}
	for _, k := range cfg.Cores {
		if k < 2 {
			continue
		}
		par, err := RunRingCBRLocal(cfg.Ring, k, true)
		if err != nil {
			return nil, err
		}
		row := totalsRow("inproc", k, par.Totals, par.WallMS)
		row.Windows, row.SerialRounds, row.Messages = par.Windows, par.Serial, par.Messages
		row.LookaheadMS = par.Lookahead.Seconds() * 1000
		res.Rows = append(res.Rows, check(row))

		fed, err := RunRingCBRFederated(cfg.Ring, k, cfg.DataPlane)
		if err != nil {
			return nil, err
		}
		frow := totalsRow("fednet", k, fed.Totals, fed.WallMS)
		frow.Windows, frow.SerialRounds, frow.Messages = fed.Sync.Windows, fed.Sync.SerialRounds, fed.Sync.Messages
		frow.Frames, frow.BytesOnWire = fed.Frames, fed.BytesOnWire
		frow.LookaheadMS = fed.Lookahead.Seconds() * 1000
		res.Rows = append(res.Rows, check(frow))
	}
	return res, nil
}

// PrintFednet renders the study.
func PrintFednet(w io.Writer, res *FednetResult) {
	fprintf(w, "Core federation scaling: %d×%d ring, %.1fs emulated, %s data plane (host CPUs: %d)\n",
		res.Routers, res.VNsPerRouter, res.DurationSec, res.DataPlane, res.HostCPUs)
	fprintf(w, "%8s %6s %9s %9s %10s %9s %8s %9s %9s %11s %10s\n",
		"mode", "cores", "wall ms", "speedup", "delivered", "windows", "serial", "messages", "frames", "wire MB", "lookahead")
	for _, r := range res.Rows {
		fprintf(w, "%8s %6d %9.0f %8.2fx %10d %9d %8d %9d %9d %11.1f %8.1fms\n",
			r.Mode, r.Cores, r.WallMS, r.Speedup, r.Delivered, r.Windows, r.SerialRounds, r.Messages,
			r.Frames, float64(r.BytesOnWire)/1e6, r.LookaheadMS)
	}
	if !res.Deterministic {
		fprintf(w, "  WARNING: configurations disagreed on emulation counters\n")
	}
}

// WriteFednetJSON records the study for the repository (BENCH_fednet.json).
func WriteFednetJSON(path string, res *FednetResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
