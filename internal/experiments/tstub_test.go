package experiments

// The sharded-distribution contract on the transit-stub workload, at two
// sizes: a small population where all three runtimes can run (so the usual
// counter/CDF determinism cross-check applies, with the local baseline on
// the demand-built route cache instead of the O(n²) matrix), and a large
// 50k-VN population where only the federation runs and the assertions are
// about footprint — per-worker setup bytes and materialized pipes must be
// a fraction of the world, and route state must arrive by demand paging.

import (
	"testing"

	"modelnet"
	"modelnet/internal/fednet"
	"modelnet/internal/fednet/wire"
)

func tstubSmallSpec() TStubCBRSpec {
	return TStubCBRSpec{
		TransitDomains:   2,
		TransitPerDomain: 3,
		StubsPerTransit:  3,
		RoutersPerStub:   2,
		ClientsPerStub:   8,
		Servers:          8,
		Flows:            24,
		PacketsPerSec:    50,
		PacketBytes:      600,
		DurationSec:      1.5,
		Seed:             51,
	}
}

func TestTStubCBRFednetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	spec := tstubSmallSpec()
	cache := WithRouteCache(spec.Servers + 8)
	seq, err := RunTStubCBRLocal(spec, 1, false, false, cache)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Totals.Delivered == 0 {
		t.Fatal("tstub run delivered nothing")
	}
	if seq.Totals.NoRoute > 0 {
		t.Fatalf("tstub run had %d unroutable packets", seq.Totals.NoRoute)
	}
	for _, sm := range []modelnet.SyncMode{modelnet.SyncAdaptive, modelnet.SyncFixed} {
		par, err := RunTStubCBRLocal(spec, 4, true, false, cache, WithSync(sm))
		if err != nil {
			t.Fatal(err)
		}
		if seq.Totals != par.Totals {
			t.Errorf("tstub counters diverge (%s):\n sequential %+v\n parallel   %+v", sm, seq.Totals, par.Totals)
		}
		sameCDF(t, "tstub seq vs par "+sm.String(), seq.Deliveries, par.Deliveries)
	}
	for _, fp := range []struct {
		cores int
		plane string
		sync  modelnet.SyncMode
	}{
		{2, fednet.DataUDP, modelnet.SyncAdaptive},
		{3, fednet.DataTCP, modelnet.SyncAdaptive},
		{2, fednet.DataTCP, modelnet.SyncFixed},
	} {
		fed, err := RunTStubCBRFederated(spec, fp.cores, fp.plane, WithSync(fp.sync))
		if err != nil {
			t.Fatalf("%d workers over %s (%s): %v", fp.cores, fp.plane, fp.sync, err)
		}
		name := fmtPlane("tstub-cbr", fp.cores, fp.plane, fp.sync)
		if seq.Totals != fed.Totals {
			t.Errorf("%s: counters diverge:\n sequential %+v\n federated  %+v", name, seq.Totals, fed.Totals)
		}
		sameCDF(t, name, seq.Deliveries, sampleOf(fed))
		if fed.Sync.Messages == 0 {
			t.Errorf("%s: no cross-core messages — the comparison is vacuous", name)
		}
		for _, w := range fed.Workers {
			if w.RouteRPCs == 0 {
				t.Errorf("%s: shard %d paged no route summaries — the demand path went unexercised", name, w.Shard)
			}
		}
	}
}

// TestShardedDistributionScales is the large-topology smoke: ~50k VNs cut
// across 2 worker processes over loopback. It asserts the tentpole's memory
// claim directly — each worker receives a setup stream and materializes a
// pipe set that is a fraction of the world (≈ its half plus the cut
// frontier), with route state paged on demand rather than shipped.
func TestShardedDistributionScales(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses over a 50k-VN world")
	}
	spec := TStubCBRSpec{
		TransitDomains:   10,
		TransitPerDomain: 10,
		StubsPerTransit:  5,
		RoutersPerStub:   4,
		ClientsPerStub:   100, // 10·10·5·100 = 50 000 VNs
		Servers:          16,
		Flows:            32,
		PacketsPerSec:    20,
		PacketBytes:      512,
		DurationSec:      0.5,
		Seed:             71,
	}
	g := spec.Topology()
	totalLinks := g.NumLinks()
	// What the pre-sharding coordinator would have shipped to every worker:
	// the whole distilled topology plus the full link assignment.
	monolithic := len(wire.EncodeTopology(g)) + len(wire.EncodeAssignment(make([]int, totalLinks), 2))

	fed, err := RunTStubCBRFederated(spec, 2, fednet.DataTCP)
	if err != nil {
		t.Fatal(err)
	}
	if fed.Totals.Delivered == 0 {
		t.Fatal("50k-VN federation delivered nothing")
	}
	if fed.Totals.NoRoute > 0 {
		t.Fatalf("50k-VN federation had %d unroutable packets", fed.Totals.NoRoute)
	}
	sumPipes := 0
	for _, w := range fed.Workers {
		if w.SetupBytes == 0 || w.StartupWallNs == 0 {
			t.Fatalf("shard %d reported no setup cost: %+v", w.Shard, w)
		}
		// The shard view re-encodes its links with ownership and frontier
		// metadata, so per-link it is slightly wider than the monolithic
		// topology row — but it only carries this shard's ≈half of the
		// world. 75% of the monolithic stream is a conservative ceiling;
		// in practice it sits near 55%.
		if w.SetupBytes > uint64(monolithic)*3/4 {
			t.Errorf("shard %d setup is not sublinear: %d bytes vs %d monolithic", w.Shard, w.SetupBytes, monolithic)
		}
		// Materialized pipes ≈ owned half + incoming frontier. A worker
		// holding over 65%% of the world's pipes is not sharded; under 25%%
		// would mean the cut is pathologically unbalanced.
		frac := float64(w.MaterializedPipes) / float64(totalLinks)
		if frac > 0.65 || frac < 0.25 {
			t.Errorf("shard %d materialized %d/%d pipes (%.0f%%), outside the half-plus-frontier envelope",
				w.Shard, w.MaterializedPipes, totalLinks, frac*100)
		}
		if w.RouteRPCs == 0 {
			t.Errorf("shard %d paged no route summaries", w.Shard)
		}
		sumPipes += w.MaterializedPipes
	}
	// Every link is owned by exactly one shard and frontier copies only
	// add: the fleet together must cover the world.
	if sumPipes < totalLinks {
		t.Errorf("workers together materialized %d pipes < %d links — part of the world went unemulated", sumPipes, totalLinks)
	}
}
