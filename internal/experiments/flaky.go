package experiments

// flaky-edge: the webrepl workload on a ring whose core links replay the
// bundled 802.11 contention trace while one ring link fails mid-run and
// later recovers, with route reconvergence. This is the link-dynamics
// determinism scenario: the trace makes every pipe's parameters a function
// of virtual time, the failure exercises drain/blackhole/reroute, and the
// wifi trace's latency dips force shard lookahead to come from the
// profile's floor rather than the initial link latency — all of which must
// agree byte-for-byte across the sequential, in-process parallel, and
// federated runtimes.

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"modelnet"
	"modelnet/internal/assign"
	"modelnet/internal/dynamics"
	"modelnet/internal/fednet"
	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// ScenarioFlakyEdge is the registered federation scenario name.
const ScenarioFlakyEdge = "flaky-edge"

// FlakyEdgeSpec parameterizes the flaky-edge workload: the webrepl-ring
// deployment plus the dynamics riding on it. It doubles as the federation
// scenario's JSON params; the dynamics spec itself is derived (Dynamics)
// and shipped separately in the setup frame, so the workers never rebuild
// it from JSON.
type FlakyEdgeSpec struct {
	Web WebReplRingSpec `json:"web"`
	// Trace names the bundled capacity trace ("lte", "satellite", "wifi")
	// replayed on every ring link, with per-link latency jitter so
	// independent links never step to identical delays.
	Trace string `json:"trace"`
	// FailLink is the ring link that goes down at FailSec and back up at
	// RecoverSec; routes reconverge RerouteDelaySec after each transition.
	FailLink        int     `json:"fail_link"`
	FailSec         float64 `json:"fail_sec"`
	RecoverSec      float64 `json:"recover_sec"`
	RerouteDelaySec float64 `json:"reroute_delay_sec"`
}

// Topology and RunFor delegate to the underlying web deployment.
func (c FlakyEdgeSpec) Topology() *modelnet.Graph { return c.Web.Topology() }
func (c FlakyEdgeSpec) RunFor() modelnet.Duration { return c.Web.RunFor() }
func (c FlakyEdgeSpec) ringLinks() int            { return 2 * c.Web.Routers }
func (c FlakyEdgeSpec) failAt() vtime.Duration    { return vtime.DurationOf(c.FailSec) }
func (c FlakyEdgeSpec) recoverAt() vtime.Duration { return vtime.DurationOf(c.RecoverSec) }

// Dynamics derives the spec's link-dynamics description: one looping trace
// profile per ring link (latencies scaled by a seeded per-link jitter, as
// the topology's initial latencies are) plus the fail/recover profile on
// FailLink with reroute enabled. The same value feeds every execution mode.
func (c FlakyEdgeSpec) Dynamics() (*dynamics.Spec, error) {
	text, ok := dynamics.BundledTrace(c.Trace)
	if !ok {
		return nil, fmt.Errorf("flaky-edge: unknown bundled trace %q", c.Trace)
	}
	if c.FailLink < 0 || c.FailLink >= c.ringLinks() {
		return nil, fmt.Errorf("flaky-edge: fail link %d outside the %d ring links", c.FailLink, c.ringLinks())
	}
	if c.RecoverSec <= c.FailSec {
		return nil, fmt.Errorf("flaky-edge: recovery at %vs not after failure at %vs", c.RecoverSec, c.FailSec)
	}
	spec := &dynamics.Spec{
		Reroute:      true,
		RerouteDelay: vtime.DurationOf(c.RerouteDelaySec),
	}
	jitRng := rand.New(rand.NewSource(c.Web.Seed ^ 0x7f1a6e))
	for l := 0; l < c.ringLinks(); l++ {
		p, err := dynamics.TraceProfile(l, text)
		if err != nil {
			return nil, err
		}
		jitter := 0.8 + 0.4*jitRng.Float64()
		for i := range p.Steps {
			if p.Steps[i].Latency >= 0 {
				p.Steps[i].Latency = vtime.Duration(float64(p.Steps[i].Latency) * jitter)
			}
		}
		spec.Profiles = append(spec.Profiles, p)
	}
	down := dynamics.At(c.failAt())
	down.Down = true
	up := dynamics.At(c.recoverAt())
	up.Up = true
	spec.Profiles = append(spec.Profiles, dynamics.Profile{
		Link:  c.FailLink,
		Steps: []dynamics.Step{down, up},
	})
	return spec, nil
}

// CutFailLink picks a ring link that crosses the k-core partition the
// runtimes would compute for this spec's topology and seed: a link whose
// owning cluster differs from its destination router's, so its failure (and
// the packets blackholed at it) genuinely involves the shard cut. With one
// core there is no cut; the first ring link stands in.
func (c FlakyEdgeSpec) CutFailLink(k int) (int, error) {
	g := c.Topology()
	if k < 2 {
		return 0, nil
	}
	asn, err := assign.KClusters(g, k, c.Web.Seed)
	if err != nil {
		return 0, err
	}
	// A node's cluster is the owner of any link sourced at it (KClusters
	// owns each directed link by its source node's cluster).
	nodeOwner := make([]int, g.NumNodes())
	for i := range nodeOwner {
		nodeOwner[i] = -1
	}
	for _, l := range g.Links {
		if nodeOwner[l.Src] == -1 {
			nodeOwner[l.Src] = asn.Owner[l.ID]
		}
	}
	for _, l := range g.Links[:c.ringLinks()] {
		if asn.Owner[l.ID] != nodeOwner[l.Dst] {
			return int(l.ID), nil
		}
	}
	return 0, fmt.Errorf("flaky-edge: no ring link crosses the %d-core partition", k)
}

func init() {
	fednet.Register(ScenarioFlakyEdge, fednet.Scenario{
		Build: func(params json.RawMessage) (*modelnet.Graph, error) {
			var c FlakyEdgeSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			return c.Topology(), nil
		},
		Install: func(env *fednet.WorkerEnv, params json.RawMessage) (func() json.RawMessage, error) {
			var c FlakyEdgeSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			// The dynamics arrive through the setup frame and are already
			// attached by the time the scenario installs; only the workload
			// is built here.
			cross := func(vn pipes.VN) bool { return !env.Homed(vn) }
			report, err := c.Web.Install(env.NumVNs(), env.Homed, env.NewHost, cross)
			if err != nil {
				return nil, err
			}
			return func() json.RawMessage {
				b, _ := json.Marshal(report())
				return b
			}, nil
		},
	})
}

// RunFlakyEdgeLocal runs the flaky-edge scenario without sockets,
// sequentially or on the in-process parallel runtime.
func RunFlakyEdgeLocal(c FlakyEdgeSpec, cores int, parallel, trace bool, opts ...RunOpt) (*localRun, error) {
	dyn, err := c.Dynamics()
	if err != nil {
		return nil, err
	}
	return runLocal(c.Topology(), c.Web.Seed, cores, parallel, trace, dyn,
		func(em *modelnet.Emulation) (func(*localRun), error) {
			report, err := c.Web.Install(em.NumVNs(), allHomed, em.NewHost, nil)
			if err != nil {
				return nil, err
			}
			return func(res *localRun) { res.Web = report() }, nil
		}, c.RunFor(), opts...)
}

// RunFlakyEdgeFederated runs the flaky-edge scenario as a cores-process
// federation over loopback, shipping the dynamics spec in the setup frame.
func RunFlakyEdgeFederated(c FlakyEdgeSpec, cores int, dataPlane string, opts ...RunOpt) (*fednet.Report, error) {
	dyn, err := c.Dynamics()
	if err != nil {
		return nil, err
	}
	o := applyRunOpts(opts)
	ideal := modelnet.IdealProfile()
	fo := fednet.Options{
		Scenario: ScenarioFlakyEdge, Params: c,
		Cores: cores, Seed: c.Web.Seed, Profile: &ideal, Sync: o.sync,
		RunFor: c.RunFor(), DataPlane: dataPlane,
		Dynamics: dyn,
		Spawn:    true, CollectDeliveries: true,
	}
	if o.fedOpts != nil {
		o.fedOpts(&fo)
	}
	return fednet.Run(fo)
}

// FlakyEdgeFederatedReport merges the per-worker scenario reports of a
// federated flaky-edge run.
func FlakyEdgeFederatedReport(rep *fednet.Report) (WebReplRingReport, error) {
	var out WebReplRingReport
	err := mergeWorkerReports(rep, out.Merge)
	return out, err
}
