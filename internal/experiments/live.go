package experiments

// The live-ring scenario: the workload half of the live edge story. It
// builds the usual router ring and installs a single in-emulation service —
// a UDP echo responder — plus (optionally) background CBR load, and nothing
// else: the interesting traffic comes from outside, through a worker's edge
// gateway (internal/edge), injected by real processes over real sockets. An
// external client pinging the echo VN through the gateway observes the
// ring's configured latency (two access links plus the ring path, twice)
// and loss, which is the paper's unmodified-application claim end to end.

import (
	"encoding/json"

	"modelnet"
	"modelnet/internal/fednet"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// ScenarioLiveRing is the registered name of the live edge workload.
const ScenarioLiveRing = "live-ring"

// LiveRingSpec parameterizes the live-ring scenario.
type LiveRingSpec struct {
	Routers      int `json:"routers"`
	VNsPerRouter int `json:"vns_per_router"`
	// EchoVN/EchoPort place the in-emulation UDP echo responder external
	// clients ping through the gateway.
	EchoVN   int    `json:"echo_vn"`
	EchoPort uint16 `json:"echo_port"`
	// RingLossPct drops packets on the router-to-router links, so an
	// external client can measure emulated loss as well as latency.
	RingLossPct float64 `json:"ring_loss_pct,omitempty"`
	// BackgroundPPS, when positive, adds a light CBR flow per VN (as in
	// ring-cbr) so the live traffic contends with synthetic load.
	BackgroundPPS   float64 `json:"background_pps,omitempty"`
	BackgroundBytes int     `json:"background_bytes,omitempty"`
	DurationSec     float64 `json:"duration_sec"`
	Seed            int64   `json:"seed"`
}

// RunFor is the virtual time a run of this spec must cover. Live runs pace
// virtual time against the wall clock, so this is also the wall-clock
// duration external clients have.
func (c LiveRingSpec) RunFor() modelnet.Duration { return modelnet.Seconds(c.DurationSec) }

// OneWay is the modeled one-way latency from VN 0's access link to the
// echo VN, assuming diametric placement: two 1 ms access links plus
// Routers/2 ring hops of 5 ms. External clients use it as the lower bound
// a measured round trip must respect.
func (c LiveRingSpec) OneWay() vtime.Duration {
	return 2*vtime.Millisecond + vtime.Duration(c.Routers/2)*5*vtime.Millisecond
}

// Topology builds the ring: 100 Mb/s, 5 ms ring links (optionally lossy)
// and 10 Mb/s, 1 ms access links.
func (c LiveRingSpec) Topology() *modelnet.Graph {
	ringAttr := modelnet.LinkAttrs{
		BandwidthBps: modelnet.Mbps(100), LatencySec: modelnet.Ms(5),
		QueuePkts: 200, LossRate: c.RingLossPct / 100,
	}
	accessAttr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(10), LatencySec: modelnet.Ms(1), QueuePkts: 100}
	return modelnet.Ring(c.Routers, c.VNsPerRouter, ringAttr, accessAttr)
}

// LiveRingReport is the scenario's measurement: what the in-emulation echo
// responder saw (the external client keeps its own books).
type LiveRingReport struct {
	Echoed uint64 `json:"echoed"`
}

// Merge folds another process's report in.
func (r *LiveRingReport) Merge(o LiveRingReport) { r.Echoed += o.Echoed }

// Install builds the homed slice: the echo responder on EchoVN and any
// background CBR flows.
func (c LiveRingSpec) Install(n int, homed func(pipes.VN) bool,
	host func(pipes.VN) *netstack.Host, sched func(pipes.VN) *vtime.Scheduler) (func() LiveRingReport, error) {
	rep := &LiveRingReport{}
	if vn := pipes.VN(c.EchoVN); homed(vn) {
		h := host(vn)
		var sock *netstack.UDPSocket
		var err error
		sock, err = h.OpenUDP(c.EchoPort, func(from netstack.Endpoint, dg *netstack.Datagram) {
			rep.Echoed++
			if dg.Data != nil {
				sock.SendBytes(from, dg.Data)
			} else {
				sock.SendTo(from, dg.Len, nil)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	if c.BackgroundPPS > 0 {
		bytes := c.BackgroundBytes
		if bytes <= 0 {
			bytes = 500
		}
		bg := RingCBRSpec{
			Routers: c.Routers, VNsPerRouter: c.VNsPerRouter,
			PacketsPerSec: c.BackgroundPPS, PacketBytes: bytes,
			DurationSec: c.DurationSec, Seed: c.Seed,
		}
		// Reuse ring-cbr's install; the echo port (EchoPort) and the CBR
		// sink port (9) must differ, which OpenUDP enforces loudly.
		if err := bg.Install(n, homed, host, sched); err != nil {
			return nil, err
		}
	}
	return func() LiveRingReport { return *rep }, nil
}

// LiveRingFederatedReport merges the per-worker scenario reports of a
// federated live-ring run.
func LiveRingFederatedReport(rep *fednet.Report) (LiveRingReport, error) {
	var out LiveRingReport
	err := mergeWorkerReports(rep, out.Merge)
	return out, err
}

func init() {
	fednet.Register(ScenarioLiveRing, fednet.Scenario{
		Build: func(params json.RawMessage) (*modelnet.Graph, error) {
			var c LiveRingSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			return c.Topology(), nil
		},
		Install: func(env *fednet.WorkerEnv, params json.RawMessage) (func() json.RawMessage, error) {
			var c LiveRingSpec
			if err := json.Unmarshal(params, &c); err != nil {
				return nil, err
			}
			report, err := c.Install(env.NumVNs(), env.Homed, env.NewHost,
				func(pipes.VN) *vtime.Scheduler { return env.Sched })
			if err != nil {
				return nil, err
			}
			return func() json.RawMessage {
				b, _ := json.Marshal(report())
				return b
			}, nil
		},
	})
}
