package experiments

// Crash recovery under a full application workload: the flaky-edge scenario
// carries everything the runtime can hold — scripted link dynamics, lossy
// pipes forcing netstack TCP retransmission state, web-replica application
// state, and a packet trace — and a worker crash mid-run must still
// reconverge byte-identically. This is the strongest recovery check in the
// repo: the respawned worker rebuilds all of that state purely by
// deterministic replay, and the sequential baseline is the referee.

import (
	"reflect"
	"testing"

	"modelnet"
	"modelnet/internal/fednet"
	"modelnet/internal/obs"
)

func TestCrashRecoveryFlakyEdge(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker subprocesses")
	}
	spec := FlakyEdgeSpec{
		Web: WebReplRingSpec{
			Routers:      6,
			VNsPerRouter: 3,
			LossPct:      0.5,
			TraceSec:     1.5,
			MinRate:      30,
			MaxRate:      60,
			MedianSize:   8 << 10,
			DrainSec:     4.5,
			Seed:         42,
		},
		Trace:           "wifi",
		FailSec:         0.6,
		RecoverSec:      2.4,
		RerouteDelaySec: 0.25,
	}
	fail, err := spec.CutFailLink(2)
	if err != nil {
		t.Fatal(err)
	}
	spec.FailLink = fail
	seq, err := RunFlakyEdgeLocal(spec, 1, false, true)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Trace.CanonicalBytes()
	if len(seq.Trace.Canonical()) == 0 {
		t.Fatal("sequential baseline recorded no canonical trace events")
	}
	for _, shard := range []int{0, 1} {
		fed, err := RunFlakyEdgeFederated(spec, 2, fednet.DataUDP,
			WithFedOptions(func(o *fednet.Options) {
				o.Trace = true
				o.Recover = true
				o.FailSpec = &fednet.FailSpec{Shard: shard, Round: 5}
			}))
		if err != nil {
			t.Fatalf("crash shard %d: %v", shard, err)
		}
		if fed.Recoveries != 1 {
			t.Fatalf("crash shard %d: %d recoveries, want 1", shard, fed.Recoveries)
		}
		if fed.Totals != seq.Totals {
			t.Errorf("crash shard %d: totals diverge:\n seq       %+v\n recovered %+v", shard, seq.Totals, fed.Totals)
		}
		if !equalU64(seq.Drops, fed.DropsByReason) {
			t.Errorf("crash shard %d: drop taxonomy diverges:\n seq       %v\n recovered %v", shard, seq.Drops, fed.DropsByReason)
		}
		var got *obs.Trace = fed.Trace
		if got == nil {
			t.Fatalf("crash shard %d: no trace recorded", shard)
		}
		sameTrace(t, "flaky crash recovery", want, got.CanonicalBytes())
		// The application-level report — requests served, retransmissions,
		// latency sums accumulated inside the workers' netstack TCP state —
		// must survive the respawn too.
		fedRep, err := FlakyEdgeFederatedReport(fed)
		if err != nil {
			t.Fatal(err)
		}
		if fedRep.Comparable() != seq.Web.Comparable() {
			t.Errorf("crash shard %d: scenario reports diverge:\n seq       %+v\n recovered %+v",
				shard, seq.Web.Comparable(), fedRep.Comparable())
		}
	}
}

// TestCrashRecoveryCFSRing crashes a worker of the CFS workload over the
// TCP data plane: recovery must replace a connection in the TCP mesh (not
// just swap a UDP source address) and replay Chord lookups and block
// fetches whose bodies ride the recursive payload codecs.
func TestCrashRecoveryCFSRing(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker subprocesses")
	}
	spec := CFSRingSpec{
		Routers:      4,
		VNsPerRouter: 3,
		FileKB:       64,
		WindowKB:     24,
		Downloaders:  []int{0, 7},
		DurationSec:  5,
		Seed:         21,
	}
	seq, err := RunCFSRingLocal(spec, 1, false, false)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := RunCFSRingFederated(spec, 2, fednet.DataTCP,
		WithFedOptions(func(o *fednet.Options) {
			o.Recover = true
			o.FailSpec = &fednet.FailSpec{Shard: 1, Round: 4}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if fed.Recoveries != 1 {
		t.Fatalf("%d recoveries, want 1", fed.Recoveries)
	}
	if seq.Totals != fed.Totals {
		t.Errorf("totals diverge:\n seq       %+v\n recovered %+v", seq.Totals, fed.Totals)
	}
	fedRep, err := CFSFederatedReport(fed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.CFS, fedRep) {
		t.Errorf("CFS reports diverge:\n seq       %+v\n recovered %+v", seq.CFS, fedRep)
	}
	sameCDF(t, "cfs-ring crash recovery", seq.Deliveries, sampleOf(fed))
}

// TestFednetCrashRowRecorded drives the scaling study's crash-row helper at
// a small size: the BENCH_fednet.json artifact must carry a row with the
// recoveries and recovery_wall_ns columns filled and counters matching the
// sequential baseline.
func TestFednetCrashRowRecorded(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker subprocesses")
	}
	cfg := FednetConfig{
		Ring: RingCBRSpec{
			Routers:       4,
			VNsPerRouter:  3,
			PacketsPerSec: 100,
			PacketBytes:   500,
			DurationSec:   1,
			Seed:          11,
		},
		DataPlane: fednet.DataUDP,
	}
	res := &FednetResult{Deterministic: true}
	seq, err := RunRingCBRLocal(cfg.Ring, 1, false, false)
	if err != nil {
		t.Fatal(err)
	}
	res.Rows = append(res.Rows, totalsRow(ScenarioRingCBR, "seq", 1, seq.Totals, seq.WallMS))
	if err := runFednetCrashRow(res, cfg); err != nil {
		t.Fatal(err)
	}
	row := res.Rows[len(res.Rows)-1]
	if row.Scenario != ScenarioRingCBR+"-crash" || row.Mode != "fednet" {
		t.Fatalf("unexpected crash row: %+v", row)
	}
	if row.Recoveries != 1 {
		t.Errorf("crash row records %d recoveries, want 1", row.Recoveries)
	}
	if row.RecoveryWallNs <= 0 {
		t.Errorf("crash row has no recovery wall time")
	}
	if !res.Deterministic {
		t.Error("recovered run diverged from the sequential baseline")
	}
	var sm modelnet.SyncMode
	if row.Sync != sm.String() {
		t.Errorf("crash row sync algebra %q, want the default %q", row.Sync, sm.String())
	}
}
