package experiments

// The live edge acceptance test: a real UDP client — plain net sockets,
// touching no emulator state — exchanges datagrams with a 2-worker
// federated ring over loopback. Its pings enter through a worker's edge
// gateway, traverse the emulated ring to the echo VN, and come back out
// the gateway; the measured round trips must respect the topology's
// modeled latency (pacing makes virtual delays real), and the gateway
// counters must account for every boundary crossing.

import (
	"net"
	"testing"
	"time"

	"modelnet"
	"modelnet/internal/edge"
	"modelnet/internal/fednet"
	"modelnet/internal/vtime"
)

// liveClientResult is what the external client measured.
type liveClientResult struct {
	sent, recvd int
	minRTT      time.Duration
	err         error
}

// runLiveClient plays the external application: pings the gateway and
// waits for echoes. It runs while the federation's clock is live.
func runLiveClient(addr string, pings int, gap time.Duration, window time.Duration) liveClientResult {
	res := liveClientResult{minRTT: time.Hour}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		res.err = err
		return res
	}
	defer conn.Close()
	sentAt := make([]time.Time, pings)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 2048)
		_ = conn.SetReadDeadline(time.Now().Add(window))
		for res.recvd < pings {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			if n < 1 || int(buf[0]) >= pings {
				continue
			}
			if rtt := time.Since(sentAt[buf[0]]); rtt < res.minRTT {
				res.minRTT = rtt
			}
			res.recvd++
		}
	}()
	payload := make([]byte, 64)
	for i := 0; i < pings; i++ {
		payload[0] = byte(i)
		sentAt[i] = time.Now()
		if _, err := conn.Write(payload); err != nil {
			res.err = err
			return res
		}
		res.sent++
		time.Sleep(gap)
	}
	<-done
	return res
}

func TestLiveEdgeRoundTripFederated(t *testing.T) {
	if testing.Short() {
		t.Skip("live edge test paces virtual time against the wall clock")
	}
	spec := LiveRingSpec{
		Routers: 6, VNsPerRouter: 2,
		EchoVN: 6, EchoPort: 7, // router 3's first VN: diametric from VN 0
		DurationSec: 2.5, Seed: 3,
	}
	ideal := modelnet.IdealProfile()
	results := make(chan liveClientResult, 1)
	rep, err := fednet.Run(fednet.Options{
		Scenario: ScenarioLiveRing, Params: spec,
		Cores: 2, Seed: 3, Profile: &ideal,
		RunFor: spec.RunFor(), Spawn: true,
		RealTime: true, Pace: vtime.Millisecond,
		Edge: &edge.GatewayConfig{
			Listen: "127.0.0.1:0",
			Maps:   []edge.GatewayMap{{VN: 0, DstVN: spec.EchoVN, DstPort: spec.EchoPort}},
		},
		OnLive: func(addrs []string) {
			addr := ""
			for _, a := range addrs {
				if a != "" {
					addr = a
				}
			}
			go func() {
				// 10 pings over the first second; read until shortly
				// before the virtual (= wall) deadline.
				results <- runLiveClient(addr, 10, 100*time.Millisecond, 1800*time.Millisecond)
			}()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-results
	if res.err != nil {
		t.Fatal(res.err)
	}

	// The round trip must come back, and no echo can beat the model:
	// pacing slaves virtual time to the wall clock, so a reply cannot
	// leave the gateway before its virtual delivery time has elapsed in
	// wall time. Loopback UDP is reliable and the ring is loss-free here,
	// so losing more than half the pings means the boundary is broken.
	if res.recvd < res.sent/2 {
		t.Fatalf("client got %d of %d echoes back", res.recvd, res.sent)
	}
	minModel := time.Duration(2 * spec.OneWay())
	if res.minRTT < minModel {
		t.Fatalf("min RTT %v beats the modeled round trip %v: virtual delays are not being paced", res.minRTT, minModel)
	}
	if res.minRTT > 100*minModel {
		t.Fatalf("min RTT %v is wildly over the modeled %v", res.minRTT, minModel)
	}

	// The gateway's books must match the client's.
	if rep.Edge.IngressPkts == 0 || rep.Edge.EgressPkts == 0 {
		t.Fatalf("gateway counters empty: %+v", rep.Edge)
	}
	if int(rep.Edge.IngressPkts) > res.sent {
		t.Fatalf("gateway admitted %d ingress datagrams, client only sent %d", rep.Edge.IngressPkts, res.sent)
	}
	if int(rep.Edge.EgressPkts) < res.recvd {
		t.Fatalf("gateway wrote %d egress datagrams, client received %d", rep.Edge.EgressPkts, res.recvd)
	}
	// And the in-emulation responder must have echoed what came through.
	lr, err := LiveRingFederatedReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Echoed == 0 || lr.Echoed != rep.Edge.IngressPkts {
		t.Fatalf("echo responder saw %d pings, gateway admitted %d", lr.Echoed, rep.Edge.IngressPkts)
	}

	// Exactly one worker (the one homing VN 0) should have bound a gateway.
	live := 0
	for _, a := range rep.GatewayAddrs {
		if a != "" {
			live++
		}
	}
	if live != 1 {
		t.Fatalf("%d live gateways, want exactly 1 (addrs %v)", live, rep.GatewayAddrs)
	}
}

// TestLiveEdgeOversizeRejected drives an oversize datagram at a live
// gateway and checks it is rejected (counted, not truncated or delivered).
func TestLiveEdgeOversizeRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("live edge test paces virtual time against the wall clock")
	}
	spec := LiveRingSpec{
		Routers: 4, VNsPerRouter: 2,
		EchoVN: 4, EchoPort: 7,
		DurationSec: 1.0, Seed: 5,
	}
	ideal := modelnet.IdealProfile()
	rep, err := fednet.Run(fednet.Options{
		Scenario: ScenarioLiveRing, Params: spec,
		Cores: 2, Seed: 5, Profile: &ideal,
		RunFor: spec.RunFor(), Spawn: true,
		RealTime: true, Pace: vtime.Millisecond,
		Edge: &edge.GatewayConfig{
			Listen:      "127.0.0.1:0",
			MaxDatagram: 256,
			Maps:        []edge.GatewayMap{{VN: 0, DstVN: spec.EchoVN, DstPort: 7}},
		},
		OnLive: func(addrs []string) {
			addr := ""
			for _, a := range addrs {
				if a != "" {
					addr = a
				}
			}
			go func() {
				conn, err := net.Dial("udp", addr)
				if err != nil {
					return
				}
				defer conn.Close()
				conn.Write(make([]byte, 512)) // over the 256-byte bound
				conn.Write(make([]byte, 64))  // under it
				time.Sleep(300 * time.Millisecond)
			}()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Edge.Oversize != 1 {
		t.Fatalf("oversize counter = %d, want 1 (stats %+v)", rep.Edge.Oversize, rep.Edge)
	}
	if rep.Edge.IngressPkts != 1 {
		t.Fatalf("admitted %d datagrams, want only the in-bound one", rep.Edge.IngressPkts)
	}
}
