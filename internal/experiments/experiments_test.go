package experiments

import (
	"testing"
)

// These tests run scaled-down versions of each experiment and assert the
// paper's qualitative findings — who wins, where crossovers fall — rather
// than absolute numbers. Full-scale runs live in cmd/mnbench and the root
// benchmarks.

func TestFig4Shape(t *testing.T) {
	rows, err := RunFig4(ScaledFig4(0.2))
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]int]Fig4Row{}
	for _, r := range rows {
		byKey[[2]int{r.Hops, r.Flows}] = r
	}
	low1 := byKey[[2]int{1, 24}]
	hi1 := byKey[[2]int{1, 96}]
	low8 := byKey[[2]int{8, 24}]
	hi8 := byKey[[2]int{8, 96}]

	// Linear region: 24 flows ≈ 24×~1200 pkt/s regardless of hops.
	if low1.Kpps < 24 || low1.Kpps > 33 {
		t.Errorf("1-hop 24-flow = %.1f Kpps, want ≈30", low1.Kpps)
	}
	if low8.Kpps < 24 || low8.Kpps > 33 {
		t.Errorf("8-hop 24-flow = %.1f Kpps, want ≈30", low8.Kpps)
	}
	// 1-hop saturation is NIC-bound near 120 Kpkt/s with CPU well below 100%.
	if hi1.Kpps < 100 || hi1.Kpps > 130 {
		t.Errorf("1-hop 96-flow = %.1f Kpps, want ≈120 (NIC-bound)", hi1.Kpps)
	}
	if hi1.CPUUtil > 0.8 {
		t.Errorf("1-hop saturation CPU %.0f%%, want well under 100%%", hi1.CPUUtil*100)
	}
	// 8-hop is CPU-bound below the NIC bound.
	if hi8.Kpps >= hi1.Kpps {
		t.Errorf("8-hop saturation %.1f ≥ 1-hop %.1f: CPU crossover missing", hi8.Kpps, hi1.Kpps)
	}
	if hi8.CPUUtil < hi1.CPUUtil {
		t.Errorf("8-hop CPU %.2f < 1-hop %.2f", hi8.CPUUtil, hi1.CPUUtil)
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := RunTable1(ScaledTable1(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows: %v", rows)
	}
	// Monotonic degradation with crossing fraction, ~3x from 0% to 100%.
	for i := 1; i < len(rows); i++ {
		if rows[i].Kpps >= rows[i-1].Kpps {
			t.Errorf("throughput not degrading: %+v", rows)
			break
		}
	}
	ratio := rows[0].Kpps / rows[len(rows)-1].Kpps
	if ratio < 2 || ratio > 5 {
		t.Errorf("0%%/100%% ratio = %.2f, paper ≈3", ratio)
	}
	if rows[0].Tunnels != 0 {
		t.Errorf("0%% crossing produced %d tunnels", rows[0].Tunnels)
	}
	if rows[len(rows)-1].Tunnels == 0 {
		t.Error("100% crossing produced no tunnels")
	}
}

func TestFig5Shape(t *testing.T) {
	series, err := RunFig5(ScaledFig5(0.5))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig5Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	hop := byName["hop-by-hop"]
	ns2 := byName["ns2 hop-by-hop 10Mb ring"]
	ns2fat := byName["ns2 hop-by-hop 40Mb ring"]
	lastMile := byName["last-mile"]
	e2e := byName["end-to-end"]

	// End-to-end: no interior contention — every flow gets ≈2 Mb/s.
	if p10 := cdfAtP(e2e.CDF, 0.10); p10 < 1500 {
		t.Errorf("end-to-end p10 = %.0f kbit/s, want ≈2000 (no contention)", p10)
	}
	// Hop-by-hop: constrained ring → mean well below 2 Mb/s and below e2e.
	if hop.Mean >= e2e.Mean*0.9 {
		t.Errorf("hop-by-hop mean %.0f not below end-to-end %.0f", hop.Mean, e2e.Mean)
	}
	// Emulation matches the ns2 reference within 20%.
	diff := hop.Mean/ns2.Mean - 1
	if diff < -0.2 || diff > 0.2 {
		t.Errorf("hop-by-hop mean %.0f vs ns2 %.0f: %.0f%% apart", hop.Mean, ns2.Mean, diff*100)
	}
	// Last-mile ≈ over-provisioned ns2 ring (both ignore ring contention).
	if lastMile.Mean < ns2fat.Mean*0.75 || lastMile.Mean > ns2fat.Mean*1.25 {
		t.Errorf("last-mile mean %.0f vs 4x-ring ns2 %.0f", lastMile.Mean, ns2fat.Mean)
	}
	// And last-mile sits above hop-by-hop (it removes ring contention).
	if lastMile.Mean <= hop.Mean {
		t.Errorf("last-mile %.0f ≤ hop-by-hop %.0f", lastMile.Mean, hop.Mean)
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := RunFig6(ScaledFig6(0.5))
	if err != nil {
		t.Fatal(err)
	}
	at := func(nprog int, ipb float64) float64 {
		for _, r := range rows {
			if r.Nprog == nprog && r.InstrPerB == ipb {
				return r.AggKbitps
			}
		}
		t.Fatalf("missing point %d/%v", nprog, ipb)
		return 0
	}
	// At 50 instr/byte everyone sustains ≈95 Mb/s.
	for _, np := range []int{1, 8, 100} {
		if v := at(np, 50); v < 85000 || v > 100000 {
			t.Errorf("nprog %d @50: %.0f kbit/s, want ≈95000", np, v)
		}
	}
	// At 95 instr/byte all are CPU-bound, and higher multiplexing is slower.
	v1, v100 := at(1, 95), at(100, 95)
	if v1 >= 90000 {
		t.Errorf("nprog 1 @95 = %.0f, should be compute-bound below the link", v1)
	}
	if v100 >= v1 {
		t.Errorf("nprog 100 (%.0f) ≥ nprog 1 (%.0f) at 95 instr/byte", v100, v1)
	}
	// Break-even for nprog=1 between 65 and 80.
	if at(1, 65) < 90000 {
		t.Errorf("nprog 1 @65 = %.0f, should still be link-bound", at(1, 65))
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := RunFig7(ScaledCFS(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows: %v", rows)
	}
	// Larger prefetch windows speed downloads substantially.
	first, last := rows[0], rows[len(rows)-1]
	if last.Speed12 < first.Speed12*2 {
		t.Errorf("prefetch did not help: %.1f -> %.1f KB/s", first.Speed12, last.Speed12)
	}
	// The 1-machine and 12-machine curves should track each other (the
	// multiplexing claim): within 35% at every window.
	for _, r := range rows {
		ratio := r.Speed1 / r.Speed12
		if ratio < 0.65 || ratio > 1.35 {
			t.Errorf("window %d: 1-machine %.1f vs 12-machine %.1f (ratio %.2f)",
				r.WindowKB, r.Speed1, r.Speed12, ratio)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	series, err := RunFig9(ScaledFig9(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series: %d", len(series))
	}
	med := func(i int) float64 { return cdfAtP(series[i].CDF, 0.5) }
	// Larger transfers achieve higher speed (slow start amortized).
	if !(med(0) < med(1) && med(1) < med(2)) {
		t.Errorf("medians not increasing with size: %.1f %.1f %.1f", med(0), med(1), med(2))
	}
	// 8KB transfers are slow-start dominated: well under 200 KB/s median.
	if med(0) > 250 {
		t.Errorf("8KB median %.1f KB/s implausibly fast", med(0))
	}
}

func TestFig11Shape(t *testing.T) {
	series, err := RunFig11(ScaledFig11(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series: %d", len(series))
	}
	p90 := func(i int) float64 { return cdfAtP(series[i].CDF, 0.90) }
	// Adding the second replica improves tail latency substantially; the
	// third is marginal by comparison.
	if p90(1) > p90(0)*0.8 {
		t.Errorf("2nd replica: p90 %.3f -> %.3f, want big improvement", p90(0), p90(1))
	}
	gain2 := p90(0) - p90(1)
	gain3 := p90(1) - p90(2)
	if gain3 > gain2 {
		t.Errorf("3rd replica gain (%.3f) exceeds 2nd's (%.3f)", gain3, gain2)
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := RunFig12(ScaledFig12(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 8 {
		t.Fatalf("only %d samples", len(res.Rows))
	}
	cfg := ScaledFig12(0.5)
	var preEnd, perturbMax, final Fig12Row
	for _, r := range res.Rows {
		switch {
		case r.T <= cfg.PerturbFrom.Seconds():
			preEnd = r
		case r.T <= cfg.PerturbTo.Seconds():
			if r.MaxDelay > perturbMax.MaxDelay {
				perturbMax = r
			}
		}
		final = r
	}
	// The overlay converges to reasonable cost before perturbation.
	if preEnd.CostRatio <= 0 || preEnd.CostRatio > 3.0 {
		t.Errorf("pre-perturbation cost ratio %.2f", preEnd.CostRatio)
	}
	// Perturbation raises worst-case delay.
	if perturbMax.MaxDelay <= preEnd.MaxDelay {
		t.Errorf("perturbation did not raise delay: %.3f vs %.3f",
			perturbMax.MaxDelay, preEnd.MaxDelay)
	}
	// After conditions subside the overlay keeps delay at/below target.
	if final.MaxDelay > cfg.TargetDelay*1.2 {
		t.Errorf("final max delay %.3f above target %.1f", final.MaxDelay, cfg.TargetDelay)
	}
	if res.SPTDelay <= 0 || res.MSTCost <= 0 {
		t.Errorf("references: SPT=%v MST=%v", res.SPTDelay, res.MSTCost)
	}
}

func TestAccuracyBounds(t *testing.T) {
	rows, err := RunAccuracy(ScaledAccuracy(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	for _, r := range rows {
		if r.Packets == 0 {
			t.Fatalf("no packets delivered: %+v", r)
		}
		if !r.Within {
			t.Errorf("debt=%v: max lag %.1f µs exceeds bound %.0f µs", r.Debt, r.MaxLagUs, r.BoundUs)
		}
	}
	// Debt handling must tighten the observed worst case.
	if rows[1].MaxLagUs > rows[0].MaxLagUs {
		t.Errorf("debt handling worsened lag: %.1f vs %.1f", rows[1].MaxLagUs, rows[0].MaxLagUs)
	}
}
