package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"modelnet"
	"modelnet/internal/netstack"
	"modelnet/internal/stats"
	"modelnet/internal/traffic"
)

// Fig5 reproduces Figure 5 (§4.1): the effect of distillation on the
// bandwidth distribution of 200 TCP flows crossing a ring topology — 20
// routers at 20 Mb/s, 20 VNs each behind 2 Mb/s access links. The paper
// compares hop-by-hop emulation (matches an ns-2 simulation of the same
// ring), last-mile distillation (contention modeled only on shared
// receivers), end-to-end (everyone gets their full 2 Mb/s), and an ns-2
// reference with an over-provisioned 80 Mb/s ring (which last-mile
// approximates).

// Fig5Config parameterizes the experiment.
type Fig5Config struct {
	Routers      int
	VNsPerRouter int
	RingMbps     float64
	AccessMbps   float64
	Duration     modelnet.Duration
	Seed         int64
}

// DefaultFig5 is the paper's ring.
func DefaultFig5() Fig5Config {
	return Fig5Config{
		Routers:      20,
		VNsPerRouter: 20,
		RingMbps:     20,
		AccessMbps:   2,
		Duration:     modelnet.Seconds(20),
		Seed:         3,
	}
}

// ScaledFig5 shrinks the ring for quick runs.
func ScaledFig5(scale float64) Fig5Config {
	cfg := DefaultFig5()
	if scale < 1 {
		cfg.Routers = 10
		cfg.VNsPerRouter = 10
		cfg.RingMbps = 10 // keep the ring under-provisioned
		cfg.Duration = modelnet.Seconds(10)
	}
	return cfg
}

// Fig5Series is one curve: a named bandwidth CDF in Kbit/s.
type Fig5Series struct {
	Name string
	CDF  []stats.CDFPoint
	Mean float64
}

// RunFig5 runs all five configurations and returns their CDFs.
func RunFig5(cfg Fig5Config) ([]Fig5Series, error) {
	type variant struct {
		name     string
		spec     modelnet.DistillSpec
		profile  modelnet.Profile
		ringMbps float64
	}
	variants := []variant{
		{"hop-by-hop", modelnet.DistillSpec{Mode: modelnet.HopByHop}, modelnet.DefaultProfile(), cfg.RingMbps},
		{"ns2 hop-by-hop " + mbpsLabel(cfg.RingMbps), modelnet.DistillSpec{Mode: modelnet.HopByHop}, modelnet.IdealProfile(), cfg.RingMbps},
		{"ns2 hop-by-hop " + mbpsLabel(cfg.RingMbps*4), modelnet.DistillSpec{Mode: modelnet.HopByHop}, modelnet.IdealProfile(), cfg.RingMbps * 4},
		{"last-mile", modelnet.DistillSpec{Mode: modelnet.WalkIn, WalkIn: 1}, modelnet.DefaultProfile(), cfg.RingMbps},
		{"end-to-end", modelnet.DistillSpec{Mode: modelnet.EndToEnd}, modelnet.DefaultProfile(), cfg.RingMbps},
	}
	var out []Fig5Series
	for _, v := range variants {
		sample, err := runFig5Variant(cfg, v.spec, v.profile, v.ringMbps)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig5Series{Name: v.name, CDF: sample.CDFAt(20), Mean: sample.Mean()})
	}
	return out, nil
}

func mbpsLabel(m float64) string {
	return fmt.Sprintf("%gMb ring", m)
}

func runFig5Variant(cfg Fig5Config, spec modelnet.DistillSpec, prof modelnet.Profile, ringMbps float64) (*stats.Sample, error) {
	ring := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(ringMbps), LatencySec: modelnet.Ms(5), QueuePkts: 30}
	access := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(cfg.AccessMbps), LatencySec: modelnet.Ms(1), QueuePkts: 20}
	g := modelnet.Ring(cfg.Routers, cfg.VNsPerRouter, ring, access)
	em, err := modelnet.Run(g, modelnet.Options{Distill: spec, Profile: &prof, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	nVN := em.NumVNs()
	half := nVN / 2
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Generators are the first half (in VN order), receivers the second;
	// each generator streams to a random receiver, as in the paper.
	var sinks []*traffic.Sink
	for r := 0; r < half; r++ {
		h := em.NewHost(modelnet.VN(half + r))
		s, err := traffic.NewSink(h, 80)
		if err != nil {
			return nil, err
		}
		sinks = append(sinks, s)
	}
	for gidx := 0; gidx < half; gidx++ {
		src := em.NewHost(modelnet.VN(gidx))
		dst := modelnet.VN(half + rng.Intn(half))
		start := modelnet.Time(int64(gidx) * int64(500*vtimeMillisecond) / int64(half))
		em.Sched.At(start, func() {
			traffic.StartBulk(src, netstack.Endpoint{VN: dst, Port: 80}, traffic.Unbounded)
		})
	}
	em.RunFor(cfg.Duration)
	// Per-flow achieved bandwidth in Kbit/s.
	sample := &stats.Sample{}
	for _, s := range sinks {
		for _, f := range s.Flows {
			sample.Add(f.Throughput() / 1e3)
		}
	}
	return sample, nil
}

// PrintFig5 renders the CDF series.
func PrintFig5(w io.Writer, series []Fig5Series) {
	fprintf(w, "Figure 5: flow bandwidth CDFs under distillation (Kbit/s)\n")
	for _, s := range series {
		fprintf(w, "%-28s mean=%8.1f  p10=%8.1f p50=%8.1f p90=%8.1f\n",
			s.Name, s.Mean, cdfAtP(s.CDF, 0.10), cdfAtP(s.CDF, 0.50), cdfAtP(s.CDF, 0.90))
	}
}

func cdfAtP(cdf []stats.CDFPoint, p float64) float64 {
	for _, pt := range cdf {
		if pt.P >= p {
			return pt.X
		}
	}
	if len(cdf) == 0 {
		return 0
	}
	return cdf[len(cdf)-1].X
}
