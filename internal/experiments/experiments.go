// Package experiments contains one driver per table and figure in the
// paper's evaluation (§3–§5). Each driver builds its workload on the public
// modelnet façade, runs it in virtual time, and returns the same rows or
// series the paper reports; cmd/mnbench prints them at full scale and the
// root bench_test.go regenerates them under `go test -bench`.
package experiments

import (
	"fmt"
	"io"

	"modelnet/internal/vtime"
)

// vtimeMillisecond avoids importing vtime in every driver just for the
// staggering arithmetic.
const vtimeMillisecond = vtime.Millisecond

// Row printing helpers shared by the drivers.

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// scaleInt scales a full-size count down, keeping at least lo.
func scaleInt(full int, scale float64, lo int) int {
	if scale <= 0 || scale >= 1 {
		return full
	}
	n := int(float64(full) * scale)
	if n < lo {
		n = lo
	}
	return n
}
