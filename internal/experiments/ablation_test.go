package experiments

import "testing"

func TestRouteTableAblation(t *testing.T) {
	rows, err := RunRouteTableAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	matrix, hier, cache := rows[0], rows[1], rows[2]
	if hier.Entries*4 > matrix.Entries {
		t.Errorf("hierarchical %d entries vs matrix %d — too little saving", hier.Entries, matrix.Entries)
	}
	if cache.Entries > matrix.Entries/10 {
		t.Errorf("cache holds %d routes", cache.Entries)
	}
}

func TestPayloadCachingAblation(t *testing.T) {
	rows, err := RunPayloadCachingAblation(0.25)
	if err != nil {
		t.Fatal(err)
	}
	full, cached := rows[0], rows[1]
	if cached.TunnelMB >= full.TunnelMB/2 {
		t.Errorf("payload caching moved %v MB vs full %v MB — little saving", cached.TunnelMB, full.TunnelMB)
	}
	// With tunnel NIC load removed, throughput should not fall (usually
	// rises: the tunnel bytes no longer compete for the NIC).
	if cached.Kpps < full.Kpps*0.95 {
		t.Errorf("payload caching slowed the system: %v vs %v Kpps", cached.Kpps, full.Kpps)
	}
}

func TestFailoverAblation(t *testing.T) {
	rows, err := RunFailoverAblation()
	if err != nil {
		t.Fatal(err)
	}
	perfect, dv := rows[0], rows[1]
	// Perfect routing: only the in-flight packets are lost; outage is on
	// the order of the path latency. The DV module exposes a real
	// convergence transient, orders of magnitude longer.
	if perfect.OutageMs > 200 {
		t.Errorf("perfect routing outage %v ms implausibly long", perfect.OutageMs)
	}
	if dv.OutageMs < perfect.OutageMs*3 {
		t.Errorf("DV outage %v ms not clearly longer than perfect %v ms", dv.OutageMs, perfect.OutageMs)
	}
	if dv.OutageMs > 15000 {
		t.Errorf("DV never reconverged: outage %v ms", dv.OutageMs)
	}
	if dv.Lost <= perfect.Lost {
		t.Errorf("DV lost %d ≤ perfect %d", dv.Lost, perfect.Lost)
	}
}
