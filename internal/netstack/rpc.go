package netstack

import (
	"errors"

	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// This file provides a small UDP request/response RPC used by the
// distributed applications in the case studies (Chord lookups, CFS block
// fetches, ACDC probes, gnutella control traffic). Requests are retried on
// a timeout and matched to responses by ID.

// ErrRPCTimeout reports a call that exhausted its retries.
var ErrRPCTimeout = errors.New("netstack: rpc timeout")

// rpcFrame is the wire payload of one RPC packet.
type rpcFrame struct {
	ID     uint64
	IsResp bool
	Body   any
}

// RPCHandler serves one inbound request: it returns the response body and
// its payload size in bytes. Returning a nil body suppresses the response
// (the caller will time out), modeling a dead or overloaded peer.
type RPCHandler func(from Endpoint, body any, size int) (resp any, respSize int)

// RPCNode is one endpoint able to both serve and issue RPCs over a single
// UDP socket.
type RPCNode struct {
	sock    *UDPSocket
	sched   *vtime.Scheduler
	vn      pipes.VN
	handler RPCHandler
	nextID  uint64
	pending map[uint64]*rpcCall

	Calls, Timeouts, Served uint64
}

type rpcCall struct {
	n        *RPCNode
	id       uint64
	to       Endpoint
	size     int
	body     any
	tries    int
	maxTry   int
	timeout  vtime.Duration
	timer    *vtime.Timer
	done     func(resp any, err error)
	finished bool
}

// finish completes the call exactly once.
func (c *rpcCall) finish(resp any, err error) {
	if c.finished {
		return
	}
	c.finished = true
	c.timer.StopTimer()
	delete(c.n.pending, c.id)
	if c.done != nil {
		c.done(resp, err)
	}
}

// NewRPCNode binds an RPC endpoint on the host at port (0 = ephemeral).
func NewRPCNode(h *Host, port uint16, handler RPCHandler) (*RPCNode, error) {
	n := &RPCNode{
		sched:   h.sched,
		vn:      h.vn,
		handler: handler,
		pending: make(map[uint64]*rpcCall),
	}
	sock, err := h.OpenUDP(port, n.onDatagram)
	if err != nil {
		return nil, err
	}
	n.sock = sock
	return n, nil
}

// Addr returns the node's endpoint.
func (n *RPCNode) Addr() Endpoint { return n.sock.Addr() }

// Close unbinds the node and fails all pending calls.
func (n *RPCNode) Close() {
	n.sock.Close()
	for _, call := range n.pending {
		call.finish(nil, ErrRPCTimeout)
	}
}

// CallOpts tune an RPC call.
type CallOpts struct {
	Timeout vtime.Duration // per-try timeout (default 500 ms)
	Retries int            // additional attempts after the first (default 2)
}

// Call issues a request of the given payload size; done fires exactly once
// with the response body or an error.
func (n *RPCNode) Call(to Endpoint, body any, size int, opts CallOpts, done func(resp any, err error)) {
	if opts.Timeout <= 0 {
		opts.Timeout = 500 * vtime.Millisecond
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	n.nextID++
	n.Calls++
	// The retry timer resends only through this host's socket, so the
	// pending deadline carries this VN's owner claim for horizon pricing.
	call := &rpcCall{
		n: n, id: n.nextID, to: to, size: size, body: body,
		maxTry: opts.Retries + 1, timeout: opts.Timeout,
		timer: vtime.NewTaggedTimer(n.sched, int32(n.vn)), done: done,
	}
	n.pending[call.id] = call
	call.attempt()
}

func (c *rpcCall) attempt() {
	c.tries++
	// Arm the timer before sending: a loopback request can be answered
	// synchronously within SendTo.
	c.timer.Reset(c.timeout, func() {
		if c.finished {
			return
		}
		if c.tries < c.maxTry {
			c.attempt()
			return
		}
		c.n.Timeouts++
		c.finish(nil, ErrRPCTimeout)
	})
	c.n.sock.SendTo(c.to, c.size, &rpcFrame{ID: c.id, Body: c.body})
}

func (n *RPCNode) onDatagram(from Endpoint, dg *Datagram) {
	f, ok := dg.Obj.(*rpcFrame)
	if !ok {
		return
	}
	if f.IsResp {
		call, ok := n.pending[f.ID]
		if !ok {
			return // late duplicate
		}
		call.finish(f.Body, nil)
		return
	}
	if n.handler == nil {
		return
	}
	n.Served++
	resp, respSize := n.handler(from, f.Body, dg.Len)
	if resp == nil {
		return
	}
	n.sock.SendTo(from, respSize, &rpcFrame{ID: f.ID, IsResp: true, Body: resp})
}
