package netstack

import (
	"fmt"

	"modelnet/internal/pipes"
)

// Datagram is a UDP datagram. Obj optionally carries an application object
// by reference (the simulator-payload pattern); Data optionally carries
// real bytes. Len is the payload size on the wire either way.
type Datagram struct {
	SrcPort, DstPort uint16
	Len              int
	Data             []byte
	Obj              any
}

// WireSize returns the datagram's on-the-wire size.
func (d *Datagram) WireSize() int { return UDPHeader + d.Len }

func (d *Datagram) String() string {
	return fmt.Sprintf("[udp %d->%d len=%d]", d.SrcPort, d.DstPort, d.Len)
}

// UDPHandler receives inbound datagrams.
type UDPHandler func(from Endpoint, dg *Datagram)

// UDPSocket is a bound UDP port.
type UDPSocket struct {
	h       *Host
	port    uint16
	handler UDPHandler

	Sent, Rcvd uint64
}

// OpenUDP binds a UDP socket. port 0 picks an ephemeral port.
func (h *Host) OpenUDP(port uint16, handler UDPHandler) (*UDPSocket, error) {
	if port == 0 {
		port = h.ephemeralPort()
	}
	if _, dup := h.udpSocks[port]; dup {
		return nil, fmt.Errorf("netstack: vn%d udp port %d in use", h.vn, port)
	}
	s := &UDPSocket{h: h, port: port, handler: handler}
	h.udpSocks[port] = s
	return s, nil
}

// Port returns the bound port.
func (s *UDPSocket) Port() uint16 { return s.port }

// Addr returns the socket's endpoint.
func (s *UDPSocket) Addr() Endpoint { return Endpoint{s.h.vn, s.port} }

// SendTo transmits size payload bytes (plus UDP/IP headers) carrying obj by
// reference. Returns false when the packet was physically dropped at
// injection; emulated drops in pipes are silent, as in real UDP.
func (s *UDPSocket) SendTo(to Endpoint, size int, obj any) bool {
	return s.sendTo(to, size, nil, obj)
}

// SendBytes transmits real data bytes.
func (s *UDPSocket) SendBytes(to Endpoint, data []byte) bool {
	return s.sendTo(to, len(data), append([]byte(nil), data...), nil)
}

func (s *UDPSocket) sendTo(to Endpoint, size int, data []byte, obj any) bool {
	dg := &Datagram{SrcPort: s.port, DstPort: to.Port, Len: size, Data: data, Obj: obj}
	s.Sent++
	return s.h.send(to.VN, dg.WireSize(), dg)
}

// Close unbinds the socket.
func (s *UDPSocket) Close() { delete(s.h.udpSocks, s.port) }

// onDatagram dispatches an arriving datagram. Datagrams to unbound ports
// vanish (no ICMP modeled).
func (h *Host) onDatagram(src pipes.VN, dg *Datagram) {
	s, ok := h.udpSocks[dg.DstPort]
	if !ok {
		return
	}
	s.Rcvd++
	if s.handler != nil {
		s.handler(Endpoint{src, dg.SrcPort}, dg)
	}
}
