package netstack

// Message-marker delivery ordering under segment reordering: markers ride
// the segments that cover their final stream byte, so when segments arrive
// out of order (buffered in c.ooo) or re-arrive coalesced by a
// retransmission, the pendingMsgs machinery must still fire OnMsg exactly
// once per message, in stream order. These tests drive handleSegment
// directly through crafted segments, the receiver-side path a federated
// run exercises when tunneled segments cross a core boundary out of order.

import (
	"fmt"
	"testing"

	"modelnet/internal/emucore"
	"modelnet/internal/pipes"
)

// msgOrderConn establishes a client->server connection and returns the
// server-side conn, the client's port, and the OnMsg capture slice.
func msgOrderConn(t *testing.T) (*testNet, *Conn, *[]string) {
	t.Helper()
	tn := newStarNet(t, 2, 10, 5, 0, emucore.IdealProfile())
	var got []string
	var sconn *Conn
	_, err := tn.hosts[1].Listen(80, func(c *Conn) Handlers {
		sconn = c
		return Handlers{
			OnMsg: func(_ *Conn, obj any) { got = append(got, fmt.Sprint(obj)) },
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{})
	tn.sched.Run()
	if sconn == nil || sconn.state != stateEstablished {
		t.Fatal("connection not established")
	}
	if sconn.Remote.Port != cl.Local.Port {
		t.Fatalf("server tracks remote %v, client is %v", sconn.Remote, cl.Local)
	}
	return tn, sconn, &got
}

// seg crafts a data segment from the established client.
func seg(c *Conn, seq uint64, n int, msgs ...MsgMarker) *Segment {
	return &Segment{
		SrcPort: c.Remote.Port,
		DstPort: c.Local.Port,
		Seq:     seq,
		Len:     n,
		Msgs:    msgs,
	}
}

func assertMsgs(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("OnMsg fired %d times (%v), want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OnMsg order %v, want %v", got, want)
		}
	}
}

// TestMsgMarkersReorderedSegments delivers three marker-bearing segments
// in fully reversed order: the first two buffer out of order, the gap fill
// drains them, and OnMsg must fire in stream order regardless.
func TestMsgMarkersReorderedSegments(t *testing.T) {
	tn, c, got := msgOrderConn(t)
	_ = tn
	c.h.onSegment(pipes.VN(0), seg(c, 201, 100, MsgMarker{End: 301, Obj: "C"}))
	c.h.onSegment(pipes.VN(0), seg(c, 101, 100, MsgMarker{End: 201, Obj: "B"}))
	assertMsgs(t, *got) // nothing contiguous yet
	c.h.onSegment(pipes.VN(0), seg(c, 1, 100, MsgMarker{End: 101, Obj: "A"}))
	assertMsgs(t, *got, "A", "B", "C")
	if c.rcvNxt != 301 {
		t.Fatalf("rcvNxt = %d", c.rcvNxt)
	}
	if len(c.pendingMsgs) != 0 {
		t.Fatalf("%d markers still pending", len(c.pendingMsgs))
	}
}

// TestMsgMarkersCoalescedRetransmit buffers an out-of-order segment, then
// receives a retransmission that coalesces the whole range (markers
// repeated): each message must fire exactly once, in order — the duplicate
// marker from the buffered segment is deduplicated by its End offset when
// the out-of-order queue drains.
func TestMsgMarkersCoalescedRetransmit(t *testing.T) {
	_, c, got := msgOrderConn(t)
	c.h.onSegment(pipes.VN(0), seg(c, 101, 100, MsgMarker{End: 201, Obj: "B"}))
	assertMsgs(t, *got)
	c.h.onSegment(pipes.VN(0), seg(c, 1, 300,
		MsgMarker{End: 101, Obj: "A"}, MsgMarker{End: 201, Obj: "B"}, MsgMarker{End: 301, Obj: "C"}))
	assertMsgs(t, *got, "A", "B", "C")
	// The buffered copy of B was dropped, not re-delivered.
	if len(c.pendingMsgs) != 0 || len(c.ooo) != 0 {
		t.Fatalf("pending=%d ooo=%d after coalesce", len(c.pendingMsgs), len(c.ooo))
	}
}

// TestMsgMarkersDuplicateOldSegment re-delivers an already-consumed
// segment: its markers are behind rcvNxt and must not re-fire.
func TestMsgMarkersDuplicateOldSegment(t *testing.T) {
	_, c, got := msgOrderConn(t)
	first := seg(c, 1, 100, MsgMarker{End: 101, Obj: "A"})
	c.h.onSegment(pipes.VN(0), first)
	assertMsgs(t, *got, "A")
	c.h.onSegment(pipes.VN(0), seg(c, 1, 100, MsgMarker{End: 101, Obj: "A"}))
	assertMsgs(t, *got, "A") // no duplicate delivery
	if c.rcvNxt != 101 {
		t.Fatalf("rcvNxt = %d", c.rcvNxt)
	}
}
