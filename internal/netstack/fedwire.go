package netstack

// Federation codecs for the transport layer, registered next to the types
// so any binary that can run a netstack workload can also federate it
// (mirroring the app packages' fedwire files). Payloads travel by
// reference inside one process; crossing a core-process boundary
// (internal/fednet) turns them into these encodings.
//
// The registry is recursive (wire.Enc.Payload / wire.Dec.Payload): a
// Datagram's Obj, a Segment's MsgMarker objects, and an RPC frame's Body
// are application payloads encoded inline through the registry, each by
// its own codec. Decoders are strict — an encoding the encoder would not
// emit (flag bits, non-canonical booleans, length mismatches, unordered
// markers) errors instead of round-tripping differently — which is what
// keeps the codecs canonical under the wire package's fuzz invariants.

import (
	"fmt"

	"modelnet/internal/fednet/wire"
)

// segment flag bits.
const (
	segSYN = 1 << iota
	segACK
	segFIN
	segRST
)

func init() {
	wire.RegisterPayload(wire.PayloadDatagram, (*Datagram)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			dg := v.(*Datagram)
			e.U16(dg.SrcPort)
			e.U16(dg.DstPort)
			e.I32(int32(dg.Len))
			e.Blob(dg.Data)
			if err := e.Payload(dg.Obj); err != nil {
				return fmt.Errorf("datagram %d->%d: %w", dg.SrcPort, dg.DstPort, err)
			}
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			dg := &Datagram{
				SrcPort: d.U16(),
				DstPort: d.U16(),
				Len:     int(d.I32()),
			}
			if data := d.Blob(); len(data) > 0 {
				dg.Data = append([]byte(nil), data...)
			}
			obj, err := d.Payload()
			if err != nil {
				return nil, err
			}
			if dg.Len < 0 {
				return nil, fmt.Errorf("netstack: datagram with negative length %d", dg.Len)
			}
			dg.Obj = obj
			return dg, nil
		},
	})

	wire.RegisterPayload(wire.PayloadSegment, (*Segment)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			s := v.(*Segment)
			// Enforce at the sender what the strict decoder rejects, so a
			// malformed segment fails here — with connection context —
			// rather than at the remote worker's decoder.
			if s.Data != nil && len(s.Data) != s.Len {
				return fmt.Errorf("segment %v: carries %d data bytes but Len %d", s, len(s.Data), s.Len)
			}
			for i := 1; i < len(s.Msgs); i++ {
				if s.Msgs[i].End <= s.Msgs[i-1].End {
					return fmt.Errorf("segment %v: message markers out of order (%d after %d)", s, s.Msgs[i].End, s.Msgs[i-1].End)
				}
			}
			e.U16(s.SrcPort)
			e.U16(s.DstPort)
			e.U64(s.Seq)
			e.U64(s.Ack)
			e.I32(int32(s.Len))
			var fl uint8
			if s.SYN {
				fl |= segSYN
			}
			if s.HasACK {
				fl |= segACK
			}
			if s.FIN {
				fl |= segFIN
			}
			if s.RST {
				fl |= segRST
			}
			e.U8(fl)
			e.I32(int32(s.Window))
			if s.Data != nil {
				e.U8(1)
				e.Blob(s.Data)
			} else {
				e.U8(0)
			}
			e.U32(uint32(len(s.Msgs)))
			for _, m := range s.Msgs {
				e.U64(m.End)
				if err := e.Payload(m.Obj); err != nil {
					return fmt.Errorf("segment %v: message marker at stream offset %d: %w", s, m.End, err)
				}
			}
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			s := &Segment{
				SrcPort: d.U16(),
				DstPort: d.U16(),
				Seq:     d.U64(),
				Ack:     d.U64(),
				Len:     int(d.I32()),
			}
			fl := d.U8()
			if fl&^uint8(segSYN|segACK|segFIN|segRST) != 0 {
				return nil, fmt.Errorf("netstack: segment with unknown flag bits %#x", fl)
			}
			s.SYN = fl&segSYN != 0
			s.HasACK = fl&segACK != 0
			s.FIN = fl&segFIN != 0
			s.RST = fl&segRST != 0
			s.Window = int(d.I32())
			hasData, err := d.StrictBool()
			if err != nil {
				return nil, err
			}
			if hasData {
				b := d.Blob()
				s.Data = make([]byte, len(b))
				copy(s.Data, b)
			}
			n := d.Len(10) // u64 end + at least the u16 nil payload id
			for i := 0; i < n; i++ {
				end := d.U64()
				obj, err := d.Payload()
				if err != nil {
					return nil, err
				}
				if len(s.Msgs) > 0 && end <= s.Msgs[len(s.Msgs)-1].End {
					return nil, fmt.Errorf("netstack: segment markers out of order (%d after %d)", end, s.Msgs[len(s.Msgs)-1].End)
				}
				s.Msgs = append(s.Msgs, MsgMarker{End: end, Obj: obj})
			}
			if d.Err() != nil {
				return nil, d.Err()
			}
			if s.Len < 0 || s.Window < 0 {
				return nil, fmt.Errorf("netstack: segment with negative length %d or window %d", s.Len, s.Window)
			}
			if hasData && len(s.Data) != s.Len {
				return nil, fmt.Errorf("netstack: segment carries %d data bytes but Len %d", len(s.Data), s.Len)
			}
			return s, nil
		},
	})

	wire.RegisterPayload(wire.PayloadRPC, (*rpcFrame)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			f := v.(*rpcFrame)
			e.U64(f.ID)
			e.Bool(f.IsResp)
			if err := e.Payload(f.Body); err != nil {
				return fmt.Errorf("rpc frame %d: %w", f.ID, err)
			}
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			f := &rpcFrame{ID: d.U64()}
			isResp, err := d.StrictBool()
			if err != nil {
				return nil, err
			}
			f.IsResp = isResp
			if f.Body, err = d.Payload(); err != nil {
				return nil, err
			}
			return f, nil
		},
	})
}
