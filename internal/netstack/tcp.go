package netstack

import (
	"errors"
	"fmt"
	"sort"

	"modelnet/internal/vtime"
)

// Segment is a TCP segment. Stream offsets are 64-bit and never wrap
// (sequence arithmetic is exact; 32-bit wraparound is not modeled). The SYN
// occupies offset 0 and data starts at offset 1; a FIN occupies one offset
// after the last data byte, as in real TCP.
type Segment struct {
	SrcPort, DstPort      uint16
	Seq                   uint64 // stream offset of first payload byte
	Ack                   uint64 // next expected peer offset (valid when HasACK)
	Len                   int    // payload bytes
	SYN, HasACK, FIN, RST bool
	Window                int // advertised receive window, bytes

	// Data optionally carries real payload bytes (nil = synthetic bytes).
	Data []byte
	// Msgs marks application objects whose final stream byte falls inside
	// this segment; the receiver delivers each object via OnMsg when the
	// stream is contiguous through End.
	Msgs []MsgMarker
}

// MsgMarker binds an application object to the stream offset just past its
// final byte.
type MsgMarker struct {
	End uint64
	Obj any
}

// WireSize returns the segment's on-the-wire size.
func (s *Segment) WireSize() int { return TCPHeader + s.Len }

func (s *Segment) String() string {
	fl := ""
	if s.SYN {
		fl += "S"
	}
	if s.HasACK {
		fl += "A"
	}
	if s.FIN {
		fl += "F"
	}
	if s.RST {
		fl += "R"
	}
	return fmt.Sprintf("[%d->%d seq=%d ack=%d len=%d %s]", s.SrcPort, s.DstPort, s.Seq, s.Ack, s.Len, fl)
}

// Handlers are the application callbacks for a connection. Any field may be
// nil. OnData reports n in-order bytes (data is non-nil only when the peer
// wrote real bytes). OnClose fires once, when the peer's FIN is consumed,
// the connection is reset (err != nil), or it is aborted locally.
type Handlers struct {
	OnConnect func(c *Conn)
	OnData    func(c *Conn, n int, data []byte)
	OnMsg     func(c *Conn, obj any)
	OnClose   func(c *Conn, err error)
}

// ErrReset reports a connection terminated by RST.
var ErrReset = errors.New("netstack: connection reset")

// ErrTimeout reports a connection that gave up retransmitting.
var ErrTimeout = errors.New("netstack: connection timed out")

type tcpState int

const (
	stateSynSent tcpState = iota
	stateSynRcvd
	stateEstablished
	stateClosed
)

// TCP tuning constants; era-appropriate (Linux 2.4-ish) values.
const (
	DefaultWindow  = 64 << 10
	initialCwndMSS = 2
	minRTO         = 200 * vtime.Millisecond
	maxRTO         = 60 * vtime.Second
	initialRTO     = 1 * vtime.Second
	delAckTimeout  = 200 * vtime.Millisecond
	delAckSegs     = 2
	maxSynRetries  = 6
	maxRetries     = 12
)

// chunk is a contiguous range of queued send-stream bytes.
type chunk struct {
	start uint64
	n     int
	data  []byte
	obj   any // delivered to the peer's OnMsg when its last byte arrives
}

// oooSeg is an out-of-order received segment awaiting the gap fill.
type oooSeg struct {
	seq  uint64
	n    int
	data []byte
	msgs []MsgMarker
}

// Conn is one TCP connection (NewReno congestion control).
type Conn struct {
	h        *Host
	Local    Endpoint
	Remote   Endpoint
	handlers Handlers
	state    tcpState

	// Send state.
	sndUna     uint64 // oldest unacknowledged offset
	sndNxt     uint64 // next offset to send
	sndBufEnd  uint64 // offset past the last queued byte (starts at 1)
	finOff     uint64 // offset of our FIN; 0 = not closing
	finAcked   bool
	chunks     []chunk
	cwnd       float64 // congestion window, bytes
	ssthresh   float64
	rwnd       int // peer's advertised window
	dupAcks    int
	inRecovery bool
	recover    uint64 // sndNxt at loss detection (NewReno)

	// RTT estimation (RFC 6298) + Karn's algorithm.
	srtt, rttvar vtime.Duration
	rto          vtime.Duration
	rttActive    bool
	rttSeq       uint64
	rttAt        vtime.Time
	rtxTimer     *vtime.Timer
	retries      int

	// Receive state.
	rcvNxt      uint64
	ooo         []oooSeg
	pendingMsgs []MsgMarker // sorted by End
	peerFinOff  uint64      // offset of peer FIN; 0 = none seen
	peerFinDone bool
	ackPending  int
	ackTimer    *vtime.Timer
	window      int

	// Stats.
	Retransmits    uint64
	FastRecoveries uint64
	Timeouts       uint64
	BytesSent      uint64 // acked bytes
	BytesRcvd      uint64 // in-order delivered bytes
	Established    vtime.Time
	closed         bool // OnClose delivered
	removed        bool
}

// Listener accepts inbound connections on a port.
type Listener struct {
	h      *Host
	port   uint16
	accept func(*Conn) Handlers
}

// Listen starts accepting connections on port. The accept callback runs for
// each inbound SYN and returns the new connection's handlers.
func (h *Host) Listen(port uint16, accept func(*Conn) Handlers) (*Listener, error) {
	if _, dup := h.listeners[port]; dup {
		return nil, fmt.Errorf("netstack: vn%d port %d already listening", h.vn, port)
	}
	l := &Listener{h: h, port: port, accept: accept}
	h.listeners[port] = l
	return l, nil
}

// Close stops accepting new connections; established ones are unaffected.
func (l *Listener) Close() { delete(l.h.listeners, l.port) }

// Dial opens a connection to remote. The returned Conn is usable for
// writing immediately (bytes flow once the handshake completes);
// hs.OnConnect fires on establishment.
func (h *Host) Dial(remote Endpoint, hs Handlers) *Conn {
	c := h.newConn(h.ephemeralPort(), remote, hs)
	c.state = stateSynSent
	c.sendSYN()
	return c
}

func (h *Host) newConn(localPort uint16, remote Endpoint, hs Handlers) *Conn {
	c := &Conn{
		h:         h,
		Local:     Endpoint{h.vn, localPort},
		Remote:    remote,
		handlers:  hs,
		sndBufEnd: 1,
		cwnd:      initialCwndMSS * MSS,
		ssthresh:  DefaultWindow,
		rwnd:      DefaultWindow,
		rto:       initialRTO,
		window:    DefaultWindow,
	}
	// Both timers' callbacks transmit only through this host, so their
	// pending deadlines can be priced with this VN's own crossing distance
	// by the parallel runtime's horizon scan.
	c.rtxTimer = vtime.NewTaggedTimer(h.sched, int32(h.vn))
	c.ackTimer = vtime.NewTaggedTimer(h.sched, int32(h.vn))
	h.conns[connKey{localPort, remote}] = c
	return c
}

// SetWindow overrides the advertised receive window (and the initial
// assumption about the peer's); call before any data flows.
func (c *Conn) SetWindow(w int) {
	if w > 0 {
		c.window = w
	}
}

// Write queues real bytes on the send stream.
func (c *Conn) Write(data []byte) {
	if c.finOff != 0 || c.removed {
		return
	}
	cp := append([]byte(nil), data...)
	c.chunks = append(c.chunks, chunk{start: c.sndBufEnd, n: len(cp), data: cp})
	c.sndBufEnd += uint64(len(cp))
	c.trySend()
}

// WriteCount queues n synthetic bytes (bulk transfer without materializing
// payloads).
func (c *Conn) WriteCount(n int) {
	if n <= 0 || c.finOff != 0 || c.removed {
		return
	}
	c.chunks = append(c.chunks, chunk{start: c.sndBufEnd, n: n})
	c.sndBufEnd += uint64(n)
	c.trySend()
}

// WriteMsg queues an application object occupying size stream bytes; the
// peer's OnMsg fires when the whole message has arrived in order.
func (c *Conn) WriteMsg(obj any, size int) {
	if size <= 0 || c.finOff != 0 || c.removed {
		return
	}
	c.chunks = append(c.chunks, chunk{start: c.sndBufEnd, n: size, obj: obj})
	c.sndBufEnd += uint64(size)
	c.trySend()
}

// Close sends a FIN after all queued data; further writes are discarded.
func (c *Conn) Close() {
	if c.finOff != 0 || c.removed {
		return
	}
	c.finOff = c.sndBufEnd
	c.trySend()
}

// Abort resets the connection immediately.
func (c *Conn) Abort() {
	if c.removed {
		return
	}
	c.transmit(&Segment{Seq: c.sndNxt, RST: true, HasACK: true, Ack: c.rcvNxt})
	c.teardown(nil)
}

// Outstanding reports unacknowledged bytes in flight.
func (c *Conn) Outstanding() int { return int(c.sndNxt - c.sndUna) }

// Cwnd reports the current congestion window in bytes.
func (c *Conn) Cwnd() int { return int(c.cwnd) }

// SRTT reports the smoothed RTT estimate (0 before the first sample).
func (c *Conn) SRTT() vtime.Duration { return c.srtt }

// Unsent reports queued bytes not yet transmitted.
func (c *Conn) Unsent() int {
	end := c.sndBufEnd
	if c.sndNxt >= end {
		return 0
	}
	if c.sndNxt < 1 {
		return int(end - 1)
	}
	return int(end - c.sndNxt)
}

// ---- send path ----

func (c *Conn) sendSYN() {
	seg := &Segment{Seq: 0, SYN: true}
	if c.state == stateSynRcvd {
		seg.HasACK = true
		seg.Ack = c.rcvNxt
	}
	c.sndNxt = 1
	c.transmit(seg)
	c.armRtx()
}

// trySend transmits as much queued data as the congestion and peer windows
// allow, then a FIN if due.
func (c *Conn) trySend() {
	if c.removed || c.state != stateEstablished && c.state != stateSynRcvd {
		return
	}
	if c.state == stateSynRcvd {
		return // wait for the handshake ACK
	}
	dataEnd := c.sndBufEnd
	for {
		wnd := int(c.cwnd)
		if c.rwnd < wnd {
			wnd = c.rwnd
		}
		inFlight := int(c.sndNxt - c.sndUna)
		if c.sndNxt < dataEnd {
			n := int(dataEnd - c.sndNxt)
			if n > MSS {
				n = MSS
			}
			if inFlight+n > wnd {
				// Allow one full segment when nothing is in flight so a
				// tiny window can't deadlock the stream.
				if inFlight > 0 {
					return
				}
			}
			c.sendData(c.sndNxt, n, false)
			c.sndNxt += uint64(n)
			c.armRtx()
			continue
		}
		if c.finOff != 0 && c.sndNxt == c.finOff {
			c.transmit(&Segment{Seq: c.finOff, FIN: true, HasACK: true, Ack: c.rcvNxt, Len: 0})
			c.sndNxt = c.finOff + 1
			c.armRtx()
		}
		return
	}
}

// sendData transmits the stream range [off, off+n); rtx marks retransmits.
func (c *Conn) sendData(off uint64, n int, rtx bool) {
	data, msgs := c.gather(off, n)
	seg := &Segment{
		Seq:    off,
		Len:    n,
		HasACK: true,
		Ack:    c.rcvNxt,
		Data:   data,
		Msgs:   msgs,
	}
	if rtx {
		c.Retransmits++
	} else if !c.rttActive {
		// One RTT sample in flight at a time (Karn's algorithm).
		c.rttActive = true
		c.rttSeq = off + uint64(n)
		c.rttAt = c.h.sched.Now()
	}
	c.transmit(seg)
}

// gather materializes data bytes and message markers for a stream range.
func (c *Conn) gather(off uint64, n int) ([]byte, []MsgMarker) {
	var buf []byte
	var msgs []MsgMarker
	end := off + uint64(n)
	for i := range c.chunks {
		ch := &c.chunks[i]
		chEnd := ch.start + uint64(ch.n)
		if chEnd <= off {
			continue
		}
		if ch.start >= end {
			break
		}
		if ch.data != nil {
			if buf == nil {
				buf = make([]byte, n)
			}
			lo := ch.start
			if lo < off {
				lo = off
			}
			hi := chEnd
			if hi > end {
				hi = end
			}
			copy(buf[lo-off:hi-off], ch.data[lo-ch.start:hi-ch.start])
		}
		if ch.obj != nil && chEnd > off && chEnd <= end {
			msgs = append(msgs, MsgMarker{End: chEnd, Obj: ch.obj})
		}
	}
	return buf, msgs
}

// transmit stamps ports/window and injects the segment.
func (c *Conn) transmit(seg *Segment) {
	seg.SrcPort = c.Local.Port
	seg.DstPort = c.Remote.Port
	seg.Window = c.window
	c.h.send(c.Remote.VN, seg.WireSize(), seg)
}

func (c *Conn) ackNow() {
	c.ackTimer.StopTimer()
	c.ackPending = 0
	c.transmit(&Segment{Seq: c.sndNxt, HasACK: true, Ack: c.rcvNxt})
}

func (c *Conn) scheduleAck() {
	c.ackPending++
	if c.ackPending >= delAckSegs {
		c.ackNow()
		return
	}
	if !c.ackTimer.Armed() {
		c.ackTimer.Reset(delAckTimeout, func() { c.ackNow() })
	}
}

// ---- teardown ----

// teardown finalizes the connection: err != nil reports an abnormal close.
func (c *Conn) teardown(err error) {
	if c.removed {
		return
	}
	c.removed = true
	c.state = stateClosed
	c.rtxTimer.StopTimer()
	c.ackTimer.StopTimer()
	delete(c.h.conns, connKey{c.Local.Port, c.Remote})
	c.fireClose(err)
}

func (c *Conn) fireClose(err error) {
	if c.closed {
		return
	}
	c.closed = true
	if c.handlers.OnClose != nil {
		c.handlers.OnClose(c, err)
	}
}

// maybeFinish removes fully-closed connections (both FINs consumed);
// TIME_WAIT is not modeled.
func (c *Conn) maybeFinish() {
	if c.finOff != 0 && c.finAcked && c.peerFinDone {
		c.teardown(nil)
	}
}

// insertPendingMsg adds a marker (deduplicated by End, kept sorted).
func (c *Conn) insertPendingMsg(m MsgMarker) {
	i := sort.Search(len(c.pendingMsgs), func(i int) bool { return c.pendingMsgs[i].End >= m.End })
	if i < len(c.pendingMsgs) && c.pendingMsgs[i].End == m.End {
		return
	}
	c.pendingMsgs = append(c.pendingMsgs, MsgMarker{})
	copy(c.pendingMsgs[i+1:], c.pendingMsgs[i:])
	c.pendingMsgs[i] = m
}

// deliverMsgs fires OnMsg for every pending object now fully received.
func (c *Conn) deliverMsgs() {
	n := 0
	for n < len(c.pendingMsgs) && c.pendingMsgs[n].End <= c.rcvNxt {
		n++
	}
	if n == 0 {
		return
	}
	ready := c.pendingMsgs[:n]
	c.pendingMsgs = append([]MsgMarker(nil), c.pendingMsgs[n:]...)
	if c.handlers.OnMsg != nil {
		for _, m := range ready {
			c.handlers.OnMsg(c, m.Obj)
		}
	}
}
