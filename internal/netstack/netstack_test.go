package netstack

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// testNet is a fixture: n hosts on a star topology.
type testNet struct {
	sched *vtime.Scheduler
	emu   *emucore.Emulator
	hosts []*Host
}

// emuAdapter adapts emucore's DeliverFunc to the netstack Registrar.
type emuAdapter struct{ *emucore.Emulator }

func (a emuAdapter) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	a.Emulator.RegisterVN(vn, emucore.DeliverFunc(fn))
}

func newStarNet(t *testing.T, n int, mbps, ms, loss float64, prof emucore.Profile) *testNet {
	t.Helper()
	g := topology.Star(n, topology.LinkAttrs{
		BandwidthBps: mbps * 1e6, LatencySec: ms * 1e-3, LossRate: loss, QueuePkts: 50,
	})
	b, err := bind.Bind(g, bind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, g, b, nil, prof, 42)
	if err != nil {
		t.Fatal(err)
	}
	tn := &testNet{sched: sched, emu: emu}
	for i := 0; i < n; i++ {
		tn.hosts = append(tn.hosts, NewHost(pipes.VN(i), sched, emu, emuAdapter{emu}))
	}
	return tn
}

func TestUDPRoundTrip(t *testing.T) {
	tn := newStarNet(t, 2, 10, 5, 0, emucore.IdealProfile())
	var gotAt vtime.Time
	var gotObj any
	_, err := tn.hosts[1].OpenUDP(7, func(from Endpoint, dg *Datagram) {
		gotAt = tn.sched.Now()
		gotObj = dg.Obj
		if from.VN != 0 {
			t.Errorf("from = %v", from)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := tn.hosts[0].OpenUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.SendTo(Endpoint{1, 7}, 100, "hello")
	tn.sched.Run()
	if gotObj != "hello" {
		t.Fatalf("obj = %v", gotObj)
	}
	// Two 10 Mb/s, 5 ms hops; 128 B on wire (100+28): tx = 102.4 µs per hop.
	want := vtime.Time(2 * (5*vtime.Millisecond + 102400))
	if gotAt != want {
		t.Errorf("arrival %v, want %v", gotAt, want)
	}
}

func TestUDPUnboundPortSilentlyDropped(t *testing.T) {
	tn := newStarNet(t, 2, 10, 1, 0, emucore.IdealProfile())
	s, _ := tn.hosts[0].OpenUDP(0, nil)
	s.SendTo(Endpoint{1, 99}, 50, nil)
	tn.sched.Run() // must not panic or leak events
	if tn.hosts[1].PktsIn != 1 {
		t.Errorf("packet not delivered to host")
	}
}

func TestTCPConnectAndClose(t *testing.T) {
	tn := newStarNet(t, 2, 10, 5, 0, emucore.IdealProfile())
	var serverConn *Conn
	var serverConnected, clientConnected bool
	var serverClosed, clientClosed bool
	_, err := tn.hosts[1].Listen(80, func(c *Conn) Handlers {
		serverConn = c
		return Handlers{
			OnConnect: func(*Conn) { serverConnected = true },
			OnClose: func(c *Conn, err error) {
				serverClosed = true
				if err != nil {
					t.Errorf("server close err: %v", err)
				}
				c.Close() // close our side in response
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{
		OnConnect: func(c *Conn) {
			clientConnected = true
			c.Close()
		},
		OnClose: func(*Conn, error) { clientClosed = true },
	})
	tn.sched.Run()
	if !clientConnected || !serverConnected {
		t.Fatalf("connected: client=%v server=%v", clientConnected, serverConnected)
	}
	if !serverClosed || !clientClosed {
		t.Fatalf("closed: client=%v server=%v", clientClosed, serverClosed)
	}
	if len(tn.hosts[0].conns) != 0 || len(tn.hosts[1].conns) != 0 {
		t.Errorf("conns leaked: %d/%d", len(tn.hosts[0].conns), len(tn.hosts[1].conns))
	}
	_ = cl
	_ = serverConn
}

func TestTCPDataIntegrity(t *testing.T) {
	tn := newStarNet(t, 2, 10, 5, 0, emucore.IdealProfile())
	payload := make([]byte, 10000)
	rng := rand.New(rand.NewSource(7))
	rng.Read(payload)
	var rcvd []byte
	tn.hosts[1].Listen(80, func(c *Conn) Handlers {
		return Handlers{
			OnData: func(c *Conn, n int, data []byte) {
				if data == nil {
					t.Fatal("real bytes arrived as synthetic")
				}
				rcvd = append(rcvd, data...)
			},
		}
	})
	c := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{})
	c.Write(payload)
	c.Close()
	tn.sched.Run()
	if !bytes.Equal(rcvd, payload) {
		t.Fatalf("received %d bytes, corrupt or short (want %d)", len(rcvd), len(payload))
	}
}

func TestTCPBulkThroughput(t *testing.T) {
	// 10 Mb/s bottleneck, 10 ms RTT: a long transfer should reach most of
	// link rate (data efficiency 1460/1500 ≈ 0.973 => ~9.7 Mb/s cap).
	tn := newStarNet(t, 2, 10, 2.5, 0, emucore.IdealProfile())
	var done vtime.Time
	const total = 2_000_000 // 2 MB
	got := 0
	tn.hosts[1].Listen(80, func(c *Conn) Handlers {
		return Handlers{OnData: func(c *Conn, n int, data []byte) {
			got += n
			if got >= total {
				done = tn.sched.Now()
			}
		}}
	})
	c := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{})
	c.WriteCount(total)
	c.Close()
	tn.sched.RunUntil(vtime.Time(60 * vtime.Second))
	if got < total {
		t.Fatalf("only %d of %d bytes arrived", got, total)
	}
	thr := float64(total*8) / done.Seconds() / 1e6
	if thr < 7.5 || thr > 10 {
		t.Errorf("throughput %.2f Mb/s, want ≈9.7", thr)
	}
	if c.Retransmits > 5 {
		t.Errorf("lossless path had %d retransmits", c.Retransmits)
	}
}

func TestTCPSlowStartGrowth(t *testing.T) {
	// On an uncongested fat path the congestion window should roughly
	// double each RTT during slow start.
	tn := newStarNet(t, 2, 1000, 10, 0, emucore.IdealProfile())
	tn.hosts[1].Listen(80, func(c *Conn) Handlers { return Handlers{} })
	c := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{})
	c.SetWindow(1 << 20)
	c.WriteCount(5 << 20)
	var samples []int
	for i := 1; i <= 4; i++ {
		i := i
		// RTT ≈ 40 ms (two 10 ms hops each way); sample at RTT multiples.
		tn.sched.At(vtime.Time(i)*vtime.Time(41*vtime.Millisecond), func() {
			samples = append(samples, c.Cwnd())
		})
	}
	tn.sched.RunUntil(vtime.Time(200 * vtime.Millisecond))
	// With delayed ACKs (one per two segments) slow start grows ≈1.5× per
	// RTT rather than the textbook 2×.
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1]*5/4 {
			t.Errorf("slow start not growing: cwnd samples %v", samples)
			break
		}
	}
}

func TestTCPRecoversFromLoss(t *testing.T) {
	tn := newStarNet(t, 2, 10, 5, 0.02, emucore.IdealProfile())
	const total = 500_000
	got := 0
	tn.hosts[1].Listen(80, func(c *Conn) Handlers {
		return Handlers{OnData: func(c *Conn, n int, data []byte) { got += n }}
	})
	c := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{})
	c.WriteCount(total)
	c.Close()
	tn.sched.RunUntil(vtime.Time(120 * vtime.Second))
	if got != total {
		t.Fatalf("delivered %d of %d under 2%% loss", got, total)
	}
	if c.Retransmits == 0 {
		t.Error("no retransmits under loss")
	}
	if c.FastRecoveries == 0 {
		t.Error("no fast recoveries under loss — dupack path dead?")
	}
}

func TestTCPFairnessTwoFlows(t *testing.T) {
	// Two flows share one 10 Mb/s bottleneck to the same receiver: each
	// should get roughly half.
	tn := newStarNet(t, 3, 10, 2, 0, emucore.IdealProfile())
	rcv := map[int]int{}
	tn.hosts[2].Listen(80, func(c *Conn) Handlers {
		id := int(c.Remote.VN)
		return Handlers{OnData: func(c *Conn, n int, data []byte) { rcv[id] += n }}
	})
	for i := 0; i < 2; i++ {
		c := tn.hosts[i].Dial(Endpoint{2, 80}, Handlers{})
		c.WriteCount(100 << 20) // effectively unbounded
	}
	tn.sched.RunUntil(vtime.Time(30 * vtime.Second))
	a, b := float64(rcv[0]), float64(rcv[1])
	if a == 0 || b == 0 {
		t.Fatalf("starvation: %v", rcv)
	}
	ratio := a / b
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > 2.5 {
		t.Errorf("unfair split %.0f vs %.0f (ratio %.2f)", a, b, ratio)
	}
}

func TestTCPDelayedAcks(t *testing.T) {
	// Paper §3.2 accounting: 1 ACK per two 1500-byte data packets. Count
	// receiver->sender packets against data packets.
	tn := newStarNet(t, 2, 100, 1, 0, emucore.IdealProfile())
	tn.hosts[1].Listen(80, func(c *Conn) Handlers { return Handlers{} })
	c := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{})
	c.WriteCount(1_000_000)
	tn.sched.RunUntil(vtime.Time(5 * vtime.Second))
	dataPkts := tn.hosts[0].PktsOut
	acks := tn.hosts[1].PktsOut
	if dataPkts == 0 || acks == 0 {
		t.Fatal("no traffic")
	}
	ratio := float64(dataPkts) / float64(acks)
	if ratio < 1.6 || ratio > 2.6 {
		t.Errorf("data/ack ratio %.2f, want ≈2", ratio)
	}
}

func TestTCPMsgDelivery(t *testing.T) {
	tn := newStarNet(t, 2, 10, 5, 0.01, emucore.IdealProfile())
	var got []any
	tn.hosts[1].Listen(80, func(c *Conn) Handlers {
		return Handlers{OnMsg: func(c *Conn, obj any) { got = append(got, obj) }}
	})
	c := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{})
	for i := 0; i < 20; i++ {
		c.WriteMsg(i, 3000) // spans multiple segments
	}
	c.Close()
	tn.sched.RunUntil(vtime.Time(60 * vtime.Second))
	if len(got) != 20 {
		t.Fatalf("delivered %d of 20 messages (loss must not lose or dup msgs)", len(got))
	}
	for i, o := range got {
		if o.(int) != i {
			t.Fatalf("message order broken at %d: %v", i, got)
		}
	}
}

func TestTCPConnectRefused(t *testing.T) {
	tn := newStarNet(t, 2, 10, 1, 0, emucore.IdealProfile())
	var closeErr error
	closed := false
	tn.hosts[0].Dial(Endpoint{1, 81}, Handlers{
		OnClose: func(c *Conn, err error) { closed = true; closeErr = err },
	})
	tn.sched.Run()
	if !closed {
		t.Fatal("dial to closed port never failed")
	}
	if closeErr != ErrReset {
		t.Errorf("err = %v, want ErrReset", closeErr)
	}
}

func TestTCPAbort(t *testing.T) {
	tn := newStarNet(t, 2, 10, 1, 0, emucore.IdealProfile())
	var serverErr error
	srvClosed := false
	tn.hosts[1].Listen(80, func(c *Conn) Handlers {
		return Handlers{OnClose: func(c *Conn, err error) { srvClosed = true; serverErr = err }}
	})
	c := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{
		OnConnect: func(c *Conn) {
			c.WriteCount(1000)
			tn.sched.After(50*vtime.Millisecond, c.Abort)
		},
	})
	tn.sched.Run()
	if !srvClosed || serverErr != ErrReset {
		t.Errorf("server close: %v err %v, want reset", srvClosed, serverErr)
	}
	_ = c
}

func TestRPCBasic(t *testing.T) {
	tn := newStarNet(t, 2, 10, 5, 0, emucore.IdealProfile())
	srv, err := NewRPCNode(tn.hosts[1], 9, func(from Endpoint, body any, size int) (any, int) {
		return body.(int) * 2, 64
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewRPCNode(tn.hosts[0], 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got any
	cli.Call(srv.Addr(), 21, 64, CallOpts{}, func(resp any, err error) {
		if err != nil {
			t.Errorf("rpc err: %v", err)
		}
		got = resp
	})
	tn.sched.Run()
	if got != 42 {
		t.Fatalf("resp = %v", got)
	}
}

func TestRPCRetriesThroughLoss(t *testing.T) {
	tn := newStarNet(t, 2, 10, 2, 0.3, emucore.IdealProfile())
	srv, _ := NewRPCNode(tn.hosts[1], 9, func(from Endpoint, body any, size int) (any, int) {
		return "ok", 32
	})
	cli, _ := NewRPCNode(tn.hosts[0], 0, nil)
	okCount := 0
	for i := 0; i < 50; i++ {
		cli.Call(srv.Addr(), i, 64, CallOpts{Retries: 8, Timeout: 100 * vtime.Millisecond},
			func(resp any, err error) {
				if err == nil {
					okCount++
				}
			})
	}
	tn.sched.Run()
	if okCount < 45 {
		t.Errorf("only %d/50 RPCs survived 30%% loss with retries", okCount)
	}
}

func TestRPCTimeoutOnDeadPeer(t *testing.T) {
	tn := newStarNet(t, 2, 10, 2, 0, emucore.IdealProfile())
	cli, _ := NewRPCNode(tn.hosts[0], 0, nil)
	var gotErr error
	fired := 0
	cli.Call(Endpoint{1, 99}, "x", 64, CallOpts{Retries: 1, Timeout: 50 * vtime.Millisecond},
		func(resp any, err error) { gotErr = err; fired++ })
	tn.sched.Run()
	if fired != 1 || gotErr != ErrRPCTimeout {
		t.Errorf("fired=%d err=%v", fired, gotErr)
	}
	if cli.Timeouts != 1 {
		t.Errorf("timeouts = %d", cli.Timeouts)
	}
}

// Property: TCP delivers exactly the bytes written, in order, for random
// payload sizes and loss rates — the core reliability invariant.
func TestTCPReliabilityProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, lossRaw uint8) bool {
		size := int(sizeRaw)%40000 + 1
		loss := float64(lossRaw%10) / 100.0 // 0-9%
		g := topology.Star(2, topology.LinkAttrs{
			BandwidthBps: 10e6, LatencySec: 0.003, LossRate: loss, QueuePkts: 30,
		})
		b, err := bind.Bind(g, bind.Options{})
		if err != nil {
			return false
		}
		sched := vtime.NewScheduler()
		emu, err := emucore.New(sched, g, b, nil, emucore.IdealProfile(), seed)
		if err != nil {
			return false
		}
		h0 := NewHost(0, sched, emu, emuAdapter{emu})
		h1 := NewHost(1, sched, emu, emuAdapter{emu})
		payload := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(payload)
		var rcvd []byte
		closed := false
		h1.Listen(80, func(c *Conn) Handlers {
			return Handlers{
				OnData:  func(c *Conn, n int, data []byte) { rcvd = append(rcvd, data...) },
				OnClose: func(c *Conn, err error) { closed = true },
			}
		})
		c := h0.Dial(Endpoint{1, 80}, Handlers{})
		c.Write(payload)
		c.Close()
		sched.RunUntil(vtime.Time(300 * vtime.Second))
		return closed && bytes.Equal(rcvd, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
