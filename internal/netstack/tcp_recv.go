package netstack

import (
	"sort"

	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// onSegment dispatches an arriving TCP segment to its connection, spawning
// one via a listener for a fresh SYN, or answering with RST.
func (h *Host) onSegment(src pipes.VN, seg *Segment) {
	key := connKey{seg.DstPort, Endpoint{src, seg.SrcPort}}
	if c, ok := h.conns[key]; ok {
		c.handleSegment(seg)
		return
	}
	if seg.SYN && !seg.HasACK {
		if l, ok := h.listeners[seg.DstPort]; ok {
			c := h.newConn(seg.DstPort, Endpoint{src, seg.SrcPort}, Handlers{})
			c.handlers = l.accept(c)
			c.state = stateSynRcvd
			c.rcvNxt = 1 // consume the SYN
			c.sendSYN()  // SYN|ACK
			return
		}
	}
	if !seg.RST {
		// Closed port: refuse.
		rst := &Segment{
			SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Seq: seg.Ack, RST: true, HasACK: true, Ack: seg.Seq + uint64(seg.Len),
		}
		h.send(src, rst.WireSize(), rst)
	}
}

// handleSegment is the per-connection TCP input routine.
func (c *Conn) handleSegment(seg *Segment) {
	if c.removed {
		return
	}
	if seg.RST {
		c.teardown(ErrReset)
		return
	}
	if seg.Window > 0 {
		c.rwnd = seg.Window
	}

	switch c.state {
	case stateSynSent:
		if seg.SYN && seg.HasACK && seg.Ack >= 1 {
			c.sndUna = 1
			c.rcvNxt = 1
			c.establish()
			c.ackNow()
			c.trySend()
		}
		return
	case stateSynRcvd:
		if seg.HasACK && seg.Ack >= 1 {
			c.sndUna = 1
			c.establish()
			// Fall through: the ACK may carry data.
		} else if seg.SYN && !seg.HasACK {
			// Duplicate SYN: re-answer.
			c.sendSYN()
			return
		} else {
			return
		}
	}

	if seg.HasACK {
		c.processAck(seg)
	}
	if c.removed {
		return
	}
	if seg.Len > 0 || seg.FIN {
		c.processData(seg)
	}
}

func (c *Conn) establish() {
	c.state = stateEstablished
	c.retries = 0
	c.Established = c.h.sched.Now()
	if c.sndUna == c.sndNxt {
		c.rtxTimer.StopTimer()
	}
	if c.handlers.OnConnect != nil {
		c.handlers.OnConnect(c)
	}
	// Flush anything queued while the handshake was in flight (e.g. a
	// server that wrote from its accept callback).
	if !c.removed {
		c.trySend()
	}
}

// processAck implements NewReno congestion control.
func (c *Conn) processAck(seg *Segment) {
	switch {
	case seg.Ack > c.sndNxt:
		return // acks data we never sent; ignore
	case seg.Ack > c.sndUna:
		newly := seg.Ack - c.sndUna
		// Acked *data* bytes exclude the FIN's sequence unit.
		dataHi, dataLo := seg.Ack, c.sndUna
		if c.finOff != 0 {
			if dataHi > c.finOff {
				dataHi = c.finOff
			}
			if dataLo > c.finOff {
				dataLo = c.finOff
			}
		}
		c.sndUna = seg.Ack
		c.BytesSent += dataHi - dataLo
		c.popAcked()
		c.retries = 0
		// Forward progress clears any timeout backoff (RFC 6298 §5.7 /
		// Linux tcp_ack): without this, lossy paths ratchet the RTO to
		// its maximum — Karn's algorithm keeps canceling the samples that
		// would bring it back down — and every later loss stalls the
		// connection for maxRTO.
		c.rto = c.computedRTO()
		// RTT sample (Karn's: only for never-retransmitted ranges).
		if c.rttActive && c.sndUna >= c.rttSeq {
			c.rttSample(c.h.sched.Now().Sub(c.rttAt))
			c.rttActive = false
		}
		c.dupAcks = 0
		if c.inRecovery {
			if c.sndUna >= c.recover {
				// Full recovery: deflate.
				c.inRecovery = false
				c.cwnd = c.ssthresh
			} else {
				// Partial ack: the next hole is lost too (NewReno).
				c.retransmitHead()
				c.cwnd -= float64(newly)
				if c.cwnd < MSS {
					c.cwnd = MSS
				}
				c.cwnd += MSS
			}
		} else if c.cwnd < c.ssthresh {
			c.cwnd += MSS // slow start
		} else {
			c.cwnd += MSS * MSS / c.cwnd // congestion avoidance
		}
		if c.sndUna == c.sndNxt {
			c.rtxTimer.StopTimer()
		} else {
			c.armRtx()
		}
		if c.finOff != 0 && !c.finAcked && c.sndUna >= c.finOff+1 {
			c.finAcked = true
			c.maybeFinish()
		}
		if !c.removed {
			c.trySend()
		}
	case seg.Ack == c.sndUna && c.sndNxt > c.sndUna && seg.Len == 0 && !seg.SYN && !seg.FIN:
		c.dupAcks++
		if !c.inRecovery && c.dupAcks == 3 {
			// Fast retransmit + fast recovery.
			flight := float64(c.sndNxt - c.sndUna)
			c.ssthresh = flight / 2
			if c.ssthresh < 2*MSS {
				c.ssthresh = 2 * MSS
			}
			c.recover = c.sndNxt
			c.inRecovery = true
			c.FastRecoveries++
			c.retransmitHead()
			c.cwnd = c.ssthresh + 3*MSS
		} else if c.inRecovery {
			c.cwnd += MSS // window inflation
			c.trySend()
		}
	}
}

// retransmitHead resends the first unacknowledged segment.
func (c *Conn) retransmitHead() {
	if c.sndUna >= c.sndNxt {
		return
	}
	c.rttActive = false // Karn's: no sample across retransmits
	switch {
	case c.sndUna == 0:
		c.sendSYN()
		c.Retransmits++
		return
	case c.finOff != 0 && c.sndUna >= c.finOff:
		c.transmit(&Segment{Seq: c.finOff, FIN: true, HasACK: true, Ack: c.rcvNxt})
		c.Retransmits++
		return
	}
	end := c.sndBufEnd
	if c.finOff != 0 {
		end = c.finOff
	}
	n := int(end - c.sndUna)
	if n > MSS {
		n = MSS
	}
	if n <= 0 {
		return
	}
	c.sendData(c.sndUna, n, true)
	c.armRtx()
}

// popAcked discards fully-acknowledged chunks.
func (c *Conn) popAcked() {
	i := 0
	for i < len(c.chunks) && c.chunks[i].start+uint64(c.chunks[i].n) <= c.sndUna {
		i++
	}
	if i > 0 {
		c.chunks = append([]chunk(nil), c.chunks[i:]...)
	}
}

// processData handles the payload/FIN portion of a segment.
func (c *Conn) processData(seg *Segment) {
	segEnd := seg.Seq + uint64(seg.Len)
	if seg.FIN {
		c.peerFinOff = segEnd
	}
	switch {
	case segEnd <= c.rcvNxt && !(seg.FIN && c.peerFinOff == c.rcvNxt):
		// Entirely old; re-ack so the peer can advance.
		c.ackNow()
	case seg.Seq <= c.rcvNxt:
		hadGap := len(c.ooo) > 0
		c.deliverInOrder(seg.Seq, seg.Len, seg.Data, seg.Msgs)
		c.drainOOO()
		c.consumeFin()
		if hadGap || c.peerFinDone {
			c.ackNow()
		} else {
			c.scheduleAck()
		}
	default:
		// Gap: buffer and send an immediate duplicate ACK.
		c.insertOOO(oooSeg{seq: seg.Seq, n: seg.Len, data: seg.Data, msgs: seg.Msgs})
		c.ackNow()
	}
}

// deliverInOrder advances rcvNxt over [seq, seq+n), trimming any prefix
// already delivered, and fires OnData/OnMsg.
func (c *Conn) deliverInOrder(seq uint64, n int, data []byte, msgs []MsgMarker) {
	segEnd := seq + uint64(n)
	for _, m := range msgs {
		if m.End > c.rcvNxt {
			c.insertPendingMsg(m)
		}
	}
	if segEnd <= c.rcvNxt {
		return
	}
	skip := c.rcvNxt - seq
	fresh := int(segEnd - c.rcvNxt)
	var payload []byte
	if data != nil {
		payload = data[skip:]
	}
	c.rcvNxt = segEnd
	c.BytesRcvd += uint64(fresh)
	if c.handlers.OnData != nil && fresh > 0 {
		c.handlers.OnData(c, fresh, payload)
	}
	c.deliverMsgs()
}

func (c *Conn) insertOOO(s oooSeg) {
	i := sort.Search(len(c.ooo), func(i int) bool { return c.ooo[i].seq >= s.seq })
	if i < len(c.ooo) && c.ooo[i].seq == s.seq && c.ooo[i].n >= s.n {
		return // duplicate
	}
	c.ooo = append(c.ooo, oooSeg{})
	copy(c.ooo[i+1:], c.ooo[i:])
	c.ooo[i] = s
}

// drainOOO delivers buffered segments made contiguous by a gap fill.
func (c *Conn) drainOOO() {
	for len(c.ooo) > 0 {
		s := c.ooo[0]
		if s.seq > c.rcvNxt {
			return
		}
		c.ooo = c.ooo[1:]
		c.deliverInOrder(s.seq, s.n, s.data, s.msgs)
	}
}

// consumeFin advances over the peer's FIN once the stream is complete.
func (c *Conn) consumeFin() {
	if c.peerFinOff == 0 || c.peerFinDone || c.rcvNxt != c.peerFinOff {
		return
	}
	c.rcvNxt = c.peerFinOff + 1
	c.peerFinDone = true
	c.fireClose(nil)
	c.maybeFinish()
}

// ---- timers ----

func (c *Conn) armRtx() {
	c.rtxTimer.Reset(c.rto, func() { c.onRtxTimeout() })
}

// onRtxTimeout is the retransmission timeout: multiplicative backoff,
// collapse to one segment, slow start again.
func (c *Conn) onRtxTimeout() {
	if c.removed || c.sndUna >= c.sndNxt {
		return
	}
	c.retries++
	limit := maxRetries
	if c.state == stateSynSent || c.state == stateSynRcvd {
		limit = maxSynRetries
	}
	if c.retries > limit {
		c.teardown(ErrTimeout)
		return
	}
	c.Timeouts++
	flight := float64(c.sndNxt - c.sndUna)
	c.ssthresh = flight / 2
	if c.ssthresh < 2*MSS {
		c.ssthresh = 2 * MSS
	}
	c.cwnd = MSS
	c.inRecovery = false
	c.dupAcks = 0
	c.rto *= 2
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	c.retransmitHead()
	c.armRtx()
}

// rttSample updates SRTT/RTTVAR/RTO per RFC 6298.
func (c *Conn) rttSample(rtt vtime.Duration) {
	if rtt < 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
	} else {
		d := c.srtt - rtt
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.rto = c.computedRTO()
}

// computedRTO derives the un-backed-off RTO from the current estimator
// state (initialRTO before the first sample), clamped to [minRTO, maxRTO].
func (c *Conn) computedRTO() vtime.Duration {
	if c.srtt == 0 {
		return initialRTO
	}
	rto := c.srtt + 4*c.rttvar
	if rto < minRTO {
		rto = minRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	return rto
}
