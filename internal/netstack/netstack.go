// Package netstack is the from-scratch transport layer that applications
// run over in this reproduction. The paper runs unmodified Linux binaries
// whose kernel TCP stacks drive the emulated pipes; here the same role is
// played by a packet-level TCP (NewReno: slow start, AIMD, fast
// retransmit/recovery, delayed ACKs, RTO per RFC 6298) and UDP, implemented
// over the emulation core's inject/deliver interface.
//
// Everything is event-driven on the single virtual-time loop: there are no
// blocking calls. Applications receive callbacks (OnConnect, OnData, OnMsg,
// OnClose) and send with non-blocking writes.
//
// Application payloads ride the byte stream by reference: WriteMsg attaches
// an object to a range of stream bytes and the receiver's OnMsg fires when
// the last byte of that range is delivered in order — the standard
// packet-simulator pattern for modeling "an application message of size S"
// without serialization.
package netstack

import (
	"fmt"

	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// Injector is where a host's packets enter the network — normally the
// emulation core, optionally wrapped by an edge-node model that adds host
// link serialization or CPU contention.
type Injector interface {
	// Inject offers one packet; false means it was dropped before entering
	// the emulated network (physical drop).
	Inject(src, dst pipes.VN, size int, payload any) bool
}

// Endpoint names one side of a flow.
type Endpoint struct {
	VN   pipes.VN
	Port uint16
}

func (e Endpoint) String() string { return fmt.Sprintf("vn%d:%d", e.VN, e.Port) }

// Wire overheads (IPv4, no options).
const (
	TCPHeader = 40 // IP + TCP
	UDPHeader = 28 // IP + UDP
	MSS       = 1460
)

// Host is the network stack of one VN.
type Host struct {
	vn    pipes.VN
	inj   Injector
	sched *vtime.Scheduler

	udpSocks  map[uint16]*UDPSocket
	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	nextPort  uint16

	// Stats.
	PktsOut, PktsIn   uint64
	BytesOut, BytesIn uint64
	InjectFailures    uint64
}

type connKey struct {
	localPort uint16
	remote    Endpoint
}

// Registrar is the delivery side of the network (the emulator).
type Registrar interface {
	RegisterVN(vn pipes.VN, fn func(*pipes.Packet))
}

// NewHost creates the stack for VN vn, registering for packet delivery.
// inj is the packet injection path (usually the same emulator).
func NewHost(vn pipes.VN, sched *vtime.Scheduler, inj Injector, reg Registrar) *Host {
	h := &Host{
		vn:        vn,
		inj:       inj,
		sched:     sched,
		udpSocks:  make(map[uint16]*UDPSocket),
		listeners: make(map[uint16]*Listener),
		conns:     make(map[connKey]*Conn),
		nextPort:  32768,
	}
	reg.RegisterVN(vn, h.onPacket)
	return h
}

// VN returns the host's virtual node address.
func (h *Host) VN() pipes.VN { return h.vn }

// Scheduler returns the shared virtual-time scheduler.
func (h *Host) Scheduler() *vtime.Scheduler { return h.sched }

// ephemeralPort allocates a local port.
func (h *Host) ephemeralPort() uint16 {
	for i := 0; i < 65536; i++ {
		p := h.nextPort
		h.nextPort++
		if h.nextPort == 0 {
			h.nextPort = 32768
		}
		if p < 1024 {
			continue
		}
		if _, tcp := h.listeners[p]; tcp {
			continue
		}
		if _, udp := h.udpSocks[p]; udp {
			continue
		}
		inUse := false
		for k := range h.conns {
			if k.localPort == p {
				inUse = true
				break
			}
		}
		if !inUse {
			return p
		}
	}
	panic("netstack: out of ports")
}

// send pushes a packet into the network.
func (h *Host) send(dst pipes.VN, size int, payload any) bool {
	h.PktsOut++
	h.BytesOut += uint64(size)
	if !h.inj.Inject(h.vn, dst, size, payload) {
		h.InjectFailures++
		return false
	}
	return true
}

// onPacket dispatches a delivered packet to the owning socket.
func (h *Host) onPacket(pkt *pipes.Packet) {
	h.PktsIn++
	h.BytesIn += uint64(pkt.Size)
	switch pl := pkt.Payload.(type) {
	case *Segment:
		h.onSegment(pkt.Src, pl)
	case *Datagram:
		h.onDatagram(pkt.Src, pl)
	}
}
