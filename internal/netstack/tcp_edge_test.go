package netstack

import (
	"testing"

	"modelnet/internal/emucore"
	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// Additional TCP edge-case coverage beyond the basic suite.

func TestTCPHalfClose(t *testing.T) {
	// Client sends a request and half-closes; server must still be able
	// to respond on its side of the connection (HTTP/1.0 pattern).
	tn := newStarNet(t, 2, 10, 5, 0, emucore.IdealProfile())
	var serverGotFIN bool
	var clientGot int
	tn.hosts[1].Listen(80, func(c *Conn) Handlers {
		return Handlers{
			OnData: func(c *Conn, n int, data []byte) {},
			OnClose: func(c *Conn, err error) {
				serverGotFIN = true
				// Respond after the peer's FIN.
				c.WriteCount(5000)
				c.Close()
			},
		}
	})
	c := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{
		OnData: func(c *Conn, n int, data []byte) { clientGot += n },
	})
	c.WriteCount(100)
	c.Close()
	tn.sched.RunUntil(vtime.Time(30 * vtime.Second))
	if !serverGotFIN {
		t.Fatal("server never saw client FIN")
	}
	if clientGot != 5000 {
		t.Fatalf("client received %d after half-close, want 5000", clientGot)
	}
}

func TestTCPBidirectionalTransfer(t *testing.T) {
	tn := newStarNet(t, 2, 10, 5, 0, emucore.IdealProfile())
	var aGot, bGot int
	tn.hosts[1].Listen(80, func(c *Conn) Handlers {
		c.WriteCount(200_000) // server pushes immediately too
		return Handlers{OnData: func(c *Conn, n int, data []byte) { bGot += n }}
	})
	c := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{
		OnData: func(c *Conn, n int, data []byte) { aGot += n },
	})
	c.WriteCount(200_000)
	tn.sched.RunUntil(vtime.Time(60 * vtime.Second))
	if aGot != 200_000 || bGot != 200_000 {
		t.Fatalf("bidirectional: a=%d b=%d", aGot, bGot)
	}
}

func TestTCPWindowLimitsThroughput(t *testing.T) {
	// 100 Mb/s path, 100 ms RTT: an 8 KB window caps throughput at
	// ~8KB/0.1s = 655 kbit/s regardless of link speed.
	tn := newStarNet(t, 2, 100, 25, 0, emucore.IdealProfile())
	got := 0
	tn.hosts[1].Listen(80, func(c *Conn) Handlers {
		// The receiver advertises a tiny window; the sender must respect it.
		c.SetWindow(8 << 10)
		return Handlers{OnData: func(c *Conn, n int, data []byte) { got += n }}
	})
	c := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{})
	c.WriteCount(10 << 20)
	tn.sched.RunUntil(vtime.Time(10 * vtime.Second))
	rate := float64(got*8) / 10
	// Window/RTT = 8KB*8/0.1s ≈ 655 kbit/s; allow up to 2x for the
	// receiver's advertised window racing upward.
	if rate > 1.4e6 {
		t.Errorf("rate %.0f bit/s exceeds window-limited bound", rate)
	}
	if rate < 0.3e6 {
		t.Errorf("rate %.0f bit/s too low for an 8KB window", rate)
	}
}

func TestTCPRTOBackoff(t *testing.T) {
	// Server VN exists but the path loses everything after the handshake:
	// simulate by aborting the server silently and watching client RTO
	// growth through retries.
	tn := newStarNet(t, 2, 10, 5, 0, emucore.IdealProfile())
	tn.hosts[1].Listen(80, func(c *Conn) Handlers { return Handlers{} })
	c := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{})
	tn.sched.RunUntil(vtime.Time(1 * vtime.Second))
	if c.state != stateEstablished {
		t.Fatal("no handshake")
	}
	// Break the return path: remove the server's conn so data is never
	// ACKed (the server RSTs unknown segments — drop those by removing
	// the client's conn handler path instead; easiest is to blackhole:
	// make the server host drop segments by closing its listener and
	// conn map entry).
	for k := range tn.hosts[1].conns {
		delete(tn.hosts[1].conns, k)
	}
	delete(tn.hosts[1].listeners, 80)
	// Suppress RSTs reaching the client: remove client's ability to be
	// found is not possible, so instead tolerate an ErrReset teardown.
	closed := false
	c.handlers.OnClose = func(c *Conn, err error) { closed = true }
	c.WriteCount(10_000)
	tn.sched.RunUntil(vtime.Time(120 * vtime.Second))
	if !closed {
		t.Fatal("connection never gave up")
	}
}

func TestTCPTimeoutGivesUp(t *testing.T) {
	// SYN to a VN whose host never responds (no host registered): the
	// dial must fail with a timeout after maxSynRetries backoffs.
	g := newStarNet(t, 2, 10, 5, 0, emucore.IdealProfile())
	// Deregister host 1 by overwriting its delivery with a sink.
	g.emu.RegisterVN(1, func(*pipes.Packet) {})
	var err error
	closed := false
	g.hosts[0].Dial(Endpoint{1, 80}, Handlers{
		OnClose: func(c *Conn, e error) { closed = true; err = e },
	})
	g.sched.RunUntil(vtime.Time(600 * vtime.Second))
	if !closed || err != ErrTimeout {
		t.Fatalf("closed=%v err=%v, want timeout", closed, err)
	}
}

func TestListenerClose(t *testing.T) {
	tn := newStarNet(t, 2, 10, 5, 0, emucore.IdealProfile())
	l, err := tn.hosts[1].Listen(80, func(c *Conn) Handlers { return Handlers{} })
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	refused := false
	tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{
		OnClose: func(c *Conn, err error) { refused = err == ErrReset },
	})
	tn.sched.RunUntil(vtime.Time(5 * vtime.Second))
	if !refused {
		t.Error("dial to closed listener not refused")
	}
}

func TestDuplicateListen(t *testing.T) {
	tn := newStarNet(t, 2, 10, 5, 0, emucore.IdealProfile())
	if _, err := tn.hosts[1].Listen(80, func(c *Conn) Handlers { return Handlers{} }); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.hosts[1].Listen(80, func(c *Conn) Handlers { return Handlers{} }); err == nil {
		t.Error("duplicate listen accepted")
	}
}

func TestSmallWritesCoalesceInOrder(t *testing.T) {
	// Many tiny writes interleaved with msgs must arrive in exact order.
	tn := newStarNet(t, 2, 10, 2, 0.01, emucore.IdealProfile())
	var events []any
	tn.hosts[1].Listen(80, func(c *Conn) Handlers {
		return Handlers{
			OnMsg: func(c *Conn, obj any) { events = append(events, obj) },
		}
	})
	c := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{})
	for i := 0; i < 100; i++ {
		c.WriteMsg(i, 37) // deliberately not MSS-aligned
	}
	c.Close()
	tn.sched.RunUntil(vtime.Time(60 * vtime.Second))
	if len(events) != 100 {
		t.Fatalf("got %d msgs", len(events))
	}
	for i, e := range events {
		if e.(int) != i {
			t.Fatalf("order broken at %d: %v", i, e)
		}
	}
}

func TestConnStatsAccounting(t *testing.T) {
	tn := newStarNet(t, 2, 10, 5, 0, emucore.IdealProfile())
	var srv *Conn
	tn.hosts[1].Listen(80, func(c *Conn) Handlers {
		srv = c
		return Handlers{}
	})
	c := tn.hosts[0].Dial(Endpoint{1, 80}, Handlers{})
	c.WriteCount(50_000)
	c.Close()
	tn.sched.RunUntil(vtime.Time(30 * vtime.Second))
	if c.BytesSent != 50_000 {
		t.Errorf("BytesSent = %d", c.BytesSent)
	}
	if srv == nil || srv.BytesRcvd != 50_000 {
		t.Errorf("server BytesRcvd = %v", srv)
	}
	if c.Established == 0 {
		t.Error("Established time not recorded")
	}
}
