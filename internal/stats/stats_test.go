package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"modelnet/internal/vtime"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{5, 1, 3, 2, 4} {
		s.Add(x)
	}
	if s.N() != 5 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("basics: n=%d min=%v max=%v", s.N(), s.Min(), s.Max())
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Median() != 3 {
		t.Errorf("median = %v", s.Median())
	}
	if math.Abs(s.Stddev()-math.Sqrt(2)) > 1e-12 {
		t.Errorf("stddev = %v", s.Stddev())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample should return zeros")
	}
	if s.FractionBelow(10) != 0 {
		t.Error("empty FractionBelow")
	}
	if s.CDFAt(10) != nil {
		t.Error("empty CDFAt")
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := map[float64]float64{0: 1, 10: 10, 50: 50, 90: 90, 100: 100}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
}

func TestFractionBelow(t *testing.T) {
	var s Sample
	s.AddAll([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := s.FractionBelow(c.x); got != c.want {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	var s Sample
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		s.Add(rng.NormFloat64())
	}
	cdf := s.CDF()
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X < cdf[i-1].X || cdf[i].P <= cdf[i-1].P {
			t.Fatal("CDF not monotone")
		}
	}
	pts := s.CDFAt(20)
	if len(pts) != 20 || pts[19].P != 1 {
		t.Fatalf("CDFAt: %d points, last P %v", len(pts), pts[len(pts)-1].P)
	}
}

// Property: Percentile agrees with direct sorted indexing; FractionBelow is
// the inverse relation.
func TestPercentileProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var s Sample
		s.AddAll(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, p := range []float64{1, 25, 50, 75, 99} {
			rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
			if rank < 0 {
				rank = 0
			}
			if s.Percentile(p) != sorted[rank] {
				return false
			}
		}
		for _, x := range xs {
			fb := s.FractionBelow(x)
			count := 0
			for _, y := range xs {
				if y <= x {
					count++
				}
			}
			if math.Abs(fb-float64(count)/float64(len(xs))) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Account(1000, vtime.Time(1*vtime.Second))
	m.Account(1000, vtime.Time(2*vtime.Second))
	m.Account(1000, vtime.Time(3*vtime.Second))
	if got := m.BitsPerSec(vtime.Time(3 * vtime.Second)); math.Abs(got-12000) > 1e-9 {
		t.Errorf("rate = %v, want 12000 (3000B*8 / 2s)", got)
	}
	if got := m.PacketsPerSec(vtime.Time(3 * vtime.Second)); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("pps = %v", got)
	}
	// Elapsed extends to `until` beyond last packet.
	if m.BitsPerSec(vtime.Time(5*vtime.Second)) >= 12000 {
		t.Error("rate should fall as time passes without traffic")
	}
}

func TestLog(t *testing.T) {
	l := NewLog(3)
	l.Record(1, "lag", 0.5)
	l.Record(2, "lag", 1.5)
	l.Record(3, "drop", 1)
	l.Record(4, "lag", 9) // over capacity
	if l.Drops != 1 {
		t.Errorf("drops = %d", l.Drops)
	}
	if len(l.Events()) != 3 {
		t.Fatalf("events = %d", len(l.Events()))
	}
	if len(l.Kind("lag")) != 2 {
		t.Errorf("lag events = %d", len(l.Kind("lag")))
	}
	s := l.SampleOf("lag")
	if s.N() != 2 || s.Mean() != 1 {
		t.Errorf("sample: %v", s)
	}
}
