// Package stats provides the measurement utilities used across the
// reproduction: empirical CDFs (most of the paper's figures are CDFs),
// throughput meters, and simple summaries. It also hosts the event log that
// stands in for the paper's in-kernel logging package (§3.1): efficiently
// buffered records analyzed offline.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample is a growable set of float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll appends many observations.
func (s *Sample) AddAll(xs []float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (p in [0,100]) by nearest-rank.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s.xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.xs[rank]
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// FractionBelow returns the empirical CDF evaluated at x: the fraction of
// observations ≤ x.
func (s *Sample) FractionBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.xs))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative fraction in [0,1]
}

// CDF returns the full empirical CDF, one point per observation.
func (s *Sample) CDF() []CDFPoint {
	s.ensureSorted()
	out := make([]CDFPoint, len(s.xs))
	n := float64(len(s.xs))
	for i, x := range s.xs {
		out[i] = CDFPoint{X: x, P: float64(i+1) / n}
	}
	return out
}

// CDFAt samples the CDF at k evenly spaced cumulative fractions —
// convenient for printing figure series compactly.
func (s *Sample) CDFAt(k int) []CDFPoint {
	if k < 2 || len(s.xs) == 0 {
		return nil
	}
	s.ensureSorted()
	out := make([]CDFPoint, k)
	for i := 0; i < k; i++ {
		p := float64(i+1) / float64(k)
		idx := int(p*float64(len(s.xs))) - 1
		if idx < 0 {
			idx = 0
		}
		out[i] = CDFPoint{X: s.xs[idx], P: p}
	}
	return out
}

// Values returns a sorted copy of the observations.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	return append([]float64(nil), s.xs...)
}

func (s *Sample) String() string {
	return fmt.Sprintf("n=%d min=%.4g p50=%.4g mean=%.4g p90=%.4g max=%.4g",
		s.N(), s.Min(), s.Median(), s.Mean(), s.Percentile(90), s.Max())
}
