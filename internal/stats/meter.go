package stats

import (
	"fmt"

	"modelnet/internal/vtime"
)

// Meter accumulates byte/packet counts over virtual time and reports rates.
type Meter struct {
	Bytes   uint64
	Packets uint64
	start   vtime.Time
	started bool
	last    vtime.Time
}

// Start marks the measurement origin.
func (m *Meter) Start(at vtime.Time) {
	m.start = at
	m.started = true
}

// Account records one packet of n bytes at time at.
func (m *Meter) Account(n int, at vtime.Time) {
	if !m.started {
		m.Start(at)
	}
	m.Bytes += uint64(n)
	m.Packets++
	m.last = at
}

// Elapsed returns the time from start to the later of `until` and the last
// accounted packet.
func (m *Meter) Elapsed(until vtime.Time) vtime.Duration {
	end := until
	if m.last > end {
		end = m.last
	}
	return end.Sub(m.start)
}

// BitsPerSec returns the average bit rate through `until`.
func (m *Meter) BitsPerSec(until vtime.Time) float64 {
	el := m.Elapsed(until).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.Bytes*8) / el
}

// PacketsPerSec returns the average packet rate through `until`.
func (m *Meter) PacketsPerSec(until vtime.Time) float64 {
	el := m.Elapsed(until).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.Packets) / el
}

func (m *Meter) String() string {
	return fmt.Sprintf("%d pkts, %d bytes", m.Packets, m.Bytes)
}

// Event is one record in the Log.
type Event struct {
	At   vtime.Time
	Kind string
	Val  float64
}

// Log is a bounded in-memory event buffer — the stand-in for the paper's
// kernel logging package: record cheaply during the run, analyze offline.
type Log struct {
	cap    int
	events []Event
	Drops  uint64 // records discarded after the buffer filled
}

// NewLog returns a log bounded at capacity records (≤0 means 1<<20).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1 << 20
	}
	return &Log{cap: capacity}
}

// Record appends an event, dropping it when full.
func (l *Log) Record(at vtime.Time, kind string, val float64) {
	if len(l.events) >= l.cap {
		l.Drops++
		return
	}
	l.events = append(l.events, Event{at, kind, val})
}

// Events returns all buffered events.
func (l *Log) Events() []Event { return l.events }

// Kind filters events by kind.
func (l *Log) Kind(kind string) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// SampleOf collapses a kind's values into a Sample.
func (l *Log) SampleOf(kind string) *Sample {
	s := &Sample{}
	for _, e := range l.events {
		if e.Kind == kind {
			s.Add(e.Val)
		}
	}
	return s
}
