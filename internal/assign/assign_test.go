package assign

import (
	"testing"
	"testing/quick"

	"modelnet/internal/bind"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
)

func attrs() topology.LinkAttrs {
	return topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: 0.005, QueuePkts: 10}
}

func TestKClustersCoversAllLinks(t *testing.T) {
	g := topology.Ring(10, 4, attrs(), attrs())
	a, err := KClusters(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Owner) != g.NumLinks() {
		t.Fatalf("owner len %d, want %d", len(a.Owner), g.NumLinks())
	}
	for i, c := range a.Owner {
		if c < 0 || c >= 4 {
			t.Fatalf("link %d owner %d out of range", i, c)
		}
	}
}

func TestKClustersSingleCore(t *testing.T) {
	g := topology.Star(8, attrs())
	a, err := KClusters(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range a.Owner {
		if c != 0 {
			t.Fatal("single core assignment non-zero")
		}
	}
}

func TestKClustersAccessPairsStayWithRouter(t *testing.T) {
	// Both directions of every client access link must share one owner
	// (the client's home core), so VN injection and delivery are always
	// core-local in the parallel runtime.
	g := topology.Ring(8, 2, attrs(), attrs())
	a, err := KClusters(g, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range g.Links {
		if g.Class(l) != topology.ClientStub {
			continue
		}
		rev, ok := g.FindLink(l.Dst, l.Src)
		if !ok {
			continue
		}
		if a.Owner[l.ID] != a.Owner[rev.ID] {
			t.Fatalf("access pair (%d,%d) split across cores %d/%d",
				l.ID, rev.ID, a.Owner[l.ID], a.Owner[rev.ID])
		}
	}
}

func TestKClustersLookaheadObjective(t *testing.T) {
	// On a ring with slow backbone links and fast access links, the cut
	// must fall across the backbone: lookahead == the ring latency, an
	// order of magnitude above the access latency.
	ring := topology.LinkAttrs{BandwidthBps: 100e6, LatencySec: 0.010, QueuePkts: 50}
	access := topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: 0.001, QueuePkts: 50}
	g := topology.Ring(20, 20, ring, access)
	for _, k := range []int{2, 4, 8} {
		a, err := KClusters(g, k, 11)
		if err != nil {
			t.Fatal(err)
		}
		cs := a.CutStats(g)
		if cs.CutPipes == 0 {
			t.Fatalf("k=%d: no cut pipes on a partitioned ring", k)
		}
		if cs.Lookahead.Seconds() != ring.LatencySec {
			t.Errorf("k=%d: lookahead %v, want the ring latency %vs (cut crossed an access link)",
				k, cs.Lookahead, ring.LatencySec)
		}
	}
	// The structure-blind Even baseline cuts access links: its lookahead
	// is strictly worse.
	ev, _ := Even(g, 4)
	kc, _ := KClusters(g, 4, 11)
	if ev.CutStats(g).Lookahead >= kc.CutStats(g).Lookahead {
		t.Errorf("Even lookahead %v not worse than KClusters %v",
			ev.CutStats(g).Lookahead, kc.CutStats(g).Lookahead)
	}
}

func TestKClustersDisconnected(t *testing.T) {
	g := topology.Pairs(6, 2, attrs())
	a, err := KClusters(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range a.Owner {
		if c < 0 {
			t.Fatalf("link %d unassigned", i)
		}
	}
}

func TestKClustersErrors(t *testing.T) {
	g := topology.Star(4, attrs())
	if _, err := KClusters(g, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Even(g, 0); err == nil {
		t.Error("Even k=0 accepted")
	}
}

func TestEvenBalance(t *testing.T) {
	g := topology.Ring(10, 4, attrs(), attrs())
	a, err := Even(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := a.LoadMetrics()
	for c, n := range m.LinksPerCore {
		if n == 0 {
			t.Errorf("core %d empty", c)
		}
	}
	if m.Imbalance > 1.1 {
		t.Errorf("even imbalance %v", m.Imbalance)
	}
}

func TestLoadMetrics(t *testing.T) {
	a := &Assignment{Owner: []int{0, 0, 0, 1}, Cores: 2}
	m := a.LoadMetrics()
	if m.LinksPerCore[0] != 3 || m.LinksPerCore[1] != 1 {
		t.Fatalf("loads %v", m.LinksPerCore)
	}
	if m.Imbalance != 1.5 {
		t.Errorf("imbalance = %v, want 1.5", m.Imbalance)
	}
}

func TestKClustersBeatsEvenOnCrossings(t *testing.T) {
	// On a locality-rich topology, k-clusters should produce far fewer
	// route crossings than blind even partitioning.
	g := topology.Ring(12, 4, attrs(), attrs())
	matrix, err := bind.BuildMatrix(g, g.Clients())
	if err != nil {
		t.Fatal(err)
	}
	kc, _ := KClusters(g, 4, 3)
	ev, _ := Even(g, 4)
	kcTotal, _ := CrossingStats(matrix, kc.POD(), nil)
	evTotal, _ := CrossingStats(matrix, ev.POD(), nil)
	if kcTotal >= evTotal {
		t.Errorf("k-clusters crossings %d ≥ even crossings %d", kcTotal, evTotal)
	}
}

func TestCrossingStatsIngress(t *testing.T) {
	g := topology.Star(4, attrs())
	matrix, err := bind.BuildMatrix(g, g.Clients())
	if err != nil {
		t.Fatal(err)
	}
	// All pipes on core 0; ingress forced to core 1 => every route crosses once.
	owner := make([]int, g.NumLinks())
	pod := bind.NewPOD(owner, 2)
	total, mean := CrossingStats(matrix, pod, func(pipes.VN) int { return 1 })
	wantRoutes := 4 * 3
	if total != wantRoutes {
		t.Errorf("total crossings = %d, want %d", total, wantRoutes)
	}
	if mean != 1 {
		t.Errorf("mean = %v, want 1", mean)
	}
}

// Property: every link gets an owner in range for any k and seed.
func TestAssignmentTotalProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%6 + 1
		g := topology.Random(topology.RandomConfig{Nodes: 30, Degree: 2.5, Attr: attrs(), Seed: seed})
		a, err := KClusters(g, k, seed)
		if err != nil {
			return false
		}
		if len(a.Owner) != g.NumLinks() {
			return false
		}
		seen := make([]bool, k)
		for _, c := range a.Owner {
			if c < 0 || c >= k {
				return false
			}
			seen[c] = true
		}
		_ = seen
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
