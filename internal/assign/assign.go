// Package assign implements ModelNet's Assignment phase (§2.1): mapping
// pieces of the distilled topology onto core nodes, partitioning the pipe
// graph to distribute emulation load. The ideal assignment depends on
// routing, link properties, and offered traffic — an NP-complete problem —
// so the paper (and this package) uses a simple greedy k-clusters heuristic:
// pick k random seed nodes and greedily grow connected components
// round-robin, claiming each frontier link for the growing cluster.
//
// The heuristic here is lookahead-aware: each cluster claims its
// lowest-latency frontier link first, so low-latency links end up interior
// to a cluster and the eventual cut falls across high-latency links. The
// parallel runtime (internal/parcore) synchronizes cores conservatively
// with a lookahead equal to the minimum cut-pipe latency, so a
// high-latency cut directly buys larger synchronization windows.
package assign

import (
	"container/heap"
	"fmt"
	"math/rand"

	"modelnet/internal/bind"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// Assignment maps each pipe (distilled link) to an owning core.
type Assignment struct {
	Owner []int // link ID -> core index
	Cores int
	// NodeOwner is the node-level partition behind Owner (clients glued to
	// their router's cluster): NodeOwner[n] is the core owning every link
	// out of node n. Sharded distribution slices the world along it. Nil
	// for assignments built without node clustering (Even).
	NodeOwner []int
}

// POD converts the assignment into a pipe ownership directory.
func (a *Assignment) POD() *bind.POD { return bind.NewPOD(a.Owner, a.Cores) }

// KClusters partitions the links of g across k cores with the paper's
// greedy heuristic, seeded deterministically: k random seed nodes grow
// connected node clusters round-robin, and every directed link is owned by
// its source node's cluster.
//
// Two refinements serve the parallel runtime:
//
//   - Growth is lookahead-aware: each cluster annexes the node across its
//     lowest-latency frontier link first, so low-latency links end up
//     interior and the cut falls across high-latency links. With
//     source-node ownership, a packet reaches another core only by fully
//     traversing a cut link, so the synchronization lookahead equals the
//     minimum cut-link latency (see CutStats).
//   - Client nodes are glued to their first router's cluster, keeping both
//     directions of every access link — and therefore VN injection and
//     delivery — on the VN's home core.
func KClusters(g *topology.Graph, k int, seed int64) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("assign: need at least one core, got %d", k)
	}
	n := g.NumNodes()
	a := &Assignment{Owner: make([]int, g.NumLinks()), Cores: k}
	if k == 1 || n == 0 {
		return a, nil
	}
	rng := rand.New(rand.NewSource(seed))

	// Seed each cluster at a distinct random node.
	nodeOwner := make([]int, n)
	for i := range nodeOwner {
		nodeOwner[i] = -1
	}
	perm := rng.Perm(n)
	seeds := k
	if seeds > n {
		seeds = n
	}
	frontier := make([]linkHeap, k)
	for c := range frontier {
		frontier[c].g = g
	}
	for c := 0; c < seeds; c++ {
		nodeOwner[perm[c]] = c
		frontier[c].pushAll(g.Out(topology.NodeID(perm[c])))
	}

	// Round-robin growth: each cluster annexes one frontier node per turn,
	// crossing its cheapest (lowest-latency) frontier link (ties broken by
	// link ID, deterministic). Frontiers are min-heaps with lazy deletion:
	// links to already-owned nodes are skipped at pop time, so each link is
	// pushed and popped at most once — O(E lg E) total instead of the
	// O(frontier) rescan per annexation that dominated startup at 10⁵ VNs.
	owned := seeds
	for owned < n {
		progress := false
		for c := 0; c < k && owned < n; c++ {
			if lid, ok := frontier[c].popCheapest(nodeOwner); ok {
				dst := g.Links[lid].Dst
				nodeOwner[dst] = c
				owned++
				progress = true
				frontier[c].pushAll(g.Out(dst))
			}
		}
		if !progress {
			// Disconnected remainder: seed leftover nodes round-robin and
			// resume growth from them.
			for i := range nodeOwner {
				if nodeOwner[i] == -1 {
					c := owned % k
					nodeOwner[i] = c
					owned++
					frontier[c].pushAll(g.Out(topology.NodeID(i)))
					break
				}
			}
		}
	}

	// Glue each client to its router's cluster so access links never sit
	// on the cut (the glue targets only non-client routers, from a
	// snapshot, so client-client topologies stay as grown).
	glued := make([]int, n)
	copy(glued, nodeOwner)
	for _, nd := range g.Nodes {
		if nd.Kind != topology.Client {
			continue
		}
		for _, lid := range g.Out(nd.ID) {
			r := g.Links[lid].Dst
			if g.Nodes[r].Kind != topology.Client {
				glued[nd.ID] = nodeOwner[r]
				break
			}
		}
	}

	for i, l := range g.Links {
		a.Owner[i] = glued[l.Src]
	}
	a.NodeOwner = glued
	return a, nil
}

// linkHeap is a cluster's frontier: a min-heap of candidate links ordered by
// (latency, link ID). Entries whose far node has been annexed meanwhile are
// discarded lazily at pop time.
type linkHeap struct {
	g    *topology.Graph
	lids []topology.LinkID
}

func (h *linkHeap) Len() int { return len(h.lids) }
func (h *linkHeap) Less(i, j int) bool {
	a, b := h.lids[i], h.lids[j]
	la, lb := h.g.Links[a].Attr.LatencySec, h.g.Links[b].Attr.LatencySec
	if la != lb {
		return la < lb
	}
	return a < b
}
func (h *linkHeap) Swap(i, j int) { h.lids[i], h.lids[j] = h.lids[j], h.lids[i] }
func (h *linkHeap) Push(x any)    { h.lids = append(h.lids, x.(topology.LinkID)) }
func (h *linkHeap) Pop() any {
	old := h.lids
	n := len(old)
	lid := old[n-1]
	h.lids = old[:n-1]
	return lid
}

func (h *linkHeap) pushAll(lids []topology.LinkID) {
	for _, lid := range lids {
		heap.Push(h, lid)
	}
}

// popCheapest removes and returns the frontier link with the lowest latency
// whose far node is unowned (ties by link ID) — the same link the previous
// linear-scan implementation selected. ok is false when no such link remains.
func (h *linkHeap) popCheapest(nodeOwner []int) (topology.LinkID, bool) {
	for h.Len() > 0 {
		lid := heap.Pop(h).(topology.LinkID)
		if nodeOwner[h.g.Links[lid].Dst] == -1 {
			return lid, true
		}
	}
	return 0, false
}

// Even assigns pipes to cores in contiguous equal-size blocks of link ID
// space. It ignores topology structure; useful as a baseline to show how
// much k-clusters reduces crossings.
func Even(g *topology.Graph, k int) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("assign: need at least one core, got %d", k)
	}
	a := &Assignment{Owner: make([]int, g.NumLinks()), Cores: k}
	if g.NumLinks() == 0 {
		return a, nil
	}
	per := (g.NumLinks() + k - 1) / k
	for i := range a.Owner {
		a.Owner[i] = i / per
	}
	return a, nil
}

// Metrics quantify an assignment's quality.
type Metrics struct {
	// LinksPerCore is the emulation load (pipe count) per core.
	LinksPerCore []int
	// CutLinks counts pipe pairs (u→v, next hop) that change cores along
	// sample routes; computed by CrossingStats.
	Imbalance float64 // max/mean link load
}

// LoadMetrics summarizes per-core pipe counts.
func (a *Assignment) LoadMetrics() Metrics {
	m := Metrics{LinksPerCore: make([]int, a.Cores)}
	for _, c := range a.Owner {
		if c >= 0 && c < a.Cores {
			m.LinksPerCore[c]++
		}
	}
	maxv, sum := 0, 0
	for _, v := range m.LinksPerCore {
		sum += v
		if v > maxv {
			maxv = v
		}
	}
	if sum > 0 {
		m.Imbalance = float64(maxv) * float64(a.Cores) / float64(sum)
	}
	return m
}

// CutStats quantify how an assignment will synchronize under the parallel
// runtime. A pipe is on the cut when a packet exiting it can next enter a
// pipe owned by a different core (structurally: some outgoing link of its
// head node has a different owner). The runtime's conservative lookahead is
// the minimum latency over cut pipes — every cross-core handoff is
// announced at least that far ahead in virtual time — so partitions whose
// cuts cross high-latency links synchronize less often.
type CutStats struct {
	CutPipes       int            // pipes whose exit can cross cores
	Lookahead      vtime.Duration // min cut-pipe latency (0 when no cut)
	MeanCutLatency vtime.Duration // mean cut-pipe latency
}

// CutStats analyzes the assignment's cut over the distilled topology.
func (a *Assignment) CutStats(g *topology.Graph) CutStats {
	var s CutStats
	var sum vtime.Duration
	for _, l := range g.Links {
		cut := false
		for _, nid := range g.Out(l.Dst) {
			if a.Owner[nid] != a.Owner[l.ID] {
				cut = true
				break
			}
		}
		if !cut {
			continue
		}
		lat := vtime.DurationOf(l.Attr.LatencySec)
		if s.CutPipes == 0 || lat < s.Lookahead {
			s.Lookahead = lat
		}
		s.CutPipes++
		sum += lat
	}
	if s.CutPipes > 0 {
		s.MeanCutLatency = sum / vtime.Duration(s.CutPipes)
	}
	return s
}

// CrossingStats computes, over all VN-pair routes in the matrix, the total
// and mean number of core crossings a packet incurs (§3.3: each crossing
// negatively impacts scalability).
func CrossingStats(m *bind.Matrix, pod *bind.POD, ingress func(src pipes.VN) int) (total int, mean float64) {
	n := m.NumVNs()
	count := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r, ok := m.Lookup(pipes.VN(i), pipes.VN(j))
			if !ok {
				continue
			}
			ing := 0
			if ingress != nil {
				ing = ingress(pipes.VN(i))
			} else if len(r) > 0 {
				ing = pod.Owner(r[0])
			}
			total += pod.Crossings(ing, r)
			count++
		}
	}
	if count > 0 {
		mean = float64(total) / float64(count)
	}
	return total, mean
}
