// Package assign implements ModelNet's Assignment phase (§2.1): mapping
// pieces of the distilled topology onto core nodes, partitioning the pipe
// graph to distribute emulation load. The ideal assignment depends on
// routing, link properties, and offered traffic — an NP-complete problem —
// so the paper (and this package) uses a simple greedy k-clusters heuristic:
// pick k random seed nodes and greedily grow connected components
// round-robin, claiming each frontier link for the growing cluster.
package assign

import (
	"fmt"
	"math/rand"

	"modelnet/internal/bind"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
)

// Assignment maps each pipe (distilled link) to an owning core.
type Assignment struct {
	Owner []int // link ID -> core index
	Cores int
}

// POD converts the assignment into a pipe ownership directory.
func (a *Assignment) POD() *bind.POD { return bind.NewPOD(a.Owner, a.Cores) }

// KClusters partitions the links of g across k cores with the paper's
// greedy heuristic, seeded deterministically.
func KClusters(g *topology.Graph, k int, seed int64) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("assign: need at least one core, got %d", k)
	}
	n := g.NumNodes()
	a := &Assignment{Owner: make([]int, g.NumLinks()), Cores: k}
	if k == 1 || n == 0 {
		return a, nil
	}
	rng := rand.New(rand.NewSource(seed))

	// Seed each cluster at a distinct random node.
	nodeOwner := make([]int, n)
	for i := range nodeOwner {
		nodeOwner[i] = -1
	}
	perm := rng.Perm(n)
	seeds := k
	if seeds > n {
		seeds = n
	}
	frontier := make([][]topology.LinkID, k)
	for c := 0; c < seeds; c++ {
		nodeOwner[perm[c]] = c
		frontier[c] = append(frontier[c], g.Out(topology.NodeID(perm[c]))...)
	}

	linkOwner := a.Owner
	for i := range linkOwner {
		linkOwner[i] = -1
	}
	claimed := 0
	total := g.NumLinks()
	// Round-robin growth: each cluster claims one unclaimed link from its
	// frontier per turn, annexing the link's far node when unowned.
	for claimed < total {
		progress := false
		for c := 0; c < k && claimed < total; c++ {
			for len(frontier[c]) > 0 {
				lid := frontier[c][0]
				frontier[c] = frontier[c][1:]
				if linkOwner[lid] != -1 {
					continue
				}
				linkOwner[lid] = c
				claimed++
				progress = true
				l := g.Links[lid]
				// Claim the reverse direction too so a duplex pair stays
				// together (halves avoidable crossings).
				if rev, ok := g.FindLink(l.Dst, l.Src); ok && linkOwner[rev.ID] == -1 {
					linkOwner[rev.ID] = c
					claimed++
				}
				if nodeOwner[l.Dst] == -1 {
					nodeOwner[l.Dst] = c
					frontier[c] = append(frontier[c], g.Out(l.Dst)...)
				}
				break
			}
		}
		if !progress {
			// Disconnected remainder: hand leftover links out round-robin
			// and restart growth from their endpoints.
			for i := range linkOwner {
				if linkOwner[i] == -1 {
					c := claimed % k
					linkOwner[i] = c
					claimed++
					l := g.Links[i]
					if nodeOwner[l.Dst] == -1 {
						nodeOwner[l.Dst] = c
						frontier[c] = append(frontier[c], g.Out(l.Dst)...)
					}
					break
				}
			}
		}
	}
	return a, nil
}

// Even assigns pipes to cores in contiguous equal-size blocks of link ID
// space. It ignores topology structure; useful as a baseline to show how
// much k-clusters reduces crossings.
func Even(g *topology.Graph, k int) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("assign: need at least one core, got %d", k)
	}
	a := &Assignment{Owner: make([]int, g.NumLinks()), Cores: k}
	if g.NumLinks() == 0 {
		return a, nil
	}
	per := (g.NumLinks() + k - 1) / k
	for i := range a.Owner {
		a.Owner[i] = i / per
	}
	return a, nil
}

// Metrics quantify an assignment's quality.
type Metrics struct {
	// LinksPerCore is the emulation load (pipe count) per core.
	LinksPerCore []int
	// CutLinks counts pipe pairs (u→v, next hop) that change cores along
	// sample routes; computed by CrossingStats.
	Imbalance float64 // max/mean link load
}

// LoadMetrics summarizes per-core pipe counts.
func (a *Assignment) LoadMetrics() Metrics {
	m := Metrics{LinksPerCore: make([]int, a.Cores)}
	for _, c := range a.Owner {
		if c >= 0 && c < a.Cores {
			m.LinksPerCore[c]++
		}
	}
	maxv, sum := 0, 0
	for _, v := range m.LinksPerCore {
		sum += v
		if v > maxv {
			maxv = v
		}
	}
	if sum > 0 {
		m.Imbalance = float64(maxv) * float64(a.Cores) / float64(sum)
	}
	return m
}

// CrossingStats computes, over all VN-pair routes in the matrix, the total
// and mean number of core crossings a packet incurs (§3.3: each crossing
// negatively impacts scalability).
func CrossingStats(m *bind.Matrix, pod *bind.POD, ingress func(src pipes.VN) int) (total int, mean float64) {
	n := m.NumVNs()
	count := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r, ok := m.Lookup(pipes.VN(i), pipes.VN(j))
			if !ok {
				continue
			}
			ing := 0
			if ingress != nil {
				ing = ingress(pipes.VN(i))
			} else if len(r) > 0 {
				ing = pod.Owner(r[0])
			}
			total += pod.Crossings(ing, r)
			count++
		}
	}
	if count > 0 {
		mean = float64(total) / float64(count)
	}
	return total, mean
}
