// Package routing implements the paper's §2.3 work-in-progress: emulating
// routing protocols *within* the ModelNet core. The base system assumes a
// "perfect" routing protocol that recomputes shortest paths instantly on
// failure; this module instead runs a distance-vector protocol (RIP-style:
// periodic advertisements, triggered updates, split horizon with poisoned
// reverse, route-invalidation timeouts) whose messages propagate with the
// latency and bandwidth cost of the topology's own links — "capturing the
// latency and communication overhead associated with routing protocol code
// while leaving the edge hosts unmodified."
//
// The module exposes a live bind.Table: packet routes follow the protocol's
// current (possibly stale or converging) tables, so applications observe
// realistic convergence transients after failures.
package routing

import (
	"math"

	"modelnet/internal/bind"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// Infinity is the distance-vector metric bound ("16 is infinity" in RIP;
// here metrics are latency-based so the bound is a latency).
const Infinity = 1e6

// Config tunes the protocol.
type Config struct {
	AdvertiseEvery vtime.Duration // periodic full advertisement (default 5 s)
	TriggeredDelay vtime.Duration // damping before a triggered update (default 200 ms)
	ExpireAfter    vtime.Duration // route staleness bound (default 3 advertisement periods)
	EntryBytes     int            // advertisement size per route entry (default 20)
	MaxHops        int            // lookup walk bound (default 64)
}

func (c *Config) defaults() {
	if c.AdvertiseEvery <= 0 {
		c.AdvertiseEvery = 5 * vtime.Second
	}
	if c.TriggeredDelay <= 0 {
		c.TriggeredDelay = 200 * vtime.Millisecond
	}
	if c.ExpireAfter <= 0 {
		c.ExpireAfter = 3 * c.AdvertiseEvery
	}
	if c.EntryBytes <= 0 {
		c.EntryBytes = 20
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 64
	}
}

// rtEntry is one route in a node's table.
type rtEntry struct {
	metric   float64         // accumulated link weight (latency + ε)
	nextLink topology.LinkID // -1 for self
	learned  vtime.Time
}

// node is one router's protocol instance.
type node struct {
	id      topology.NodeID
	table   map[topology.NodeID]rtEntry
	trigger bool // triggered update pending
}

// DV is the distance-vector module over a distilled topology.
type DV struct {
	cfg   Config
	sched *vtime.Scheduler
	g     *topology.Graph
	nodes []*node
	down  map[topology.LinkID]bool

	vnHomes []topology.NodeID

	ticker *vtime.Ticker

	// Stats: protocol overhead, as the paper wants captured.
	Messages  uint64
	Bytes     uint64
	Triggered uint64
}

// New builds the module for g, serving routes between the given VN homes.
func New(sched *vtime.Scheduler, g *topology.Graph, vnHomes []topology.NodeID, cfg Config) *DV {
	cfg.defaults()
	d := &DV{
		cfg:     cfg,
		sched:   sched,
		g:       g,
		down:    make(map[topology.LinkID]bool),
		vnHomes: vnHomes,
	}
	d.nodes = make([]*node, g.NumNodes())
	for i := range d.nodes {
		n := &node{id: topology.NodeID(i), table: make(map[topology.NodeID]rtEntry)}
		n.table[n.id] = rtEntry{metric: 0, nextLink: -1}
		d.nodes[i] = n
	}
	d.ticker = vtime.NewTicker(sched, cfg.AdvertiseEvery, d.advertiseAll)
	return d
}

// Start begins periodic advertisements (the first fires immediately so the
// network converges from cold start without waiting a full period).
func (d *DV) Start() {
	d.advertiseAll()
	d.ticker.Start()
}

// Stop halts the protocol.
func (d *DV) Stop() { d.ticker.Stop() }

func linkWeight(l topology.Link) float64 { return l.Attr.LatencySec + 1e-6 }

// SetLinkDown fails or heals a link. The protocol notices immediately at
// the link's endpoint (a carrier-loss signal) and floods triggered
// updates; the rest of the network learns at protocol speed.
func (d *DV) SetLinkDown(lid topology.LinkID, down bool) {
	if down {
		d.down[lid] = true
	} else {
		delete(d.down, lid)
	}
	src := d.g.Links[lid].Src
	n := d.nodes[src]
	if down {
		// Invalidate routes using the link; poison them until
		// re-learned.
		for dst, e := range n.table {
			if e.nextLink == lid {
				e.metric = Infinity
				n.table[dst] = e
			}
		}
	}
	d.scheduleTriggered(n)
}

// advertiseAll sends every node's vector to each neighbor.
func (d *DV) advertiseAll() {
	now := d.sched.Now()
	for _, n := range d.nodes {
		d.expireStale(n, now)
		d.advertise(n)
	}
}

// expireStale poisons entries not refreshed within the staleness bound
// (their advertiser has gone quiet).
func (d *DV) expireStale(n *node, now vtime.Time) {
	for dst, e := range n.table {
		if dst == n.id || e.metric >= Infinity {
			continue
		}
		if now.Sub(e.learned) > d.cfg.ExpireAfter {
			e.metric = Infinity
			n.table[dst] = e
		}
	}
}

// advertise sends n's vector over each live outgoing link, applying split
// horizon with poisoned reverse, with per-link propagation delay.
func (d *DV) advertise(n *node) {
	for _, lid := range d.g.Out(n.id) {
		if d.down[lid] {
			continue
		}
		l := d.g.Links[lid]
		// Find the reverse link (neighbor -> n) that the neighbor would
		// use to reach us; poisoned reverse applies to routes via that.
		vector := make(map[topology.NodeID]float64, len(n.table))
		for dst, e := range n.table {
			m := e.metric
			if e.nextLink >= 0 && d.g.Links[e.nextLink].Dst == l.Dst {
				m = Infinity // poisoned reverse: learned via this neighbor
			}
			vector[dst] = m
		}
		size := len(vector) * d.cfg.EntryBytes
		d.Messages++
		d.Bytes += uint64(size)
		// Propagation + serialization over the real link attributes.
		delay := vtime.DurationOf(l.Attr.LatencySec + float64(size*8)/l.Attr.BandwidthBps)
		to := d.nodes[l.Dst]
		w := linkWeight(l)
		// The receiver reaches us through the reverse link.
		rev, hasRev := d.g.FindLink(l.Dst, l.Src)
		d.sched.After(delay, func() {
			if !hasRev || d.down[rev.ID] {
				return
			}
			d.receive(to, rev.ID, w, vector)
		})
	}
}

// receive merges a neighbor's vector arriving over link viaLink (receiver's
// link toward the advertiser) with link weight w.
func (d *DV) receive(n *node, viaLink topology.LinkID, w float64, vector map[topology.NodeID]float64) {
	now := d.sched.Now()
	changed := false
	for dst, m := range vector {
		if dst == n.id {
			continue
		}
		cand := m + w
		if cand > Infinity {
			cand = Infinity
		}
		cur, ok := n.table[dst]
		switch {
		case !ok || cand < cur.metric-1e-12:
			n.table[dst] = rtEntry{metric: cand, nextLink: viaLink, learned: now}
			if !ok || cur.metric < Infinity || cand < Infinity {
				changed = true
			}
		case cur.nextLink == viaLink:
			// Update from the current next hop is authoritative, better
			// or worse.
			if math.Abs(cand-cur.metric) > 1e-12 {
				changed = true
			}
			n.table[dst] = rtEntry{metric: cand, nextLink: viaLink, learned: now}
		}
	}
	if changed {
		d.scheduleTriggered(n)
	}
}

// scheduleTriggered arranges a damped triggered update from n.
func (d *DV) scheduleTriggered(n *node) {
	if n.trigger {
		return
	}
	n.trigger = true
	d.Triggered++
	d.sched.After(d.cfg.TriggeredDelay, func() {
		n.trigger = false
		d.advertise(n)
	})
}

// Metric returns node src's current metric to dst (Infinity if unknown).
func (d *DV) Metric(src, dst topology.NodeID) float64 {
	e, ok := d.nodes[src].table[dst]
	if !ok {
		return Infinity
	}
	return e.metric
}

// Converged reports whether every node's metric to every VN home matches
// the true shortest-path distance within tolerance.
func (d *DV) Converged() bool {
	for _, home := range d.vnHomes {
		_, dist := shortestWith(d.g, home, d.down)
		for _, n := range d.nodes {
			want := dist[n.id]
			got := d.Metric(n.id, home)
			if math.IsInf(want, 1) {
				if got < Infinity {
					return false
				}
				continue
			}
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
	}
	return true
}

// shortestWith is Dijkstra toward `to` over the reversed graph... computed
// as distances FROM `to` on the reverse orientation: for symmetric duplex
// topologies (the normal case) this equals distance to `to`.
func shortestWith(g *topology.Graph, to topology.NodeID, down map[topology.LinkID]bool) ([]topology.LinkID, []float64) {
	gg := g.Clone()
	for i := range gg.Links {
		if down[gg.Links[i].ID] {
			gg.Links[i].Attr.LatencySec = Infinity
		}
	}
	prev, dist := bind.ShortestPaths(gg, to)
	for i, v := range dist {
		if v >= Infinity {
			dist[i] = math.Inf(1)
		}
	}
	return prev, dist
}

// Table adapts the live protocol state to bind.Table: a lookup walks
// next-hop links from the source VN's home toward the destination's. The
// walk reflects whatever the protocol currently believes — including
// transient loops and black holes during convergence, which is the point.
type Table struct {
	d *DV
}

// Table returns the live routing table view.
func (d *DV) Table() *Table { return &Table{d: d} }

// Lookup implements bind.Table.
func (t *Table) Lookup(src, dst pipes.VN) (bind.Route, bool) {
	d := t.d
	if int(src) >= len(d.vnHomes) || int(dst) >= len(d.vnHomes) || src < 0 || dst < 0 {
		return nil, false
	}
	if src == dst {
		return bind.Route{}, true
	}
	from := d.vnHomes[src]
	to := d.vnHomes[dst]
	var route bind.Route
	cur := from
	for hop := 0; cur != to; hop++ {
		if hop >= d.cfg.MaxHops {
			return nil, false // loop or unconverged path
		}
		e, ok := d.nodes[cur].table[to]
		if !ok || e.metric >= Infinity || e.nextLink < 0 {
			return nil, false // no route (black hole)
		}
		route = append(route, pipes.ID(e.nextLink))
		cur = d.g.Links[e.nextLink].Dst
	}
	return route, true
}

// NumVNs implements bind.Table.
func (t *Table) NumVNs() int { return len(t.d.vnHomes) }
