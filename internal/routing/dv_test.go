package routing

import (
	"fmt"
	"strings"
	"testing"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

func attrs(mbps, ms float64) topology.LinkAttrs {
	return topology.LinkAttrs{BandwidthBps: mbps * 1e6, LatencySec: ms * 1e-3, QueuePkts: 30}
}

func TestDVConvergesFromColdStart(t *testing.T) {
	g := topology.Ring(6, 2, attrs(20, 5), attrs(2, 1))
	sched := vtime.NewScheduler()
	d := New(sched, g, g.Clients(), Config{})
	d.Start()
	sched.RunUntil(vtime.Time(60 * vtime.Second))
	if !d.Converged() {
		t.Fatal("DV did not converge to shortest paths")
	}
	if d.Messages == 0 || d.Bytes == 0 {
		t.Error("no protocol overhead recorded")
	}
}

func TestDVTableMatchesMatrixAfterConvergence(t *testing.T) {
	g := topology.Ring(5, 2, attrs(20, 5), attrs(2, 1))
	homes := g.Clients()
	sched := vtime.NewScheduler()
	d := New(sched, g, homes, Config{})
	d.Start()
	sched.RunUntil(vtime.Time(60 * vtime.Second))

	m, err := bind.BuildMatrix(g, homes)
	if err != nil {
		t.Fatal(err)
	}
	lat := func(r bind.Route) float64 {
		total := 0.0
		for _, pid := range r {
			total += g.Links[pid].Attr.LatencySec
		}
		return total
	}
	for i := 0; i < len(homes); i++ {
		for j := 0; j < len(homes); j++ {
			rd, okd := d.Table().Lookup(pipes.VN(i), pipes.VN(j))
			rm, okm := m.Lookup(pipes.VN(i), pipes.VN(j))
			if okd != okm {
				t.Fatalf("lookup(%d,%d): dv %v matrix %v", i, j, okd, okm)
			}
			if !okd {
				continue
			}
			if lat(rd) > lat(rm)+1e-9 {
				t.Fatalf("dv route %d->%d slower than optimal: %v vs %v", i, j, lat(rd), lat(rm))
			}
		}
	}
}

func TestDVReconvergesAfterFailure(t *testing.T) {
	// Diamond: fast path through `top`, slow path through `bot`. Fail the
	// fast path and watch the protocol reroute.
	g := topology.New()
	a := g.AddNode(topology.Client, "a")
	top := g.AddNode(topology.Stub, "top")
	bot := g.AddNode(topology.Stub, "bot")
	b := g.AddNode(topology.Client, "b")
	f1, f1r := g.AddDuplex(a, top, attrs(10, 1))
	g.AddDuplex(top, b, attrs(10, 1))
	g.AddDuplex(a, bot, attrs(10, 20))
	g.AddDuplex(bot, b, attrs(10, 20))
	_ = f1r
	homes := []topology.NodeID{a, b}
	sched := vtime.NewScheduler()
	d := New(sched, g, homes, Config{})
	d.Start()
	sched.RunUntil(vtime.Time(30 * vtime.Second))

	r, ok := d.Table().Lookup(0, 1)
	if !ok || len(r) != 2 || pipes.ID(f1) != r[0] {
		t.Fatalf("initial route should use the fast path: %v %v", r, ok)
	}
	// Fail a->top (both directions, as a physical link cut would).
	d.SetLinkDown(f1, true)
	d.SetLinkDown(f1r, true)
	// Immediately after, the route is withdrawn or rerouted; eventually it
	// settles on the slow path.
	sched.RunUntil(vtime.Time(90 * vtime.Second))
	r, ok = d.Table().Lookup(0, 1)
	if !ok {
		t.Fatal("no route after reconvergence")
	}
	for _, pid := range r {
		if pid == pipes.ID(f1) {
			t.Fatal("route still uses the failed link")
		}
	}
	if len(r) != 2 || g.Links[r[0]].Dst != bot {
		t.Fatalf("route did not move to the slow path: %v", r)
	}
	// Heal: the fast path returns.
	d.SetLinkDown(f1, false)
	d.SetLinkDown(f1r, false)
	sched.RunUntil(vtime.Time(180 * vtime.Second))
	r, _ = d.Table().Lookup(0, 1)
	if len(r) != 2 || g.Links[r[0]].Dst != top {
		t.Fatalf("route did not return to the fast path after heal: %v", r)
	}
}

func TestDVTriggeredBeatsPeriodic(t *testing.T) {
	// Convergence after failure should happen in ~triggered-update time,
	// far faster than the advertisement period.
	g := topology.Ring(8, 1, attrs(20, 5), attrs(2, 1))
	homes := g.Clients()
	sched := vtime.NewScheduler()
	cfg := Config{AdvertiseEvery: 30 * vtime.Second}
	d := New(sched, g, homes, cfg)
	d.Start()
	sched.RunUntil(vtime.Time(120 * vtime.Second))
	if !d.Converged() {
		t.Fatal("not converged initially")
	}
	// Fail one ring segment (both directions).
	var lid topology.LinkID = -1
	for _, l := range g.Links {
		if g.Class(l) == topology.StubStub {
			lid = l.ID
			break
		}
	}
	rev, _ := g.FindLink(g.Links[lid].Dst, g.Links[lid].Src)
	at := sched.Now()
	d.SetLinkDown(lid, true)
	d.SetLinkDown(rev.ID, true)
	for !d.Converged() && sched.Now().Sub(at) < vtime.Duration(120*vtime.Second) {
		sched.RunFor(500 * vtime.Millisecond)
	}
	el := sched.Now().Sub(at)
	if !d.Converged() {
		t.Fatalf("did not reconverge within 120s")
	}
	if el > 20*vtime.Second {
		t.Errorf("reconvergence took %v; triggered updates should beat the 30s period", el)
	}
}

// dvSnapshot renders every home-pair route as one comparable string.
func dvSnapshot(d *DV, nVNs int) string {
	var b strings.Builder
	for i := 0; i < nVNs; i++ {
		for j := 0; j < nVNs; j++ {
			r, ok := d.Table().Lookup(pipes.VN(i), pipes.VN(j))
			fmt.Fprintf(&b, "%d->%d ok=%v route=%v\n", i, j, ok, r)
		}
	}
	return b.String()
}

// ringSegment returns both directions of the first router-to-router link.
func ringSegment(g *topology.Graph) (topology.LinkID, topology.LinkID) {
	for _, l := range g.Links {
		if g.Class(l) == topology.StubStub {
			rev, ok := g.FindLink(l.Dst, l.Src)
			if !ok {
				panic("ring segment has no reverse")
			}
			return l.ID, rev.ID
		}
	}
	panic("no ring segment")
}

// Reconvergence is deterministic: the table the protocol settles on after a
// failure/heal cycle does not depend on the order the two directions of the
// cut were reported in, nor on how coarsely the scheduler was stepped while
// it reconverged. Link dynamics replays depend on this — the same scripted
// cut must yield identical routes in every execution mode.
func TestDVReconvergenceDeterministic(t *testing.T) {
	run := func(reverseCut bool, step vtime.Duration) (string, string) {
		g := topology.Ring(6, 2, attrs(20, 5), attrs(2, 1))
		homes := g.Clients()
		sched := vtime.NewScheduler()
		d := New(sched, g, homes, Config{})
		d.Start()
		sched.RunUntil(vtime.Time(30 * vtime.Second))
		if !d.Converged() {
			t.Fatal("not converged before the cut")
		}
		fwd, rev := ringSegment(g)
		if reverseCut {
			fwd, rev = rev, fwd
		}
		d.SetLinkDown(fwd, true)
		d.SetLinkDown(rev, true)
		for sched.Now() < vtime.Time(120*vtime.Second) {
			sched.RunFor(step)
		}
		if !d.Converged() {
			t.Fatal("not reconverged after the cut")
		}
		failed := dvSnapshot(d, len(homes))
		d.SetLinkDown(fwd, false)
		d.SetLinkDown(rev, false)
		for sched.Now() < vtime.Time(240*vtime.Second) {
			sched.RunFor(step)
		}
		if !d.Converged() {
			t.Fatal("not reconverged after the heal")
		}
		return failed, dvSnapshot(d, len(homes))
	}
	failA, healA := run(false, 500*vtime.Millisecond)
	failB, healB := run(true, 7300*vtime.Millisecond)
	if failA != failB {
		t.Errorf("post-failure tables differ across recompute orderings:\n%s\nvs\n%s", failA, failB)
	}
	if healA != healB {
		t.Errorf("post-heal tables differ across recompute orderings:\n%s\nvs\n%s", healA, healB)
	}
}

// A cut that isolates a router leaves its VN unreachable — lookups fail
// rather than loop — and the protocol still reports convergence (the
// shortest-path reference also sees no route). Healing restores every
// pre-failure metric; routes may differ only on equal-cost ties, where DV
// (like RIP) keeps the incumbent next hop.
func TestDVUnreachablePartition(t *testing.T) {
	g := topology.Ring(4, 1, attrs(20, 5), attrs(2, 1))
	homes := g.Clients()
	sched := vtime.NewScheduler()
	d := New(sched, g, homes, Config{})
	d.Start()
	sched.RunUntil(vtime.Time(30 * vtime.Second))
	if !d.Converged() {
		t.Fatal("not converged initially")
	}
	metrics := func() string {
		var b strings.Builder
		for _, src := range homes {
			for _, dst := range homes {
				fmt.Fprintf(&b, "%d->%d %.9f\n", src, dst, d.Metric(src, dst))
			}
		}
		return b.String()
	}
	before := metrics()

	// Cut every ring segment incident to one router, isolating it (its
	// access link still stands, so its VN keeps a home with no way out).
	var island topology.NodeID = -1
	for _, l := range g.Links {
		if g.Class(l) == topology.StubStub {
			island = l.Src
			break
		}
	}
	var cut []topology.LinkID
	for _, l := range g.Links {
		if g.Class(l) == topology.StubStub && (l.Src == island || l.Dst == island) {
			cut = append(cut, l.ID)
		}
	}
	if len(cut) != 4 {
		t.Fatalf("expected 4 directed ring segments at the island, got %d", len(cut))
	}
	for _, lid := range cut {
		d.SetLinkDown(lid, true)
	}
	sched.RunUntil(vtime.Time(180 * vtime.Second))
	if !d.Converged() {
		t.Fatal("did not converge with the router isolated")
	}
	// The island's VN: the client whose access link lands on the island.
	islandVN := -1
	for i, home := range homes {
		if home == island {
			islandVN = i
		}
	}
	// homes are client NodeIDs; resolve via the access link instead when
	// homes name clients rather than routers.
	if islandVN == -1 {
		for i, home := range homes {
			for _, l := range g.Links {
				if l.Src == home && l.Dst == island {
					islandVN = i
				}
			}
		}
	}
	if islandVN == -1 {
		t.Fatal("no VN homed at the isolated router")
	}
	for j := range homes {
		if j == islandVN {
			continue
		}
		if _, ok := d.Table().Lookup(pipes.VN(j), pipes.VN(islandVN)); ok {
			t.Errorf("lookup %d->%d returned a route across the partition", j, islandVN)
		}
		if _, ok := d.Table().Lookup(pipes.VN(islandVN), pipes.VN(j)); ok {
			t.Errorf("lookup %d->%d returned a route across the partition", islandVN, j)
		}
	}

	for _, lid := range cut {
		d.SetLinkDown(lid, false)
	}
	sched.RunUntil(vtime.Time(420 * vtime.Second))
	if !d.Converged() {
		t.Fatal("did not reconverge after the heal")
	}
	if after := metrics(); after != before {
		t.Errorf("post-heal metrics differ from pre-failure metrics:\n%s\nvs\n%s", after, before)
	}
	for i := range homes {
		for j := range homes {
			if _, ok := d.Table().Lookup(pipes.VN(i), pipes.VN(j)); !ok {
				t.Errorf("lookup %d->%d unroutable after heal", i, j)
			}
		}
	}
}

type regAdapter struct{ e *emucore.Emulator }

func (r regAdapter) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	r.e.RegisterVN(vn, emucore.DeliverFunc(fn))
}

func TestDVDrivesLiveEmulation(t *testing.T) {
	// Wire the DV table into an emulator: a UDP stream sees an outage on
	// link failure and recovers once the protocol reconverges — the
	// convergence transient the perfect-routing assumption hides.
	g := topology.New()
	a := g.AddNode(topology.Client, "a")
	top := g.AddNode(topology.Stub, "top")
	bot := g.AddNode(topology.Stub, "bot")
	b := g.AddNode(topology.Client, "b")
	f1, f1r := g.AddDuplex(a, top, attrs(10, 1))
	g.AddDuplex(top, b, attrs(10, 1))
	g.AddDuplex(a, bot, attrs(10, 5))
	g.AddDuplex(bot, b, attrs(10, 5))

	bnd, err := bind.Bind(g, bind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, g, bnd, nil, emucore.IdealProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d := New(sched, g, bnd.VNHome, Config{AdvertiseEvery: 2 * vtime.Second})
	emu.SetTable(d.Table())
	d.Start()

	h0 := netstack.NewHost(0, sched, emu, regAdapter{emu})
	h1 := netstack.NewHost(1, sched, emu, regAdapter{emu})
	var arrivals []vtime.Time
	h1.OpenUDP(9, func(netstack.Endpoint, *netstack.Datagram) {
		arrivals = append(arrivals, sched.Now())
	})
	s, _ := h0.OpenUDP(0, nil)
	tick := vtime.NewTicker(sched, 50*vtime.Millisecond, func() {
		s.SendTo(netstack.Endpoint{VN: 1, Port: 9}, 100, nil)
	})
	// Let the protocol converge, then start traffic, then cut the link.
	sched.RunUntil(vtime.Time(10 * vtime.Second))
	tick.Start()
	failAt := vtime.Time(20 * vtime.Second)
	sched.At(failAt, func() {
		d.SetLinkDown(f1, true)
		d.SetLinkDown(f1r, true)
		// Packets already following stale routes onto the dead link must
		// vanish: model the cut at the pipe level too.
		p := emu.Pipe(pipes.ID(f1)).Params()
		p.LossRate = 0.999999
		emu.SetPipeParams(pipes.ID(f1), p)
	})
	sched.RunUntil(vtime.Time(60 * vtime.Second))
	tick.Stop()

	if len(arrivals) == 0 {
		t.Fatal("no traffic delivered")
	}
	// Find the outage: the largest inter-arrival gap after the failure.
	var outage vtime.Duration
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < failAt {
			continue
		}
		if gap := arrivals[i].Sub(arrivals[i-1]); gap > outage {
			outage = gap
		}
	}
	if outage < vtime.Duration(100*vtime.Millisecond) {
		t.Errorf("no visible outage (%v) — convergence transient missing", outage)
	}
	if outage > vtime.Duration(15*vtime.Second) {
		t.Errorf("outage %v too long — protocol failed to reroute", outage)
	}
	last := arrivals[len(arrivals)-1]
	if last < vtime.Time(55*vtime.Second) {
		t.Errorf("traffic never recovered: last arrival %v", last)
	}
}
