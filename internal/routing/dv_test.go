package routing

import (
	"testing"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

func attrs(mbps, ms float64) topology.LinkAttrs {
	return topology.LinkAttrs{BandwidthBps: mbps * 1e6, LatencySec: ms * 1e-3, QueuePkts: 30}
}

func TestDVConvergesFromColdStart(t *testing.T) {
	g := topology.Ring(6, 2, attrs(20, 5), attrs(2, 1))
	sched := vtime.NewScheduler()
	d := New(sched, g, g.Clients(), Config{})
	d.Start()
	sched.RunUntil(vtime.Time(60 * vtime.Second))
	if !d.Converged() {
		t.Fatal("DV did not converge to shortest paths")
	}
	if d.Messages == 0 || d.Bytes == 0 {
		t.Error("no protocol overhead recorded")
	}
}

func TestDVTableMatchesMatrixAfterConvergence(t *testing.T) {
	g := topology.Ring(5, 2, attrs(20, 5), attrs(2, 1))
	homes := g.Clients()
	sched := vtime.NewScheduler()
	d := New(sched, g, homes, Config{})
	d.Start()
	sched.RunUntil(vtime.Time(60 * vtime.Second))

	m, err := bind.BuildMatrix(g, homes)
	if err != nil {
		t.Fatal(err)
	}
	lat := func(r bind.Route) float64 {
		total := 0.0
		for _, pid := range r {
			total += g.Links[pid].Attr.LatencySec
		}
		return total
	}
	for i := 0; i < len(homes); i++ {
		for j := 0; j < len(homes); j++ {
			rd, okd := d.Table().Lookup(pipes.VN(i), pipes.VN(j))
			rm, okm := m.Lookup(pipes.VN(i), pipes.VN(j))
			if okd != okm {
				t.Fatalf("lookup(%d,%d): dv %v matrix %v", i, j, okd, okm)
			}
			if !okd {
				continue
			}
			if lat(rd) > lat(rm)+1e-9 {
				t.Fatalf("dv route %d->%d slower than optimal: %v vs %v", i, j, lat(rd), lat(rm))
			}
		}
	}
}

func TestDVReconvergesAfterFailure(t *testing.T) {
	// Diamond: fast path through `top`, slow path through `bot`. Fail the
	// fast path and watch the protocol reroute.
	g := topology.New()
	a := g.AddNode(topology.Client, "a")
	top := g.AddNode(topology.Stub, "top")
	bot := g.AddNode(topology.Stub, "bot")
	b := g.AddNode(topology.Client, "b")
	f1, f1r := g.AddDuplex(a, top, attrs(10, 1))
	g.AddDuplex(top, b, attrs(10, 1))
	g.AddDuplex(a, bot, attrs(10, 20))
	g.AddDuplex(bot, b, attrs(10, 20))
	_ = f1r
	homes := []topology.NodeID{a, b}
	sched := vtime.NewScheduler()
	d := New(sched, g, homes, Config{})
	d.Start()
	sched.RunUntil(vtime.Time(30 * vtime.Second))

	r, ok := d.Table().Lookup(0, 1)
	if !ok || len(r) != 2 || pipes.ID(f1) != r[0] {
		t.Fatalf("initial route should use the fast path: %v %v", r, ok)
	}
	// Fail a->top (both directions, as a physical link cut would).
	d.SetLinkDown(f1, true)
	d.SetLinkDown(f1r, true)
	// Immediately after, the route is withdrawn or rerouted; eventually it
	// settles on the slow path.
	sched.RunUntil(vtime.Time(90 * vtime.Second))
	r, ok = d.Table().Lookup(0, 1)
	if !ok {
		t.Fatal("no route after reconvergence")
	}
	for _, pid := range r {
		if pid == pipes.ID(f1) {
			t.Fatal("route still uses the failed link")
		}
	}
	if len(r) != 2 || g.Links[r[0]].Dst != bot {
		t.Fatalf("route did not move to the slow path: %v", r)
	}
	// Heal: the fast path returns.
	d.SetLinkDown(f1, false)
	d.SetLinkDown(f1r, false)
	sched.RunUntil(vtime.Time(180 * vtime.Second))
	r, _ = d.Table().Lookup(0, 1)
	if len(r) != 2 || g.Links[r[0]].Dst != top {
		t.Fatalf("route did not return to the fast path after heal: %v", r)
	}
}

func TestDVTriggeredBeatsPeriodic(t *testing.T) {
	// Convergence after failure should happen in ~triggered-update time,
	// far faster than the advertisement period.
	g := topology.Ring(8, 1, attrs(20, 5), attrs(2, 1))
	homes := g.Clients()
	sched := vtime.NewScheduler()
	cfg := Config{AdvertiseEvery: 30 * vtime.Second}
	d := New(sched, g, homes, cfg)
	d.Start()
	sched.RunUntil(vtime.Time(120 * vtime.Second))
	if !d.Converged() {
		t.Fatal("not converged initially")
	}
	// Fail one ring segment (both directions).
	var lid topology.LinkID = -1
	for _, l := range g.Links {
		if g.Class(l) == topology.StubStub {
			lid = l.ID
			break
		}
	}
	rev, _ := g.FindLink(g.Links[lid].Dst, g.Links[lid].Src)
	at := sched.Now()
	d.SetLinkDown(lid, true)
	d.SetLinkDown(rev.ID, true)
	for !d.Converged() && sched.Now().Sub(at) < vtime.Duration(120*vtime.Second) {
		sched.RunFor(500 * vtime.Millisecond)
	}
	el := sched.Now().Sub(at)
	if !d.Converged() {
		t.Fatalf("did not reconverge within 120s")
	}
	if el > 20*vtime.Second {
		t.Errorf("reconvergence took %v; triggered updates should beat the 30s period", el)
	}
}

type regAdapter struct{ e *emucore.Emulator }

func (r regAdapter) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	r.e.RegisterVN(vn, emucore.DeliverFunc(fn))
}

func TestDVDrivesLiveEmulation(t *testing.T) {
	// Wire the DV table into an emulator: a UDP stream sees an outage on
	// link failure and recovers once the protocol reconverges — the
	// convergence transient the perfect-routing assumption hides.
	g := topology.New()
	a := g.AddNode(topology.Client, "a")
	top := g.AddNode(topology.Stub, "top")
	bot := g.AddNode(topology.Stub, "bot")
	b := g.AddNode(topology.Client, "b")
	f1, f1r := g.AddDuplex(a, top, attrs(10, 1))
	g.AddDuplex(top, b, attrs(10, 1))
	g.AddDuplex(a, bot, attrs(10, 5))
	g.AddDuplex(bot, b, attrs(10, 5))

	bnd, err := bind.Bind(g, bind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, g, bnd, nil, emucore.IdealProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d := New(sched, g, bnd.VNHome, Config{AdvertiseEvery: 2 * vtime.Second})
	emu.SetTable(d.Table())
	d.Start()

	h0 := netstack.NewHost(0, sched, emu, regAdapter{emu})
	h1 := netstack.NewHost(1, sched, emu, regAdapter{emu})
	var arrivals []vtime.Time
	h1.OpenUDP(9, func(netstack.Endpoint, *netstack.Datagram) {
		arrivals = append(arrivals, sched.Now())
	})
	s, _ := h0.OpenUDP(0, nil)
	tick := vtime.NewTicker(sched, 50*vtime.Millisecond, func() {
		s.SendTo(netstack.Endpoint{VN: 1, Port: 9}, 100, nil)
	})
	// Let the protocol converge, then start traffic, then cut the link.
	sched.RunUntil(vtime.Time(10 * vtime.Second))
	tick.Start()
	failAt := vtime.Time(20 * vtime.Second)
	sched.At(failAt, func() {
		d.SetLinkDown(f1, true)
		d.SetLinkDown(f1r, true)
		// Packets already following stale routes onto the dead link must
		// vanish: model the cut at the pipe level too.
		p := emu.Pipe(pipes.ID(f1)).Params()
		p.LossRate = 0.999999
		emu.SetPipeParams(pipes.ID(f1), p)
	})
	sched.RunUntil(vtime.Time(60 * vtime.Second))
	tick.Stop()

	if len(arrivals) == 0 {
		t.Fatal("no traffic delivered")
	}
	// Find the outage: the largest inter-arrival gap after the failure.
	var outage vtime.Duration
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < failAt {
			continue
		}
		if gap := arrivals[i].Sub(arrivals[i-1]); gap > outage {
			outage = gap
		}
	}
	if outage < vtime.Duration(100*vtime.Millisecond) {
		t.Errorf("no visible outage (%v) — convergence transient missing", outage)
	}
	if outage > vtime.Duration(15*vtime.Second) {
		t.Errorf("outage %v too long — protocol failed to reroute", outage)
	}
	last := arrivals[len(arrivals)-1]
	if last < vtime.Time(55*vtime.Second) {
		t.Errorf("traffic never recovered: last arrival %v", last)
	}
}
