package gnutella

// Federation codecs: gnutella messages ride cross-core packets as datagram
// payloads, so federated runs (internal/fednet) need them as real bytes.
// Registered here, next to the types, so any binary that can run a gnutella
// workload can also federate it.

import (
	"modelnet/internal/fednet/wire"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
)

func putEndpoint(e *wire.Enc, ep netstack.Endpoint) {
	e.I32(int32(ep.VN))
	e.U16(ep.Port)
}

func getEndpoint(d *wire.Dec) netstack.Endpoint {
	return netstack.Endpoint{VN: pipes.VN(d.I32()), Port: d.U16()}
}

func init() {
	wire.RegisterPayload(wire.PayloadApp+0, (*ping)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			m := v.(*ping)
			e.U64(m.ID)
			e.I32(int32(m.TTL))
			putEndpoint(e, m.Origin)
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			m := &ping{ID: d.U64(), TTL: int(d.I32()), Origin: getEndpoint(d)}
			return m, d.Err()
		},
	})
	wire.RegisterPayload(wire.PayloadApp+1, (*pong)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			m := v.(*pong)
			e.U64(m.ID)
			putEndpoint(e, m.From)
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			m := &pong{ID: d.U64(), From: getEndpoint(d)}
			return m, d.Err()
		},
	})
	wire.RegisterPayload(wire.PayloadApp+2, (*query)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			m := v.(*query)
			e.U64(m.ID)
			e.I32(int32(m.TTL))
			e.Str(m.Keyword)
			putEndpoint(e, m.Origin)
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			m := &query{ID: d.U64(), TTL: int(d.I32()), Keyword: d.Str(), Origin: getEndpoint(d)}
			return m, d.Err()
		},
	})
	wire.RegisterPayload(wire.PayloadApp+3, (*queryHit)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			m := v.(*queryHit)
			e.U64(m.ID)
			e.Str(m.Keyword)
			putEndpoint(e, m.From)
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			m := &queryHit{ID: d.U64(), Keyword: d.Str(), From: getEndpoint(d)}
			return m, d.Err()
		},
	})
}
