package gnutella

import (
	"fmt"
	"math/rand"
	"testing"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

type regAdapter struct{ e *emucore.Emulator }

func (r regAdapter) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	r.e.RegisterVN(vn, emucore.DeliverFunc(fn))
}

type swarm struct {
	sched *vtime.Scheduler
	peers []*Peer
}

// newSwarm builds n peers on a star with a random overlay of given degree.
func newSwarm(t *testing.T, n, degree int, seed int64) *swarm {
	t.Helper()
	g := topology.Star(n, topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: 0.002, QueuePkts: 200})
	b, err := bind.Bind(g, bind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, g, b, nil, emucore.IdealProfile(), seed)
	if err != nil {
		t.Fatal(err)
	}
	sw := &swarm{sched: sched}
	for i := 0; i < n; i++ {
		h := netstack.NewHost(pipes.VN(i), sched, emu, regAdapter{emu})
		p, err := NewPeer(h, i, Config{})
		if err != nil {
			t.Fatal(err)
		}
		sw.peers = append(sw.peers, p)
	}
	// Connected overlay: chain + random extra edges.
	rng := rand.New(rand.NewSource(seed))
	connect := func(a, bb int) {
		sw.peers[a].Connect(sw.peers[bb].Addr())
		sw.peers[bb].Connect(sw.peers[a].Addr())
	}
	for i := 1; i < n; i++ {
		connect(i, rng.Intn(i))
	}
	for i := 0; i < n*(degree-2)/2; i++ {
		a, bb := rng.Intn(n), rng.Intn(n)
		if a != bb {
			connect(a, bb)
		}
	}
	return sw
}

func TestQueryFindsSharedFile(t *testing.T) {
	sw := newSwarm(t, 30, 4, 1)
	sw.peers[17].Share("mp3")
	sw.peers[23].Share("mp3")
	hits := map[netstack.Endpoint]bool{}
	sw.peers[0].Query("mp3", func(from netstack.Endpoint) { hits[from] = true })
	sw.sched.RunUntil(vtime.Time(10 * vtime.Second))
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want both sharers", len(hits))
	}
}

func TestQueryMissesAbsentFile(t *testing.T) {
	sw := newSwarm(t, 20, 4, 2)
	hitCount := 0
	sw.peers[0].Query("nothing", func(netstack.Endpoint) { hitCount++ })
	sw.sched.RunUntil(vtime.Time(10 * vtime.Second))
	if hitCount != 0 {
		t.Errorf("phantom hits: %d", hitCount)
	}
}

func TestTTLBoundsFlood(t *testing.T) {
	// A long chain: TTL limits the ping horizon.
	n := 20
	g := topology.Star(n, topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: 0.002, QueuePkts: 200})
	b, _ := bind.Bind(g, bind.Options{})
	sched := vtime.NewScheduler()
	emu, _ := emucore.New(sched, g, b, nil, emucore.IdealProfile(), 3)
	var peers []*Peer
	for i := 0; i < n; i++ {
		h := netstack.NewHost(pipes.VN(i), sched, emu, regAdapter{emu})
		p, _ := NewPeer(h, i, Config{DefaultTTL: 3})
		peers = append(peers, p)
	}
	for i := 1; i < n; i++ {
		peers[i].Connect(peers[i-1].Addr())
		peers[i-1].Connect(peers[i].Addr())
	}
	reached := 0
	peers[0].Reachability(5*vtime.Second, func(c int) { reached = c })
	sched.RunUntil(vtime.Time(10 * vtime.Second))
	if reached != 3 {
		t.Errorf("TTL 3 on a chain reached %d peers, want 3", reached)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Dense overlay: floods must terminate and each peer answers once.
	sw := newSwarm(t, 25, 8, 4)
	count := 0
	sw.peers[0].Ping(func(netstack.Endpoint) { count++ })
	sw.sched.RunUntil(vtime.Time(10 * vtime.Second))
	if count != 24 {
		t.Errorf("pongs = %d, want 24 (each peer once)", count)
	}
	dups := uint64(0)
	for _, p := range sw.peers {
		dups += p.Duplicates
	}
	if dups == 0 {
		t.Error("dense overlay produced no suppressed duplicates — flood broken?")
	}
}

func TestConnectivityAfterPartition(t *testing.T) {
	sw := newSwarm(t, 16, 3, 5)
	full := -1
	sw.peers[0].Reachability(5*vtime.Second, func(c int) { full = c })
	sw.sched.RunUntil(vtime.Time(10 * vtime.Second))
	if full != 15 {
		t.Fatalf("initial reachability %d, want 15", full)
	}
}

func TestMidScaleSwarm(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-scale swarm in -short mode")
	}
	sw := newSwarm(t, 400, 4, 6)
	for i := 0; i < 10; i++ {
		sw.peers[i*17].Share(fmt.Sprintf("file%d", i%3))
	}
	reached := 0
	sw.peers[0].Reachability(20*vtime.Second, func(c int) { reached = c })
	sw.sched.RunUntil(vtime.Time(40 * vtime.Second))
	// TTL 7 on a degree-4 random graph covers most of 400 nodes.
	if reached < 300 {
		t.Errorf("reached %d/399", reached)
	}
}
