// Package gnutella implements an unstructured Gnutella-style peer-to-peer
// network — the paper's largest single experiment ran 10,000 unmodified
// gnutella clients (100 VNs on each of 100 edge nodes) and measured system
// evolution and connectivity. Peers hold a neighbor set and flood pings
// and keyword queries with TTL and duplicate suppression; pongs and query
// hits return directly to the originator.
//
// Real gnutella multiplexes messages over persistent TCP connections; this
// implementation exchanges datagrams among the fixed neighbor set, which
// preserves the flooding dynamics (fan-out, TTL horizon, duplicate load)
// while keeping 10k-node runs cheap. See DESIGN.md.
package gnutella

import (
	"fmt"

	"modelnet/internal/netstack"
	"modelnet/internal/vtime"
)

// Message kinds.
type ping struct {
	ID     uint64
	TTL    int
	Origin netstack.Endpoint
}

type pong struct {
	ID   uint64
	From netstack.Endpoint
}

type query struct {
	ID      uint64
	TTL     int
	Keyword string
	Origin  netstack.Endpoint
}

type queryHit struct {
	ID      uint64
	Keyword string
	From    netstack.Endpoint
}

// Wire sizes.
const (
	pingWire  = 23 // gnutella ping descriptor + header
	pongWire  = 37
	queryWire = 60
	hitWire   = 80
)

// Config tunes a peer.
type Config struct {
	Port       uint16 // default 6346, the gnutella port
	DefaultTTL int    // default 7
}

func (c *Config) defaults() {
	if c.Port == 0 {
		c.Port = 6346
	}
	if c.DefaultTTL <= 0 {
		c.DefaultTTL = 7
	}
}

// Peer is one gnutella servent.
type Peer struct {
	id   int
	cfg  Config
	host *netstack.Host
	sock *netstack.UDPSocket

	neighbors []netstack.Endpoint
	seen      map[uint64]bool
	files     map[string]bool
	nextID    uint64

	// Live result collectors keyed by message ID.
	pongs map[uint64]func(pong)
	hits  map[uint64]func(queryHit)

	Forwarded  uint64
	Duplicates uint64
}

// NewPeer starts a servent on host h.
func NewPeer(h *netstack.Host, id int, cfg Config) (*Peer, error) {
	cfg.defaults()
	p := &Peer{
		id: id, cfg: cfg, host: h,
		seen:  make(map[uint64]bool),
		files: make(map[string]bool),
		pongs: make(map[uint64]func(pong)),
		hits:  make(map[uint64]func(queryHit)),
	}
	sock, err := h.OpenUDP(cfg.Port, p.onDatagram)
	if err != nil {
		return nil, err
	}
	p.sock = sock
	return p, nil
}

// Addr returns the peer's endpoint.
func (p *Peer) Addr() netstack.Endpoint { return p.sock.Addr() }

// Connect adds a neighbor (callers typically connect both directions).
func (p *Peer) Connect(nb netstack.Endpoint) {
	for _, e := range p.neighbors {
		if e == nb {
			return
		}
	}
	p.neighbors = append(p.neighbors, nb)
}

// Neighbors returns the current neighbor set.
func (p *Peer) Neighbors() []netstack.Endpoint { return p.neighbors }

// Share registers a file keyword this peer answers queries for.
func (p *Peer) Share(keyword string) { p.files[keyword] = true }

func (p *Peer) msgID() uint64 {
	p.nextID++
	return uint64(p.id)<<32 | p.nextID
}

// Ping floods a ping; each distinct reachable peer pongs once directly to
// us. onPong fires per pong; use the scheduler to bound collection time.
func (p *Peer) Ping(onPong func(from netstack.Endpoint)) {
	id := p.msgID()
	p.seen[id] = true
	p.pongs[id] = func(pg pong) { onPong(pg.From) }
	msg := &ping{ID: id, TTL: p.cfg.DefaultTTL, Origin: p.Addr()}
	for _, nb := range p.neighbors {
		p.sock.SendTo(nb, pingWire, msg)
	}
}

// Query floods a keyword search; onHit fires for every responding sharer.
func (p *Peer) Query(keyword string, onHit func(from netstack.Endpoint)) {
	id := p.msgID()
	p.seen[id] = true
	p.hits[id] = func(h queryHit) { onHit(h.From) }
	msg := &query{ID: id, TTL: p.cfg.DefaultTTL, Keyword: keyword, Origin: p.Addr()}
	for _, nb := range p.neighbors {
		p.sock.SendTo(nb, queryWire, msg)
	}
}

func (p *Peer) onDatagram(from netstack.Endpoint, dg *netstack.Datagram) {
	switch m := dg.Obj.(type) {
	case *ping:
		if p.seen[m.ID] {
			p.Duplicates++
			return
		}
		p.seen[m.ID] = true
		p.sock.SendTo(m.Origin, pongWire, &pong{ID: m.ID, From: p.Addr()})
		if m.TTL > 1 {
			fwd := &ping{ID: m.ID, TTL: m.TTL - 1, Origin: m.Origin}
			for _, nb := range p.neighbors {
				if nb != from {
					p.sock.SendTo(nb, pingWire, fwd)
					p.Forwarded++
				}
			}
		}
	case *pong:
		if cb, ok := p.pongs[m.ID]; ok {
			cb(*m)
		}
	case *query:
		if p.seen[m.ID] {
			p.Duplicates++
			return
		}
		p.seen[m.ID] = true
		if p.files[m.Keyword] {
			p.sock.SendTo(m.Origin, hitWire, &queryHit{ID: m.ID, Keyword: m.Keyword, From: p.Addr()})
		}
		if m.TTL > 1 {
			fwd := &query{ID: m.ID, TTL: m.TTL - 1, Keyword: m.Keyword, Origin: m.Origin}
			for _, nb := range p.neighbors {
				if nb != from {
					p.sock.SendTo(nb, queryWire, fwd)
					p.Forwarded++
				}
			}
		}
	case *queryHit:
		if cb, ok := p.hits[m.ID]; ok {
			cb(*m)
		}
	}
}

// Reachability floods a ping from peer p and reports, after window, how
// many distinct peers answered — the connectivity metric of the 10k-node
// study.
func (p *Peer) Reachability(window vtime.Duration, done func(count int)) {
	seen := map[netstack.Endpoint]bool{}
	p.Ping(func(from netstack.Endpoint) { seen[from] = true })
	p.host.Scheduler().After(window, func() { done(len(seen)) })
}

func (p *Peer) String() string {
	return fmt.Sprintf("gnutella peer %d (%d neighbors)", p.id, len(p.neighbors))
}
