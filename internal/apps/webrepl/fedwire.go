package webrepl

// Federation codec: the web request rides a TCP message marker
// (netstack.Segment.Msgs), so federated runs encode it through the
// recursive payload registry when a segment crosses a core-process
// boundary.

import (
	"fmt"

	"modelnet/internal/fednet/wire"
)

func init() {
	wire.RegisterPayload(wire.PayloadApp+30, (*request)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			e.I32(int32(v.(*request).Size))
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			m := &request{Size: int(d.I32())}
			if m.Size < 0 {
				return nil, fmt.Errorf("webrepl: request with negative size %d", m.Size)
			}
			return m, d.Err()
		},
	})
}
