package webrepl

import (
	"testing"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/traffic"
	"modelnet/internal/vtime"
)

type regAdapter struct{ e *emucore.Emulator }

func (r regAdapter) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	r.e.RegisterVN(vn, emucore.DeliverFunc(fn))
}

type env struct {
	sched *vtime.Scheduler
	hosts []*netstack.Host
}

func newEnv(t *testing.T, n int, mbps, ms float64) *env {
	t.Helper()
	g := topology.Star(n, topology.LinkAttrs{BandwidthBps: mbps * 1e6, LatencySec: ms * 1e-3, QueuePkts: 50})
	b, err := bind.Bind(g, bind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, g, b, nil, emucore.IdealProfile(), 8)
	if err != nil {
		t.Fatal(err)
	}
	e := &env{sched: sched}
	for i := 0; i < n; i++ {
		e.hosts = append(e.hosts, netstack.NewHost(pipes.VN(i), sched, emu, regAdapter{emu}))
	}
	return e
}

func TestSingleRequest(t *testing.T) {
	e := newEnv(t, 2, 10, 5)
	srv, err := NewServer(e.hosts[1], 80)
	if err != nil {
		t.Fatal(err)
	}
	pb := NewPlayback(e.hosts[:1], func(int) netstack.Endpoint {
		return netstack.Endpoint{VN: 1, Port: 80}
	})
	pb.Run([]traffic.TraceReq{{At: 0, Client: 0, Size: 30000}})
	e.sched.RunUntil(vtime.Time(30 * vtime.Second))
	if len(pb.Results) != 1 || !pb.Results[0].OK {
		t.Fatalf("results: %+v", pb.Results)
	}
	if srv.Requests != 1 || srv.BytesOut != 30000 {
		t.Errorf("server: %d reqs %d bytes", srv.Requests, srv.BytesOut)
	}
	lat := pb.Results[0].Latency
	// 30 KB over 10 Mb/s with 20 ms RTT: at least RTT + 24 ms serialization.
	if lat < vtime.Duration(40*vtime.Millisecond) || lat > vtime.Duration(2*vtime.Second) {
		t.Errorf("latency %v implausible", lat)
	}
}

func TestManyClients(t *testing.T) {
	e := newEnv(t, 9, 10, 2)
	if _, err := NewServer(e.hosts[8], 80); err != nil {
		t.Fatal(err)
	}
	pb := NewPlayback(e.hosts[:8], func(int) netstack.Endpoint {
		return netstack.Endpoint{VN: 8, Port: 80}
	})
	reqs := traffic.Synthesize(traffic.TraceConfig{
		Duration: 10 * vtime.Second, Clients: 8,
		MinRate: 20, MaxRate: 30, MedianSize: 4 << 10, Seed: 2,
	})
	pb.Run(reqs)
	e.sched.RunUntil(vtime.Time(60 * vtime.Second))
	lat, failed := pb.LatencySample()
	if lat.N()+failed != len(reqs) {
		t.Fatalf("accounted %d+%d of %d requests", lat.N(), failed, len(reqs))
	}
	if failed > len(reqs)/20 {
		t.Errorf("%d/%d requests failed", failed, len(reqs))
	}
	if lat.Median() <= 0 {
		t.Error("no latency distribution")
	}
}

func TestServerCPUDelay(t *testing.T) {
	run := func(cpu vtime.Duration) vtime.Duration {
		e := newEnv(t, 2, 100, 1)
		srv, _ := NewServer(e.hosts[1], 80)
		srv.PerRequestCPU = cpu
		pb := NewPlayback(e.hosts[:1], func(int) netstack.Endpoint {
			return netstack.Endpoint{VN: 1, Port: 80}
		})
		pb.Run([]traffic.TraceReq{{At: 0, Client: 0, Size: 1000}})
		e.sched.RunUntil(vtime.Time(10 * vtime.Second))
		if len(pb.Results) != 1 {
			t.Fatal("request lost")
		}
		return pb.Results[0].Latency
	}
	fast := run(0)
	slow := run(100 * vtime.Millisecond)
	if slow < fast+vtime.Duration(90*vtime.Millisecond) {
		t.Errorf("CPU delay not reflected: %v vs %v", fast, slow)
	}
}

func TestContentionRaisesTailLatency(t *testing.T) {
	// A thin server link under heavy load must raise tail latency
	// relative to a light load — the mechanism behind Fig. 11.
	run := func(rate float64) float64 {
		e := newEnv(t, 9, 2, 2) // 2 Mb/s access links: server link is the choke point
		NewServer(e.hosts[8], 80)
		pb := NewPlayback(e.hosts[:8], func(int) netstack.Endpoint {
			return netstack.Endpoint{VN: 8, Port: 80}
		})
		reqs := traffic.Synthesize(traffic.TraceConfig{
			Duration: 20 * vtime.Second, Clients: 8,
			MinRate: rate, MaxRate: rate, MedianSize: 8 << 10, Seed: 5,
		})
		pb.Run(reqs)
		e.sched.RunUntil(vtime.Time(120 * vtime.Second))
		lat, _ := pb.LatencySample()
		return lat.Percentile(90)
	}
	light := run(2)
	heavy := run(25)
	if heavy < light*2 {
		t.Errorf("tail latency under contention %v not ≫ light load %v", heavy, light)
	}
}
