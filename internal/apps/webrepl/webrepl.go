// Package webrepl implements the §5.2 replicated web service study: an
// HTTP/1.0-style static content server and trace-playback clients that
// measure whole-response latency, used to quantify how adding wide-area
// replicas removes transit-link contention.
package webrepl

import (
	"modelnet/internal/netstack"
	"modelnet/internal/stats"
	"modelnet/internal/traffic"
	"modelnet/internal/vtime"
)

// request is the on-wire request body: the client names the response size
// (standing in for a URL whose object has that size).
type request struct {
	Size int
}

const requestWire = 300 // typical HTTP GET + headers

// Server is a static web server: one connection per request, respond, close.
type Server struct {
	host *netstack.Host
	// PerRequestCPU delays each response by modeled server processing
	// time; the paper measured ~10% CPU at full load, so default 0.
	PerRequestCPU vtime.Duration
	// OnConnClose, when non-nil, observes every server-side connection as
	// it closes — the point where its final TCP counters (Retransmits,
	// Timeouts, BytesSent) are complete.
	OnConnClose func(c *netstack.Conn)

	Requests uint64
	BytesOut uint64
}

// NewServer starts serving on (h, port).
func NewServer(h *netstack.Host, port uint16) (*Server, error) {
	s := &Server{host: h}
	_, err := h.Listen(port, func(c *netstack.Conn) netstack.Handlers {
		return netstack.Handlers{
			OnMsg: func(c *netstack.Conn, obj any) {
				req, ok := obj.(*request)
				if !ok {
					c.Abort()
					return
				}
				s.Requests++
				s.BytesOut += uint64(req.Size)
				respond := func() {
					c.WriteCount(req.Size)
					c.Close()
				}
				if s.PerRequestCPU > 0 {
					// The response goes out through this server's host
					// only: price the delay with its VN's owner claim.
					sched := h.Scheduler()
					sched.AtTagged(sched.Now().Add(s.PerRequestCPU), int32(h.VN()), respond)
				} else {
					respond()
				}
			},
			OnClose: func(c *netstack.Conn, err error) {
				if s.OnConnClose != nil {
					s.OnConnClose(c)
				}
			},
		}
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Result is one completed (or failed) request.
type Result struct {
	Client  int
	Size    int
	Start   vtime.Time
	Latency vtime.Duration
	OK      bool
}

// Playback drives a trace against replicas and collects latencies.
type Playback struct {
	hosts  []*netstack.Host // client VN hosts, indexed by trace client id
	target func(client int) netstack.Endpoint

	// OnConnClose, when non-nil, observes every client-side connection as
	// it closes (final TCP counters complete).
	OnConnClose func(c *netstack.Conn)

	Results []Result
}

// NewPlayback prepares a trace playback: hosts[i] serves trace client i
// (modulo len), and target maps a client to its replica.
func NewPlayback(hosts []*netstack.Host, target func(client int) netstack.Endpoint) *Playback {
	return &Playback{hosts: hosts, target: target}
}

// Run schedules every request in the trace; call the scheduler afterwards.
// Each request opens a fresh connection (HTTP/1.0 without keep-alive, as
// era-appropriate), sends the request, and times arrival of the complete
// response.
func (pb *Playback) Run(reqs []traffic.TraceReq) {
	for _, r := range reqs {
		r := r
		h := pb.hosts[r.Client%len(pb.hosts)]
		// A request dials from h and only h, so the far-future trace entry
		// carries h's owner claim: a shard whose only pending work is trace
		// playback can be granted a window all the way to the request plus
		// its VN's crossing distance.
		h.Scheduler().AtTagged(r.At, int32(h.VN()), func() { pb.issue(h, r) })
	}
}

func (pb *Playback) issue(h *netstack.Host, tr traffic.TraceReq) {
	start := h.Scheduler().Now()
	res := Result{Client: tr.Client, Size: tr.Size, Start: start}
	got := 0
	finished := false
	finish := func(ok bool) {
		if finished {
			return
		}
		finished = true
		res.OK = ok
		res.Latency = h.Scheduler().Now().Sub(start)
		pb.Results = append(pb.Results, res)
	}
	c := h.Dial(pb.target(tr.Client), netstack.Handlers{
		OnData: func(c *netstack.Conn, n int, data []byte) {
			got += n
			if got >= tr.Size {
				finish(true)
			}
		},
		OnClose: func(c *netstack.Conn, err error) {
			finish(err == nil && got >= tr.Size)
			if pb.OnConnClose != nil {
				pb.OnConnClose(c)
			}
		},
	})
	c.WriteMsg(&request{Size: tr.Size}, requestWire)
	c.Close() // half-close: request sent, await response
}

// LatencySample returns the latency distribution (seconds) of successful
// requests; failures are reported separately.
func (pb *Playback) LatencySample() (lat *stats.Sample, failed int) {
	lat = &stats.Sample{}
	for _, r := range pb.Results {
		if r.OK {
			lat.Add(r.Latency.Seconds())
		} else {
			failed++
		}
	}
	return lat, failed
}
