package acdc

import "math"

// Offline reference computations for the §5.3 evaluation: the minimum-cost
// spanning tree over the pairwise path-cost matrix (the paper's "cost
// relative to MST" denominator), the shortest-path-tree delay (the paper's
// SPT curve), and walkers that score a live overlay tree under the
// network's *current* delays.

// MSTCost returns the cost of a minimum spanning tree over the complete
// member graph with edge costs cost(i,j), by Prim's algorithm.
func MSTCost(n int, cost func(a, b int) float64) float64 {
	if n <= 1 {
		return 0
	}
	inTree := make([]bool, n)
	best := make([]float64, n)
	for i := range best {
		best[i] = math.Inf(1)
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		best[j] = cost(0, j)
	}
	total := 0.0
	for added := 1; added < n; added++ {
		min, at := math.Inf(1), -1
		for j := 0; j < n; j++ {
			if !inTree[j] && best[j] < min {
				min, at = best[j], j
			}
		}
		if at < 0 {
			return math.Inf(1)
		}
		inTree[at] = true
		total += min
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if c := cost(at, j); c < best[j] {
					best[j] = c
				}
			}
		}
	}
	return total
}

// SPTMaxDelay returns the worst root→member delay when every member is
// served directly over the IP shortest path (the offline SPT reference:
// the closer it is to the target, the harder the goal).
func SPTMaxDelay(n int, delay func(a, b int) float64) float64 {
	max := 0.0
	for j := 1; j < n; j++ {
		if d := delay(0, j); d > max {
			max = d
		}
	}
	return max
}

// TreeCost sums cost(parent(m), m) over all non-root members of a live
// overlay. Members without a parent contribute a direct root edge (they
// are effectively served by the source).
func TreeCost(nodes []*Node, cost func(a, b int) float64) float64 {
	total := 0.0
	for _, nd := range nodes {
		if nd.ID() == 0 {
			continue
		}
		p := nd.Parent()
		if p < 0 {
			p = 0
		}
		total += cost(p, nd.ID())
	}
	return total
}

// TreeMaxDelay walks parent pointers and returns the maximum root→member
// delay under the current unicast delays (cycles, if momentarily present,
// score as unreachable and fall back to the direct root edge).
func TreeMaxDelay(nodes []*Node, delay func(a, b int) float64) float64 {
	n := len(nodes)
	parent := make([]int, n)
	for _, nd := range nodes {
		parent[nd.ID()] = nd.Parent()
	}
	memo := make([]float64, n)
	for i := range memo {
		memo[i] = -1
	}
	memo[0] = 0
	var resolve func(i int, depth int) float64
	resolve = func(i, depth int) float64 {
		if memo[i] >= 0 {
			return memo[i]
		}
		if depth > n || parent[i] < 0 {
			// Cycle or orphan: serve directly from the root.
			memo[i] = delay(0, i)
			return memo[i]
		}
		d := resolve(parent[i], depth+1) + delay(parent[i], i)
		memo[i] = d
		return d
	}
	max := 0.0
	for i := 1; i < n; i++ {
		if d := resolve(i, 0); d > max {
			max = d
		}
	}
	return max
}
