// Package acdc implements ACDC (Kostić, Rodriguez, Vahdat — "The Best of
// Both Worlds: Adaptivity in Two-Metric Overlays"), the §5.3 case study: an
// application-layer overlay that builds the lowest-cost distribution tree
// subject to a target maximum end-to-end delay, adapting as network
// conditions change.
//
// Cost and delay are independent metrics on the underlying IP links. Each
// member probes a bounded set of peers (O(lg n) per round): probes measure
// live round-trip delay directly, while path cost comes from a cost oracle
// the experiment supplies (real ACDC consults a routing-metric service; the
// oracle preserves that information flow without building one). A member
// switches parent when a loop-free candidate offers lower cost while
// keeping its tree delay within the target — or, when its delay exceeds
// the target, to whichever candidate minimizes delay.
package acdc

import (
	"math/rand"

	"modelnet/internal/netstack"
	"modelnet/internal/vtime"
)

// RPC bodies.
type (
	probeReq struct {
		From    int
		Confirm bool // sender intends to graft beneath us on this answer
	}
	probeResp struct {
		TreeDelay float64 // responder's current root→node delay, seconds
		RootPath  []int   // member ids from root to responder
	}
)

const (
	probeWire    = 64
	probeRespMax = 256
)

// Config tunes a member.
type Config struct {
	Port        uint16         // RPC port (default 4500)
	TargetDelay float64        // max acceptable root→member delay, seconds
	EvalEvery   vtime.Duration // probe/adapt period (default 5 s)
	ProbeFanout int            // peers probed per round (default 6 ≈ lg 120)
	Seed        int64
}

func (c *Config) defaults() {
	if c.Port == 0 {
		c.Port = 4500
	}
	if c.TargetDelay <= 0 {
		c.TargetDelay = 1.5
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 5 * vtime.Second
	}
	if c.ProbeFanout <= 0 {
		c.ProbeFanout = 6
	}
}

// Node is one overlay member. Member 0 is the root/source.
type Node struct {
	id      int
	cfg     Config
	host    *netstack.Host
	rpc     *netstack.RPCNode
	rng     *rand.Rand
	members []netstack.Endpoint // member id -> RPC endpoint
	cost    func(a, b int) float64

	parent      int // member id; -1 for root
	treeDelay   float64
	rootPath    []int
	ticker      *vtime.Ticker
	cheapest    []int // peers sorted by path cost: the clustering bias
	cooldown    int   // rounds to hold still after a switch (staleness guard)
	loopStrikes int   // consecutive rounds our parent's path contained us
	graftHold   int   // rounds to refuse our own grafts after answering a confirm

	Switches    uint64
	Probes      uint64
	LoopRepairs uint64
	ProbeFails  uint64
}

// NewNode creates member id (0 = root). members lists every member's RPC
// endpoint (only ProbeFanout random ones are contacted per round); cost is
// the path-cost oracle.
func NewNode(h *netstack.Host, id int, members []netstack.Endpoint, cost func(a, b int) float64, cfg Config) (*Node, error) {
	cfg.defaults()
	n := &Node{
		id: id, cfg: cfg, host: h, rng: rand.New(rand.NewSource(cfg.Seed ^ int64(id)*7919)),
		members: members, cost: cost,
		parent: -1,
	}
	rpc, err := netstack.NewRPCNode(h, cfg.Port, n.serve)
	if err != nil {
		return nil, err
	}
	n.rpc = rpc
	if id == 0 {
		n.rootPath = []int{0}
	}
	// ACDC biases its O(lg n) probes toward low-cost peers (its
	// clustering mechanism); precompute the cost order once — costs are
	// static link attributes.
	n.cheapest = make([]int, 0, len(members))
	for p := range members {
		if p != id {
			n.cheapest = append(n.cheapest, p)
		}
	}
	sortByCost(n.cheapest, func(p int) float64 { return cost(p, id) })
	// The probe/adapt round talks only through this member's RPC endpoint,
	// so its pending tick carries the host VN's owner claim.
	n.ticker = vtime.NewTaggedTicker(h.Scheduler(), int32(h.VN()), cfg.EvalEvery, n.evaluate)
	return n, nil
}

// sortByCost is a small insertion sort (member counts are modest and this
// runs once per node).
func sortByCost(xs []int, key func(int) float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && key(xs[j]) < key(xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ID returns the member id.
func (n *Node) ID() int { return n.id }

// Parent returns the current parent member id (-1 for the root).
func (n *Node) Parent() int { return n.parent }

// TreeDelay returns the node's last-known root→self delay in seconds.
func (n *Node) TreeDelay() float64 { return n.treeDelay }

// SetParent installs an initial parent (the "join at a random point"
// step); the overlay then self-organizes.
func (n *Node) SetParent(parent int) {
	if n.id != 0 {
		n.parent = parent
	}
}

// Start begins the periodic probe/adapt loop, offset by a random phase so
// members' rounds don't synchronize (simultaneous cluster-wide probe
// bursts would overload the emulation core — and real deployments never
// phase-lock).
func (n *Node) Start() {
	phase := vtime.Duration(n.rng.Int63n(int64(n.cfg.EvalEvery)))
	sched := n.host.Scheduler()
	sched.AtTagged(sched.Now().Add(phase), int32(n.host.VN()), n.ticker.Start)
}

// Stop halts adaptation.
func (n *Node) Stop() { n.ticker.Stop() }

func (n *Node) serve(from netstack.Endpoint, body any, size int) (any, int) {
	req, ok := body.(*probeReq)
	if !ok {
		return nil, 0
	}
	if req.Confirm {
		// Someone is about to graft beneath us: refuse to move ourselves
		// until the dust settles, so two nodes cannot graft under each
		// other simultaneously (the mutual race that creates 2-cycles).
		n.graftHold = 2
	}
	return &probeResp{
		TreeDelay: n.treeDelay,
		RootPath:  append([]int(nil), n.rootPath...),
	}, probeRespMax
}

// probeOutcome is one peer measurement.
type probeOutcome struct {
	peer     int
	delay    float64 // measured one-way delay to the peer (RTT/2)
	treeDel  float64 // peer's root delay + delay: candidate tree delay
	rootPath []int
}

// evaluate runs one adaptation round: probe the parent plus a random peer
// sample, refresh our tree delay, then switch parents if a better one
// exists (lower cost within the delay target, or lower delay when over
// target).
func (n *Node) evaluate() {
	if n.id == 0 {
		return // root never moves
	}
	targets := n.sampleTargets()
	results := make([]probeOutcome, 0, len(targets))
	remaining := len(targets)
	for _, peer := range targets {
		peer := peer
		sent := n.host.Scheduler().Now()
		n.Probes++
		n.rpc.Call(n.members[peer], &probeReq{From: n.id}, probeWire,
			netstack.CallOpts{Timeout: 2 * vtime.Second, Retries: 1},
			func(body any, err error) {
				remaining--
				if err != nil {
					n.ProbeFails++
				}
				if err == nil {
					if resp, ok := body.(*probeResp); ok {
						rtt := n.host.Scheduler().Now().Sub(sent).Seconds()
						results = append(results, probeOutcome{
							peer:     peer,
							delay:    rtt / 2,
							treeDel:  resp.TreeDelay + rtt/2,
							rootPath: resp.RootPath,
						})
					}
				}
				if remaining == 0 {
					n.decide(results)
				}
			})
	}
	if len(targets) == 0 {
		n.decide(nil)
	}
}

// sampleTargets picks the parent, the root (so delay repair always has an
// anchor), half the fanout from the cheapest peers (clustering bias), and
// the rest uniformly at random (exploration).
func (n *Node) sampleTargets() []int {
	picked := map[int]bool{n.id: true}
	var out []int
	add := func(p int) {
		if !picked[p] {
			picked[p] = true
			out = append(out, p)
		}
	}
	if n.parent >= 0 {
		add(n.parent)
	}
	add(0)
	cheapN := n.cfg.ProbeFanout / 2
	for i := 0; i < len(n.cheapest) && i < cheapN+2 && len(out) < cheapN+2; i++ {
		add(n.cheapest[i])
	}
	for tries := 0; len(out) < n.cfg.ProbeFanout+2 && tries < 8*n.cfg.ProbeFanout; tries++ {
		add(n.rng.Intn(len(n.members)))
	}
	return out
}

func (n *Node) decide(results []probeOutcome) {
	var parentRes *probeOutcome
	for i := range results {
		if results[i].peer == n.parent {
			parentRes = &results[i]
			break
		}
	}
	// Refresh our own tree state from the parent probe. If the parent's
	// root path contains us, two simultaneous switches raced into a loop
	// (the check at switch time uses one-round-stale paths): break it by
	// reattaching directly at the root.
	if parentRes != nil {
		if contains(parentRes.rootPath, n.id) {
			// Our parent's path claims us as an ancestor. Either a real
			// loop, or a stale path from a parent that just moved away —
			// repair only when it persists a second round.
			n.loopStrikes++
			if n.loopStrikes >= 2 {
				n.parent = 0
				n.rootPath = nil
				n.loopStrikes = 0
				n.LoopRepairs++
				n.cooldown = 6
			}
			return
		}
		n.loopStrikes = 0
		n.treeDelay = parentRes.treeDel
		n.rootPath = append(append([]int(nil), parentRes.rootPath...), n.id)
	}
	if n.graftHold > 0 {
		n.graftHold--
	}
	// Hold still after a recent switch: our subtree's delay claims are
	// stale until probes propagate, and simultaneous moves on stale data
	// are what create transient loops.
	if n.cooldown > 0 {
		n.cooldown--
		return
	}

	// Two thresholds with a deliberate gap (hysteresis): repair delay when
	// above repairAt; grow cheaper subtrees only while the candidate
	// leaves costBudget of headroom. The gap keeps cost growth from
	// immediately triggering repair — ACDC's "better cost, better delay,
	// or both" without ping-ponging.
	repairAt := n.cfg.TargetDelay * 0.95
	costBudget := n.cfg.TargetDelay * 0.8

	overTarget := parentRes == nil || n.treeDelay > repairAt
	curCost := 1e18
	if n.parent >= 0 {
		curCost = n.cost(n.parent, n.id)
	}

	best := -1
	bestCost := curCost
	bestDelay := n.treeDelay
	for i := range results {
		r := &results[i]
		if r.peer == n.parent || contains(r.rootPath, n.id) || len(r.rootPath) == 0 {
			continue // loop or peer not attached to the tree yet
		}
		if overTarget {
			// Delay repair: minimize candidate tree delay.
			if r.treeDel < bestDelay {
				bestDelay = r.treeDel
				best = r.peer
			}
			continue
		}
		c := n.cost(r.peer, n.id)
		switch {
		case r.treeDel <= costBudget && c < bestCost*0.9-1e-9:
			// Meaningfully cheaper parent with delay headroom. The 10%
			// margin keeps measurement jitter from causing endless
			// lateral swaps (churn is what creates transient loops).
			bestCost = c
			best = r.peer
			bestDelay = r.treeDel
		case c <= curCost+1e-9 && r.treeDel < bestDelay-0.05 && best < 0:
			// No cheaper option: take a substantial delay improvement.
			best = r.peer
			bestDelay = r.treeDel
			bestCost = c
		}
	}
	if best >= 0 {
		n.confirmSwitch(best)
	}
}

// confirmSwitch grafts onto a new parent only after a fresh probe confirms
// it is still loop-free — the decision data is up to a round old, and two
// nodes switching simultaneously on stale paths is how overlay loops form.
func (n *Node) confirmSwitch(cand int) {
	sent := n.host.Scheduler().Now()
	n.Probes++
	n.rpc.Call(n.members[cand], &probeReq{From: n.id, Confirm: true}, probeWire,
		netstack.CallOpts{Timeout: 2 * vtime.Second, Retries: 1},
		func(body any, err error) {
			if err != nil || n.graftHold > 0 {
				return // aborted: someone grafted beneath us meanwhile
			}
			resp, ok := body.(*probeResp)
			if !ok || len(resp.RootPath) == 0 || contains(resp.RootPath, n.id) {
				return
			}
			rtt := n.host.Scheduler().Now().Sub(sent).Seconds()
			n.parent = cand
			n.treeDelay = resp.TreeDelay + rtt/2
			n.rootPath = append(append([]int(nil), resp.RootPath...), n.id)
			n.Switches++
			n.cooldown = 3
		})
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
