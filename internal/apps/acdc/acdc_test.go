package acdc

import (
	"math"
	"testing"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

type regAdapter struct{ e *emucore.Emulator }

func (r regAdapter) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	r.e.RegisterVN(vn, emucore.DeliverFunc(fn))
}

// overlayEnv builds n members on a star topology with a cost oracle where
// "adjacent" ids are cheap — so the optimal tree is a chain-like structure
// and random initial parents are expensive.
type overlayEnv struct {
	sched *vtime.Scheduler
	nodes []*Node
	cost  func(a, b int) float64
	delay func(a, b int) float64
}

func newOverlay(t *testing.T, n int, targetDelay float64) *overlayEnv {
	t.Helper()
	// 20 ms access links: every member pair is 40 ms apart one-way,
	// matching the delay oracle below.
	g := topology.Star(n, topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: 0.020, QueuePkts: 50})
	b, err := bind.Bind(g, bind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, g, b, nil, emucore.IdealProfile(), 11)
	if err != nil {
		t.Fatal(err)
	}
	env := &overlayEnv{sched: sched}
	env.cost = func(a, bb int) float64 {
		d := a - bb
		if d < 0 {
			d = -d
		}
		return float64(d) // |i-j|: neighbors cheap
	}
	env.delay = func(a, bb int) float64 {
		if a == bb {
			return 0
		}
		return 0.040 // uniform two-hop star path RTT/2 ≈ 20ms+20ms
	}
	var members []netstack.Endpoint
	for i := 0; i < n; i++ {
		members = append(members, netstack.Endpoint{VN: pipes.VN(i), Port: 4500})
	}
	for i := 0; i < n; i++ {
		h := netstack.NewHost(pipes.VN(i), sched, emu, regAdapter{emu})
		nd, err := NewNode(h, i, members, env.cost, Config{
			TargetDelay: targetDelay,
			EvalEvery:   2 * vtime.Second,
			ProbeFanout: 5,
			Seed:        int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		env.nodes = append(env.nodes, nd)
	}
	return env
}

func TestMSTCost(t *testing.T) {
	// 4 nodes, cost |i-j|: MST = chain 0-1-2-3, cost 3.
	cost := func(a, b int) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		return float64(d)
	}
	if got := MSTCost(4, cost); got != 3 {
		t.Errorf("MST = %v, want 3", got)
	}
	if MSTCost(1, cost) != 0 {
		t.Error("singleton MST should be 0")
	}
}

func TestSPTMaxDelay(t *testing.T) {
	delay := func(a, b int) float64 { return float64(b) * 0.1 }
	if got := SPTMaxDelay(5, delay); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("SPT max = %v", got)
	}
}

func TestTreeMetricsWalk(t *testing.T) {
	env := newOverlay(t, 5, 1.5)
	// Chain: 0 <- 1 <- 2 <- 3 <- 4.
	for i := 1; i < 5; i++ {
		env.nodes[i].SetParent(i - 1)
	}
	cost := TreeCost(env.nodes, env.cost)
	if cost != 4 {
		t.Errorf("chain cost = %v, want 4", cost)
	}
	d := TreeMaxDelay(env.nodes, env.delay)
	if math.Abs(d-4*0.040) > 1e-9 {
		t.Errorf("chain max delay = %v, want 0.16", d)
	}
	// Star: all directly under root.
	for i := 1; i < 5; i++ {
		env.nodes[i].SetParent(0)
	}
	if got := TreeMaxDelay(env.nodes, env.delay); math.Abs(got-0.040) > 1e-9 {
		t.Errorf("star max delay = %v", got)
	}
}

func TestTreeMaxDelayBreaksCycles(t *testing.T) {
	env := newOverlay(t, 4, 1.5)
	env.nodes[1].SetParent(2)
	env.nodes[2].SetParent(1) // cycle 1<->2
	env.nodes[3].SetParent(0)
	d := TreeMaxDelay(env.nodes, env.delay)
	if math.IsInf(d, 0) || math.IsNaN(d) {
		t.Fatalf("cycle not handled: %v", d)
	}
}

func TestOverlayReducesCost(t *testing.T) {
	// Start everyone under the root (cost |i| sums large); adaptation with
	// a loose delay target should push cost toward the MST (chain).
	const n = 16
	env := newOverlay(t, n, 5.0) // loose target: pure cost optimization
	for i := 1; i < n; i++ {
		env.nodes[i].SetParent(0)
		env.nodes[i].Start()
	}
	initial := TreeCost(env.nodes, env.cost)
	env.sched.RunUntil(vtime.Time(300 * vtime.Second))
	final := TreeCost(env.nodes, env.cost)
	mst := MSTCost(n, env.cost)
	if final >= initial {
		t.Fatalf("cost did not improve: %v -> %v (MST %v)", initial, final, mst)
	}
	if final > mst*2.0 {
		t.Errorf("final cost %v more than 2x MST %v", final, mst)
	}
}

func TestOverlayRespectsDelayTarget(t *testing.T) {
	// Tight target: with uniform 40 ms edges and target 100 ms, trees
	// deeper than 2 overlay hops violate; adaptation must flatten.
	const n = 12
	env := newOverlay(t, n, 0.100)
	for i := 1; i < n; i++ {
		env.nodes[i].SetParent(i - 1) // worst case: a chain
		env.nodes[i].Start()
	}
	env.sched.RunUntil(vtime.Time(600 * vtime.Second))
	d := TreeMaxDelay(env.nodes, env.delay)
	if d > 0.100+0.045 { // one edge of slack for measurement noise
		t.Errorf("max delay %v still above target after adaptation", d)
	}
}

func TestRootNeverSwitches(t *testing.T) {
	env := newOverlay(t, 4, 1.0)
	env.nodes[0].Start()
	for i := 1; i < 4; i++ {
		env.nodes[i].SetParent(0)
		env.nodes[i].Start()
	}
	env.sched.RunUntil(vtime.Time(60 * vtime.Second))
	if env.nodes[0].Parent() != -1 {
		t.Error("root acquired a parent")
	}
	if env.nodes[0].Switches != 0 {
		t.Error("root switched")
	}
}
