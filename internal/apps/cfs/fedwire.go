package cfs

// Federation codecs: CFS block fetches cross core-process boundaries
// inside netstack's recursive RPC-frame payload (internal/fednet), so the
// RPC bodies register codecs next to their types.

import (
	"fmt"

	"modelnet/internal/apps/chord"
	"modelnet/internal/fednet/wire"
)

func init() {
	base := wire.PayloadApp + 20
	wire.RegisterPayload(base+0, (*fetchReq)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			e.U64(uint64(v.(*fetchReq).Block))
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			return &fetchReq{Block: chord.ID(d.U64())}, d.Err()
		},
	})
	wire.RegisterPayload(base+1, (*fetchResp)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			m := v.(*fetchResp)
			e.Bool(m.OK)
			e.I32(int32(m.Size))
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			ok, err := d.StrictBool()
			if err != nil {
				return nil, err
			}
			m := &fetchResp{OK: ok, Size: int(d.I32())}
			if m.Size < 0 {
				return nil, fmt.Errorf("cfs: fetch response with negative size %d", m.Size)
			}
			return m, d.Err()
		},
	})
}
