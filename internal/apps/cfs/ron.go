package cfs

import (
	"math/rand"

	"modelnet/internal/topology"
)

// The paper converts the published RON testbed inter-node characteristics
// (bandwidth, latency, loss between all pairs of ~12 Internet sites) into a
// ModelNet topology. The exact matrix is not available to this
// reproduction, so RONTopology synthesizes an equivalent full mesh from the
// RON deployment's documented site mix: mostly well-connected university
// sites, a couple of consumer broadband links, and one overseas site.
// Download-speed behaviour in CFS Figures 6-8 depends on this qualitative
// spread (a slow tail plus fast cluster), not the precise numbers; see
// DESIGN.md's substitution table.

// SiteClass categorizes a RON-like site's connectivity.
type SiteClass int

const (
	// University sites: high bandwidth, low-to-moderate latency.
	University SiteClass = iota
	// Broadband sites: cable/DSL, sub-megabit upstream, extra latency.
	Broadband
	// Overseas site: transatlantic latency, moderate bandwidth.
	Overseas
)

// RONSites is the 12-site mix used for the CFS experiments.
var RONSites = []SiteClass{
	University, University, University, University, University,
	University, University, University, University,
	Broadband, Broadband, Overseas,
}

// RONTopology builds the full-mesh topology for the given site mix. Every
// ordered pair gets a collapsed end-to-end pipe, as the paper built from
// the published end-to-end RON measurements.
func RONTopology(sites []SiteClass, seed int64) *topology.Graph {
	rng := rand.New(rand.NewSource(seed))
	// Per-site access properties; pairwise path = min bandwidth, summed
	// latency plus a backbone component.
	type access struct {
		bwBps  float64
		latSec float64
	}
	acc := make([]access, len(sites))
	// 2001-era end-to-end rates: RON's published pairwise bandwidths were
	// mostly below 2 Mb/s, with consumer links far slower — these tails
	// are what cap CFS download speed at large prefetch windows.
	for i, cl := range sites {
		switch cl {
		case University:
			acc[i] = access{bwBps: 1.5e6 + rng.Float64()*3.5e6, latSec: 0.002 + rng.Float64()*0.008}
		case Broadband:
			acc[i] = access{bwBps: 0.15e6 + rng.Float64()*0.25e6, latSec: 0.008 + rng.Float64()*0.015}
		case Overseas:
			acc[i] = access{bwBps: 0.8e6 + rng.Float64()*1.2e6, latSec: 0.035 + rng.Float64()*0.01}
		}
	}
	backbone := func(i, j int) float64 {
		// Coast-to-coast style spread, plus the ocean for the overseas site.
		base := 0.005 + rng.Float64()*0.030
		if sites[i] == Overseas || sites[j] == Overseas {
			base += 0.035
		}
		return base
	}
	return topology.FullMesh(len(sites), func(i, j int) topology.LinkAttrs {
		bw := acc[i].bwBps
		if acc[j].bwBps < bw {
			bw = acc[j].bwBps
		}
		return topology.LinkAttrs{
			BandwidthBps: bw,
			LatencySec:   acc[i].latSec + acc[j].latSec + backbone(i, j),
			LossRate:     0.0005 + rng.Float64()*0.002,
			QueuePkts:    40,
		}
	})
}
