package cfs

import (
	"fmt"
	"testing"

	"modelnet/internal/apps/chord"
	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

type regAdapter struct{ e *emucore.Emulator }

func (r regAdapter) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	r.e.RegisterVN(vn, emucore.DeliverFunc(fn))
}

type cluster struct {
	sched *vtime.Scheduler
	peers []*Peer
}

func newCluster(t *testing.T, g *topology.Graph) *cluster {
	t.Helper()
	b, err := bind.Bind(g, bind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, g, b, nil, emucore.IdealProfile(), 17)
	if err != nil {
		t.Fatal(err)
	}
	cl := &cluster{sched: sched}
	var cnodes []*chord.Node
	for i := 0; i < b.NumVNs(); i++ {
		h := netstack.NewHost(pipes.VN(i), sched, emu, regAdapter{emu})
		p, err := NewPeer(h, chord.HashString(fmt.Sprintf("cfs-%d", i)), chord.Config{})
		if err != nil {
			t.Fatal(err)
		}
		cl.peers = append(cl.peers, p)
		cnodes = append(cnodes, p.Chord)
	}
	chord.BootstrapAll(cnodes)
	return cl
}

func simpleMesh(n int) *topology.Graph {
	return topology.FullMesh(n, func(i, j int) topology.LinkAttrs {
		return topology.LinkAttrs{BandwidthBps: 5e6, LatencySec: 0.010, QueuePkts: 40}
	})
}

func TestFileBlocks(t *testing.T) {
	b1 := FileBlocks("f", 1<<20)
	if len(b1) != 128 {
		t.Fatalf("1MB file has %d blocks, want 128", len(b1))
	}
	b2 := FileBlocks("f", 1<<20+1)
	if len(b2) != 129 {
		t.Fatalf("partial block not counted: %d", len(b2))
	}
	// Deterministic and distinct.
	again := FileBlocks("f", 1<<20)
	seen := map[chord.ID]bool{}
	for i := range b1 {
		if b1[i] != again[i] {
			t.Fatal("FileBlocks not deterministic")
		}
		if seen[b1[i]] {
			t.Fatal("duplicate block id")
		}
		seen[b1[i]] = true
	}
}

func TestStripePlacement(t *testing.T) {
	cl := newCluster(t, simpleMesh(12))
	counts := Stripe(cl.peers, "testfile", 1<<20)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 128 {
		t.Fatalf("striped %d blocks", total)
	}
	// Every block lives at its ring owner.
	ids := make([]chord.ID, len(cl.peers))
	for i, p := range cl.peers {
		ids[i] = p.Chord.ID()
	}
	blocks := FileBlocks("testfile", 1<<20)
	for i, owner := range BlockOwners(ids, blocks) {
		if !cl.peers[owner].HasBlock(blocks[i]) {
			t.Fatalf("block %x missing at owner", blocks[i])
		}
	}
}

func TestFetchWholeFile(t *testing.T) {
	cl := newCluster(t, simpleMesh(12))
	const size = 1 << 20
	Stripe(cl.peers, "f", size)
	blocks := FileBlocks("f", size)
	var res FetchResult
	got := false
	cl.peers[0].Fetch(blocks, 24<<10, func(r FetchResult) { res = r; got = true })
	cl.sched.RunUntil(vtime.Time(300 * vtime.Second))
	if !got {
		t.Fatal("fetch never completed")
	}
	if res.Failed != 0 {
		t.Fatalf("%d blocks failed", res.Failed)
	}
	if res.Bytes != size {
		t.Fatalf("fetched %d bytes, want %d", res.Bytes, size)
	}
	if res.SpeedKBps <= 0 {
		t.Fatal("speed not computed")
	}
}

func TestPrefetchWindowSpeedsDownloads(t *testing.T) {
	speed := func(window int) float64 {
		cl := newCluster(t, simpleMesh(12))
		Stripe(cl.peers, "f", 1<<20)
		blocks := FileBlocks("f", 1<<20)
		var res FetchResult
		cl.peers[0].Fetch(blocks, window, func(r FetchResult) { res = r })
		cl.sched.RunUntil(vtime.Time(600 * vtime.Second))
		if res.Bytes != 1<<20 {
			t.Fatalf("window %d: incomplete fetch %d", window, res.Bytes)
		}
		return res.SpeedKBps
	}
	seq := speed(0)         // one block at a time
	wide := speed(40 << 10) // 5 blocks outstanding
	if wide < seq*2 {
		t.Errorf("prefetch window didn't help: %v vs %v KB/s", wide, seq)
	}
}

func TestFetchMissingBlocksFail(t *testing.T) {
	cl := newCluster(t, simpleMesh(4))
	blocks := FileBlocks("nope", 64<<10) // never striped
	var res FetchResult
	cl.peers[0].Fetch(blocks, 16<<10, func(r FetchResult) { res = r })
	cl.sched.RunUntil(vtime.Time(300 * vtime.Second))
	if res.Failed != len(blocks) {
		t.Fatalf("failed = %d, want all %d", res.Failed, len(blocks))
	}
}

func TestRONTopologyShape(t *testing.T) {
	g := RONTopology(RONSites, 3)
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumLinks() != 12*11 {
		t.Fatalf("links = %d, want full mesh %d", g.NumLinks(), 12*11)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Overseas pairs slower than university pairs on average.
	var uniLat, overseasLat float64
	var uniN, overseasN int
	for _, l := range g.Links {
		i, j := int(l.Src), int(l.Dst)
		if RONSites[i] == University && RONSites[j] == University {
			uniLat += l.Attr.LatencySec
			uniN++
		}
		if RONSites[i] == Overseas || RONSites[j] == Overseas {
			overseasLat += l.Attr.LatencySec
			overseasN++
		}
	}
	if overseasLat/float64(overseasN) <= uniLat/float64(uniN) {
		t.Error("overseas paths not slower than university paths")
	}
	// Deterministic for a seed.
	g2 := RONTopology(RONSites, 3)
	for i := range g.Links {
		if g.Links[i].Attr != g2.Links[i].Attr {
			t.Fatal("RONTopology not deterministic")
		}
	}
}

func TestFetchOverRON(t *testing.T) {
	cl := newCluster(t, RONTopology(RONSites, 3))
	Stripe(cl.peers, "ron-file", 1<<20)
	blocks := FileBlocks("ron-file", 1<<20)
	var res FetchResult
	cl.peers[0].Fetch(blocks, 24<<10, func(r FetchResult) { res = r })
	cl.sched.RunUntil(vtime.Time(600 * vtime.Second))
	if res.Bytes != 1<<20 {
		t.Fatalf("incomplete: %+v", res)
	}
	// CFS reports tens to ~200 KB/s on RON; require the right ballpark.
	if res.SpeedKBps < 10 || res.SpeedKBps > 1000 {
		t.Errorf("speed %v KB/s outside plausible RON range", res.SpeedKBps)
	}
}
