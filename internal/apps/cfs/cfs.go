// Package cfs implements the CFS/DHash archival block store (Dabek et al.,
// SOSP 2001) used in the paper's §5.1 reproduction study: files are split
// into 8 KB blocks striped across a Chord ring, and a client downloads a
// file by looking up each block's owner through Chord and fetching the
// block over RPC, keeping up to a configurable prefetch window of bytes
// outstanding — the knob the CFS paper's Figures 6-8 sweep.
package cfs

import (
	"fmt"

	"modelnet/internal/apps/chord"
	"modelnet/internal/netstack"
	"modelnet/internal/vtime"
)

// BlockSize is DHash's block granularity.
const BlockSize = 8 << 10

// Wire sizes.
const (
	fetchReqSize = 40
	blockPort    = 4001
)

// RPC bodies.
type (
	fetchReq  struct{ Block chord.ID }
	fetchResp struct {
		OK   bool
		Size int
	}
)

// Peer is one CFS node: a Chord participant plus a local block store and a
// block-fetch RPC service.
type Peer struct {
	Chord *chord.Node
	host  *netstack.Host
	rpc   *netstack.RPCNode
	store map[chord.ID]int // block -> size

	BlocksServed uint64
}

// NewPeer creates a CFS peer on host h with Chord identity id.
func NewPeer(h *netstack.Host, id chord.ID, ccfg chord.Config) (*Peer, error) {
	cn, err := chord.NewNode(h, id, ccfg)
	if err != nil {
		return nil, err
	}
	p := &Peer{Chord: cn, host: h, store: make(map[chord.ID]int)}
	rpc, err := netstack.NewRPCNode(h, blockPort, p.serve)
	if err != nil {
		return nil, err
	}
	p.rpc = rpc
	return p, nil
}

// Addr returns the peer's block-service endpoint.
func (p *Peer) Addr() netstack.Endpoint { return p.rpc.Addr() }

// Host returns the peer's network stack (and hence its scheduler).
func (p *Peer) Host() *netstack.Host { return p.host }

// StoreLocal inserts a block into this peer's store directly (used by the
// offline striping step once ownership is known).
func (p *Peer) StoreLocal(id chord.ID, size int) { p.store[id] = size }

// HasBlock reports whether the peer stores the block.
func (p *Peer) HasBlock(id chord.ID) bool { _, ok := p.store[id]; return ok }

// NumBlocks reports how many blocks the peer stores.
func (p *Peer) NumBlocks() int { return len(p.store) }

func (p *Peer) serve(from netstack.Endpoint, body any, size int) (any, int) {
	req, ok := body.(*fetchReq)
	if !ok {
		return nil, 0
	}
	sz, ok := p.store[req.Block]
	if !ok {
		return &fetchResp{OK: false}, 32
	}
	p.BlocksServed++
	return &fetchResp{OK: true, Size: sz}, 32 + sz
}

// FileBlocks derives the block IDs of a file striped into BlockSize pieces.
func FileBlocks(name string, size int) []chord.ID {
	n := (size + BlockSize - 1) / BlockSize
	out := make([]chord.ID, n)
	for i := range out {
		out[i] = chord.HashString(fmt.Sprintf("%s/%d", name, i))
	}
	return out
}

// Stripe distributes a file's blocks onto the peers that own them
// (offline, by ring position — equivalent to inserting via Chord once the
// ring is consistent). Returns blocks per peer for verification.
func Stripe(peers []*Peer, name string, size int) map[*Peer]int {
	ids := make([]chord.ID, len(peers))
	for i, p := range peers {
		ids[i] = p.Chord.ID()
	}
	blocks := FileBlocks(name, size)
	counts := make(map[*Peer]int)
	for i, owner := range BlockOwners(ids, blocks) {
		p := peers[owner]
		p.StoreLocal(blocks[i], BlockBytes(size, i, len(blocks)))
		counts[p]++
	}
	return counts
}

// BlockBytes is the size of block i of a size-byte file striped into
// len(FileBlocks) pieces (the last block may be short).
func BlockBytes(size, i, blocks int) int {
	if i == blocks-1 && size%BlockSize != 0 {
		return size % BlockSize
	}
	return BlockSize
}

// BlockOwners maps each block onto the index of the peer owning it, given
// only the population's ring positions. It is a pure function of its
// arguments, so every process of a federated run derives the same striping
// from the scenario parameters and stores only its homed peers' blocks.
func BlockOwners(ids []chord.ID, blocks []chord.ID) []int {
	owners := make([]int, len(blocks))
	for i, b := range blocks {
		owners[i] = ownerIndex(ids, b)
	}
	return owners
}

func ownerIndex(ids []chord.ID, key chord.ID) int {
	best, min := -1, 0
	for i, id := range ids {
		if id < ids[min] {
			min = i
		}
		if id >= key && (best < 0 || id < ids[best]) {
			best = i
		}
	}
	if best < 0 {
		return min
	}
	return best
}

// FetchResult summarizes one file download.
type FetchResult struct {
	Bytes   int
	Blocks  int
	Failed  int
	Elapsed vtime.Duration
	// SpeedKBps is the download speed in the CFS paper's unit
	// (kilobytes/second).
	SpeedKBps float64
	// LookupHops is the total Chord hops spent on block lookups.
	LookupHops int
}

// Fetch downloads a file by block list with the given prefetch window (in
// bytes): up to max(1, window/BlockSize) block fetches are kept
// outstanding, each preceded by a Chord lookup of the block's owner. done
// fires when every block has been fetched (or failed).
func (p *Peer) Fetch(blocks []chord.ID, window int, done func(FetchResult)) {
	maxOut := window / BlockSize
	if maxOut < 1 {
		maxOut = 1
	}
	st := &fetchState{
		peer: p, blocks: blocks, maxOut: maxOut, done: done,
		start: p.host.Scheduler().Now(),
	}
	st.pump()
}

type fetchState struct {
	peer   *Peer
	blocks []chord.ID
	next   int
	out    int
	maxOut int
	res    FetchResult
	start  vtime.Time
	done   func(FetchResult)
	fired  bool
}

func (st *fetchState) pump() {
	for st.next < len(st.blocks) && st.out < st.maxOut {
		b := st.blocks[st.next]
		st.next++
		st.out++
		st.lookupAndFetch(b, 0)
	}
	st.finishIfDone()
}

func (st *fetchState) lookupAndFetch(b chord.ID, attempt int) {
	p := st.peer
	p.Chord.Lookup(b, func(owner chord.Ref, hops int, err error) {
		st.res.LookupHops += hops
		if err != nil {
			st.blockDone(b, 0, false)
			return
		}
		// Block service lives on the same host as the Chord node.
		to := netstack.Endpoint{VN: owner.Addr.VN, Port: blockPort}
		p.rpc.Call(to, &fetchReq{Block: b}, fetchReqSize,
			netstack.CallOpts{Timeout: 5 * vtime.Second, Retries: 4},
			func(body any, err error) {
				if err != nil {
					if attempt < 2 {
						// Re-lookup once: ownership may have shifted.
						st.lookupAndFetch(b, attempt+1)
						return
					}
					st.blockDone(b, 0, false)
					return
				}
				resp, ok := body.(*fetchResp)
				if !ok || !resp.OK {
					st.blockDone(b, 0, false)
					return
				}
				st.blockDone(b, resp.Size, true)
			})
	})
}

func (st *fetchState) blockDone(b chord.ID, size int, ok bool) {
	st.out--
	st.res.Blocks++
	if ok {
		st.res.Bytes += size
	} else {
		st.res.Failed++
	}
	st.pump()
}

func (st *fetchState) finishIfDone() {
	if st.fired || st.out > 0 || st.next < len(st.blocks) {
		return
	}
	st.fired = true
	st.res.Elapsed = st.peer.host.Scheduler().Now().Sub(st.start)
	if s := st.res.Elapsed.Seconds(); s > 0 {
		st.res.SpeedKBps = float64(st.res.Bytes) / 1024 / s
	}
	if st.done != nil {
		st.done(st.res)
	}
}
