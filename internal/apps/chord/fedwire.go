package chord

// Federation codecs: Chord's RPC bodies cross core-process boundaries
// inside netstack's recursive RPC-frame payload (internal/fednet), so each
// body type registers a codec next to its definition. Any binary that can
// run a Chord workload can then also federate it.

import (
	"modelnet/internal/fednet/wire"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
)

func putRef(e *wire.Enc, r Ref) {
	e.U64(uint64(r.ID))
	e.I32(int32(r.Addr.VN))
	e.U16(r.Addr.Port)
}

func getRef(d *wire.Dec) Ref {
	return Ref{
		ID:   ID(d.U64()),
		Addr: netstack.Endpoint{VN: pipes.VN(d.I32()), Port: d.U16()},
	}
}

func init() {
	base := wire.PayloadApp + 10
	wire.RegisterPayload(base+0, (*findSuccReq)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			e.U64(uint64(v.(*findSuccReq).Key))
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			return &findSuccReq{Key: ID(d.U64())}, d.Err()
		},
	})
	wire.RegisterPayload(base+1, (*findSuccResp)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			m := v.(*findSuccResp)
			e.Bool(m.Found)
			putRef(e, m.Next)
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			found, err := d.StrictBool()
			if err != nil {
				return nil, err
			}
			return &findSuccResp{Found: found, Next: getRef(d)}, d.Err()
		},
	})
	wire.RegisterPayload(base+2, (*getStateReq)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error { return nil },
		Dec: func(d *wire.Dec) (any, error) { return &getStateReq{}, nil },
	})
	wire.RegisterPayload(base+3, (*getStateResp)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			m := v.(*getStateResp)
			putRef(e, m.Pred)
			e.U32(uint32(len(m.Succs)))
			for _, s := range m.Succs {
				putRef(e, s)
			}
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			m := &getStateResp{Pred: getRef(d)}
			n := d.Len(14)
			for i := 0; i < n; i++ {
				m.Succs = append(m.Succs, getRef(d))
			}
			return m, d.Err()
		},
	})
	wire.RegisterPayload(base+4, (*notifyReq)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error {
			putRef(e, v.(*notifyReq).Cand)
			return nil
		},
		Dec: func(d *wire.Dec) (any, error) {
			return &notifyReq{Cand: getRef(d)}, d.Err()
		},
	})
	wire.RegisterPayload(base+5, (*notifyOK)(nil), wire.PayloadCodec{
		Enc: func(e *wire.Enc, v any) error { return nil },
		Dec: func(d *wire.Dec) (any, error) { return &notifyOK{}, nil },
	})
}
