package chord

import (
	"fmt"
	"testing"
	"testing/quick"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

type ring struct {
	sched *vtime.Scheduler
	nodes []*Node
}

type regAdapter struct{ e *emucore.Emulator }

func (r regAdapter) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	r.e.RegisterVN(vn, emucore.DeliverFunc(fn))
}

func newRing(t *testing.T, n int) *ring {
	t.Helper()
	g := topology.Star(n, topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: 0.005, QueuePkts: 50})
	b, err := bind.Bind(g, bind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, g, b, nil, emucore.IdealProfile(), 9)
	if err != nil {
		t.Fatal(err)
	}
	r := &ring{sched: sched}
	for i := 0; i < n; i++ {
		h := netstack.NewHost(pipes.VN(i), sched, emu, regAdapter{emu})
		nd, err := NewNode(h, HashString(fmt.Sprintf("node-%d", i)), Config{})
		if err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, nd)
	}
	return r
}

func TestBetween(t *testing.T) {
	cases := []struct {
		a, x, b ID
		want    bool
	}{
		{10, 15, 20, true},
		{10, 10, 20, false},
		{10, 20, 20, true},
		{10, 25, 20, false},
		{20, 25, 10, true},  // wrap
		{20, 5, 10, true},   // wrap
		{20, 15, 10, false}, // wrap
		{7, 7, 7, true},     // full circle
	}
	for _, c := range cases {
		if got := between(c.a, c.x, c.b); got != c.want {
			t.Errorf("between(%d,%d,%d) = %v", c.a, c.x, c.b, got)
		}
	}
}

func TestBootstrapRingConsistency(t *testing.T) {
	r := newRing(t, 12)
	BootstrapAll(r.nodes)
	// Walk successors from node 0: must visit all 12 and return.
	byAddr := map[netstack.Endpoint]*Node{}
	for _, nd := range r.nodes {
		byAddr[nd.Ref().Addr] = nd
	}
	cur := r.nodes[0]
	seen := map[ID]bool{}
	for i := 0; i < 12; i++ {
		if seen[cur.ID()] {
			t.Fatal("successor cycle shorter than ring")
		}
		seen[cur.ID()] = true
		cur = byAddr[cur.Successor().Addr]
	}
	if cur != r.nodes[0] {
		t.Fatal("successor walk did not close the ring")
	}
	// Predecessor inverse of successor.
	for _, nd := range r.nodes {
		succ := byAddr[nd.Successor().Addr]
		if succ.Predecessor().ID != nd.ID() {
			t.Fatalf("pred(succ(%v)) != self", nd.ID())
		}
	}
}

func TestLookupFindsCorrectOwner(t *testing.T) {
	r := newRing(t, 12)
	BootstrapAll(r.nodes)
	// Ground truth: owner of key = first node clockwise from key.
	owner := func(key ID) ID {
		best := ID(0)
		found := false
		var min ID = ^ID(0)
		var minID ID
		for _, nd := range r.nodes {
			if nd.ID() < min {
				min = nd.ID()
				minID = nd.ID()
			}
			if nd.ID() >= key && (!found || nd.ID() < best) {
				best = nd.ID()
				found = true
			}
		}
		if !found {
			return minID
		}
		return best
	}
	results := map[ID]ID{}
	for i := 0; i < 40; i++ {
		key := HashString(fmt.Sprintf("key-%d", i))
		src := r.nodes[i%len(r.nodes)]
		src.Lookup(key, func(ref Ref, hops int, err error) {
			if err != nil {
				t.Errorf("lookup %x: %v", key, err)
				return
			}
			results[key] = ref.ID
		})
	}
	r.sched.RunUntil(vtime.Time(30 * vtime.Second))
	if len(results) != 40 {
		t.Fatalf("only %d/40 lookups completed", len(results))
	}
	for key, got := range results {
		if want := owner(key); got != want {
			t.Errorf("lookup(%x) = %x, want %x", key, got, want)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	r := newRing(t, 32)
	BootstrapAll(r.nodes)
	maxHops := 0
	count := 0
	for i := 0; i < 64; i++ {
		key := HashString(fmt.Sprintf("k%d", i))
		r.nodes[i%32].Lookup(key, func(ref Ref, hops int, err error) {
			if err != nil {
				t.Errorf("lookup err: %v", err)
				return
			}
			count++
			if hops > maxHops {
				maxHops = hops
			}
		})
	}
	r.sched.RunUntil(vtime.Time(60 * vtime.Second))
	if count != 64 {
		t.Fatalf("%d/64 lookups done", count)
	}
	// 32 nodes: O(log n) ≈ 5; allow generous slack but far below linear.
	if maxHops > 10 {
		t.Errorf("max hops %d, want ≤10 for 32 nodes", maxHops)
	}
}

func TestJoinAndStabilize(t *testing.T) {
	r := newRing(t, 8)
	r.nodes[0].Create()
	// Join sequentially, then let stabilization run.
	for i := 1; i < 8; i++ {
		i := i
		r.sched.At(vtime.Time(i)*vtime.Time(2*vtime.Second), func() {
			r.nodes[i].Join(r.nodes[0].Ref(), func(err error) {
				if err != nil {
					t.Errorf("join %d: %v", i, err)
				}
			})
		})
	}
	for _, nd := range r.nodes {
		nd.StartMaintenance()
	}
	r.sched.RunUntil(vtime.Time(120 * vtime.Second))
	for _, nd := range r.nodes {
		nd.StopMaintenance()
	}
	r.sched.RunUntil(vtime.Time(130 * vtime.Second))

	// The successor graph must be the sorted ring.
	sorted := append([]*Node(nil), r.nodes...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].ID() < sorted[j-1].ID(); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for i, nd := range sorted {
		want := sorted[(i+1)%len(sorted)].ID()
		if nd.Successor().ID != want {
			t.Errorf("node %x successor = %x, want %x", nd.ID(), nd.Successor().ID, want)
		}
	}
	// Lookups work on the converged ring.
	done := 0
	for i := 0; i < 10; i++ {
		r.nodes[i%8].Lookup(HashString(fmt.Sprintf("q%d", i)), func(ref Ref, hops int, err error) {
			if err == nil {
				done++
			}
		})
	}
	r.sched.RunUntil(vtime.Time(160 * vtime.Second))
	if done != 10 {
		t.Errorf("%d/10 post-join lookups succeeded", done)
	}
}

// Property: ring arithmetic — for sorted distinct IDs, successorOf agrees
// with linear scan ownership.
func TestSuccessorOfProperty(t *testing.T) {
	f := func(seedKeys []uint64, key uint64) bool {
		if len(seedKeys) == 0 {
			return true
		}
		r := &ring{} // no network needed for this check
		_ = r
		// Build fake sorted nodes using BootstrapAll helpers is heavy;
		// check between() directly instead: exactly one node owns any key.
		ids := map[ID]bool{}
		for _, k := range seedKeys {
			ids[ID(k)] = true
		}
		var list []ID
		for id := range ids {
			list = append(list, id)
		}
		for i := 1; i < len(list); i++ {
			for j := i; j > 0 && list[j] < list[j-1]; j-- {
				list[j], list[j-1] = list[j-1], list[j]
			}
		}
		owners := 0
		k := ID(key)
		for i, id := range list {
			pred := list[(i-1+len(list))%len(list)]
			if len(list) == 1 || between(pred, k, id) {
				owners++
			}
		}
		return owners == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
