// Package chord implements the Chord distributed hash table (Stoica et
// al., SIGCOMM 2001) — the lookup substrate of CFS, the paper's §5.1 case
// study. Nodes form a ring in a 64-bit identifier space with successor
// lists, finger tables, periodic stabilization, and iterative lookups over
// the UDP RPC layer.
package chord

import (
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"

	"modelnet/internal/netstack"
	"modelnet/internal/vtime"
)

// ID is a point on the Chord ring (64-bit identifier space; the original
// uses 160 bits — the reduced width only shrinks hash headroom, not
// behaviour, at these scales).
type ID uint64

// HashBytes maps arbitrary bytes onto the ring (SHA-1, truncated).
func HashBytes(b []byte) ID {
	s := sha1.Sum(b)
	return ID(binary.BigEndian.Uint64(s[:8]))
}

// HashString maps a string key onto the ring.
func HashString(s string) ID { return HashBytes([]byte(s)) }

// between reports whether x ∈ (a, b] on the ring.
func between(a, x, b ID) bool {
	if a < b {
		return x > a && x <= b
	}
	if a > b {
		return x > a || x <= b
	}
	return true // a == b: full circle
}

// betweenOpen reports whether x ∈ (a, b) on the ring.
func betweenOpen(a, x, b ID) bool {
	if a < b {
		return x > a && x < b
	}
	if a > b {
		return x > a || x < b
	}
	return x != a
}

// Ref names a Chord node: its ring position and its RPC endpoint.
type Ref struct {
	ID   ID
	Addr netstack.Endpoint
}

func (r Ref) zero() bool { return r.Addr == netstack.Endpoint{} }

func (r Ref) String() string { return fmt.Sprintf("chord(%016x@%v)", uint64(r.ID), r.Addr) }

// Config tunes a node.
type Config struct {
	Port           uint16         // RPC port (default 4000)
	SuccListLen    int            // successor list length (default 4)
	StabilizeEvery vtime.Duration // default 500 ms
	FixFingerEvery vtime.Duration // default 500 ms
	RPCTimeout     vtime.Duration // per-try (default 500 ms)
	RPCRetries     int            // default 2
	MaxLookupHops  int            // iterative lookup hop bound (default 32)
}

func (c *Config) defaults() {
	if c.Port == 0 {
		c.Port = 4000
	}
	if c.SuccListLen <= 0 {
		c.SuccListLen = 4
	}
	if c.StabilizeEvery <= 0 {
		c.StabilizeEvery = 500 * vtime.Millisecond
	}
	if c.FixFingerEvery <= 0 {
		c.FixFingerEvery = 500 * vtime.Millisecond
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 500 * vtime.Millisecond
	}
	if c.RPCRetries == 0 {
		c.RPCRetries = 2
	}
	if c.MaxLookupHops <= 0 {
		c.MaxLookupHops = 32
	}
}

// RPC message bodies.
type (
	findSuccReq  struct{ Key ID }
	findSuccResp struct {
		Found bool
		Next  Ref // result when Found, else next hop
	}
	getStateReq  struct{}
	getStateResp struct {
		Pred  Ref
		Succs []Ref
	}
	notifyReq struct{ Cand Ref }
	notifyOK  struct{}
)

// Wire sizes (bytes) for control messages.
const (
	reqSize  = 48
	respSize = 96
)

// Node is one Chord participant.
type Node struct {
	id    ID
	cfg   Config
	host  *netstack.Host
	rpc   *netstack.RPCNode
	sched *vtime.Scheduler

	pred    Ref
	succs   []Ref // successor list, succs[0] = immediate successor
	fingers [64]Ref
	nextFix int

	stabilizer *vtime.Ticker
	fixer      *vtime.Ticker

	Lookups     uint64
	LookupHops  uint64
	LookupFails uint64
}

// ErrLookupFailed reports an iterative lookup that could not complete.
var ErrLookupFailed = errors.New("chord: lookup failed")

// NewNode creates a Chord node with the given ring ID on host h.
func NewNode(h *netstack.Host, id ID, cfg Config) (*Node, error) {
	cfg.defaults()
	n := &Node{id: id, cfg: cfg, host: h, sched: h.Scheduler()}
	rpc, err := netstack.NewRPCNode(h, cfg.Port, n.serve)
	if err != nil {
		return nil, err
	}
	n.rpc = rpc
	// Both maintenance loops talk to the ring only through this node's own
	// RPC endpoint, so their pending ticks carry the host VN's owner claim.
	n.stabilizer = vtime.NewTaggedTicker(n.sched, int32(h.VN()), cfg.StabilizeEvery, n.stabilize)
	n.fixer = vtime.NewTaggedTicker(n.sched, int32(h.VN()), cfg.FixFingerEvery, n.fixFinger)
	return n, nil
}

// Ref returns this node's ring reference.
func (n *Node) Ref() Ref { return Ref{ID: n.id, Addr: n.rpc.Addr()} }

// ID returns the node's ring position.
func (n *Node) ID() ID { return n.id }

// Successor returns the current immediate successor.
func (n *Node) Successor() Ref {
	if len(n.succs) == 0 {
		return n.Ref()
	}
	return n.succs[0]
}

// Predecessor returns the current predecessor (zero Ref if unknown).
func (n *Node) Predecessor() Ref { return n.pred }

// Create starts a new one-node ring.
func (n *Node) Create() {
	n.pred = Ref{}
	n.succs = []Ref{n.Ref()}
}

// Join joins the ring containing seed; done fires with the join outcome.
func (n *Node) Join(seed Ref, done func(error)) {
	n.pred = Ref{}
	n.lookupVia(seed, n.id, 0, func(succ Ref, _ int, err error) {
		if err != nil {
			if done != nil {
				done(err)
			}
			return
		}
		n.succs = []Ref{succ}
		if done != nil {
			done(nil)
		}
	})
}

// StartMaintenance begins periodic stabilization and finger repair.
func (n *Node) StartMaintenance() {
	n.stabilizer.Start()
	n.fixer.Start()
}

// StopMaintenance halts the periodic tasks.
func (n *Node) StopMaintenance() {
	n.stabilizer.Stop()
	n.fixer.Stop()
}

// serve answers Chord RPCs.
func (n *Node) serve(from netstack.Endpoint, body any, size int) (any, int) {
	switch m := body.(type) {
	case *findSuccReq:
		succ := n.Successor()
		if between(n.id, m.Key, succ.ID) {
			return &findSuccResp{Found: true, Next: succ}, respSize
		}
		return &findSuccResp{Next: n.closestPreceding(m.Key)}, respSize
	case *getStateReq:
		return &getStateResp{Pred: n.pred, Succs: append([]Ref(nil), n.succs...)}, respSize
	case *notifyReq:
		if n.pred.zero() || betweenOpen(n.pred.ID, m.Cand.ID, n.id) {
			n.pred = m.Cand
		}
		return &notifyOK{}, reqSize
	}
	return nil, 0
}

// closestPreceding picks the finger or successor-list entry closest to (but
// preceding) key — the routing step of the protocol.
func (n *Node) closestPreceding(key ID) Ref {
	best := n.Ref()
	consider := func(r Ref) {
		if r.zero() || r.ID == n.id {
			return
		}
		if betweenOpen(n.id, r.ID, key) && betweenOpen(best.ID, r.ID, key) {
			best = r
		}
	}
	for i := 63; i >= 0; i-- {
		consider(n.fingers[i])
	}
	for _, s := range n.succs {
		consider(s)
	}
	if best.ID == n.id {
		return n.Successor()
	}
	return best
}

// Lookup resolves the successor of key by iterative routing; done receives
// the owning node and the hop count.
func (n *Node) Lookup(key ID, done func(owner Ref, hops int, err error)) {
	n.Lookups++
	// Keys in (pred, self] are ours: answer locally instead of walking
	// the whole ring.
	if !n.pred.zero() && between(n.pred.ID, key, n.id) {
		done(n.Ref(), 0, nil)
		return
	}
	succ := n.Successor()
	if succ.ID == n.id || between(n.id, key, succ.ID) {
		done(succ, 0, nil)
		return
	}
	n.lookupVia(n.closestPreceding(key), key, 0, done)
}

// lookupVia continues an iterative lookup at the given hop.
func (n *Node) lookupVia(hop Ref, key ID, hops int, done func(Ref, int, error)) {
	if hops >= n.cfg.MaxLookupHops {
		n.LookupFails++
		done(Ref{}, hops, ErrLookupFailed)
		return
	}
	if hop.Addr == n.rpc.Addr() {
		// Routed back to ourselves: answer locally.
		succ := n.Successor()
		if between(n.id, key, succ.ID) {
			done(succ, hops, nil)
			return
		}
	}
	n.call(hop.Addr, &findSuccReq{Key: key}, func(body any, err error) {
		if err != nil {
			n.LookupFails++
			done(Ref{}, hops, fmt.Errorf("chord: hop %d to %v: %w", hops, hop.Addr, err))
			return
		}
		resp, ok := body.(*findSuccResp)
		if !ok {
			n.LookupFails++
			done(Ref{}, hops, ErrLookupFailed)
			return
		}
		n.LookupHops++
		if resp.Found {
			done(resp.Next, hops+1, nil)
			return
		}
		if resp.Next.Addr == hop.Addr {
			// No progress: the hop considers itself closest; take its word
			// for its successor on the next iteration.
			n.call(hop.Addr, &getStateReq{}, func(body any, err error) {
				if err != nil {
					n.LookupFails++
					done(Ref{}, hops+1, ErrLookupFailed)
					return
				}
				st := body.(*getStateResp)
				if len(st.Succs) == 0 {
					n.LookupFails++
					done(Ref{}, hops+1, ErrLookupFailed)
					return
				}
				done(st.Succs[0], hops+2, nil)
			})
			return
		}
		n.lookupVia(resp.Next, key, hops+1, done)
	})
}

func (n *Node) call(to netstack.Endpoint, body any, done func(any, error)) {
	n.rpc.Call(to, body, reqSize, netstack.CallOpts{
		Timeout: n.cfg.RPCTimeout,
		Retries: n.cfg.RPCRetries,
	}, done)
}

// stabilize is the periodic successor check: learn our successor's
// predecessor, adopt it if closer, refresh the successor list, notify.
func (n *Node) stabilize() {
	succ := n.Successor()
	if succ.ID == n.id && succ.Addr == n.rpc.Addr() {
		// Pointing at ourselves: if someone has notified us (we have a
		// predecessor), adopt it as successor — this is how the ring's
		// creator links in its first joiner.
		if !n.pred.zero() && n.pred.Addr != n.rpc.Addr() {
			n.succs = []Ref{n.pred}
		} else {
			return // alone in the ring
		}
		succ = n.Successor()
	}
	n.call(succ.Addr, &getStateReq{}, func(body any, err error) {
		if err != nil {
			// Successor unresponsive: fail over down the list.
			if len(n.succs) > 1 {
				n.succs = n.succs[1:]
			}
			return
		}
		st := body.(*getStateResp)
		if !st.Pred.zero() && betweenOpen(n.id, st.Pred.ID, succ.ID) {
			n.succs = append([]Ref{st.Pred}, n.succs...)
			if len(n.succs) > n.cfg.SuccListLen {
				n.succs = n.succs[:n.cfg.SuccListLen]
			}
		} else {
			// Merge successor's list after our immediate successor.
			merged := []Ref{succ}
			for _, s := range st.Succs {
				if s.ID != n.id && len(merged) < n.cfg.SuccListLen {
					merged = append(merged, s)
				}
			}
			n.succs = merged
		}
		n.call(n.Successor().Addr, &notifyReq{Cand: n.Ref()}, func(any, error) {})
	})
}

// fixFinger repairs one finger per tick.
func (n *Node) fixFinger() {
	i := n.nextFix
	n.nextFix = (n.nextFix + 1) % 64
	target := n.id + 1<<uint(i)
	n.Lookup(target, func(owner Ref, _ int, err error) {
		if err == nil {
			n.fingers[i] = owner
		}
	})
}

// Bootstrap wires this node into a consistent ring offline — successor
// list, predecessor, and fingers — from the full membership (every node's
// Ref, in any order; the list must include this node). It is the per-node
// half of BootstrapAll, usable when the other nodes live in different
// processes: a federated scenario derives the same global Ref list on
// every worker and bootstraps only its homed nodes.
func (n *Node) Bootstrap(all []Ref) {
	sorted := sortRefs(all)
	k := len(sorted)
	if k == 0 {
		return
	}
	i := 0
	for ; i < k; i++ {
		if sorted[i].ID == n.id {
			break
		}
	}
	if i == k {
		panic(fmt.Sprintf("chord: Bootstrap membership does not include node %016x", uint64(n.id)))
	}
	n.succs = n.succs[:0]
	for s := 1; s <= n.cfg.SuccListLen && s < k+1; s++ {
		n.succs = append(n.succs, sorted[(i+s)%k])
	}
	if len(n.succs) == 0 {
		n.succs = []Ref{n.Ref()}
	}
	n.pred = sorted[(i-1+k)%k]
	for f := 0; f < 64; f++ {
		target := n.id + 1<<uint(f)
		n.fingers[f] = successorOf(sorted, target)
	}
}

// BootstrapAll wires a set of nodes into a consistent ring offline —
// successors, predecessors, successor lists, and fingers — the "perfect
// initialization" used when an experiment's subject is data transfer rather
// than ring convergence.
func BootstrapAll(nodes []*Node) {
	refs := make([]Ref, len(nodes))
	for i, nd := range nodes {
		refs[i] = nd.Ref()
	}
	for _, nd := range nodes {
		nd.Bootstrap(refs)
	}
}

// sortRefs returns the refs in ascending ID order.
func sortRefs(refs []Ref) []Ref {
	sorted := append([]Ref(nil), refs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].ID < sorted[j-1].ID; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted
}

func successorOf(sorted []Ref, key ID) Ref {
	for _, r := range sorted {
		if r.ID >= key {
			return r
		}
	}
	return sorted[0]
}
