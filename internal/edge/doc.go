// Package edge models — and, live, implements — the boundary where
// applications meet the emulated core. It has two halves:
//
//   - Machine models the physical edge machines that host VNs (§4.2):
//     multiplexing several VNs onto one box trades scale for accuracy, so
//     the model serializes a shared CPU and NIC and applies a calibrated
//     efficiency loss (the paper's Fig. 6 break-even slide). Wrap a host's
//     injector with WrapInjector to charge kernel and NIC costs per packet.
//   - Gateway is the live edge: a real UDP socket on a federation worker
//     through which real, unmodified processes exchange datagrams with the
//     virtual network. A bind.GatewayTable maps each real five-tuple onto
//     an ingress VN; arrivals are admitted into virtual time only at
//     synchronization barriers, stamped at the arrival window's edge, and
//     deliveries to gateway-backed VNs are written back out the real
//     socket. Under real-time pacing (parcore.Pacing) this realizes the
//     paper's headline claim — unmodified applications observing emulated
//     latency and loss — end to end; see DESIGN.md §4 for the timing
//     discipline and what it does to determinism.
package edge
