package edge

// The live edge gateway: the one place where real packets from unmodified
// processes enter and leave the virtual-time emulation. A gateway binds one
// real UDP socket per worker; each datagram's real five-tuple is mapped
// onto an ingress VN by a bind.GatewayTable, the payload bytes become a
// virtual datagram from that VN to the mapping's virtual destination, and
// replies delivered to the ingress VN are written back out the real socket
// to the bound external endpoint.
//
// Timing discipline: real arrivals are queued by a reader goroutine and
// admitted into virtual time only at synchronization barriers (Admit),
// stamped at the arrival window's edge — never mid-window, so the
// conservative synchronization protocol (parcore.Drive) stays sound. The
// stamp is max(local clock, the coordinator-supplied floor), the latter
// being the maximum clock over all shards, so an admission can never fire
// before a peer shard's clock (the EOT invariant). Under real-time pacing
// the window edge trails the wall-clock arrival by at most one pacing
// quantum plus a barrier round, which is the gateway's ingress timestamp
// error; see DESIGN.md §4.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"modelnet/internal/bind"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// DefaultGatewayMaxDatagram bounds one real ingress datagram: an emulated
// MTU's worth of payload. Oversize datagrams are rejected and counted, not
// truncated.
const DefaultGatewayMaxDatagram = 1472

// DefaultGatewayPort is the virtual UDP port a gateway binds on each
// ingress VN when the mapping does not name one.
const DefaultGatewayPort = 4096

// defaultQueueCap bounds real datagrams buffered between barriers.
const defaultQueueCap = 1024

// GatewayConfig configures a worker's live edge gateway. It is JSON-able:
// in a federated run it travels to every worker inside the setup frame
// (the gateway "lease"), and each worker instantiates only the mappings
// whose ingress VN is homed on its shard.
type GatewayConfig struct {
	// Listen is the real UDP address to bind ("127.0.0.1:0" for loopback
	// demos, ":port" to accept traffic from other machines).
	Listen string `json:"listen"`
	// Maps are the ingress/egress bindings.
	Maps []GatewayMap `json:"maps"`
	// MaxDatagram bounds one ingress datagram's payload bytes; larger
	// datagrams are rejected (counted in Stats.Oversize). 0 means
	// DefaultGatewayMaxDatagram.
	MaxDatagram int `json:"max_datagram,omitempty"`
	// QueueCap bounds datagrams buffered between barriers; beyond it,
	// arrivals are dropped (Stats.QueueDrops). 0 means 1024.
	QueueCap int `json:"queue_cap,omitempty"`
}

// GatewayMap binds one ingress VN: real datagrams attributed to the VN are
// re-sent, inside the emulation, from (VN, Port) to (DstVN, DstPort), and
// virtual datagrams delivered to (VN, Port) leave the real socket toward
// the bound external endpoint.
type GatewayMap struct {
	// VN is the ingress virtual node the external flow impersonates.
	VN int `json:"vn"`
	// Peer optionally pins the external endpoint ("ip:port") statically;
	// empty means the first unknown real source to arrive claims this VN
	// dynamically (and may be evicted LRU under contention).
	Peer string `json:"peer,omitempty"`
	// DstVN/DstPort name the virtual destination ingress traffic is sent
	// to (an in-emulation service such as the live-ring echo responder).
	DstVN   int    `json:"dst_vn"`
	DstPort uint16 `json:"dst_port"`
	// Port is the virtual UDP port the gateway binds on VN; replies must
	// be addressed to it. 0 means DefaultGatewayPort.
	Port uint16 `json:"port,omitempty"`
}

// HomedMaps counts the mappings whose ingress VN the given predicate
// accepts — how a federated worker decides whether to host a gateway at
// all.
func (c *GatewayConfig) HomedMaps(homed func(pipes.VN) bool) int {
	n := 0
	for _, m := range c.Maps {
		if homed(pipes.VN(m.VN)) {
			n++
		}
	}
	return n
}

// GatewayStats counts a gateway's boundary traffic.
type GatewayStats struct {
	IngressPkts  uint64 `json:"ingress_pkts"`  // real datagrams admitted into virtual time
	IngressBytes uint64 `json:"ingress_bytes"` // their payload bytes
	EgressPkts   uint64 `json:"egress_pkts"`   // virtual deliveries written to the real socket
	EgressBytes  uint64 `json:"egress_bytes"`
	Oversize     uint64 `json:"oversize,omitempty"`    // rejected: payload over MaxDatagram
	Unmapped     uint64 `json:"unmapped,omitempty"`    // rejected: no VN grantable / no peer bound
	QueueDrops   uint64 `json:"queue_drops,omitempty"` // rejected: barrier queue full
	Collisions   uint64 `json:"collisions,omitempty"`  // dynamic claims that found the pool full
	Evictions    uint64 `json:"evictions,omitempty"`   // five-tuple bindings recycled LRU
}

// Merge folds another gateway's counters in.
func (s *GatewayStats) Merge(o GatewayStats) {
	s.IngressPkts += o.IngressPkts
	s.IngressBytes += o.IngressBytes
	s.EgressPkts += o.EgressPkts
	s.EgressBytes += o.EgressBytes
	s.Oversize += o.Oversize
	s.Unmapped += o.Unmapped
	s.QueueDrops += o.QueueDrops
	s.Collisions += o.Collisions
	s.Evictions += o.Evictions
}

// gatewayEntry is one instantiated mapping.
type gatewayEntry struct {
	m    GatewayMap
	sock *netstack.UDPSocket
	dst  netstack.Endpoint
	peer *net.UDPAddr // external endpoint (static, or learned at claim)
}

// pendingDatagram is one real arrival awaiting barrier admission.
type pendingDatagram struct {
	vn   pipes.VN
	data []byte
}

// Gateway is a live edge gateway bound to one real UDP socket.
type Gateway struct {
	conn        *net.UDPConn
	sched       *vtime.Scheduler
	maxDatagram int
	queueCap    int

	mu      sync.Mutex
	table   *bind.GatewayTable
	entries map[pipes.VN]*gatewayEntry
	pending []pendingDatagram
	stats   GatewayStats

	closed chan struct{}
	wg     sync.WaitGroup

	// clock stamps binding activity for LRU eviction; overridable in tests.
	clock func() int64
}

// NewGateway binds the real socket and instantiates every mapping whose
// ingress VN is homed (per the predicate; pass nil to accept all). host
// supplies the netstack stack of a homed VN, and sched the virtual-time
// scheduler admissions run on. The gateway's reader goroutine starts
// immediately, but nothing enters virtual time until Admit is called.
func NewGateway(cfg GatewayConfig, homed func(pipes.VN) bool, host func(pipes.VN) *netstack.Host, sched *vtime.Scheduler) (*Gateway, error) {
	if homed == nil {
		homed = func(pipes.VN) bool { return true }
	}
	listen := cfg.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("edge: gateway listen %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("edge: gateway listen %q: %w", listen, err)
	}
	g := &Gateway{
		conn:        conn,
		sched:       sched,
		maxDatagram: cfg.MaxDatagram,
		queueCap:    cfg.QueueCap,
		entries:     map[pipes.VN]*gatewayEntry{},
		closed:      make(chan struct{}),
		clock:       func() int64 { return time.Now().UnixNano() },
	}
	if g.maxDatagram <= 0 {
		g.maxDatagram = DefaultGatewayMaxDatagram
	}
	if g.queueCap <= 0 {
		g.queueCap = defaultQueueCap
	}
	var pool []pipes.VN
	local := conn.LocalAddr().String()
	for _, m := range cfg.Maps {
		vn := pipes.VN(m.VN)
		if !homed(vn) {
			continue
		}
		if _, dup := g.entries[vn]; dup {
			conn.Close()
			return nil, fmt.Errorf("edge: gateway maps VN %d twice", m.VN)
		}
		e := &gatewayEntry{m: m, dst: netstack.Endpoint{VN: pipes.VN(m.DstVN), Port: m.DstPort}}
		port := m.Port
		if port == 0 {
			port = DefaultGatewayPort
		}
		sock, err := host(vn).OpenUDP(port, g.egressHandler(e))
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("edge: gateway VN %d: %w", m.VN, err)
		}
		e.sock = sock
		g.entries[vn] = e
		if m.Peer == "" {
			pool = append(pool, vn)
		}
	}
	g.table = bind.NewGatewayTable(pool)
	for _, m := range cfg.Maps {
		vn := pipes.VN(m.VN)
		if m.Peer == "" || g.entries[vn] == nil {
			continue
		}
		ua, err := net.ResolveUDPAddr("udp", m.Peer)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("edge: gateway VN %d peer %q: %w", m.VN, m.Peer, err)
		}
		if err := g.table.Bind(bind.FiveTuple{Proto: "udp", Src: ua.String(), Dst: local}, vn); err != nil {
			conn.Close()
			return nil, err
		}
		g.entries[vn].peer = ua
	}
	if len(g.entries) == 0 {
		conn.Close()
		return nil, fmt.Errorf("edge: gateway has no homed mappings")
	}
	g.wg.Add(1)
	go g.read()
	return g, nil
}

// Addr reports the real address the gateway listens on.
func (g *Gateway) Addr() string { return g.conn.LocalAddr().String() }

// egressHandler writes virtual datagrams delivered to an ingress VN out
// the real socket toward the VN's bound external endpoint. It runs on the
// scheduler goroutine, during windows.
func (g *Gateway) egressHandler(e *gatewayEntry) netstack.UDPHandler {
	return func(from netstack.Endpoint, dg *netstack.Datagram) {
		g.mu.Lock()
		peer := e.peer
		if peer == nil {
			g.stats.Unmapped++
			g.mu.Unlock()
			return
		}
		data := dg.Data
		if data == nil {
			// Reference-payload datagrams carry no real bytes; emit a
			// zero-filled body of the declared length so an external
			// observer still sees the modeled size.
			data = make([]byte, dg.Len)
		}
		g.stats.EgressPkts++
		g.stats.EgressBytes += uint64(len(data))
		g.mu.Unlock()
		_, _ = g.conn.WriteToUDP(data, peer)
	}
}

// read is the socket reader goroutine: it validates, maps, and queues real
// arrivals; it never touches virtual time.
func (g *Gateway) read() {
	defer g.wg.Done()
	buf := make([]byte, g.maxDatagram+1)
	local := g.conn.LocalAddr().String()
	for {
		n, raddr, err := g.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-g.closed:
			default:
			}
			return
		}
		g.mu.Lock()
		switch {
		case n > g.maxDatagram:
			g.stats.Oversize++
		case len(g.pending) >= g.queueCap:
			g.stats.QueueDrops++
		default:
			key := bind.FiveTuple{Proto: "udp", Src: raddr.String(), Dst: local}
			vn, ok := g.table.Claim(key, g.clock())
			if !ok || g.entries[vn] == nil {
				g.stats.Unmapped++
				break
			}
			// A dynamic claim (or an eviction's rebind) moves the VN's
			// egress endpoint to the new flow.
			g.entries[vn].peer = raddr
			g.pending = append(g.pending, pendingDatagram{vn: vn, data: append([]byte(nil), buf[:n]...)})
		}
		g.stats.Collisions = g.table.Collisions
		g.stats.Evictions = g.table.Evictions
		g.mu.Unlock()
	}
}

// Admit schedules every queued real arrival as a virtual-time ingress
// event. Call it only at synchronization barriers, on the scheduler's
// goroutine. Each datagram is re-sent from its ingress VN's gateway socket
// at stamp = max(now, floor) — the arrival window's edge; floor is the
// coordinator's global clock bound (the maximum shard clock), which keeps
// admissions from firing before any peer shard's present. Returns the
// number of datagrams admitted.
func (g *Gateway) Admit(floor vtime.Time) int {
	g.mu.Lock()
	batch := g.pending
	g.pending = nil
	g.stats.IngressPkts += uint64(len(batch))
	for _, p := range batch {
		g.stats.IngressBytes += uint64(len(p.data))
	}
	g.mu.Unlock()
	if len(batch) == 0 {
		return 0
	}
	at := g.sched.Now()
	if floor > at {
		at = floor
	}
	for _, p := range batch {
		e := g.entries[p.vn]
		data := p.data
		g.sched.At(at, func() { e.sock.SendBytes(e.dst, data) })
	}
	return len(batch)
}

// Pending reports how many real arrivals are queued for the next barrier.
func (g *Gateway) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending)
}

// Stats snapshots the gateway counters.
func (g *Gateway) Stats() GatewayStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Close tears the gateway down: the real socket closes and the reader
// drains out. Queued but unadmitted datagrams are discarded.
func (g *Gateway) Close() {
	close(g.closed)
	g.conn.Close()
	g.wg.Wait()
}
