package edge

// The edge-machine model: structural where it matters (a single serialized
// CPU, a serialized NIC with a bounded backlog) and calibrated where the
// paper only gives end-to-end measurements — the efficiency factor eff(n)
// captures the context-switch and cache degradation the paper measures as
// the 76→65 instructions/byte break-even slide between nprog=1 and
// nprog=100 (Fig. 6); see DESIGN.md.

import (
	"math"

	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// MachineConfig describes one physical edge node.
type MachineConfig struct {
	CPUHz   float64 // instructions per second (CPI 1.0), e.g. 1e9
	LinkBps float64 // host NIC rate; 0 = unlimited
	// KernelPerPacket is the kernel instruction cost of one send/receive
	// (syscall, UDP/IP stack, driver).
	KernelPerPacket float64
	// Efficiency-loss coefficients (see eff): Base applies always,
	// Share scales with (1-1/n), Log with ln(n).
	OverheadBase, OverheadShare, OverheadLog float64
	// NICBacklog bounds send queueing before drops (default 10 ms).
	NICBacklog vtime.Duration
}

// DefaultMachineConfig models the paper's 1 GHz PIII edge nodes with
// 100 Mb/s Ethernet. The overhead coefficients are fitted to Fig. 6's
// break-even points (76/73/65 instructions per byte at nprog=1/2/100).
func DefaultMachineConfig() MachineConfig {
	return MachineConfig{
		CPUHz:           1e9,
		LinkBps:         100e6,
		KernelPerPacket: 6000,
		OverheadBase:    0.0188,
		OverheadShare:   0.0432,
		OverheadLog:     0.0260,
		NICBacklog:      10 * vtime.Millisecond,
	}
}

// Machine is one edge node: a serialized CPU shared by its processes and a
// serialized NIC.
type Machine struct {
	cfg   MachineConfig
	sched *vtime.Scheduler

	nprocs       int
	cpuBusy      vtime.Time
	nicBusy      vtime.Time
	CPUWork      vtime.Duration
	NICDrops     uint64
	PktsInjected uint64
}

// NewMachine creates an edge machine.
func NewMachine(sched *vtime.Scheduler, cfg MachineConfig) *Machine {
	return &Machine{cfg: cfg, sched: sched}
}

// AddProcess registers one hosted process (VN); the multiplexing degree
// feeds the efficiency model.
func (m *Machine) AddProcess() { m.nprocs++ }

// Nprocs reports the multiplexing degree.
func (m *Machine) Nprocs() int { return m.nprocs }

// eff is the CPU efficiency under multiplexing degree n.
func (m *Machine) eff() float64 {
	n := float64(m.nprocs)
	if n < 1 {
		n = 1
	}
	den := 1 + m.cfg.OverheadBase + m.cfg.OverheadShare*(1-1/n) + m.cfg.OverheadLog*math.Log(n)
	return 1 / den
}

// Exec schedules fn to run after the CPU has executed instr instructions
// for the calling process, serialized FIFO against all other work on the
// machine. This is how hosted senders model per-packet computation.
func (m *Machine) Exec(instr float64, fn func()) {
	now := m.sched.Now()
	start := now
	if m.cpuBusy > start {
		start = m.cpuBusy
	}
	d := vtime.DurationOf(instr / (m.cfg.CPUHz * m.eff()))
	m.cpuBusy = start.Add(d)
	m.CPUWork += d
	m.sched.At(m.cpuBusy, fn)
}

// CPUUtilization reports the busy fraction since time zero.
func (m *Machine) CPUUtilization() float64 {
	el := m.sched.Now().Seconds()
	if el <= 0 {
		return 0
	}
	return m.CPUWork.Seconds() / el
}

// WrapInjector returns an Injector that charges the machine's kernel CPU
// cost and NIC serialization before handing packets to inner (the
// emulator). Packets are delayed by NIC occupancy and dropped when the
// send queue exceeds the backlog bound.
func (m *Machine) WrapInjector(inner netstack.Injector) netstack.Injector {
	return &machineInjector{m: m, inner: inner}
}

type machineInjector struct {
	m     *Machine
	inner netstack.Injector
}

func (mi *machineInjector) Inject(src, dst pipes.VN, size int, payload any) bool {
	m := mi.m
	now := m.sched.Now()
	// Kernel send path on the shared CPU.
	kd := vtime.DurationOf(m.cfg.KernelPerPacket / (m.cfg.CPUHz * m.eff()))
	start := now
	if m.cpuBusy > start {
		start = m.cpuBusy
	}
	m.cpuBusy = start.Add(kd)
	m.CPUWork += kd

	// NIC serialization. The backlog bound measures time spent queued for
	// the NIC after the kernel hands the packet over (txStart - when) —
	// not elapsed CPU-queue time, which is accuracy-neutral compute
	// scheduling, not a full transmit ring.
	when := m.cpuBusy
	if m.cfg.LinkBps > 0 {
		txStart := when
		if m.nicBusy > txStart {
			txStart = m.nicBusy
		}
		backlog := m.cfg.NICBacklog
		if backlog <= 0 {
			backlog = 10 * vtime.Millisecond
		}
		if txStart.Sub(when) > backlog {
			m.NICDrops++
			return false
		}
		m.nicBusy = txStart.Add(vtime.DurationOf(float64(size*8) / m.cfg.LinkBps))
		when = m.nicBusy
	}
	m.PktsInjected++
	if when <= now {
		return mi.inner.Inject(src, dst, size, payload)
	}
	m.sched.At(when, func() { mi.inner.Inject(src, dst, size, payload) })
	return true
}
