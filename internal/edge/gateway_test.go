package edge_test

// Gateway unit tests against a sequential in-process emulation: the real
// socket, the dynamic five-tuple claim, barrier admission, and the egress
// path back to the learned external endpoint — without the federation
// machinery (internal/experiments/live_test.go covers that end to end).

import (
	"net"
	"testing"
	"time"

	"modelnet"
	"modelnet/internal/edge"
	"modelnet/internal/netstack"
)

// liveStar builds a 2-VN star emulation with a UDP echo on VN 1 port 7 and
// a gateway mapping VN 0 onto it.
func liveStar(t *testing.T, cfg edge.GatewayConfig) (*modelnet.Emulation, *edge.Gateway) {
	t.Helper()
	attr := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(10), LatencySec: modelnet.Ms(2), QueuePkts: 50}
	ideal := modelnet.IdealProfile()
	em, err := modelnet.Run(modelnet.Star(2, attr), modelnet.Options{Profile: &ideal, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	echoHost := em.NewHost(1)
	var echo *netstack.UDPSocket
	echo, err = echoHost.OpenUDP(7, func(from netstack.Endpoint, dg *netstack.Datagram) {
		echo.SendBytes(from, dg.Data)
	})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := edge.NewGateway(cfg, nil, func(vn modelnet.VN) *netstack.Host { return em.NewHost(vn) }, em.Sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	return em, gw
}

// waitPending polls until the gateway has queued n real arrivals for the
// next barrier; real sockets are asynchronous, virtual time is not.
func waitPending(t *testing.T, gw *edge.Gateway, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if gw.Pending() >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("gateway never queued %d arrivals: %+v", n, gw.Stats())
}

func TestGatewaySequentialRoundTrip(t *testing.T) {
	em, gw := liveStar(t, edge.GatewayConfig{
		Listen: "127.0.0.1:0",
		Maps:   []edge.GatewayMap{{VN: 0, DstVN: 1, DstPort: 7}},
	})

	client, err := net.Dial("udp", gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	// The datagram sits queued — nothing enters virtual time mid-window.
	waitPending(t, gw, 1)
	if st := gw.Stats(); st.IngressPkts != 0 {
		t.Fatalf("ingress admitted before a barrier: %+v", st)
	}

	// Admit at the "barrier" and run the virtual clock: VN0 -> VN1 echo ->
	// VN0, whose delivery egresses out the real socket.
	if n := gw.Admit(0); n != 1 {
		t.Fatalf("admitted %d datagrams, want 1", n)
	}
	em.RunFor(modelnet.Seconds(1))

	_ = client.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "ping" {
		t.Fatalf("echo payload %q, want %q", buf[:n], "ping")
	}
	st := gw.Stats()
	if st.IngressPkts != 1 || st.EgressPkts != 1 {
		t.Fatalf("counters %+v, want 1 in / 1 out", st)
	}
}

func TestGatewayAdmitStampsAtFloor(t *testing.T) {
	em, gw := liveStar(t, edge.GatewayConfig{
		Listen: "127.0.0.1:0",
		Maps:   []edge.GatewayMap{{VN: 0, DstVN: 1, DstPort: 7}},
	})
	client, err := net.Dial("udp", gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Write([]byte("x"))
	waitPending(t, gw, 1)

	// A floor ahead of the local clock pushes the ingress into the future:
	// nothing may fire before it.
	floor := modelnet.Seconds(0.5)
	gw.Admit(modelnet.Time(0).Add(floor))
	em.RunFor(modelnet.Seconds(0.4))
	if st := gw.Stats(); st.EgressPkts != 0 {
		t.Fatalf("egress before the floor: %+v", st)
	}
	em.RunFor(modelnet.Seconds(0.2))
	if st := gw.Stats(); st.EgressPkts != 1 {
		t.Fatalf("egress after the floor: %+v, want 1", st)
	}
}
