package edge

import (
	"testing"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

func TestEffMonotone(t *testing.T) {
	sched := vtime.NewScheduler()
	m := NewMachine(sched, DefaultMachineConfig())
	var prev float64 = 2
	for _, n := range []int{1, 2, 4, 16, 100} {
		m.nprocs = n
		e := m.eff()
		if e >= prev {
			t.Errorf("eff(%d) = %v not decreasing (prev %v)", n, e, prev)
		}
		if e <= 0 || e > 1 {
			t.Errorf("eff(%d) = %v out of range", n, e)
		}
		prev = e
	}
}

func TestEffCalibration(t *testing.T) {
	// Break-even compute budget ≈ linkPayloadCap instructions/byte at each
	// multiplexing degree: check the fitted anchor points within 2
	// instructions/byte of the paper's 76/73/65.
	sched := vtime.NewScheduler()
	cfg := DefaultMachineConfig()
	m := NewMachine(sched, cfg)
	// Payload capacity of the 100 Mb/s link for 1500 B packets with UDP
	// headers: 1500/1528 of 100 Mb/s => bytes/s.
	payloadBps := cfg.LinkBps * 1500 / 1528 / 8
	anchor := map[int]float64{1: 76, 2: 73, 100: 65}
	for n, want := range anchor {
		m.nprocs = n
		// CPU-side bytes/s at compute c instr/byte:
		// cpuBytes = CPUHz*eff / (c + kernel/1500); break-even at payloadBps.
		c := cfg.CPUHz*m.eff()/payloadBps - cfg.KernelPerPacket/1500
		if c < want-2 || c > want+2 {
			t.Errorf("break-even(%d) = %.1f instr/byte, want ≈%v", n, c, want)
		}
	}
}

func TestExecSerializes(t *testing.T) {
	sched := vtime.NewScheduler()
	cfg := DefaultMachineConfig()
	cfg.OverheadBase, cfg.OverheadShare, cfg.OverheadLog = 0, 0, 0
	m := NewMachine(sched, cfg)
	m.AddProcess()
	m.AddProcess()
	var done []vtime.Time
	// Two processes each demand 1e6 instructions: at 1 GHz they finish at
	// 1 ms and 2 ms (serialized), not both at 1 ms.
	m.Exec(1e6, func() { done = append(done, sched.Now()) })
	m.Exec(1e6, func() { done = append(done, sched.Now()) })
	sched.Run()
	if len(done) != 2 {
		t.Fatal("exec callbacks lost")
	}
	if done[0] != vtime.Time(1*vtime.Millisecond) || done[1] != vtime.Time(2*vtime.Millisecond) {
		t.Errorf("completion times %v, want 1ms,2ms", done)
	}
}

type countInjector struct {
	n     int
	bytes int
	at    []vtime.Time
	sched *vtime.Scheduler
}

func (c *countInjector) Inject(src, dst pipes.VN, size int, payload any) bool {
	c.n++
	c.bytes += size
	c.at = append(c.at, c.sched.Now())
	return true
}

func TestWrapInjectorSerializesNIC(t *testing.T) {
	sched := vtime.NewScheduler()
	cfg := DefaultMachineConfig()
	cfg.LinkBps = 8e6 // 1 ms per 1000 B packet
	cfg.KernelPerPacket = 0
	m := NewMachine(sched, cfg)
	m.AddProcess()
	sink := &countInjector{sched: sched}
	inj := m.WrapInjector(sink)
	for i := 0; i < 5; i++ {
		inj.Inject(0, 1, 1000, nil)
	}
	sched.Run()
	if sink.n != 5 {
		t.Fatalf("injected %d", sink.n)
	}
	for i := 1; i < len(sink.at); i++ {
		gap := sink.at[i].Sub(sink.at[i-1])
		if gap != vtime.Duration(vtime.Millisecond) {
			t.Errorf("gap %d = %v, want 1ms", i, gap)
		}
	}
}

func TestWrapInjectorDropsOnBacklog(t *testing.T) {
	sched := vtime.NewScheduler()
	cfg := DefaultMachineConfig()
	cfg.LinkBps = 1e6
	cfg.NICBacklog = 2 * vtime.Millisecond
	m := NewMachine(sched, cfg)
	m.AddProcess()
	sink := &countInjector{sched: sched}
	inj := m.WrapInjector(sink)
	accepted := 0
	for i := 0; i < 100; i++ {
		if inj.Inject(0, 1, 1500, nil) {
			accepted++
		}
	}
	if m.NICDrops == 0 {
		t.Error("no NIC drops under backlog")
	}
	if accepted == 100 {
		t.Error("all packets accepted despite tiny link")
	}
	sched.Run()
	if sink.n != accepted {
		t.Errorf("sink got %d, accepted %d", sink.n, accepted)
	}
}

// Integration: hosts on one machine share its NIC, so two senders see
// roughly half the link each even over an uncongested emulated path.
func TestMachineSharedByHosts(t *testing.T) {
	g := topology.Star(3, topology.LinkAttrs{BandwidthBps: 1e9, LatencySec: 0.001, QueuePkts: 100})
	b, err := bind.Bind(g, bind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, g, b, nil, emucore.IdealProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMachineConfig()
	cfg.LinkBps = 10e6
	cfg.KernelPerPacket = 0
	m := NewMachine(sched, cfg)
	reg := regAdapter{emu}
	inj := m.WrapInjector(emu)
	h0 := netstack.NewHost(0, sched, inj, reg)
	h1 := netstack.NewHost(1, sched, inj, reg)
	m.AddProcess()
	m.AddProcess()
	h2 := netstack.NewHost(2, sched, emu, reg)
	rcv := 0
	s, _ := h2.OpenUDP(9, func(from netstack.Endpoint, dg *netstack.Datagram) { rcv += dg.Len })
	_ = s
	s0, _ := h0.OpenUDP(0, nil)
	s1, _ := h1.OpenUDP(0, nil)
	// Each host offers 10 Mb/s: together 20 Mb/s into a 10 Mb/s host NIC.
	for i := 0; i < 800; i++ {
		i := i
		sched.At(vtime.Time(i)*vtime.Time(1200*vtime.Microsecond), func() {
			s0.SendTo(netstack.Endpoint{VN: 2, Port: 9}, 1472, nil)
			s1.SendTo(netstack.Endpoint{VN: 2, Port: 9}, 1472, nil)
		})
	}
	sched.Run()
	dur := 0.96 // 800 * 1.2ms
	gotMbps := float64(rcv*8) / dur / 1e6
	if gotMbps > 10.5 {
		t.Errorf("shared NIC passed %v Mb/s, cap 10", gotMbps)
	}
	if gotMbps < 8 {
		t.Errorf("shared NIC only passed %v Mb/s", gotMbps)
	}
}

type regAdapter struct{ e *emucore.Emulator }

func (r regAdapter) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	r.e.RegisterVN(vn, emucore.DeliverFunc(fn))
}

func TestNICBacklogDropHorizon(t *testing.T) {
	// The backlog bound is a precise horizon, not just "drops eventually":
	// with a 1 ms-per-packet NIC and a B-ms backlog, an instantaneous
	// burst gets exactly floor(B/tx)+1 packets through — those whose NIC
	// queueing delay is still ≤ B — and every later packet is dropped.
	cases := []struct {
		backlog  vtime.Duration
		accepted int
	}{
		{2 * vtime.Millisecond, 3},
		{5 * vtime.Millisecond, 6},
		{0, 11}, // zero config falls back to the documented 10 ms default
	}
	for _, tc := range cases {
		sched := vtime.NewScheduler()
		cfg := DefaultMachineConfig()
		cfg.LinkBps = 8e6 // 1 ms per 1000 B packet
		cfg.KernelPerPacket = 0
		cfg.NICBacklog = tc.backlog
		m := NewMachine(sched, cfg)
		m.AddProcess()
		sink := &countInjector{sched: sched}
		inj := m.WrapInjector(sink)
		accepted := 0
		for i := 0; i < 40; i++ {
			if inj.Inject(0, 1, 1000, nil) {
				accepted++
			}
		}
		if accepted != tc.accepted {
			t.Errorf("backlog %v: accepted %d of a burst, want %d", tc.backlog, accepted, tc.accepted)
		}
		if got := int(m.NICDrops); got != 40-tc.accepted {
			t.Errorf("backlog %v: NICDrops = %d, want %d", tc.backlog, got, 40-tc.accepted)
		}
		sched.Run()
		if sink.n != accepted {
			t.Errorf("backlog %v: sink got %d, accepted %d", tc.backlog, sink.n, accepted)
		}
	}
}

func TestNICBacklogMeasuresNICQueueingNotCPU(t *testing.T) {
	// The horizon is time queued *for the NIC* after the kernel hands the
	// packet over (txStart - when), not elapsed CPU-queue time: a slow
	// kernel that paces packets out slower than the link drains them must
	// never trip the backlog bound, however deep the CPU queue gets.
	sched := vtime.NewScheduler()
	cfg := DefaultMachineConfig()
	cfg.LinkBps = 8e6                  // 1 ms per 1000 B packet
	cfg.KernelPerPacket = 2e6          // 2 ms of kernel CPU per send
	cfg.NICBacklog = vtime.Duration(1) // 1 ns: any NIC queueing at all drops
	cfg.OverheadBase, cfg.OverheadShare, cfg.OverheadLog = 0, 0, 0
	m := NewMachine(sched, cfg)
	m.AddProcess()
	sink := &countInjector{sched: sched}
	inj := m.WrapInjector(sink)
	for i := 0; i < 20; i++ {
		if !inj.Inject(0, 1, 1000, nil) {
			t.Fatalf("packet %d dropped: CPU queueing charged against the NIC backlog", i)
		}
	}
	if m.NICDrops != 0 {
		t.Errorf("NICDrops = %d behind a slow kernel", m.NICDrops)
	}
	sched.Run()
	if sink.n != 20 {
		t.Errorf("sink got %d of 20", sink.n)
	}
}
