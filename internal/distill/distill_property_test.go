package distill

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"modelnet/internal/bind"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
)

// Deeper distillation properties, complementing the shape tests.

// Property: walk-in bounds path length at (2·walkin)+1 pipes, the paper's
// headline cost reduction.
func TestWalkInPathLengthBound(t *testing.T) {
	f := func(seed int64, walkRaw uint8) bool {
		walkIn := int(walkRaw)%2 + 1
		cfg := topology.TransitStubConfig{
			TransitDomains: 1, TransitPerDomain: 3,
			StubsPerTransit: 2, RoutersPerStub: 3, ClientsPerStub: 2,
			TransitTransit: topology.LinkAttrs{BandwidthBps: 100e6, LatencySec: 0.02, QueuePkts: 50},
			TransitStub:    topology.LinkAttrs{BandwidthBps: 45e6, LatencySec: 0.01, QueuePkts: 50},
			StubStub:       topology.LinkAttrs{BandwidthBps: 100e6, LatencySec: 0.002, QueuePkts: 50},
			ClientStub:     topology.LinkAttrs{BandwidthBps: 1e6, LatencySec: 0.001, QueuePkts: 20},
			Seed:           seed,
		}
		g := topology.TransitStub(cfg)
		res, err := Distill(g, Spec{Mode: WalkIn, WalkIn: walkIn})
		if err != nil {
			return false
		}
		m, err := bind.BuildMatrix(res.Graph, res.Graph.Clients())
		if err != nil {
			return false
		}
		n := m.NumVNs()
		// The canonical distilled path is (2·walkin)+1 pipes. For
		// walk-in = 1 that bound is structural; for deeper walk-ins,
		// shortest-path routing may zig-zag through preserved stub links
		// when that's lower latency, so allow the extra preserved layer.
		bound := 2*walkIn + 1
		if walkIn > 1 {
			bound += 2 * (walkIn - 1)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				r, ok := m.Lookup(pipes.VN(i), pipes.VN(j))
				if !ok {
					return false
				}
				if len(r) > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: end-to-end preserves pairwise path latency exactly (sum along
// the shortest path), for random ring shapes.
func TestEndToEndLatencyPreservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		routers := rng.Intn(6) + 3
		vns := rng.Intn(3) + 1
		g := topology.Ring(routers, vns,
			topology.LinkAttrs{BandwidthBps: 20e6, LatencySec: float64(rng.Intn(10)+1) * 1e-3, QueuePkts: 30},
			topology.LinkAttrs{BandwidthBps: 2e6, LatencySec: float64(rng.Intn(5)+1) * 1e-3, QueuePkts: 20})
		res, err := Distill(g, Spec{Mode: EndToEnd})
		if err != nil {
			return false
		}
		// Compare each collapsed pipe's latency against the original
		// graph's shortest-path latency.
		orig, err := bind.BuildMatrix(g, g.Clients())
		if err != nil {
			return false
		}
		homes := g.Clients()
		for _, l := range res.Graph.Links {
			i, j := int(l.Src), int(l.Dst)
			r, ok := orig.Lookup(pipes.VN(i), pipes.VN(j))
			if !ok {
				return false
			}
			want := 0.0
			for _, pid := range r {
				want += g.Links[pid].Attr.LatencySec
			}
			got := l.Attr.LatencySec
			if got < want-1e-9 || got > want+1e-9 {
				return false
			}
			_ = homes
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Distilled graphs survive GML round trips (the pipeline can be staged
// across tools).
func TestDistilledGraphGMLRoundTrip(t *testing.T) {
	g := topology.Ring(6, 3,
		topology.LinkAttrs{BandwidthBps: 20e6, LatencySec: 0.005, QueuePkts: 30},
		topology.LinkAttrs{BandwidthBps: 2e6, LatencySec: 0.001, QueuePkts: 20})
	for _, spec := range []Spec{
		{Mode: EndToEnd},
		{Mode: WalkIn, WalkIn: 1},
	} {
		res, err := Distill(g, spec)
		if err != nil {
			t.Fatalf("%v: %v", spec.Mode, err)
		}
		var buf bytes.Buffer
		if err := topology.WriteGML(&buf, res.Graph); err != nil {
			t.Fatal(err)
		}
		back, err := topology.ReadGML(&buf)
		if err != nil {
			t.Fatalf("%v: %v", spec.Mode, err)
		}
		if back.NumNodes() != res.Graph.NumNodes() || back.NumLinks() != res.Graph.NumLinks() {
			t.Fatalf("%v: round trip changed shape", spec.Mode)
		}
		for i := range back.Links {
			if back.Links[i].Attr != res.Graph.Links[i].Attr {
				t.Fatalf("%v: link %d attrs changed", spec.Mode, i)
			}
		}
	}
}
