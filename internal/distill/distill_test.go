package distill

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"modelnet/internal/topology"
)

func attrs(mbps, ms float64) topology.LinkAttrs {
	return topology.LinkAttrs{BandwidthBps: mbps * 1e6, LatencySec: ms * 1e-3, QueuePkts: 10}
}

func paperRing() *topology.Graph {
	// §4.1: 20 routers at 20 Mb/s, 20 VNs each over 2 Mb/s links.
	return topology.Ring(20, 20, attrs(20, 5), attrs(2, 1))
}

func TestCollapsePath(t *testing.T) {
	a := []topology.LinkAttrs{
		{BandwidthBps: 10e6, LatencySec: 0.005, LossRate: 0.1, QueuePkts: 5, Cost: 2},
		{BandwidthBps: 2e6, LatencySec: 0.001, LossRate: 0.2, QueuePkts: 9, Cost: 3},
		{BandwidthBps: 20e6, LatencySec: 0.010, LossRate: 0.0, QueuePkts: 7, Cost: 5},
	}
	c := CollapsePath(a)
	if c.BandwidthBps != 2e6 {
		t.Errorf("bw = %v, want min 2e6", c.BandwidthBps)
	}
	if math.Abs(c.LatencySec-0.016) > 1e-12 {
		t.Errorf("lat = %v, want 0.016", c.LatencySec)
	}
	wantLoss := 1 - 0.9*0.8*1.0
	if math.Abs(c.LossRate-wantLoss) > 1e-12 {
		t.Errorf("loss = %v, want %v", c.LossRate, wantLoss)
	}
	if c.QueuePkts != 9 {
		t.Errorf("queue = %d, want bottleneck's 9", c.QueuePkts)
	}
	if c.Cost != 10 {
		t.Errorf("cost = %v, want 10", c.Cost)
	}
}

// Property: collapse algebra — bandwidth is min, latency is additive,
// reliability multiplicative, under any split of the path into segments.
func TestCollapseCompositionProperty(t *testing.T) {
	f := func(seed int64, cut uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		path := make([]topology.LinkAttrs, n)
		for i := range path {
			path[i] = topology.LinkAttrs{
				BandwidthBps: 1e6 + rng.Float64()*99e6,
				LatencySec:   rng.Float64() * 0.05,
				LossRate:     rng.Float64() * 0.3,
				QueuePkts:    rng.Intn(50) + 1,
			}
		}
		k := int(cut)%(n-1) + 1
		whole := CollapsePath(path)
		left := CollapsePath(path[:k])
		right := CollapsePath(path[k:])
		joined := CollapsePath([]topology.LinkAttrs{left, right})
		return math.Abs(whole.BandwidthBps-joined.BandwidthBps) < 1e-6 &&
			math.Abs(whole.LatencySec-joined.LatencySec) < 1e-12 &&
			math.Abs(whole.LossRate-joined.LossRate) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFrontiers(t *testing.T) {
	g := paperRing()
	fr := Frontiers(g)
	if len(fr) != 2 {
		t.Fatalf("frontier count = %d, want 2 (VNs, routers)", len(fr))
	}
	if len(fr[0]) != 400 {
		t.Errorf("frontier 0 size = %d, want 400 VNs", len(fr[0]))
	}
	if len(fr[1]) != 20 {
		t.Errorf("frontier 1 size = %d, want 20 routers", len(fr[1]))
	}
}

func TestFrontiersDeepChain(t *testing.T) {
	// client - s1 - s2 - s3 - s4 - client : frontiers shrink to center.
	g := topology.New()
	c1 := g.AddNode(topology.Client, "c1")
	prev := c1
	var mids []topology.NodeID
	for i := 0; i < 5; i++ {
		s := g.AddNode(topology.Stub, "s")
		mids = append(mids, s)
		g.AddDuplex(prev, s, attrs(10, 1))
		prev = s
	}
	c2 := g.AddNode(topology.Client, "c2")
	g.AddDuplex(prev, c2, attrs(10, 1))
	fr := Frontiers(g)
	// f0={c1,c2} f1={s0,s4} f2={s1,s3} f3={s2}
	if len(fr) != 4 {
		t.Fatalf("frontiers = %d, want 4", len(fr))
	}
	if len(fr[3]) != 1 || fr[3][0] != mids[2] {
		t.Errorf("center = %v, want {%v}", fr[3], mids[2])
	}
}

func TestHopByHopIsIsomorphic(t *testing.T) {
	g := paperRing()
	r, err := Distill(g, Spec{Mode: HopByHop})
	if err != nil {
		t.Fatal(err)
	}
	if r.Graph.NumNodes() != g.NumNodes() || r.Graph.NumLinks() != g.NumLinks() {
		t.Fatalf("hop-by-hop changed shape: %d/%d nodes %d/%d links",
			r.Graph.NumNodes(), g.NumNodes(), r.Graph.NumLinks(), g.NumLinks())
	}
	if r.MeshLinks != 0 {
		t.Errorf("mesh links = %d", r.MeshLinks)
	}
}

func TestEndToEndPaperCounts(t *testing.T) {
	// §4.1: "The end-to-end distillation contains 79,800 pipes, one for
	// each VN pair, each with a bandwidth of 2 Mb/s." We store directed
	// pipes: 159,600.
	g := paperRing()
	r, err := Distill(g, Spec{Mode: EndToEnd})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Graph.NumLinks(); got != 400*399 {
		t.Fatalf("end-to-end pipes = %d, want %d", got, 400*399)
	}
	if r.Graph.NumNodes() != 400 {
		t.Errorf("nodes = %d, want 400 (VNs only)", r.Graph.NumNodes())
	}
	for _, l := range r.Graph.Links {
		if l.Attr.BandwidthBps != 2e6 {
			t.Fatalf("collapsed pipe bandwidth %v, want 2 Mb/s (access bottleneck)", l.Attr.BandwidthBps)
		}
	}
}

func TestLastMilePaperCounts(t *testing.T) {
	// §4.1: "The last-mile distillation preserves the 400 edge links to
	// the VNs, and maps the ring itself to a fully connected mesh of 190
	// links." 400 duplex access links = 800 directed preserved; 190
	// unordered mesh pairs = 380 directed.
	g := paperRing()
	r, err := Distill(g, Spec{Mode: WalkIn, WalkIn: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.PreservedLinks != 800 {
		t.Errorf("preserved = %d, want 800", r.PreservedLinks)
	}
	if r.MeshLinks != 380 {
		t.Errorf("mesh = %d, want 380", r.MeshLinks)
	}
	if got := r.Graph.NumLinks(); got != 1180 {
		t.Errorf("total links = %d, want 1180", got)
	}
	// Paths are now at most 3 hops: access, mesh, access.
	if r.Graph.NumNodes() != 420 {
		t.Errorf("nodes = %d, want 420", r.Graph.NumNodes())
	}
}

func TestWalkInPreservesAttrs(t *testing.T) {
	g := paperRing()
	r, err := Distill(g, Spec{Mode: WalkIn, WalkIn: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range r.Graph.Links {
		switch r.Graph.Class(l) {
		case topology.ClientStub:
			if l.Attr.BandwidthBps != 2e6 {
				t.Fatalf("access link bw %v", l.Attr.BandwidthBps)
			}
		default:
			// Mesh pipe: bottleneck is a 20 Mb/s ring link; latency is a
			// multiple of the 5 ms ring hop.
			if l.Attr.BandwidthBps != 20e6 {
				t.Fatalf("mesh pipe bw %v, want 20 Mb/s", l.Attr.BandwidthBps)
			}
			hops := l.Attr.LatencySec / 0.005
			if hops < 0.99 || hops > 10.01 {
				t.Fatalf("mesh latency %v implies %v ring hops", l.Attr.LatencySec, hops)
			}
		}
	}
}

func TestWalkInDeeperPreservesMore(t *testing.T) {
	// On a chain topology, walk-in=2 should preserve more links than
	// walk-in=1 and mesh fewer nodes.
	cfg := topology.TransitStubConfig{
		TransitDomains: 1, TransitPerDomain: 4, StubsPerTransit: 2,
		RoutersPerStub: 3, ClientsPerStub: 2,
		TransitTransit: attrs(155, 20), TransitStub: attrs(45, 10),
		StubStub: attrs(100, 2), ClientStub: attrs(1, 1), Seed: 3,
	}
	g := topology.TransitStub(cfg)
	r1, err := Distill(g, Spec{Mode: WalkIn, WalkIn: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Distill(g, Spec{Mode: WalkIn, WalkIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r2.PreservedLinks <= r1.PreservedLinks {
		t.Errorf("walk-in 2 preserved %d ≤ walk-in 1's %d", r2.PreservedLinks, r1.PreservedLinks)
	}
}

func TestWalkOutKeepsCenterLinks(t *testing.T) {
	// Chain: c - s1 - s2 - s3 - s4 - s5 - c. Center frontier = {s3}.
	// Walk-out=1 preserves frontiers {s2,s4}(? depends) around center and
	// their interconnecting links.
	g := topology.New()
	c1 := g.AddNode(topology.Client, "c1")
	prev := c1
	for i := 0; i < 5; i++ {
		s := g.AddNode(topology.Stub, "s")
		g.AddDuplex(prev, s, attrs(10, 1))
		prev = s
	}
	c2 := g.AddNode(topology.Client, "c2")
	g.AddDuplex(prev, c2, attrs(10, 1))

	rIn, err := Distill(g, Spec{Mode: WalkIn, WalkIn: 1})
	if err != nil {
		t.Fatal(err)
	}
	rOut, err := Distill(g, Spec{Mode: WalkOut, WalkIn: 1, WalkOut: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rOut.PreservedLinks <= rIn.PreservedLinks {
		t.Errorf("walk-out preserved %d ≤ walk-in's %d; center links lost",
			rOut.PreservedLinks, rIn.PreservedLinks)
	}
}

func TestEndToEndLatencyEqualsPathLatency(t *testing.T) {
	// Build a line: c0 - r - c1 with known latencies; collapsed pipe
	// latency must equal the sum.
	g := topology.New()
	c0 := g.AddNode(topology.Client, "c0")
	r0 := g.AddNode(topology.Stub, "r0")
	c1 := g.AddNode(topology.Client, "c1")
	g.AddDuplex(c0, r0, attrs(10, 3))
	g.AddDuplex(r0, c1, attrs(10, 7))
	res, err := Distill(g, Spec{Mode: EndToEnd})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumLinks() != 2 {
		t.Fatalf("links = %d", res.Graph.NumLinks())
	}
	for _, l := range res.Graph.Links {
		if math.Abs(l.Attr.LatencySec-0.010) > 1e-9 {
			t.Errorf("collapsed latency %v, want 0.010", l.Attr.LatencySec)
		}
	}
}

func TestDistillErrors(t *testing.T) {
	g := paperRing()
	if _, err := Distill(g, Spec{Mode: WalkIn, WalkIn: 0}); err == nil {
		t.Error("walk-in 0 accepted")
	}
	if _, err := Distill(g, Spec{Mode: Mode(99)}); err == nil {
		t.Error("bogus mode accepted")
	}
	bad := topology.New()
	bad.AddNode(topology.Client, "x")
	if _, err := Distill(bad, Spec{Mode: HopByHop}); err == nil {
		t.Error("invalid topology accepted")
	}
}

// Property: for random connected topologies, end-to-end distillation yields
// exactly n(n-1) directed pipes among n VNs, and every pipe's latency is at
// least the direct link latency lower bound (collapse can't beat physics).
func TestEndToEndShapeProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		g := topology.Ring(4+int(seed%5), 2, attrs(20, 5), attrs(2, 1))
		res, err := Distill(g, Spec{Mode: EndToEnd})
		if err != nil {
			return false
		}
		n := len(g.Clients())
		if res.Graph.NumLinks() != n*(n-1) {
			return false
		}
		for _, l := range res.Graph.Links {
			if l.Attr.LatencySec < 0.002-1e-12 { // two access links minimum
				return false
			}
			if l.Attr.BandwidthBps > 2e6+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
