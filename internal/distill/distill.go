// Package distill implements ModelNet's Distillation phase (§4.1): it
// transforms the target topology into a pipe topology, optionally trading
// accuracy for reduced emulation cost by collapsing interior paths.
//
// The continuum runs from hop-by-hop (isomorphic to the target network,
// every link emulated, all congestion captured) to end-to-end (a full mesh
// of collapsed pipes among VNs, lowest cost, no interior contention). The
// walk-in knob preserves the first walk-in links from the edges, replacing
// the interior with a full mesh of collapsed pipes; walk-out additionally
// preserves the topological center to model under-provisioned cores.
package distill

import (
	"container/heap"
	"fmt"
	"math"

	"modelnet/internal/topology"
)

// Mode selects the distillation strategy.
type Mode int

const (
	// HopByHop emulates every link in the target network.
	HopByHop Mode = iota
	// EndToEnd collapses every VN-pair path into a single pipe.
	EndToEnd
	// WalkIn preserves Spec.WalkIn frontier sets of links from the edges
	// and meshes the interior. WalkIn=1 is a "last-mile" emulation.
	WalkIn
	// WalkOut is WalkIn plus preservation of the topological center
	// (Spec.WalkOut frontier sets deep), for under-provisioned cores.
	WalkOut
)

func (m Mode) String() string {
	switch m {
	case HopByHop:
		return "hop-by-hop"
	case EndToEnd:
		return "end-to-end"
	case WalkIn:
		return "walk-in"
	case WalkOut:
		return "walk-out"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Spec configures a distillation.
type Spec struct {
	Mode    Mode
	WalkIn  int // frontier sets preserved from the edges (WalkIn/WalkOut modes)
	WalkOut int // frontier sets preserved around the center (WalkOut mode)
}

// Result is a distilled topology. Graph's link IDs are the pipe IDs the
// emulation will use.
type Result struct {
	Graph *topology.Graph
	Spec  Spec
	// PreservedLinks counts target links carried through unmodified;
	// MeshLinks counts synthesized collapsed pipes (directed).
	PreservedLinks int
	MeshLinks      int
}

// Distill applies spec to the target topology g. The input graph is not
// modified.
func Distill(g *topology.Graph, spec Spec) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("distill: invalid target topology: %w", err)
	}
	switch spec.Mode {
	case HopByHop:
		return &Result{Graph: g.Clone(), Spec: spec, PreservedLinks: g.NumLinks()}, nil
	case EndToEnd:
		return endToEnd(g, spec)
	case WalkIn:
		if spec.WalkIn < 1 {
			return nil, fmt.Errorf("distill: walk-in requires WalkIn ≥ 1")
		}
		return walk(g, spec, false)
	case WalkOut:
		if spec.WalkIn < 1 || spec.WalkOut < 0 {
			return nil, fmt.Errorf("distill: walk-out requires WalkIn ≥ 1 and WalkOut ≥ 0")
		}
		return walk(g, spec, true)
	default:
		return nil, fmt.Errorf("distill: unknown mode %v", spec.Mode)
	}
}

// CollapsePath folds a sequence of link attributes into a single pipe's
// attributes: bandwidth is the minimum along the path, latency the sum,
// reliability the product, queue the bottleneck's queue, cost the sum.
func CollapsePath(attrs []topology.LinkAttrs) topology.LinkAttrs {
	out := topology.LinkAttrs{BandwidthBps: math.Inf(1), QueuePkts: math.MaxInt32}
	rel := 1.0
	for _, a := range attrs {
		if a.BandwidthBps < out.BandwidthBps {
			out.BandwidthBps = a.BandwidthBps
			out.QueuePkts = a.QueuePkts
		}
		out.LatencySec += a.LatencySec
		rel *= a.Reliability()
		out.Cost += a.Cost
	}
	out.LossRate = 1 - rel
	if len(attrs) == 0 {
		out = topology.LinkAttrs{}
	}
	return out
}

// Frontiers computes the breadth-first frontier sets of §4.1: frontier 0 is
// every client (VN) node; frontier i+1 holds nodes one hop from frontier i
// not in any earlier frontier. The returned slice indexes frontiers from 0
// (so the paper's "first frontier set" is Frontiers(g)[0]).
func Frontiers(g *topology.Graph) [][]topology.NodeID {
	level := make([]int, g.NumNodes())
	for i := range level {
		level[i] = -1
	}
	var frontiers [][]topology.NodeID
	cur := g.Clients()
	for _, n := range cur {
		level[n] = 0
	}
	for len(cur) > 0 {
		frontiers = append(frontiers, cur)
		var next []topology.NodeID
		for _, n := range cur {
			for _, nb := range g.Neighbors(n) {
				if level[nb] < 0 {
					level[nb] = len(frontiers)
					next = append(next, nb)
				}
			}
		}
		cur = next
	}
	return frontiers
}

// endToEnd removes all interior nodes, leaving a full mesh among the VNs.
func endToEnd(g *topology.Graph, spec Spec) (*Result, error) {
	clients := g.Clients()
	ng := topology.New()
	idMap := make(map[topology.NodeID]topology.NodeID, len(clients))
	for _, c := range clients {
		idMap[c] = ng.AddNode(topology.Client, g.Nodes[c].Name)
	}
	res := &Result{Graph: ng, Spec: spec}
	// One Dijkstra per client over the full graph.
	for _, src := range clients {
		paths := dijkstraPaths(g, src, nil)
		for _, dst := range clients {
			if src == dst {
				continue
			}
			attrs, ok := pathAttrs(g, paths, src, dst)
			if !ok {
				return nil, fmt.Errorf("distill: VN node %d cannot reach %d", src, dst)
			}
			ng.AddLink(idMap[src], idMap[dst], CollapsePath(attrs))
			res.MeshLinks++
		}
	}
	return res, nil
}

// walk implements walk-in (and walk-out when withCenter is set).
func walk(g *topology.Graph, spec Spec, withCenter bool) (*Result, error) {
	frontiers := Frontiers(g)
	// Preserved node set: frontiers 0..WalkIn-1 (paper's "first walk-in
	// frontier sets", 1-indexed there).
	preserved := make([]bool, g.NumNodes())
	for i := 0; i < spec.WalkIn && i < len(frontiers); i++ {
		for _, n := range frontiers[i] {
			preserved[n] = true
		}
	}
	// Center region for walk-out: frontiers c-WalkOut..c where c is the
	// last frontier (size ≤ 1 terminates the BFS naturally; we take the
	// final frontier as the topological center).
	center := make([]bool, g.NumNodes())
	if withCenter {
		c := len(frontiers) - 1
		lo := c - spec.WalkOut
		if lo < spec.WalkIn {
			lo = spec.WalkIn
		}
		for i := lo; i <= c; i++ {
			for _, n := range frontiers[i] {
				center[n] = true
			}
		}
	}

	interior := func(n topology.NodeID) bool { return !preserved[n] }
	// Mesh participants: interior nodes outside the center region.
	var mesh []topology.NodeID
	for i := 0; i < g.NumNodes(); i++ {
		n := topology.NodeID(i)
		if interior(n) && !center[n] {
			mesh = append(mesh, n)
		}
	}

	ng := topology.New()
	idMap := make(map[topology.NodeID]topology.NodeID)
	mapNode := func(n topology.NodeID) topology.NodeID {
		if m, ok := idMap[n]; ok {
			return m
		}
		m := ng.AddNode(g.Nodes[n].Kind, g.Nodes[n].Name)
		idMap[n] = m
		return m
	}
	// Deterministic node order: original IDs ascending.
	for i := 0; i < g.NumNodes(); i++ {
		n := topology.NodeID(i)
		if preserved[n] || center[n] || interior(n) {
			mapNode(n)
		}
	}

	res := &Result{Graph: ng, Spec: spec}
	// Preserve links that touch a preserved node, and links inside the
	// center region. Interior-interior links (outside the center) vanish
	// into the mesh.
	for _, l := range g.Links {
		keep := preserved[l.Src] || preserved[l.Dst] ||
			(center[l.Src] && center[l.Dst])
		if keep {
			ng.AddLink(mapNode(l.Src), mapNode(l.Dst), l.Attr)
			res.PreservedLinks++
		}
	}
	// Full mesh among mesh participants ∪ center boundary: collapse the
	// interior path between each pair. Paths are restricted to interior
	// nodes so the mesh reflects only replaced links.
	allowed := func(n topology.NodeID) bool { return interior(n) }
	meshTargets := append([]topology.NodeID(nil), mesh...)
	if withCenter {
		for i := 0; i < g.NumNodes(); i++ {
			if center[topology.NodeID(i)] {
				meshTargets = append(meshTargets, topology.NodeID(i))
			}
		}
	}
	for _, src := range mesh {
		paths := dijkstraPaths(g, src, allowed)
		for _, dst := range meshTargets {
			if src >= dst { // one direction here; add both below
				continue
			}
			attrs, ok := pathAttrs(g, paths, src, dst)
			if !ok {
				continue // disconnected interior pair: no collapsed pipe
			}
			a := CollapsePath(attrs)
			ng.AddDuplex(mapNode(src), mapNode(dst), a)
			res.MeshLinks += 2
		}
	}
	return res, nil
}

// dijkstraPaths computes a shortest-path tree from src; when allowed is
// non-nil, intermediate nodes must satisfy it (src and the final
// destination are always permitted).
func dijkstraPaths(g *topology.Graph, src topology.NodeID, allowed func(topology.NodeID) bool) []topology.LinkID {
	n := g.NumNodes()
	dist := make([]float64, n)
	prev := make([]topology.LinkID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	var q pqD
	seq := 0
	heap.Push(&q, pqDItem{src, 0, seq})
	done := make([]bool, n)
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqDItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		// Do not expand through disallowed intermediate nodes.
		if allowed != nil && it.node != src && !allowed(it.node) {
			continue
		}
		for _, lid := range g.Out(it.node) {
			l := g.Links[lid]
			w := l.Attr.LatencySec + 1e-6
			if nd := it.dist + w; nd < dist[l.Dst] {
				dist[l.Dst] = nd
				prev[l.Dst] = lid
				seq++
				heap.Push(&q, pqDItem{l.Dst, nd, seq})
			}
		}
	}
	return prev
}

// pathAttrs extracts the attribute sequence of the tree path src→dst.
func pathAttrs(g *topology.Graph, prev []topology.LinkID, src, dst topology.NodeID) ([]topology.LinkAttrs, bool) {
	if src == dst {
		return nil, true
	}
	var rev []topology.LinkAttrs
	cur := dst
	for cur != src {
		lid := prev[cur]
		if lid < 0 {
			return nil, false
		}
		rev = append(rev, g.Links[lid].Attr)
		cur = g.Links[lid].Src
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

type pqDItem struct {
	node topology.NodeID
	dist float64
	seq  int
}

type pqD []pqDItem

func (p pqD) Len() int { return len(p) }
func (p pqD) Less(i, j int) bool {
	if p[i].dist != p[j].dist {
		return p[i].dist < p[j].dist
	}
	return p[i].seq < p[j].seq
}
func (p pqD) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p *pqD) Push(x any)   { *p = append(*p, x.(pqDItem)) }
func (p *pqD) Pop() any     { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }
