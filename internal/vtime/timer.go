package vtime

// Timer is a cancellable one-shot deadline, analogous to time.Timer but in
// virtual time.
type Timer struct {
	s      *Scheduler
	id     EventID
	armed  bool
	Expiry Time
	// Tag is the owner claim the timer arms its events with (see
	// Scheduler.AtTagged); NoTag from NewTimer, the owning VN from
	// NewTaggedTimer.
	Tag int32
}

// NewTimer returns an unarmed timer bound to s.
func NewTimer(s *Scheduler) *Timer {
	return &Timer{s: s, Tag: NoTag}
}

// NewTaggedTimer returns an unarmed timer whose events claim owner vn: its
// callbacks must inject traffic only at that VN.
func NewTaggedTimer(s *Scheduler, vn int32) *Timer {
	return &Timer{s: s, Tag: vn}
}

// Reset (re)arms the timer to fire fn after d, canceling any prior arming.
func (t *Timer) Reset(d Duration, fn func()) {
	t.StopTimer()
	t.Expiry = t.s.Now().Add(d)
	t.armed = true
	t.id = t.s.AtTagged(t.Expiry, t.Tag, func() {
		t.armed = false
		fn()
	})
}

// StopTimer cancels the timer if armed. Reports whether it was armed.
func (t *Timer) StopTimer() bool {
	if !t.armed {
		return false
	}
	t.armed = false
	return t.s.Cancel(t.id)
}

// Armed reports whether the timer is waiting to fire.
func (t *Timer) Armed() bool { return t.armed }

// Ticker calls fn every period until stopped. The first call happens one
// period after Start.
type Ticker struct {
	s       *Scheduler
	period  Duration
	fn      func()
	id      EventID
	running bool
	// Tag is the owner claim (see Timer.Tag); NoTag from NewTicker.
	Tag int32
}

// NewTicker returns a stopped ticker; call Start to begin.
func NewTicker(s *Scheduler, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("vtime: ticker period must be positive")
	}
	return &Ticker{s: s, period: period, fn: fn, Tag: NoTag}
}

// NewTaggedTicker is NewTicker with an owner claim: fn must inject traffic
// only at VN vn.
func NewTaggedTicker(s *Scheduler, vn int32, period Duration, fn func()) *Ticker {
	tk := NewTicker(s, period, fn)
	tk.Tag = vn
	return tk
}

// Start begins ticking. Starting a running ticker is a no-op.
func (tk *Ticker) Start() {
	if tk.running {
		return
	}
	tk.running = true
	tk.schedule()
}

func (tk *Ticker) schedule() {
	tk.id = tk.s.AtTagged(tk.s.Now().Add(tk.period), tk.Tag, func() {
		if !tk.running {
			return
		}
		tk.fn()
		if tk.running {
			tk.schedule()
		}
	})
}

// Stop halts the ticker. The callback will not fire again.
func (tk *Ticker) Stop() {
	if !tk.running {
		return
	}
	tk.running = false
	tk.s.Cancel(tk.id)
}

// Running reports whether the ticker is active.
func (tk *Ticker) Running() bool { return tk.running }
