package vtime

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is an absolute virtual time in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds. It deliberately mirrors
// time.Duration's unit so the usual constants read naturally.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a time later than any reachable virtual time.
const Forever = Time(math.MaxInt64)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

func (t Time) String() string { return fmt.Sprintf("t+%.6fs", t.Seconds()) }

func (d Duration) String() string { return fmt.Sprintf("%.6fs", d.Seconds()) }

// DurationOf converts floating-point seconds to a Duration.
func DurationOf(seconds float64) Duration { return Duration(seconds * float64(Second)) }

// NoTag marks an event with no owner claim: parallel runtimes must assume
// its callback can act anywhere on the shard.
const NoTag = int32(-1)

// event is one scheduled callback.
type event struct {
	at    Time
	seq   uint64 // tie-break so same-time events fire in schedule order
	fn    func()
	index int   // heap index, -1 when popped or canceled
	tag   int32 // owner claim (a VN), or NoTag
}

// EventID identifies a scheduled event so it can be canceled.
type EventID struct{ ev *event }

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Scheduler is a deterministic single-threaded discrete-event scheduler.
// It is not safe for concurrent use; the emulator is a single logical
// process, exactly like the paper's kernel module.
type Scheduler struct {
	now     Time
	seq     uint64
	events  eventHeap
	running bool
	stopped bool
	fired   uint64
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired reports how many events have executed, a useful determinism probe.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many events are scheduled but not yet fired.
func (s *Scheduler) Pending() int { return len(s.events) }

// NextEventTime returns the time of the earliest scheduled event, or Forever
// when none are pending. Together with RunUntil this forms the
// bounded-advance API used by parallel runtimes (internal/parcore): a
// coordinator peeks each scheduler's horizon, computes a safe bound, and
// lets every scheduler advance independently up to it.
func (s *Scheduler) NextEventTime() Time {
	if len(s.events) == 0 {
		return Forever
	}
	return s.events[0].at
}

// NextEventTimeExcept returns the time of the earliest scheduled event other
// than the one identified by id, or Forever when no other event is pending.
// O(1): if the excluded event is the heap root, the answer is the smaller of
// its children. Parallel runtimes use it to see past a shard's own core
// activation when computing how far ahead the shard could emit.
func (s *Scheduler) NextEventTimeExcept(id EventID) Time {
	if len(s.events) == 0 {
		return Forever
	}
	if s.events[0] != id.ev {
		return s.events[0].at
	}
	next := Forever
	if len(s.events) > 1 {
		next = s.events[1].at
	}
	if len(s.events) > 2 && s.events[2].at < next {
		next = s.events[2].at
	}
	return next
}

// At schedules fn to run at absolute time at. Scheduling in the past is a
// programming error and panics: virtual time never runs backwards.
func (s *Scheduler) At(at Time, fn func()) EventID {
	return s.AtTagged(at, NoTag, fn)
}

// AtTagged is At with an owner claim: tag (a VN number) asserts that the
// callback injects traffic only at that VN. Parallel runtimes price the
// pending event's earliest cross-shard consequence with the tagged VN's own
// crossing distance instead of the shard-wide minimum, which is what lets a
// shard whose only pending work sits deep in its interior report a far
// horizon. Tagging an event that can inject elsewhere is unsound — the
// receiving shard's event-ordering check will reject the resulting
// late-announced message deterministically.
func (s *Scheduler) AtTagged(at Time, tag int32, fn func()) EventID {
	if at < s.now {
		panic(fmt.Sprintf("vtime: schedule at %v before now %v", at, s.now))
	}
	ev := &event{at: at, seq: s.seq, fn: fn, tag: tag}
	s.seq++
	heap.Push(&s.events, ev)
	return EventID{ev}
}

// ScanPending visits every pending event with its time, owner tag, and ID,
// in unspecified order. O(pending). Parallel runtimes fold the pending set
// into their safe-advance bounds.
func (s *Scheduler) ScanPending(visit func(at Time, tag int32, id EventID)) {
	for _, ev := range s.events {
		visit(ev.at, ev.tag, EventID{ev})
	}
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel removes a scheduled event. Canceling an already-fired or
// already-canceled event is a no-op. Reports whether the event was removed.
func (s *Scheduler) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&s.events, ev.index)
	ev.fn = nil
	return true
}

// Step fires the single earliest event, advancing the clock to it.
// Reports false when no events remain.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(*event)
	s.now = ev.at
	s.fired++
	ev.fn()
	return true
}

// Run fires events until none remain or Stop is called.
func (s *Scheduler) Run() {
	s.RunUntil(Forever)
}

// RunUntil fires events with time ≤ deadline, then sets the clock to the
// deadline (if it was reached). Events scheduled during the run participate.
func (s *Scheduler) RunUntil(deadline Time) {
	s.running = true
	s.stopped = false
	for !s.stopped && len(s.events) > 0 && s.events[0].at <= deadline {
		s.Step()
	}
	s.running = false
	if !s.stopped && deadline != Forever && s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the clock by d, firing everything due in between.
func (s *Scheduler) RunFor(d Duration) {
	s.RunUntil(s.now.Add(d))
}

// Stop halts a Run in progress after the current event returns.
func (s *Scheduler) Stop() { s.stopped = true }
