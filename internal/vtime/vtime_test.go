package vtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("clock = %v, want 30", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of schedule order at %d: %v", i, v)
		}
	}
}

func TestScheduleDuringRun(t *testing.T) {
	s := NewScheduler()
	var got []Time
	s.At(10, func() {
		got = append(got, s.Now())
		s.After(5, func() { got = append(got, s.Now()) })
	})
	s.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("got %v, want [10 15]", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	id := s.At(10, func() { fired = true })
	if !s.Cancel(id) {
		t.Error("first cancel should report true")
	}
	if s.Cancel(id) {
		t.Error("second cancel should report false")
	}
	s.Run()
	if fired {
		t.Error("canceled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := NewScheduler()
	id := s.At(10, func() {})
	s.Run()
	if s.Cancel(id) {
		t.Error("cancel after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5,10 only", fired)
	}
	if s.Now() != 12 {
		t.Errorf("clock = %v, want 12 (deadline)", s.Now())
	}
	s.RunFor(8)
	if len(fired) != 4 {
		t.Fatalf("after RunFor fired %v, want 4 events", fired)
	}
	if s.Now() != 20 {
		t.Errorf("clock = %v, want 20", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("fired %d events after Stop, want 3", count)
	}
	if s.Pending() != 7 {
		t.Errorf("pending = %d, want 7", s.Pending())
	}
}

func TestStepEmpty(t *testing.T) {
	s := NewScheduler()
	if s.Step() {
		t.Error("Step on empty scheduler should report false")
	}
}

func TestTimerResetAndStop(t *testing.T) {
	s := NewScheduler()
	tm := NewTimer(s)
	fired := 0
	tm.Reset(10, func() { fired++ })
	tm.Reset(20, func() { fired += 100 }) // supersedes the first arming
	s.Run()
	if fired != 100 {
		t.Fatalf("fired = %d, want only second arming (100)", fired)
	}
	if tm.Armed() {
		t.Error("timer still armed after fire")
	}
	tm.Reset(10, func() { fired++ })
	if !tm.StopTimer() {
		t.Error("StopTimer on armed timer should report true")
	}
	s.Run()
	if fired != 100 {
		t.Errorf("stopped timer fired (count %d)", fired)
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	tk := NewTicker(s, 10, nil)
	ticks := 0
	tk.fn = func() {
		ticks++
		if ticks == 5 {
			tk.Stop()
		}
	}
	tk.Start()
	s.RunUntil(1000)
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	if s.Now() != 1000 {
		t.Errorf("clock = %v, want 1000", s.Now())
	}
}

func TestTickerCadence(t *testing.T) {
	s := NewScheduler()
	var at []Time
	tk := NewTicker(s, 7, nil)
	tk.fn = func() { at = append(at, s.Now()) }
	tk.Start()
	s.RunUntil(30)
	want := []Time{7, 14, 21, 28}
	if len(at) != len(want) {
		t.Fatalf("ticks at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("ticks at %v, want %v", at, want)
		}
	}
}

// Property: events always fire in nondecreasing time order regardless of the
// insertion order, and every scheduled (uncanceled) event fires exactly once.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s := NewScheduler()
		var fired []Time
		for _, raw := range times {
			at := Time(raw)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		if len(fired) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		// Multiset equality with inputs.
		want := make([]Time, len(times))
		for i, raw := range times {
			want[i] = Time(raw)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: canceling a random subset leaves exactly the complement to fire.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		count := int(n%64) + 1
		ids := make([]EventID, count)
		fired := make([]bool, count)
		for i := 0; i < count; i++ {
			i := i
			ids[i] = s.At(Time(rng.Intn(100)), func() { fired[i] = true })
		}
		canceled := make([]bool, count)
		for i := 0; i < count; i++ {
			if rng.Intn(2) == 0 {
				canceled[i] = s.Cancel(ids[i])
			}
		}
		s.Run()
		for i := 0; i < count; i++ {
			if fired[i] == canceled[i] {
				return false // must fire iff not canceled
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, Time) {
		s := NewScheduler()
		rng := rand.New(rand.NewSource(42))
		var last Time
		var recur func()
		recur = func() {
			last = s.Now()
			if s.Fired() < 1000 {
				s.After(Duration(rng.Intn(50)+1), recur)
			}
		}
		s.After(1, recur)
		s.Run()
		return s.Fired(), last
	}
	f1, t1 := run()
	f2, t2 := run()
	if f1 != f2 || t1 != t2 {
		t.Errorf("nondeterministic: (%d,%v) vs (%d,%v)", f1, t1, f2, t2)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(0).Add(3 * Second).Add(500 * Millisecond)
	if tm.Seconds() != 3.5 {
		t.Errorf("Seconds = %v, want 3.5", tm.Seconds())
	}
	if d := tm.Sub(Time(1 * Second)); d != 2500*Millisecond {
		t.Errorf("Sub = %v, want 2.5s", d)
	}
	if DurationOf(0.25) != 250*Millisecond {
		t.Errorf("DurationOf(0.25) = %v", DurationOf(0.25))
	}
	if (1500 * Microsecond).Micros() != 1500 {
		t.Errorf("Micros = %v", (1500 * Microsecond).Micros())
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1024; i++ {
		var recur func()
		recur = func() { s.After(Duration(rng.Intn(1000)+1), recur) }
		s.After(Duration(rng.Intn(1000)+1), recur)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
