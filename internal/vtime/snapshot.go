package vtime

// Scheduler snapshot/restore: the serializable fingerprint of a scheduler's
// pending set. Callbacks are Go closures and cannot travel, so a snapshot
// records each event's (At, Seq, Tag) identity and a restore asks the caller
// to re-arm the callback for each. Federated checkpoints (internal/fednet)
// use the snapshot alone as a canonical, byte-comparable state digest;
// property tests use Restore to prove the pending set — heap order and
// same-time tie-breaks included — survives a snapshot/restore cycle.

import (
	"container/heap"
	"fmt"
	"sort"
)

// EventState identifies one pending event in a snapshot: its fire time, its
// original sequence number (the same-time tie-break), and its owner tag.
type EventState struct {
	At  Time
	Seq uint64
	Tag int32
}

// SchedulerState is a scheduler's serializable state: clock, sequence
// allocator, fired-event count, and the pending set sorted in firing order
// (At, then Seq). Two schedulers in the same logical state produce equal
// SchedulerStates, which is what makes the struct a determinism probe.
type SchedulerState struct {
	Now    Time
	Seq    uint64 // next sequence number to allocate
	Fired  uint64
	Events []EventState
}

// Snapshot captures the scheduler's current state. O(pending log pending).
func (s *Scheduler) Snapshot() SchedulerState {
	st := SchedulerState{Now: s.now, Seq: s.seq, Fired: s.fired}
	st.Events = make([]EventState, 0, len(s.events))
	for _, ev := range s.events {
		st.Events = append(st.Events, EventState{At: ev.at, Seq: ev.seq, Tag: ev.tag})
	}
	sort.Slice(st.Events, func(i, j int) bool {
		if st.Events[i].At != st.Events[j].At {
			return st.Events[i].At < st.Events[j].At
		}
		return st.Events[i].Seq < st.Events[j].Seq
	})
	return st
}

// Restore rebuilds a snapshotted pending set on a fresh scheduler. arm is
// called once per event, in firing order, and must return the callback to
// re-attach; each event keeps its original sequence number, so same-time
// tie-breaks fire exactly as they would have in the snapshotted run, and
// events scheduled after the restore allocate sequences above every restored
// one. The receiver must be freshly constructed (nothing scheduled or fired).
func (s *Scheduler) Restore(st SchedulerState, arm func(EventState) func()) error {
	if len(s.events) != 0 || s.now != 0 || s.seq != 0 || s.fired != 0 {
		return fmt.Errorf("vtime: Restore needs a fresh scheduler")
	}
	for _, es := range st.Events {
		if es.At < st.Now {
			return fmt.Errorf("vtime: restore: event at %v before snapshot clock %v", es.At, st.Now)
		}
		if es.Seq >= st.Seq {
			return fmt.Errorf("vtime: restore: event seq %d not below next seq %d", es.Seq, st.Seq)
		}
		fn := arm(es)
		if fn == nil {
			return fmt.Errorf("vtime: restore: no callback for event at %v (seq %d, tag %d)", es.At, es.Seq, es.Tag)
		}
		heap.Push(&s.events, &event{at: es.At, seq: es.Seq, fn: fn, tag: es.Tag})
	}
	s.now, s.seq, s.fired = st.Now, st.Seq, st.Fired
	return nil
}
