package vtime

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// logEvents schedules n events with random times (deliberately colliding so
// same-time tie-breaks matter) and random tags; each appends an identifying
// record to *log when it fires. Returns the re-arm table keyed by seq.
func logEvents(s *Scheduler, rng *rand.Rand, n int, log *[]string) {
	for i := 0; i < n; i++ {
		at := Time(rng.Intn(40)) // dense: many ties
		tag := int32(rng.Intn(4))
		id := i
		s.AtTagged(at, tag, func() {
			*log = append(*log, fmt.Sprintf("%d@%v tag%d", id, s.Now(), tag))
		})
	}
}

// TestSnapshotRestoreEquivalence is the satellite property test: run a
// schedule partway, snapshot, restore into a fresh scheduler, continue both,
// and demand identical fired logs — heap order and same-time ties included.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		ref := NewScheduler()
		var refLog []string
		logEvents(ref, rng, 30, &refLog)

		// Reference run partway; snapshot; then an independent scheduler
		// continues from the snapshot while the reference continues live.
		mid := Time(rng.Intn(40))
		ref.RunUntil(mid)
		st := ref.Snapshot()

		// The snapshot must be self-consistent and in firing order.
		for i := 1; i < len(st.Events); i++ {
			a, b := st.Events[i-1], st.Events[i]
			if b.At < a.At || (b.At == a.At && b.Seq <= a.Seq) {
				t.Fatalf("trial %d: snapshot events out of order: %+v before %+v", trial, a, b)
			}
		}

		// Re-arm by replaying the same construction on a shadow scheduler:
		// rebuild closures keyed by original seq (seqs are allocated in
		// construction order, so seq == construction index here).
		restored := NewScheduler()
		var gotLog []string
		arm := func(es EventState) func() {
			id := int(es.Seq)
			tag := es.Tag
			return func() {
				gotLog = append(gotLog, fmt.Sprintf("%d@%v tag%d", id, restored.Now(), tag))
			}
		}
		if err := restored.Restore(st, arm); err != nil {
			t.Fatalf("trial %d: restore: %v", trial, err)
		}
		if restored.Now() != ref.Now() || restored.Fired() != ref.Fired() || restored.Pending() != ref.Pending() {
			t.Fatalf("trial %d: restored clock/counters diverge", trial)
		}

		// Both continue; new events scheduled post-restore must interleave
		// identically too (they allocate seqs above every restored one).
		extraAt := mid + Time(rng.Intn(10))
		ref.At(extraAt, func() { refLog = append(refLog, fmt.Sprintf("extra@%v", ref.Now())) })
		restored.At(extraAt, func() { gotLog = append(gotLog, fmt.Sprintf("extra@%v", restored.Now())) })

		preFired := len(refLog)
		ref.Run()
		restored.Run()
		if !reflect.DeepEqual(refLog[preFired:], gotLog) {
			t.Fatalf("trial %d: fired logs diverge after restore:\nref: %v\ngot: %v",
				trial, refLog[preFired:], gotLog)
		}
		if ref.Now() != restored.Now() || ref.Fired() != restored.Fired() {
			t.Fatalf("trial %d: final clock/fired diverge", trial)
		}
	}
}

func TestSnapshotRoundTripState(t *testing.T) {
	s := NewScheduler()
	s.AtTagged(5, 7, func() {})
	s.AtTagged(5, 7, func() {}) // same (at, tag): distinguished by seq
	s.At(2, func() {})
	s.RunUntil(1)
	st := s.Snapshot()
	if st.Now != 1 || st.Seq != 3 || st.Fired != 0 || len(st.Events) != 3 {
		t.Fatalf("unexpected snapshot: %+v", st)
	}
	if st.Events[0].At != 2 || st.Events[1].Seq == st.Events[2].Seq {
		t.Fatalf("snapshot ordering wrong: %+v", st.Events)
	}
}

func TestRestoreRejectsDirtyScheduler(t *testing.T) {
	s := NewScheduler()
	s.At(1, func() {})
	if err := s.Restore(SchedulerState{}, func(EventState) func() { return func() {} }); err == nil {
		t.Fatal("restore on a dirty scheduler should fail")
	}
}

func TestRestoreRejectsBadState(t *testing.T) {
	arm := func(EventState) func() { return func() {} }
	cases := []struct {
		name string
		st   SchedulerState
	}{
		{"event before clock", SchedulerState{Now: 10, Seq: 5, Events: []EventState{{At: 3, Seq: 0}}}},
		{"seq not allocated", SchedulerState{Now: 0, Seq: 1, Events: []EventState{{At: 3, Seq: 1}}}},
	}
	for _, c := range cases {
		if err := NewScheduler().Restore(c.st, arm); err == nil {
			t.Fatalf("%s: want error", c.name)
		}
	}
	// nil callback from arm
	st := SchedulerState{Now: 0, Seq: 1, Events: []EventState{{At: 3, Seq: 0}}}
	if err := NewScheduler().Restore(st, func(EventState) func() { return nil }); err == nil {
		t.Fatal("nil re-armed callback: want error")
	}
}
