// Package vtime provides the virtual-time discrete-event substrate that the
// entire emulator runs on.
//
// The paper's ModelNet core runs in real time off a 10 kHz hardware timer at
// the kernel's highest priority. In Go, wall-clock scheduling would attribute
// GC pauses and goroutine scheduling jitter to the network under test, so
// this reproduction runs the whole system in virtual time: a deterministic
// event loop whose clock advances only when events fire. Delay accuracy then
// depends only on the model (tick quantization, CPU budgets), never on the
// host.
//
// Virtual time can still be slaved back to the wall clock when a run must
// interact with the outside world: the parallel runtime's real-time pacing
// mode (parcore.Pacing) releases scheduler windows so that one virtual
// nanosecond elapses per wall nanosecond, which is how live edge traffic
// (internal/edge) experiences emulated delays in real time. The scheduler
// itself stays oblivious — pacing is a property of who calls RunUntil, not
// of the event loop.
package vtime
