// Package wireless is the ad hoc wireless extension the paper describes in
// §5: it replaces the wired pipe network with a broadcast medium — a
// transmission consumes bandwidth at every node within communication range
// of the sender — and adds node mobility, under which topology change is
// the rule rather than the exception.
//
// The medium implements the same Injector/Registrar contract as the wired
// emulator, so unmodified netstack hosts (UDP, TCP, RPC) run over it.
package wireless

import (
	"math"
	"math/rand"

	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// Config describes the shared medium and the arena.
type Config struct {
	BitRate   float64        // channel rate, bits/s (e.g. 11e6 for 802.11b)
	Range     float64        // communication radius, meters
	Width     float64        // arena width, meters
	Height    float64        // arena height, meters
	PropDelay vtime.Duration // per-transmission propagation delay
	LossRate  float64        // random per-receiver loss
	Seed      int64
	// Mobility: random-waypoint speed range; zero disables movement.
	SpeedMin, SpeedMax float64        // meters/second
	MoveTick           vtime.Duration // position update period (default 100 ms)
}

func (c *Config) defaults() {
	if c.BitRate <= 0 {
		c.BitRate = 11e6
	}
	if c.Range <= 0 {
		c.Range = 250
	}
	if c.Width <= 0 {
		c.Width = 1000
	}
	if c.Height <= 0 {
		c.Height = 1000
	}
	if c.MoveTick <= 0 {
		c.MoveTick = 100 * vtime.Millisecond
	}
}

// node is one station: a position, a waypoint, and a delivery callback.
type node struct {
	vn      pipes.VN
	x, y    float64
	wx, wy  float64 // current waypoint
	speed   float64
	deliver func(*pipes.Packet)

	// busyUntil models the station's view of the channel (carrier sense):
	// a sender defers to ongoing transmissions it can hear.
	busyUntil vtime.Time

	Sent, Rcvd, Collisions uint64
}

// Medium is the shared broadcast channel plus the station population.
type Medium struct {
	cfg   Config
	sched *vtime.Scheduler
	rng   *rand.Rand
	nodes map[pipes.VN]*node
	order []pipes.VN // deterministic iteration
	mover *vtime.Ticker
	seq   uint64

	Broadcasts uint64
	Unicasts   uint64
	DropsRange uint64
}

// NewMedium creates a wireless medium.
func NewMedium(sched *vtime.Scheduler, cfg Config) *Medium {
	cfg.defaults()
	m := &Medium{
		cfg:   cfg,
		sched: sched,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		nodes: make(map[pipes.VN]*node),
	}
	m.mover = vtime.NewTicker(sched, cfg.MoveTick, m.step)
	if cfg.SpeedMax > 0 {
		m.mover.Start()
	}
	return m
}

// AddNode places a station at (x, y).
func (m *Medium) AddNode(vn pipes.VN, x, y float64) {
	n := &node{vn: vn, x: x, y: y}
	n.wx, n.wy = m.waypoint()
	n.speed = m.speed()
	m.nodes[vn] = n
	m.order = append(m.order, vn)
}

// AddNodeRandom places a station uniformly at random in the arena.
func (m *Medium) AddNodeRandom(vn pipes.VN) {
	m.AddNode(vn, m.rng.Float64()*m.cfg.Width, m.rng.Float64()*m.cfg.Height)
}

// Position returns a station's current coordinates.
func (m *Medium) Position(vn pipes.VN) (x, y float64) {
	n := m.nodes[vn]
	if n == nil {
		return 0, 0
	}
	return n.x, n.y
}

// RegisterVN installs the delivery callback (Registrar contract).
func (m *Medium) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	if n := m.nodes[vn]; n != nil {
		n.deliver = fn
	}
}

// InRange reports whether two stations can currently hear each other.
func (m *Medium) InRange(a, b pipes.VN) bool {
	na, nb := m.nodes[a], m.nodes[b]
	if na == nil || nb == nil {
		return false
	}
	return dist(na, nb) <= m.cfg.Range
}

// Neighbors returns all stations currently within range of vn.
func (m *Medium) Neighbors(vn pipes.VN) []pipes.VN {
	src := m.nodes[vn]
	if src == nil {
		return nil
	}
	var out []pipes.VN
	for _, id := range m.order {
		if id == vn {
			continue
		}
		if dist(src, m.nodes[id]) <= m.cfg.Range {
			out = append(out, id)
		}
	}
	return out
}

// Inject implements the netstack Injector: a unicast transmission that
// still occupies the channel at every station in range of the sender (the
// broadcast nature of wireless). Returns false when the destination is out
// of range or the channel is hopelessly backlogged.
func (m *Medium) Inject(src, dst pipes.VN, size int, payload any) bool {
	s := m.nodes[src]
	d := m.nodes[dst]
	if s == nil || d == nil {
		return false
	}
	if dist(s, d) > m.cfg.Range {
		m.DropsRange++
		return false
	}
	m.Unicasts++
	return m.transmit(s, size, func(pkt *pipes.Packet) {
		if m.rng.Float64() < m.cfg.LossRate {
			return
		}
		// Re-check range at delivery: mobility may have broken the link.
		if dist(s, d) > m.cfg.Range {
			m.DropsRange++
			return
		}
		if d.deliver != nil {
			d.Rcvd++
			d.deliver(pkt)
		}
	}, src, dst, payload)
}

// Broadcast transmits to every station in range.
func (m *Medium) Broadcast(src pipes.VN, size int, payload any) bool {
	s := m.nodes[src]
	if s == nil {
		return false
	}
	m.Broadcasts++
	return m.transmit(s, size, func(pkt *pipes.Packet) {
		for _, id := range m.order {
			n := m.nodes[id]
			if n == s || dist(s, n) > m.cfg.Range {
				continue
			}
			if m.rng.Float64() < m.cfg.LossRate {
				continue
			}
			if n.deliver != nil {
				n.Rcvd++
				n.deliver(pkt)
			}
		}
	}, src, -1, payload)
}

// transmit serializes on the channel as heard at the sender and charges
// airtime at every station in range — the defining property of the
// extension: "packet transmission consumes bandwidth at all nodes within
// communication range of the sender".
func (m *Medium) transmit(s *node, size int, deliver func(*pipes.Packet), src, dst pipes.VN, payload any) bool {
	now := m.sched.Now()
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	if start.Sub(now) > 50*vtime.Millisecond {
		return false // channel saturated: queue bound exceeded
	}
	air := vtime.DurationOf(float64(size*8) / m.cfg.BitRate)
	end := start.Add(air)
	// Airtime occupies the channel at every station that can hear the
	// sender (hidden terminals are not modeled; see package doc).
	for _, id := range m.order {
		n := m.nodes[id]
		if n == s || dist(s, n) <= m.cfg.Range {
			if end > n.busyUntil {
				n.busyUntil = end
			}
		}
	}
	s.Sent++
	m.seq++
	pkt := &pipes.Packet{Seq: m.seq, Size: size, Src: src, Dst: dst, Payload: payload, Injected: now}
	m.sched.At(end.Add(m.cfg.PropDelay), func() { deliver(pkt) })
	return true
}

// step advances every station toward its waypoint (random waypoint model).
func (m *Medium) step() {
	dt := m.cfg.MoveTick.Seconds()
	for _, id := range m.order {
		n := m.nodes[id]
		if n.speed <= 0 {
			continue
		}
		dx, dy := n.wx-n.x, n.wy-n.y
		d := math.Hypot(dx, dy)
		hop := n.speed * dt
		if d <= hop {
			n.x, n.y = n.wx, n.wy
			n.wx, n.wy = m.waypoint()
			n.speed = m.speed()
			continue
		}
		n.x += dx / d * hop
		n.y += dy / d * hop
	}
}

func (m *Medium) waypoint() (float64, float64) {
	return m.rng.Float64() * m.cfg.Width, m.rng.Float64() * m.cfg.Height
}

func (m *Medium) speed() float64 {
	if m.cfg.SpeedMax <= 0 {
		return 0
	}
	return m.cfg.SpeedMin + m.rng.Float64()*(m.cfg.SpeedMax-m.cfg.SpeedMin)
}

func dist(a, b *node) float64 {
	return math.Hypot(a.x-b.x, a.y-b.y)
}
