package wireless

import (
	"testing"

	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

func static(rangeM float64) Config {
	return Config{BitRate: 11e6, Range: rangeM, Width: 1000, Height: 1000, Seed: 1}
}

func TestInRangeDelivery(t *testing.T) {
	sched := vtime.NewScheduler()
	m := NewMedium(sched, static(250))
	m.AddNode(0, 0, 0)
	m.AddNode(1, 100, 0)
	var got *pipes.Packet
	m.RegisterVN(1, func(p *pipes.Packet) { got = p })
	if !m.Inject(0, 1, 1000, "hi") {
		t.Fatal("in-range inject refused")
	}
	sched.Run()
	if got == nil || got.Payload != "hi" {
		t.Fatal("packet not delivered")
	}
	// Airtime: 8000 bits at 11 Mb/s ≈ 727 µs.
	want := vtime.DurationOf(8000.0 / 11e6)
	if sched.Now() != vtime.Time(want) {
		t.Errorf("delivery at %v, want %v", sched.Now(), vtime.Time(want))
	}
}

func TestOutOfRangeDrop(t *testing.T) {
	sched := vtime.NewScheduler()
	m := NewMedium(sched, static(250))
	m.AddNode(0, 0, 0)
	m.AddNode(1, 600, 0)
	delivered := false
	m.RegisterVN(1, func(*pipes.Packet) { delivered = true })
	if m.Inject(0, 1, 1000, nil) {
		t.Error("out-of-range inject accepted")
	}
	sched.Run()
	if delivered || m.DropsRange != 1 {
		t.Errorf("delivered=%v drops=%d", delivered, m.DropsRange)
	}
}

func TestBroadcastReachesAllInRange(t *testing.T) {
	sched := vtime.NewScheduler()
	m := NewMedium(sched, static(250))
	m.AddNode(0, 500, 500)
	m.AddNode(1, 600, 500) // in range
	m.AddNode(2, 700, 500) // in range
	m.AddNode(3, 900, 500) // out of range
	got := map[pipes.VN]bool{}
	for _, vn := range []pipes.VN{1, 2, 3} {
		vn := vn
		m.RegisterVN(vn, func(*pipes.Packet) { got[vn] = true })
	}
	m.Broadcast(0, 500, nil)
	sched.Run()
	if !got[1] || !got[2] || got[3] {
		t.Errorf("broadcast reached %v", got)
	}
}

func TestChannelSharedAmongNeighbors(t *testing.T) {
	// Two senders in range of each other must serialize: the medium is
	// shared, unlike wired pipes.
	sched := vtime.NewScheduler()
	m := NewMedium(sched, static(250))
	m.AddNode(0, 0, 0)
	m.AddNode(1, 50, 0)
	m.AddNode(2, 100, 0)
	var arrivals []vtime.Time
	m.RegisterVN(2, func(*pipes.Packet) { arrivals = append(arrivals, sched.Now()) })
	m.Inject(0, 2, 1375, nil) // 1 ms airtime at 11 Mb/s
	m.Inject(1, 2, 1375, nil)
	sched.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals: %v", arrivals)
	}
	gap := arrivals[1].Sub(arrivals[0])
	if gap < vtime.Duration(900*vtime.Microsecond) {
		t.Errorf("transmissions overlapped: gap %v", gap)
	}
}

func TestHiddenSendersDoNotSerialize(t *testing.T) {
	// Two senders out of range of each other share no channel state.
	sched := vtime.NewScheduler()
	m := NewMedium(sched, static(200))
	m.AddNode(0, 0, 0)
	m.AddNode(1, 150, 0) // hears 0
	m.AddNode(2, 1000, 0)
	m.AddNode(3, 850, 0) // hears 2
	var t1, t3 vtime.Time
	m.RegisterVN(1, func(*pipes.Packet) { t1 = sched.Now() })
	m.RegisterVN(3, func(*pipes.Packet) { t3 = sched.Now() })
	m.Inject(0, 1, 1375, nil)
	m.Inject(2, 3, 1375, nil)
	sched.Run()
	if t1 != t3 {
		t.Errorf("independent cells serialized: %v vs %v", t1, t3)
	}
}

func TestMobilityChangesConnectivity(t *testing.T) {
	sched := vtime.NewScheduler()
	cfg := static(250)
	cfg.SpeedMin, cfg.SpeedMax = 50, 50 // fast, deterministic-ish motion
	m := NewMedium(sched, cfg)
	for i := 0; i < 10; i++ {
		m.AddNodeRandom(pipes.VN(i))
	}
	before := len(m.Neighbors(0))
	changed := false
	for i := 0; i < 600 && !changed; i++ {
		sched.RunUntil(sched.Now().Add(vtime.Second))
		if len(m.Neighbors(0)) != before {
			changed = true
		}
	}
	if !changed {
		t.Error("mobility never changed node 0's neighborhood")
	}
}

func TestNetstackOverWireless(t *testing.T) {
	// The full UDP stack runs over the medium unchanged.
	sched := vtime.NewScheduler()
	m := NewMedium(sched, static(300))
	m.AddNode(0, 100, 100)
	m.AddNode(1, 200, 100)
	h0 := netstack.NewHost(0, sched, m, m)
	h1 := netstack.NewHost(1, sched, m, m)
	var got int
	h1.OpenUDP(9, func(from netstack.Endpoint, dg *netstack.Datagram) { got = dg.Len })
	s, _ := h0.OpenUDP(0, nil)
	s.SendTo(netstack.Endpoint{VN: 1, Port: 9}, 500, nil)
	sched.Run()
	if got != 500 {
		t.Fatalf("UDP over wireless: got %d", got)
	}
}

func TestTCPOverWireless(t *testing.T) {
	sched := vtime.NewScheduler()
	cfg := static(300)
	cfg.LossRate = 0.01
	m := NewMedium(sched, cfg)
	m.AddNode(0, 100, 100)
	m.AddNode(1, 200, 100)
	h0 := netstack.NewHost(0, sched, m, m)
	h1 := netstack.NewHost(1, sched, m, m)
	got := 0
	h1.Listen(80, func(c *netstack.Conn) netstack.Handlers {
		return netstack.Handlers{OnData: func(c *netstack.Conn, n int, data []byte) { got += n }}
	})
	c := h0.Dial(netstack.Endpoint{VN: 1, Port: 80}, netstack.Handlers{})
	c.WriteCount(200_000)
	c.Close()
	sched.RunUntil(vtime.Time(60 * vtime.Second))
	if got != 200_000 {
		t.Fatalf("TCP over wireless delivered %d", got)
	}
}
