package fednet

// Federation payload codec for the netstack layer: a cross-core packet's
// Payload is a *netstack.Datagram whose Obj may itself be an application
// message (registered by the app's own package). TCP segments deliberately
// have no codec yet — a federated scenario partitions so that TCP
// connections stay shard-local or uses UDP-based workloads; an unregistered
// payload crossing the wire fails loudly with the type name.

import (
	"fmt"

	"modelnet/internal/fednet/wire"
	"modelnet/internal/netstack"
)

func init() {
	wire.RegisterPayload(wire.PayloadDatagram, (*netstack.Datagram)(nil), wire.PayloadCodec{
		Enc: func(v any) ([]byte, error) {
			dg := v.(*netstack.Datagram)
			var e wire.Enc
			e.U16(dg.SrcPort)
			e.U16(dg.DstPort)
			e.I32(int32(dg.Len))
			e.Blob(dg.Data)
			pt, pb, err := wire.EncodePayload(dg.Obj)
			if err != nil {
				return nil, fmt.Errorf("datagram %d->%d: %w", dg.SrcPort, dg.DstPort, err)
			}
			e.U16(pt)
			e.Blob(pb)
			return e.Bytes(), nil
		},
		Dec: func(b []byte) (any, error) {
			d := wire.NewDec(b)
			dg := &netstack.Datagram{
				SrcPort: d.U16(),
				DstPort: d.U16(),
				Len:     int(d.I32()),
			}
			if data := d.Blob(); len(data) > 0 {
				dg.Data = append([]byte(nil), data...)
			}
			pt := d.U16()
			pb := d.Blob()
			if err := d.Done(); err != nil {
				return nil, err
			}
			obj, err := wire.DecodePayload(pt, pb)
			if err != nil {
				return nil, err
			}
			dg.Obj = obj
			return dg, nil
		},
	})
}
