package fednet

// TTrace frame bodies: workers stream their recorded obs.Events to the
// coordinator in chunks after TFinish, before the final TReport. The codec
// lives here rather than in wire because wire stays ignorant of obs; the
// frame type (wire.TTrace) and version bump are the protocol's.

import (
	"fmt"

	"modelnet/internal/fednet/wire"
	"modelnet/internal/obs"
)

// traceRecordBytes is one encoded event: VT i64, TID u64, Seq u64,
// Shard i32, Pipe i32, Src i32, Dst i32, Size i32, Kind u8, Arg u8.
const traceRecordBytes = 8 + 8 + 8 + 4 + 4 + 4 + 4 + 4 + 1 + 1

// traceChunkEvents bounds one TTrace frame to a few MB.
const traceChunkEvents = 64 << 10

// encodeTraceChunk encodes one chunk of trace events.
func encodeTraceChunk(evs []obs.Event) []byte {
	var e wire.Enc
	e.U32(uint32(len(evs)))
	for i := range evs {
		ev := &evs[i]
		e.I64(ev.VT)
		e.U64(ev.TID)
		e.U64(ev.Seq)
		e.I32(ev.Shard)
		e.I32(ev.Pipe)
		e.I32(ev.Src)
		e.I32(ev.Dst)
		e.I32(ev.Size)
		e.U8(uint8(ev.Kind))
		e.U8(ev.Arg)
	}
	return e.Bytes()
}

// decodeTraceChunk parses a TTrace body.
func decodeTraceChunk(b []byte) ([]obs.Event, error) {
	d := wire.NewDec(b)
	n := d.Len(traceRecordBytes)
	evs := make([]obs.Event, n)
	for i := range evs {
		evs[i] = obs.Event{
			VT:    d.I64(),
			TID:   d.U64(),
			Seq:   d.U64(),
			Shard: d.I32(),
			Pipe:  d.I32(),
			Src:   d.I32(),
			Dst:   d.I32(),
			Size:  d.I32(),
			Kind:  obs.Kind(d.U8()),
			Arg:   d.U8(),
		}
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("fednet: trace chunk: %w", err)
	}
	return evs, nil
}
