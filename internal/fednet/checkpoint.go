package fednet

// The worker half of the failure/recovery protocol: the barrier checkpoint
// digest (buildCheckpoint) and the data-plane recovery request handler
// (handleRecoverReq). The digest is not a restore source — scheduler
// callbacks are closures and cannot travel — it is the canonical,
// byte-comparable fingerprint the coordinator uses to prove a respawned
// worker's replay reconverged on the crashed worker's exact state.

import (
	"fmt"
	"net"
	"sort"

	"modelnet/internal/fednet/wire"
	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// FaultExitCode is the exit status of a worker dying to an injected fault
// (Options.FailSpec, exit mode), distinct from ordinary failure exits so a
// harness can tell the planted crash from an accidental one.
const FaultExitCode = 7

// handleRecoverReq serves a respawned peer's data-plane recovery request.
// It runs on a reader goroutine — the control goroutine may be blocked in a
// barrier wait for the very messages this replays. Endpoint first, then the
// channel reset, then the log snapshot: a concurrent send that misses the
// snapshot was sent after the endpoint swap and reaches the respawn on its
// own (its collector is lenient, so overlap is dropped, not fatal).
func (w *workerState) handleRecoverReq(peer int, src *net.UDPAddr) error {
	if peer < 0 || peer >= w.cfg.Cores || peer == w.cfg.Shard {
		return fmt.Errorf("fednet: recovery request for out-of-range shard %d", peer)
	}
	if src != nil {
		w.dp.endMu.Lock()
		w.dp.udpPeers[peer] = src
		w.dp.endMu.Unlock()
	}
	w.col.reset(peer)
	return w.dp.resend(peer, w.rec.snapshot(peer))
}

// buildCheckpoint assembles the shard's canonical barrier state digest:
// scheduler queue identity, channel counters, emulator totals and drop
// taxonomy, applier bucket shape, the dynamics cursor, and every
// materialized pipe's complete state. Called at the quiet point right after
// a step's flush, so the outbox is empty by construction.
func (w *workerState) buildCheckpoint() (*wire.Checkpoint, error) {
	sst := w.sched.Snapshot()
	c := &wire.Checkpoint{
		Shard:           uint32(w.cfg.Shard),
		Cores:           uint32(w.cfg.Cores),
		Round:           uint32(w.stepsSeen),
		NowNs:           int64(sst.Now),
		SchedSeq:        sst.Seq,
		SchedFired:      sst.Fired,
		OutboxSeq:       w.outbox.Seq(),
		Sent:            append([]uint64(nil), w.sent...),
		Inbox:           w.col.deliveredVec(),
		DeliverySamples: uint64(len(w.deliveries)),
	}
	for _, ev := range sst.Events {
		c.Events = append(c.Events, wire.CkptEvent{AtNs: int64(ev.At), Seq: ev.Seq, Tag: ev.Tag})
	}
	tot := w.emu.Totals()
	c.Injected, c.DeliveredPkts, c.NoRoute = tot.Injected, tot.Delivered, tot.NoRoute
	c.PhysDrops, c.VirtualDrops, c.InFlight = tot.PhysDrops, tot.VirtualDrops, int64(tot.InFlight)
	c.DropsByReason = w.emu.DropsByReason()
	w.applier.ScanBuckets(func(fire vtime.Time, count int) {
		c.Buckets = append(c.Buckets, wire.CkptBucket{FireNs: int64(fire), Count: uint32(count)})
	})
	if w.eng != nil {
		st, err := w.eng.Snapshot()
		if err != nil {
			return nil, err
		}
		c.HasDyn = true
		c.Dyn.Applied, c.Dyn.Reroutes = st.Applied, st.Reroutes
		for _, l := range st.Down {
			c.Dyn.Down = append(c.Dyn.Down, uint32(l))
		}
		for _, b := range st.Bases {
			c.Dyn.BasesNs = append(c.Dyn.BasesNs, int64(b))
		}
		for _, t := range st.PendingReroutes {
			c.Dyn.PendingNs = append(c.Dyn.PendingNs, int64(t))
		}
	}
	var scanErr error
	w.emu.ScanMaterialized(func(p *pipes.Pipe) {
		cp, err := ckptPipe(p)
		if err != nil {
			if scanErr == nil {
				scanErr = err
			}
			return
		}
		c.Pipes = append(c.Pipes, cp)
	})
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Slice(c.Pipes, func(i, j int) bool { return c.Pipes[i].ID < c.Pipes[j].ID })
	return c, nil
}

// ckptPipe converts one pipe's snapshot to its canonical wire form.
func ckptPipe(p *pipes.Pipe) (wire.CkptPipe, error) {
	st := p.Snapshot()
	cp := wire.CkptPipe{
		ID:             uint32(p.ID()),
		BandwidthBps:   st.Params.BandwidthBps,
		LatencyNs:      int64(st.Params.Latency),
		LossRate:       st.Params.LossRate,
		QueuePkts:      int32(st.Params.QueuePkts),
		Down:           st.Params.Down,
		RedAvg:         st.RED.Avg,
		RedCount:       int64(st.RED.Count),
		RedIdleSinceNs: int64(st.RED.IdleSince),
		RedIdle:        st.RED.Idle,
		LastTxDoneNs:   int64(st.LastTxDone),
		LastExitNs:     int64(st.LastExit),
		Draws:          st.Draws,
		Accepted:       st.Accepted,
		Drops:          st.Drops[:],
		BytesIn:        st.BytesIn,
		BytesOut:       st.BytesOut,
		Delivered:      st.Delivered,
	}
	if r := st.Params.RED; r != nil {
		cp.HasRED = true
		cp.REDMinThresh, cp.REDMaxThresh = r.MinThresh, r.MaxThresh
		cp.REDMaxP, cp.REDWeight = r.MaxP, r.Weight
	}
	for _, e := range st.Entries {
		pw, err := wire.EncodePacket(e.Pkt)
		if err != nil {
			return cp, err
		}
		cp.Entries = append(cp.Entries, wire.CkptEntry{Pkt: pw, TxDoneNs: int64(e.TxDone), ExitNs: int64(e.Exit)})
	}
	return cp, nil
}
