package wire

// Sharded setup codec (protocol v7). Instead of one monolithic TSetup frame
// carrying the whole world, the coordinator streams each worker a handful of
// setup *sections* — run config, the worker's shard view, the VN world map,
// the dynamics spec — as TSetupChunk frames bounded by SetupChunkBytes, so
// setup size scales with the shard, not the world, and no frame approaches
// MaxFrame. The worker reassembles sections with a ChunkAssembler that
// rejects out-of-order, duplicate, and post-completion chunks; a section
// whose final chunk never arrives stays incomplete and setup fails loudly
// instead of decoding a truncated blob.
//
// The TRouteReq/TRouteResp pair is the demand-paging RPC behind
// bind.ShardTable: a worker that needs the frontier summary distances for a
// (reroute epoch, target node) asks the coordinator's summary oracle.

import (
	"fmt"
	"sort"

	"modelnet/internal/bind"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// Setup section IDs. Each section is one independently-encoded blob,
// chunked for transport.
const (
	SecConfig   uint8 = 1 // JSON run config (fednet setup)
	SecView     uint8 = 2 // EncodeShardView: the worker's slice of the world
	SecWorld    uint8 = 3 // EncodeWorld: dense VN -> home node / home shard maps
	SecDynamics uint8 = 4 // dynamics.Encode spec; empty when the run has none
)

// SetupChunkBytes bounds one chunk's blob — far under MaxFrame, so setup
// frames never trip the frame-size guard and interleave cheaply with other
// control traffic.
const SetupChunkBytes = 1 << 20

// SetupChunk is one piece of a setup section. Chunks of a section carry
// dense sequence numbers from 0; Last marks the section complete.
type SetupChunk struct {
	Section uint8
	Seq     uint32
	Last    bool
	Blob    []byte
}

// Encode returns the frame body.
func (m SetupChunk) Encode() []byte {
	var e Enc
	e.U8(m.Section)
	e.U32(m.Seq)
	e.Bool(m.Last)
	e.Blob(m.Blob)
	return e.Bytes()
}

// DecodeSetupChunk parses a TSetupChunk body.
func DecodeSetupChunk(b []byte) (SetupChunk, error) {
	d := NewDec(b)
	m := SetupChunk{Section: d.U8(), Seq: d.U32()}
	last, err := d.StrictBool()
	if err != nil {
		return SetupChunk{}, err
	}
	m.Last = last
	m.Blob = append([]byte(nil), d.Blob()...)
	if err := d.Done(); err != nil {
		return SetupChunk{}, err
	}
	if len(m.Blob) == 0 {
		m.Blob = nil
	}
	return m, d.Done()
}

// Chunks splits a section blob into transport chunks. An empty blob yields
// one empty final chunk, so every section announces completion explicitly.
func Chunks(section uint8, blob []byte) []SetupChunk {
	var out []SetupChunk
	seq := uint32(0)
	for {
		n := len(blob)
		if n > SetupChunkBytes {
			n = SetupChunkBytes
		}
		c := SetupChunk{Section: section, Seq: seq, Blob: blob[:n]}
		if len(c.Blob) == 0 {
			c.Blob = nil
		}
		blob = blob[n:]
		c.Last = len(blob) == 0
		out = append(out, c)
		seq++
		if c.Last {
			return out
		}
	}
}

// ChunkAssembler reassembles setup sections from their chunk stream. It is
// strict: chunks of a section must arrive in dense sequence order, and
// nothing may follow a section's final chunk.
type ChunkAssembler struct {
	buf  map[uint8][]byte
	next map[uint8]uint32
	done map[uint8]bool
}

// NewChunkAssembler returns an empty assembler.
func NewChunkAssembler() *ChunkAssembler {
	return &ChunkAssembler{
		buf:  make(map[uint8][]byte),
		next: make(map[uint8]uint32),
		done: make(map[uint8]bool),
	}
}

// Add feeds one chunk, rejecting it if its section is already complete or
// its sequence number is not the next expected one.
func (a *ChunkAssembler) Add(c SetupChunk) error {
	if a.done[c.Section] {
		return fmt.Errorf("wire: chunk %d for already-complete setup section %d", c.Seq, c.Section)
	}
	if want := a.next[c.Section]; c.Seq != want {
		return fmt.Errorf("wire: setup section %d chunk out of order: got seq %d, want %d", c.Section, c.Seq, want)
	}
	a.buf[c.Section] = append(a.buf[c.Section], c.Blob...)
	a.next[c.Section]++
	if c.Last {
		a.done[c.Section] = true
	}
	return nil
}

// Section returns a completed section's bytes. ok is false while the
// section's final chunk has not arrived (a truncated stream never yields a
// partial blob).
func (a *ChunkAssembler) Section(sec uint8) (blob []byte, ok bool) {
	if !a.done[sec] {
		return nil, false
	}
	return a.buf[sec], true
}

// Require returns the named completed sections or an explicit error naming
// the first one still incomplete.
func (a *ChunkAssembler) Require(secs ...uint8) (map[uint8][]byte, error) {
	out := make(map[uint8][]byte, len(secs))
	for _, s := range secs {
		b, ok := a.Section(s)
		if !ok {
			return nil, fmt.Errorf("wire: setup section %d incomplete (chunk stream truncated)", s)
		}
		out[s] = b
	}
	return out, nil
}

// World is the VN-level world map a sharded worker needs beyond its view:
// where every VN attaches and which shard homes it. Dense over all VNs —
// two int32 per VN is the only O(world) term a worker materializes.
type World struct {
	VNHome []int32 // VN -> home topology node
	Homes  []int32 // VN -> home shard
}

// EncodeWorld serializes the world map.
func EncodeWorld(w World) []byte {
	var e Enc
	e.U32(uint32(len(w.VNHome)))
	for _, n := range w.VNHome {
		e.I32(n)
	}
	for _, h := range w.Homes {
		e.I32(h)
	}
	return e.Bytes()
}

// DecodeWorld parses EncodeWorld output. VNHome and Homes are always the
// same length (one entry per VN).
func DecodeWorld(b []byte) (World, error) {
	d := NewDec(b)
	n := d.Len(8)
	w := World{VNHome: make([]int32, 0, n), Homes: make([]int32, 0, n)}
	for i := 0; i < n; i++ {
		w.VNHome = append(w.VNHome, d.I32())
	}
	for i := 0; i < n; i++ {
		w.Homes = append(w.Homes, d.I32())
	}
	if err := d.Done(); err != nil {
		return World{}, err
	}
	for v, h := range w.VNHome {
		if h < 0 {
			return World{}, fmt.Errorf("wire: VN %d homed at negative node %d", v, h)
		}
		if w.Homes[v] < 0 {
			return World{}, fmt.Errorf("wire: VN %d homed on negative shard %d", v, w.Homes[v])
		}
	}
	return w, nil
}

// EncodeShardView serializes a shard view bit-exactly (link attributes
// travel as raw float bits, like EncodeTopology).
func EncodeShardView(v *bind.ShardView) []byte {
	var e Enc
	e.I32(int32(v.Shard))
	e.I32(int32(v.Cores))
	e.U32(uint32(v.NumNodes))
	e.U32(uint32(v.NumLinks))
	e.U32(uint32(len(v.Links)))
	for i, l := range v.Links {
		e.U32(uint32(l.ID))
		e.U32(uint32(l.Src))
		e.U32(uint32(l.Dst))
		e.F64(l.Attr.BandwidthBps)
		e.F64(l.Attr.LatencySec)
		e.F64(l.Attr.LossRate)
		e.I32(int32(l.Attr.QueuePkts))
		e.F64(l.Attr.Cost)
		e.I32(v.LinkOwner[i])
	}
	e.U32(uint32(len(v.Frontier)))
	for _, n := range v.Frontier {
		e.U32(uint32(n))
	}
	e.U32(uint32(len(v.Summary)))
	for _, n := range v.Summary {
		e.U32(uint32(n))
	}
	return e.Bytes()
}

// DecodeShardView parses EncodeShardView output, enforcing the structural
// invariants bind.ShardView promises: links in strictly ascending global ID
// order with in-range endpoints and owners, frontier and summary strictly
// ascending node sets.
func DecodeShardView(b []byte) (*bind.ShardView, error) {
	d := NewDec(b)
	v := &bind.ShardView{
		Shard:    int(d.I32()),
		Cores:    int(d.I32()),
		NumNodes: int(d.U32()),
		NumLinks: int(d.U32()),
	}
	nLinks := d.Len(44)
	for i := 0; i < nLinks; i++ {
		l := topology.Link{
			ID:  topology.LinkID(d.U32()),
			Src: topology.NodeID(d.U32()),
			Dst: topology.NodeID(d.U32()),
			Attr: topology.LinkAttrs{
				BandwidthBps: d.F64(),
				LatencySec:   d.F64(),
				LossRate:     d.F64(),
				QueuePkts:    int(d.I32()),
				Cost:         d.F64(),
			},
		}
		v.Links = append(v.Links, l)
		v.LinkOwner = append(v.LinkOwner, d.I32())
	}
	nf := d.Len(4)
	for i := 0; i < nf; i++ {
		v.Frontier = append(v.Frontier, topology.NodeID(d.U32()))
	}
	ns := d.Len(4)
	for i := 0; i < ns; i++ {
		v.Summary = append(v.Summary, topology.NodeID(d.U32()))
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	if v.Cores < 1 || v.Shard < 0 || v.Shard >= v.Cores {
		return nil, fmt.Errorf("wire: shard view for shard %d of %d cores", v.Shard, v.Cores)
	}
	if v.NumNodes < 0 || v.NumLinks < 0 {
		return nil, fmt.Errorf("wire: shard view with %d nodes, %d links", v.NumNodes, v.NumLinks)
	}
	for i, l := range v.Links {
		if int(l.ID) >= v.NumLinks {
			return nil, fmt.Errorf("wire: view link ID %d outside %d-link world", l.ID, v.NumLinks)
		}
		if i > 0 && l.ID <= v.Links[i-1].ID {
			return nil, fmt.Errorf("wire: view links not in ascending ID order at index %d", i)
		}
		if int(l.Src) >= v.NumNodes || int(l.Dst) >= v.NumNodes {
			return nil, fmt.Errorf("wire: view link %d endpoint out of range", l.ID)
		}
		if o := v.LinkOwner[i]; o < 0 || int(o) >= v.Cores {
			return nil, fmt.Errorf("wire: view link %d owned by core %d of %d", l.ID, o, v.Cores)
		}
	}
	for name, set := range map[string][]topology.NodeID{"frontier": v.Frontier, "summary": v.Summary} {
		if !sort.SliceIsSorted(set, func(i, j int) bool { return set[i] < set[j] }) {
			return nil, fmt.Errorf("wire: shard view %s not sorted", name)
		}
		for i, n := range set {
			if int(n) >= v.NumNodes {
				return nil, fmt.Errorf("wire: shard view %s node %d out of range", name, n)
			}
			if i > 0 && n == set[i-1] {
				return nil, fmt.Errorf("wire: shard view %s has duplicate node %d", name, n)
			}
		}
	}
	return v, nil
}

// RouteReq asks the coordinator for the summary distances toward Target
// under reroute epoch Epoch.
type RouteReq struct {
	Epoch  int32
	Target int32
}

// Encode returns the frame body.
func (m RouteReq) Encode() []byte {
	var e Enc
	e.I32(m.Epoch)
	e.I32(m.Target)
	return e.Bytes()
}

// DecodeRouteReq parses a TRouteReq body.
func DecodeRouteReq(b []byte) (RouteReq, error) {
	d := NewDec(b)
	m := RouteReq{Epoch: d.I32(), Target: d.I32()}
	return m, d.Done()
}

// RouteResp carries the requested summary distances: Dists[i] is the global
// canonical distance from the worker's i-th summary node to Target under
// Epoch. Echoing the request key lets the worker pair responses without
// ordering assumptions.
type RouteResp struct {
	Epoch  int32
	Target int32
	Dists  []bind.Dist
}

// Encode returns the frame body.
func (m RouteResp) Encode() []byte {
	var e Enc
	e.I32(m.Epoch)
	e.I32(m.Target)
	e.U32(uint32(len(m.Dists)))
	for _, x := range m.Dists {
		e.I64(int64(x.Lat))
		e.I32(x.Hops)
	}
	return e.Bytes()
}

// DecodeRouteResp parses a TRouteResp body.
func DecodeRouteResp(b []byte) (RouteResp, error) {
	d := NewDec(b)
	m := RouteResp{Epoch: d.I32(), Target: d.I32()}
	n := d.Len(12)
	for i := 0; i < n; i++ {
		m.Dists = append(m.Dists, bind.Dist{Lat: vtime.Duration(d.I64()), Hops: d.I32()})
	}
	return m, d.Done()
}
