// Package wire is the federation wire protocol: a compact, versioned,
// length-prefixed binary codec for everything that crosses a machine
// boundary in a federated run — control-plane synchronization messages,
// topology and assignment distribution, and the data-plane tunnel messages
// (including eager-mode pre-announcements) that carry packets between core
// processes.
//
// Every frame is
//
//	[ length u32 | version u8 | type u8 | body ]
//
// where length counts the version, type, and body bytes. Bodies are encoded
// with the fixed-width little-endian cursors below; decoding is total — a
// truncated, oversized, or corrupt frame produces an error, never a panic
// (the fuzz tests pin this).
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Version is the protocol version; peers with a different version are
// rejected at the first frame. Version 2 made the payload registry
// recursive: packet payloads travel as one self-delimiting registry
// encoding (u16 id + body, nested payloads inline) instead of a flat
// (type, blob) pair. Version 3 gave the TFlush frame a body (the global
// clock floor live edge gateways stamp ingress admissions with) and the
// TSetupAck frame a JSON body (the worker's gateway lease report).
// Version 4 added a fourth blob to the TSetup frame: the link-dynamics
// spec (dynamics.Encode), empty when the run has none.
// Version 5 added the observability layer: a Trace u64 (the mode-invariant
// packet trace ID) in every PacketWire, and the TTrace frame streaming a
// worker's recorded trace events to the coordinator before its TReport.
// Version 6 is the adaptive-synchronization protocol: TReady carries the
// per-peer SafeTo bound vector, TWindow bounds become per-worker grants, the
// TStep/TStepDone pair piggybacks flush + sync + window control into one
// round trip per window, and TDataBatch carries a flush close marker (the
// sender's cumulative channel count when a batch ends a flush) so a lost
// datagram is diagnosable instead of a silent timeout.
// Version 7 is the sharded-distribution protocol: setup travels as chunked
// per-section TSetupChunk frames (a per-shard view instead of the whole
// world), PacketWire carries the injection-time reroute epoch, and the
// TRouteReq/TRouteResp pair demand-pages frontier route summaries from the
// coordinator's oracle.
// Version 8 is the failure/recovery protocol: Step carries a checkpoint
// flag, workers push canonical TCheckpoint state digests at flagged
// barriers, and the TFail/TRecover/TRewire/TResend/TAck frames drive
// fault injection, worker respawn, data-plane rewiring, and per-channel
// message-log retransmission.
const Version = 8

// MaxFrame bounds a frame's length field: anything larger is treated as
// corruption rather than an allocation request.
const MaxFrame = 64 << 20

// Frame types. Control types travel coordinator<->worker over TCP; TData
// travels worker<->worker on the data plane.
const (
	THello      uint8 = 1  // worker -> coordinator: join (JSON body)
	TSetup      uint8 = 2  // coordinator -> worker: config + topology + assignment (incl. any gateway lease)
	TSetupAck   uint8 = 3  // worker -> coordinator: mesh + gateway up (JSON body)
	TFlush      uint8 = 4  // coordinator -> worker: flush outbox to peers (body: clock floor for live ingress)
	TFlushDone  uint8 = 5  // worker -> coordinator: cumulative sent counts
	TSync       uint8 = 6  // coordinator -> worker: await + apply inbox
	TReady      uint8 = 7  // worker -> coordinator: bounds after apply
	TWindow     uint8 = 8  // coordinator -> worker: run a window
	TWindowDone uint8 = 9  // worker -> coordinator: window complete + sent counts
	TDrain      uint8 = 10 // coordinator -> worker: one serial drain turn
	TDrainDone  uint8 = 11 // worker -> coordinator: drain turn complete
	TFinish     uint8 = 12 // coordinator -> worker: stop and report
	TReport     uint8 = 13 // worker -> coordinator: final report (JSON body)
	TError      uint8 = 14 // either direction: fatal error (text body)
	TData       uint8 = 15 // worker -> worker: one cross-core tunnel message
	TDataBatch  uint8 = 16 // worker -> worker: a dense run of tunnel messages
	TTrace      uint8 = 17 // worker -> coordinator: a chunk of trace events (before TReport)
	TStep       uint8 = 18 // coordinator -> worker: one fused barrier step (await + apply + run + flush)
	TStepDone   uint8 = 19 // worker -> coordinator: step complete: counts + post-step bounds
	TSetupChunk uint8 = 20 // coordinator -> worker: one chunk of a sharded setup section
	TRouteReq   uint8 = 21 // worker -> coordinator: demand-page one route summary (epoch, target)
	TRouteResp  uint8 = 22 // coordinator -> worker: the requested summary distances
	TCheckpoint uint8 = 23 // worker -> coordinator: canonical shard state digest at a flagged barrier
	TFail       uint8 = 24 // coordinator -> worker: fault injection: die at barrier N (first boot only)
	TRecover    uint8 = 25 // coordinator -> worker: respawn notice: suppress data-plane sends below these watermarks
	TRewire     uint8 = 26 // coordinator -> worker: a peer respawned; swap its data-plane endpoints
	TResend     uint8 = 27 // coordinator -> worker: retransmit your whole send log to the respawned peer
	TAck        uint8 = 28 // worker -> coordinator: a TRewire/TResend directive completed
)

const headerBytes = 6 // u32 length + u8 version + u8 type

// oversizeErr names the limit loudly: a body this large means a setup or
// batch producer failed to chunk, and the receiver would reject the length
// field as corruption — so the sender fails first, with the real cause.
func oversizeErr(typ uint8, n int) error {
	return fmt.Errorf("wire: frame type %d body is %d bytes, exceeding MaxFrame (%d bytes / 64MB); the payload must be chunked (TSetupChunk / TDataBatch), not sent as one frame", typ, n, MaxFrame)
}

// AppendFrame appends a complete frame to dst and returns the result. It
// panics on a body that exceeds MaxFrame — senders with an error path should
// use WriteFrame or check CheckFrameSize first.
func AppendFrame(dst []byte, typ uint8, body []byte) []byte {
	if err := CheckFrameSize(typ, body); err != nil {
		panic(err)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)+2))
	dst = append(dst, Version, typ)
	return append(dst, body...)
}

// CheckFrameSize reports whether body fits in one frame under MaxFrame.
func CheckFrameSize(typ uint8, body []byte) error {
	if len(body)+2 > MaxFrame {
		return oversizeErr(typ, len(body))
	}
	return nil
}

// WriteFrame writes one frame to w, rejecting oversize bodies with an
// explicit error instead of emitting a frame the peer will treat as corrupt.
func WriteFrame(w io.Writer, typ uint8, body []byte) error {
	if err := CheckFrameSize(typ, body); err != nil {
		return err
	}
	buf := AppendFrame(make([]byte, 0, headerBytes+len(body)), typ, body)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame from a stream.
func ReadFrame(r io.Reader) (typ uint8, body []byte, err error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 2 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	rest := make([]byte, n)
	if _, err := io.ReadFull(r, rest); err != nil {
		return 0, nil, fmt.Errorf("wire: short frame: %w", err)
	}
	if rest[0] != Version {
		return 0, nil, fmt.Errorf("wire: version %d, want %d", rest[0], Version)
	}
	return rest[1], rest[2:], nil
}

// ParseFrame decodes one datagram-framed frame (the UDP data plane, where
// the transport preserves message boundaries).
func ParseFrame(b []byte) (typ uint8, body []byte, err error) {
	if len(b) < headerBytes {
		return 0, nil, fmt.Errorf("wire: datagram %d bytes, need at least %d", len(b), headerBytes)
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if n < 2 || n > MaxFrame || int(n) != len(b)-4 {
		return 0, nil, fmt.Errorf("wire: datagram length field %d does not match %d payload bytes", n, len(b)-4)
	}
	if b[4] != Version {
		return 0, nil, fmt.Errorf("wire: version %d, want %d", b[4], Version)
	}
	return b[5], b[6:], nil
}

// Enc is an append-only little-endian encoder.
type Enc struct {
	b            []byte
	payloadDepth int
}

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.b }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.b = append(e.b, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a uint16.
func (e *Enc) U16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }

// U32 appends a uint32.
func (e *Enc) U32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

// U64 appends a uint64.
func (e *Enc) U64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// I32 appends an int32.
func (e *Enc) I32(v int32) { e.U32(uint32(v)) }

// I64 appends an int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 bit-exactly.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Blob appends a u32-length-prefixed byte string.
func (e *Enc) Blob(v []byte) {
	e.U32(uint32(len(v)))
	e.b = append(e.b, v...)
}

// Str appends a u32-length-prefixed string.
func (e *Enc) Str(v string) {
	e.U32(uint32(len(v)))
	e.b = append(e.b, v...)
}

// Dec is a bounds-checked little-endian decoder with a sticky error:
// reading past the end sets the error and returns zero values, so codecs
// can decode unconditionally and check once.
type Dec struct {
	b            []byte
	off          int
	err          error
	payloadDepth int
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the sticky error.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail(need int) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated: need %d bytes at offset %d of %d", need, d.off, len(d.b))
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail(n)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// Bool reads a boolean byte; any nonzero value is true.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// StrictBool reads a boolean byte accepting only the canonical encodings 0
// and 1. Payload codecs use it: under the canonicality contract a decoder
// must reject any byte its encoder would not emit.
func (d *Dec) StrictBool() (bool, error) {
	switch b := d.U8(); b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("wire: non-canonical boolean byte %d", b)
	}
}

// U16 reads a uint16.
func (d *Dec) U16() uint16 {
	s := d.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

// U32 reads a uint32.
func (d *Dec) U32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

// U64 reads a uint64.
func (d *Dec) U64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// I32 reads an int32.
func (d *Dec) I32() int32 { return int32(d.U32()) }

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Blob reads a u32-length-prefixed byte string. The result aliases the
// input buffer.
func (d *Dec) Blob() []byte {
	n := d.U32()
	if n > MaxFrame {
		d.fail(int(n))
		return nil
	}
	return d.take(int(n))
}

// Str reads a u32-length-prefixed string.
func (d *Dec) Str() string { return string(d.Blob()) }

// Len reads a u32 element count, bounds-checked against the bytes that
// remain assuming at least elemBytes per element — a corrupt count fails
// here instead of provoking a huge allocation.
func (d *Dec) Len(elemBytes int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	if int(n) > (len(d.b)-d.off)/elemBytes {
		d.fail(int(n) * elemBytes)
		return 0
	}
	return int(n)
}

// Done checks that decoding consumed the whole buffer cleanly.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("wire: %d trailing bytes after message", len(d.b)-d.off)
	}
	return nil
}
