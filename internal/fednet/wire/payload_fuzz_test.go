package wire_test

// Fuzz and regression coverage for the recursive payload registry, from
// outside the package so the netstack and application codecs are linked in
// (package wire cannot import them — they import wire). The contract:
// decoding arbitrary bytes through the registry never panics; a successful
// decode re-encodes byte-identically (every registered codec is
// canonical); and corrupt nested payloads error instead of panicking or
// silently truncating.

import (
	"bytes"
	"strings"
	"testing"

	"modelnet/internal/fednet/wire"
	"modelnet/internal/netstack"

	// Register the application codecs so the fuzz corpus reaches their
	// decoders through nested payloads.
	_ "modelnet/internal/apps/cfs"
	_ "modelnet/internal/apps/chord"
	_ "modelnet/internal/apps/gnutella"
	_ "modelnet/internal/apps/webrepl"
)

// mustEncode encodes a payload that is expected to have a codec.
func mustEncode(t testing.TB, v any) []byte {
	t.Helper()
	b, err := wire.EncodePayload(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// seedSegment is a Segment exercising every field: flags, data bytes, and
// nested message markers (a *Datagram is a registered payload usable as a
// marker object from this package).
func seedSegment() *netstack.Segment {
	return &netstack.Segment{
		SrcPort: 80, DstPort: 32768,
		Seq: 1, Ack: 301, Len: 4,
		HasACK: true, FIN: true,
		Window: 64 << 10,
		Data:   []byte{1, 2, 3, 4},
		Msgs: []netstack.MsgMarker{
			{End: 3, Obj: nil},
			{End: 5, Obj: &netstack.Datagram{SrcPort: 9, DstPort: 10, Len: 7, Obj: nil}},
		},
	}
}

// rpcFrameBytes hand-assembles an RPC-frame payload (the type is
// unexported in netstack): u16 id 3, u64 call id, bool, nested body.
func rpcFrameBytes(callID uint64, isResp bool, body []byte) []byte {
	var e wire.Enc
	e.U16(3) // wire.PayloadRPC
	e.U64(callID)
	e.Bool(isResp)
	return append(e.Bytes(), body...)
}

// chordFindSuccBytes hand-assembles a chord findSuccReq payload (id 20).
func chordFindSuccBytes(key uint64) []byte {
	var e wire.Enc
	e.U16(20)
	e.U64(key)
	return e.Bytes()
}

// FuzzDecodePayload feeds arbitrary bytes through the recursive registry:
// decoding never panics, and any successful decode must re-encode to
// exactly the input bytes — canonicality across every registered codec,
// including nested ones.
func FuzzDecodePayload(f *testing.F) {
	f.Add(mustEncode(f, (*netstack.Segment)(seedSegment())))
	f.Add(mustEncode(f, &netstack.Segment{SrcPort: 1, DstPort: 2, SYN: true, Window: 100}))
	f.Add(mustEncode(f, &netstack.Datagram{SrcPort: 5, DstPort: 6, Len: 100, Data: []byte("abc")}))
	f.Add(rpcFrameBytes(7, false, chordFindSuccBytes(0xdeadbeef)))
	f.Add(rpcFrameBytes(8, true, mustEncode(f, &netstack.Datagram{Len: 1})))
	f.Add(chordFindSuccBytes(1))
	f.Add([]byte{0, 0})  // nil payload
	f.Add([]byte{2, 0})  // truncated segment
	f.Add([]byte{20, 0}) // truncated chord request
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		v, err := wire.DecodePayload(b)
		if err != nil {
			return
		}
		back, err := wire.EncodePayload(v)
		if err != nil {
			t.Fatalf("decoded payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(back, b) {
			t.Fatalf("payload decode/encode not canonical:\n in  %x\n out %x", b, back)
		}
	})
}

// TestSegmentPayloadRoundTrip pins the full Segment codec shape, nested
// marker object included.
func TestSegmentPayloadRoundTrip(t *testing.T) {
	seg := seedSegment()
	b := mustEncode(t, seg)
	v, err := wire.DecodePayload(b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*netstack.Segment)
	if !ok {
		t.Fatalf("decoded %T", v)
	}
	if got.SrcPort != seg.SrcPort || got.DstPort != seg.DstPort || got.Seq != seg.Seq ||
		got.Ack != seg.Ack || got.Len != seg.Len || got.Window != seg.Window ||
		got.SYN != seg.SYN || got.HasACK != seg.HasACK || got.FIN != seg.FIN || got.RST != seg.RST {
		t.Fatalf("header round trip: %+v", got)
	}
	if !bytes.Equal(got.Data, seg.Data) {
		t.Fatalf("data round trip: %x", got.Data)
	}
	if len(got.Msgs) != 2 || got.Msgs[0].End != 3 || got.Msgs[0].Obj != nil || got.Msgs[1].End != 5 {
		t.Fatalf("markers round trip: %+v", got.Msgs)
	}
	dg, ok := got.Msgs[1].Obj.(*netstack.Datagram)
	if !ok || dg.SrcPort != 9 || dg.DstPort != 10 || dg.Len != 7 {
		t.Fatalf("nested marker object round trip: %+v", got.Msgs[1].Obj)
	}
}

// TestCorruptNestedPayloadErrors truncates and corrupts a nested encoding
// at every byte position: each variant must error (or decode to something
// that re-encodes differently — impossible for a canonical codec), never
// panic, never silently succeed as the original.
func TestCorruptNestedPayloadErrors(t *testing.T) {
	orig := mustEncode(t, seedSegment())
	for cut := 0; cut < len(orig); cut++ {
		if v, err := wire.DecodePayload(orig[:cut]); err == nil {
			// A strict prefix that still decodes would mean the codec
			// ignores trailing structure; canonicality forbids it.
			back, _ := wire.EncodePayload(v)
			if bytes.Equal(back, orig) {
				t.Fatalf("truncation at %d decoded as the original", cut)
			}
		}
	}
	rpc := rpcFrameBytes(9, false, chordFindSuccBytes(3))
	for cut := 0; cut < len(rpc); cut++ {
		if _, err := wire.DecodePayload(rpc[:cut]); err == nil {
			t.Fatalf("truncated rpc frame at %d accepted", cut)
		}
	}
	// An RPC frame whose nested body names an unregistered payload id.
	bad := rpcFrameBytes(10, false, []byte{0xfe, 0xff})
	if _, err := wire.DecodePayload(bad); err == nil {
		t.Fatal("nested unregistered payload id accepted")
	}
}

// TestUnregisteredMarkerObjFailsAtEncode is the loud-failure regression: a
// Segment whose MsgMarker.Obj has no codec must fail at the *sender's*
// encode with the offending type name — not at the remote decoder, where
// the type is unknowable.
func TestUnregisteredMarkerObjFailsAtEncode(t *testing.T) {
	type notRegistered struct{ X int }
	seg := &netstack.Segment{
		SrcPort: 1, DstPort: 2, Seq: 10, Len: 3, HasACK: true,
		Msgs: []netstack.MsgMarker{{End: 13, Obj: &notRegistered{X: 7}}},
	}
	_, err := wire.EncodePayload(seg)
	if err == nil {
		t.Fatal("segment with unregistered marker object encoded")
	}
	if !strings.Contains(err.Error(), "notRegistered") {
		t.Fatalf("error does not name the offending type: %v", err)
	}
	if !strings.Contains(err.Error(), "wire.RegisterPayload") {
		t.Fatalf("error does not point at the registration hook: %v", err)
	}
}

// TestPayloadDepthBounded pins the recursion guard: a legitimate but
// pathologically deep object graph errors at encode, and a hand-built
// deeply nested encoding errors at decode — neither panics.
func TestPayloadDepthBounded(t *testing.T) {
	deep := &netstack.Datagram{Len: 1}
	for i := 0; i < wire.MaxPayloadDepth+1; i++ {
		deep = &netstack.Datagram{Len: 1, Obj: deep}
	}
	if _, err := wire.EncodePayload(deep); err == nil {
		t.Fatal("over-deep object graph encoded")
	}
	// Nest RPC frames beyond the bound on the wire.
	b := []byte{0, 0} // innermost: nil
	for i := 0; i < wire.MaxPayloadDepth+1; i++ {
		b = rpcFrameBytes(uint64(i), false, b)
	}
	if _, err := wire.DecodePayload(b); err == nil {
		t.Fatal("over-deep encoding decoded")
	}
}
