package wire

// Packet payloads travel by reference inside one process (the emulator
// never touches them, §2.2). Crossing a process boundary makes the
// reference real bytes, so every payload type that can ride a cross-core
// packet registers a codec here. Registration normally happens in the
// owning package's init (netstack datagrams in internal/fednet, application
// messages in their app packages); a payload of an unregistered type fails
// the encode with a descriptive error rather than silently corrupting the
// federated run.

import (
	"fmt"
	"reflect"
	"sync"
)

// Well-known payload type IDs. 0 is reserved for nil. Ranges: 1-9 netstack,
// 10-99 bundled applications, 100+ user payloads.
const (
	PayloadNil      uint16 = 0
	PayloadDatagram uint16 = 1 // *netstack.Datagram (registered by internal/fednet)

	// PayloadApp is the first ID for application payloads.
	PayloadApp uint16 = 10
)

// PayloadCodec converts one payload type to and from bytes. Enc receives
// exactly the registered type; Dec must return it.
type PayloadCodec struct {
	Enc func(v any) ([]byte, error)
	Dec func(b []byte) (any, error)
}

var payloadMu sync.RWMutex
var payloadByID = map[uint16]PayloadCodec{}
var payloadByType = map[reflect.Type]uint16{}

// RegisterPayload registers a codec for sample's dynamic type under id.
// It panics on a duplicate id or type: registration is an init-time,
// program-wide contract.
func RegisterPayload(id uint16, sample any, c PayloadCodec) {
	if id == PayloadNil {
		panic("wire: payload id 0 is reserved for nil")
	}
	t := reflect.TypeOf(sample)
	payloadMu.Lock()
	defer payloadMu.Unlock()
	if _, dup := payloadByID[id]; dup {
		panic(fmt.Sprintf("wire: payload id %d registered twice", id))
	}
	if _, dup := payloadByType[t]; dup {
		panic(fmt.Sprintf("wire: payload type %v registered twice", t))
	}
	payloadByID[id] = c
	payloadByType[t] = id
}

// EncodePayload serializes v through its registered codec. nil encodes as
// (PayloadNil, nil).
func EncodePayload(v any) (uint16, []byte, error) {
	if v == nil {
		return PayloadNil, nil, nil
	}
	t := reflect.TypeOf(v)
	payloadMu.RLock()
	id, ok := payloadByType[t]
	c := payloadByID[id]
	payloadMu.RUnlock()
	if !ok {
		return 0, nil, fmt.Errorf("payload type %v has no federation codec (wire.RegisterPayload)", t)
	}
	b, err := c.Enc(v)
	if err != nil {
		return 0, nil, err
	}
	return id, b, nil
}

// DecodePayload reverses EncodePayload.
func DecodePayload(id uint16, b []byte) (any, error) {
	if id == PayloadNil {
		return nil, nil
	}
	payloadMu.RLock()
	c, ok := payloadByID[id]
	payloadMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wire: payload id %d has no registered codec", id)
	}
	return c.Dec(b)
}
