package wire

// Packet payloads travel by reference inside one process (the emulator
// never touches them, §2.2). Crossing a process boundary makes the
// reference real bytes, so every payload type that can ride a cross-core
// packet registers a codec here. Registration normally happens in the
// owning package's init (netstack datagrams, TCP segments, and RPC frames
// in internal/netstack, application messages in their app packages); a
// payload of an unregistered type fails the encode with a descriptive
// error rather than silently corrupting the federated run.
//
// The registry is recursive: codecs run against a shared Enc/Dec context
// and may call Enc.Payload / Dec.Payload re-entrantly for payloads that
// contain payloads — a TCP segment whose message markers carry application
// objects, an RPC frame whose body is an application request. Nesting is
// self-delimiting (each codec consumes exactly what it wrote), canonical
// (decode∘encode is the identity on bytes), and depth-bounded so corrupt
// or cyclic input errors instead of exhausting the stack.

import (
	"fmt"
	"reflect"
	"sync"
)

// Well-known payload type IDs. 0 is reserved for nil. Ranges: 1-9 netstack,
// 10-99 bundled applications, 100+ user payloads.
const (
	PayloadNil      uint16 = 0
	PayloadDatagram uint16 = 1 // *netstack.Datagram
	PayloadSegment  uint16 = 2 // *netstack.Segment (TCP)
	PayloadRPC      uint16 = 3 // netstack's RPC frame (recursive body)

	// PayloadApp is the first ID for application payloads. Bundled apps
	// each take a decade: gnutella 10+, chord 20+, cfs 30+, webrepl 40+.
	PayloadApp uint16 = 10
)

// MaxPayloadDepth bounds payload nesting: a decode (or a pathological
// object graph on encode) deeper than this errors instead of recursing
// until the stack dies.
const MaxPayloadDepth = 16

// PayloadCodec converts one payload type to and from bytes within an
// encoding context. Enc receives exactly the registered type and appends
// its encoding; Dec must consume exactly the bytes Enc produced and return
// the registered type. Codecs never call Dec.Done — the buffer's owner
// does — and may call e.Payload / d.Payload for nested payloads. Decoders
// must be strict (reject encodings their encoder would not emit) so the
// codec stays canonical under the fuzz invariants.
type PayloadCodec struct {
	Enc func(e *Enc, v any) error
	Dec func(d *Dec) (any, error)
}

var payloadMu sync.RWMutex
var payloadByID = map[uint16]PayloadCodec{}
var payloadByType = map[reflect.Type]uint16{}

// RegisterPayload registers a codec for sample's dynamic type under id.
// It panics on a duplicate id or type: registration is an init-time,
// program-wide contract.
func RegisterPayload(id uint16, sample any, c PayloadCodec) {
	if id == PayloadNil {
		panic("wire: payload id 0 is reserved for nil")
	}
	t := reflect.TypeOf(sample)
	payloadMu.Lock()
	defer payloadMu.Unlock()
	if _, dup := payloadByID[id]; dup {
		panic(fmt.Sprintf("wire: payload id %d registered twice", id))
	}
	if _, dup := payloadByType[t]; dup {
		panic(fmt.Sprintf("wire: payload type %v registered twice", t))
	}
	payloadByID[id] = c
	payloadByType[t] = id
}

// Payload appends v's registry encoding (u16 type id + codec body),
// dispatching on v's dynamic type. nil encodes as the id PayloadNil alone.
// Codecs call this for nested payloads.
func (e *Enc) Payload(v any) error {
	if v == nil {
		e.U16(PayloadNil)
		return nil
	}
	t := reflect.TypeOf(v)
	payloadMu.RLock()
	id, ok := payloadByType[t]
	c := payloadByID[id]
	payloadMu.RUnlock()
	if !ok {
		return fmt.Errorf("payload type %v has no federation codec (wire.RegisterPayload)", t)
	}
	if e.payloadDepth >= MaxPayloadDepth {
		return fmt.Errorf("wire: payload nesting deeper than %d encoding %v", MaxPayloadDepth, t)
	}
	e.payloadDepth++
	e.U16(id)
	err := c.Enc(e, v)
	e.payloadDepth--
	return err
}

// Payload reads one registry encoding appended by Enc.Payload. Codecs call
// this for nested payloads.
func (d *Dec) Payload() (any, error) {
	id := d.U16()
	if d.err != nil {
		return nil, d.err
	}
	if id == PayloadNil {
		return nil, nil
	}
	payloadMu.RLock()
	c, ok := payloadByID[id]
	payloadMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wire: payload id %d has no registered codec", id)
	}
	if d.payloadDepth >= MaxPayloadDepth {
		return nil, fmt.Errorf("wire: payload nesting deeper than %d", MaxPayloadDepth)
	}
	d.payloadDepth++
	v, err := c.Dec(d)
	d.payloadDepth--
	if err != nil {
		return nil, err
	}
	if d.err != nil {
		return nil, d.err
	}
	return v, nil
}

// EncodePayload serializes v through the registry into a standalone,
// self-delimiting buffer.
func EncodePayload(v any) ([]byte, error) {
	var e Enc
	if err := e.Payload(v); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

// DecodePayload reverses EncodePayload, requiring the buffer be consumed
// exactly.
func DecodePayload(b []byte) (any, error) {
	d := NewDec(b)
	v, err := d.Payload()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return v, nil
}
