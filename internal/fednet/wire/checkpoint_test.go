package wire

import (
	"bytes"
	"reflect"
	"testing"

	"modelnet/internal/pipes"
)

func checkpointSeed() *Checkpoint {
	pw, _ := EncodePacket(&pipes.Packet{
		Seq: 42, Size: 600, Src: 0, Dst: 5, Route: []pipes.ID{1, 2}, Hop: 1, Epoch: 1,
	})
	return &Checkpoint{
		Shard: 1, Cores: 3, Round: 7, NowNs: 12345678,
		SchedSeq: 900, SchedFired: 850,
		Events: []CkptEvent{
			{AtNs: 13000000, Seq: 880, Tag: -2},
			{AtNs: 13000000, Seq: 881, Tag: 0},
			{AtNs: 14000000, Seq: 700, Tag: 5},
		},
		OutboxSeq: 321,
		Sent:      []uint64{10, 0, 44},
		Inbox:     []uint64{9, 0, 40},
		Injected:  100, DeliveredPkts: 80, NoRoute: 1, PhysDrops: 2, VirtualDrops: 3,
		InFlight:        14,
		DropsByReason:   []uint64{0, 1, 2, 3, 0, 0},
		DeliverySamples: 80,
		Buckets:         []CkptBucket{{FireNs: 13500000, Count: 2}, {FireNs: 14000000, Count: 1}},
		HasDyn:          true,
		Dyn: CkptDyn{
			Applied: 6, Reroutes: 2,
			Down:      []uint32{3},
			BasesNs:   []int64{10000000, 0},
			PendingNs: []int64{15000000},
		},
		Pipes: []CkptPipe{
			{
				ID: 2, BandwidthBps: 8e6, LatencyNs: 5000000, LossRate: 0.25, QueuePkts: 50,
				RedAvg: 0, RedCount: -1, RedIdle: true,
				LastTxDoneNs: 12000000, LastExitNs: 12900000, Draws: 17,
				Accepted: 30, Drops: []uint64{0, 2, 0, 0, 1, 0}, BytesIn: 18000, BytesOut: 16000, Delivered: 27,
				Entries: []CkptEntry{
					{Pkt: pw, TxDoneNs: 12300000, ExitNs: 12800000},
					{Pkt: pw, TxDoneNs: 12400000, ExitNs: 12900000},
				},
			},
			{
				ID: 4, BandwidthBps: 1e6, LatencyNs: 1000000, QueuePkts: 10,
				Down: true, HasRED: true,
				REDMinThresh: 2.5, REDMaxThresh: 7.5, REDMaxP: 0.1, REDWeight: 0.002,
				RedAvg: 3.25, RedCount: 4, RedIdleSinceNs: 11000000,
			},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := checkpointSeed()
	b := c.Encode()
	got, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", c, got)
	}
	if !bytes.Equal(got.Encode(), b) {
		t.Fatal("re-encode not canonical")
	}
	// Minimal checkpoint (no dynamics, no pipes) round-trips too.
	m := &Checkpoint{Shard: 0, Cores: 2, Round: 1}
	got2, err := DecodeCheckpoint(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, m) {
		t.Fatalf("minimal round trip diverged: %+v", got2)
	}
}

func TestDecodeCheckpointRejectsCorrupt(t *testing.T) {
	b := checkpointSeed().Encode()
	// Every truncation errors, never panics.
	for n := 0; n < len(b); n++ {
		if _, err := DecodeCheckpoint(b[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	// Trailing garbage errors (exact-length contract).
	if _, err := DecodeCheckpoint(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("trailing byte decoded")
	}
	// Non-canonical boolean byte errors.
	c := checkpointSeed()
	c.HasDyn = false
	c.Pipes = nil
	mb := c.Encode()
	for i := range mb {
		if mb[i] == 0 || mb[i] == 1 {
			continue
		}
		break
	}
	// Find the HasDyn byte: it is the last byte before the pipes count.
	mb[len(mb)-5] = 2 // HasDyn position for a pipe-free checkpoint
	if _, err := DecodeCheckpoint(mb); err == nil {
		t.Fatal("non-canonical bool decoded")
	}
	// Pipes out of ID order error.
	c2 := checkpointSeed()
	c2.Pipes[0].ID, c2.Pipes[1].ID = 4, 2
	if _, err := DecodeCheckpoint(c2.Encode()); err == nil {
		t.Fatal("unordered pipes decoded")
	}
}

func TestRecoveryFrameRoundTrips(t *testing.T) {
	fl, err := DecodeFail(Fail{Round: 9}.Encode())
	if err != nil || fl.Round != 9 {
		t.Fatalf("fail: %v %+v", err, fl)
	}
	rc, err := DecodeRecover(Recover{Sent: []uint64{5, 0, 7}}.Encode())
	if err != nil || !reflect.DeepEqual(rc.Sent, []uint64{5, 0, 7}) {
		t.Fatalf("recover: %v %+v", err, rc)
	}
	rw, err := DecodeRewire(Rewire{Peer: 2, TCPAddr: "127.0.0.1:9", UDPAddr: "127.0.0.1:10"}.Encode())
	if err != nil || rw.Peer != 2 || rw.TCPAddr != "127.0.0.1:9" || rw.UDPAddr != "127.0.0.1:10" {
		t.Fatalf("rewire: %v %+v", err, rw)
	}
	rs, err := DecodeResend(Resend{Peer: 1}.Encode())
	if err != nil || rs.Peer != 1 {
		t.Fatalf("resend: %v %+v", err, rs)
	}
	for _, b := range [][]byte{nil, {1}, {1, 2, 3}} {
		if _, err := DecodeRecover(append(b, 0xff, 0xff, 0xff, 0xff)); err == nil {
			t.Errorf("recover decoded garbage %x", b)
		}
		if _, err := DecodeRewire(b); err == nil {
			t.Errorf("rewire decoded %x", b)
		}
	}
	if _, err := DecodeFail(nil); err == nil {
		t.Error("empty fail decoded")
	}
}

// FuzzDecodeCheckpoint: arbitrary bytes never panic the checkpoint decoder,
// and any blob that decodes must re-encode byte-identically (canonical
// form) — the recovery protocol byte-compares these blobs.
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add(checkpointSeed().Encode())
	min := &Checkpoint{Cores: 2}
	f.Add(min.Encode())
	noDyn := checkpointSeed()
	noDyn.HasDyn = false
	noDyn.Dyn = CkptDyn{}
	f.Add(noDyn.Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := DecodeCheckpoint(b)
		if err != nil {
			return
		}
		if !bytes.Equal(c.Encode(), b) {
			t.Fatalf("checkpoint decode/encode not canonical for %x", b)
		}
		DecodeFail(b)
		DecodeRecover(b)
		DecodeRewire(b)
		DecodeResend(b)
	})
}
