package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xab}, 4096)}
	for i, b := range bodies {
		if err := WriteFrame(&buf, uint8(i+1), b); err != nil {
			t.Fatal(err)
		}
	}
	for i, b := range bodies {
		typ, body, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != uint8(i+1) || !bytes.Equal(body, b) {
			t.Fatalf("frame %d: got type %d, %d bytes", i, typ, len(body))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestFrameRejectsBadVersion(t *testing.T) {
	raw := AppendFrame(nil, TData, []byte("x"))
	raw[4] = Version + 1
	if _, _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("version mismatch accepted")
	}
	if _, _, err := ParseFrame(raw); err == nil {
		t.Fatal("version mismatch accepted by ParseFrame")
	}
}

func TestParseFrameLengthMismatch(t *testing.T) {
	raw := AppendFrame(nil, TData, []byte("abc"))
	if _, _, err := ParseFrame(raw[:len(raw)-1]); err == nil {
		t.Fatal("truncated datagram accepted")
	}
	if _, _, err := ParseFrame(append(raw, 0)); err == nil {
		t.Fatal("oversized datagram accepted")
	}
}

func TestSyncMessageRoundTrips(t *testing.T) {
	w, err := DecodeWindow(Window{Bound: -5}.Encode())
	if err != nil || w.Bound != -5 {
		t.Fatalf("window: %+v, %v", w, err)
	}
	c, err := DecodeCounts(Counts{Now: 42, Sent: []uint64{1, 0, 7}}.Encode())
	if err != nil || c.Now != 42 || !reflect.DeepEqual(c.Sent, []uint64{1, 0, 7}) {
		t.Fatalf("counts: %+v, %v", c, err)
	}
	s, err := DecodeSync(Sync{Expect: []uint64{9, 0}}.Encode())
	if err != nil || !reflect.DeepEqual(s.Expect, []uint64{9, 0}) {
		t.Fatalf("sync: %+v, %v", s, err)
	}
	r, err := DecodeReady(Ready{Next: 1, Safe: 2}.Encode())
	if err != nil || r.Next != 1 || r.Safe != 2 || r.SafeTo != nil {
		t.Fatalf("ready: %+v, %v", r, err)
	}
	r, err = DecodeReady(Ready{Next: 1, Safe: 2, SafeTo: []int64{9, -1, 4}}.Encode())
	if err != nil || !reflect.DeepEqual(r.SafeTo, []int64{9, -1, 4}) {
		t.Fatalf("ready with SafeTo: %+v, %v", r, err)
	}
	st, err := DecodeStep(Step{Floor: 11, Grant: -1, Expect: []uint64{2, 0}}.Encode())
	if err != nil || st.Floor != 11 || st.Grant != -1 || !reflect.DeepEqual(st.Expect, []uint64{2, 0}) {
		t.Fatalf("step: %+v, %v", st, err)
	}
	sd, err := DecodeStepDone(StepDone{
		Counts: Counts{Now: 6, Sent: []uint64{1, 2}},
		Next:   7, Safe: 8, SafeTo: []int64{3, 4},
	}.Encode())
	if err != nil || sd.Next != 7 || sd.Safe != 8 || sd.Counts.Now != 6 ||
		!reflect.DeepEqual(sd.Counts.Sent, []uint64{1, 2}) || !reflect.DeepEqual(sd.SafeTo, []int64{3, 4}) {
		t.Fatalf("stepdone: %+v, %v", sd, err)
	}
	dr, err := DecodeDrain(Drain{T: 3, Expect: []uint64{4}}.Encode())
	if err != nil || dr.T != 3 || !reflect.DeepEqual(dr.Expect, []uint64{4}) {
		t.Fatalf("drain: %+v, %v", dr, err)
	}
	dd, err := DecodeDrainDone(DrainDone{Progressed: true, Counts: Counts{Now: 8, Sent: []uint64{3}}}.Encode())
	if err != nil || !dd.Progressed || dd.Counts.Now != 8 || len(dd.Counts.Sent) != 1 {
		t.Fatalf("draindone: %+v, %v", dd, err)
	}
	fl, err := DecodeFlush(Flush{Floor: 123456789}.Encode())
	if err != nil || fl.Floor != 123456789 {
		t.Fatalf("flush: %+v, %v", fl, err)
	}
	// An empty flush body is the pre-live protocol: floor zero.
	fl, err = DecodeFlush(nil)
	if err != nil || fl.Floor != 0 {
		t.Fatalf("empty flush: %+v, %v", fl, err)
	}
	if _, err := DecodeFlush([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated flush body should error")
	}
}

func TestDataRoundTrip(t *testing.T) {
	pkt := &pipes.Packet{
		Seq:      1<<48 | 77,
		Size:     1028,
		Src:      3,
		Dst:      250,
		Route:    []pipes.ID{4, 9, 1},
		Hop:      1,
		Injected: vtime.Time(12345),
		Lag:      vtime.Duration(6),
	}
	pw, err := EncodePacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	m := Data{Sender: 2, Seq: 10, Kind: KindTunnel, Pid: 9, At: 100, Lag: 0, Fire: 200, Pkt: pw}
	got, err := DecodeData(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	back, err := got.Pkt.Packet()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, pkt) {
		t.Fatalf("packet round trip:\n got %+v\nwant %+v", back, pkt)
	}
	if got.Sender != 2 || got.Seq != 10 || got.Fire != 200 {
		t.Fatalf("envelope round trip: %+v", got)
	}
}

func TestDataRejectsCorruptStructure(t *testing.T) {
	pw, _ := EncodePacket(&pipes.Packet{Route: []pipes.ID{1}, Hop: 0})
	cases := []Data{
		{Kind: 9, Pkt: pw},                   // unknown kind
		{Kind: KindTunnel, Pid: -1, Pkt: pw}, // tunnel without a pipe
	}
	for i, m := range cases {
		if _, err := DecodeData(m.Encode()); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	bad := Data{Kind: KindDelivery, Pid: -1, Pkt: pw}
	raw := bad.Encode()
	if _, err := DecodeData(raw); err != nil {
		t.Fatalf("valid message rejected: %v", err)
	}
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeData(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDataBatchRoundTrip(t *testing.T) {
	pw1, err := EncodePacket(&pipes.Packet{
		Seq: 9, Size: 500, Src: 1, Dst: 2, Route: []pipes.ID{0, 3}, Hop: 1,
		Injected: vtime.Time(50), Lag: vtime.Duration(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	pw2, err := EncodePacket(&pipes.Packet{Seq: 10, Size: 40, Src: 2, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := DataBatch{
		Sender: 3,
		TSeq0:  17,
		Msgs: []DataMsg{
			{Seq: 100, Kind: KindTunnel, Pid: 3, At: 5, Fire: 6, Pkt: pw1},
			{Seq: 101, Kind: KindDelivery, Pid: -1, At: 7, Lag: 1, Fire: 8, Pkt: pw2},
		},
	}
	raw := b.Encode()
	got, err := DecodeDataBatch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sender != b.Sender || got.TSeq0 != b.TSeq0 || len(got.Msgs) != len(b.Msgs) {
		t.Fatalf("batch header round trip: %+v", got)
	}
	for i := range got.Msgs {
		g, w := got.Msgs[i], b.Msgs[i]
		if g.Seq != w.Seq || g.Kind != w.Kind || g.Pid != w.Pid || g.At != w.At || g.Lag != w.Lag || g.Fire != w.Fire {
			t.Fatalf("element %d envelope round trip: %+v", i, g)
		}
		gp, err := g.Pkt.Packet()
		if err != nil {
			t.Fatal(err)
		}
		wp, err := w.Pkt.Packet()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gp, wp) {
			t.Fatalf("element %d packet round trip:\n got %+v\nwant %+v", i, gp, wp)
		}
	}
	if !bytes.Equal(got.Encode(), raw) {
		t.Fatal("batch re-encode not canonical")
	}
	// The raw-element assembler must agree with the struct encoder.
	elems := make([][]byte, len(b.Msgs))
	for i, m := range b.Msgs {
		elems[i] = m.Encode()
	}
	if !bytes.Equal(EncodeDataBatch(b.Sender, b.TSeq0, b.Close, elems), raw) {
		t.Fatal("EncodeDataBatch diverges from DataBatch.Encode")
	}
	// A close marker must name the batch's own last element and round-trip.
	b.Close = b.TSeq0 + uint64(len(b.Msgs)) - 1
	got, err = DecodeDataBatch(b.Encode())
	if err != nil || got.Close != b.Close {
		t.Fatalf("close marker round trip: %+v, %v", got, err)
	}
	b.Close++
	if _, err := DecodeDataBatch(b.Encode()); err == nil {
		t.Fatal("close marker beyond the batch accepted")
	}
}

func TestDataBatchRejectsCorruptStructure(t *testing.T) {
	pw, _ := EncodePacket(&pipes.Packet{Route: []pipes.ID{1}, Hop: 0})
	ok := DataMsg{Seq: 1, Kind: KindDelivery, Pid: -1, Pkt: pw}
	cases := []DataBatch{
		{Sender: 0, TSeq0: 1},                                             // empty batch
		{Sender: 0, TSeq0: 0, Msgs: []DataMsg{ok}},                        // zero channel seq
		{TSeq0: 1, Msgs: []DataMsg{{Kind: 9, Pkt: pw}}},                   // unknown kind
		{TSeq0: 1, Msgs: []DataMsg{{Kind: KindTunnel, Pid: -2, Pkt: pw}}}, // tunnel without pipe
	}
	for i, m := range cases {
		if _, err := DecodeDataBatch(m.Encode()); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	raw := DataBatch{Sender: 1, TSeq0: 5, Msgs: []DataMsg{ok, ok}}.Encode()
	if _, err := DecodeDataBatch(raw); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeDataBatch(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestUnregisteredPayloadErrors(t *testing.T) {
	type private struct{ X int }
	if _, err := EncodePacket(&pipes.Packet{Payload: private{1}}); err == nil {
		t.Fatal("unregistered payload encoded")
	}
	if _, err := DecodePayload([]byte{0xfe, 0xff}); err == nil {
		t.Fatal("unregistered payload id decoded")
	}
}

func TestTopologyRoundTripExact(t *testing.T) {
	g := topology.New()
	a := g.AddNode(topology.Stub, "r0")
	b := g.AddNode(topology.Transit, "")
	c := g.AddNode(topology.Client, "vn0")
	g.AddDuplex(a, b, topology.LinkAttrs{BandwidthBps: 1e9 / 3, LatencySec: 0.00512345678901, QueuePkts: 30})
	g.AddLink(c, a, topology.LinkAttrs{BandwidthBps: 2e6, LatencySec: 1e-3, LossRate: 0.015, Cost: 2.25})
	got, err := DecodeTopology(EncodeTopology(g))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Nodes, g.Nodes) || !reflect.DeepEqual(got.Links, g.Links) {
		t.Fatalf("topology round trip diverged")
	}
	for n := range g.Nodes {
		if !reflect.DeepEqual(got.Out(topology.NodeID(n)), g.Out(topology.NodeID(n))) {
			t.Fatalf("adjacency of node %d diverged", n)
		}
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	owner := []int{0, 1, 1, 2, 0}
	got, cores, err := DecodeAssignment(EncodeAssignment(owner, 3))
	if err != nil || cores != 3 || !reflect.DeepEqual(got, owner) {
		t.Fatalf("got %v cores=%d err=%v", got, cores, err)
	}
	if _, _, err := DecodeAssignment(EncodeAssignment([]int{5}, 3)); err == nil {
		t.Fatal("out-of-range owner accepted")
	}
}
