package wire

// Checkpoint is the canonical serialization of one shard's recovery-relevant
// state at a window barrier: scheduler queue identity, outbox/channel
// sequence counters, emulator totals and drop taxonomy, applier bucket
// shape, the dynamics cursor, and every materialized pipe's complete state —
// parameters bit-exact, in-flight entries with their schedules (packet
// payloads via the recursive payload registry), the FIFO delay-line clamps,
// and the lazy generator's draw position.
//
// The blob is canonical: one shard state has exactly one encoding, and the
// decoder rejects anything the encoder would not emit (strict booleans,
// exact trailing length). Federated recovery leans on that — the coordinator
// byte-compares the blob a replayed worker pushes at a barrier against the
// blob the original worker pushed there, so any replay divergence surfaces
// as a loud mismatch instead of silent state drift.

import "fmt"

// CkptEvent is one pending scheduler event's identity (vtime.EventState).
type CkptEvent struct {
	AtNs int64
	Seq  uint64
	Tag  int32
}

// CkptBucket is one pending applier fire-time bucket.
type CkptBucket struct {
	FireNs int64
	Count  uint32
}

// CkptEntry is one in-flight packet inside a pipe with its schedule.
type CkptEntry struct {
	Pkt      PacketWire
	TxDoneNs int64
	ExitNs   int64
}

// CkptPipe is one materialized pipe's complete state.
type CkptPipe struct {
	ID uint32

	// Parameters, bit-exact.
	BandwidthBps float64
	LatencyNs    int64
	LossRate     float64
	QueuePkts    int32
	Down         bool
	HasRED       bool
	REDMinThresh float64
	REDMaxThresh float64
	REDMaxP      float64
	REDWeight    float64

	// Runtime state.
	RedAvg         float64
	RedCount       int64
	RedIdleSinceNs int64
	RedIdle        bool
	LastTxDoneNs   int64
	LastExitNs     int64
	Draws          uint64

	// Counters.
	Accepted  uint64
	Drops     []uint64
	BytesIn   uint64
	BytesOut  uint64
	Delivered uint64

	Entries []CkptEntry
}

// CkptDyn is the dynamics engine cursor (dynamics.EngineState).
type CkptDyn struct {
	Applied   uint64
	Reroutes  uint64
	Down      []uint32
	BasesNs   []int64
	PendingNs []int64
}

// Checkpoint is one shard's barrier state digest, the TCheckpoint body.
type Checkpoint struct {
	Shard uint32
	Cores uint32
	Round uint32 // the coordinator-numbered step round this barrier ends
	NowNs int64

	SchedSeq   uint64
	SchedFired uint64
	Events     []CkptEvent

	OutboxSeq uint64
	Sent      []uint64 // per-peer cumulative data-plane send counters
	Inbox     []uint64 // per-peer contiguous delivered prefixes (collector)

	// Emulator totals + unified drop taxonomy.
	Injected      uint64
	DeliveredPkts uint64
	NoRoute       uint64
	PhysDrops     uint64
	VirtualDrops  uint64
	InFlight      int64
	DropsByReason []uint64

	// DeliverySamples counts collected per-delivery latency samples.
	DeliverySamples uint64

	Buckets []CkptBucket

	HasDyn bool
	Dyn    CkptDyn

	Pipes []CkptPipe
}

// Encode returns the canonical frame body.
func (c *Checkpoint) Encode() []byte {
	var e Enc
	e.U32(c.Shard)
	e.U32(c.Cores)
	e.U32(c.Round)
	e.I64(c.NowNs)
	e.U64(c.SchedSeq)
	e.U64(c.SchedFired)
	e.U32(uint32(len(c.Events)))
	for _, ev := range c.Events {
		e.I64(ev.AtNs)
		e.U64(ev.Seq)
		e.I32(ev.Tag)
	}
	e.U64(c.OutboxSeq)
	e.U32(uint32(len(c.Sent)))
	for _, v := range c.Sent {
		e.U64(v)
	}
	e.U32(uint32(len(c.Inbox)))
	for _, v := range c.Inbox {
		e.U64(v)
	}
	e.U64(c.Injected)
	e.U64(c.DeliveredPkts)
	e.U64(c.NoRoute)
	e.U64(c.PhysDrops)
	e.U64(c.VirtualDrops)
	e.I64(c.InFlight)
	e.U32(uint32(len(c.DropsByReason)))
	for _, v := range c.DropsByReason {
		e.U64(v)
	}
	e.U64(c.DeliverySamples)
	e.U32(uint32(len(c.Buckets)))
	for _, b := range c.Buckets {
		e.I64(b.FireNs)
		e.U32(b.Count)
	}
	e.Bool(c.HasDyn)
	if c.HasDyn {
		e.U64(c.Dyn.Applied)
		e.U64(c.Dyn.Reroutes)
		e.U32(uint32(len(c.Dyn.Down)))
		for _, v := range c.Dyn.Down {
			e.U32(v)
		}
		e.U32(uint32(len(c.Dyn.BasesNs)))
		for _, v := range c.Dyn.BasesNs {
			e.I64(v)
		}
		e.U32(uint32(len(c.Dyn.PendingNs)))
		for _, v := range c.Dyn.PendingNs {
			e.I64(v)
		}
	}
	e.U32(uint32(len(c.Pipes)))
	for i := range c.Pipes {
		appendCkptPipe(&e, &c.Pipes[i])
	}
	return e.Bytes()
}

func appendCkptPipe(e *Enc, p *CkptPipe) {
	e.U32(p.ID)
	e.F64(p.BandwidthBps)
	e.I64(p.LatencyNs)
	e.F64(p.LossRate)
	e.I32(p.QueuePkts)
	e.Bool(p.Down)
	e.Bool(p.HasRED)
	if p.HasRED {
		e.F64(p.REDMinThresh)
		e.F64(p.REDMaxThresh)
		e.F64(p.REDMaxP)
		e.F64(p.REDWeight)
	}
	e.F64(p.RedAvg)
	e.I64(p.RedCount)
	e.I64(p.RedIdleSinceNs)
	e.Bool(p.RedIdle)
	e.I64(p.LastTxDoneNs)
	e.I64(p.LastExitNs)
	e.U64(p.Draws)
	e.U64(p.Accepted)
	e.U32(uint32(len(p.Drops)))
	for _, v := range p.Drops {
		e.U64(v)
	}
	e.U64(p.BytesIn)
	e.U64(p.BytesOut)
	e.U64(p.Delivered)
	e.U32(uint32(len(p.Entries)))
	for i := range p.Entries {
		appendPacketWire(e, &p.Entries[i].Pkt)
		e.I64(p.Entries[i].TxDoneNs)
		e.I64(p.Entries[i].ExitNs)
	}
}

// DecodeCheckpoint parses a TCheckpoint body. Decoding is total: corrupt or
// truncated input errors, never panics (FuzzDecodeCheckpoint pins this).
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	d := NewDec(b)
	c := &Checkpoint{
		Shard:      d.U32(),
		Cores:      d.U32(),
		Round:      d.U32(),
		NowNs:      d.I64(),
		SchedSeq:   d.U64(),
		SchedFired: d.U64(),
	}
	n := d.Len(8 + 8 + 4)
	for i := 0; i < n; i++ {
		c.Events = append(c.Events, CkptEvent{AtNs: d.I64(), Seq: d.U64(), Tag: d.I32()})
	}
	c.OutboxSeq = d.U64()
	n = d.Len(8)
	for i := 0; i < n; i++ {
		c.Sent = append(c.Sent, d.U64())
	}
	n = d.Len(8)
	for i := 0; i < n; i++ {
		c.Inbox = append(c.Inbox, d.U64())
	}
	c.Injected = d.U64()
	c.DeliveredPkts = d.U64()
	c.NoRoute = d.U64()
	c.PhysDrops = d.U64()
	c.VirtualDrops = d.U64()
	c.InFlight = d.I64()
	n = d.Len(8)
	for i := 0; i < n; i++ {
		c.DropsByReason = append(c.DropsByReason, d.U64())
	}
	c.DeliverySamples = d.U64()
	n = d.Len(8 + 4)
	for i := 0; i < n; i++ {
		c.Buckets = append(c.Buckets, CkptBucket{FireNs: d.I64(), Count: d.U32()})
	}
	hasDyn, err := d.StrictBool()
	if err != nil {
		return nil, err
	}
	c.HasDyn = hasDyn
	if c.HasDyn {
		c.Dyn.Applied = d.U64()
		c.Dyn.Reroutes = d.U64()
		n = d.Len(4)
		for i := 0; i < n; i++ {
			c.Dyn.Down = append(c.Dyn.Down, d.U32())
		}
		n = d.Len(8)
		for i := 0; i < n; i++ {
			c.Dyn.BasesNs = append(c.Dyn.BasesNs, d.I64())
		}
		n = d.Len(8)
		for i := 0; i < n; i++ {
			c.Dyn.PendingNs = append(c.Dyn.PendingNs, d.I64())
		}
	}
	n = d.Len(1)
	for i := 0; i < n; i++ {
		p, err := decodeCkptPipe(d)
		if err != nil {
			return nil, err
		}
		c.Pipes = append(c.Pipes, p)
		if d.Err() != nil {
			break // truncated: stop growing, Done reports it
		}
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	for i := 1; i < len(c.Pipes); i++ {
		if c.Pipes[i].ID <= c.Pipes[i-1].ID {
			return nil, fmt.Errorf("wire: checkpoint pipes not in ID order at index %d", i)
		}
	}
	return c, nil
}

func decodeCkptPipe(d *Dec) (CkptPipe, error) {
	p := CkptPipe{
		ID:           d.U32(),
		BandwidthBps: d.F64(),
		LatencyNs:    d.I64(),
		LossRate:     d.F64(),
		QueuePkts:    d.I32(),
	}
	var err error
	if p.Down, err = d.StrictBool(); err != nil {
		return p, err
	}
	if p.HasRED, err = d.StrictBool(); err != nil {
		return p, err
	}
	if p.HasRED {
		p.REDMinThresh = d.F64()
		p.REDMaxThresh = d.F64()
		p.REDMaxP = d.F64()
		p.REDWeight = d.F64()
	}
	p.RedAvg = d.F64()
	p.RedCount = d.I64()
	p.RedIdleSinceNs = d.I64()
	if p.RedIdle, err = d.StrictBool(); err != nil {
		return p, err
	}
	p.LastTxDoneNs = d.I64()
	p.LastExitNs = d.I64()
	p.Draws = d.U64()
	p.Accepted = d.U64()
	n := d.Len(8)
	for i := 0; i < n; i++ {
		p.Drops = append(p.Drops, d.U64())
	}
	p.BytesIn = d.U64()
	p.BytesOut = d.U64()
	p.Delivered = d.U64()
	n = d.Len(1)
	for i := 0; i < n; i++ {
		var en CkptEntry
		en.Pkt = decodePacketWire(d)
		en.TxDoneNs = d.I64()
		en.ExitNs = d.I64()
		p.Entries = append(p.Entries, en)
		if d.Err() != nil {
			break
		}
	}
	return p, nil
}

// Fail is the fault-injection directive (TFail): the worker exits with a
// distinctive status the moment it receives its Round-th TStep frame. It is
// sent once, right after setup, and never replayed to a respawned worker —
// recovery must not re-arm the crash it is recovering from.
type Fail struct {
	Round uint32 // 1-based coordinator step-round number
}

// Encode returns the frame body.
func (m Fail) Encode() []byte {
	var e Enc
	e.U32(m.Round)
	return e.Bytes()
}

// DecodeFail parses a TFail body.
func DecodeFail(b []byte) (Fail, error) {
	d := NewDec(b)
	m := Fail{Round: d.U32()}
	return m, d.Done()
}

// Recover tells a respawned worker it is a replay replica (TRecover): its
// data-plane sends to peer j are suppressed while its cumulative counter is
// at or below Sent[j] — the prefix the fleet already consumed — but still
// logged, so a later recovery can resend them.
type Recover struct {
	Sent []uint64
}

// Encode returns the frame body.
func (m Recover) Encode() []byte {
	var e Enc
	e.U32(uint32(len(m.Sent)))
	for _, v := range m.Sent {
		e.U64(v)
	}
	return e.Bytes()
}

// DecodeRecover parses a TRecover body.
func DecodeRecover(b []byte) (Recover, error) {
	d := NewDec(b)
	var m Recover
	n := d.Len(8)
	for i := 0; i < n; i++ {
		m.Sent = append(m.Sent, d.U64())
	}
	return m, d.Done()
}

// Rewire announces a respawned peer's new data-plane endpoints (TRewire).
// The receiver drops its stale channel state for the peer, swaps addresses,
// re-establishes the TCP leg per the mesh's dial-direction rule, and acks.
type Rewire struct {
	Peer    uint32
	TCPAddr string
	UDPAddr string
}

// Encode returns the frame body.
func (m Rewire) Encode() []byte {
	var e Enc
	e.U32(m.Peer)
	e.Str(m.TCPAddr)
	e.Str(m.UDPAddr)
	return e.Bytes()
}

// DecodeRewire parses a TRewire body.
func DecodeRewire(b []byte) (Rewire, error) {
	d := NewDec(b)
	m := Rewire{Peer: d.U32(), TCPAddr: d.Str(), UDPAddr: d.Str()}
	return m, d.Done()
}

// Resend directs a worker to retransmit its whole logged send history to
// the (respawned) peer (TResend), re-establishing the dense channel prefix
// the peer's fresh collector expects.
type Resend struct {
	Peer uint32
}

// Encode returns the frame body.
func (m Resend) Encode() []byte {
	var e Enc
	e.U32(m.Peer)
	return e.Bytes()
}

// DecodeResend parses a TResend body.
func DecodeResend(b []byte) (Resend, error) {
	d := NewDec(b)
	m := Resend{Peer: d.U32()}
	return m, d.Done()
}
