package wire

// Tests and fuzz targets for the sharded-setup codec: the chunker and
// assembler agree, the assembler rejects corrupt streams (out-of-order,
// duplicate, post-completion chunks) and never yields a truncated section,
// and the view/world/route codecs are total and canonical.

import (
	"bytes"
	"testing"

	"modelnet/internal/bind"
	"modelnet/internal/topology"
)

func viewSeed() *bind.ShardView {
	return &bind.ShardView{
		Shard: 1, Cores: 2, NumNodes: 5, NumLinks: 6,
		Links: []topology.Link{
			{ID: 1, Src: 0, Dst: 3, Attr: topology.LinkAttrs{BandwidthBps: 1e6, LatencySec: 0.001, QueuePkts: 10}},
			{ID: 4, Src: 3, Dst: 2, Attr: topology.LinkAttrs{BandwidthBps: 2e6, LatencySec: 0.002, QueuePkts: 8, Cost: 1}},
		},
		LinkOwner: []int32{1, 0},
		Frontier:  []topology.NodeID{2},
		Summary:   []topology.NodeID{2, 4},
	}
}

func TestChunkRoundTrip(t *testing.T) {
	blob := bytes.Repeat([]byte("setup-section-bytes"), 200_000) // ~3.8MB: several chunks
	for _, tc := range [][]byte{nil, []byte("small"), blob} {
		chunks := Chunks(SecView, tc)
		if !chunks[len(chunks)-1].Last {
			t.Fatalf("final chunk not marked Last")
		}
		a := NewChunkAssembler()
		for _, c := range chunks {
			dec, err := DecodeSetupChunk(c.Encode())
			if err != nil {
				t.Fatalf("decode chunk: %v", err)
			}
			if err := a.Add(dec); err != nil {
				t.Fatalf("add chunk: %v", err)
			}
		}
		got, ok := a.Section(SecView)
		if !ok || !bytes.Equal(got, tc) {
			t.Fatalf("section mismatch: ok=%v got %d bytes, want %d", ok, len(got), len(tc))
		}
	}
}

func TestAssemblerRejectsCorruptStreams(t *testing.T) {
	chunks := Chunks(SecConfig, bytes.Repeat([]byte("x"), SetupChunkBytes+100)) // 2 chunks
	if len(chunks) != 2 {
		t.Fatalf("want 2 chunks, got %d", len(chunks))
	}

	// Out-of-order: second chunk first.
	a := NewChunkAssembler()
	if err := a.Add(chunks[1]); err == nil {
		t.Fatalf("out-of-order chunk accepted")
	}

	// Duplicate: same seq twice.
	a = NewChunkAssembler()
	if err := a.Add(chunks[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(chunks[0]); err == nil {
		t.Fatalf("duplicate chunk accepted")
	}

	// Post-completion: anything after Last.
	a = NewChunkAssembler()
	for _, c := range chunks {
		if err := a.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	extra := chunks[1]
	extra.Seq = 2
	if err := a.Add(extra); err == nil {
		t.Fatalf("chunk after section completion accepted")
	}

	// Truncated: a section without its Last chunk never materializes.
	a = NewChunkAssembler()
	if err := a.Add(chunks[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Section(SecConfig); ok {
		t.Fatalf("incomplete section returned")
	}
	if _, err := a.Require(SecConfig); err == nil {
		t.Fatalf("Require accepted a truncated section")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	body := make([]byte, MaxFrame-1)
	var sink bytes.Buffer
	if err := WriteFrame(&sink, TSetup, body); err == nil {
		t.Fatalf("oversize frame written without error")
	} else if got := err.Error(); !bytes.Contains([]byte(got), []byte("MaxFrame")) {
		t.Fatalf("oversize error does not name the limit: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("AppendFrame accepted an oversize body")
		}
	}()
	AppendFrame(nil, TSetup, body)
}

// FuzzSetupChunk: arbitrary bytes never panic the chunk decoder, and a
// chunk that decodes re-encodes byte-identically.
func FuzzSetupChunk(f *testing.F) {
	for _, c := range Chunks(SecWorld, bytes.Repeat([]byte("world"), 1000)) {
		f.Add(c.Encode())
	}
	f.Add(SetupChunk{Section: SecDynamics, Seq: 0, Last: true}.Encode())
	f.Add([]byte{SecView, 9, 0, 0, 0, 2}) // non-canonical Last byte
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeSetupChunk(b)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), b) {
			t.Fatalf("SetupChunk decode/encode not canonical for %x", b)
		}
	})
}

// FuzzShardSetup feeds arbitrary bytes to the view, world, and route-RPC
// decoders: no panics, and successful decodes are canonical.
func FuzzShardSetup(f *testing.F) {
	f.Add(EncodeShardView(viewSeed()))
	f.Add(EncodeWorld(World{VNHome: []int32{0, 3}, Homes: []int32{0, 1}}))
	f.Add(RouteReq{Epoch: 2, Target: 7}.Encode())
	f.Add(RouteResp{Epoch: 2, Target: 7, Dists: []bind.Dist{{Lat: 5, Hops: 1}, bind.Unreachable}}.Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		if v, err := DecodeShardView(b); err == nil {
			if !bytes.Equal(EncodeShardView(v), b) {
				t.Fatalf("ShardView decode/encode not canonical for %x", b)
			}
		}
		if w, err := DecodeWorld(b); err == nil {
			if !bytes.Equal(EncodeWorld(w), b) {
				t.Fatalf("World decode/encode not canonical for %x", b)
			}
		}
		if m, err := DecodeRouteReq(b); err == nil {
			if !bytes.Equal(m.Encode(), b) {
				t.Fatalf("RouteReq decode/encode not canonical for %x", b)
			}
		}
		if m, err := DecodeRouteResp(b); err == nil {
			if !bytes.Equal(m.Encode(), b) {
				t.Fatalf("RouteResp decode/encode not canonical for %x", b)
			}
		}
	})
}
