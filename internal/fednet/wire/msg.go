package wire

// Bodies of the synchronization and data-plane frames. Each message has an
// Encode method producing its frame body and a decode function that is
// total over arbitrary input.

import (
	"fmt"

	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// Window asks a worker to run its shard through Bound (inclusive).
type Window struct {
	Bound int64
}

// Encode returns the frame body.
func (m Window) Encode() []byte {
	var e Enc
	e.I64(m.Bound)
	return e.Bytes()
}

// DecodeWindow parses a TWindow body.
func DecodeWindow(b []byte) (Window, error) {
	d := NewDec(b)
	m := Window{Bound: d.I64()}
	return m, d.Done()
}

// Flush asks a worker to push its outbox onto the data plane. Floor is the
// maximum virtual clock over all shards at this barrier: a live edge
// gateway (internal/edge) stamps its queued real-world arrivals at
// max(local clock, Floor), so an ingress event — and every cross-core
// message it later causes — can never fire before a peer shard's present.
type Flush struct {
	Floor int64
}

// Encode returns the frame body.
func (m Flush) Encode() []byte {
	var e Enc
	e.I64(m.Floor)
	return e.Bytes()
}

// DecodeFlush parses a TFlush body. An empty body (the pre-live protocol)
// decodes as a zero floor.
func DecodeFlush(b []byte) (Flush, error) {
	if len(b) == 0 {
		return Flush{}, nil
	}
	d := NewDec(b)
	m := Flush{Floor: d.I64()}
	return m, d.Done()
}

// Counts reports a worker's cumulative per-peer message counters: Sent[j]
// is the total number of data-plane messages this worker has ever sent to
// shard j. Cumulative counters make barrier accounting independent of when
// frames physically move.
type Counts struct {
	Now  int64 // the worker's virtual clock
	Sent []uint64
}

// Encode returns the frame body.
func (m Counts) Encode() []byte {
	var e Enc
	e.I64(m.Now)
	e.U32(uint32(len(m.Sent)))
	for _, s := range m.Sent {
		e.U64(s)
	}
	return e.Bytes()
}

// DecodeCounts parses a TWindowDone/TFlushDone body.
func DecodeCounts(b []byte) (Counts, error) {
	d := NewDec(b)
	m := Counts{Now: d.I64()}
	n := d.Len(8)
	for i := 0; i < n; i++ {
		m.Sent = append(m.Sent, d.U64())
	}
	return m, d.Done()
}

// Sync tells a worker, per sender shard, the cumulative number of
// data-plane messages ever addressed to it (Expect[j] covers channel j→me);
// the worker blocks until exactly that prefix of every channel has arrived,
// applies its inbox in canonical order, and replies with TReady. Channel
// prefixes — rather than a single total — make the barrier immune to
// cross-channel arrival races: a peer's next-round messages can already be
// in flight while this worker still awaits the current round.
type Sync struct {
	Expect []uint64
}

// Encode returns the frame body.
func (m Sync) Encode() []byte {
	var e Enc
	e.U32(uint32(len(m.Expect)))
	for _, x := range m.Expect {
		e.U64(x)
	}
	return e.Bytes()
}

// DecodeSync parses a TSync body.
func DecodeSync(b []byte) (Sync, error) {
	d := NewDec(b)
	n := d.Len(8)
	m := Sync{}
	for i := 0; i < n; i++ {
		m.Expect = append(m.Expect, d.U64())
	}
	return m, d.Done()
}

// Ready is a worker's post-apply bounds report. SafeTo, when non-empty, is
// the adaptive algebra's per-peer bound vector (parcore.Bounds.SafeTo):
// entry j is the earliest virtual time a message from this shard's current
// state could fire on shard j. Empty under the fixed algebra.
type Ready struct {
	Next, Safe int64
	SafeTo     []int64
}

// Encode returns the frame body.
func (m Ready) Encode() []byte {
	var e Enc
	e.I64(m.Next)
	e.I64(m.Safe)
	e.U32(uint32(len(m.SafeTo)))
	for _, s := range m.SafeTo {
		e.I64(s)
	}
	return e.Bytes()
}

// DecodeReady parses a TReady body.
func DecodeReady(b []byte) (Ready, error) {
	d := NewDec(b)
	m := Ready{Next: d.I64(), Safe: d.I64()}
	n := d.Len(8)
	for i := 0; i < n; i++ {
		m.SafeTo = append(m.SafeTo, d.I64())
	}
	return m, d.Done()
}

// Step is one fused barrier step, the piggybacked form of the
// Flush/Sync/Window round trips: the worker awaits the Expect channel
// prefixes, applies its inbox in canonical order, runs its shard through
// Grant (inclusive) unless Grant is negative (a bounds-only step), flushes
// its outbox, and replies with TStepDone. Floor plays TFlush's role for any
// live gateway. One control round trip per window instead of three.
type Step struct {
	Floor int64
	Grant int64 // the shard's window grant; < 0 = report bounds, do not run
	// Ckpt asks the worker to push a TCheckpoint digest after this step's
	// TStepDone. The flag is coordinator-driven — a worker counting rounds
	// itself would desynchronize when recovery retries a round.
	Ckpt   bool
	Expect []uint64
}

// Encode returns the frame body.
func (m Step) Encode() []byte {
	var e Enc
	e.I64(m.Floor)
	e.I64(m.Grant)
	e.Bool(m.Ckpt)
	e.U32(uint32(len(m.Expect)))
	for _, x := range m.Expect {
		e.U64(x)
	}
	return e.Bytes()
}

// DecodeStep parses a TStep body.
func DecodeStep(b []byte) (Step, error) {
	d := NewDec(b)
	m := Step{Floor: d.I64(), Grant: d.I64()}
	ck, err := d.StrictBool()
	if err != nil {
		return Step{}, err
	}
	m.Ckpt = ck
	n := d.Len(8)
	for i := 0; i < n; i++ {
		m.Expect = append(m.Expect, d.U64())
	}
	return m, d.Done()
}

// StepDone reports a step's outcome: the worker's cumulative send counters
// (settling the messages its window just flushed) and its bounds after the
// run. The bounds predate the application of any messages still in flight
// toward this worker — the coordinator compensates with the reaction-chain
// floor before feeding them to the grant algebra.
type StepDone struct {
	Counts     Counts
	Next, Safe int64
	SafeTo     []int64
}

// Encode returns the frame body.
func (m StepDone) Encode() []byte {
	var e Enc
	e.Blob(m.Counts.Encode())
	e.I64(m.Next)
	e.I64(m.Safe)
	e.U32(uint32(len(m.SafeTo)))
	for _, s := range m.SafeTo {
		e.I64(s)
	}
	return e.Bytes()
}

// DecodeStepDone parses a TStepDone body.
func DecodeStepDone(b []byte) (StepDone, error) {
	d := NewDec(b)
	cb := d.Blob()
	m := StepDone{Next: d.I64(), Safe: d.I64()}
	n := d.Len(8)
	for i := 0; i < n; i++ {
		m.SafeTo = append(m.SafeTo, d.I64())
	}
	if err := d.Done(); err != nil {
		return StepDone{}, err
	}
	var err error
	m.Counts, err = DecodeCounts(cb)
	if err != nil {
		return StepDone{}, err
	}
	return m, nil
}

// Drain gives a worker one serial drain turn at time T: await the Expect
// channel prefixes (as in Sync), apply, run local events with timestamps
// ≤ T.
type Drain struct {
	T      int64
	Expect []uint64
}

// Encode returns the frame body.
func (m Drain) Encode() []byte {
	var e Enc
	e.I64(m.T)
	e.U32(uint32(len(m.Expect)))
	for _, x := range m.Expect {
		e.U64(x)
	}
	return e.Bytes()
}

// DecodeDrain parses a TDrain body.
func DecodeDrain(b []byte) (Drain, error) {
	d := NewDec(b)
	m := Drain{T: d.I64()}
	n := d.Len(8)
	for i := 0; i < n; i++ {
		m.Expect = append(m.Expect, d.U64())
	}
	return m, d.Done()
}

// DrainDone reports a drain turn's outcome.
type DrainDone struct {
	Progressed bool
	Counts     Counts
}

// Encode returns the frame body.
func (m DrainDone) Encode() []byte {
	var e Enc
	e.Bool(m.Progressed)
	e.Blob(m.Counts.Encode())
	return e.Bytes()
}

// DecodeDrainDone parses a TDrainDone body.
func DecodeDrainDone(b []byte) (DrainDone, error) {
	d := NewDec(b)
	m := DrainDone{Progressed: d.Bool()}
	cb := d.Blob()
	if err := d.Done(); err != nil {
		return m, err
	}
	var err error
	m.Counts, err = DecodeCounts(cb)
	return m, err
}

// Data message kinds.
const (
	KindTunnel   uint8 = 0 // enqueue Pkt into pipe Pid at time At
	KindDelivery uint8 = 1 // complete Pkt's delivery at At with lag Lag
)

// Data is one cross-core event: a tunnel entry or delivery completion,
// carrying the packet descriptor (and, without payload caching, its
// payload) between core processes — the §2.2 core-to-core tunnel made
// literal.
type Data struct {
	Sender uint16
	Seq    uint64 // the sender's outbox sequence (canonical-order tiebreak)
	TSeq   uint64 // dense 1-based sequence on the sender→target channel
	Kind   uint8
	Pid    int32
	At     int64
	Lag    int64
	Fire   int64
	Pkt    PacketWire
}

// PacketWire is the on-the-wire form of pipes.Packet. Payload is the
// packet payload's complete registry encoding (EncodePayload: u16 type id
// + codec body, nested payloads inline); a nil payload encodes as the two
// bytes of PayloadNil.
type PacketWire struct {
	Seq      uint64
	Size     int32
	Src, Dst int32
	Route    []int32
	Hop      int32
	Injected int64
	Lag      int64
	Trace    uint64 // mode-invariant trace ID; 0 when tracing is off
	Epoch    int32  // injection-time reroute epoch (pipes.Packet.Epoch)
	Payload  []byte
}

// appendPacketWire encodes a packet descriptor into e.
func appendPacketWire(e *Enc, p *PacketWire) {
	e.U64(p.Seq)
	e.I32(p.Size)
	e.I32(p.Src)
	e.I32(p.Dst)
	e.U32(uint32(len(p.Route)))
	for _, r := range p.Route {
		e.I32(r)
	}
	e.I32(p.Hop)
	e.I64(p.Injected)
	e.I64(p.Lag)
	e.U64(p.Trace)
	e.I32(p.Epoch)
	e.Blob(p.Payload)
}

// decodePacketWire reads a packet descriptor from d (errors are sticky on
// the decoder; structural validation is checkDataMsg's).
func decodePacketWire(d *Dec) PacketWire {
	p := PacketWire{
		Seq:  d.U64(),
		Size: d.I32(),
		Src:  d.I32(),
		Dst:  d.I32(),
	}
	n := d.Len(4)
	for i := 0; i < n; i++ {
		p.Route = append(p.Route, d.I32())
	}
	p.Hop = d.I32()
	p.Injected = d.I64()
	p.Lag = d.I64()
	p.Trace = d.U64()
	p.Epoch = d.I32()
	p.Payload = append([]byte(nil), d.Blob()...)
	return p
}

// Encode returns the frame body.
func (m Data) Encode() []byte {
	var e Enc
	e.U16(m.Sender)
	e.U64(m.Seq)
	e.U64(m.TSeq)
	e.U8(m.Kind)
	e.I32(m.Pid)
	e.I64(m.At)
	e.I64(m.Lag)
	e.I64(m.Fire)
	appendPacketWire(&e, &m.Pkt)
	return e.Bytes()
}

// DecodeData parses a TData body.
func DecodeData(b []byte) (Data, error) {
	d := NewDec(b)
	m := Data{
		Sender: d.U16(),
		Seq:    d.U64(),
		TSeq:   d.U64(),
		Kind:   d.U8(),
		Pid:    d.I32(),
		At:     d.I64(),
		Lag:    d.I64(),
		Fire:   d.I64(),
	}
	m.Pkt = decodePacketWire(d)
	if err := d.Done(); err != nil {
		return Data{}, err
	}
	if err := checkDataMsg(m.Kind, m.Pid, &m.Pkt); err != nil {
		return Data{}, err
	}
	return m, nil
}

// checkDataMsg validates the structural invariants of one data message.
func checkDataMsg(kind uint8, pid int32, p *PacketWire) error {
	if kind != KindTunnel && kind != KindDelivery {
		return fmt.Errorf("wire: unknown data kind %d", kind)
	}
	if kind == KindTunnel && pid < 0 {
		return fmt.Errorf("wire: tunnel message with pipe %d", pid)
	}
	if p.Hop < 0 || int(p.Hop) > len(p.Route) {
		return fmt.Errorf("wire: hop %d outside route of %d pipes", p.Hop, len(p.Route))
	}
	return nil
}

// DataMsg is one element of a DataBatch: a Data message minus the fields
// the batch header carries for the whole run (Sender; the per-channel
// sequence is implicit — element i of a batch is message TSeq0+i on the
// sender→receiver channel, which is what keeps the dense-sequence barrier
// accounting byte-for-byte identical to the unbatched plane).
type DataMsg struct {
	Seq  uint64 // the sender's outbox sequence (canonical-order tiebreak)
	Kind uint8
	Pid  int32
	At   int64
	Lag  int64
	Fire int64
	Pkt  PacketWire
}

// dataMsgMinBytes is the encoded size of a DataMsg with an empty route and
// payload, used to bounds-check batch element counts before allocating.
const dataMsgMinBytes = 37 + 62

// Encode returns the element's encoding (one slot of a batch body).
func (m DataMsg) Encode() []byte {
	var e Enc
	m.append(&e)
	return e.Bytes()
}

func (m DataMsg) append(e *Enc) {
	e.U64(m.Seq)
	e.U8(m.Kind)
	e.I32(m.Pid)
	e.I64(m.At)
	e.I64(m.Lag)
	e.I64(m.Fire)
	appendPacketWire(e, &m.Pkt)
}

func decodeDataMsg(d *Dec) DataMsg {
	m := DataMsg{
		Seq:  d.U64(),
		Kind: d.U8(),
		Pid:  d.I32(),
		At:   d.I64(),
		Lag:  d.I64(),
		Fire: d.I64(),
	}
	m.Pkt = decodePacketWire(d)
	return m
}

// DataBatch is a dense run of cross-core tunnel messages from one sender:
// element i carries channel sequence TSeq0+i. The data plane coalesces each
// window's messages per peer into one batch, chunked under the plane's
// datagram bound, so the per-message frame and syscall cost of the
// unbatched plane becomes per-window.
type DataBatch struct {
	Sender uint16
	TSeq0  uint64 // channel sequence of element 0; dense, 1-based
	// Close, when nonzero, marks the batch as the last chunk of a flush:
	// it is the sender's cumulative channel count after this batch's final
	// element. Receivers use it as a loss diagnostic — a channel whose
	// close marker covers the barrier's expectation but whose contiguous
	// prefix does not has lost a datagram, and the eventual timeout can say
	// so instead of guessing.
	Close uint64
	Msgs  []DataMsg
}

// Encode returns the frame body.
func (m DataBatch) Encode() []byte {
	var e Enc
	e.U16(m.Sender)
	e.U64(m.TSeq0)
	e.U64(m.Close)
	e.U32(uint32(len(m.Msgs)))
	for _, x := range m.Msgs {
		x.append(&e)
	}
	return e.Bytes()
}

// EncodeDataBatch assembles a batch frame body from pre-encoded elements
// (DataMsg.Encode results). The data plane encodes each message once and
// reuses the bytes across chunk boundaries.
func EncodeDataBatch(sender uint16, tseq0, close uint64, elems [][]byte) []byte {
	n := 2 + 8 + 8 + 4
	for _, el := range elems {
		n += len(el)
	}
	var e Enc
	e.b = make([]byte, 0, n)
	e.U16(sender)
	e.U64(tseq0)
	e.U64(close)
	e.U32(uint32(len(elems)))
	for _, el := range elems {
		e.b = append(e.b, el...)
	}
	return e.Bytes()
}

// DecodeDataBatch parses a TDataBatch body.
func DecodeDataBatch(b []byte) (DataBatch, error) {
	d := NewDec(b)
	m := DataBatch{Sender: d.U16(), TSeq0: d.U64(), Close: d.U64()}
	n := d.Len(dataMsgMinBytes)
	for i := 0; i < n; i++ {
		m.Msgs = append(m.Msgs, decodeDataMsg(d))
	}
	if err := d.Done(); err != nil {
		return DataBatch{}, err
	}
	if len(m.Msgs) == 0 {
		return DataBatch{}, fmt.Errorf("wire: empty data batch")
	}
	if m.TSeq0 == 0 {
		return DataBatch{}, fmt.Errorf("wire: data batch with zero channel sequence")
	}
	if m.TSeq0+uint64(len(m.Msgs)) < m.TSeq0 {
		return DataBatch{}, fmt.Errorf("wire: data batch channel sequence overflow")
	}
	if m.Close != 0 && m.Close != m.TSeq0+uint64(len(m.Msgs))-1 {
		return DataBatch{}, fmt.Errorf("wire: data batch close marker %d does not cover elements %d..%d",
			m.Close, m.TSeq0, m.TSeq0+uint64(len(m.Msgs))-1)
	}
	for i := range m.Msgs {
		x := &m.Msgs[i]
		if err := checkDataMsg(x.Kind, x.Pid, &x.Pkt); err != nil {
			return DataBatch{}, err
		}
	}
	return m, nil
}

// EncodePacket converts a live packet to wire form, encoding its payload
// through the registry.
func EncodePacket(pkt *pipes.Packet) (PacketWire, error) {
	pb, err := EncodePayload(pkt.Payload)
	if err != nil {
		return PacketWire{}, fmt.Errorf("wire: packet %d %v->%v: %w", pkt.Seq, pkt.Src, pkt.Dst, err)
	}
	route := make([]int32, len(pkt.Route))
	for i, r := range pkt.Route {
		route[i] = int32(r)
	}
	return PacketWire{
		Seq:      pkt.Seq,
		Size:     int32(pkt.Size),
		Src:      int32(pkt.Src),
		Dst:      int32(pkt.Dst),
		Route:    route,
		Hop:      int32(pkt.Hop),
		Injected: int64(pkt.Injected),
		Lag:      int64(pkt.Lag),
		Trace:    pkt.Trace,
		Epoch:    pkt.Epoch,

		Payload: pb,
	}, nil
}

// Packet reconstructs the live packet, decoding the payload through the
// registry.
func (p *PacketWire) Packet() (*pipes.Packet, error) {
	payload, err := DecodePayload(p.Payload)
	if err != nil {
		return nil, err
	}
	route := make([]pipes.ID, len(p.Route))
	for i, r := range p.Route {
		route[i] = pipes.ID(r)
	}
	return &pipes.Packet{
		Seq:      p.Seq,
		Size:     int(p.Size),
		Src:      pipes.VN(p.Src),
		Dst:      pipes.VN(p.Dst),
		Route:    route,
		Hop:      int(p.Hop),
		Injected: vtime.Time(p.Injected),
		Lag:      vtime.Duration(p.Lag),
		Trace:    p.Trace,
		Epoch:    p.Epoch,
		Payload:  payload,
	}, nil
}

// EncodeTopology serializes a graph bit-exactly (float64 attributes travel
// as raw bits, so the distilled topology a worker rebuilds is identical to
// the coordinator's).
func EncodeTopology(g *topology.Graph) []byte {
	var e Enc
	e.U32(uint32(g.NumNodes()))
	for _, n := range g.Nodes {
		e.U8(uint8(n.Kind))
		e.Str(n.Name)
	}
	e.U32(uint32(g.NumLinks()))
	for _, l := range g.Links {
		e.U32(uint32(l.Src))
		e.U32(uint32(l.Dst))
		e.F64(l.Attr.BandwidthBps)
		e.F64(l.Attr.LatencySec)
		e.F64(l.Attr.LossRate)
		e.I32(int32(l.Attr.QueuePkts))
		e.F64(l.Attr.Cost)
	}
	return e.Bytes()
}

// DecodeTopology rebuilds a graph from EncodeTopology output. Node and link
// IDs are reconstructed densely in order, so they match the source graph.
func DecodeTopology(b []byte) (*topology.Graph, error) {
	d := NewDec(b)
	g := topology.New()
	nNodes := d.Len(2)
	for i := 0; i < nNodes; i++ {
		kind := d.U8()
		name := d.Str()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if kind > uint8(topology.Transit) {
			return nil, fmt.Errorf("wire: node %d has unknown kind %d", i, kind)
		}
		g.AddNode(topology.NodeKind(kind), name)
	}
	nLinks := d.Len(40)
	for i := 0; i < nLinks; i++ {
		src := d.U32()
		dst := d.U32()
		attr := topology.LinkAttrs{
			BandwidthBps: d.F64(),
			LatencySec:   d.F64(),
			LossRate:     d.F64(),
			QueuePkts:    int(d.I32()),
			Cost:         d.F64(),
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		if int(src) >= nNodes || int(dst) >= nNodes {
			return nil, fmt.Errorf("wire: link %d endpoint out of range", i)
		}
		g.AddLink(topology.NodeID(src), topology.NodeID(dst), attr)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return g, nil
}

// EncodeAssignment serializes a pipe->core ownership vector.
func EncodeAssignment(owner []int, cores int) []byte {
	var e Enc
	e.U32(uint32(cores))
	e.U32(uint32(len(owner)))
	for _, o := range owner {
		e.U32(uint32(o))
	}
	return e.Bytes()
}

// DecodeAssignment parses EncodeAssignment output.
func DecodeAssignment(b []byte) (owner []int, cores int, err error) {
	d := NewDec(b)
	cores = int(d.U32())
	n := d.Len(4)
	owner = make([]int, 0, n)
	for i := 0; i < n; i++ {
		owner = append(owner, int(d.U32()))
	}
	if err := d.Done(); err != nil {
		return nil, 0, err
	}
	if cores < 1 || cores > 1<<16 {
		return nil, 0, fmt.Errorf("wire: assignment with %d cores", cores)
	}
	for i, o := range owner {
		if o < 0 || o >= cores {
			return nil, 0, fmt.Errorf("wire: pipe %d owned by core %d of %d", i, o, cores)
		}
	}
	return owner, cores, nil
}
