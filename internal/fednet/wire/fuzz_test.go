package wire

// Fuzz targets for the federation codec. The contract under fuzzing:
// decoding arbitrary bytes never panics and never silently succeeds on a
// structurally invalid message, and every valid message round-trips
// byte-identically. The seed corpus below runs on every `go test ./...`.

import (
	"bytes"
	"testing"

	"modelnet/internal/pipes"
	"modelnet/internal/topology"
)

func topologySeed() *topology.Graph {
	g := topology.New()
	a := g.AddNode(topology.Stub, "a")
	b := g.AddNode(topology.Client, "b")
	g.AddDuplex(a, b, topology.LinkAttrs{BandwidthBps: 1e6, LatencySec: 0.001, QueuePkts: 10})
	return g
}

func fuzzSeeds(f *testing.F) {
	pw, _ := EncodePacket(&pipes.Packet{
		Seq: 7, Size: 1000, Src: 1, Dst: 2, Route: []pipes.ID{0, 3}, Hop: 1,
	})
	f.Add(Data{Sender: 1, Seq: 9, Kind: KindTunnel, Pid: 3, At: 5, Fire: 6, Pkt: pw}.Encode())
	f.Add(Data{Kind: KindDelivery, Pid: -1, Lag: 11, Pkt: pw}.Encode())
	f.Add(DataBatch{Sender: 1, TSeq0: 4, Msgs: []DataMsg{
		{Seq: 9, Kind: KindTunnel, Pid: 3, At: 5, Fire: 6, Pkt: pw},
		{Seq: 10, Kind: KindDelivery, Pid: -1, Lag: 11, Pkt: pw},
	}}.Encode())
	f.Add(DataBatch{Sender: 2, TSeq0: 4, Close: 4, Msgs: []DataMsg{
		{Seq: 9, Kind: KindTunnel, Pid: 3, At: 5, Fire: 6, Pkt: pw},
	}}.Encode())
	f.Add(Window{Bound: 1 << 40}.Encode())
	f.Add(Counts{Now: 3, Sent: []uint64{0, 2}}.Encode())
	f.Add(DrainDone{Progressed: true, Counts: Counts{Sent: []uint64{1}}}.Encode())
	f.Add(Ready{Next: 5, Safe: 9, SafeTo: []int64{12, -1}}.Encode())
	f.Add(Step{Floor: 2, Grant: -1, Expect: []uint64{0, 3}}.Encode())
	f.Add(StepDone{Counts: Counts{Now: 4, Sent: []uint64{1, 0}}, Next: 6, Safe: 7, SafeTo: []int64{8, 9}}.Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
}

// FuzzDecodeData feeds arbitrary bytes to every body decoder: none may
// panic, and a successful Data or DataBatch decode must re-encode
// byte-identically (the codec is canonical).
func FuzzDecodeData(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		if m, err := DecodeData(b); err == nil {
			if !bytes.Equal(m.Encode(), b) {
				t.Fatalf("Data decode/encode not canonical for %x", b)
			}
			if _, err := m.Pkt.Packet(); err == nil {
				if _, err := EncodePacket(mustPacket(t, &m.Pkt)); err != nil {
					t.Fatalf("decoded packet failed to re-encode: %v", err)
				}
			}
		}
		if m, err := DecodeDataBatch(b); err == nil {
			if !bytes.Equal(m.Encode(), b) {
				t.Fatalf("DataBatch decode/encode not canonical for %x", b)
			}
			elems := make([][]byte, len(m.Msgs))
			for i, x := range m.Msgs {
				elems[i] = x.Encode()
			}
			if !bytes.Equal(EncodeDataBatch(m.Sender, m.TSeq0, m.Close, elems), b) {
				t.Fatalf("EncodeDataBatch not canonical for %x", b)
			}
		}
		DecodeWindowAll(b)
	})
}

func mustPacket(t *testing.T, p *PacketWire) *pipes.Packet {
	t.Helper()
	pkt, err := p.Packet()
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// DecodeWindowAll exercises the remaining body decoders for panic safety.
func DecodeWindowAll(b []byte) {
	_, _ = DecodeWindow(b)
	_, _ = DecodeCounts(b)
	_, _ = DecodeSync(b)
	_, _ = DecodeReady(b)
	_, _ = DecodeDrain(b)
	_, _ = DecodeDrainDone(b)
	_, _ = DecodeFlush(b)
	_, _ = DecodeStep(b)
	_, _ = DecodeStepDone(b)
	_, _, _ = DecodeAssignment(b)
}

// FuzzReadFrame feeds arbitrary byte streams to the stream and datagram
// frame parsers.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendFrame(nil, TData, []byte("body")))
	f.Add(AppendFrame(nil, TWindow, Window{Bound: 12}.Encode()))
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, Version, TData})
	f.Fuzz(func(t *testing.T, b []byte) {
		if typ, body, err := ParseFrame(b); err == nil {
			if !bytes.Equal(AppendFrame(nil, typ, body), b) {
				t.Fatalf("ParseFrame not canonical for %x", b)
			}
		}
		r := bytes.NewReader(b)
		for {
			if _, _, err := ReadFrame(r); err != nil {
				break
			}
		}
	})
}

// FuzzTopology checks the topology codec: arbitrary bytes never panic, and
// a graph that decodes must re-encode byte-identically and satisfy the
// structural invariants the decoder promises (dense IDs, endpoints in
// range).
func FuzzTopology(f *testing.F) {
	g := topologySeed()
	f.Add(EncodeTopology(g))
	f.Add([]byte{2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		got, err := DecodeTopology(b)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeTopology(got), b) {
			t.Fatalf("topology decode/encode not canonical")
		}
		for _, l := range got.Links {
			if int(l.Src) >= got.NumNodes() || int(l.Dst) >= got.NumNodes() {
				t.Fatalf("decoded link %d has endpoint out of range", l.ID)
			}
		}
	})
}
