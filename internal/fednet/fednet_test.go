package fednet_test

// Loopback federation tests: a small CBR ring runs as one sequential
// process, as an in-process parallel cluster, and as a real 2-process
// federation (the test binary re-execs itself as the workers), and all
// three must agree byte-for-byte on counters and delivery times. Both data
// planes are exercised.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"

	"modelnet"
	"modelnet/internal/fednet"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

func TestMain(m *testing.M) {
	fednet.MaybeRunWorker() // never returns in a spawned worker process
	os.Exit(m.Run())
}

// testRingParams parameterizes the test scenario.
type testRingParams struct {
	Routers      int     `json:"routers"`
	VNsPerRouter int     `json:"vns_per_router"`
	Packets      int     `json:"packets"`
	PeriodMS     float64 `json:"period_ms"`
	Bytes        int     `json:"bytes"`
}

var testParams = testRingParams{Routers: 4, VNsPerRouter: 3, Packets: 30, PeriodMS: 10, Bytes: 500}

func testRingTopology(p testRingParams) *modelnet.Graph {
	ring := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(100), LatencySec: modelnet.Ms(5), QueuePkts: 100}
	access := modelnet.LinkAttrs{BandwidthBps: modelnet.Mbps(10), LatencySec: modelnet.Ms(1), QueuePkts: 50}
	return modelnet.Ring(p.Routers, p.VNsPerRouter, ring, access)
}

// installTestRing sets up the workload for every VN the caller owns: a sink
// on port 9 and a CBR flow to the diametrically opposite VN. The plan is a
// pure function of the parameters, so every mode installs identical traffic.
func installTestRing(p testRingParams, n int, homed func(pipes.VN) bool,
	host func(pipes.VN) *netstack.Host, sched func(pipes.VN) *vtime.Scheduler) error {
	period := vtime.DurationOf(p.PeriodMS / 1000)
	for v := 0; v < n; v++ {
		vn := pipes.VN(v)
		if !homed(vn) {
			continue
		}
		h := host(vn)
		if _, err := h.OpenUDP(9, nil); err != nil {
			return err
		}
		s, err := h.OpenUDP(0, nil)
		if err != nil {
			return err
		}
		dst := netstack.Endpoint{VN: pipes.VN((v + n/2) % n), Port: 9}
		sc := sched(vn)
		left := p.Packets
		var send func()
		send = func() {
			s.SendTo(dst, p.Bytes, nil)
			left--
			if left > 0 {
				sc.After(period, send)
			}
		}
		// Stagger starts deterministically across the population.
		sc.After(vtime.Duration(v)*period/vtime.Duration(n)+1, send)
	}
	return nil
}

func init() {
	fednet.Register("fednet-test-ring", fednet.Scenario{
		Build: func(params json.RawMessage) (*modelnet.Graph, error) {
			var p testRingParams
			if err := json.Unmarshal(params, &p); err != nil {
				return nil, err
			}
			return testRingTopology(p), nil
		},
		Install: func(env *fednet.WorkerEnv, params json.RawMessage) (func() json.RawMessage, error) {
			var p testRingParams
			if err := json.Unmarshal(params, &p); err != nil {
				return nil, err
			}
			err := installTestRing(p, env.NumVNs(), env.Homed, env.NewHost,
				func(pipes.VN) *vtime.Scheduler { return env.Sched })
			return nil, err
		},
	})
}

const testRunFor = 1.0 // virtual seconds: every flow drains well before this

// runLocal drives the scenario without sockets, sequentially or in-process
// parallel, and returns counters plus the sorted delivery times.
func runLocal(t *testing.T, cores int, parallel bool) (modelnet.Totals, []float64) {
	t.Helper()
	ideal := modelnet.IdealProfile()
	em, err := modelnet.Run(testRingTopology(testParams), modelnet.Options{
		Cores: cores, Parallel: parallel, Profile: &ideal, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var deliveries []float64
	em.OnDeliver(func(_ *pipes.Packet, at modelnet.Time) {
		mu.Lock() // in parallel mode the hook fires concurrently across shards
		deliveries = append(deliveries, at.Seconds())
		mu.Unlock()
	})
	err = installTestRing(testParams, em.NumVNs(),
		func(pipes.VN) bool { return true },
		func(vn pipes.VN) *netstack.Host { return em.NewHost(vn) },
		func(vn pipes.VN) *vtime.Scheduler { return em.SchedulerOf(vn) })
	if err != nil {
		t.Fatal(err)
	}
	em.RunFor(modelnet.Seconds(testRunFor))
	sort.Float64s(deliveries)
	return em.Totals(), deliveries
}

func runFederated(t *testing.T, cores int, plane string) (modelnet.Totals, []float64, *fednet.Report) {
	t.Helper()
	rep, err := fednet.Run(fednet.Options{
		Scenario:          "fednet-test-ring",
		Params:            testParams,
		Cores:             cores,
		Seed:              7,
		Profile:           idealPtr(),
		RunFor:            modelnet.Seconds(testRunFor),
		DataPlane:         plane,
		Spawn:             true,
		CollectDeliveries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := append([]float64(nil), rep.Deliveries...)
	sort.Float64s(ds)
	return rep.Totals, ds, rep
}

func idealPtr() *modelnet.Profile {
	p := modelnet.IdealProfile()
	return &p
}

func sameRun(t *testing.T, name string, at modelnet.Totals, ad []float64, bt modelnet.Totals, bd []float64) {
	t.Helper()
	if at != bt {
		t.Errorf("%s: totals diverge:\n a %+v\n b %+v", name, at, bt)
	}
	if len(ad) != len(bd) {
		t.Fatalf("%s: delivery counts diverge: %d vs %d", name, len(ad), len(bd))
	}
	for i := range ad {
		if ad[i] != bd[i] {
			t.Fatalf("%s: delivery time %d diverges: %v vs %v", name, i, ad[i], bd[i])
		}
	}
}

func TestFederatedMatchesLocalModes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	seqT, seqD := runLocal(t, 1, false)
	parT, parD := runLocal(t, 2, true)
	fedT, fedD, rep := runFederated(t, 2, fednet.DataUDP)

	if seqT.Delivered == 0 {
		t.Fatal("no traffic delivered")
	}
	sameRun(t, "seq vs inproc-par", seqT, seqD, parT, parD)
	sameRun(t, "seq vs federated", seqT, seqD, fedT, fedD)
	if rep.Sync.Messages == 0 {
		t.Error("federated run exchanged no cross-core messages — partition degenerate, test is vacuous")
	}
	if rep.Sync.Windows == 0 {
		t.Error("federated run executed no windows")
	}
	// Batching is the default: a window's messages coalesce per peer, so
	// the data plane writes strictly fewer frames than messages.
	if rep.Frames == 0 || rep.Frames >= rep.Sync.Messages {
		t.Errorf("batched plane wrote %d frames for %d messages", rep.Frames, rep.Sync.Messages)
	}
	if rep.BytesOnWire == 0 {
		t.Error("no bytes accounted on the wire")
	}
	for i, w := range rep.Workers {
		if w.Totals.Injected == 0 {
			t.Errorf("shard %d injected nothing — VNs not spread across shards", i)
		}
	}
}

func TestFederatedBatchingDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	// The -batch=0 escape hatch: one frame per message, byte-identical
	// outcome.
	seqT, seqD := runLocal(t, 1, false)
	rep, err := fednet.Run(fednet.Options{
		Scenario:          "fednet-test-ring",
		Params:            testParams,
		Cores:             2,
		Seed:              7,
		Profile:           idealPtr(),
		RunFor:            modelnet.Seconds(testRunFor),
		DataPlane:         fednet.DataUDP,
		Spawn:             true,
		CollectDeliveries: true,
		NoBatch:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := append([]float64(nil), rep.Deliveries...)
	sort.Float64s(ds)
	sameRun(t, "seq vs federated-nobatch", seqT, seqD, rep.Totals, ds)
	if rep.Frames != rep.Sync.Messages {
		t.Errorf("unbatched plane wrote %d frames for %d messages", rep.Frames, rep.Sync.Messages)
	}
}

func TestFederatedTCPDataPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	seqT, seqD := runLocal(t, 1, false)
	fedT, fedD, rep := runFederated(t, 2, fednet.DataTCP)
	sameRun(t, "seq vs federated-tcp", seqT, seqD, fedT, fedD)
	if rep.Sync.Messages == 0 {
		t.Error("federated run exchanged no cross-core messages")
	}
}

func TestFederatedThreeProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	seqT, seqD := runLocal(t, 1, false)
	fedT, fedD, _ := runFederated(t, 3, fednet.DataUDP)
	sameRun(t, "seq vs federated-3", seqT, seqD, fedT, fedD)
}

func TestFederatedRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	// RunFor <= 0 runs to global quiescence (the Forever deadline): the
	// CBR flows stop themselves, so the federation must drain every
	// in-flight packet and come back with the same counters as a
	// deadline-bounded run.
	seqT, seqD := runLocal(t, 1, false)
	rep, err := fednet.Run(fednet.Options{
		Scenario:          "fednet-test-ring",
		Params:            testParams,
		Cores:             2,
		Seed:              7,
		Profile:           idealPtr(),
		RunFor:            0, // to completion
		DataPlane:         fednet.DataUDP,
		Spawn:             true,
		CollectDeliveries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := append([]float64(nil), rep.Deliveries...)
	sort.Float64s(ds)
	sameRun(t, "seq vs federated-to-completion", seqT, seqD, rep.Totals, ds)
	if rep.Totals.InFlight != 0 {
		t.Errorf("%d packets still in flight after run-to-completion", rep.Totals.InFlight)
	}
}

func TestFederatedRejectsUnknownScenario(t *testing.T) {
	_, err := fednet.Run(fednet.Options{Scenario: "no-such-scenario", Cores: 2})
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if want := fmt.Sprintf("%q", "no-such-scenario"); err != nil && !contains(err.Error(), want) {
		t.Errorf("error %q does not name the scenario", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
