package fednet_test

// The crash-sweep fault-injection suite: a federation that loses a worker
// mid-run, respawns it, and replays it back must end byte-identical — same
// counters, same delivery times, same drop taxonomy, same canonical packet
// trace — to a federation that never crashed. The sweep varies the killed
// shard, the kill round (including the pre-first-checkpoint window and a
// checkpoint round itself), the data plane, the sync algebra, and the
// worker count; a real-SIGKILL smoke covers unannounced process death.
// Alongside it, the liveness regression: with recovery off, a worker death
// must surface promptly as an error naming the dead shard, never a hang.

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"modelnet"
	"modelnet/internal/fednet"
	"modelnet/internal/fednet/wire"
	"modelnet/internal/obs"
)

// ringOptions assembles the standard test-ring federation options.
func ringOptions(cores int, plane string, sync modelnet.SyncMode) fednet.Options {
	return fednet.Options{
		Scenario:          "fednet-test-ring",
		Params:            testParams,
		Cores:             cores,
		Seed:              7,
		Profile:           idealPtr(),
		RunFor:            modelnet.Seconds(testRunFor),
		DataPlane:         plane,
		Sync:              sync,
		Spawn:             true,
		CollectDeliveries: true,
		Trace:             true,
	}
}

// baseline runs the federation without faults and returns its report.
func baseline(t *testing.T, cores int, plane string, sync modelnet.SyncMode) *fednet.Report {
	t.Helper()
	rep, err := fednet.Run(ringOptions(cores, plane, sync))
	if err != nil {
		t.Fatalf("baseline (%d cores, %s, %s): %v", cores, plane, sync, err)
	}
	if rep.Totals.Delivered == 0 {
		t.Fatal("baseline delivered nothing — sweep would be vacuous")
	}
	return rep
}

// sameOutcome asserts a recovered run's externally visible outcome is
// byte-identical to the baseline's. Frames and BytesOnWire are deliberately
// not compared: recovery resends the peers' send logs, so wire costs differ
// while the emulation outcome must not.
func sameOutcome(t *testing.T, name string, want, got *fednet.Report) {
	t.Helper()
	if want.Totals != got.Totals {
		t.Errorf("%s: totals diverge:\n baseline  %+v\n recovered %+v", name, want.Totals, got.Totals)
	}
	wd := append([]float64(nil), want.Deliveries...)
	gd := append([]float64(nil), got.Deliveries...)
	sort.Float64s(wd)
	sort.Float64s(gd)
	if len(wd) != len(gd) {
		t.Fatalf("%s: delivery counts diverge: %d vs %d", name, len(wd), len(gd))
	}
	for i := range wd {
		if wd[i] != gd[i] {
			t.Fatalf("%s: delivery time %d diverges: %v vs %v", name, i, wd[i], gd[i])
		}
	}
	if !equalVec(want.PipeDrops, got.PipeDrops) {
		t.Errorf("%s: per-pipe drops diverge:\n baseline  %v\n recovered %v", name, want.PipeDrops, got.PipeDrops)
	}
	if !equalVec(want.DropsByReason, got.DropsByReason) {
		t.Errorf("%s: drop taxonomy diverges:\n baseline  %v\n recovered %v", name, want.DropsByReason, got.DropsByReason)
	}
	if want.Trace == nil || got.Trace == nil {
		t.Fatalf("%s: missing trace (baseline %v, recovered %v)", name, want.Trace != nil, got.Trace != nil)
	}
	if !bytes.Equal(want.Trace.CanonicalBytes(), got.Trace.CanonicalBytes()) {
		t.Errorf("%s: canonical packet traces diverge", name)
	}
}

func equalVec(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCrashSweepDeterminism is the core of the fault-injection harness: for
// each worker count, kill each shard at a sweep of rounds — before the
// first checkpoint, at a checkpoint round, and past several periods — and
// demand the recovered run's outcome byte-identical to the never-crashed
// baseline's.
func TestCrashSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker subprocesses")
	}
	for _, cores := range []int{2, 3, 4} {
		want := baseline(t, cores, fednet.DataUDP, modelnet.SyncAdaptive)
		for shard := 0; shard < cores; shard++ {
			// Round 1 crashes before any checkpoint exists (empty replay
			// prefix), round 4 lands on a DefaultCkptEvery boundary, round 9
			// exercises a multi-period replay.
			for _, round := range []int{1, 4, 9} {
				opts := ringOptions(cores, fednet.DataUDP, modelnet.SyncAdaptive)
				opts.Recover = true
				opts.FailSpec = &fednet.FailSpec{Shard: shard, Round: round}
				rep, err := fednet.Run(opts)
				name := nameOf("crash", cores, shard, round)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if rep.Recoveries != 1 {
					t.Fatalf("%s: %d recoveries recorded, want exactly 1 (fault did not fire or cascaded)", name, rep.Recoveries)
				}
				if rep.RecoveryWallNs <= 0 {
					t.Errorf("%s: recovery wall time not accounted", name)
				}
				sameOutcome(t, name, want, rep)
			}
		}
	}
}

// TestCrashSweepPlanesAndAlgebras re-runs the crash at one fixed point
// across both data planes and both sync algebras: the recovery handshake
// lives partly in the data plane (endpoint swap, log resend), so each plane
// must prove itself, and the fixed algebra's bounds-only rounds must replay
// as faithfully as the adaptive one's.
func TestCrashSweepPlanesAndAlgebras(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker subprocesses")
	}
	for _, plane := range []string{fednet.DataUDP, fednet.DataTCP} {
		for _, sync := range []modelnet.SyncMode{modelnet.SyncAdaptive, modelnet.SyncFixed} {
			want := baseline(t, 2, plane, sync)
			opts := ringOptions(2, plane, sync)
			opts.Recover = true
			opts.FailSpec = &fednet.FailSpec{Shard: 1, Round: 3}
			rep, err := fednet.Run(opts)
			name := "crash 2w " + plane + " " + sync.String()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if rep.Recoveries != 1 {
				t.Fatalf("%s: %d recoveries, want 1", name, rep.Recoveries)
			}
			sameOutcome(t, name, want, rep)
		}
	}
}

// TestSigkillRecovery is the chaos smoke: a real, unannounced SIGKILL —
// racing the round's own frames rather than dying at a protocol-quiet point
// — must recover to the same byte-identical outcome.
func TestSigkillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker subprocesses")
	}
	want := baseline(t, 2, fednet.DataUDP, modelnet.SyncAdaptive)
	opts := ringOptions(2, fednet.DataUDP, modelnet.SyncAdaptive)
	opts.Recover = true
	opts.FailSpec = &fednet.FailSpec{Shard: 1, Round: 3, Mode: fednet.FailSigkill}
	rep, err := fednet.Run(opts)
	if err != nil {
		t.Fatalf("sigkill recovery: %v", err)
	}
	if rep.Recoveries != 1 {
		t.Fatalf("sigkill recovery: %d recoveries, want 1", rep.Recoveries)
	}
	sameOutcome(t, "sigkill 2w", want, rep)
}

// TestCheckpointDirPersistence: with -ckpt-dir set, the coordinator must
// leave each shard's latest digest on disk, and the blobs must decode.
func TestCheckpointDirPersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker subprocesses")
	}
	dir := t.TempDir()
	opts := ringOptions(2, fednet.DataUDP, modelnet.SyncAdaptive)
	opts.Recover = true
	opts.CkptEvery = 2
	opts.CkptDir = dir
	opts.FailSpec = &fednet.FailSpec{Shard: 0, Round: 5}
	rep, err := fednet.Run(opts)
	if err != nil {
		t.Fatalf("ckpt-dir run: %v", err)
	}
	if rep.Recoveries != 1 {
		t.Fatalf("ckpt-dir run: %d recoveries, want 1", rep.Recoveries)
	}
	for shard := 0; shard < 2; shard++ {
		path := filepath.Join(dir, "shard-0.ckpt")
		if shard == 1 {
			path = filepath.Join(dir, "shard-1.ckpt")
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("persisted checkpoint: %v", err)
		}
		if _, err := wire.DecodeCheckpoint(blob); err != nil {
			t.Errorf("persisted checkpoint for shard %d does not decode: %v", shard, err)
		}
	}
}

// TestWorkerDeathWithoutRecovery is the liveness regression: with recovery
// off, a worker death must yield a prompt, clean coordinator error naming
// the dead shard — not a hang until the barrier timeout.
func TestWorkerDeathWithoutRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker subprocesses")
	}
	opts := ringOptions(2, fednet.DataUDP, modelnet.SyncAdaptive)
	opts.FailSpec = &fednet.FailSpec{Shard: 1, Round: 2}
	_, err := fednet.Run(opts)
	if err == nil {
		t.Fatal("worker died mid-run but Run reported success")
	}
	if !strings.Contains(err.Error(), "shard 1 died") {
		t.Errorf("error does not name the dead shard: %v", err)
	}
}

// TestRecoveryCountersInProfile: the recovery counters must flow into the
// flattened obs.RunProfile artifact.
func TestRecoveryCountersInProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker subprocesses")
	}
	opts := ringOptions(2, fednet.DataUDP, modelnet.SyncAdaptive)
	opts.Recover = true
	opts.FailSpec = &fednet.FailSpec{Shard: 0, Round: 2}
	rep, err := fednet.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	var p obs.RunProfile = rep.RunProfile()
	if p.Recoveries != 1 {
		t.Errorf("profile records %d recoveries, want 1", p.Recoveries)
	}
	if p.RecoveryWallMS <= 0 {
		t.Errorf("profile records no recovery wall time")
	}
}

func nameOf(prefix string, cores, shard, round int) string {
	return prefix + " " + strings.Join([]string{
		itoa(cores) + "w", "shard" + itoa(shard), "round" + itoa(round),
	}, " ")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
