package fednet

// The coordinator half of checkpoint/restart fault tolerance. The design is
// replay-based: scheduler callbacks are Go closures and cannot travel, so a
// dead worker is not restored from its checkpoint — it is respawned, rebuilt
// through the same deterministic setup, and driven through the logged round
// prefix while the live workers stand by untouched (a round's barrier wait
// only ever needs the *previous* round's flush data, so no live worker is
// ever rolled back). The checkpoint blobs are determinism anchors, not
// restore sources: every replayed reply is byte-compared against the logged
// one, and the replayed state digest against the stored blob, so divergence
// surfaces as a loud error instead of silent drift. The respawned worker's
// missing inbox is reconstructed peer-side over the data plane (TResend —
// see handleRecoverReq), never through the control plane, because a live
// worker's control loop may be blocked in the very barrier wait the
// recovery feeds.

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"modelnet/internal/fednet/wire"
)

// FailSpec plants one fault for the crash-sweep harness: worker Shard dies
// at step round Round (1-based, counting every fused TStep round).
type FailSpec struct {
	Shard int
	Round int
	// Mode selects how the worker dies: FailExit (default; the worker
	// os.Exits on receipt of the round's TStep — precise and portable) or
	// FailSigkill (the coordinator SIGKILLs the process at the round's
	// start — a real unannounced death, racing the round's own frames).
	Mode string
}

// Fault-injection modes and recovery defaults.
const (
	FailExit    = "exit"
	FailSigkill = "sigkill"

	// DefaultCkptEvery is the default checkpoint period in step rounds.
	DefaultCkptEvery = 4
	// DefaultMaxRecoveries bounds respawns per run by default.
	DefaultMaxRecoveries = 3
)

// shardDeadError is the typed liveness signal: worker i's control
// connection failed mid-protocol. The recovery machinery catches it;
// without recovery it surfaces verbatim, naming the dead shard.
type shardDeadError struct {
	shard int
	cause error
}

func (e *shardDeadError) Error() string {
	return fmt.Sprintf("fednet: shard %d died: %v", e.shard, e.cause)
}

func (e *shardDeadError) Unwrap() error { return e.cause }

// loggedRound is one completed barrier round: the per-shard request bodies
// and the per-shard replies, byte-exact. Replay re-serves the bodies and
// demands byte-identical replies.
type loggedRound struct {
	typ     uint8 // wire.TStep or wire.TDrain
	bodies  [][]byte
	replies [][]byte
	ckpt    bool
}

// recoveryState is the coordinator's checkpoint/restart engine.
type recoveryState struct {
	ln        net.Listener
	join      string
	timeout   time.Duration
	dataPlane string
	log       func(format string, args ...any)

	// spawned and addrs are shared with Run's slices: recovery replaces
	// elements in place, so the deferred stopWorkers/waitWorkers and the
	// cfgFor closure all see the current fleet.
	spawned []*spawnedWorker
	addrs   []string

	// sendSetup re-distributes a shard's setup (regenerated against the
	// current addrs) over a fresh control conn.
	sendSetup func(i int, c net.Conn) error

	ckptEvery     int
	ckptDir       string
	maxRecoveries int

	cmdLog []loggedRound
	// ckpts[i] is shard i's latest checkpoint blob; ckptRound the cmdLog
	// index of the round that produced it (-1 before the first checkpoint).
	ckpts     [][]byte
	ckptRound int

	recoveries     int
	recoveryWallNs int64
}

// logRound appends a completed round and stores any checkpoint digests.
func (r *recoveryState) logRound(typ uint8, bodies, replies [][]byte, ckpt bool, ckpts [][]byte) {
	r.cmdLog = append(r.cmdLog, loggedRound{typ: typ, bodies: bodies, replies: replies, ckpt: ckpt})
	if !ckpt {
		return
	}
	r.ckptRound = len(r.cmdLog) - 1
	for i, blob := range ckpts {
		if blob == nil {
			continue
		}
		r.ckpts[i] = blob
		if r.ckptDir != "" {
			path := filepath.Join(r.ckptDir, fmt.Sprintf("shard-%d.ckpt", i))
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				r.log("fednet: persist checkpoint for shard %d: %v", i, err)
			}
		}
	}
}

// recover brings shard i back from the dead: reap the corpse, respawn,
// re-admit, replay the setup and the logged rounds, verify reconvergence.
// The live workers need no coordinator attention — the respawned worker's
// data-plane announcement drives their endpoint swap and log resends.
func (r *recoveryState) recover(t *coordTransport, i int) error {
	if r.recoveries >= r.maxRecoveries {
		return fmt.Errorf("fednet: shard %d died and the run's %d recoveries are exhausted", i, r.maxRecoveries)
	}
	start := time.Now()
	r.recoveries++
	r.log("fednet: shard %d died; respawning (recovery %d of %d, %d rounds to replay)",
		i, r.recoveries, r.maxRecoveries, len(r.cmdLog))
	if w := r.spawned[i]; w != nil {
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
		_ = w.cmd.Wait() // reap; a fault exit status is expected here
	}
	t.conns[i].Close()

	ws, err := SpawnWorkers(1, r.join)
	if err != nil {
		return fmt.Errorf("fednet: respawn shard %d: %w", i, err)
	}
	r.spawned[i] = ws[0]
	t.spawned[i] = ws[0]
	conn, h, err := acceptOne(r.ln, r.timeout)
	if err != nil {
		return fmt.Errorf("fednet: respawned shard %d join: %w", i, err)
	}
	if r.dataPlane == DataUDP {
		r.addrs[i] = h.UDPAddr
	} else {
		r.addrs[i] = h.TCPAddr
	}
	t.conns[i] = conn
	// Mark the joiner as a respawn before its setup: the worker then skips
	// fresh mesh formation and announces itself to the live peers instead.
	if err := wire.WriteFrame(conn, wire.TRecover, wire.Recover{}.Encode()); err != nil {
		return fmt.Errorf("fednet: respawned shard %d: %w", i, err)
	}
	if err := r.sendSetup(i, conn); err != nil {
		return err
	}
	typ, _, err := t.read(i)
	if err != nil {
		return fmt.Errorf("fednet: respawned shard %d setup: %w", i, err)
	}
	if typ != wire.TSetupAck {
		return fmt.Errorf("fednet: respawned shard %d: expected setup ack, got frame type %d", i, typ)
	}
	if err := r.replay(t, i); err != nil {
		return err
	}
	r.recoveryWallNs += int64(time.Since(start))
	r.log("fednet: shard %d recovered in %v", i, time.Since(start))
	return nil
}

// replay drives the respawned shard through the logged round prefix and
// verifies reconvergence: every reply must be byte-identical to the logged
// one, and the digest at the latest checkpointed round byte-identical to
// the stored blob. Any mismatch is a determinism violation and fails the
// run — resuming from diverged state would corrupt it silently.
func (r *recoveryState) replay(t *coordTransport, i int) error {
	for ri, lr := range r.cmdLog {
		if err := wire.WriteFrame(t.conns[i], lr.typ, lr.bodies[i]); err != nil {
			return fmt.Errorf("fednet: replay round %d to shard %d: %w", ri, i, err)
		}
		doneTyp := uint8(wire.TStepDone)
		if lr.typ == wire.TDrain {
			doneTyp = wire.TDrainDone
		}
		reply, blob, err := t.readDone(i, doneTyp, lr.ckpt)
		if err != nil {
			return fmt.Errorf("fednet: replay round %d to shard %d: %w", ri, i, err)
		}
		if !bytes.Equal(reply, lr.replies[i]) {
			return fmt.Errorf("fednet: shard %d diverged on replay at round %d: reply differs from the original run (determinism violation)", i, ri)
		}
		// Digests from superseded checkpoint rounds were not kept; only the
		// latest one has a stored blob to compare against.
		if lr.ckpt && ri == r.ckptRound && !bytes.Equal(blob, r.ckpts[i]) {
			return fmt.Errorf("fednet: shard %d diverged on replay at round %d: checkpoint digest differs from the stored blob (determinism violation)", i, ri)
		}
	}
	return nil
}
