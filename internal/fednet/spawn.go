package fednet

// Local worker spawning: the zero-configuration path where the coordinator
// re-executes its own binary once per core. Any binary whose main (or
// TestMain) calls MaybeRunWorker early can host a federation this way; for
// a real multi-machine deployment, start `modelnet core -join host:port`
// on each machine instead.

import (
	"fmt"
	"os"
	"os/exec"
	"time"
)

// EnvJoin is the environment variable that turns a process into a worker:
// its value is the coordinator's control-plane address.
const EnvJoin = "MODELNET_FEDNET_JOIN"

// spawnedWorker tracks one self-exec'd worker process.
type spawnedWorker struct {
	cmd *exec.Cmd
}

// SpawnWorkers re-executes the current binary n times as federation
// workers joining the coordinator at join.
func SpawnWorkers(n int, join string) ([]*spawnedWorker, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("fednet: spawn: %w", err)
	}
	var ws []*spawnedWorker
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), EnvJoin+"="+join)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			stopWorkers(ws)
			return nil, fmt.Errorf("fednet: spawn worker %d: %w", i, err)
		}
		ws = append(ws, &spawnedWorker{cmd: cmd})
	}
	return ws, nil
}

// waitWorkers reaps spawned workers after a completed run; a nonzero exit
// is an error (the worker also reported it over the control plane, but a
// crash after reporting should not go unnoticed).
func waitWorkers(ws []*spawnedWorker) error {
	var firstErr error
	for _, w := range ws {
		if w.cmd == nil {
			continue
		}
		err := w.cmd.Wait()
		w.cmd = nil
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fednet: worker exited: %w", err)
		}
	}
	return firstErr
}

// stopWorkers kills any spawned workers that are still running (the error
// path; a clean run reaps them in waitWorkers).
func stopWorkers(ws []*spawnedWorker) {
	for _, w := range ws {
		if w.cmd == nil || w.cmd.Process == nil {
			continue
		}
		done := make(chan struct{})
		go func(c *exec.Cmd) { _ = c.Wait(); close(done) }(w.cmd)
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			_ = w.cmd.Process.Kill()
			<-done
		}
		w.cmd = nil
	}
}
