package fednet

// Scenario registry, worker environment, and the shared control-plane
// message bodies (setup, hello, reports).

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"modelnet/internal/bind"
	"modelnet/internal/edge"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/obs"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// DataUDP and DataTCP select the data plane carrying cross-core tunnel
// messages. UDP is the paper's tunnel transport (IP-in-UDP encapsulation);
// TCP is the lossless fallback — the barrier protocol tolerates reordering
// (messages are applied in canonical order) but not loss.
const (
	DataUDP = "udp"
	DataTCP = "tcp"
)

// Scenario is a federable workload. Build runs on the coordinator and
// returns the target topology. Install runs on every worker after its shard
// is constructed: it must create hosts and traffic only for the VNs homed
// on the worker's shard (env.Homed), deterministically — every worker
// derives the same global plan from the scenario parameters and installs
// its slice of it. The returned report function, if non-nil, runs after the
// run completes and contributes the worker's scenario-specific results.
type Scenario struct {
	Build   func(params json.RawMessage) (*topology.Graph, error)
	Install func(env *WorkerEnv, params json.RawMessage) (func() json.RawMessage, error)
}

var scenarioMu sync.RWMutex
var scenarios = map[string]Scenario{}

// Register adds a named scenario to the registry. Workers resolve the
// coordinator's scenario name here, so every process of a federation must
// be built from a binary that registers the same names (typically via the
// owning package's init).
func Register(name string, s Scenario) {
	if s.Build == nil || s.Install == nil {
		panic("fednet: scenario " + name + " needs Build and Install")
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarios[name]; dup {
		panic("fednet: scenario " + name + " registered twice")
	}
	scenarios[name] = s
}

// Scenarios lists the registered scenario names, sorted.
func Scenarios() []string {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func lookupScenario(name string) (Scenario, error) {
	scenarioMu.RLock()
	s, ok := scenarios[name]
	scenarioMu.RUnlock()
	if !ok {
		return Scenario{}, fmt.Errorf("fednet: unknown scenario %q (have %v)", name, Scenarios())
	}
	return s, nil
}

// WorkerEnv is the slice of a federated emulation one worker owns: the
// distilled topology and binding (shared, read-only), and the shard's
// scheduler and emulator. Scenario installers use it the way applications
// use modelnet.Emulation, restricted to homed VNs.
type WorkerEnv struct {
	Shard, Cores int
	Graph        *topology.Graph
	Binding      *bind.Binding
	Sched        *vtime.Scheduler
	Emu          *emucore.Emulator

	homes []int
	hosts map[pipes.VN]*netstack.Host
}

// NumVNs reports how many VNs the federation binds (across all shards).
func (e *WorkerEnv) NumVNs() int { return e.Binding.NumVNs() }

// HomeOf reports the shard a VN is homed on.
func (e *WorkerEnv) HomeOf(vn pipes.VN) int { return e.homes[vn] }

// Homed reports whether a VN lives on this worker's shard.
func (e *WorkerEnv) Homed(vn pipes.VN) bool { return e.homes[vn] == e.Shard }

// registrar adapts the shard emulator to netstack's Registrar.
type registrar struct{ e *emucore.Emulator }

func (r registrar) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	r.e.RegisterVN(vn, emucore.DeliverFunc(fn))
}

// NewHost returns the transport stack for a homed VN, creating it on first
// use. It panics on a VN homed elsewhere: that stack belongs to a different
// process.
func (e *WorkerEnv) NewHost(vn pipes.VN) *netstack.Host {
	if !e.Homed(vn) {
		panic(fmt.Sprintf("fednet: NewHost(%d): VN homed on shard %d, this is shard %d", vn, e.homes[vn], e.Shard))
	}
	if h, ok := e.hosts[vn]; ok {
		return h
	}
	h := netstack.NewHost(vn, e.Sched, e.Emu, registrar{e.Emu})
	e.hosts[vn] = h
	return h
}

// setup is the control-plane configuration frame body (JSON section); the
// distilled topology and assignment ride the same frame as binary blobs.
type setup struct {
	Shard     int             `json:"shard"`
	Cores     int             `json:"cores"`
	Seed      int64           `json:"seed"`
	Profile   emucore.Profile `json:"profile"`
	DataPlane string          `json:"data_plane"`
	DataAddrs []string        `json:"data_addrs"` // per shard, for DataPlane

	EdgeNodes    int  `json:"edge_nodes,omitempty"`
	RouteCache   int  `json:"route_cache,omitempty"`
	Hierarchical bool `json:"hierarchical,omitempty"`

	Scenario          string          `json:"scenario"`
	Params            json.RawMessage `json:"params,omitempty"`
	CollectDeliveries bool            `json:"collect_deliveries,omitempty"`

	// Sync is the synchronization algebra ("adaptive" or "fixed"); a worker
	// under the adaptive algebra computes its crossing-distance tables and
	// reports per-peer SafeTo bounds. Empty = adaptive.
	Sync string `json:"sync,omitempty"`

	// Sharded marks the chunked per-shard setup: the worker receives its
	// ShardView and the VN world map instead of the whole topology and
	// assignment, materializes only its owned pipes plus the cut frontier,
	// and routes through a demand-paged bind.ShardTable.
	Sharded bool `json:"sharded,omitempty"`
	// RunForNs is the run's virtual-time budget (0 = run to quiescence).
	// Sharded workers need it to enumerate the reroute epoch schedule over
	// exactly the coordinator's horizon.
	RunForNs int64 `json:"run_for_ns,omitempty"`

	// NoBatch reverts the data plane to one frame per tunnel message (the
	// pre-batching behavior); zero value = batching on.
	NoBatch bool `json:"no_batch,omitempty"`
	// MaxDatagram bounds one UDP data-plane frame; 0 = DefaultMaxDatagram.
	MaxDatagram int `json:"max_datagram,omitempty"`

	// Edge is the gateway lease: each worker instantiates the mappings
	// whose ingress VN is homed on its shard and reports the real socket
	// address it bound in its setup ack. Nil = no live edge.
	Edge *edge.GatewayConfig `json:"edge,omitempty"`

	// Recoverable arms the failure/recovery protocol: the worker keeps its
	// per-peer send logs for the run's lifetime, tolerates peer connection
	// errors, keeps its TCP data-plane listener open for respawned peers,
	// and answers the TRecover/TRewire/TResend directives.
	Recoverable bool `json:"recoverable,omitempty"`

	// Trace has the worker record a virtual-time packet trace and stream
	// it to the coordinator (wire.TTrace) before its final report.
	Trace bool `json:"trace,omitempty"`
	// Metrics has the worker bind a loopback metrics endpoint and report
	// its address in the setup ack.
	Metrics bool `json:"metrics,omitempty"`
}

// setupAck is a worker's setup acknowledgment body: the real address of
// its live edge gateway, when the lease gave it one ("" otherwise), and of
// its metrics endpoint, when the setup asked for one.
type setupAck struct {
	GatewayAddr string `json:"gateway_addr,omitempty"`
	MetricsAddr string `json:"metrics_addr,omitempty"`
}

// hello is a worker's join frame body: the data-plane endpoints it listens
// on, one per supported plane.
type hello struct {
	TCPAddr string `json:"tcp_addr"`
	UDPAddr string `json:"udp_addr"`
	// Pid maps the joining connection back to the spawned process: shard
	// indices follow join order, not launch order, and fault injection and
	// recovery must target the right process.
	Pid int `json:"pid"`
}

// WorkerReport is one worker's final accounting.
type WorkerReport struct {
	Shard      int              `json:"shard"`
	Totals     emucore.Totals   `json:"totals"`
	Accuracy   emucore.Accuracy `json:"accuracy"`
	NowNs      int64            `json:"now_ns"`
	TunnelsIn  uint64           `json:"tunnels_in"`
	TunnelsOut uint64           `json:"tunnels_out"`
	// Frames and BytesOnWire price the worker's share of the data plane:
	// frames written (= syscalls on the UDP plane) and bytes including
	// framing. With batching, Frames is far below the message count.
	Frames      uint64 `json:"frames"`
	BytesOnWire uint64 `json:"bytes_on_wire"`
	// SetupBytes is what distribution cost this worker: the total size of
	// the setup frames it received (chunked sections under sharded
	// distribution, one monolithic frame otherwise). StartupWallNs spans
	// first setup byte to setup-ack; both are first-class BENCH columns.
	SetupBytes    uint64 `json:"setup_bytes"`
	StartupWallNs int64  `json:"startup_wall_ns"`
	// PeakRSSBytes is the process's peak resident set (VmHWM) at report
	// time; MaterializedPipes counts the pipes this worker actually built —
	// ≈ owned + frontier under sharded distribution, all pipes otherwise.
	PeakRSSBytes      uint64 `json:"peak_rss_bytes"`
	MaterializedPipes int    `json:"materialized_pipes"`
	// RouteRPCs counts demand-paged summary fetches (sharded runs only).
	RouteRPCs  uint64    `json:"route_rpcs,omitempty"`
	Deliveries []float64 `json:"deliveries,omitempty"`
	// PipeDrops is the per-pipe drop count vector, indexed by pipe ID.
	PipeDrops []uint64 `json:"pipe_drops,omitempty"`
	// DropsByReason is the unified drop taxonomy vector (indexed by
	// pipes.DropReason), with this worker's gateway rejections folded into
	// the oversize and gateway-reject slots.
	DropsByReason []uint64        `json:"drops_by_reason,omitempty"`
	Scenario      json.RawMessage `json:"scenario,omitempty"`
	// Profile is the worker's wall-clock / lookahead-utilization breakdown.
	Profile obs.ShardProfile `json:"profile"`
	// Edge counts this worker's live gateway traffic, when it hosted one.
	Edge *edge.GatewayStats `json:"edge,omitempty"`
}
